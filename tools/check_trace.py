#!/usr/bin/env python3
"""Validator for the Chrome trace-event JSON exported by the telemetry layer.

Checks the structural contract of the trace-event format (the subset the
TraceCollector emits: "X" complete events, "i" instants, "M" metadata) plus
repo-specific expectations passed on the command line: span names that must
appear and the minimum number of distinct threads carrying spans. CI runs it
against `realtime_da --sqg --trace=...` output so a refactor that silently
drops instrumentation (or breaks the JSON writer) fails the smoke job.

Usage:
  tools/check_trace.py trace.json [--require runner.cycle,letkf.analyze]
      [--min-threads 2] [--min-events 10]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--require", default="",
                    help="comma-separated span names that must appear")
    ap.add_argument("--min-threads", type=int, default=1,
                    help="minimum distinct tids carrying X spans")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of X span events")
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        fail("top level must be an object with a 'traceEvents' array")
    events = data["traceEvents"]

    spans, instants, meta = [], [], []
    span_tids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"event #{i} has unexpected phase {ph!r}")
        if "pid" not in ev or "tid" not in ev:
            fail(f"event #{i} ({ph}) lacks pid/tid")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"metadata event #{i} has unexpected name {ev.get('name')!r}")
            if not isinstance(ev.get("args", {}).get("name"), str):
                fail(f"metadata event #{i} lacks args.name")
            meta.append(ev)
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"event #{i} ({ph}) lacks a name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event #{i} ({ev['name']}) has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event #{i} ({ev['name']}) has bad dur {dur!r}")
            spans.append(ev)
            span_tids.add(ev["tid"])
        else:
            if ev.get("s") != "t":
                fail(f"instant #{i} ({ev['name']}) lacks thread scope ('s': 't')")
            instants.append(ev)

    named_tids = {ev["tid"] for ev in meta if ev.get("name") == "thread_name"}
    unnamed = span_tids - named_tids
    if unnamed:
        fail(f"tids {sorted(unnamed)} carry spans but have no thread_name metadata")

    if len(spans) < args.min_events:
        fail(f"only {len(spans)} span events, expected >= {args.min_events}")
    if len(span_tids) < args.min_threads:
        fail(f"spans from only {len(span_tids)} thread(s), "
             f"expected >= {args.min_threads}")

    required = [n for n in args.require.split(",") if n]
    present = {ev["name"] for ev in spans} | {ev["name"] for ev in instants}
    missing = [n for n in required if n not in present]
    if missing:
        fail(f"required span names missing from trace: {', '.join(missing)}; "
             f"present: {', '.join(sorted(present))}")

    print(f"check_trace: OK: {len(spans)} spans + {len(instants)} instants across "
          f"{len(span_tids)} thread(s); all required names present.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
