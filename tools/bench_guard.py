#!/usr/bin/env python3
"""Advisory perf-regression guard for the bench JSON outputs.

Compares a freshly measured bench JSON (e.g. `bench_sqg_step --smoke
--json=fresh.json`) against the baseline committed at the repo root and
prints a markdown table plus GitHub Actions `::warning::` annotations for
every configuration whose metric regressed by more than the threshold.
Purely advisory: always exits 0 — CI runners are noisy and the committed
baseline comes from a different machine, so a warning is a prompt to look,
not a gate.

Two row formats are understood, detected per file:
  - kernel benches (BENCH_sqg.json, BENCH_letkf.json): a "results" array
    keyed by (n, threads);
  - the streaming bench (BENCH_stream.json): a "scenarios" array keyed by
    (name, schedule, n, members) — use `--metric cycle_ms` against it, or
    `--metric ingest_catchup_ms` to track what the deep-overlap rows pay
    per cycle to absorb late (age > max_stale) observation batches.
    Rows without their own n / members (older files) inherit the file-level
    values, so a --smoke fresh run only ever compares against baseline rows
    recorded at the same resolution.

Rows whose thread count exceeds the hardware threads of *either* recording
machine are skipped: a `threads: 2` timing captured on a 1-core box is
oversubscription noise, not a baseline. Each row's hardware context comes
from its own `hw_threads` field when present (bench_sqg_step records it per
row), falling back to the file-level `hardware_threads`.

When the fresh file carries a top-level "phases" object (the LETKF per-phase
breakdown bench_stream_realtime exports), it is printed as a telemetry table
for the CI job summary.

Usage:
  tools/bench_guard.py --baseline BENCH_sqg.json --fresh fresh.json \
      [--metric rk4_step_ms] [--threshold 0.25]
  tools/bench_guard.py --baseline BENCH_stream.json --fresh fresh.json \
      --metric cycle_ms
"""

import argparse
import json
import sys


def load_results(path):
    """Returns (rows_by_key, key_fields, phases). `key_fields` names the
    tuple components of the row keys; `phases` is the optional LETKF
    per-phase breakdown object (fresh-file telemetry)."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level is {type(data).__name__}, expected object")
    if "scenarios" in data and "results" not in data:
        rows, key_fields = data.get("scenarios"), ("name", "schedule", "n", "members")
        inherited = ("n", "members")  # resolution context, file-level in older files
    else:
        rows, key_fields = data.get("results", []), ("n", "threads")
        inherited = ()
    if not isinstance(rows, list):
        raise ValueError(f"{path}: rows are {type(rows).__name__}, expected array")
    file_hw = data.get("hardware_threads")
    out = {}
    for r in rows:
        if not isinstance(r, dict):
            continue
        r = dict(r)
        for k in inherited:
            if r.get(k) is None:
                r[k] = data.get(k)
        if any(r.get(k) is None for k in key_fields):
            continue  # unkeyable row — nothing to compare it against
        if "hw_threads" not in r and file_hw is not None:
            r["hw_threads"] = file_hw
        out[tuple(r[k] for k in key_fields)] = r
    phases = data.get("phases")
    if not isinstance(phases, dict):
        phases = None
    return out, key_fields, phases


def numeric(value):
    """float(value) for int/float/numeric-string, else None (never raises)."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def oversubscribed(row):
    """True when the row's thread count exceeds its recording machine's
    hardware threads (unknown hardware context is trusted)."""
    hw = numeric(row.get("hw_threads"))
    threads = numeric(row.get("threads"))
    return hw is not None and threads is not None and threads > hw


PHASE_DELTA_FIELDS = ("gram_ms", "eigh_ms")


def print_phase_delta_table(pairs, key_fields):
    """Advisory per-phase delta table (LETKF Gram build / eigensolve) for
    every overlapping configuration that carries the phase fields. Purely
    informational: phase-level noise is higher than whole-analysis noise, so
    no warnings are emitted here."""
    rows = []
    for key, base, fr in pairs:
        cells = []
        have_any = False
        for ph in PHASE_DELTA_FIELDS:
            b, f = numeric(base.get(ph)), numeric(fr.get(ph))
            if b is None or f is None or b <= 0.0:
                cells.append("-")
                continue
            have_any = True
            cells.append(f"{b:.1f} -> {f:.1f} ({100 * (f / b - 1.0):+.1f}%)")
        occ = ""
        bc, sc = numeric(fr.get("batched_columns")), numeric(fr.get("scalar_columns"))
        if bc is not None and sc is not None and bc + sc > 0:
            occ = f"{100 * bc / (bc + sc):.1f}%"
        if have_any:
            rows.append((key, cells, occ))
    if not rows:
        return
    print("\n### Per-phase deltas (advisory): Gram build / eigensolve\n")
    names = " | ".join(ph[:-3] for ph in PHASE_DELTA_FIELDS)
    print(f"| {' | '.join(key_fields)} | {names} | lane occupancy |")
    print(f"| {' | '.join('---' for _ in key_fields)} | "
          f"{' | '.join('---' for _ in PHASE_DELTA_FIELDS)} | --- |")
    for key, cells, occ in rows:
        kcells = " | ".join(str(v) for v in key)
        print(f"| {kcells} | {' | '.join(cells)} | {occ or '-'} |")
    print("\n(lane occupancy = fresh run's share of columns solved in full SIMD "
          "lane batches; the remainder took the sequential path.)")


def print_phase_table(phases):
    """Telemetry-derived LETKF phase breakdown for the CI job summary."""
    order = ["plan_ms", "select_ms", "gather_ms", "gram_ms", "eigh_ms",
             "weights_ms", "combine_ms"]
    total = numeric(phases.get("total_ms"))
    known = [(k, numeric(phases.get(k))) for k in order]
    known = [(k, v) for k, v in known if v is not None]
    if not known:
        return
    print("\n### LETKF phase breakdown (telemetry, fresh run)\n")
    print("| phase | time [ms] | share of analyze |")
    print("| --- | --- | --- |")
    for k, v in known:
        share = f"{100 * v / total:.1f}%" if total and total > 0 else "-"
        print(f"| {k[:-3]} | {v:.1f} | {share} |")
    if total is not None:
        analyses = phases.get("analyses")
        suffix = f" across {analyses} analyses" if analyses else ""
        print(f"\nTotal analyze time: {total:.1f} ms{suffix}.")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--fresh", required=True, help="freshly measured JSON")
    ap.add_argument("--metric", default="rk4_step_ms", help="result field to compare")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative regression that triggers a warning (0.25 = +25%%)")
    args = ap.parse_args()

    try:
        baseline, base_fields, _ = load_results(args.baseline)
        fresh, fresh_fields, fresh_phases = load_results(args.fresh)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"bench_guard: could not read inputs ({e}); skipping check")
        return 0
    if base_fields != fresh_fields:
        print(f"bench_guard: baseline rows are keyed by {base_fields} but fresh rows "
              f"by {fresh_fields}; skipping check")
        return 0
    key_fields = fresh_fields

    rows = []
    skipped = []
    pairs = []  # (key, baseline_row, fresh_row) for the per-phase table
    warnings = 0
    # Stringified sort key: components may mix types across hand-edited
    # files, and "3 < '4'" is a TypeError, not a warning.
    for key, fr in sorted(fresh.items(), key=lambda kv: tuple(map(str, kv[0]))):
        base = baseline.get(key)
        if base is None or args.metric not in base or args.metric not in fr:
            continue
        if oversubscribed(base) or oversubscribed(fr):
            skipped.append(key)
            continue
        b, f = numeric(base[args.metric]), numeric(fr[args.metric])
        if b is None or f is None or b <= 0.0:
            continue  # non-numeric or degenerate metric value — advisory skip
        ratio = f / b - 1.0
        flag = ratio > args.threshold
        warnings += flag
        rows.append((key, b, f, ratio, flag))
        pairs.append((key, base, fr))
        if flag:
            where = ", ".join(f"{k}={v}" for k, v in zip(key_fields, key))
            print(f"::warning::{args.metric} at {where} regressed "
                  f"{100 * ratio:+.1f}% vs committed baseline "
                  f"({b:.3f} ms -> {f:.3f} ms, threshold +{100 * args.threshold:.0f}%)")

    if not rows and not skipped:
        print(f"bench_guard: no overlapping {'/'.join(key_fields)} configurations with "
              f"metric '{args.metric}' between {args.baseline} and {args.fresh}")
        if fresh_phases:
            print_phase_table(fresh_phases)
        return 0

    print(f"\n### Perf guard: {args.metric} vs committed baseline (advisory, "
          f"threshold +{100 * args.threshold:.0f}%)\n")
    print(f"| {' | '.join(key_fields)} | baseline [ms] | fresh [ms] | delta | |")
    print(f"| {' | '.join('---' for _ in key_fields)} | --- | --- | --- | --- |")
    for key, b, f, ratio, flag in rows:
        mark = ":warning:" if flag else "ok"
        cells = " | ".join(str(v) for v in key)
        print(f"| {cells} | {b:.3f} | {f:.3f} | {100 * ratio:+.1f}% | {mark} |")
    if skipped:
        configs = ", ".join(
            "(" + ", ".join(f"{k}={v}" for k, v in zip(key_fields, key)) + ")"
            for key in skipped)
        print(f"\nSkipped {len(skipped)} oversubscribed configuration(s) — thread count "
              f"exceeds the recording machine's hardware threads: {configs}.")
    if warnings:
        print(f"\n{warnings} configuration(s) above threshold — advisory only; "
              "compare against the committed baseline's machine before acting.")
    print_phase_delta_table(pairs, key_fields)
    if fresh_phases:
        print_phase_table(fresh_phases)
    return 0


if __name__ == "__main__":
    sys.exit(main())
