#!/usr/bin/env python3
"""Advisory perf-regression guard for the bench JSON outputs.

Compares a freshly measured bench JSON (e.g. `bench_sqg_step --smoke
--json=fresh.json`) against the baseline committed at the repo root and
prints a markdown table plus GitHub Actions `::warning::` annotations for
every (n, threads) configuration whose metric regressed by more than the
threshold. Purely advisory: always exits 0 — CI runners are noisy and the
committed baseline comes from a different machine, so a warning is a prompt
to look, not a gate.

Rows whose thread count exceeds the hardware threads of *either* recording
machine are skipped: a `threads: 2` timing captured on a 1-core box is
oversubscription noise, not a baseline. Each row's hardware context comes
from its own `hw_threads` field when present (bench_sqg_step records it per
row), falling back to the file-level `hardware_threads`.

Usage:
  tools/bench_guard.py --baseline BENCH_sqg.json --fresh fresh.json \
      [--metric rk4_step_ms] [--threshold 0.25]
"""

import argparse
import json
import sys


def load_results(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level is {type(data).__name__}, expected object")
    results = data.get("results", [])
    if not isinstance(results, list):
        raise ValueError(f"{path}: 'results' is {type(results).__name__}, expected array")
    file_hw = data.get("hardware_threads")
    out = {}
    for r in results:
        if not isinstance(r, dict) or r.get("n") is None or r.get("threads") is None:
            continue  # unkeyable row — nothing to compare it against
        r = dict(r)
        if "hw_threads" not in r and file_hw is not None:
            r["hw_threads"] = file_hw
        out[(r["n"], r["threads"])] = r
    return out


def numeric(value):
    """float(value) for int/float/numeric-string, else None (never raises)."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def oversubscribed(row):
    """True when the row's thread count exceeds its recording machine's
    hardware threads (unknown hardware context is trusted)."""
    hw = numeric(row.get("hw_threads"))
    threads = numeric(row.get("threads"))
    return hw is not None and threads is not None and threads > hw


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--fresh", required=True, help="freshly measured JSON")
    ap.add_argument("--metric", default="rk4_step_ms", help="result field to compare")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative regression that triggers a warning (0.25 = +25%%)")
    args = ap.parse_args()

    try:
        baseline = load_results(args.baseline)
        fresh = load_results(args.fresh)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"bench_guard: could not read inputs ({e}); skipping check")
        return 0

    rows = []
    skipped = []
    warnings = 0
    # Stringified sort key: (n, threads) may mix types across hand-edited
    # files, and "3 < '4'" is a TypeError, not a warning.
    for key, fr in sorted(fresh.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))):
        base = baseline.get(key)
        if base is None or args.metric not in base or args.metric not in fr:
            continue
        if oversubscribed(base) or oversubscribed(fr):
            skipped.append(key)
            continue
        b, f = numeric(base[args.metric]), numeric(fr[args.metric])
        if b is None or f is None or b <= 0.0:
            continue  # non-numeric or degenerate metric value — advisory skip
        ratio = f / b - 1.0
        flag = ratio > args.threshold
        warnings += flag
        rows.append((key, b, f, ratio, flag))
        if flag:
            print(f"::warning::{args.metric} at n={key[0]}, threads={key[1]} regressed "
                  f"{100 * ratio:+.1f}% vs committed baseline "
                  f"({b:.3f} ms -> {f:.3f} ms, threshold +{100 * args.threshold:.0f}%)")

    if not rows and not skipped:
        print(f"bench_guard: no overlapping (n, threads) configurations with metric "
              f"'{args.metric}' between {args.baseline} and {args.fresh}")
        return 0

    print(f"\n### Perf guard: {args.metric} vs committed baseline (advisory, "
          f"threshold +{100 * args.threshold:.0f}%)\n")
    print("| n | threads | baseline [ms] | fresh [ms] | delta | |")
    print("| --- | --- | --- | --- | --- | --- |")
    for (n, t), b, f, ratio, flag in rows:
        mark = ":warning:" if flag else "ok"
        print(f"| {n} | {t} | {b:.3f} | {f:.3f} | {100 * ratio:+.1f}% | {mark} |")
    if skipped:
        configs = ", ".join(f"(n={n}, threads={t})" for n, t in skipped)
        print(f"\nSkipped {len(skipped)} oversubscribed configuration(s) — thread count "
              f"exceeds the recording machine's hardware threads: {configs}.")
    if warnings:
        print(f"\n{warnings} configuration(s) above threshold — advisory only; "
              "compare against the committed baseline's machine before acting.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
