#!/usr/bin/env python3
"""Merge bench JSON files row-wise into the first (the committed baseline).

The committed baselines need rows at every resolution CI compares against
(full-size for the record, --smoke for the guard), but each bench invocation
writes one file at one configuration. This folds the row arrays ("scenarios"
or "results") of the extra files into the first file, replacing rows with the
same key and keeping everything else (file-level metadata, "phases") from the
first file. Keys follow tools/bench_guard.py: (name, schedule, n, members)
for scenario rows, (n, threads) for result rows.

Usage:
  ./build/bench_stream_realtime --json=BENCH_stream.json
  ./build/bench_stream_realtime --smoke --json=smoke.json
  tools/merge_bench.py BENCH_stream.json smoke.json
"""

import json
import sys


def rows_key(data):
    return "scenarios" if "scenarios" in data and "results" not in data else "results"


def row_id(data, row, kind):
    fields = ("name", "schedule", "n", "members") if kind == "scenarios" else ("n", "threads")
    return tuple(row.get(k, data.get(k)) for k in fields)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip())
        return 2
    target_path, extras = argv[1], argv[2:]
    with open(target_path, "r", encoding="utf-8") as f:
        target = json.load(f)
    kind = rows_key(target)
    merged = {row_id(target, r, kind): r for r in target.get(kind, [])}
    for path in extras:
        with open(path, "r", encoding="utf-8") as f:
            extra = json.load(f)
        if rows_key(extra) != kind:
            print(f"merge_bench: {path} holds '{rows_key(extra)}' rows, "
                  f"{target_path} holds '{kind}' — refusing to mix")
            return 1
        for r in extra.get(kind, []):
            # Pin the source file's resolution context onto the row so it
            # survives under the target's file-level metadata.
            for k in ("n", "members"):
                if k not in r and k in extra:
                    r[k] = extra[k]
            merged[row_id(extra, r, kind)] = r
    target[kind] = list(merged.values())
    with open(target_path, "w", encoding="utf-8") as f:
        json.dump(target, f, indent=2)
        f.write("\n")
    print(f"merge_bench: {target_path} now holds {len(target[kind])} {kind} row(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
