// Fig. 3 reproduction: FLOPs (Eq. 18) and Frontier node-hours required to
// train the three ViT surrogates for 100 epochs on 1M images.
#include <iostream>

#include "hpc/vit_arch.hpp"
#include "io/table.hpp"

using namespace turbda;

int main() {
  std::cout << "=== Fig. 3: computation need for training the ViT surrogates ===\n";
  std::cout << "T = 6 * (L/P)^2 * epochs * images * params   (Eq. 18; 100 epochs, 1M images)\n\n";
  io::Table t({"model", "params", "tokens/img", "total FLOPs", "node-hours (30% MFU)",
               "node-days"});
  for (const auto& a : hpc::table2_architectures()) {
    const double fl = hpc::training_flops(a, 100, 1e6);
    const double nh = hpc::frontier_node_hours(fl);
    t.add_row({std::to_string(a.image) + "^2",
               io::Table::sci(static_cast<double>(a.param_count()), 2),
               std::to_string(a.tokens()), io::Table::sci(fl, 2), io::Table::num(nh, 1),
               io::Table::num(nh / 24.0, 2)});
  }
  t.print();
  std::cout << "\nShape check: FLOPs grow ~10x from 64^2/157M to 128^2/1.2B (4x tokens * 7.6x\n"
               "params) and ~8x again to 256^2/2.5B, matching the paper's log-scale bars.\n";
  return 0;
}
