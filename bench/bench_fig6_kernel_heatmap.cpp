// Fig. 6 reproduction: compute-performance heatmap of the ViT surrogate
// architecture sweep (embedding dim x heads x MLP ratio) on a single
// Frontier GCD — from the calibrated MI250X GEMM model — plus a measured
// sweep of this host's CPU GEMM on the same (scaled) shapes to demonstrate
// the kernel-shape effect is real, not an artifact of the model.
#include <iostream>

#include "common/timer.hpp"
#include "hpc/gemm_model.hpp"
#include "hpc/vit_arch.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "tensor/gemm.hpp"

using namespace turbda;

namespace {

/// Measured GFLOPS of this host's blocked GEMM for one ViT layer's shapes,
/// scaled down by `shrink` to stay CPU-friendly.
double measured_layer_gflops(const nn::VitConfig& cfg, std::size_t shrink) {
  double flops = 0.0, secs = 0.0;
  for (const auto& g : hpc::GemmModel::vit_block_gemms(cfg, 1)) {
    const std::size_t m = std::max<std::size_t>(8, g.m / shrink);
    const std::size_t n = std::max<std::size_t>(8, g.n / shrink);
    const std::size_t k = std::max<std::size_t>(8, g.k / shrink);
    tensor::Tensor a({m, k}), b({k, n}), c({m, n});
    a.fill(1.0);
    b.fill(0.5);
    WallTimer t;
    tensor::gemm(tensor::Trans::No, tensor::Trans::No, m, n, k, 1.0, a.data(), k, b.data(), n,
                 0.0, c.data(), n);
    const double dt = t.seconds();
    secs += g.count * dt;
    flops += g.count * 2.0 * static_cast<double>(m) * static_cast<double>(n) *
             static_cast<double>(k);
  }
  return flops / secs / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  std::cout << "=== Fig. 6: TFLOPS heatmap for the ViT surrogate architecture (256^2 input, "
               "single GCD, MI250X model) ===\n";
  hpc::GemmModel model;
  nn::VitConfig base = hpc::table2_architectures()[2];

  io::Table t({"embed dim", "heads", "mlp=2", "mlp=4", "mlp=8"});
  for (std::size_t e : {1024u, 2048u}) {
    for (std::size_t h : {8u, 16u, 32u}) {
      std::vector<std::string> row{std::to_string(e), std::to_string(h)};
      for (double r : {2.0, 4.0, 8.0}) {
        nn::VitConfig v = base;
        v.embed_dim = e;
        v.heads = h;
        v.mlp_ratio = r;
        row.push_back(io::Table::num(model.vit_training_tflops(v, 8), 1));
      }
      t.add_row(row);
    }
  }
  t.print();
  std::cout << "Paper shape checks: best cell at embed 2048 / few heads / heavy MLP;\n"
               "performance decreases with head count and increases with MLP weight;\n"
               "sweep spans roughly the observed 20-52 TFLOPS band.\n";

  if (!args.flag("no-measure")) {
    std::cout << "\nMeasured on this host (blocked CPU GEMM, shapes shrunk 8x):\n";
    io::Table m({"embed dim", "heads", "mlp ratio", "GFLOPS"});
    for (std::size_t e : {128u, 256u}) {
      for (std::size_t h : {4u, 16u}) {
        nn::VitConfig v = base;
        v.image = 64;
        v.embed_dim = e;
        v.heads = h;
        v.mlp_ratio = 4.0;
        m.add_row({std::to_string(e), std::to_string(h), "4",
                   io::Table::num(measured_layer_gflops(v, 1), 2)});
      }
    }
    m.print();
    std::cout << "(Same qualitative trend: larger embedding and fewer heads run faster.)\n";
  }
  return 0;
}
