// Shared machinery for the Fig. 4 / Fig. 5 reproduction benches: builds the
// paper's SQG OSSE (§IV-A-b) and runs the four configurations
//   SQG only / ViT only / SQG+LETKF / ViT+EnSF.
//
// All states are assimilated in Kelvin-equivalent units so the paper's
// "R = I" observation-error setting is meaningful. Model error uses the
// paper's four-component stochastic process referenced to the climatological
// state magnitude.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "da/ensf.hpp"
#include "da/letkf.hpp"
#include "da/osse.hpp"
#include "models/model_error.hpp"
#include "models/scaled_forecast.hpp"
#include "nn/surrogate.hpp"
#include "sqg/sqg.hpp"

namespace turbda::bench {

struct SqgExperimentConfig {
  std::size_t n = 32;          ///< grid (paper: 64; 32 keeps the default bench fast)
  int cycles = 40;             ///< paper: 300 (t in [0, 3600] h, 12 h windows)
  std::size_t members = 20;    ///< paper: 20
  double window_hours = 12.0;
  double obs_error_var = 1.0;  ///< R = I in Kelvin units
  std::uint64_t seed = 2024;
  // Surrogate (kept small so offline pretraining fits a CPU budget).
  std::size_t vit_embed = 64;
  std::size_t vit_depth = 3;
  std::size_t vit_heads = 4;
  std::size_t vit_patch = 4;
  int vit_pretrain_pairs = 96;
  int vit_pretrain_epochs = 25;
  /// true: draw initial members from the climatological pool (paper's
  /// wording); false: truth + 1.5 K perturbations, which also reproduces the
  /// paper's initial error-growth phase for the free runs.
  bool clim_init = false;
  double init_spread_k = 1.5;
  /// Worker threads for the per-member forecast loop (0 = all pool workers,
  /// 1 = serial); bitwise identical for any value.
  std::size_t forecast_threads = 0;
  /// Worker threads inside each 2-D transform (0 = all, 1 = serial). Leave
  /// at 1 when forecasts already run member-parallel.
  std::size_t fft_threads = 1;
};

struct SqgExperiment {
  explicit SqgExperiment(const SqgExperimentConfig& cfg) : cfg(cfg) {
    sqg::SqgConfig mc;
    mc.n = cfg.n;
    mc.dt = (cfg.n <= 32) ? 1800.0 : 900.0;
    // Damping strong enough for a statistically steady attractor: the
    // uniform-shear configuration has an unbounded APE reservoir, so without
    // sufficient thermal relaxation + Ekman drag the eddies outgrow the CFL
    // limit (equilibrates near 4-5 K RMS with these values).
    mc.t_diab = 2.0 * 86400.0;
    mc.r_ekman = 200.0;
    mc.diff_efold = 3.0 * 3600.0;
    mc.n_fft_threads = cfg.fft_threads;
    model = std::make_shared<sqg::SqgModel>(mc);
    kelvin = models::sqg_kelvin_scale(300.0, mc.f);

    // --- spin up a turbulent truth state (in solver units) ------------------
    rng::Rng rng(cfg.seed);
    truth0_raw.resize(model->dim());
    model->random_init(truth0_raw, rng, /*rms=*/2.0 / kelvin, /*k_peak=*/4);
    model->advance(truth0_raw, 40.0 * 86400.0);  // 40 days of development

    // --- climatology: a long trajectory for init ensemble + training pairs --
    std::vector<double> state = truth0_raw;
    const double window_s = cfg.window_hours * 3600.0;
    const int n_snap = cfg.vit_pretrain_pairs + 1;
    climatology.reset({static_cast<std::size_t>(n_snap), model->dim()});
    for (int s = 0; s < n_snap; ++s) {
      model->advance(state, window_s);
      auto row = climatology.row(static_cast<std::size_t>(s));
      for (std::size_t i = 0; i < model->dim(); ++i) row[i] = state[i] * kelvin;
    }

    // Climatological magnitude in Kelvin = the paper's "average SQG model
    // values" that the model-error amplitudes are relative to.
    double s2 = 0.0;
    for (double v : climatology.flat()) s2 += v * v;
    clim_rms = std::sqrt(s2 / static_cast<double>(climatology.size()));

    // The experiment truth starts where the climatology run ended, so the
    // training data precedes (and never overlaps) the evaluation period.
    truth0_raw = state;
  }

  /// Offline-pretrained ViT surrogate ("the pre-trained ViT surrogate of the
  /// true SQG dynamics"). Returns the trained forecast wrapper.
  std::shared_ptr<nn::SurrogateForecast> train_surrogate(std::vector<double>* losses = nullptr) {
    nn::VitConfig vc;
    vc.image = cfg.n;
    vc.patch = cfg.vit_patch;
    vc.channels = 2;
    vc.embed_dim = cfg.vit_embed;
    vc.depth = cfg.vit_depth;
    vc.heads = cfg.vit_heads;
    vc.seed = cfg.seed + 7;
    auto vit = std::make_shared<nn::ViT>(vc);

    nn::FieldScaler scaler;
    scaler.fit(climatology);

    const std::size_t pairs = climatology.extent(0) - 1;
    nn::Tensor xs({pairs, model->dim()}), ys({pairs, model->dim()});
    for (std::size_t p = 0; p < pairs; ++p) {
      std::copy(climatology.row(p).begin(), climatology.row(p).end(), xs.row(p).begin());
      std::copy(climatology.row(p + 1).begin(), climatology.row(p + 1).end(), ys.row(p).begin());
    }
    nn::SurrogateTrainer trainer(vit, scaler, nn::AdamWConfig{.lr = 2e-3});
    rng::Rng trng(cfg.seed + 11);
    auto ls = trainer.fit(xs, ys, cfg.vit_pretrain_epochs, 16, 2e-3, trng);
    if (losses) *losses = ls;
    return std::make_shared<nn::SurrogateForecast>(vit, scaler);
  }

  /// Runs one of the four configurations and returns per-cycle metrics.
  /// `surrogate == nullptr` -> physics (SQG) forecasts with the imperfect-
  /// model error process; otherwise the ViT surrogate forecasts (no injected
  /// error — its imperfection is intrinsic).
  std::vector<da::CycleMetrics> run(da::Filter* filter, nn::SurrogateForecast* surrogate,
                                    da::OsseRunner** runner_out = nullptr) {
    truth_scaled_ = std::make_unique<models::ScaledForecast>(*sqg_raw(), kelvin);
    physics_scaled_ = std::make_unique<models::ScaledForecast>(*sqg_raw2(), kelvin);
    models::ScaledForecast& truth_model = *truth_scaled_;
    models::ScaledForecast& physics = *physics_scaled_;

    obs_ = std::make_unique<da::IdentityObs>(model->dim(), cfg.n, cfg.n, 2);
    rmat_ = std::make_unique<da::DiagonalR>(model->dim(), cfg.obs_error_var);
    da::IdentityObs& h = *obs_;
    da::DiagonalR& r = *rmat_;

    merr_ = std::make_unique<models::ModelErrorProcess>(
        models::ModelErrorConfig{.reference_scale = clim_rms});
    models::ModelErrorProcess& me = *merr_;

    da::OsseConfig oc;
    oc.n_members = cfg.members;
    oc.cycles = cfg.cycles;
    oc.window_hours = cfg.window_hours;
    oc.seed = cfg.seed + 99;
    oc.inject_model_error = (surrogate == nullptr);
    oc.init_spread = cfg.init_spread_k;
    oc.n_forecast_threads = cfg.forecast_threads;

    models::ForecastModel& fcst =
        surrogate ? static_cast<models::ForecastModel&>(*surrogate) : physics;
    runner_ = std::make_unique<da::OsseRunner>(oc, truth_model, fcst, h, r, filter, &me);
    if (runner_out) *runner_out = runner_.get();

    std::vector<double> truth0_k(model->dim());
    for (std::size_t i = 0; i < model->dim(); ++i) truth0_k[i] = truth0_raw[i] * kelvin;

    if (cfg.clim_init) {
      // Initial ensemble from the climatological pool (paper: "random
      // selection of model states from a long-term integration").
      da::Ensemble init(cfg.members, model->dim());
      rng::Rng prng(cfg.seed + 55);
      for (std::size_t m = 0; m < cfg.members; ++m) {
        const auto src = climatology.row(prng.uniform_int(climatology.extent(0)));
        std::copy(src.begin(), src.end(), init.member(m).begin());
      }
      return runner_->run(truth0_k, &init);
    }
    return runner_->run(truth0_k);
  }

  /// Paper-tuned LETKF for this grid: RTPS 0.3, 2000 km cutoff.
  [[nodiscard]] da::LetkfConfig letkf_config() const {
    da::LetkfConfig lc;
    lc.nx = cfg.n;
    lc.ny = cfg.n;
    lc.n_levels = 2;
    lc.domain_m = model->config().L;
    lc.cutoff_m = 2.0e6;
    lc.rtps = 0.3;
    lc.rossby_radius_m = std::sqrt(model->config().nsq) * model->config().H / model->config().f;
    return lc;
  }

  SqgExperimentConfig cfg;
  std::shared_ptr<sqg::SqgModel> model;
  double kelvin = 1.0;
  double clim_rms = 0.0;
  std::vector<double> truth0_raw;  // solver units
  nn::Tensor climatology;          // Kelvin units, (snapshots, dim)

 private:
  // Each ScaledForecast needs a live SqgForecast; keep them owned here.
  sqg::SqgForecast* sqg_raw() {
    if (!fc1_) fc1_ = std::make_unique<sqg::SqgForecast>(model, cfg.window_hours * 3600.0);
    return fc1_.get();
  }
  sqg::SqgForecast* sqg_raw2() {
    if (!fc2_) fc2_ = std::make_unique<sqg::SqgForecast>(model, cfg.window_hours * 3600.0);
    return fc2_.get();
  }
  std::unique_ptr<sqg::SqgForecast> fc1_, fc2_;
  std::unique_ptr<models::ScaledForecast> truth_scaled_, physics_scaled_;
  std::unique_ptr<da::IdentityObs> obs_;
  std::unique_ptr<da::DiagonalR> rmat_;
  std::unique_ptr<models::ModelErrorProcess> merr_;
  std::unique_ptr<da::OsseRunner> runner_;
};

}  // namespace turbda::bench
