// Table II reproduction: the three ViT surrogate architectures and their
// parameter counts (157M / 1.2B / 2.5B).
#include <iostream>

#include "hpc/vit_arch.hpp"
#include "io/table.hpp"

using namespace turbda;

int main() {
  std::cout << "=== Table II: architectures of the ViT surrogate models ===\n";
  io::Table t({"input", "patch", "#layers", "#heads", "#embed dim", "#mlp ratio", "#params",
               "paper"});
  const char* paper[] = {"157M", "1.2B", "2.5B"};
  int i = 0;
  for (const auto& a : hpc::table2_architectures()) {
    t.add_row({std::to_string(a.image) + "^2", std::to_string(a.patch),
               std::to_string(a.depth), std::to_string(a.heads), std::to_string(a.embed_dim),
               io::Table::num(a.mlp_ratio, 0),
               io::Table::sci(static_cast<double>(a.param_count()), 3), paper[i++]});
  }
  t.print();
  std::cout << "\nParameter counts come from the same VitConfig the runnable C++ ViT uses\n"
               "(verified against instantiated networks in tests/test_nn.cpp).\n";
  return 0;
}
