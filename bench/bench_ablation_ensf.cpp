// EnSF design-choice ablations (DESIGN.md §5) on the Lorenz-96 cycling
// testbed: damping h(t), likelihood strength, kernel bandwidth, Euler steps,
// score minibatch J, and spread relaxation.
#include <iostream>

#include "da/ensf.hpp"
#include "da/osse.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "models/lorenz96.hpp"

using namespace turbda;

namespace {

double cycling_rmse(const da::EnsfConfig& fcfg, int cycles = 30) {
  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;
  models::Lorenz96 truth_model(mc), fcst(mc);
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::OsseConfig oc;
  oc.cycles = cycles;
  oc.n_members = 20;
  oc.seed = 99;
  da::EnSF filter(fcfg);
  da::OsseRunner runner(oc, truth_model, fcst, h, r, &filter);
  const auto m = runner.run(truth0);
  double late = 0.0;
  const int k0 = (2 * cycles) / 3;
  for (int k = k0; k < cycles; ++k) late += m[static_cast<std::size_t>(k)].rmse_post;
  return late / (cycles - k0);
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "bench_ablation_ensf: EnSF design-choice ablations on Lorenz-96\n"
                 "  --cycles=<int>   assimilation cycles per run (default 30)\n"
                 "  --threads=<int>  EnSF worker threads for the sample loops;\n"
                 "                   0 = all hardware threads (default 0)\n";
    return 0;
  }
  const int cycles = static_cast<int>(args.get_int("cycles", 30));
  std::cout << "=== EnSF ablations (Lorenz-96, dim 40, R = I, 20 members, late-cycle "
               "analysis RMSE) ===\n";
  da::EnsfConfig base = da::EnsfConfig::stabilized();
  base.n_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  {
    std::cout << "\nDamping h(t) (paper uses T - t and notes alternatives):\n";
    io::Table t({"damping", "RMSE"});
    for (auto [d, name] : {std::pair{da::LikelihoodDamping::LinearDecay, "h(t) = 1 - t"},
                           std::pair{da::LikelihoodDamping::QuadraticDecay, "h(t) = (1-t)^2"},
                           std::pair{da::LikelihoodDamping::Constant, "h(t) = 1"}}) {
      da::EnsfConfig c = base;
      c.damping = d;
      t.add_row({name, io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  {
    std::cout << "\nLikelihood strength (raw Eq. 11 = 1):\n";
    io::Table t({"strength", "RMSE"});
    for (double g : {1.0, 4.0, 8.0, 16.0, 32.0}) {
      da::EnsfConfig c = base;
      c.likelihood_strength = g;
      t.add_row({io::Table::num(g, 0), io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  {
    std::cout << "\nScore kernel bandwidth (raw Eq. 16 = 0):\n";
    io::Table t({"kappa", "RMSE"});
    for (double k : {0.0, 0.1, 0.3, 0.6, 1.0}) {
      da::EnsfConfig c = base;
      c.kernel_bandwidth = k;
      t.add_row({io::Table::num(k, 1), io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  {
    std::cout << "\nReverse-SDE Euler steps:\n";
    io::Table t({"steps", "RMSE"});
    for (int s : {20, 50, 100, 200}) {
      da::EnsfConfig c = base;
      c.euler_steps = s;
      t.add_row({std::to_string(s), io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  {
    std::cout << "\nScore minibatch J (Eq. 15; 0 = full ensemble):\n";
    io::Table t({"J", "RMSE"});
    for (int j : {0, 5, 10, 20}) {
      da::EnsfConfig c = base;
      c.minibatch = j;
      t.add_row({std::to_string(j), io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  {
    std::cout << "\nSpread relaxation to prior (paper: \"simply relaxed to the prior "
                 "values\"):\n";
    io::Table t({"relax", "RMSE"});
    for (double rs : {0.0, 0.5, 1.0}) {
      da::EnsfConfig c = base;
      c.relax_spread = rs;
      t.add_row({io::Table::num(rs, 1), io::Table::num(cycling_rmse(c, cycles), 3)});
    }
    t.print();
  }
  std::cout << "\nKey finding (documented in EXPERIMENTS.md): with 20 isolated members and\n"
               "moderately informative observations, the raw Eq.-16 score barely contracts;\n"
               "kernel smoothing + likelihood strengthening restore the paper's stable\n"
               "tracking without localization or per-problem tuning.\n";
  return 0;
}
