// Fig. 10 reproduction: weak scaling of EnSF on Frontier up to 1024 GPUs for
// state dimensions 1e6 / 1e7 / 1e8. The large-scale lines come from the
// calibrated model (anchored to the paper's 0.4 s and 28 s per-step
// measurements); the measured section runs the real EnSF over thread-backed
// ensemble-parallel ranks at CPU-sized dimensions and demonstrates the flat
// weak-scaling property on real code paths.
#include <iostream>

#include "common/timer.hpp"
#include "da/ensf.hpp"
#include "hpc/scaling_sim.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "parallel/sim_comm.hpp"
#include "rng/rng.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);

  std::cout << "=== Fig. 10: EnSF weak scaling on Frontier (model) ===\n";
  std::cout << "Time per filter step [s]; ensemble members are rank-parallel, so lines are "
               "flat:\n";
  hpc::EnsfScalingModel model;
  io::Table t({"GPUs", "dim 1e6", "dim 1e7", "dim 1e8"});
  for (int n : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    t.add_row({std::to_string(n), io::Table::num(model.step_seconds(1e6, n), 3),
               io::Table::num(model.step_seconds(1e7, n), 3),
               io::Table::num(model.step_seconds(1e8, n), 3)});
  }
  t.print();
  std::cout << "Paper anchors: ~0.4 s/step at 1M dimensions, ~28 s at 100M.\n";

  if (!args.flag("no-measure")) {
    const auto dim = static_cast<std::size_t>(args.get_int("dim", 50000));
    const int members_per_rank = static_cast<int>(args.get_int("members-per-rank", 4));
    std::cout << "\nMeasured: real EnSF analysis over ensemble-parallel SimComm ranks\n"
              << "(dim " << dim << ", " << members_per_rank
              << " members/rank; weak scaling over ranks):\n";
    io::Table m({"ranks", "members", "step [s]", "vs 1 rank"});
    double t1 = 0.0;
    for (int ranks : {1, 2, 4}) {
      double step_time = 0.0;
      parallel::run_world(ranks, [&](parallel::SimComm& c) {
        // Each rank runs its own member block through the filter; the final
        // mean is MPI-reduced, exactly the paper's layout (§III-A3).
        da::Ensemble ens(static_cast<std::size_t>(members_per_rank) + 1, dim);
        rng::Rng rng(123 + static_cast<std::uint64_t>(c.rank()));
        for (std::size_t k = 0; k < ens.size(); ++k)
          for (std::size_t i = 0; i < dim; ++i) ens.member(k)[i] = rng.gaussian();
        std::vector<double> y(dim, 0.5);
        da::IdentityObs h(dim);
        da::DiagonalR r(dim, 1.0);
        da::EnsfConfig cfg = da::EnsfConfig::stabilized();
        cfg.euler_steps = 20;  // CPU-budget setting; cost is linear in steps
        da::EnSF filter(cfg);
        c.barrier();
        WallTimer timer;
        filter.analyze(ens, y, h, r);
        auto mean = ens.mean();
        c.allreduce_sum(mean);  // global analysis mean
        c.barrier();
        if (c.rank() == 0) step_time = timer.seconds();
      });
      if (ranks == 1) t1 = step_time;
      m.add_row({std::to_string(ranks),
                 std::to_string(ranks * (members_per_rank + 1)),
                 io::Table::num(step_time, 3), io::Table::num(step_time / t1, 2) + "x"});
    }
    m.print();
    std::cout << "(Flat-ish line = weak scaling; on this single-core host the thread ranks\n"
               " time-share the CPU, so the per-rank times include that serialization.)\n";
  }
  return 0;
}
