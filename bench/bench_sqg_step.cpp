// SQG forecast hot-path bench: times the real-FFT pair, the spectral
// tendency, and the full RK4 step at n = 64/128/256 across thread counts,
// plus the ensemble forecast (the paper's throughput axis) in both the
// member-parallel per-member and the block-batched (step_batch) form.
// Reports the active FFT SIMD dispatch level (scalar / avx2 / avx2fma) and
// per-row hardware context, emits a machine-readable BENCH_sqg.json so
// later PRs can track the perf trajectory, and verifies that every
// multi-threaded and batched result is bitwise identical to the
// single-threaded per-member one.
//
//   build/bench_sqg_step [--sizes=64,128,256] [--threads=1,2,4]
//                        [--members=20] [--reps=3] [--json=BENCH_sqg.json]
//                        [--smoke]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fft/fft.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"

using namespace turbda;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  return out;
}

/// Best-of-`reps` wall time of fn(), each rep running `iters` iterations.
template <class F>
double best_ms(int reps, int iters, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, ms_since(t0) / iters);
  }
  return best;
}

struct Result {
  std::size_t n = 0;
  std::size_t threads = 0;
  double fft_pair_ms = 0.0;  // full Hermitian-redundant layout (legacy)
  double fft_half_ms = 0.0;  // packed half-spectrum layout (the hot path)
  double tendency_ms = 0.0;
  double step_ms = 0.0;
  double ens_ms = 0.0;        // per-member forecasts fanned over the pool
  double ens_batch_ms = 0.0;  // block-batched step_batch forecasts
  bool bitwise = true;
};

sqg::SqgConfig model_config(std::size_t n, std::size_t fft_threads) {
  sqg::SqgConfig cfg;
  cfg.n = n;
  cfg.dt = 900.0;
  cfg.n_fft_threads = fft_threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "bench_sqg_step: SQG spectral-core timings (FFT / tendency / RK4 / ensemble)\n"
                 "  --sizes=<csv>    grid sizes (default 64,128,256)\n"
                 "  --threads=<csv>  thread counts for FFT + ensemble scaling (default 1,2,4)\n"
                 "  --members=<int>  ensemble size for the forecast timing (default 20)\n"
                 "  --reps=<int>     best-of repetitions (default 3)\n"
                 "  --json=<path>    machine-readable output (default BENCH_sqg.json)\n"
                 "  --smoke          small fast configuration for CI\n";
    return 0;
  }
  const bool smoke = args.flag("smoke");
  auto sizes = parse_list(args.get_str("sizes", smoke ? "32,64" : "64,128,256"));
  auto threads = parse_list(args.get_str("threads", smoke ? "1,2" : "1,2,4"));
  const auto members = static_cast<std::size_t>(args.get_int("members", smoke ? 6 : 20));
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 1 : 3));
  const std::string json_path = args.get_str("json", "BENCH_sqg.json");
  const unsigned hw = std::thread::hardware_concurrency();
  const char* simd = fft::simd_level_name(fft::active_simd_level());

  std::cout << "=== SQG forecast hot path (" << hw << " hardware threads, FFT SIMD dispatch: "
            << simd << ", best of " << reps << ", " << members << "-member ensemble) ===\n\n";

  std::vector<Result> results;
  for (const std::size_t n : sizes) {
    const std::size_t nn = n * n;
    const int fft_iters = smoke ? 20 : ((n >= 256) ? 50 : 200);
    const int ten_iters = smoke ? 5 : ((n >= 256) ? 10 : 40);
    const int step_iters = smoke ? 2 : ((n >= 256) ? 5 : 20);

    // Serial (1-thread) reference for the bitwise cross-thread check — run
    // unconditionally so the claim holds even when 1 is not in --threads.
    std::vector<double> theta;
    std::vector<std::vector<double>> ref_members(members);
    {
      sqg::SqgModel ref_model(model_config(n, 1));
      rng::Rng rng(2024 + n);
      theta.resize(ref_model.dim());
      ref_model.random_init(theta, rng, 1.0, 4);
      sqg::SqgWorkspace ws(n);
      for (std::size_t m = 0; m < members; ++m) {
        ref_members[m] = theta;
        ref_model.step(ref_members[m], 1, ws);
      }
    }

    for (const std::size_t nt : threads) {
      sqg::SqgModel model(model_config(n, nt));
      sqg::SqgWorkspace ws(n);

      Result res;
      res.n = n;
      res.threads = nt;

      // Real-FFT pair on one level: legacy full Hermitian-redundant layout vs
      // the packed half-spectrum pipeline the solver now runs on.
      fft::Fft2D fft(n, n);
      fft.set_max_threads(nt);
      std::vector<double> grid(theta.begin(), theta.begin() + static_cast<long>(nn));
      std::vector<fft::Cplx> spec(nn);
      res.fft_pair_ms = best_ms(reps, fft_iters, [&] {
        fft.forward_real(grid, spec);
        fft.inverse_real(spec, grid);
      });
      std::vector<fft::Cplx> hspec(fft.half_size());
      res.fft_half_ms = best_ms(reps, fft_iters, [&] {
        fft.forward_half(grid, hspec);
        fft.inverse_half(hspec, grid);
      });

      // Spectral tendency (the RK4 inner kernel).
      std::vector<fft::Cplx> tspec(model.spec_dim()), tout(model.spec_dim());
      model.to_spectral(theta, tspec);
      res.tendency_ms = best_ms(reps, ten_iters, [&] { model.tendency(tspec, tout, ws); });

      // Full RK4 step.
      {
        std::vector<double> state = theta;
        model.step(state, 1, ws);  // warm up
        res.step_ms = best_ms(reps, 1, [&] { state = theta; model.step(state, step_iters, ws); }) /
                      step_iters;
      }

      // Member-parallel ensemble forecast: `members` independent states, one
      // RK4 step each, fanned out over the pool with max_par = nt.
      std::vector<std::vector<double>> states(members);
      res.ens_ms = best_ms(reps, 1, [&] {
        for (std::size_t m = 0; m < members; ++m) states[m] = theta;
        parallel::parallel_for(
            members,
            [&](std::size_t b, std::size_t e) {
              for (std::size_t m = b; m < e; ++m)
                model.step(states[m], 1, sqg::tls_workspace(n));
            },
            /*min_grain=*/1, nt);
      });
      for (std::size_t m = 0; m < members; ++m)
        res.bitwise = res.bitwise && std::memcmp(states[m].data(), ref_members[m].data(),
                                                 states[m].size() * sizeof(double)) == 0;

      // Block-batched ensemble forecast: the same members as one contiguous
      // (members x dim) block, each worker advancing its chunk through
      // step_batch — the forecast path the cycling runners use.
      std::vector<double> block(members * model.dim());
      res.ens_batch_ms = best_ms(reps, 1, [&] {
        for (std::size_t m = 0; m < members; ++m)
          std::copy(theta.begin(), theta.end(), block.begin() + static_cast<long>(m * model.dim()));
        parallel::parallel_for(
            members,
            [&](std::size_t b, std::size_t e) {
              model.step_batch(std::span<double>(block.data() + b * model.dim(),
                                                 (e - b) * model.dim()),
                               e - b, 1);
            },
            /*min_grain=*/1, nt);
      });
      for (std::size_t m = 0; m < members; ++m)
        res.bitwise = res.bitwise && std::memcmp(block.data() + m * model.dim(),
                                                 ref_members[m].data(),
                                                 model.dim() * sizeof(double)) == 0;
      results.push_back(res);
    }
  }

  io::Table t({"n", "threads", "fft pair [ms]", "half pair [ms]", "tendency [ms]",
               "RK4 step [ms]", "ens fcst [ms]", "ens batch [ms]", "bitwise == t1"});
  for (const auto& r : results) {
    t.add_row({std::to_string(r.n), std::to_string(r.threads), io::Table::num(r.fft_pair_ms, 3),
               io::Table::num(r.fft_half_ms, 3), io::Table::num(r.tendency_ms, 3),
               io::Table::num(r.step_ms, 3), io::Table::num(r.ens_ms, 3),
               io::Table::num(r.ens_batch_ms, 3), r.bitwise ? "yes" : "NO"});
  }
  t.print();

  bool all_bitwise = true;
  for (const auto& r : results) all_bitwise = all_bitwise && r.bitwise;
  std::cout << "\nMulti-threaded results bitwise identical to 1 thread: "
            << (all_bitwise ? "yes" : "NO") << "\n";

  // Per-row hardware context (hw_threads, simd) rides along so downstream
  // consumers (bench_guard) can reject rows whose thread count oversubscribed
  // the recording machine without trusting the file-level header.
  std::ofstream js(json_path);
  js << "{\n  \"bench\": \"sqg_step\",\n  \"hardware_threads\": " << hw
     << ",\n  \"simd_level\": \"" << simd << "\",\n  \"members\": " << members
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    js << "    {\"n\": " << r.n << ", \"threads\": " << r.threads
       << ", \"hw_threads\": " << hw << ", \"simd\": \"" << simd << "\""
       << ", \"fft_pair_ms\": " << r.fft_pair_ms << ", \"fft_half_pair_ms\": " << r.fft_half_ms
       << ", \"tendency_ms\": " << r.tendency_ms
       << ", \"rk4_step_ms\": " << r.step_ms << ", \"ens_forecast_ms\": " << r.ens_ms
       << ", \"ens_batch_forecast_ms\": " << r.ens_batch_ms
       << ", \"bitwise_vs_t1\": " << (r.bitwise ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::cout << "Machine-readable timings written to " << json_path << ".\n";
  return all_bitwise ? 0 : 1;
}
