// Fig. 4 reproduction: RMSE over assimilation cycles for the four
// configurations of the paper's accuracy test —
//   SQG only / ViT only / SQG+LETKF / ViT+EnSF —
// on the SQG OSSE with identity observations, R = I (Kelvin units), 20
// members, and the four-component stochastic model-error process.
//
// Defaults run a 32^2 grid and 40 cycles so the bench finishes in minutes on
// one CPU core; pass --full for the paper's 64^2 / 300-cycle setting.
#include <iostream>

#include "bench/../bench/sqg_experiment.hpp"
#include "io/args.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::SqgExperimentConfig cfg;
  if (args.flag("full")) {
    cfg.n = 64;
    cfg.cycles = 300;
  }
  cfg.n = static_cast<std::size_t>(args.get_int("n", static_cast<long>(cfg.n)));
  cfg.cycles = static_cast<int>(args.get_int("cycles", cfg.cycles));
  cfg.clim_init = args.flag("clim-init");
  // Member-parallel SQG forecasts (0 = all pool workers, 1 = serial);
  // bitwise identical for any value.
  cfg.forecast_threads = static_cast<std::size_t>(args.get_int("forecast-threads", 0));

  std::cout << "=== Fig. 4: RMSE of the four test cases (SQG " << cfg.n << "x" << cfg.n
            << "x2, " << cfg.cycles << " cycles, 12 h windows, R = I, 20 members) ===\n";
  std::cout << "Building SQG truth, climatology and pretrained ViT surrogate...\n";
  bench::SqgExperiment exp(cfg);
  std::cout << "Climatological state magnitude: " << io::Table::num(exp.clim_rms, 2)
            << " K (model-error amplitudes are 20-50% of this, firing 20/15/10/5% of "
               "windows)\n";

  std::vector<double> losses;
  auto vit_a = exp.train_surrogate(&losses);
  auto vit_b = exp.train_surrogate(nullptr);
  std::cout << "ViT pretraining loss: " << io::Table::sci(losses.front(), 2) << " -> "
            << io::Table::sci(losses.back(), 2) << " over " << losses.size() << " epochs\n\n";

  // --- the four configurations ---------------------------------------------
  const auto sqg_only = exp.run(nullptr, nullptr);
  const auto vit_only = exp.run(nullptr, vit_a.get());
  da::LETKF letkf(exp.letkf_config());
  const auto sqg_letkf = exp.run(&letkf, nullptr);
  da::EnSF ensf(da::EnsfConfig::stabilized());
  const auto vit_ensf = exp.run(&ensf, vit_b.get());

  io::Table t({"t [h]", "SQG only", "ViT only", "SQG+LETKF", "ViT+EnSF"});
  const int stride = std::max(1, cfg.cycles / 20);
  io::CsvWriter csv("fig4_rmse.csv", {"time_hours", "sqg_only", "vit_only", "sqg_letkf",
                                      "vit_ensf"});
  for (int k = 0; k < cfg.cycles; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    csv.row({sqg_only[ku].time_hours, sqg_only[ku].rmse_post, vit_only[ku].rmse_post,
             sqg_letkf[ku].rmse_post, vit_ensf[ku].rmse_post});
    if (k % stride == 0 || k == cfg.cycles - 1) {
      t.add_row({io::Table::num(sqg_only[ku].time_hours, 0),
                 io::Table::num(sqg_only[ku].rmse_post, 2),
                 io::Table::num(vit_only[ku].rmse_post, 2),
                 io::Table::num(sqg_letkf[ku].rmse_post, 2),
                 io::Table::num(vit_ensf[ku].rmse_post, 2)});
    }
  }
  t.print();

  auto late_mean = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (3 * cfg.cycles) / 4;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };
  std::cout << "\nMean RMSE over the last quarter of the run:\n";
  io::Table s({"configuration", "RMSE [K]"});
  s.add_row({"SQG only", io::Table::num(late_mean(sqg_only), 2)});
  s.add_row({"ViT only", io::Table::num(late_mean(vit_only), 2)});
  s.add_row({"SQG+LETKF", io::Table::num(late_mean(sqg_letkf), 2)});
  s.add_row({"ViT+EnSF", io::Table::num(late_mean(vit_ensf), 2)});
  s.print();
  std::cout << "\nPaper shape checks: free runs (SQG only / ViT only) grow fast; LETKF\n"
               "degrades as the (spread-invisible) model errors accumulate; ViT+EnSF stays\n"
               "stable near the observation-noise floor throughout. Full series in\n"
               "fig4_rmse.csv.\n";
  return 0;
}
