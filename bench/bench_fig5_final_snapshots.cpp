// Fig. 5 reproduction: analysis ensemble means and their errors against the
// ground-truth potential-temperature field at the final observation time,
// for all four configurations. Writes NPY snapshots for plotting and prints
// the error norms the figure visualizes.
#include <iostream>

#include "bench/../bench/sqg_experiment.hpp"
#include "io/args.hpp"
#include "io/npy.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::SqgExperimentConfig cfg;
  cfg.cycles = static_cast<int>(args.get_int("cycles", 30));
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.forecast_threads = static_cast<std::size_t>(args.get_int("forecast-threads", 0));
  if (args.flag("full")) {
    cfg.n = 64;
    cfg.cycles = 300;
  }

  std::cout << "=== Fig. 5: final-time analysis means and errors (t = "
            << cfg.cycles * cfg.window_hours << " h) ===\n";
  bench::SqgExperiment exp(cfg);
  auto vit_a = exp.train_surrogate();
  auto vit_b = exp.train_surrogate();

  struct Config {
    std::string name;
    da::Filter* filter;
    nn::SurrogateForecast* surrogate;
  };
  da::LETKF letkf(exp.letkf_config());
  da::EnSF ensf(da::EnsfConfig::stabilized());
  const Config configs[] = {
      {"sqg_only", nullptr, nullptr},
      {"vit_only", nullptr, vit_a.get()},
      {"sqg_letkf", &letkf, nullptr},
      {"vit_ensf", &ensf, vit_b.get()},
  };

  io::Table t({"configuration", "final RMSE [K]", "max |err| [K]", "field min [K]",
               "field max [K]"});
  std::vector<double> truth;
  for (const auto& c : configs) {
    da::OsseRunner* runner = nullptr;
    exp.run(c.filter, c.surrogate, &runner);
    truth = runner->final_truth();
    const auto mean = runner->ensemble().mean();
    double maxerr = 0.0, mn = 1e300, mx = -1e300;
    for (std::size_t i = 0; i < mean.size(); ++i) {
      maxerr = std::max(maxerr, std::abs(mean[i] - truth[i]));
      mn = std::min(mn, mean[i]);
      mx = std::max(mx, mean[i]);
    }
    std::vector<double> err(mean.size());
    for (std::size_t i = 0; i < mean.size(); ++i) err[i] = mean[i] - truth[i];
    io::write_npy("fig5_mean_" + c.name + ".npy", mean, {2, cfg.n, cfg.n});
    io::write_npy("fig5_err_" + c.name + ".npy", err, {2, cfg.n, cfg.n});
    t.add_row({c.name, io::Table::num(da::rmse(mean, truth), 2), io::Table::num(maxerr, 2),
               io::Table::num(mn, 1), io::Table::num(mx, 1)});
  }
  io::write_npy("fig5_truth.npy", truth, {2, cfg.n, cfg.n});
  t.print();
  std::cout << "\nSnapshots written as fig5_{truth,mean_*,err_*}.npy (2 x " << cfg.n << " x "
            << cfg.n << ", float64, levels z=0 and z=H).\n"
            << "Paper shape checks: EnSF+ViT closest to truth; LETKF captures the\n"
               "large-scale eddies but misses fine-scale extremes; free runs decorrelate.\n";
  return 0;
}
