// LETKF regularization ablations (DESIGN.md §5): cut-off localization radius
// and RTPS inflation factor, on a small SQG OSSE. The paper tunes these to
// 2000 km / 0.3 in an error-free twin experiment.
#include <iostream>

#include "bench/../bench/sqg_experiment.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::SqgExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.cycles = static_cast<int>(args.get_int("cycles", 25));

  std::cout << "=== LETKF ablations (SQG " << cfg.n << "^2 OSSE, " << cfg.cycles
            << " cycles, imperfect model) ===\n";
  bench::SqgExperiment exp(cfg);

  auto late = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (2 * cfg.cycles) / 3;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };

  std::cout << "\nCut-off localization radius (paper's tuned value: 2000 km):\n";
  io::Table t({"cutoff [km]", "late RMSE [K]"});
  for (double km : {500.0, 1000.0, 2000.0, 4000.0, 10000.0}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.cutoff_m = km * 1e3;
    da::LETKF letkf(lc);
    t.add_row({io::Table::num(km, 0), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  t.print();

  std::cout << "\nRTPS inflation factor (paper's tuned value: 0.3):\n";
  io::Table rt({"RTPS", "late RMSE [K]"});
  for (double a : {0.0, 0.15, 0.3, 0.6, 0.9}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.rtps = a;
    da::LETKF letkf(lc);
    rt.add_row({io::Table::num(a, 2), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  rt.print();
  std::cout << "\n(EnSF needs neither knob — the paper's central operational argument.)\n";
  return 0;
}
