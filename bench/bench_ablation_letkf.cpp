// LETKF regularization ablations (DESIGN.md §5): cut-off localization radius
// and RTPS inflation factor, on a small SQG OSSE. The paper tunes these to
// 2000 km / 0.3 in an error-free twin experiment.
//
// Also measures thread scaling of the per-column local analyses: the LETKF
// hot path is embarrassingly parallel over grid columns, and the parallel
// result must stay bitwise identical to the single-threaded one.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/../bench/sqg_experiment.hpp"
#include "common/timer.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "rng/rng.hpp"
#include "simd/dispatch.hpp"

using namespace turbda;

namespace {

/// One thread-scaling measurement, kept for the machine-readable output.
struct ScaleRow {
  std::size_t n = 0, threads = 0, members = 0;
  double analysis_ms = 0.0;  ///< best-of-reps wall time of one analyze()
  da::LetkfTimings ph;       ///< phase breakdown of the best rep
  double plan_ms = 0.0;      ///< one-time local-obs plan build (prepare())
  bool bitwise = false;
};

/// Times `reps` LETKF analyses of a synthetic ensemble at each thread count
/// and verifies bitwise agreement with the single-threaded analysis.
/// Returns false when any thread count produced a bitwise mismatch, so CI
/// can fail on a determinism regression. Appends one ScaleRow per thread
/// count to `rows`.
[[nodiscard]] bool thread_scaling(std::size_t n, std::size_t members, int reps,
                                  std::vector<ScaleRow>& rows) {
  reps = std::max(1, reps);
  da::LetkfConfig lc;
  lc.nx = n;
  lc.ny = n;
  lc.n_levels = 2;
  lc.domain_m = 20.0e6;
  lc.cutoff_m = 2.0e6;
  lc.rtps = 0.3;

  const std::size_t dim = lc.nx * lc.ny * lc.n_levels;
  std::vector<double> truth(dim), y(dim);
  rng::Rng rng(42);
  rng.fill_gaussian(truth, 0.0, 2.0);
  for (std::size_t i = 0; i < dim; ++i) y[i] = truth[i] + rng.gaussian();
  da::IdentityObs h(dim, lc.nx, lc.ny, lc.n_levels);
  da::DiagonalR r(dim, 1.0);

  da::Ensemble prior(members, dim);
  prior.init_perturbed(truth, 1.5, rng);

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // Record only thread counts this machine can actually run: oversubscribed
  // rows (threads > hardware) measure scheduler noise, not scaling, and have
  // polluted committed baselines before. They are refused at record time.
  std::vector<std::size_t> counts, refused;
  for (const std::size_t c : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    (c <= hw ? counts : refused).push_back(c);
  }
  if (hw > 4) counts.push_back(hw);
  if (!refused.empty()) {
    std::cout << "\nNote: skipping oversubscribed thread counts (hardware has " << hw
              << " thread" << (hw == 1 ? "" : "s") << "):";
    for (const std::size_t c : refused) std::cout << " " << c;
    std::cout << " — such rows are noise and are not recorded.\n";
  }

  std::cout << "\nThread scaling (LETKF analyze, " << n << "^2 x 2 grid, " << members
            << " members, " << hw << " hardware threads, best of " << reps << "):\n";
  io::Table t({"threads", "time [ms]", "speedup", "bitwise == 1 thread"});
  double t1 = 0.0;
  bool all_same = true;
  da::Ensemble ref(members, dim);
  for (std::size_t nt : counts) {
    lc.n_threads = nt;
    lc.collect_timings = true;
    da::LETKF letkf(lc);
    // Build the cached local-obs plan up front (the streaming usage), so the
    // timed analyses below all hit the cache; the build cost is reported as
    // its own column.
    letkf.prepare(h, r);
    const double plan_ms = letkf.timings().plan_ms;
    double best = 1e300;
    da::LetkfTimings best_ph;
    da::Ensemble work(members, dim);
    for (int rep = 0; rep < reps; ++rep) {
      work.data() = prior.data();
      letkf.reset_timings();
      WallTimer timer;
      letkf.analyze(work, y, h, r);
      const double ms = timer.milliseconds();
      if (ms < best) {
        best = ms;
        best_ph = letkf.timings();
      }
    }
    if (nt == 1) {
      t1 = best;
      ref.data() = work.data();
    }
    const bool same = 0 == std::memcmp(ref.data().data(), work.data().data(),
                                       members * dim * sizeof(double));
    all_same = all_same && same;
    t.add_row({std::to_string(nt), io::Table::num(best, 2), io::Table::num(t1 / best, 2),
               same ? "yes" : "NO"});
    rows.push_back({n, nt, members, best, best_ph, plan_ms, same});
  }
  t.print();

  std::cout << "\nPer-phase breakdown (ms per analysis, summed over workers; plan is a one-time\n"
               "per-network cost, 'other' = wall - phases, only meaningful serially):\n";
  io::Table pt({"threads", "plan", "select", "gather", "gram", "eigh", "weights", "combine",
                "other", "groups/columns", "batched/scalar cols"});
  for (const ScaleRow& r0 : rows) {
    if (r0.n != n || r0.members != members) continue;
    const da::LetkfTimings& ph = r0.ph;
    const double phased = ph.select_ms + ph.gather_ms + ph.gram_ms + ph.eigh_ms + ph.weights_ms +
                          ph.combine_ms;
    pt.add_row({std::to_string(r0.threads), io::Table::num(r0.plan_ms, 1),
                io::Table::num(ph.select_ms, 1), io::Table::num(ph.gather_ms, 1),
                io::Table::num(ph.gram_ms, 1), io::Table::num(ph.eigh_ms, 1),
                io::Table::num(ph.weights_ms, 1), io::Table::num(ph.combine_ms, 1),
                r0.threads == 1 ? io::Table::num(r0.analysis_ms - phased, 1) : std::string("-"),
                std::to_string(ph.groups) + "/" + std::to_string(ph.columns),
                std::to_string(ph.batched_columns) + "/" + std::to_string(ph.scalar_columns)});
  }
  pt.print();
  std::cout << "('batched/scalar cols' is the SIMD lane-occupancy split: columns solved in\n"
               " full lane batches vs the sequential remainder path.)\n";
  if (!all_same) std::cout << "ERROR: multi-threaded analysis diverged from 1 thread\n";
  return all_same;
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows, std::size_t hw) {
  std::ofstream js(path);
  const char* simd = simd::simd_level_name(simd::active_simd_level());
  js << "{\n  \"bench\": \"ablation_letkf\",\n  \"hardware_threads\": " << hw
     << ",\n  \"simd_level\": \"" << simd << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r0 = rows[i];
    js << "    {\"n\": " << r0.n << ", \"threads\": " << r0.threads << ", \"hw_threads\": " << hw
       << ", \"simd\": \"" << simd << "\", \"members\": " << r0.members
       << ", \"analysis_ms\": " << r0.analysis_ms << ", \"plan_ms\": " << r0.plan_ms
       << ", \"select_ms\": " << r0.ph.select_ms << ", \"gather_ms\": " << r0.ph.gather_ms
       << ", \"gram_ms\": " << r0.ph.gram_ms << ", \"eigh_ms\": " << r0.ph.eigh_ms
       << ", \"weights_ms\": " << r0.ph.weights_ms << ", \"combine_ms\": " << r0.ph.combine_ms
       << ", \"groups\": " << r0.ph.groups << ", \"columns\": " << r0.ph.columns
       << ", \"batched_columns\": " << r0.ph.batched_columns
       << ", \"scalar_columns\": " << r0.ph.scalar_columns
       << ", \"bitwise_vs_t1\": " << (r0.bitwise ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::cout << "\nMachine-readable timings written to " << path << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "bench_ablation_letkf: LETKF regularization ablations + thread scaling\n"
                 "  --n=<int>        SQG grid size for the ablations (default 32)\n"
                 "  --cycles=<int>   assimilation cycles per ablation run (default 25)\n"
                 "  --scale-n=<int>  grid size for the thread-scaling section (default 48)\n"
                 "  --members=<int>  ensemble size for the thread-scaling section (default 20)\n"
                 "  --reps=<int>     timing repetitions per thread count (default 3)\n"
                 "  --threads=<int>  LETKF worker threads for the ablation runs;\n"
                 "                   0 = all hardware threads (default 0)\n"
                 "  --json=<path>    machine-readable output (default BENCH_letkf.json)\n"
                 "  --no-ablations   run only the thread-scaling section\n";
    return 0;
  }
  bench::SqgExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.cycles = static_cast<int>(args.get_int("cycles", 25));

  std::vector<ScaleRow> rows;
  const bool deterministic = thread_scaling(static_cast<std::size_t>(args.get_int("scale-n", 48)),
                                            static_cast<std::size_t>(args.get_int("members", 20)),
                                            static_cast<int>(args.get_int("reps", 3)), rows);
  write_json(args.get_str("json", "BENCH_letkf.json"), rows,
             std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  if (args.flag("no-ablations")) return deterministic ? 0 : 1;

  std::cout << "\n=== LETKF ablations (SQG " << cfg.n << "^2 OSSE, " << cfg.cycles
            << " cycles, imperfect model) ===\n";
  bench::SqgExperiment exp(cfg);

  auto late = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (2 * cfg.cycles) / 3;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };
  const auto n_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::cout << "\nCut-off localization radius (paper's tuned value: 2000 km):\n";
  io::Table t({"cutoff [km]", "late RMSE [K]"});
  for (double km : {500.0, 1000.0, 2000.0, 4000.0, 10000.0}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.cutoff_m = km * 1e3;
    lc.n_threads = n_threads;
    da::LETKF letkf(lc);
    t.add_row({io::Table::num(km, 0), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  t.print();

  std::cout << "\nRTPS inflation factor (paper's tuned value: 0.3):\n";
  io::Table rt({"RTPS", "late RMSE [K]"});
  for (double a : {0.0, 0.15, 0.3, 0.6, 0.9}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.rtps = a;
    lc.n_threads = n_threads;
    da::LETKF letkf(lc);
    rt.add_row({io::Table::num(a, 2), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  rt.print();
  std::cout << "\n(EnSF needs neither knob — the paper's central operational argument.)\n";
  return deterministic ? 0 : 1;
}
