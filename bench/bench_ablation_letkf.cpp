// LETKF regularization ablations (DESIGN.md §5): cut-off localization radius
// and RTPS inflation factor, on a small SQG OSSE. The paper tunes these to
// 2000 km / 0.3 in an error-free twin experiment.
//
// Also measures thread scaling of the per-column local analyses: the LETKF
// hot path is embarrassingly parallel over grid columns, and the parallel
// result must stay bitwise identical to the single-threaded one.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/../bench/sqg_experiment.hpp"
#include "common/timer.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "rng/rng.hpp"

using namespace turbda;

namespace {

/// Times `reps` LETKF analyses of a synthetic ensemble at each thread count
/// and verifies bitwise agreement with the single-threaded analysis.
/// Returns false when any thread count produced a bitwise mismatch, so CI
/// can fail on a determinism regression.
[[nodiscard]] bool thread_scaling(std::size_t n, std::size_t members, int reps) {
  reps = std::max(1, reps);
  da::LetkfConfig lc;
  lc.nx = n;
  lc.ny = n;
  lc.n_levels = 2;
  lc.domain_m = 20.0e6;
  lc.cutoff_m = 2.0e6;
  lc.rtps = 0.3;

  const std::size_t dim = lc.nx * lc.ny * lc.n_levels;
  std::vector<double> truth(dim), y(dim);
  rng::Rng rng(42);
  rng.fill_gaussian(truth, 0.0, 2.0);
  for (std::size_t i = 0; i < dim; ++i) y[i] = truth[i] + rng.gaussian();
  da::IdentityObs h(dim, lc.nx, lc.ny, lc.n_levels);
  da::DiagonalR r(dim, 1.0);

  da::Ensemble prior(members, dim);
  prior.init_perturbed(truth, 1.5, rng);

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);

  std::cout << "\nThread scaling (LETKF analyze, " << n << "^2 x 2 grid, " << members
            << " members, " << hw << " hardware threads, best of " << reps << "):\n";
  io::Table t({"threads", "time [ms]", "speedup", "bitwise == 1 thread"});
  double t1 = 0.0;
  bool all_same = true;
  da::Ensemble ref(members, dim);
  for (std::size_t nt : counts) {
    lc.n_threads = nt;
    da::LETKF letkf(lc);
    double best = 1e300;
    da::Ensemble work(members, dim);
    for (int rep = 0; rep < reps; ++rep) {
      work.data() = prior.data();
      WallTimer timer;
      letkf.analyze(work, y, h, r);
      best = std::min(best, timer.milliseconds());
    }
    if (nt == 1) {
      t1 = best;
      ref.data() = work.data();
    }
    const bool same = 0 == std::memcmp(ref.data().data(), work.data().data(),
                                       members * dim * sizeof(double));
    all_same = all_same && same;
    t.add_row({std::to_string(nt), io::Table::num(best, 2), io::Table::num(t1 / best, 2),
               same ? "yes" : "NO"});
  }
  t.print();
  if (!all_same) std::cout << "ERROR: multi-threaded analysis diverged from 1 thread\n";
  return all_same;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "bench_ablation_letkf: LETKF regularization ablations + thread scaling\n"
                 "  --n=<int>        SQG grid size for the ablations (default 32)\n"
                 "  --cycles=<int>   assimilation cycles per ablation run (default 25)\n"
                 "  --scale-n=<int>  grid size for the thread-scaling section (default 48)\n"
                 "  --members=<int>  ensemble size for the thread-scaling section (default 20)\n"
                 "  --reps=<int>     timing repetitions per thread count (default 3)\n"
                 "  --threads=<int>  LETKF worker threads for the ablation runs;\n"
                 "                   0 = all hardware threads (default 0)\n"
                 "  --no-ablations   run only the thread-scaling section\n";
    return 0;
  }
  bench::SqgExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.cycles = static_cast<int>(args.get_int("cycles", 25));

  const bool deterministic = thread_scaling(static_cast<std::size_t>(args.get_int("scale-n", 48)),
                                            static_cast<std::size_t>(args.get_int("members", 20)),
                                            static_cast<int>(args.get_int("reps", 3)));
  if (args.flag("no-ablations")) return deterministic ? 0 : 1;

  std::cout << "\n=== LETKF ablations (SQG " << cfg.n << "^2 OSSE, " << cfg.cycles
            << " cycles, imperfect model) ===\n";
  bench::SqgExperiment exp(cfg);

  auto late = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (2 * cfg.cycles) / 3;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };
  const auto n_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::cout << "\nCut-off localization radius (paper's tuned value: 2000 km):\n";
  io::Table t({"cutoff [km]", "late RMSE [K]"});
  for (double km : {500.0, 1000.0, 2000.0, 4000.0, 10000.0}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.cutoff_m = km * 1e3;
    lc.n_threads = n_threads;
    da::LETKF letkf(lc);
    t.add_row({io::Table::num(km, 0), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  t.print();

  std::cout << "\nRTPS inflation factor (paper's tuned value: 0.3):\n";
  io::Table rt({"RTPS", "late RMSE [K]"});
  for (double a : {0.0, 0.15, 0.3, 0.6, 0.9}) {
    da::LetkfConfig lc = exp.letkf_config();
    lc.rtps = a;
    lc.n_threads = n_threads;
    da::LETKF letkf(lc);
    rt.add_row({io::Table::num(a, 2), io::Table::num(late(exp.run(&letkf, nullptr)), 2)});
  }
  rt.print();
  std::cout << "\n(EnSF needs neither knob — the paper's central operational argument.)\n";
  return deterministic ? 0 : 1;
}
