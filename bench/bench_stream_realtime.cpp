// Real-time cycling throughput bench: the SQG OSSE driven as a stream with
// per-cycle deadlines, comparing the serial schedule against the overlapped
// forecast/analysis pipeline, with and without emulated delivery latency.
//
// The observing network is the sparse strided grid (every --stride-th point
// per level) assimilated by the paper-tuned LETKF. Observation *content* is
// identical across scenarios (Philox substreams keyed per cycle); only the
// delivery schedule changes, so RMSE differences are attributable to
// delivery alone.
//
//   build/bench_stream_realtime [--n=128] [--members=20] [--cycles=4]
//                               [--stride=4] [--threads=0] [--seed=2024]
//                               [--latency=0.5] [--wall-ms=<auto>]
//                               [--json=BENCH_stream.json] [--smoke]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "da/letkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "models/scaled_forecast.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

using namespace turbda;

namespace {

struct ScenarioResult {
  std::string name;
  stream::Schedule schedule = stream::Schedule::Serial;
  int depth = 1;  ///< overlap depth K (pending-analysis ring size)
  double latency = 0.0;
  double cycle_ms = 0.0;     ///< mean wall per cycle
  double forecast_ms = 0.0;  ///< mean forecast span per cycle
  double analysis_ms = 0.0;  ///< mean analysis span per cycle
  double cycles_per_s = 0.0;
  int misses = 0;
  int assimilated = 0;
  int late_applied = 0;  ///< batches admitted past max_stale (deep catch-up)
  /// Mean wall per cycle over the cycles that absorbed a late increment —
  /// what deep-overlap catch-up costs where it actually happens (falls back
  /// to the overall mean when no cycle applied late batches).
  double ingest_catchup_ms = 0.0;
  double rmse = 0.0;
  da::LetkfTimings phases;  ///< LETKF per-phase breakdown for this scenario
};

struct Testbed {
  std::shared_ptr<sqg::SqgModel> model;
  double kelvin = 1.0;
  std::vector<double> truth0_k;  ///< spun-up truth, Kelvin units
  std::size_t n = 0;

  Testbed(std::size_t n_, double spinup_days, std::uint64_t seed) : n(n_) {
    sqg::SqgConfig mc;
    mc.n = n;
    mc.dt = (n <= 32) ? 1800.0 : 900.0;
    mc.t_diab = 2.0 * 86400.0;
    mc.r_ekman = 200.0;
    mc.diff_efold = 3.0 * 3600.0;
    model = std::make_shared<sqg::SqgModel>(mc);
    kelvin = models::sqg_kelvin_scale(300.0, mc.f);

    rng::Rng rng(seed);
    std::vector<double> raw(model->dim());
    model->random_init(raw, rng, 2.0 / kelvin, 4);
    model->advance(raw, spinup_days * 86400.0);
    truth0_k.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) truth0_k[i] = raw[i] * kelvin;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout
        << "bench_stream_realtime: serial vs overlapped cycling throughput on the SQG OSSE\n"
           "  --n=<int>        grid size (default 128; --smoke: 32)\n"
           "  --members=<int>  ensemble size (default 20; --smoke: 8)\n"
           "  --cycles=<int>   timed assimilation windows per scenario (default 5)\n"
           "  --stride=<int>   observing network: every stride-th grid point\n"
           "                   (default 8; --smoke: 4)\n"
           "  --threads=<int>  LETKF + member-forecast workers (0 = all; bitwise identical)\n"
           "  --seed=<int>     experiment seed (default 2024)\n"
           "  --latency=<f>    delivery latency of the degraded scenarios, in window\n"
           "                   units (default 0.5; deadline slack matches it)\n"
           "  --wall-ms=<f>    wall-clock milliseconds per window for the latency\n"
           "                   emulation (default: 2x the measured forecast phase — the\n"
           "                   operational cadence is set by forecast compute — so the\n"
           "                   default latency of 0.5 delays delivery by one forecast)\n"
           "  --json=<path>    machine-readable output (default BENCH_stream.json)\n"
           "  --smoke          small fast configuration for CI\n";
    return 0;
  }
  const bool smoke = args.flag("smoke");
  const auto n = static_cast<std::size_t>(args.get_int("n", smoke ? 32 : 128));
  const auto members = static_cast<std::size_t>(args.get_int("members", smoke ? 8 : 20));
  const int cycles = static_cast<int>(args.get_int("cycles", 5));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", smoke ? 4 : 8));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const double latency = args.get_double("latency", 0.5);
  const std::string json_path = args.get_str("json", "BENCH_stream.json");

  Testbed tb(n, smoke ? 2.0 : 5.0, seed);

  const auto h = da::SubsampleObs::strided_grid(n, n, 2, stride);
  da::DiagonalR r(h.obs_dim(), 1.0);

  da::LetkfConfig lc;
  lc.nx = n;
  lc.ny = n;
  lc.n_levels = 2;
  lc.domain_m = tb.model->config().L;
  lc.cutoff_m = 2.0e6;
  lc.rtps = 0.3;
  lc.rossby_radius_m =
      std::sqrt(tb.model->config().nsq) * tb.model->config().H / tb.model->config().f;
  lc.n_threads = threads;
  lc.collect_timings = true;  // per-phase breakdown for the "phases" export

  const double window_hours = 3.0;

  auto run_scenario = [&](stream::Schedule schedule, double lat, double wall_ms,
                          const std::string& name, int depth = 1, double jitter = 0.0) {
    sqg::SqgForecast truth_raw(tb.model, window_hours * 3600.0);
    sqg::SqgForecast fcst_raw(tb.model, window_hours * 3600.0);
    models::ScaledForecast truth_model(truth_raw, tb.kelvin);
    models::ScaledForecast fcst_model(fcst_raw, tb.kelvin);
    da::LETKF filter(lc);

    stream::SyntheticStreamConfig sc;
    sc.seed = seed;
    sc.latency_cycles = lat;
    sc.jitter_cycles = jitter;
    stream::SyntheticStream s(sc, truth_model, h, r, tb.truth0_k);

    stream::RealtimeConfig rc;
    rc.n_members = members;
    rc.cycles = cycles;
    rc.window_hours = window_hours;
    rc.init_spread = 1.5;
    rc.seed = seed;
    rc.n_forecast_threads = threads;
    rc.schedule = schedule;
    rc.overlap_depth = depth;
    // Single-buffer rows: delivery is late but within the grace window. The
    // deep row keeps the operational tight deadline — its deliveries are
    // genuinely stale and only the K > 1 ring can still absorb them.
    rc.deadline_slack_cycles = depth > 1 ? 0.25 : lat;
    rc.wall_ms_per_cycle = wall_ms;

    stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
    const auto t0 = std::chrono::steady_clock::now();
    const auto metrics = runner.run(tb.truth0_k);
    // End-to-end wall time: includes the overlapped schedule's prologue
    // forecast, so the two schedules are compared on identical total work.
    const double total_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();

    ScenarioResult res;
    res.name = name;
    res.schedule = schedule;
    res.depth = depth;
    res.latency = lat;
    double catchup_sum = 0.0, all_sum = 0.0;
    int catchup_n = 0;
    for (const auto& m : metrics) {
      res.forecast_ms += m.forecast_ms / static_cast<double>(metrics.size());
      res.analysis_ms += m.analysis_ms / static_cast<double>(metrics.size());
      res.assimilated += m.batches_assimilated;
      res.late_applied += m.late_applied;
      all_sum += m.cycle_ms;
      if (m.late_applied > 0) {
        catchup_sum += m.cycle_ms;
        ++catchup_n;
      }
    }
    res.ingest_catchup_ms = catchup_n > 0 ? catchup_sum / static_cast<double>(catchup_n)
                                          : all_sum / static_cast<double>(metrics.size());
    res.cycle_ms = total_ms / static_cast<double>(metrics.size());
    res.cycles_per_s = 1000.0 / res.cycle_ms;
    res.misses = stream::count_deadline_misses(metrics);
    res.rmse = stream::mean_rmse_post(metrics, 0);
    res.phases = filter.timings();
    return res;
  };

  std::cout << "=== Real-time cycling throughput: SQG " << n << "^2, " << members
            << " members, LETKF on a 1/" << stride * stride << " observing network, "
            << cycles << " cycles per scenario ===\n\n";

  // Compute-only pair: pure pipeline overlap, no delivery delay.
  std::vector<ScenarioResult> results;
  results.push_back(
      run_scenario(stream::Schedule::Serial, 0.0, 0.0, "instant, serial"));
  results.push_back(
      run_scenario(stream::Schedule::Overlapped, 0.0, 0.0, "instant, overlapped"));

  // Latency pair: delivery lags the window by `latency` windows of wall
  // time; the serial schedule stalls on it, the pipeline forecasts through
  // it. Default wall cadence: 2x the measured forecast phase (operationally
  // the window budget tracks forecast compute), so the default latency of
  // 0.5 windows delays delivery by one forecast phase — the largest delay
  // the single-buffer pipeline can hide completely.
  const double wall_cadence = args.get_double("wall-ms", 2.0 * results[0].forecast_ms);
  results.push_back(run_scenario(stream::Schedule::Serial, latency, wall_cadence,
                                 "late obs, serial"));
  results.push_back(run_scenario(stream::Schedule::Overlapped, latency, wall_cadence,
                                 "late obs, overlapped"));

  // Deep-overlap catch-up: deliveries a full cycle past max_stale (age 3
  // with the default max_stale_cycles = 2), which a single-buffer pipeline
  // must drop; the K = 2 ring admits them as down-weighted late increments.
  // No wall emulation — the virtual arrival stamps drive admission, and
  // cycle_ms then isolates what absorbing the stragglers costs in compute.
  results.push_back(run_scenario(stream::Schedule::Overlapped, 2.6, 0.0,
                                 "very late obs, overlapped K=2", /*depth=*/2,
                                 /*jitter=*/0.3));

  io::Table t({"scenario", "cycle [ms]", "fcst [ms]", "analysis [ms]", "cycles/s",
               "deadline misses", "batches", "late", "RMSE [K]"});
  for (const auto& s : results) {
    t.add_row({s.name, io::Table::num(s.cycle_ms, 1), io::Table::num(s.forecast_ms, 1),
               io::Table::num(s.analysis_ms, 1), io::Table::num(s.cycles_per_s, 3),
               std::to_string(s.misses), std::to_string(s.assimilated),
               std::to_string(s.late_applied), io::Table::num(s.rmse, 3)});
  }
  t.print();

  const double speedup_compute = results[0].cycle_ms / results[1].cycle_ms;
  const double speedup_latency = results[2].cycle_ms / results[3].cycle_ms;
  std::cout << "\nOverlapped pipeline speedup, instant delivery (pure compute overlap): "
            << io::Table::num(speedup_compute, 2) << "x\n"
            << "Overlapped pipeline speedup, late observations (delay "
            << io::Table::num(latency * wall_cadence, 0) << " ms/window hidden): "
            << io::Table::num(speedup_latency, 2) << "x  (target >= 1.3x)\n"
            << "(compute overlap grows with cores; latency hiding holds on any machine)\n";

  // Aggregate LETKF phase breakdown across scenarios — the telemetry-derived
  // table bench_guard.py prints into the CI job summary.
  da::LetkfTimings ph;
  for (const auto& s : results) {
    ph.plan_ms += s.phases.plan_ms;
    ph.select_ms += s.phases.select_ms;
    ph.gather_ms += s.phases.gather_ms;
    ph.gram_ms += s.phases.gram_ms;
    ph.eigh_ms += s.phases.eigh_ms;
    ph.weights_ms += s.phases.weights_ms;
    ph.combine_ms += s.phases.combine_ms;
    ph.total_ms += s.phases.total_ms;
    ph.analyses += s.phases.analyses;
  }

  std::ofstream js(json_path);
  js << "{\n  \"bench\": \"stream_realtime\",\n  \"n\": " << n
     << ",\n  \"members\": " << members << ",\n  \"cycles\": " << cycles
     << ",\n  \"obs_stride\": " << stride << ",\n  \"wall_ms_per_cycle\": " << wall_cadence
     << ",\n  \"speedup_compute\": " << speedup_compute
     << ",\n  \"speedup_latency\": " << speedup_latency << ",\n  \"phases\": {"
     << "\"plan_ms\": " << ph.plan_ms << ", \"select_ms\": " << ph.select_ms
     << ", \"gather_ms\": " << ph.gather_ms << ", \"gram_ms\": " << ph.gram_ms
     << ", \"eigh_ms\": " << ph.eigh_ms << ", \"weights_ms\": " << ph.weights_ms
     << ", \"combine_ms\": " << ph.combine_ms << ", \"total_ms\": " << ph.total_ms
     << ", \"analyses\": " << ph.analyses << "},\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& s = results[i];
    js << "    {\"name\": \"" << s.name << "\", \"schedule\": \""
       << (s.schedule == stream::Schedule::Serial ? "serial" : "overlapped") << "\", \"n\": " << n
       << ", \"members\": " << members
       << ", \"latency_cycles\": " << s.latency << ", \"cycle_ms\": " << s.cycle_ms
       << ", \"forecast_ms\": " << s.forecast_ms << ", \"analysis_ms\": " << s.analysis_ms
       << ", \"cycles_per_s\": " << s.cycles_per_s << ", \"deadline_misses\": " << s.misses
       << ", \"batches_assimilated\": " << s.assimilated
       << ", \"overlap_depth\": " << s.depth << ", \"late_applied\": " << s.late_applied
       << ", \"ingest_catchup_ms\": " << s.ingest_catchup_ms << ", \"rmse\": " << s.rmse << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::cout << "Machine-readable results written to " << json_path << ".\n";
  return 0;
}
