// Fig. 9 reproduction: scaling the ViT surrogate to 1024 GPUs with DDP,
// DeepSpeed ZeRO stages 1/2 and FSDP full_shard / shard_grad_op, including
// the ZeRO bucket-size tuning story (200 MB default vs ~500 MB optimum).
#include <iostream>

#include "hpc/scaling_sim.hpp"
#include "hpc/vit_arch.hpp"
#include "io/table.hpp"

using namespace turbda;
using hpc::ShardStrategy;

int main() {
  hpc::ScalingSim sim;
  const auto archs = hpc::table2_architectures();
  const auto batches = hpc::table2_global_batches();
  const int gpus[] = {8, 16, 32, 64, 128, 256, 512, 1024};

  std::cout << "=== Fig. 9: strong scaling of ViT training on Frontier (model) ===\n";
  std::cout << "\nScaling efficiency vs GPUs per input size (DeepSpeed stage 1, tuned "
               "500 MB bucket):\n";
  io::Table t({"GPUs", "64^2 / 157M", "128^2 / 1.2B", "256^2 / 2.5B"});
  for (int n : gpus) {
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t a = 0; a < 3; ++a) {
      hpc::TrainSetup s;
      s.arch = archs[a];
      s.global_batch = batches[a];
      s.strategy = ShardStrategy::ZeRO1;
      s.bucket_mb = 500.0;
      row.push_back(io::Table::num(100.0 * sim.scaling_efficiency(s, n), 1) + "%");
    }
    t.add_row(row);
  }
  t.print();
  std::cout << "Paper: 128^2 scales best (86% at 1024 GPUs); 64^2 and 256^2 lower.\n";

  std::cout << "\nStrategy comparison for 256^2 / 2.5B at 1024 GPUs:\n";
  io::Table st({"strategy", "bucket [MB]", "step [s]", "efficiency"});
  struct Row {
    ShardStrategy s;
    double bucket;
    const char* label;
  };
  const Row rows[] = {
      {ShardStrategy::DDP, 500.0, "DDP"},
      {ShardStrategy::ZeRO1, 200.0, "DS stage 1 (default bucket)"},
      {ShardStrategy::ZeRO1, 500.0, "DS stage 1 (tuned bucket)"},
      {ShardStrategy::ZeRO2, 500.0, "DS stage 2"},
      {ShardStrategy::ZeRO2, 64.0, "FSDP shard_grad_op (fixed small bucket)"},
      {ShardStrategy::ZeRO3, 64.0, "FSDP full_shard (fixed small bucket)"},
      {ShardStrategy::HybridShard, 500.0, "FSDP hybrid_shard"},
  };
  for (const auto& r : rows) {
    hpc::TrainSetup s;
    s.arch = archs[2];
    s.global_batch = batches[2];
    s.strategy = r.s;
    s.bucket_mb = r.bucket;
    st.add_row({r.label, io::Table::num(r.bucket, 0),
                io::Table::num(sim.step(s, 1024).total(), 3),
                io::Table::num(100.0 * sim.scaling_efficiency(s, 1024), 1) + "%"});
  }
  st.print();

  std::cout << "\nZeRO bucket-size sweep for 256^2 at 1024 GPUs:\n";
  io::Table bt({"bucket [MB]", "efficiency"});
  for (double mb : {25.0, 50.0, 100.0, 200.0, 300.0, 500.0, 1000.0, 2000.0, 8000.0}) {
    hpc::TrainSetup s;
    s.arch = archs[2];
    s.global_batch = batches[2];
    s.strategy = ShardStrategy::ZeRO1;
    s.bucket_mb = mb;
    bt.add_row({io::Table::num(mb, 0),
                io::Table::num(100.0 * sim.scaling_efficiency(s, 1024), 1) + "%"});
  }
  bt.print();
  std::cout << "Paper: the 200 MB DeepSpeed default sits on the AllReduce protocol dip; a\n"
               "~500 MB bucket is optimal (85%); very large buckets lose compute overlap;\n"
               "with its extra tuning knobs DeepSpeed ZeRO outperforms FSDP.\n";
  return 0;
}
