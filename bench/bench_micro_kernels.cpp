// google-benchmark micro-kernels for the hot substrates: GEMM, 2-D FFT, one
// SQG RK4 step, one EnSF analysis, one LETKF analysis. These are the
// measured-performance counterparts of the modeled figures.
#include <benchmark/benchmark.h>

#include "da/ensf.hpp"
#include "da/letkf.hpp"
#include "fft/fft.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"
#include "tensor/gemm.hpp"

using namespace turbda;

namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Tensor a({n, n}), b({n, n}), c({n, n});
  rng::Rng rng(1);
  rng.fill_gaussian(a.flat());
  rng.fill_gaussian(b.flat());
  for (auto _ : state) {
    tensor::gemm(tensor::Trans::No, tensor::Trans::No, n, n, n, 1.0, a.data(), n, b.data(), n,
                 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Fft2D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Fft2D plan(n, n);
  std::vector<fft::Cplx> buf(n * n);
  rng::Rng rng(2);
  for (auto& v : buf) v = fft::Cplx(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    plan.forward(buf);
    plan.inverse(buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_Fft2D)->Arg(32)->Arg(64)->Arg(128);

void BM_SqgStep(benchmark::State& state) {
  sqg::SqgConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  sqg::SqgModel model(cfg);
  std::vector<double> theta(model.dim());
  rng::Rng rng(3);
  model.random_init(theta, rng, 1.0, 4);
  for (auto _ : state) {
    model.step(theta, 1);
    benchmark::DoNotOptimize(theta.data());
  }
}
BENCHMARK(BM_SqgStep)->Arg(32)->Arg(64);

void BM_EnsfAnalysis(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  da::Ensemble ens(20, dim);
  rng::Rng rng(4);
  for (std::size_t m = 0; m < 20; ++m) rng.fill_gaussian(ens.member(m));
  std::vector<double> y(dim, 0.5);
  da::IdentityObs h(dim);
  da::DiagonalR r(dim, 1.0);
  da::EnsfConfig cfg = da::EnsfConfig::stabilized();
  cfg.euler_steps = 20;
  da::EnSF filter(cfg);
  for (auto _ : state) {
    filter.analyze(ens, y, h, r);
    benchmark::DoNotOptimize(ens.data().data());
  }
}
BENCHMARK(BM_EnsfAnalysis)->Arg(2048)->Arg(8192)->Arg(32768);

void BM_LetkfAnalysis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = n * n * 2;
  da::Ensemble ens(20, dim);
  rng::Rng rng(5);
  for (std::size_t m = 0; m < 20; ++m) rng.fill_gaussian(ens.member(m));
  std::vector<double> y(dim, 0.5);
  da::IdentityObs h(dim, n, n, 2);
  da::DiagonalR r(dim, 1.0);
  da::LetkfConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  cfg.n_levels = 2;
  cfg.domain_m = 20e6;
  cfg.cutoff_m = 2e6;
  da::LETKF filter(cfg);
  for (auto _ : state) {
    filter.analyze(ens, y, h, r);
    benchmark::DoNotOptimize(ens.data().data());
  }
}
BENCHMARK(BM_LetkfAnalysis)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
