// Fig. 8 reproduction: RCCL collective bus bandwidth on Frontier
// (AllReduce / AllGather / ReduceScatter) vs GPU count, for 64 MB and 1 GB
// messages, plus the AllReduce message-size curve showing the ~256 MB
// protocol dip — from the calibrated model. A measured section runs the same
// ring collectives for real over thread-backed SimComm ranks.
#include <iostream>

#include "common/timer.hpp"
#include "hpc/collective_model.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "parallel/sim_comm.hpp"

using namespace turbda;
using hpc::Collective;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  hpc::CollectiveModel cm;

  std::cout << "=== Fig. 8: RCCL collectives bus bandwidth on Frontier (model) ===\n";
  for (double mb : {64.0, 1024.0}) {
    std::cout << "\nMessage size " << mb << " MB (busbw, GB/s):\n";
    io::Table t({"GPUs", "AllReduce", "AllGather", "ReduceScatter"});
    for (int n : {8, 16, 32, 64, 128, 256, 512, 1024}) {
      const double bytes = mb * 1048576.0;
      t.add_row({std::to_string(n),
                 io::Table::num(cm.bus_bandwidth(Collective::AllReduce, bytes, n), 1),
                 io::Table::num(cm.bus_bandwidth(Collective::AllGather, bytes, n), 1),
                 io::Table::num(cm.bus_bandwidth(Collective::ReduceScatter, bytes, n), 1)});
    }
    t.print();
  }

  std::cout << "\nAllReduce bandwidth vs message size at 512 GPUs (protocol dip ~256 MB):\n";
  io::Table d({"message [MB]", "busbw [GB/s]"});
  for (double mb : {16.0, 32.0, 64.0, 128.0, 192.0, 256.0, 384.0, 512.0, 768.0, 1024.0}) {
    d.add_row({io::Table::num(mb, 0),
               io::Table::num(cm.bus_bandwidth(Collective::AllReduce, mb * 1048576.0, 512), 1)});
  }
  d.print();

  if (!args.flag("no-measure")) {
    std::cout << "\nMeasured: the library's own ring collectives over thread-backed ranks\n"
                 "(same algorithms RCCL uses for large messages; absolute numbers are\n"
                 "shared-memory, shapes are what matters):\n";
    io::Table m({"ranks", "buffer [MB]", "allreduce busbw [GB/s]", "allgather busbw [GB/s]"});
    for (int n : {2, 4, 8}) {
      const std::size_t elems = 1 << 20;  // 8 MB
      double t_ar = 0.0, t_ag = 0.0;
      parallel::run_world(n, [&](parallel::SimComm& c) {
        std::vector<double> buf(elems, 1.0);
        std::vector<double> gathered(elems * static_cast<std::size_t>(n));
        c.barrier();
        WallTimer t;
        c.allreduce_sum(buf);
        c.barrier();
        if (c.rank() == 0) t_ar = t.seconds();
        c.barrier();
        WallTimer t2;
        c.allgather(std::span<const double>(buf.data(), elems), gathered);
        c.barrier();
        if (c.rank() == 0) t_ag = t2.seconds();
      });
      const double bytes = static_cast<double>(elems) * sizeof(double);
      const double ring = static_cast<double>(n - 1) / n;
      m.add_row({std::to_string(n), "8",
                 io::Table::num(2.0 * ring * bytes / t_ar / 1e9, 2),
                 io::Table::num(ring * bytes * n / t_ag / 1e9, 2)});
    }
    m.print();
  }
  return 0;
}
