// Table I reproduction: FSDP <-> ZeRO memory-partition correspondence and
// the resulting per-GPU memory for the Table II surrogates.
#include <iostream>

#include "hpc/memory_model.hpp"
#include "hpc/vit_arch.hpp"
#include "io/table.hpp"

using namespace turbda;
using hpc::ShardStrategy;

int main() {
  std::cout << "=== Table I: distributed training methods and their memory partitioning ===\n";
  io::Table t({"method", "shards optimizer", "shards gradients", "shards weights",
               "FSDP name", "ZeRO name"});
  t.add_row({"DDP", "no", "no", "no", "-", "-"});
  t.add_row({"optimizer", "yes", "no", "no", "n/a", "stage 1"});
  t.add_row({"optimizer+gradient", "yes", "yes", "no", "shard_grad_op", "stage 2"});
  t.add_row({"optimizer+gradient+weight", "yes", "yes", "yes", "full_shard", "stage 3"});
  t.add_row({"hierarchical", "in-node", "in-node", "in-node", "hybrid_shard", "n/a"});
  t.print();

  std::cout << "\nPer-GPU memory (parameter-size units; weights 1X + grads 1X + "
               "Adam 2X + intermediate 2X = 6X replicated), world = 64 GPUs:\n";
  hpc::MemoryModel mm;
  const auto archs = hpc::table2_architectures();
  io::Table m({"model", "params", "DDP", "ZeRO-1", "ZeRO-2", "ZeRO-3/full_shard",
               "hybrid (node=8)"});
  for (const auto& a : archs) {
    const double p = static_cast<double>(a.param_count());
    auto row = [&](ShardStrategy s) {
      return io::Table::sci(mm.per_gpu(p, s, 64).total(), 2);
    };
    m.add_row({std::to_string(a.image) + "^2", io::Table::sci(p, 2), row(ShardStrategy::DDP),
               row(ShardStrategy::ZeRO1), row(ShardStrategy::ZeRO2), row(ShardStrategy::ZeRO3),
               row(ShardStrategy::HybridShard)});
  }
  m.print();

  std::cout << "\nPer-step communication volume per GPU (parameter-size units, 64 GPUs):\n";
  io::Table c({"strategy", "volume", "vs DDP"});
  const double p = static_cast<double>(archs[1].param_count());
  const double ddp = mm.comm_volume_per_gpu(p, ShardStrategy::DDP, 64);
  for (auto s : {ShardStrategy::DDP, ShardStrategy::ZeRO1, ShardStrategy::ZeRO2,
                 ShardStrategy::ZeRO3}) {
    const double v = mm.comm_volume_per_gpu(p, s, 64);
    c.add_row({hpc::to_string(s), io::Table::sci(v, 2), io::Table::num(v / ddp, 2) + "x"});
  }
  c.print();
  std::cout << "\nPaper check: FSDP/full_shard moves ~1.5x the DDP volume "
               "(\"approximately 50% more communication\").\n";
  return 0;
}
