// Fig. 7 reproduction: runtime percentage of computation, communication and
// IO for ViT surrogate training at 1024 GPUs (Frontier model), for the three
// input sizes of Table II.
#include <iostream>

#include "hpc/scaling_sim.hpp"
#include "hpc/vit_arch.hpp"
#include "io/table.hpp"

using namespace turbda;

int main() {
  std::cout << "=== Fig. 7: runtime breakdown of ViT training at 1024 GPUs ===\n";
  hpc::ScalingSim sim;
  const auto archs = hpc::table2_architectures();
  const auto batches = hpc::table2_global_batches();

  io::Table t({"input", "model", "step [s]", "compute %", "comm %", "IO %"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    hpc::TrainSetup s;
    s.arch = archs[a];
    s.global_batch = batches[a];
    s.strategy = hpc::ShardStrategy::ZeRO1;
    s.bucket_mb = 200.0;  // DeepSpeed default, as profiled in the paper
    const auto br = sim.step(s, 1024);
    t.add_row({std::to_string(archs[a].image) + "^2",
               io::Table::sci(static_cast<double>(archs[a].param_count()), 1),
               io::Table::num(br.total(), 3),
               io::Table::num(100.0 * br.compute_s / br.total(), 1),
               io::Table::num(100.0 * br.comm_fraction(), 1),
               io::Table::num(100.0 * br.io_fraction(), 2)});
  }
  t.print();
  std::cout << "\nPaper shape checks: training dominated by compute+comm with small IO;\n"
               "64^2 has the largest communication share (light compute at embed 1024),\n"
               "and 256^2's share exceeds 128^2's because its message volume doubles.\n";
  return 0;
}
