// Train the ViT surrogate of the SQG dynamics offline, then adapt it online
// from analysis states — the paper's real-time training loop (§III-B) at
// laptop scale.
//
//   build/examples/train_surrogate [--epochs=25] [--pairs=96]
#include <iostream>

#include "bench/sqg_experiment.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "train_surrogate: offline-pretrain the SQG-ViT surrogate, then probe skill\n"
                 "  --epochs=<int>  pretraining epochs (default 25)\n"
                 "  --pairs=<int>   transition pairs in the training set (default 96)\n"
                 "  --seed=<int>    experiment seed (default 2024)\n"
                 "(GEMM-bound layers use all hardware threads via the process-wide pool.)\n";
    return 0;
  }
  bench::SqgExperimentConfig cfg;
  cfg.n = 32;
  cfg.cycles = 12;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  cfg.vit_pretrain_epochs = static_cast<int>(args.get_int("epochs", 25));
  cfg.vit_pretrain_pairs = static_cast<int>(args.get_int("pairs", 96));

  std::cout << "Offline pretraining of the SQG-ViT surrogate (" << cfg.vit_pretrain_pairs
            << " transition pairs, " << cfg.vit_pretrain_epochs << " epochs)\n";
  bench::SqgExperiment exp(cfg);
  std::vector<double> losses;
  auto surrogate = exp.train_surrogate(&losses);

  io::Table t({"epoch", "MSE (normalized)"});
  for (std::size_t e = 0; e < losses.size(); e += std::max<std::size_t>(1, losses.size() / 10))
    t.add_row({std::to_string(e), io::Table::sci(losses[e], 3)});
  t.add_row({std::to_string(losses.size() - 1), io::Table::sci(losses.back(), 3)});
  t.print();

  // One-step skill: surrogate vs persistence on a fresh trajectory.
  std::vector<double> state = exp.truth0_raw;
  const double window_s = cfg.window_hours * 3600.0;
  double err_sur = 0.0, err_per = 0.0;
  const int probes = 10;
  for (int p = 0; p < probes; ++p) {
    std::vector<double> cur_k(exp.model->dim());
    for (std::size_t i = 0; i < cur_k.size(); ++i) cur_k[i] = state[i] * exp.kelvin;
    exp.model->advance(state, window_s);
    std::vector<double> next_k(exp.model->dim());
    for (std::size_t i = 0; i < next_k.size(); ++i) next_k[i] = state[i] * exp.kelvin;

    std::vector<double> pred = cur_k;
    surrogate->forecast(pred);
    err_sur += da::rmse(pred, next_k);
    err_per += da::rmse(cur_k, next_k);
  }
  std::cout << "\nOne-step (12 h) forecast RMSE over " << probes << " windows:\n"
            << "  ViT surrogate: " << io::Table::num(err_sur / probes, 3) << " K\n"
            << "  persistence:   " << io::Table::num(err_per / probes, 3) << " K\n";

  // Online adaptation: feed analysis-like transitions and watch the loss.
  std::cout << "\nOnline fine-tuning from streamed transitions (the paper's real-time "
               "adaptation):\n";
  nn::OnlineTrainer online(std::make_shared<nn::ViT>(surrogate->vit().config()),
                           surrogate->scaler(), nn::AdamWConfig{.lr = 1e-3}, 32, 2);
  rng::Rng orng(99);
  std::vector<double> prev_k(exp.model->dim()), next_k(exp.model->dim());
  for (std::size_t i = 0; i < prev_k.size(); ++i) prev_k[i] = state[i] * exp.kelvin;
  io::Table ot({"cycle", "online loss"});
  for (int k = 0; k < 10; ++k) {
    exp.model->advance(state, window_s);
    for (std::size_t i = 0; i < next_k.size(); ++i) next_k[i] = state[i] * exp.kelvin;
    const auto st = online.observe_transition(prev_k, next_k, orng);
    ot.add_row({std::to_string(k), io::Table::sci(st.loss, 3)});
    prev_k = next_k;
  }
  ot.print();
  return 0;
}
