// SQG turbulence demo: spin up the two-surface Eady model to a statistically
// steady state, print diagnostics, verify the kinetic-energy spectrum slope
// against the -5/3 surface-QG prediction (paper §II-B), and write the final
// potential-temperature field as NPY.
//
//   build/examples/sqg_turbulence [--n=64] [--days=60]
#include <cmath>
#include <iostream>

#include "common/math_utils.hpp"
#include "io/args.hpp"
#include "io/npy.hpp"
#include "io/table.hpp"
#include "models/scaled_forecast.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "sqg_turbulence: spin up the two-surface SQG model and check spectra\n"
                 "  --n=<int>            grid size (default 64)\n"
                 "  --days=<float>       integration length in days (default 60)\n"
                 "  --fft-threads=<int>  workers inside each 2-D transform\n"
                 "                       (0 = all, 1 = serial; bitwise identical)\n"
                 "  --threads=<int>      alias for --fft-threads\n"
                 "  --seed=<int>         initial-condition seed (default 7)\n";
    return 0;
  }
  sqg::SqgConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 64));
  cfg.n_fft_threads =
      static_cast<std::size_t>(args.get_int("fft-threads", args.get_int("threads", 0)));
  cfg.dt = (cfg.n <= 32) ? 1800.0 : 900.0;
  cfg.t_diab = 2.0 * 86400.0;
  cfg.r_ekman = 200.0;
  cfg.diff_efold = 3.0 * 3600.0;
  const double days = args.get_double("days", 60.0);

  sqg::SqgModel model(cfg);
  const double kelvin = models::sqg_kelvin_scale(300.0, cfg.f);
  rng::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 2.0 / kelvin, 4);

  std::cout << "Two-surface SQG (nonlinear Eady) on " << cfg.n << "^2, L = " << cfg.L / 1e3
            << " km, U = " << cfg.U << " m/s shear\n\n";
  io::Table t({"day", "theta RMS [K]", "total KE [m^2/s^2]", "CFL"});
  const int report = std::max(1, static_cast<int>(days) / 10);
  for (int d = 0; d <= static_cast<int>(days); ++d) {
    if (d % report == 0) {
      t.add_row({std::to_string(d), io::Table::num(rms(std::span<const double>(theta)) * kelvin, 2),
                 io::Table::sci(model.total_ke(theta), 2),
                 io::Table::num(model.cfl(theta), 2)});
    }
    model.advance(theta, 86400.0);
  }
  t.print();

  // KE spectrum slope over the inertial range — SQG theory: E(K) ~ K^{-5/3}.
  const auto spec = model.ke_spectrum(theta, 0);
  const std::size_t k_lo = 4, k_hi = std::min<std::size_t>(spec.size() - 1, cfg.n / 4);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int cnt = 0;
  for (std::size_t k = k_lo; k <= k_hi; ++k) {
    if (spec[k] <= 0.0) continue;
    const double lx = std::log(static_cast<double>(k)), ly = std::log(spec[k]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++cnt;
  }
  const double slope = (cnt * sxy - sx * sy) / (cnt * sxx - sx * sx);
  std::cout << "\nKE spectrum slope over wavenumbers " << k_lo << ".." << k_hi << ": "
            << io::Table::num(slope, 2) << "   (SQG theory: -5/3 = -1.67)\n";

  std::vector<double> theta_k(theta.size());
  for (std::size_t i = 0; i < theta.size(); ++i) theta_k[i] = theta[i] * kelvin;
  io::write_npy("sqg_theta_final.npy", theta_k, {2, cfg.n, cfg.n});
  std::cout << "Final field written to sqg_theta_final.npy (2 x " << cfg.n << " x " << cfg.n
            << ", Kelvin).\n";
  return 0;
}
