// Quickstart: assimilate observations of a chaotic Lorenz-96 system with the
// Ensemble Score Filter in ~50 lines.
//
//   build/examples/quickstart [--cycles=30] [--members=20] [--seed=42]
#include <iostream>

#include "da/ensf.hpp"
#include "da/osse.hpp"
#include "io/args.hpp"
#include "models/lorenz96.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "quickstart: EnSF assimilation of a 40-variable Lorenz-96 OSSE\n"
                 "  --cycles=<int>   assimilation cycles (default 30)\n"
                 "  --members=<int>  ensemble size (default 20)\n"
                 "  --seed=<int>     experiment seed (default 42)\n"
                 "  --threads=<int>  analysis + member-forecast worker threads\n"
                 "                   (0 = all hardware threads, 1 = serial;\n"
                 "                   results are bitwise identical for any value)\n";
    return 0;
  }

  // 1. A forecast model: 40-variable Lorenz-96, observed every 0.1 time units.
  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;
  models::Lorenz96 truth_model(mc), forecast_model(mc);

  // 2. Observations: every variable, with unit error variance.
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);

  // 3. The filter: EnSF in its stabilized configuration — no localization,
  //    no inflation tuning.
  da::EnsfConfig fc = da::EnsfConfig::stabilized();
  fc.n_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  da::EnSF filter(fc);

  // 4. An OSSE: truth run + synthetic obs + 20-member ensemble cycling.
  da::OsseConfig oc;
  oc.cycles = static_cast<int>(args.get_int("cycles", 30));
  oc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  oc.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  oc.n_forecast_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  da::OsseRunner osse(oc, truth_model, forecast_model, h, r, &filter);

  // Spin the truth onto the attractor and run.
  std::vector<double> truth0(mc.dim, mc.forcing);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  const auto metrics = osse.run(truth0);

  std::cout << "cycle  prior RMSE  analysis RMSE  spread\n";
  for (const auto& m : metrics) {
    if (m.cycle % 5 == 0 || m.cycle == oc.cycles - 1)
      std::cout << m.cycle << "\t" << m.rmse_prior << "\t" << m.rmse_post << "\t"
                << m.spread_post << "\n";
  }
  std::cout << "\nThe analysis should track near the observation-error level (~1.0)\n"
               "while an unassimilated run saturates near the climatological spread (~6).\n";
  return 0;
}
