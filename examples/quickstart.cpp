// Quickstart: assimilate observations of a chaotic Lorenz-96 system with the
// Ensemble Score Filter in ~50 lines.
//
//   build/examples/quickstart
#include <iostream>

#include "da/ensf.hpp"
#include "da/osse.hpp"
#include "models/lorenz96.hpp"

using namespace turbda;

int main() {
  // 1. A forecast model: 40-variable Lorenz-96, observed every 0.1 time units.
  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;
  models::Lorenz96 truth_model(mc), forecast_model(mc);

  // 2. Observations: every variable, with unit error variance.
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);

  // 3. The filter: EnSF in its stabilized configuration — no localization,
  //    no inflation tuning.
  da::EnSF filter(da::EnsfConfig::stabilized());

  // 4. An OSSE: truth run + synthetic obs + 20-member ensemble cycling.
  da::OsseConfig oc;
  oc.cycles = 30;
  oc.n_members = 20;
  da::OsseRunner osse(oc, truth_model, forecast_model, h, r, &filter);

  // Spin the truth onto the attractor and run.
  std::vector<double> truth0(mc.dim, mc.forcing);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  const auto metrics = osse.run(truth0);

  std::cout << "cycle  prior RMSE  analysis RMSE  spread\n";
  for (const auto& m : metrics) {
    if (m.cycle % 5 == 0 || m.cycle == oc.cycles - 1)
      std::cout << m.cycle << "\t" << m.rmse_prior << "\t" << m.rmse_post << "\t"
                << m.spread_post << "\n";
  }
  std::cout << "\nThe analysis should track near the observation-error level (~1.0)\n"
               "while an unassimilated run saturates near the climatological spread (~6).\n";
  return 0;
}
