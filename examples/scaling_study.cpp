// End-to-end Frontier scaling study from the performance-model suite:
// memory partitioning, per-step breakdowns, and the combined real-time DA
// budget (online ViT training + EnSF per assimilation cycle, paper Fig. 1's
// "overall computing time is the summation of the two steps").
//
//   build/examples/scaling_study
#include <iostream>

#include "hpc/memory_model.hpp"
#include "hpc/scaling_sim.hpp"
#include "hpc/vit_arch.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "scaling_study: Frontier-scale performance-model walkthrough (analytic —\n"
                 "no --seed/--threads: the models are closed-form, nothing is sampled)\n";
    return 0;
  }
  hpc::ScalingSim sim;
  hpc::EnsfScalingModel ensf;
  hpc::MemoryModel mem;
  const auto archs = hpc::table2_architectures();
  const auto batches = hpc::table2_global_batches();

  std::cout << "Can the real-time DA loop keep up with an hourly observation cadence?\n"
               "Per-cycle budget = online ViT fine-tuning (100 steps) + one EnSF analysis.\n\n";

  io::Table t({"model", "GPUs", "train step [s]", "100 steps [s]", "EnSF step [s]",
               "cycle total [s]", "fits 1 h cadence"});
  const double dims[] = {1e6, 1e7, 1e8};
  for (std::size_t a = 0; a < archs.size(); ++a) {
    for (int gpus : {64, 256, 1024}) {
      hpc::TrainSetup s;
      s.arch = archs[a];
      s.global_batch = batches[a];
      s.strategy = hpc::ShardStrategy::ZeRO1;
      const double step = sim.step(s, gpus).total();
      const double train = 100.0 * step;
      const double filt = ensf.step_seconds(dims[a], gpus);
      const double total = train + filt;
      t.add_row({std::to_string(archs[a].image) + "^2", std::to_string(gpus),
                 io::Table::num(step, 3), io::Table::num(train, 1), io::Table::num(filt, 2),
                 io::Table::num(total, 1), total < 3600.0 ? "yes" : "NO"});
    }
  }
  t.print();

  std::cout << "\nPer-GPU memory for the 2.5B surrogate (parameter-size units; 64 GB HBM "
               "per GCD):\n";
  io::Table m({"strategy", "8 GPUs", "64 GPUs", "1024 GPUs"});
  const double p = static_cast<double>(archs[2].param_count());
  for (auto st : {hpc::ShardStrategy::DDP, hpc::ShardStrategy::ZeRO1, hpc::ShardStrategy::ZeRO2,
                  hpc::ShardStrategy::ZeRO3}) {
    m.add_row({hpc::to_string(st), io::Table::sci(mem.per_gpu(p, st, 8).total(), 2),
               io::Table::sci(mem.per_gpu(p, st, 64).total(), 2),
               io::Table::sci(mem.per_gpu(p, st, 1024).total(), 2)});
  }
  m.print();
  std::cout << "\nThe paper's point: only with HPC-scale parallelism does the online\n"
               "training + filtering loop fit inside an operational assimilation window.\n";
  return 0;
}
