// Filter shoot-out on the SQG testbed: EnSF vs LETKF vs global ETKF vs no
// assimilation, with and without the paper's imperfect-model error process.
//
//   build/examples/da_comparison [--cycles=20] [--n=32]
#include <iostream>

#include "bench/sqg_experiment.hpp"
#include "da/etkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::SqgExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.cycles = static_cast<int>(args.get_int("cycles", 20));

  std::cout << "Filter comparison on the SQG OSSE (" << cfg.n << "^2 grid, " << cfg.cycles
            << " cycles, identity obs, R = I, 20 members, imperfect physics model)\n\n";
  bench::SqgExperiment exp(cfg);

  auto late = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (2 * cfg.cycles) / 3;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };

  io::Table t({"filter", "late RMSE [K]", "notes"});

  t.add_row({"none (free run)", io::Table::num(late(exp.run(nullptr, nullptr)), 2),
             "saturates at climatology"});

  da::EnSF ensf(da::EnsfConfig::stabilized());
  t.add_row({"EnSF", io::Table::num(late(exp.run(&ensf, nullptr)), 2),
             "no localization, no tuning"});

  da::LETKF letkf(exp.letkf_config());
  t.add_row({"LETKF (2000 km, RTPS 0.3)", io::Table::num(late(exp.run(&letkf, nullptr)), 2),
             "paper-tuned"});

  da::EtkfConfig ecfg;
  ecfg.rtps = 0.3;
  da::ETKF etkf(ecfg);
  t.add_row({"global ETKF (no localization)", io::Table::num(late(exp.run(&etkf, nullptr)), 2),
             "why LETKF localizes"});

  t.print();
  std::cout << "\nExpected ordering: free run worst; global ETKF degraded by sampling noise\n"
               "(20 members, " << exp.model->dim() << " dims); LETKF good; EnSF comparable or "
               "better without any tuning.\n";
  return 0;
}
