// Filter shoot-out on the SQG testbed: EnSF vs LETKF vs global ETKF vs no
// assimilation, with and without the paper's imperfect-model error process.
//
//   build/examples/da_comparison [--cycles=20] [--n=32]
#include <iostream>

#include "bench/sqg_experiment.hpp"
#include "da/etkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

using namespace turbda;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "da_comparison: EnSF vs LETKF vs global ETKF vs free run on the SQG OSSE\n"
                 "  --n=<int>        SQG grid size (default 32)\n"
                 "  --cycles=<int>   assimilation cycles (default 20)\n"
                 "  --threads=<int>  analysis worker threads for EnSF/LETKF;\n"
                 "                   0 = all hardware threads (default 0),\n"
                 "                   results are bitwise identical for any value\n"
                 "  --forecast-threads=<int>  member-parallel SQG forecasts\n"
                 "                   (0 = all, 1 = serial; bitwise identical)\n"
                 "  --seed=<int>     experiment seed (default 2024)\n";
    return 0;
  }
  bench::SqgExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 32));
  cfg.cycles = static_cast<int>(args.get_int("cycles", 20));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  cfg.forecast_threads = static_cast<std::size_t>(args.get_int("forecast-threads", 0));
  const auto n_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::cout << "Filter comparison on the SQG OSSE (" << cfg.n << "^2 grid, " << cfg.cycles
            << " cycles, identity obs, R = I, 20 members, imperfect physics model)\n\n";
  bench::SqgExperiment exp(cfg);

  auto late = [&](const std::vector<da::CycleMetrics>& m) {
    double s = 0.0;
    const int k0 = (2 * cfg.cycles) / 3;
    for (int k = k0; k < cfg.cycles; ++k) s += m[static_cast<std::size_t>(k)].rmse_post;
    return s / (cfg.cycles - k0);
  };

  io::Table t({"filter", "late RMSE [K]", "notes"});

  t.add_row({"none (free run)", io::Table::num(late(exp.run(nullptr, nullptr)), 2),
             "saturates at climatology"});

  da::EnsfConfig ensf_cfg = da::EnsfConfig::stabilized();
  ensf_cfg.n_threads = n_threads;
  da::EnSF ensf(ensf_cfg);
  t.add_row({"EnSF", io::Table::num(late(exp.run(&ensf, nullptr)), 2),
             "no localization, no tuning"});

  da::LetkfConfig letkf_cfg = exp.letkf_config();
  letkf_cfg.n_threads = n_threads;
  da::LETKF letkf(letkf_cfg);
  t.add_row({"LETKF (2000 km, RTPS 0.3)", io::Table::num(late(exp.run(&letkf, nullptr)), 2),
             "paper-tuned"});

  da::EtkfConfig ecfg;
  ecfg.rtps = 0.3;
  da::ETKF etkf(ecfg);
  t.add_row({"global ETKF (no localization)", io::Table::num(late(exp.run(&etkf, nullptr)), 2),
             "why LETKF localizes"});

  t.print();
  std::cout << "\nExpected ordering: free run worst; global ETKF degraded by sampling noise\n"
               "(20 members, " << exp.model->dim() << " dims); LETKF good; EnSF comparable or "
               "better without any tuning.\n";
  return 0;
}
