// Real-time streaming assimilation demo: a Lorenz-96 truth observed through
// a synthetic stream with configurable delivery latency, jitter and
// dropouts, cycled by the deadline-aware RealtimeRunner in either schedule.
// Shows how assimilation quality degrades as delivery degrades, and what
// the overlapped forecast/analysis pipeline trades for its throughput.
//
// Fault tolerance: the stream can be wrapped in a deterministic fault
// injector (NaN/Inf/outlier values, stuck channels, duplicated and truncated
// batches) with observation QC, graceful degradation and periodic
// checkpointing on the runner side. `--soak` runs an aggressive end-to-end
// injection scenario in both schedules, prints the degradation table and
// exits non-zero if any cycle failed to complete — the CI crash harness.
//
//   build/examples/realtime_da [--latency=0.3] [--jitter=0.5] [--drop=0.2]
//   build/examples/realtime_da --nan=0.05 --stuck=0.3 --qc
//   build/examples/realtime_da --soak
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "models/lorenz96.hpp"
#include "models/scaled_forecast.hpp"
#include "sqg/sqg.hpp"
#include "stream/faulty_stream.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

using namespace turbda;

namespace {

/// --trace / --metrics-dump / --metrics-json plumbing, shared by every mode:
/// tracing is armed before the first cycle and exported on exit.
struct TelemetryCli {
  std::string trace_path;
  bool metrics_dump = false;
  std::string metrics_json;

  explicit TelemetryCli(const io::Args& args)
      : trace_path(args.get_str("trace", "")),
        metrics_dump(args.flag("metrics-dump")),
        metrics_json(args.get_str("metrics-json", "")) {
    telemetry::set_thread_label("main");
    if (!trace_path.empty()) telemetry::TraceCollector::instance().enable();
  }

  /// Export whatever was recorded and pass the mode's exit code through
  /// (telemetry export failures only fail an otherwise-clean run).
  int finish(int code) const {
    if (!trace_path.empty()) {
      auto& tc = telemetry::TraceCollector::instance();
      tc.disable();
      const Status st = tc.write_chrome_trace(trace_path);
      if (st.ok()) {
        std::cout << "\nChrome trace written to " << trace_path
                  << " (load in chrome://tracing or https://ui.perfetto.dev).\n";
      } else {
        std::cerr << "trace export failed: " << st.to_string() << "\n";
        if (code == 0) code = 1;
      }
    }
    if (metrics_dump || !metrics_json.empty()) {
      const auto snap = telemetry::MetricsRegistry::global().snapshot();
      if (metrics_dump)
        std::cout << "\n--- metrics (Prometheus text exposition) ---\n"
                  << telemetry::to_prometheus(snap);
      if (!metrics_json.empty()) {
        std::ofstream f(metrics_json);
        f << telemetry::to_json(snap);
        if (!f.good()) {
          std::cerr << "metrics JSON export to " << metrics_json << " failed\n";
          if (code == 0) code = 1;
        } else {
          std::cout << "Metrics JSON written to " << metrics_json << ".\n";
        }
      }
    }
    return code;
  }
};

struct Summary {
  double rmse = 0.0;
  int misses = 0;
  int assimilated = 0;
  int obs_rejected = 0;
  int batches_rejected = 0;
  int analysis_failures = 0;
  int spread_recoveries = 0;
  int degraded_cycles = 0;
  std::vector<stream::StreamCycleMetrics> metrics;
  stream::FaultCounters faults;
  da::Ensemble ens{2, 2};
};

Summary run_scenario(const stream::SyntheticStreamConfig& sc, const stream::RealtimeConfig& rc,
                     std::span<const double> truth0, const models::Lorenz96Config& mc,
                     const stream::FaultConfig* fc = nullptr, bool use_filter = true,
                     const std::string& resume_from = {}) {
  models::Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});

  stream::SyntheticStream inner(sc, truth_model, h, r, truth0);
  std::optional<stream::FaultyStream> faulty;
  stream::ObservationStream* s = &inner;
  if (fc != nullptr) {
    faulty.emplace(*fc, inner);
    s = &*faulty;
  }
  stream::RealtimeRunner runner(rc, *s, fcst_model, use_filter ? &filter : nullptr);
  Summary out;
  if (resume_from.empty()) {
    out.metrics = runner.run(truth0);
  } else {
    const Status st = runner.resume(resume_from, out.metrics);
    if (!st.ok()) {
      std::cerr << "resume failed: " << st.to_string() << "\n";
      std::exit(1);
    }
  }
  out.ens = runner.ensemble();
  out.rmse = stream::mean_rmse_post(out.metrics, rc.cycles / 2);
  out.misses = stream::count_deadline_misses(out.metrics);
  for (const auto& m : out.metrics) {
    out.assimilated += m.batches_assimilated;
    out.obs_rejected += m.obs_rejected;
    out.batches_rejected += m.batches_rejected;
    out.analysis_failures += m.analysis_failures;
    out.spread_recoveries += m.spread_recoveries;
    out.degraded_cycles += m.degraded ? 1 : 0;
  }
  if (faulty.has_value()) out.faults = faulty->counters();
  return out;
}

bool bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    if (std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)) != 0) return false;
  }
  return true;
}

/// Aggressive end-to-end fault soak (the CI harness): every injector active,
/// QC + degradation + spread watchdog on, both schedules, plus a
/// checkpoint/resume bitwise round-trip. Returns the process exit code.
int run_soak(const io::Args& args, const models::Lorenz96Config& mc,
             std::span<const double> truth0) {
  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 150));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = 0.25;
  rc.qc.enabled = true;
  rc.qc.clim_min = -100.0;
  rc.qc.clim_max = 100.0;
  rc.qc.bg_sigma = 5.0;
  rc.qc.stale_r_inflation = 0.5;
  rc.spread_floor = 1e-3;
  rc.spread_ceiling = 50.0;

  // Moderately degraded delivery: most batches make their deadline, some
  // straggle, some drop. The soak stresses *content* corruption — extreme
  // latency is the plain example's regime.
  stream::SyntheticStreamConfig sc;
  sc.seed = rc.seed;
  sc.latency_cycles = 0.1;
  sc.jitter_cycles = 0.25;
  sc.dropout_prob = 0.1;

  stream::FaultConfig fc;
  fc.nan_prob = 0.05;
  fc.inf_prob = 0.02;
  fc.outlier_prob = 0.03;
  fc.stuck_prob = 0.3;
  fc.duplicate_prob = 0.3;
  fc.truncate_prob = 0.15;

  std::cout << "Fault-injection soak: " << rc.cycles << " cycles x " << rc.n_members
            << " members, NaN=" << fc.nan_prob << " Inf=" << fc.inf_prob
            << " outlier=" << fc.outlier_prob << " stuck=" << fc.stuck_prob
            << " dup=" << fc.duplicate_prob << " trunc=" << fc.truncate_prob
            << ", QC + degradation + spread watchdog on\n\n";

  const auto free_run = run_scenario(sc, rc, truth0, mc, nullptr, /*use_filter=*/false);

  int failures = 0;
  io::Table t({"schedule", "cycles", "late-half RMSE", "obs rejected", "batches refused",
               "analysis failures", "spread recoveries", "degraded cycles"});
  for (const auto schedule : {stream::Schedule::Serial, stream::Schedule::Overlapped}) {
    auto rcs = rc;
    rcs.schedule = schedule;
    const auto r = run_scenario(sc, rcs, truth0, mc, &fc);
    const char* name = schedule == stream::Schedule::Serial ? "serial" : "overlapped";
    t.add_row({name, std::to_string(r.metrics.size()), io::Table::num(r.rmse, 3),
               std::to_string(r.obs_rejected), std::to_string(r.batches_rejected),
               std::to_string(r.analysis_failures), std::to_string(r.spread_recoveries),
               std::to_string(r.degraded_cycles)});
    if (r.metrics.size() != static_cast<std::size_t>(rcs.cycles)) {
      std::cerr << "SOAK FAIL: " << name << " completed " << r.metrics.size() << " of "
                << rcs.cycles << " cycles\n";
      ++failures;
    }
    for (const auto& m : r.metrics)
      if (!std::isfinite(m.rmse_post) || !std::isfinite(m.spread_post)) {
        std::cerr << "SOAK FAIL: " << name << " cycle " << m.cycle << " went non-finite\n";
        ++failures;
        break;
      }
    if (!(r.rmse < free_run.rmse)) {
      std::cerr << "SOAK FAIL: " << name << " late-half RMSE " << r.rmse
                << " does not beat the free run (" << free_run.rmse << ")\n";
      ++failures;
    }
  }
  t.print();

  // Checkpoint mid-run, resume in a fresh stack, demand a bitwise-identical
  // final ensemble.
  const std::string ckpt = args.get_str("ckpt", "soak_ckpt.bin");
  auto rck = rc;
  rck.checkpoint_path = ckpt;
  rck.checkpoint_every = std::max(rc.cycles / 3, 1);
  const auto baseline = run_scenario(sc, rc, truth0, mc, &fc);
  const auto writer = run_scenario(sc, rck, truth0, mc, &fc);
  const auto resumed = run_scenario(sc, rck, truth0, mc, &fc, true, ckpt);
  if (!bitwise_equal(baseline.ens, writer.ens) || !bitwise_equal(baseline.ens, resumed.ens)) {
    std::cerr << "SOAK FAIL: checkpoint/resume is not bitwise identical\n";
    ++failures;
  }
  std::remove(ckpt.c_str());

  std::cout << "\nInjected faults (serial pass): NaN=" << baseline.faults.nan_values
            << " Inf=" << baseline.faults.inf_values
            << " outliers=" << baseline.faults.outlier_values
            << " stuck=" << baseline.faults.stuck_values
            << " duplicated=" << baseline.faults.batches_duplicated
            << " truncated=" << baseline.faults.batches_truncated << "\n";
  if (failures == 0) {
    std::cout << "\nSOAK PASS: every cycle completed, all analyses finite, RMSE below the "
                 "free run, checkpoint/resume bitwise identical.\n";
    return 0;
  }
  std::cerr << "\nSOAK: " << failures << " check(s) failed\n";
  return 1;
}

/// Turbulence-scale mode: the SQG model observed through a sparse strided
/// network and assimilated by the paper-tuned LETKF in the overlapped
/// schedule — the configuration whose traces exercise every instrumented
/// layer at once (runner cycles, LETKF phases, FFT plan execution, pool
/// tasks). Small by default so `--sqg --trace=out.json` stays a smoke test.
int run_sqg(const io::Args& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  const auto members = static_cast<std::size_t>(args.get_int("members", 8));
  const int cycles = static_cast<int>(args.get_int("cycles", 6));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const bool serial = args.get_str("schedule", "overlapped") == "serial";
  const double window_hours = 3.0;

  sqg::SqgConfig mc;
  mc.n = n;
  mc.dt = (n <= 32) ? 1800.0 : 900.0;
  mc.t_diab = 2.0 * 86400.0;
  mc.r_ekman = 200.0;
  mc.diff_efold = 3.0 * 3600.0;
  auto model = std::make_shared<sqg::SqgModel>(mc);
  const double kelvin = models::sqg_kelvin_scale(300.0, mc.f);

  rng::Rng rng(seed);
  std::vector<double> raw(model->dim());
  model->random_init(raw, rng, 2.0 / kelvin, 4);
  model->advance(raw, 1.0 * 86400.0);  // short spin-up: this is a demo
  std::vector<double> truth0(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) truth0[i] = raw[i] * kelvin;

  const auto h = da::SubsampleObs::strided_grid(n, n, 2, stride);
  da::DiagonalR r(h.obs_dim(), 1.0);

  da::LetkfConfig lc;
  lc.nx = n;
  lc.ny = n;
  lc.n_levels = 2;
  lc.domain_m = mc.L;
  lc.cutoff_m = 2.0e6;
  lc.rtps = 0.3;
  lc.rossby_radius_m = std::sqrt(mc.nsq) * mc.H / mc.f;
  lc.n_threads = threads;
  da::LETKF filter(lc);

  sqg::SqgForecast truth_raw(model, window_hours * 3600.0);
  sqg::SqgForecast fcst_raw(model, window_hours * 3600.0);
  models::ScaledForecast truth_model(truth_raw, kelvin);
  models::ScaledForecast fcst_model(fcst_raw, kelvin);

  stream::SyntheticStreamConfig sc;
  sc.seed = seed;
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);

  stream::RealtimeConfig rc;
  rc.n_members = members;
  rc.cycles = cycles;
  rc.window_hours = window_hours;
  rc.init_spread = 1.5;
  rc.seed = seed;
  rc.n_forecast_threads = threads;
  rc.schedule = serial ? stream::Schedule::Serial : stream::Schedule::Overlapped;

  std::cout << "Streaming DA on SQG " << n << "^2x2 (" << members << " members, LETKF on a 1/"
            << stride * stride << " network, " << cycles << " cycles, "
            << (serial ? "serial" : "overlapped") << " schedule)\n\n";

  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  const auto metrics = runner.run(truth0);

  io::Table t({"cycle", "prior RMSE [K]", "post RMSE [K]", "fcst [ms]", "analysis [ms]",
               "cycle [ms]", "pool idle"});
  for (const auto& m : metrics) {
    t.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), io::Table::num(m.forecast_ms, 1),
               io::Table::num(m.analysis_ms, 1), io::Table::num(m.cycle_ms, 1),
               m.pool_idle_frac < 0.0 ? std::string("-") : io::Table::num(m.pool_idle_frac, 2)});
  }
  t.print();

  const std::string csv = args.get_str("csv", "");
  if (!csv.empty()) {
    stream::write_stream_metrics_csv(csv, metrics);
    std::cout << "\nPer-cycle metrics written to " << csv << ".\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout
        << "realtime_da: streaming DA under degraded observation delivery (Lorenz-96 + ETKF)\n"
           "  --cycles=<int>    assimilation windows (default 40)\n"
           "  --members=<int>   ensemble size (default 20)\n"
           "  --seed=<int>      experiment seed (default 7)\n"
           "  --threads=<int>   member-forecast worker threads (0 = all, 1 = serial;\n"
           "                    bitwise identical for any value)\n"
           "  --latency=<f>     mean delivery latency in window units (default 0.3)\n"
           "  --jitter=<f>      uniform extra delay in [0, jitter) windows (default 0.5)\n"
           "  --drop=<f>        probability a window's batch is lost (default 0.2)\n"
           "  --slack=<f>       deadline grace beyond the window end (default 0.25)\n"
           "  --stale=<int>     max straggler age in cycles before discard (default 2)\n"
           "  --csv=<path>      per-cycle metrics of the degraded run (default realtime_da.csv)\n"
           "fault injection (0 disables; any > 0 wraps the stream in FaultyStream):\n"
           "  --nan=<f> --inf=<f> --outlier=<f>   per-value corruption probabilities\n"
           "  --stuck=<f>       per-batch probability a channel freezes for 3 windows\n"
           "  --dup=<f>         per-batch duplicate-transmission probability\n"
           "  --trunc=<f>       per-batch truncation probability\n"
           "quality control / degradation:\n"
           "  --qc              enable observation QC (finite + range + departure gates)\n"
           "  --bg-sigma=<f>    background-departure gate width (default 5)\n"
           "  --stale-inflation=<f>  age-dependent R inflation per cycle of staleness\n"
           "                    (> 0 replaces the staleness discard; default 0.5 with --qc)\n"
           "checkpointing:\n"
           "  --ckpt=<path>     snapshot file (with --ckpt-every=<n> cycles)\n"
           "  --resume          continue from --ckpt instead of starting fresh\n"
           "soak:\n"
           "  --soak            aggressive end-to-end fault soak in both schedules;\n"
           "                    exits non-zero if any cycle fails to complete\n"
           "telemetry (any mode):\n"
           "  --trace=<path>    record tracing spans, export Chrome trace-event JSON\n"
           "  --metrics-dump    print the metrics registry (Prometheus text) on exit\n"
           "  --metrics-json=<path>  write the metrics snapshot as JSON\n"
           "SQG mode (--sqg): turbulence-scale demo, SQG + LETKF, overlapped schedule\n"
           "  --sqg [--n=32] [--members=8] [--cycles=6] [--stride=4]\n"
           "        [--schedule=overlapped|serial] [--csv=<path>]\n";
    return 0;
  }

  const TelemetryCli tel(args);
  if (args.flag("sqg")) return tel.finish(run_sqg(args));

  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;

  // Spin the truth onto the attractor.
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  if (args.flag("soak")) return tel.finish(run_soak(args, mc, truth0));

  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 40));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.n_forecast_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = args.get_double("slack", 0.25);
  rc.max_stale_cycles = static_cast<int>(args.get_int("stale", 2));

  stream::FaultConfig fc;
  fc.seed = rc.seed + 9001;
  fc.nan_prob = args.get_double("nan", 0.0);
  fc.inf_prob = args.get_double("inf", 0.0);
  fc.outlier_prob = args.get_double("outlier", 0.0);
  fc.stuck_prob = args.get_double("stuck", 0.0);
  fc.duplicate_prob = args.get_double("dup", 0.0);
  fc.truncate_prob = args.get_double("trunc", 0.0);
  const bool inject = fc.nan_prob + fc.inf_prob + fc.outlier_prob + fc.stuck_prob +
                          fc.duplicate_prob + fc.truncate_prob >
                      0.0;

  if (args.flag("qc") || inject) {
    rc.qc.enabled = true;
    rc.qc.clim_min = -100.0;
    rc.qc.clim_max = 100.0;
    rc.qc.bg_sigma = args.get_double("bg-sigma", 5.0);
    rc.qc.stale_r_inflation = args.get_double("stale-inflation", 0.5);
  }
  rc.checkpoint_path = args.get_str("ckpt", "");
  rc.checkpoint_every = static_cast<int>(args.get_int("ckpt-every", 10));
  const std::string resume_from = args.flag("resume") ? rc.checkpoint_path : "";

  stream::SyntheticStreamConfig degraded;
  degraded.seed = rc.seed;
  degraded.latency_cycles = args.get_double("latency", 0.3);
  degraded.jitter_cycles = args.get_double("jitter", 0.5);
  degraded.dropout_prob = args.get_double("drop", 0.2);

  stream::SyntheticStreamConfig instant;
  instant.seed = rc.seed;

  std::cout << "Streaming DA on Lorenz-96 (" << mc.dim << " vars, " << rc.cycles << " cycles, "
            << rc.n_members << " members, R = I): latency=" << degraded.latency_cycles
            << " jitter=" << degraded.jitter_cycles << " drop=" << degraded.dropout_prob
            << " slack=" << rc.deadline_slack_cycles
            << (inject ? " + fault injection" : "") << (rc.qc.enabled ? " + QC" : "") << "\n\n";

  const stream::FaultConfig* fcp = inject ? &fc : nullptr;
  // Only the headline degraded serial run checkpoints/resumes; the
  // comparison runs must not touch the snapshot file.
  stream::RealtimeConfig ic = rc;
  ic.checkpoint_path.clear();
  const auto ideal = run_scenario(instant, ic, truth0, mc);
  auto serial = run_scenario(degraded, rc, truth0, mc, fcp, true, resume_from);
  stream::RealtimeConfig oc = ic;
  oc.schedule = stream::Schedule::Overlapped;
  const auto overlapped = run_scenario(degraded, oc, truth0, mc, fcp);

  io::Table t({"scenario", "late-half RMSE", "deadline misses", "batches assimilated"});
  t.add_row({"instant delivery, serial", io::Table::num(ideal.rmse, 3),
             std::to_string(ideal.misses), std::to_string(ideal.assimilated)});
  t.add_row({inject ? "degraded + faults, serial" : "degraded, serial",
             io::Table::num(serial.rmse, 3), std::to_string(serial.misses),
             std::to_string(serial.assimilated)});
  t.add_row({inject ? "degraded + faults, overlapped" : "degraded, overlapped",
             io::Table::num(overlapped.rmse, 3), std::to_string(overlapped.misses),
             std::to_string(overlapped.assimilated)});
  t.print();

  if (inject) {
    std::cout << "\nInjected (serial run): NaN=" << serial.faults.nan_values
              << " Inf=" << serial.faults.inf_values
              << " outliers=" << serial.faults.outlier_values
              << " stuck=" << serial.faults.stuck_values
              << " duplicated=" << serial.faults.batches_duplicated
              << " truncated=" << serial.faults.batches_truncated
              << "; QC rejected " << serial.obs_rejected << " values, refused "
              << serial.batches_rejected << " batches, " << serial.degraded_cycles
              << " degraded cycle(s)\n";
  }

  std::cout << "\nPer-cycle view of the degraded serial run (every 5th cycle):\n";
  io::Table c({"cycle", "prior RMSE", "post RMSE", "batches", "age", "miss"});
  for (const auto& m : serial.metrics) {
    if (m.cycle % 5 != 0 && m.cycle != rc.cycles - 1) continue;
    c.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), std::to_string(m.batches_assimilated),
               std::to_string(m.max_batch_age), m.deadline_miss ? "yes" : ""});
  }
  c.print();

  const std::string csv = args.get_str("csv", "realtime_da.csv");
  stream::write_stream_metrics_csv(csv, serial.metrics);
  std::cout << "\nPer-cycle metrics written to " << csv
            << ".\nExpected: instant delivery tracks near the obs-error floor; lost and late\n"
               "batches cost accuracy in proportion; the overlapped pipeline pays an extra\n"
               "one-window increment lag in exchange for hiding analysis + delivery latency\n"
               "behind the next forecast (see bench_stream_realtime for the throughput side).\n";
  return tel.finish(0);
}
