// Real-time streaming assimilation demo: a Lorenz-96 truth observed through
// a synthetic stream with configurable delivery latency, jitter and
// dropouts, cycled by the deadline-aware RealtimeRunner in either schedule.
// Shows how assimilation quality degrades as delivery degrades, and what
// the overlapped forecast/analysis pipeline trades for its throughput.
//
//   build/examples/realtime_da [--latency=0.3] [--jitter=0.5] [--drop=0.2]
#include <iostream>
#include <string>

#include "da/etkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "models/lorenz96.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

using namespace turbda;

namespace {

struct Summary {
  double rmse = 0.0;
  int misses = 0;
  int assimilated = 0;
  std::vector<stream::StreamCycleMetrics> metrics;
};

Summary run_scenario(const stream::SyntheticStreamConfig& sc, const stream::RealtimeConfig& rc,
                     std::span<const double> truth0, const models::Lorenz96Config& mc) {
  models::Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});

  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  Summary out;
  out.metrics = runner.run(truth0);
  out.rmse = stream::mean_rmse_post(out.metrics, rc.cycles / 2);
  out.misses = stream::count_deadline_misses(out.metrics);
  for (const auto& m : out.metrics) out.assimilated += m.batches_assimilated;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout
        << "realtime_da: streaming DA under degraded observation delivery (Lorenz-96 + ETKF)\n"
           "  --cycles=<int>    assimilation windows (default 40)\n"
           "  --members=<int>   ensemble size (default 20)\n"
           "  --seed=<int>      experiment seed (default 7)\n"
           "  --threads=<int>   member-forecast worker threads (0 = all, 1 = serial;\n"
           "                    bitwise identical for any value)\n"
           "  --latency=<f>     mean delivery latency in window units (default 0.3)\n"
           "  --jitter=<f>      uniform extra delay in [0, jitter) windows (default 0.5)\n"
           "  --drop=<f>        probability a window's batch is lost (default 0.2)\n"
           "  --slack=<f>       deadline grace beyond the window end (default 0.25)\n"
           "  --stale=<int>     max straggler age in cycles before discard (default 2)\n"
           "  --csv=<path>      per-cycle metrics of the degraded run (default realtime_da.csv)\n";
    return 0;
  }

  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;

  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 40));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.n_forecast_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = args.get_double("slack", 0.25);
  rc.max_stale_cycles = static_cast<int>(args.get_int("stale", 2));

  stream::SyntheticStreamConfig degraded;
  degraded.seed = rc.seed;
  degraded.latency_cycles = args.get_double("latency", 0.3);
  degraded.jitter_cycles = args.get_double("jitter", 0.5);
  degraded.dropout_prob = args.get_double("drop", 0.2);

  stream::SyntheticStreamConfig instant;
  instant.seed = rc.seed;

  // Spin the truth onto the attractor.
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  std::cout << "Streaming DA on Lorenz-96 (" << mc.dim << " vars, " << rc.cycles << " cycles, "
            << rc.n_members << " members, R = I): latency=" << degraded.latency_cycles
            << " jitter=" << degraded.jitter_cycles << " drop=" << degraded.dropout_prob
            << " slack=" << rc.deadline_slack_cycles << "\n\n";

  const auto ideal = run_scenario(instant, rc, truth0, mc);
  auto serial = run_scenario(degraded, rc, truth0, mc);
  stream::RealtimeConfig oc = rc;
  oc.schedule = stream::Schedule::Overlapped;
  const auto overlapped = run_scenario(degraded, oc, truth0, mc);

  io::Table t({"scenario", "late-half RMSE", "deadline misses", "batches assimilated"});
  t.add_row({"instant delivery, serial", io::Table::num(ideal.rmse, 3),
             std::to_string(ideal.misses), std::to_string(ideal.assimilated)});
  t.add_row({"degraded, serial", io::Table::num(serial.rmse, 3), std::to_string(serial.misses),
             std::to_string(serial.assimilated)});
  t.add_row({"degraded, overlapped", io::Table::num(overlapped.rmse, 3),
             std::to_string(overlapped.misses), std::to_string(overlapped.assimilated)});
  t.print();

  std::cout << "\nPer-cycle view of the degraded serial run (every 5th cycle):\n";
  io::Table c({"cycle", "prior RMSE", "post RMSE", "batches", "age", "miss"});
  for (const auto& m : serial.metrics) {
    if (m.cycle % 5 != 0 && m.cycle != rc.cycles - 1) continue;
    c.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), std::to_string(m.batches_assimilated),
               std::to_string(m.max_batch_age), m.deadline_miss ? "yes" : ""});
  }
  c.print();

  const std::string csv = args.get_str("csv", "realtime_da.csv");
  stream::write_stream_metrics_csv(csv, serial.metrics);
  std::cout << "\nPer-cycle metrics written to " << csv
            << ".\nExpected: instant delivery tracks near the obs-error floor; lost and late\n"
               "batches cost accuracy in proportion; the overlapped pipeline pays an extra\n"
               "one-window increment lag in exchange for hiding analysis + delivery latency\n"
               "behind the next forecast (see bench_stream_realtime for the throughput side).\n";
  return 0;
}
