// Real-time streaming assimilation demo: a Lorenz-96 truth observed through
// a synthetic stream with configurable delivery latency, jitter and
// dropouts, cycled by the deadline-aware RealtimeRunner in either schedule.
// Shows how assimilation quality degrades as delivery degrades, and what
// the overlapped forecast/analysis pipeline trades for its throughput.
//
// Fault tolerance: the stream can be wrapped in a deterministic fault
// injector (NaN/Inf/outlier values, stuck channels, duplicated and truncated
// batches) with observation QC, graceful degradation and periodic
// checkpointing on the runner side. `--soak` runs an aggressive end-to-end
// injection scenario in both schedules, prints the degradation table and
// exits non-zero if any cycle failed to complete — the CI crash harness.
//
//   build/examples/realtime_da [--latency=0.3] [--jitter=0.5] [--drop=0.2]
//   build/examples/realtime_da --nan=0.05 --stuck=0.3 --qc
//   build/examples/realtime_da --soak
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "models/lorenz96.hpp"
#include "models/scaled_forecast.hpp"
#include "sqg/sqg.hpp"
#include "stream/faulty_stream.hpp"
#include "stream/ingest/ingest_stream.hpp"
#include "stream/ingest/socket_stream.hpp"
#include "stream/ingest/tail_stream.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

using namespace turbda;
namespace ingest = turbda::stream::ingest;

namespace {

/// --trace / --metrics-dump / --metrics-json plumbing, shared by every mode:
/// tracing is armed before the first cycle and exported on exit.
struct TelemetryCli {
  std::string trace_path;
  bool metrics_dump = false;
  std::string metrics_json;

  explicit TelemetryCli(const io::Args& args)
      : trace_path(args.get_str("trace", "")),
        metrics_dump(args.flag("metrics-dump")),
        metrics_json(args.get_str("metrics-json", "")) {
    telemetry::set_thread_label("main");
    if (!trace_path.empty()) telemetry::TraceCollector::instance().enable();
  }

  /// Export whatever was recorded and pass the mode's exit code through
  /// (telemetry export failures only fail an otherwise-clean run).
  int finish(int code) const {
    if (!trace_path.empty()) {
      auto& tc = telemetry::TraceCollector::instance();
      tc.disable();
      const Status st = tc.write_chrome_trace(trace_path);
      if (st.ok()) {
        std::cout << "\nChrome trace written to " << trace_path
                  << " (load in chrome://tracing or https://ui.perfetto.dev).\n";
      } else {
        std::cerr << "trace export failed: " << st.to_string() << "\n";
        if (code == 0) code = 1;
      }
    }
    if (metrics_dump || !metrics_json.empty()) {
      const auto snap = telemetry::MetricsRegistry::global().snapshot();
      if (metrics_dump)
        std::cout << "\n--- metrics (Prometheus text exposition) ---\n"
                  << telemetry::to_prometheus(snap);
      if (!metrics_json.empty()) {
        std::ofstream f(metrics_json);
        f << telemetry::to_json(snap);
        if (!f.good()) {
          std::cerr << "metrics JSON export to " << metrics_json << " failed\n";
          if (code == 0) code = 1;
        } else {
          std::cout << "Metrics JSON written to " << metrics_json << ".\n";
        }
      }
    }
    return code;
  }
};

struct Summary {
  double rmse = 0.0;
  int misses = 0;
  int assimilated = 0;
  int obs_rejected = 0;
  int batches_rejected = 0;
  int analysis_failures = 0;
  int spread_recoveries = 0;
  int degraded_cycles = 0;
  std::vector<stream::StreamCycleMetrics> metrics;
  stream::FaultCounters faults;
  da::Ensemble ens{2, 2};
};

Summary run_scenario(const stream::SyntheticStreamConfig& sc, const stream::RealtimeConfig& rc,
                     std::span<const double> truth0, const models::Lorenz96Config& mc,
                     const stream::FaultConfig* fc = nullptr, bool use_filter = true,
                     const std::string& resume_from = {}) {
  models::Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});

  stream::SyntheticStream inner(sc, truth_model, h, r, truth0);
  std::optional<stream::FaultyStream> faulty;
  stream::ObservationStream* s = &inner;
  if (fc != nullptr) {
    faulty.emplace(*fc, inner);
    s = &*faulty;
  }
  stream::RealtimeRunner runner(rc, *s, fcst_model, use_filter ? &filter : nullptr);
  Summary out;
  if (resume_from.empty()) {
    out.metrics = runner.run(truth0);
  } else {
    const Status st = runner.resume(resume_from, out.metrics);
    if (!st.ok()) {
      std::cerr << "resume failed: " << st.to_string() << "\n";
      std::exit(1);
    }
  }
  out.ens = runner.ensemble();
  out.rmse = stream::mean_rmse_post(out.metrics, rc.cycles / 2);
  out.misses = stream::count_deadline_misses(out.metrics);
  for (const auto& m : out.metrics) {
    out.assimilated += m.batches_assimilated;
    out.obs_rejected += m.obs_rejected;
    out.batches_rejected += m.batches_rejected;
    out.analysis_failures += m.analysis_failures;
    out.spread_recoveries += m.spread_recoveries;
    out.degraded_cycles += m.degraded ? 1 : 0;
  }
  if (faulty.has_value()) out.faults = faulty->counters();
  return out;
}

bool bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    if (std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)) != 0) return false;
  }
  return true;
}

/// Aggressive end-to-end fault soak (the CI harness): every injector active,
/// QC + degradation + spread watchdog on, both schedules, plus a
/// checkpoint/resume bitwise round-trip. Returns the process exit code.
int run_soak(const io::Args& args, const models::Lorenz96Config& mc,
             std::span<const double> truth0) {
  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 150));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = 0.25;
  rc.qc.enabled = true;
  rc.qc.clim_min = -100.0;
  rc.qc.clim_max = 100.0;
  rc.qc.bg_sigma = 5.0;
  rc.qc.stale_r_inflation = 0.5;
  rc.spread_floor = 1e-3;
  rc.spread_ceiling = 50.0;

  // Moderately degraded delivery: most batches make their deadline, some
  // straggle, some drop. The soak stresses *content* corruption — extreme
  // latency is the plain example's regime.
  stream::SyntheticStreamConfig sc;
  sc.seed = rc.seed;
  sc.latency_cycles = 0.1;
  sc.jitter_cycles = 0.25;
  sc.dropout_prob = 0.1;

  stream::FaultConfig fc;
  fc.nan_prob = 0.05;
  fc.inf_prob = 0.02;
  fc.outlier_prob = 0.03;
  fc.stuck_prob = 0.3;
  fc.duplicate_prob = 0.3;
  fc.truncate_prob = 0.15;

  std::cout << "Fault-injection soak: " << rc.cycles << " cycles x " << rc.n_members
            << " members, NaN=" << fc.nan_prob << " Inf=" << fc.inf_prob
            << " outlier=" << fc.outlier_prob << " stuck=" << fc.stuck_prob
            << " dup=" << fc.duplicate_prob << " trunc=" << fc.truncate_prob
            << ", QC + degradation + spread watchdog on\n\n";

  const auto free_run = run_scenario(sc, rc, truth0, mc, nullptr, /*use_filter=*/false);

  int failures = 0;
  io::Table t({"schedule", "cycles", "late-half RMSE", "obs rejected", "batches refused",
               "analysis failures", "spread recoveries", "degraded cycles"});
  for (const auto schedule : {stream::Schedule::Serial, stream::Schedule::Overlapped}) {
    auto rcs = rc;
    rcs.schedule = schedule;
    const auto r = run_scenario(sc, rcs, truth0, mc, &fc);
    const char* name = schedule == stream::Schedule::Serial ? "serial" : "overlapped";
    t.add_row({name, std::to_string(r.metrics.size()), io::Table::num(r.rmse, 3),
               std::to_string(r.obs_rejected), std::to_string(r.batches_rejected),
               std::to_string(r.analysis_failures), std::to_string(r.spread_recoveries),
               std::to_string(r.degraded_cycles)});
    if (r.metrics.size() != static_cast<std::size_t>(rcs.cycles)) {
      std::cerr << "SOAK FAIL: " << name << " completed " << r.metrics.size() << " of "
                << rcs.cycles << " cycles\n";
      ++failures;
    }
    for (const auto& m : r.metrics)
      if (!std::isfinite(m.rmse_post) || !std::isfinite(m.spread_post)) {
        std::cerr << "SOAK FAIL: " << name << " cycle " << m.cycle << " went non-finite\n";
        ++failures;
        break;
      }
    if (!(r.rmse < free_run.rmse)) {
      std::cerr << "SOAK FAIL: " << name << " late-half RMSE " << r.rmse
                << " does not beat the free run (" << free_run.rmse << ")\n";
      ++failures;
    }
  }
  t.print();

  // Checkpoint mid-run, resume in a fresh stack, demand a bitwise-identical
  // final ensemble.
  const std::string ckpt = args.get_str("ckpt", "soak_ckpt.bin");
  auto rck = rc;
  rck.checkpoint_path = ckpt;
  rck.checkpoint_every = std::max(rc.cycles / 3, 1);
  const auto baseline = run_scenario(sc, rc, truth0, mc, &fc);
  const auto writer = run_scenario(sc, rck, truth0, mc, &fc);
  const auto resumed = run_scenario(sc, rck, truth0, mc, &fc, true, ckpt);
  if (!bitwise_equal(baseline.ens, writer.ens) || !bitwise_equal(baseline.ens, resumed.ens)) {
    std::cerr << "SOAK FAIL: checkpoint/resume is not bitwise identical\n";
    ++failures;
  }
  std::remove(ckpt.c_str());

  std::cout << "\nInjected faults (serial pass): NaN=" << baseline.faults.nan_values
            << " Inf=" << baseline.faults.inf_values
            << " outliers=" << baseline.faults.outlier_values
            << " stuck=" << baseline.faults.stuck_values
            << " duplicated=" << baseline.faults.batches_duplicated
            << " truncated=" << baseline.faults.batches_truncated << "\n";
  if (failures == 0) {
    std::cout << "\nSOAK PASS: every cycle completed, all analyses finite, RMSE below the "
                 "free run, checkpoint/resume bitwise identical.\n";
    return 0;
  }
  std::cerr << "\nSOAK: " << failures << " check(s) failed\n";
  return 1;
}

// ------------------------------------------------------- live ingestion ---

/// Encodes window `w`'s wire traffic: every batch the stream released, truth
/// retransmits for the last three windows, and the heartbeat that publishes
/// the window. With `corrupt_frac > 0` a deterministic coin prefixes frames
/// with a damaged copy (and the occasional run of garbage bytes); the clean
/// frame follows immediately, so corruption exercises the decoder's CRC and
/// resynchronization without starving the consumer of data.
void encode_window_frames(stream::SyntheticStream& s, int w, double corrupt_frac,
                          rng::Rng& wire_rng, std::uint64_t& seq,
                          std::vector<std::uint8_t>& out) {
  std::vector<stream::ObsBatch> got;
  s.collect(std::numeric_limits<double>::infinity(), got);
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& b : got) {
    frames.emplace_back();
    ingest::encode_obs_frame(b, frames.back());
  }
  for (int t = std::max(0, w - 2); t <= w; ++t) {
    const auto tr = s.truth(t);
    if (!tr.empty()) {
      frames.emplace_back();
      ingest::encode_truth_frame(t, tr, frames.back());
    }
  }
  frames.emplace_back();
  ingest::encode_heartbeat_frame(w, seq++, frames.back());

  for (const auto& f : frames) {
    if (corrupt_frac > 0.0 && wire_rng.bernoulli(corrupt_frac)) {
      std::vector<std::uint8_t> bad = f;
      bad[ingest::kWireHeaderBytes + 1] ^= 0x5A;  // payload damage: CRC must catch it
      out.insert(out.end(), bad.begin(), bad.end());
      if (wire_rng.bernoulli(0.5))  // plus line noise the decoder has to hunt through
        for (std::size_t i = 0; i < 24; ++i)
          out.push_back(static_cast<std::uint8_t>((i * 7 + 1) % 251));
    }
    out.insert(out.end(), f.begin(), f.end());
  }
}

/// Feeder process: generates the deterministic OSSE windows and streams them
/// framed over TCP (`--feed=host:port`) or appends them to a file
/// (`--feed-file=path`, the drop-and-tail topology). `--kill-after=N` makes
/// it die mid-frame after N windows (exit 3) — the CI crash loop restarts it
/// and `--progress` tells the restart where to resume (minus a replay tail,
/// which the consumer's duplicate ledger absorbs).
int run_feeder(const io::Args& args, const models::Lorenz96Config& mc,
               std::span<const double> truth0) {
  const std::string target = args.get_str("feed", "");
  const std::string file = args.get_str("feed-file", "");
  const int cycles = static_cast<int>(args.get_int("cycles", 40));
  const int pace_ms = static_cast<int>(args.get_int("pace-ms", 0));
  const double corrupt = args.get_double("wire-corrupt", 0.0);
  const int kill_after = static_cast<int>(args.get_int("kill-after", 0));
  const std::string progress = args.get_str("progress", "");

  stream::SyntheticStreamConfig sc;
  sc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  sc.latency_cycles = args.get_double("latency", 0.1);
  sc.jitter_cycles = args.get_double("jitter", 0.25);
  sc.dropout_prob = args.get_double("drop", 0.0);

  int start = 0;
  if (!progress.empty()) {
    std::ifstream pf(progress);
    int done = 0;
    // Replay the last windows before the crash: the feeder cannot know what
    // survived, the consumer's ledger drops what did.
    if (pf >> done) start = std::max(0, done - 2);
  }

  models::Lorenz96 truth_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  // The stream is a pure function of its seed: regenerate (and discard) the
  // windows a previous incarnation already delivered.
  std::vector<stream::ObsBatch> sink;
  for (int w = 0; w < start; ++w) s.produce(w);
  s.collect(std::numeric_limits<double>::infinity(), sink);
  sink.clear();

  ingest::SocketWriter writer;
  std::ofstream out_file;
  std::string host;
  std::uint16_t port = 0;
  if (!target.empty()) {
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--feed expects host:port\n";
      return 2;
    }
    host = target.substr(0, colon);
    port = static_cast<std::uint16_t>(std::stoi(target.substr(colon + 1)));
    const auto t0 = std::chrono::steady_clock::now();
    while (!writer.connect(host, port, 250).ok()) {
      if (std::chrono::steady_clock::now() - t0 > std::chrono::seconds(60)) {
        std::cerr << "feeder: no consumer at " << target << " after 60 s\n";
        return 2;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  } else {
    out_file.open(file, std::ios::binary | std::ios::app);
    if (!out_file) {
      std::cerr << "feeder: cannot open " << file << "\n";
      return 2;
    }
  }

  std::cout << "feeder: windows " << start << ".." << cycles - 1 << " -> "
            << (target.empty() ? file : target) << " (corrupt=" << corrupt
            << (kill_after > 0 ? ", crashing after " + std::to_string(kill_after) + " windows" : "")
            << ")\n";

  rng::Rng wire_rng = rng::Rng(sc.seed).substream(13);
  std::uint64_t seq = static_cast<std::uint64_t>(start);
  int sent = 0;
  const auto ship = [&](std::span<const std::uint8_t> bytes) {
    if (target.empty()) {
      out_file.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
      out_file.flush();
      return;
    }
    while (!writer.send_all(bytes).ok()) {  // consumer restarted: redial, resend
      writer.close();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      (void)writer.connect(host, port, 250);
    }
  };
  for (int w = start; w < cycles; ++w) {
    s.produce(w);
    std::vector<std::uint8_t> bytes;
    encode_window_frames(s, w, corrupt, wire_rng, seq, bytes);
    ship(bytes);
    if (!progress.empty()) {
      std::ofstream pf(progress, std::ios::trunc);
      pf << (w + 1) << "\n";
    }
    ++sent;
    if (kill_after > 0 && sent >= kill_after && w + 1 < cycles) {
      // Die the ugly way: half a frame on the wire, no goodbye. The consumer
      // has to flush the torn frame as corrupt and re-accept the restart.
      std::vector<std::uint8_t> torn;
      ingest::encode_heartbeat_frame(w, seq++, torn);
      torn.resize(torn.size() / 2);
      ship(torn);
      std::cerr << "feeder: simulated crash after " << sent << " window(s), progress at "
                << (w + 1) << "\n";
      std::_Exit(3);
    }
    if (pace_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
  }
  std::cout << "feeder: done (" << sent << " window(s) this incarnation)\n";
  return 0;
}

struct IngestSummary {
  std::vector<stream::StreamCycleMetrics> metrics;
  da::Ensemble ens{2, 2};
  ingest::IngestStats stats;
};

/// One consumer run (or resume) over an IngestSource transport.
IngestSummary run_ingest(std::unique_ptr<ingest::IngestSource> src,
                         const ingest::IngestStreamConfig& ic, const stream::RealtimeConfig& rc,
                         const models::Lorenz96Config& mc, std::span<const double> truth0,
                         const std::string& resume_from = {}) {
  models::Lorenz96 fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});
  ingest::IngestStream s(ic, std::move(src), h, r);
  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  IngestSummary out;
  if (resume_from.empty()) {
    out.metrics = runner.run(truth0);
  } else {
    const Status st = runner.resume(resume_from, out.metrics);
    if (!st.ok()) {
      std::cerr << "resume failed: " << st.to_string() << "\n";
      std::exit(1);
    }
  }
  out.ens = runner.ensemble();
  out.stats = s.stats();
  return out;
}

void print_ingest_stats(const ingest::IngestStats& st) {
  std::cout << "\nIngest: " << st.wire.frames_decoded << " frames decoded ("
            << st.wire.heartbeats << " heartbeats), " << st.wire.frames_corrupt << " corrupt, "
            << st.wire.frames_resynced << " resyncs over " << st.wire.bytes_discarded
            << " discarded bytes; " << st.reconnects << " reconnect(s), "
            << st.heartbeat_timeouts << " staleness teardown(s), " << st.duplicates_dropped
            << " duplicate batch(es) dropped, " << st.queue_drops
            << " queue eviction(s); feeder high water: window " << st.high_water_cycle << "\n";
}

/// Consumer process: assimilates a live feed — `--listen=port` accepts a TCP
/// feeder, `--tail=path` follows a feeder-appended file (`--replay` for a
/// finalized recording). `--check` adds the OSSE pass/fail verdict: every
/// cycle completed, analyses finite, RMSE below the locally reproduced free
/// run (valid because feeder and consumer share the scenario seed).
int run_live_consumer(const io::Args& args, const models::Lorenz96Config& mc,
                      std::span<const double> truth0) {
  const int port = static_cast<int>(args.get_int("listen", 0));
  const std::string tail = args.get_str("tail", "");
  std::unique_ptr<ingest::IngestSource> src;
  if (port > 0) {
    ingest::SocketStreamConfig scfg;
    scfg.port = static_cast<std::uint16_t>(port);
    scfg.listen = true;
    src = std::make_unique<ingest::SocketStream>(scfg);
  } else {
    ingest::TailStreamConfig tc;
    tc.path = tail;
    tc.stop_at_eof = args.flag("replay");
    src = std::make_unique<ingest::TailStream>(tc);
  }

  ingest::IngestStreamConfig ic;
  ic.read_timeout_ms = 20;
  ic.stale_after_ms = static_cast<int>(args.get_int("stale-ms", 2000));
  ic.produce_timeout_ms = static_cast<int>(args.get_int("produce-timeout-ms", 60000));

  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 40));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.n_forecast_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = args.get_double("slack", 0.25);
  rc.max_stale_cycles = static_cast<int>(args.get_int("stale", 2));
  const int depth = static_cast<int>(args.get_int("depth", 1));
  rc.overlap_depth = std::max(1, depth);
  rc.schedule = (depth > 1 || args.get_str("schedule", "serial") == "overlapped")
                    ? stream::Schedule::Overlapped
                    : stream::Schedule::Serial;
  if (args.flag("qc")) {
    rc.qc.enabled = true;
    rc.qc.clim_min = -100.0;
    rc.qc.clim_max = 100.0;
    rc.qc.bg_sigma = args.get_double("bg-sigma", 5.0);
    rc.qc.stale_r_inflation = args.get_double("stale-inflation", 0.5);
  }
  rc.checkpoint_path = args.get_str("ckpt", "");
  rc.checkpoint_every = static_cast<int>(args.get_int("ckpt-every", 10));
  const std::string resume_from = args.flag("resume") ? rc.checkpoint_path : "";

  std::cout << "Live ingestion ("
            << (port > 0 ? "listening on 127.0.0.1:" + std::to_string(port) : "tailing " + tail)
            << "): " << rc.cycles << " cycles, " << rc.n_members
            << " members, overlap depth " << rc.overlap_depth << "\n\n";

  const auto r = run_ingest(std::move(src), ic, rc, mc, truth0, resume_from);

  io::Table c({"cycle", "prior RMSE", "post RMSE", "batches", "age", "late", "miss"});
  for (const auto& m : r.metrics) {
    if (m.cycle % 5 != 0 && m.cycle != rc.cycles - 1) continue;
    c.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), std::to_string(m.batches_assimilated),
               std::to_string(m.max_batch_age), std::to_string(m.late_applied),
               m.deadline_miss ? "yes" : ""});
  }
  c.print();
  print_ingest_stats(r.stats);

  const std::string csv = args.get_str("csv", "");
  if (!csv.empty()) {
    stream::write_stream_metrics_csv(csv, r.metrics);
    std::cout << "Per-cycle metrics written to " << csv << ".\n";
  }

  int code = 0;
  if (args.flag("check")) {
    const double rmse = stream::mean_rmse_post(r.metrics, rc.cycles / 2);
    stream::SyntheticStreamConfig instant;
    instant.seed = rc.seed;
    auto rc_free = rc;
    rc_free.checkpoint_path.clear();
    const auto free_run = run_scenario(instant, rc_free, truth0, mc, nullptr, /*use_filter=*/false);
    if (r.metrics.size() != static_cast<std::size_t>(rc.cycles)) {
      std::cerr << "CHECK FAIL: completed " << r.metrics.size() << " of " << rc.cycles
                << " cycles\n";
      code = 1;
    }
    for (const auto& m : r.metrics)
      if (!std::isfinite(m.rmse_post)) {
        std::cerr << "CHECK FAIL: cycle " << m.cycle << " went non-finite\n";
        code = 1;
        break;
      }
    if (!(rmse < free_run.rmse)) {
      std::cerr << "CHECK FAIL: late-half RMSE " << rmse << " does not beat the free run ("
                << free_run.rmse << ")\n";
      code = 1;
    }
    if (code == 0)
      std::cout << "\nCHECK PASS: " << rc.cycles << " cycles, late-half RMSE " << rmse
                << " < free run " << free_run.rmse << "\n";
  }
  return code;
}

/// Single-process deterministic ingestion soak (the CI harness for the wire
/// path): records a deliberately damaged capture of a very-late feed, then
/// proves (1) the decoder survives corruption and K=2 deep overlap applies
/// the age-3 stragglers an identical K=1 run must drop, (2) checkpoint/
/// resume over the live-ingested state is bitwise across thread counts, and
/// (3) a TCP loopback consumer survives repeated mid-frame feeder crashes
/// with RMSE still beating the free run.
int run_soak_ingest(const io::Args& args, const models::Lorenz96Config& mc,
                    std::span<const double> truth0) {
  int failures = 0;
  const int cycles = static_cast<int>(args.get_int("cycles", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string capture = args.get_str("capture", "soak_ingest_capture.bin");

  {  // Phase 1: record the damaged capture (age-3 deliveries, 25% corrupt frames).
    stream::SyntheticStreamConfig sc;
    sc.seed = seed;
    sc.latency_cycles = 2.6;
    sc.jitter_cycles = 0.3;
    models::Lorenz96 truth_model(mc);
    da::IdentityObs h(mc.dim);
    da::DiagonalR r(mc.dim, 1.0);
    stream::SyntheticStream s(sc, truth_model, h, r, truth0);
    rng::Rng wire_rng = rng::Rng(seed).substream(13);
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;
    for (int w = 0; w < cycles; ++w) {
      s.produce(w);
      encode_window_frames(s, w, 0.25, wire_rng, seq, bytes);
    }
    std::ofstream f(capture, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f.good()) {
      std::cerr << "cannot write " << capture << "\n";
      return 1;
    }
  }

  ingest::IngestStreamConfig ic;
  ic.read_timeout_ms = 5;
  ic.stale_after_ms = 1000;
  ic.produce_timeout_ms = 10000;
  const auto make_replay = [&] {
    ingest::TailStreamConfig tc;
    tc.path = capture;
    tc.stop_at_eof = true;
    return std::make_unique<ingest::TailStream>(tc);
  };

  stream::RealtimeConfig rc;
  rc.cycles = cycles;
  rc.n_members = 10;
  rc.seed = seed;
  rc.schedule = stream::Schedule::Overlapped;
  rc.max_stale_cycles = 2;

  // Phase 2: replay the capture at K=1 and K=2.
  auto rc1 = rc;
  rc1.overlap_depth = 1;
  auto rc2 = rc;
  rc2.overlap_depth = 2;
  const auto k1 = run_ingest(make_replay(), ic, rc1, mc, truth0);
  const auto k2 = run_ingest(make_replay(), ic, rc2, mc, truth0);

  int k1_late = 0, k1_disc = 0, k2_late = 0, k2_disc = 0;
  for (const auto& m : k1.metrics) {
    k1_late += m.late_applied;
    k1_disc += m.batches_discarded;
  }
  for (const auto& m : k2.metrics) {
    k2_late += m.late_applied;
    k2_disc += m.batches_discarded;
  }
  io::Table t({"depth", "cycles", "late applied", "discarded", "corrupt frames", "resyncs",
               "late-half RMSE"});
  t.add_row({"K=1", std::to_string(k1.metrics.size()), std::to_string(k1_late),
             std::to_string(k1_disc), std::to_string(k1.stats.wire.frames_corrupt),
             std::to_string(k1.stats.wire.frames_resynced),
             io::Table::num(stream::mean_rmse_post(k1.metrics, cycles / 2), 3)});
  t.add_row({"K=2", std::to_string(k2.metrics.size()), std::to_string(k2_late),
             std::to_string(k2_disc), std::to_string(k2.stats.wire.frames_corrupt),
             std::to_string(k2.stats.wire.frames_resynced),
             io::Table::num(stream::mean_rmse_post(k2.metrics, cycles / 2), 3)});
  t.print();

  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "SOAK-INGEST FAIL: " << what << "\n";
      ++failures;
    }
  };
  check(k1.metrics.size() == static_cast<std::size_t>(cycles), "K=1 did not complete");
  check(k2.metrics.size() == static_cast<std::size_t>(cycles), "K=2 did not complete");
  check(k1_late == 0 && k1_disc > 0, "K=1 should drop the age-3 stragglers");
  check(k2_late > 0 && k2_disc == 0, "K=2 should apply the age-3 stragglers late");
  check(k2.stats.wire.frames_corrupt > 0 && k2.stats.wire.frames_resynced > 0,
        "the capture's corruption never reached the decoder");
  bool finite = true;
  for (const auto& m : k2.metrics) finite = finite && std::isfinite(m.rmse_post);
  check(finite, "K=2 went non-finite under late increments");

  // Phase 3: checkpoint/resume over live-ingested state, bitwise across threads.
  const std::string ckpt = args.get_str("ckpt", "soak_ingest_ckpt.bin");
  auto rck = rc2;
  rck.checkpoint_path = ckpt;
  rck.checkpoint_every = 7;
  const auto writer = run_ingest(make_replay(), ic, rck, mc, truth0);
  check(bitwise_equal(k2.ens, writer.ens), "checkpointing perturbed the replay");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto rres = rck;
    rres.n_forecast_threads = threads;
    const auto resumed = run_ingest(make_replay(), ic, rres, mc, truth0, ckpt);
    check(bitwise_equal(k2.ens, resumed.ens), "resume is not bitwise (ensemble)");
    bool metrics_ok = resumed.metrics.size() == k2.metrics.size();
    for (std::size_t i = 0; metrics_ok && i < k2.metrics.size(); ++i)
      metrics_ok = resumed.metrics[i].rmse_post == k2.metrics[i].rmse_post;
    check(metrics_ok, "resume is not bitwise (metrics)");
  }
  std::remove(ckpt.c_str());

  // Phase 4: TCP loopback, three mid-frame feeder crashes, corrupt frames.
  {
    ingest::SocketStreamConfig scfg;
    scfg.port = 0;
    scfg.listen = true;
    scfg.connect_timeout_ms = 50;
    auto sock = std::make_unique<ingest::SocketStream>(scfg);
    (void)sock->connect();  // binds; resolves the kernel-assigned port
    const std::uint16_t port = sock->bound_port();

    std::thread feeder([port, cycles, seed, &mc, &truth0] {
      stream::SyntheticStreamConfig sc;
      sc.seed = seed;
      sc.latency_cycles = 0.1;
      sc.jitter_cycles = 0.25;
      models::Lorenz96 truth_model(mc);
      da::IdentityObs h(mc.dim);
      da::DiagonalR r(mc.dim, 1.0);
      stream::SyntheticStream s(sc, truth_model, h, r, truth0);
      rng::Rng wire_rng = rng::Rng(seed).substream(13);
      ingest::SocketWriter w;
      const auto dial = [&] {
        while (!w.connect("127.0.0.1", port, 50).ok())
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      };
      dial();
      std::uint64_t seq = 0;
      int kills = 0;
      std::deque<std::pair<int, std::vector<std::uint8_t>>> recent;
      for (int win = 0; win < cycles; ++win) {
        s.produce(win);
        std::vector<std::uint8_t> bytes;
        encode_window_frames(s, win, 0.10, wire_rng, seq, bytes);
        recent.emplace_back(win, bytes);
        while (recent.size() > 3) recent.pop_front();
        if (!w.send_all(bytes).ok()) {
          w.close();
          dial();
          (void)w.send_all(bytes);
        }
        if (kills < 3 && win > 0 && win % 4 == 0 && win + 1 < cycles) {
          // Crash mid-frame, come back, replay the tail like a real
          // restarted feeder (the consumer's ledger drops the duplicates).
          std::vector<std::uint8_t> torn;
          ingest::encode_heartbeat_frame(win, seq++, torn);
          torn.resize(torn.size() / 2);
          (void)w.send_all(torn);
          w.close();
          ++kills;
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          dial();
          for (const auto& [rw, rb] : recent)
            if (!w.send_all(rb).ok()) break;
        }
      }
      w.close();
    });

    ingest::IngestStreamConfig ic2;
    ic2.read_timeout_ms = 10;
    ic2.stale_after_ms = 500;
    ic2.produce_timeout_ms = 20000;
    ic2.backoff.base_ms = 5.0;
    ic2.backoff.cap_ms = 50.0;
    auto rc_live = rc;
    rc_live.schedule = stream::Schedule::Serial;
    rc_live.overlap_depth = 1;
    const auto live = run_ingest(std::move(sock), ic2, rc_live, mc, truth0);
    feeder.join();

    print_ingest_stats(live.stats);
    check(live.metrics.size() == static_cast<std::size_t>(cycles),
          "loopback consumer did not complete");
    check(live.stats.reconnects >= 3, "expected >= 3 reconnects after feeder crashes");
    check(live.stats.wire.frames_corrupt >= 1, "expected corrupt frames on the loopback");
    check(live.stats.duplicates_dropped >= 1, "expected replayed duplicates to be dropped");
    bool live_finite = true;
    for (const auto& m : live.metrics) live_finite = live_finite && std::isfinite(m.rmse_post);
    check(live_finite, "loopback run went non-finite");
    const auto free_run = run_scenario(stream::SyntheticStreamConfig{.seed = seed}, rc_live,
                                       truth0, mc, nullptr, /*use_filter=*/false);
    check(stream::mean_rmse_post(live.metrics, cycles / 2) < free_run.rmse,
          "loopback RMSE does not beat the free run");
  }
  if (!args.flag("keep")) std::remove(capture.c_str());

  if (failures == 0) {
    std::cout << "\nSOAK-INGEST PASS: decoder survived corruption, K=2 applied what K=1 "
                 "dropped, checkpoint/resume bitwise across thread counts, loopback survived "
                 "3 feeder crashes.\n";
    return 0;
  }
  std::cerr << "\nSOAK-INGEST: " << failures << " check(s) failed\n";
  return 1;
}

/// Turbulence-scale mode: the SQG model observed through a sparse strided
/// network and assimilated by the paper-tuned LETKF in the overlapped
/// schedule — the configuration whose traces exercise every instrumented
/// layer at once (runner cycles, LETKF phases, FFT plan execution, pool
/// tasks). Small by default so `--sqg --trace=out.json` stays a smoke test.
int run_sqg(const io::Args& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  const auto members = static_cast<std::size_t>(args.get_int("members", 8));
  const int cycles = static_cast<int>(args.get_int("cycles", 6));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const bool serial = args.get_str("schedule", "overlapped") == "serial";
  const double window_hours = 3.0;

  sqg::SqgConfig mc;
  mc.n = n;
  mc.dt = (n <= 32) ? 1800.0 : 900.0;
  mc.t_diab = 2.0 * 86400.0;
  mc.r_ekman = 200.0;
  mc.diff_efold = 3.0 * 3600.0;
  auto model = std::make_shared<sqg::SqgModel>(mc);
  const double kelvin = models::sqg_kelvin_scale(300.0, mc.f);

  rng::Rng rng(seed);
  std::vector<double> raw(model->dim());
  model->random_init(raw, rng, 2.0 / kelvin, 4);
  model->advance(raw, 1.0 * 86400.0);  // short spin-up: this is a demo
  std::vector<double> truth0(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) truth0[i] = raw[i] * kelvin;

  const auto h = da::SubsampleObs::strided_grid(n, n, 2, stride);
  da::DiagonalR r(h.obs_dim(), 1.0);

  da::LetkfConfig lc;
  lc.nx = n;
  lc.ny = n;
  lc.n_levels = 2;
  lc.domain_m = mc.L;
  lc.cutoff_m = 2.0e6;
  lc.rtps = 0.3;
  lc.rossby_radius_m = std::sqrt(mc.nsq) * mc.H / mc.f;
  lc.n_threads = threads;
  da::LETKF filter(lc);

  sqg::SqgForecast truth_raw(model, window_hours * 3600.0);
  sqg::SqgForecast fcst_raw(model, window_hours * 3600.0);
  models::ScaledForecast truth_model(truth_raw, kelvin);
  models::ScaledForecast fcst_model(fcst_raw, kelvin);

  stream::SyntheticStreamConfig sc;
  sc.seed = seed;
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);

  stream::RealtimeConfig rc;
  rc.n_members = members;
  rc.cycles = cycles;
  rc.window_hours = window_hours;
  rc.init_spread = 1.5;
  rc.seed = seed;
  rc.n_forecast_threads = threads;
  rc.schedule = serial ? stream::Schedule::Serial : stream::Schedule::Overlapped;

  std::cout << "Streaming DA on SQG " << n << "^2x2 (" << members << " members, LETKF on a 1/"
            << stride * stride << " network, " << cycles << " cycles, "
            << (serial ? "serial" : "overlapped") << " schedule)\n\n";

  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  const auto metrics = runner.run(truth0);

  io::Table t({"cycle", "prior RMSE [K]", "post RMSE [K]", "fcst [ms]", "analysis [ms]",
               "cycle [ms]", "pool idle"});
  for (const auto& m : metrics) {
    t.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), io::Table::num(m.forecast_ms, 1),
               io::Table::num(m.analysis_ms, 1), io::Table::num(m.cycle_ms, 1),
               m.pool_idle_frac < 0.0 ? std::string("-") : io::Table::num(m.pool_idle_frac, 2)});
  }
  t.print();

  const std::string csv = args.get_str("csv", "");
  if (!csv.empty()) {
    stream::write_stream_metrics_csv(csv, metrics);
    std::cout << "\nPer-cycle metrics written to " << csv << ".\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout
        << "realtime_da: streaming DA under degraded observation delivery (Lorenz-96 + ETKF)\n"
           "  --cycles=<int>    assimilation windows (default 40)\n"
           "  --members=<int>   ensemble size (default 20)\n"
           "  --seed=<int>      experiment seed (default 7)\n"
           "  --threads=<int>   member-forecast worker threads (0 = all, 1 = serial;\n"
           "                    bitwise identical for any value)\n"
           "  --latency=<f>     mean delivery latency in window units (default 0.3)\n"
           "  --jitter=<f>      uniform extra delay in [0, jitter) windows (default 0.5)\n"
           "  --drop=<f>        probability a window's batch is lost (default 0.2)\n"
           "  --slack=<f>       deadline grace beyond the window end (default 0.25)\n"
           "  --stale=<int>     max straggler age in cycles before discard (default 2)\n"
           "  --csv=<path>      per-cycle metrics of the degraded run (default realtime_da.csv)\n"
           "fault injection (0 disables; any > 0 wraps the stream in FaultyStream):\n"
           "  --nan=<f> --inf=<f> --outlier=<f>   per-value corruption probabilities\n"
           "  --stuck=<f>       per-batch probability a channel freezes for 3 windows\n"
           "  --dup=<f>         per-batch duplicate-transmission probability\n"
           "  --trunc=<f>       per-batch truncation probability\n"
           "quality control / degradation:\n"
           "  --qc              enable observation QC (finite + range + departure gates)\n"
           "  --bg-sigma=<f>    background-departure gate width (default 5)\n"
           "  --stale-inflation=<f>  age-dependent R inflation per cycle of staleness\n"
           "                    (> 0 replaces the staleness discard; default 0.5 with --qc)\n"
           "checkpointing:\n"
           "  --ckpt=<path>     snapshot file (with --ckpt-every=<n> cycles)\n"
           "  --resume          continue from --ckpt instead of starting fresh\n"
           "soak:\n"
           "  --soak            aggressive end-to-end fault soak in both schedules;\n"
           "                    exits non-zero if any cycle fails to complete\n"
           "live ingestion (CRC-framed wire protocol; see src/stream/ingest/):\n"
           "  --listen=<port>   consumer: accept a TCP feeder on 127.0.0.1:<port>\n"
           "  --tail=<path>     consumer: follow a feeder-appended file\n"
           "                    (--replay treats it as a finalized recording)\n"
           "  --depth=<K>       consumer: deep-overlap depth (K>1 admits stragglers up to\n"
           "                    stale+K-1 cycles old as down-weighted late increments)\n"
           "  --stale-ms=<int> --produce-timeout-ms=<int>  link-death / produce bounds\n"
           "  --check           consumer: exit non-zero unless every cycle completed,\n"
           "                    analyses stayed finite and RMSE beats the local free run\n"
           "  --feed=<host:port>  feeder: dial a consumer and stream the OSSE windows\n"
           "  --feed-file=<path>  feeder: append the framed windows to a file\n"
           "  --pace-ms=<int>     feeder: delay between windows\n"
           "  --wire-corrupt=<f>  feeder: corrupt-copy fraction (clean retransmit follows)\n"
           "  --kill-after=<n>    feeder: crash mid-frame after n windows (exit 3)\n"
           "  --progress=<path>   feeder: window high-water file; restarts resume from\n"
           "                      it minus a replay tail (consumer dedups)\n"
           "  --soak-ingest     deterministic wire/deep-overlap/crash soak (CI harness)\n"
           "telemetry (any mode):\n"
           "  --trace=<path>    record tracing spans, export Chrome trace-event JSON\n"
           "  --metrics-dump    print the metrics registry (Prometheus text) on exit\n"
           "  --metrics-json=<path>  write the metrics snapshot as JSON\n"
           "SQG mode (--sqg): turbulence-scale demo, SQG + LETKF, overlapped schedule\n"
           "  --sqg [--n=32] [--members=8] [--cycles=6] [--stride=4]\n"
           "        [--schedule=overlapped|serial] [--csv=<path>]\n";
    return 0;
  }

  const TelemetryCli tel(args);
  if (args.flag("sqg")) return tel.finish(run_sqg(args));

  models::Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;

  // Spin the truth onto the attractor.
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  if (args.flag("soak")) return tel.finish(run_soak(args, mc, truth0));
  if (args.flag("soak-ingest")) return tel.finish(run_soak_ingest(args, mc, truth0));
  if (!args.get_str("feed", "").empty() || !args.get_str("feed-file", "").empty())
    return tel.finish(run_feeder(args, mc, truth0));
  if (args.get_int("listen", 0) > 0 || !args.get_str("tail", "").empty())
    return tel.finish(run_live_consumer(args, mc, truth0));

  stream::RealtimeConfig rc;
  rc.cycles = static_cast<int>(args.get_int("cycles", 40));
  rc.n_members = static_cast<std::size_t>(args.get_int("members", 20));
  rc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  rc.n_forecast_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  rc.window_hours = 6.0;
  rc.deadline_slack_cycles = args.get_double("slack", 0.25);
  rc.max_stale_cycles = static_cast<int>(args.get_int("stale", 2));

  stream::FaultConfig fc;
  fc.seed = rc.seed + 9001;
  fc.nan_prob = args.get_double("nan", 0.0);
  fc.inf_prob = args.get_double("inf", 0.0);
  fc.outlier_prob = args.get_double("outlier", 0.0);
  fc.stuck_prob = args.get_double("stuck", 0.0);
  fc.duplicate_prob = args.get_double("dup", 0.0);
  fc.truncate_prob = args.get_double("trunc", 0.0);
  const bool inject = fc.nan_prob + fc.inf_prob + fc.outlier_prob + fc.stuck_prob +
                          fc.duplicate_prob + fc.truncate_prob >
                      0.0;

  if (args.flag("qc") || inject) {
    rc.qc.enabled = true;
    rc.qc.clim_min = -100.0;
    rc.qc.clim_max = 100.0;
    rc.qc.bg_sigma = args.get_double("bg-sigma", 5.0);
    rc.qc.stale_r_inflation = args.get_double("stale-inflation", 0.5);
  }
  rc.checkpoint_path = args.get_str("ckpt", "");
  rc.checkpoint_every = static_cast<int>(args.get_int("ckpt-every", 10));
  const std::string resume_from = args.flag("resume") ? rc.checkpoint_path : "";

  stream::SyntheticStreamConfig degraded;
  degraded.seed = rc.seed;
  degraded.latency_cycles = args.get_double("latency", 0.3);
  degraded.jitter_cycles = args.get_double("jitter", 0.5);
  degraded.dropout_prob = args.get_double("drop", 0.2);

  stream::SyntheticStreamConfig instant;
  instant.seed = rc.seed;

  std::cout << "Streaming DA on Lorenz-96 (" << mc.dim << " vars, " << rc.cycles << " cycles, "
            << rc.n_members << " members, R = I): latency=" << degraded.latency_cycles
            << " jitter=" << degraded.jitter_cycles << " drop=" << degraded.dropout_prob
            << " slack=" << rc.deadline_slack_cycles
            << (inject ? " + fault injection" : "") << (rc.qc.enabled ? " + QC" : "") << "\n\n";

  const stream::FaultConfig* fcp = inject ? &fc : nullptr;
  // Only the headline degraded serial run checkpoints/resumes; the
  // comparison runs must not touch the snapshot file.
  stream::RealtimeConfig ic = rc;
  ic.checkpoint_path.clear();
  const auto ideal = run_scenario(instant, ic, truth0, mc);
  auto serial = run_scenario(degraded, rc, truth0, mc, fcp, true, resume_from);
  stream::RealtimeConfig oc = ic;
  oc.schedule = stream::Schedule::Overlapped;
  const auto overlapped = run_scenario(degraded, oc, truth0, mc, fcp);

  io::Table t({"scenario", "late-half RMSE", "deadline misses", "batches assimilated"});
  t.add_row({"instant delivery, serial", io::Table::num(ideal.rmse, 3),
             std::to_string(ideal.misses), std::to_string(ideal.assimilated)});
  t.add_row({inject ? "degraded + faults, serial" : "degraded, serial",
             io::Table::num(serial.rmse, 3), std::to_string(serial.misses),
             std::to_string(serial.assimilated)});
  t.add_row({inject ? "degraded + faults, overlapped" : "degraded, overlapped",
             io::Table::num(overlapped.rmse, 3), std::to_string(overlapped.misses),
             std::to_string(overlapped.assimilated)});
  t.print();

  if (inject) {
    std::cout << "\nInjected (serial run): NaN=" << serial.faults.nan_values
              << " Inf=" << serial.faults.inf_values
              << " outliers=" << serial.faults.outlier_values
              << " stuck=" << serial.faults.stuck_values
              << " duplicated=" << serial.faults.batches_duplicated
              << " truncated=" << serial.faults.batches_truncated
              << "; QC rejected " << serial.obs_rejected << " values, refused "
              << serial.batches_rejected << " batches, " << serial.degraded_cycles
              << " degraded cycle(s)\n";
  }

  std::cout << "\nPer-cycle view of the degraded serial run (every 5th cycle):\n";
  io::Table c({"cycle", "prior RMSE", "post RMSE", "batches", "age", "miss"});
  for (const auto& m : serial.metrics) {
    if (m.cycle % 5 != 0 && m.cycle != rc.cycles - 1) continue;
    c.add_row({std::to_string(m.cycle), io::Table::num(m.rmse_prior, 3),
               io::Table::num(m.rmse_post, 3), std::to_string(m.batches_assimilated),
               std::to_string(m.max_batch_age), m.deadline_miss ? "yes" : ""});
  }
  c.print();

  const std::string csv = args.get_str("csv", "realtime_da.csv");
  stream::write_stream_metrics_csv(csv, serial.metrics);
  std::cout << "\nPer-cycle metrics written to " << csv
            << ".\nExpected: instant delivery tracks near the obs-error floor; lost and late\n"
               "batches cost accuracy in proportion; the overlapped pipeline pays an extra\n"
               "one-window increment lag in exchange for hiding analysis + delivery latency\n"
               "behind the next forecast (see bench_stream_realtime for the throughput side).\n";
  return tel.finish(0);
}
