// Real-time streaming subsystem tests:
//  - the hard invariant that the refactored OsseRunner (and, transitively,
//    the serial RealtimeRunner on a zero-latency stream) reproduces the
//    historical in-line OSSE loop bitwise;
//  - deterministic degraded-delivery scenarios (latency, jitter, dropout,
//    catch-up, staleness) with bitwise repeatability across thread counts
//    and schedules;
//  - the sparse strided-grid observation network.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "da/ensf.hpp"
#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "da/osse.hpp"
#include "models/lorenz96.hpp"
#include "models/model_error.hpp"
#include "rng/rng.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

namespace turbda {
namespace {

using models::Lorenz96;
using models::Lorenz96Config;

// --------------------------------------------------------------- fixture ---

constexpr std::size_t kDim = 40;

std::vector<double> spun_up_truth(std::uint64_t bump = 0) {
  Lorenz96Config mc;
  mc.dim = kDim;
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01 + 1e-6 * static_cast<double>(bump);
  Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);
  return truth0;
}

struct RunResult {
  std::vector<stream::StreamCycleMetrics> metrics;
  da::Ensemble ens{2, kDim};
};

/// Runs RealtimeRunner on a Lorenz-96 truth with the given delivery and
/// schedule knobs. `use_filter == false` gives the free run.
RunResult run_realtime(stream::SyntheticStreamConfig sc, stream::RealtimeConfig rc,
                       bool use_filter = true, bool model_error = false) {
  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});
  models::ModelErrorProcess me(models::ModelErrorConfig{.reference_scale = 1.0});

  const auto truth0 = spun_up_truth();
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  rc.inject_model_error = model_error;
  stream::RealtimeRunner runner(rc, s, fcst_model, use_filter ? &filter : nullptr,
                                model_error ? &me : nullptr);
  RunResult out;
  out.metrics = runner.run(truth0);
  out.ens = runner.ensemble();
  return out;
}

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs";
  }
}

void expect_accuracy_metrics_bitwise_equal(const std::vector<stream::StreamCycleMetrics>& a,
                                           const std::vector<stream::StreamCycleMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].rmse_prior, b[k].rmse_prior) << "cycle " << k;
    EXPECT_EQ(a[k].rmse_post, b[k].rmse_post) << "cycle " << k;
    EXPECT_EQ(a[k].spread_prior, b[k].spread_prior) << "cycle " << k;
    EXPECT_EQ(a[k].spread_post, b[k].spread_post) << "cycle " << k;
    EXPECT_EQ(a[k].batches_assimilated, b[k].batches_assimilated) << "cycle " << k;
    EXPECT_EQ(a[k].deadline_miss, b[k].deadline_miss) << "cycle " << k;
  }
}

// ------------------------------------- OSSE bitwise-reproduction invariant ---

/// Verbatim replica of the historical in-line OsseRunner::run loop (the
/// pre-streaming implementation). The refactored OsseRunner must reproduce
/// it bitwise forever; a drift here means the "one cycling code path"
/// refactor changed the paper's offline numbers.
std::vector<da::CycleMetrics> legacy_osse_run(const da::OsseConfig& cfg,
                                              models::ForecastModel& truth_model,
                                              models::ForecastModel& forecast_model,
                                              const da::ObservationOperator& h,
                                              const da::DiagonalR& r, da::Filter* filter,
                                              const models::ModelErrorProcess* model_error,
                                              std::span<const double> truth0,
                                              da::Ensemble* final_ens,
                                              std::vector<double>* final_truth) {
  const std::size_t d = truth_model.dim();
  rng::Rng root(cfg.seed);
  rng::Rng rng_init = root.substream(0);
  rng::Rng rng_obs = root.substream(1);
  rng::Rng rng_modelerr = root.substream(2);

  std::vector<double> truth(truth0.begin(), truth0.end());
  da::Ensemble ens(cfg.n_members, d);
  ens.init_perturbed(truth0, cfg.init_spread, rng_init);

  std::vector<double> y(h.obs_dim());
  std::vector<da::CycleMetrics> metrics;
  for (int k = 0; k < cfg.cycles; ++k) {
    truth_model.forecast(truth);
    std::vector<double> shared_err;
    if (cfg.inject_model_error && cfg.model_error_shared) {
      rng::Rng r_me = rng_modelerr.substream(static_cast<std::uint64_t>(k));
      shared_err = model_error->sample(d, r_me);
    }
    for (std::size_t m = 0; m < cfg.n_members; ++m) {
      forecast_model.forecast(ens.member(m));
      if (cfg.inject_model_error) {
        if (cfg.model_error_shared) {
          auto row = ens.member(m);
          for (std::size_t i = 0; i < d; ++i) row[i] += shared_err[i];
        } else {
          rng::Rng r_me = rng_modelerr.substream(
              static_cast<std::uint64_t>(k) * cfg.n_members + m + 1000000);
          model_error->apply(ens.member(m), r_me);
        }
      }
    }
    da::CycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg.window_hours;
    cm.rmse_prior = da::rmse_vs_truth(ens, truth);
    cm.spread_prior = ens.mean_spread();
    if (filter != nullptr) {
      h.apply(truth, y);
      rng::Rng r_obs = rng_obs.substream(static_cast<std::uint64_t>(k));
      r.perturb(y, r_obs);
      filter->analyze(ens, y, h, r);
    }
    cm.rmse_post = da::rmse_vs_truth(ens, truth);
    cm.spread_post = ens.mean_spread();
    metrics.push_back(cm);
  }
  if (final_ens) *final_ens = ens;
  if (final_truth) *final_truth = truth;
  return metrics;
}

void expect_osse_matches_legacy(bool use_filter, bool model_error, bool shared) {
  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  models::ModelErrorProcess me(models::ModelErrorConfig{.reference_scale = 1.0});

  da::OsseConfig cfg;
  cfg.cycles = 8;
  cfg.n_members = 8;
  cfg.seed = 4242;
  cfg.inject_model_error = model_error;
  cfg.model_error_shared = shared;
  cfg.n_forecast_threads = 1;

  const auto truth0 = spun_up_truth();

  Lorenz96 truth_a(mc), fcst_a(mc);
  da::ETKF filter_a(da::EtkfConfig{.rtps = 0.4});
  da::Ensemble legacy_ens(cfg.n_members, mc.dim);
  std::vector<double> legacy_truth;
  const auto legacy =
      legacy_osse_run(cfg, truth_a, fcst_a, h, r, use_filter ? &filter_a : nullptr,
                      model_error ? &me : nullptr, truth0, &legacy_ens, &legacy_truth);

  Lorenz96 truth_b(mc), fcst_b(mc);
  da::ETKF filter_b(da::EtkfConfig{.rtps = 0.4});
  da::OsseRunner runner(cfg, truth_b, fcst_b, h, r, use_filter ? &filter_b : nullptr,
                        model_error ? &me : nullptr);
  const auto got = runner.run(truth0);

  ASSERT_EQ(got.size(), legacy.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].rmse_prior, legacy[k].rmse_prior) << "cycle " << k;
    EXPECT_EQ(got[k].rmse_post, legacy[k].rmse_post) << "cycle " << k;
    EXPECT_EQ(got[k].spread_prior, legacy[k].spread_prior) << "cycle " << k;
    EXPECT_EQ(got[k].spread_post, legacy[k].spread_post) << "cycle " << k;
    EXPECT_EQ(got[k].time_hours, legacy[k].time_hours) << "cycle " << k;
  }
  expect_bitwise_equal(runner.ensemble(), legacy_ens);
  ASSERT_EQ(runner.final_truth().size(), legacy_truth.size());
  EXPECT_EQ(0, std::memcmp(runner.final_truth().data(), legacy_truth.data(),
                           legacy_truth.size() * sizeof(double)));
}

TEST(StreamOsse, ZeroLatencyReproducesLegacyLoopBitwise) {
  expect_osse_matches_legacy(/*use_filter=*/true, /*model_error=*/false, /*shared=*/true);
}

TEST(StreamOsse, ZeroLatencyReproducesLegacyLoopWithSharedModelError) {
  expect_osse_matches_legacy(true, true, true);
}

TEST(StreamOsse, ZeroLatencyReproducesLegacyLoopWithPerMemberModelError) {
  expect_osse_matches_legacy(true, true, false);
}

TEST(StreamOsse, FreeRunReproducesLegacyLoopBitwise) {
  expect_osse_matches_legacy(/*use_filter=*/false, false, true);
}

// ------------------------------------------------ delivery-schedule tests ---

stream::RealtimeConfig base_config(int cycles = 12) {
  stream::RealtimeConfig rc;
  rc.n_members = 8;
  rc.cycles = cycles;
  rc.window_hours = 1.0;
  rc.init_spread = 1.0;
  rc.seed = 777;
  return rc;
}

TEST(Stream, SyntheticDeliveryScheduleIsSeedDeterministic) {
  Lorenz96Config mc;
  mc.dim = kDim;
  Lorenz96 truth_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  const auto truth0 = spun_up_truth();

  stream::SyntheticStreamConfig sc;
  sc.seed = 99;
  sc.latency_cycles = 0.2;
  sc.jitter_cycles = 1.5;
  sc.dropout_prob = 0.3;

  auto arrivals = [&](const stream::SyntheticStreamConfig& c) {
    Lorenz96 tm(mc);
    stream::SyntheticStream s(c, tm, h, r, truth0);
    for (int k = 0; k < 20; ++k) s.produce(k);
    std::vector<stream::ObsBatch> got;
    s.collect(1e9, got);
    return got;
  };
  const auto a = arrivals(sc);
  const auto b = arrivals(sc);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(a.size(), 20u);  // some dropouts at p = 0.3
  EXPECT_GT(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].arrival_cycles, b[i].arrival_cycles);
    EXPECT_EQ(0, std::memcmp(a[i].y.data(), b[i].y.data(), a[i].y.size() * sizeof(double)));
  }

  // The delivery knobs must not shift the observation values themselves.
  stream::SyntheticStreamConfig in_order = sc;
  in_order.latency_cycles = 0.0;
  in_order.jitter_cycles = 0.0;
  in_order.dropout_prob = 0.0;
  const auto c = arrivals(in_order);
  ASSERT_EQ(c.size(), 20u);
  for (const auto& batch : a) {
    const auto& ref = c[static_cast<std::size_t>(batch.cycle)];
    EXPECT_EQ(0,
              std::memcmp(batch.y.data(), ref.y.data(), batch.y.size() * sizeof(double)));
  }
}

TEST(Stream, FullDropoutFallsBackToForecastOnly) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 777;
  sc.dropout_prob = 1.0;
  auto degraded = run_realtime(sc, base_config());

  stream::SyntheticStreamConfig clean;
  clean.seed = 777;
  auto free_run = run_realtime(clean, base_config(), /*use_filter=*/false);

  for (const auto& m : degraded.metrics) {
    EXPECT_EQ(m.batches_assimilated, 0);
    EXPECT_TRUE(m.deadline_miss);
    EXPECT_EQ(m.rmse_prior, m.rmse_post);
  }
  // With every batch lost the "assimilating" run IS the free run, bitwise.
  expect_bitwise_equal(degraded.ens, free_run.ens);
  EXPECT_EQ(stream::count_deadline_misses(degraded.metrics), base_config().cycles);
}

TEST(Stream, LateBatchesCatchUpAtTheNextCycle) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 777;
  sc.latency_cycles = 0.5;  // misses the slack-0 deadline by half a window

  stream::RealtimeConfig rc = base_config();
  rc.deadline_slack_cycles = 0.0;
  auto res = run_realtime(sc, rc);

  // Every cycle misses its own deadline, but each straggler is assimilated
  // one cycle later (age 1); the last cycle's own batch never lands.
  int assimilated = 0;
  for (const auto& m : res.metrics) {
    EXPECT_TRUE(m.deadline_miss) << "cycle " << m.cycle;
    if (m.cycle > 0) {
      EXPECT_EQ(m.batches_assimilated, 1) << "cycle " << m.cycle;
      EXPECT_EQ(m.max_batch_age, 1) << "cycle " << m.cycle;
    }
    assimilated += m.batches_assimilated;
  }
  EXPECT_EQ(assimilated, rc.cycles - 1);

  // With slack covering the latency the same stream is fully on time.
  stream::RealtimeConfig relaxed = base_config();
  relaxed.deadline_slack_cycles = 0.5;
  auto on_time = run_realtime(sc, relaxed);
  EXPECT_EQ(stream::count_deadline_misses(on_time.metrics), 0);
  for (const auto& m : on_time.metrics) EXPECT_EQ(m.batches_assimilated, 1);

  // Catch-up disabled: stragglers are discarded, nothing is ever analyzed.
  stream::RealtimeConfig no_catch_up = base_config();
  no_catch_up.catch_up = false;
  auto dropped = run_realtime(sc, no_catch_up);
  for (const auto& m : dropped.metrics) EXPECT_EQ(m.batches_assimilated, 0);
}

TEST(Stream, StaleBatchesAreDiscarded) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 777;
  sc.latency_cycles = 3.2;  // arrives > 3 cycles after validity

  stream::RealtimeConfig rc = base_config();
  rc.max_stale_cycles = 2;
  auto res = run_realtime(sc, rc);
  int discarded = 0;
  for (const auto& m : res.metrics) {
    EXPECT_EQ(m.batches_assimilated, 0);
    discarded += m.batches_discarded;
  }
  EXPECT_EQ(discarded, rc.cycles - 4);  // every batch that arrived in-run was too stale

  rc.max_stale_cycles = 5;
  auto caught = run_realtime(sc, rc);
  int assimilated = 0;
  for (const auto& m : caught.metrics) assimilated += m.batches_assimilated;
  EXPECT_GT(assimilated, 0);
  for (const auto& m : caught.metrics) {
    if (m.batches_assimilated > 0) {
      EXPECT_EQ(m.max_batch_age, 4);
    }
  }
}

TEST(Stream, OutOfOrderArrivalsAssimilateInWindowOrder) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 31;
  sc.latency_cycles = 0.1;
  sc.jitter_cycles = 2.5;  // inverts arrival order between neighboring windows

  stream::RealtimeConfig rc = base_config(16);
  rc.max_stale_cycles = 4;
  auto res = run_realtime(sc, rc);

  int total = 0, misses = 0, multi_batch_cycles = 0;
  for (const auto& m : res.metrics) {
    total += m.batches_assimilated;
    misses += m.deadline_miss ? 1 : 0;
    multi_batch_cycles += m.batches_assimilated > 1 ? 1 : 0;
  }
  EXPECT_GT(misses, 0);             // jitter makes some batches late
  EXPECT_GT(multi_batch_cycles, 0); // ...which then pile up at a later cycle
  EXPECT_GT(total, 0);
  EXPECT_LE(total, rc.cycles);      // each batch applied at most once
}

TEST(Stream, DegradedDeliveryIsBitwiseRepeatableAcrossThreadCountsAndRuns) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 2024;
  sc.latency_cycles = 0.3;
  sc.jitter_cycles = 1.0;
  sc.dropout_prob = 0.25;

  for (auto schedule : {stream::Schedule::Serial, stream::Schedule::Overlapped}) {
    stream::RealtimeConfig rc = base_config();
    rc.schedule = schedule;
    rc.deadline_slack_cycles = 0.25;
    rc.n_forecast_threads = 1;
    auto ref = run_realtime(sc, rc, /*use_filter=*/true, /*model_error=*/true);

    for (std::size_t nt :
         {std::size_t{2}, std::max<std::size_t>(1, std::thread::hardware_concurrency())}) {
      rc.n_forecast_threads = nt;
      auto got = run_realtime(sc, rc, true, true);
      expect_accuracy_metrics_bitwise_equal(ref.metrics, got.metrics);
      expect_bitwise_equal(ref.ens, got.ens);
    }
  }
}

TEST(Stream, OverlappedFreeRunMatchesSerialBitwise) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 555;
  stream::RealtimeConfig rc = base_config();
  rc.schedule = stream::Schedule::Serial;
  auto serial = run_realtime(sc, rc, /*use_filter=*/false, /*model_error=*/true);
  rc.schedule = stream::Schedule::Overlapped;
  auto overlapped = run_realtime(sc, rc, false, true);
  // Without a filter there is no lagged increment: the pipelined schedule
  // must produce the identical trajectory.
  expect_accuracy_metrics_bitwise_equal(serial.metrics, overlapped.metrics);
  expect_bitwise_equal(serial.ens, overlapped.ens);
}

TEST(Stream, OverlappedScheduleStillAssimilates) {
  // 20 members so the global ETKF transform is not rank-starved on dim 40.
  stream::SyntheticStreamConfig sc;
  sc.seed = 888;
  stream::RealtimeConfig rc = base_config(30);
  rc.n_members = 20;
  rc.schedule = stream::Schedule::Overlapped;
  auto overlapped = run_realtime(sc, rc);
  auto free_run = run_realtime(sc, rc, /*use_filter=*/false);

  // The lagged pipeline pays an accuracy price vs the serial schedule but
  // must still track the truth far better than no assimilation at all.
  const double da_err = stream::mean_rmse_post(overlapped.metrics, 15);
  const double free_err = stream::mean_rmse_post(free_run.metrics, 15);
  EXPECT_LT(da_err, 0.6 * free_err);

  rc.schedule = stream::Schedule::Serial;
  auto serial = run_realtime(sc, rc);
  const double serial_err = stream::mean_rmse_post(serial.metrics, 15);
  // The one-cycle lag cannot beat the synchronous analysis by construction;
  // on a chaotic system the stale increment costs a few x in steady-state
  // RMSE (measured ~3.8x here) — bound the degradation's order of magnitude.
  EXPECT_GT(da_err, serial_err);
  EXPECT_LT(da_err, 5.0 * serial_err);
}

TEST(Stream, DropoutDegradesAccuracy) {
  stream::RealtimeConfig rc = base_config(24);
  stream::SyntheticStreamConfig clean;
  clean.seed = 321;
  stream::SyntheticStreamConfig lossy = clean;
  lossy.dropout_prob = 0.75;

  const double full = stream::mean_rmse_post(run_realtime(clean, rc).metrics, 12);
  const double degraded = stream::mean_rmse_post(run_realtime(lossy, rc).metrics, 12);
  EXPECT_GT(degraded, full);
}

TEST(Stream, WallClockEmulationDoesNotChangeResults) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 777;
  sc.latency_cycles = 0.4;
  stream::RealtimeConfig rc = base_config(6);
  rc.deadline_slack_cycles = 0.5;
  auto ref = run_realtime(sc, rc);
  rc.wall_ms_per_cycle = 20.0;  // sleeps ~8 ms per cycle before analysis
  for (auto schedule : {stream::Schedule::Serial, stream::Schedule::Overlapped}) {
    rc.schedule = schedule;
    auto got = run_realtime(sc, rc);
    if (schedule == stream::Schedule::Serial) {
      expect_accuracy_metrics_bitwise_equal(ref.metrics, got.metrics);
      expect_bitwise_equal(ref.ens, got.ens);
    } else {
      // Overlapped differs from serial by the lagged increment, but must be
      // unaffected by the emulated delay itself.
      rc.wall_ms_per_cycle = 0.0;
      auto no_delay = run_realtime(sc, rc);
      rc.wall_ms_per_cycle = 20.0;
      expect_accuracy_metrics_bitwise_equal(no_delay.metrics, got.metrics);
      expect_bitwise_equal(no_delay.ens, got.ens);
    }
  }
}

// ------------------------------------------------- sparse observing network ---

TEST(Stream, StridedGridObservationsCarryLocations) {
  const std::size_t nx = 8, ny = 6, nlev = 2, stride = 2;
  const auto h = da::SubsampleObs::strided_grid(nx, ny, nlev, stride);
  EXPECT_EQ(h.state_dim(), nx * ny * nlev);
  EXPECT_EQ(h.obs_dim(), (nx / stride) * (ny / stride) * nlev);

  const auto locs = h.locations();
  ASSERT_TRUE(locs.has_value());
  ASSERT_EQ(locs->size(), h.obs_dim());
  for (std::size_t i = 0; i < locs->size(); ++i) {
    const auto& loc = (*locs)[i];
    EXPECT_EQ(loc.ix % static_cast<int>(stride), 0);
    EXPECT_EQ(loc.iy % static_cast<int>(stride), 0);
    // The index the operator reads must be the grid point it claims to be.
    const std::size_t expect_idx =
        (static_cast<std::size_t>(loc.level) * ny + static_cast<std::size_t>(loc.iy)) * nx +
        static_cast<std::size_t>(loc.ix);
    EXPECT_EQ(h.indices()[i], expect_idx);
  }

  // apply() picks exactly those grid points.
  std::vector<double> x(h.state_dim());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  std::vector<double> y(h.obs_dim());
  h.apply(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], static_cast<double>(h.indices()[i]));
}

TEST(Stream, LetkfAssimilatesSparseStridedNetwork) {
  const std::size_t nx = 8, ny = 8, nlev = 2;
  const std::size_t dim = nx * ny * nlev;
  const auto h = da::SubsampleObs::strided_grid(nx, ny, nlev, 2);
  da::DiagonalR r(h.obs_dim(), 0.01);  // accurate but sparse network

  std::vector<double> truth(dim);
  rng::Rng rng(55);
  rng.fill_gaussian(truth, 0.0, 2.0);
  da::Ensemble ens(10, dim);
  ens.init_perturbed(truth, 1.5, rng);

  std::vector<double> y(h.obs_dim());
  h.apply(truth, y);
  rng::Rng r_obs(56);
  r.perturb(y, r_obs);

  da::LetkfConfig lc;
  lc.nx = nx;
  lc.ny = ny;
  lc.n_levels = nlev;
  lc.domain_m = 8.0e6;
  lc.cutoff_m = 3.0e6;
  da::LETKF letkf(lc);

  // RMSE of the ensemble mean restricted to the observed grid points — this
  // is what the sparse network can constrain directly. Only works if the
  // localization actually matched obs locations to state columns.
  auto observed_rmse = [&](const da::Ensemble& e) {
    const auto mu = e.mean();
    double s = 0.0;
    for (const auto idx : h.indices()) {
      const double dv = mu[idx] - truth[idx];
      s += dv * dv;
    }
    return std::sqrt(s / static_cast<double>(h.indices().size()));
  };

  const double before_obs = observed_rmse(ens);
  const double before_all = da::rmse_vs_truth(ens, truth);
  letkf.analyze(ens, y, h, r);
  const double after_obs = observed_rmse(ens);
  const double after_all = da::rmse_vs_truth(ens, truth);

  EXPECT_LT(after_obs, 0.5 * before_obs);  // observed points pulled hard to truth
  // Unobserved neighbors pick up sampling noise through the localized
  // spurious correlations of a 10-member ensemble; bound it, don't forbid it.
  EXPECT_LT(after_all, 1.5 * before_all);
}

// --------------------------------------------------- metrics CSV schema ---

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST(Stream, MetricsCsvSchemaAndValuesRoundTrip) {
  stream::SyntheticStreamConfig sc;
  sc.seed = 777;
  sc.latency_cycles = 0.4;
  stream::RealtimeConfig rc = base_config(5);
  rc.deadline_slack_cycles = 0.5;
  const auto res = run_realtime(sc, rc);
  ASSERT_EQ(res.metrics.size(), 5u);

  const std::string path = "test_stream_metrics_roundtrip.csv";
  stream::write_stream_metrics_csv(path, res.metrics);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;

  // Line 1: schema-version comment, so downstream parsers can dispatch.
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "# stream_metrics_schema=" + std::to_string(stream::kStreamMetricsSchemaVersion));

  // Line 2: header must match the declared column order exactly.
  const auto columns = stream::stream_metrics_columns();
  ASSERT_TRUE(std::getline(in, line));
  const auto header = split_csv_line(line);
  ASSERT_EQ(header.size(), columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i)
    EXPECT_EQ(header[i], columns[i]) << "column " << i;

  // Data rows: one per cycle, every cell reparsing to the source value.
  std::size_t n_rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_LT(n_rows, res.metrics.size());
    const auto cells = split_csv_line(line);
    const auto want = stream::stream_metrics_row(res.metrics[n_rows]);
    ASSERT_EQ(cells.size(), want.size()) << "row " << n_rows;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double got = std::stod(cells[i]);
      // The writer prints 12 significant digits — compare to that precision.
      EXPECT_NEAR(got, want[i], 1e-9 * std::max(1.0, std::abs(want[i])))
          << "row " << n_rows << " column " << columns[i];
    }
    ++n_rows;
  }
  EXPECT_EQ(n_rows, res.metrics.size());
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace turbda
