#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/sim_comm.hpp"
#include "parallel/thread_pool.hpp"

namespace turbda::parallel {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] {});
  f.get();
  int x = 0;
  pool.submit([&x] { x = 42; }).get();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPool, ManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, StatsAccumulateBusyTimeAndTaskCount) {
  ThreadPool pool(2);
  const auto before = pool.stats();
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }));
  for (auto& f : futs) f.get();
  // The worker updates its stats *after* fulfilling the task's future, so
  // give the last increment a moment to land before asserting.
  auto after = pool.stats();
  for (int spin = 0; spin < 200 && after.tasks_executed - before.tasks_executed < 8u; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    after = pool.stats();
  }
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, 8u);
  // 8 x 2ms of sleeping must register as busy time (allow scheduler slack).
  EXPECT_GE(after.busy_ns - before.busy_ns, 8'000'000u);
}

TEST(SimComm, PointToPoint) {
  run_world(2, [](SimComm& c) {
    std::vector<double> buf{0.0, 0.0, 0.0};
    if (c.rank() == 0) {
      const std::vector<double> msg{1.0, 2.0, 3.0};
      c.send(msg, 1, 7);
    } else {
      c.recv(buf, 0, 7);
      EXPECT_EQ(buf, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(SimComm, TagMatchingOutOfOrder) {
  run_world(2, [](SimComm& c) {
    if (c.rank() == 0) {
      const std::vector<double> a{1.0}, b{2.0};
      c.send(a, 1, /*tag=*/1);
      c.send(b, 1, /*tag=*/2);
    } else {
      std::vector<double> buf(1);
      c.recv(buf, 0, /*tag=*/2);  // request the second message first
      EXPECT_EQ(buf[0], 2.0);
      c.recv(buf, 0, /*tag=*/1);
      EXPECT_EQ(buf[0], 1.0);
    }
  });
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, AllreduceSumMatchesSerial) {
  const int n = GetParam();
  const std::size_t len = 37;  // deliberately not divisible by world size
  run_world(n, [&](SimComm& c) {
    std::vector<double> v(len);
    for (std::size_t i = 0; i < len; ++i) v[i] = static_cast<double>(c.rank() + 1) * (i + 1);
    c.allreduce_sum(v);
    const double ranksum = n * (n + 1) / 2.0;
    for (std::size_t i = 0; i < len; ++i) EXPECT_DOUBLE_EQ(v[i], ranksum * (i + 1));
  });
}

TEST_P(CollectivesP, BroadcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    run_world(n, [&](SimComm& c) {
      std::vector<double> v(5, c.rank() == root ? 3.14 : 0.0);
      c.broadcast(v, root);
      for (double x : v) EXPECT_DOUBLE_EQ(x, 3.14);
    });
  }
}

TEST_P(CollectivesP, ReduceSumToRoot) {
  const int n = GetParam();
  run_world(n, [&](SimComm& c) {
    std::vector<double> v(4, 1.0);
    c.reduce_sum(v, 0);
    if (c.rank() == 0) {
      for (double x : v) EXPECT_DOUBLE_EQ(x, static_cast<double>(n));
    }
  });
}

TEST_P(CollectivesP, AllgatherOrdersBlocksByRank) {
  const int n = GetParam();
  run_world(n, [&](SimComm& c) {
    const std::vector<double> mine{static_cast<double>(c.rank()), static_cast<double>(c.rank()) + 0.5};
    std::vector<double> all(2 * static_cast<std::size_t>(n));
    c.allgather(mine, all);
    for (int r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(all[2 * static_cast<std::size_t>(r)], r);
      EXPECT_DOUBLE_EQ(all[2 * static_cast<std::size_t>(r) + 1], r + 0.5);
    }
  });
}

TEST_P(CollectivesP, ReduceScatterSumsMyBlock) {
  const int n = GetParam();
  const std::size_t blk = 3;
  run_world(n, [&](SimComm& c) {
    std::vector<double> full(blk * static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < full.size(); ++i)
      full[i] = static_cast<double>(i) + 100.0 * c.rank();
    std::vector<double> mine(blk);
    c.reduce_scatter_sum(full, mine);
    const double rankoffsets = 100.0 * (n * (n - 1) / 2.0);
    for (std::size_t i = 0; i < blk; ++i) {
      const std::size_t gi = blk * static_cast<std::size_t>(c.rank()) + i;
      EXPECT_DOUBLE_EQ(mine[i], static_cast<double>(n) * gi + rankoffsets);
    }
  });
}

TEST_P(CollectivesP, BarrierSynchronizes) {
  const int n = GetParam();
  std::atomic<int> before{0};
  run_world(n, [&](SimComm& c) {
    before.fetch_add(1);
    c.barrier();
    EXPECT_EQ(before.load(), n);  // nobody passes until everyone arrived
    c.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesP, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(SimComm, StatsCountTraffic) {
  auto stats = run_world(2, [](SimComm& c) {
    std::vector<double> v(16, 1.0);
    c.allreduce_sum(v);
  });
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.messages_sent, 0u);
}

TEST(SimComm, RingAllreduceVolumeMatchesTheory) {
  // Ring all-reduce moves 2*(n-1)/n of the buffer per rank.
  const int n = 4;
  const std::size_t len = 1024;
  auto stats = run_world(n, [&](SimComm& c) {
    std::vector<double> v(len, 1.0);
    c.allreduce_sum(v);
  });
  const double expected = 2.0 * (n - 1) * static_cast<double>(len) * sizeof(double);
  EXPECT_NEAR(static_cast<double>(stats.bytes_sent), expected, expected * 0.05);
}

TEST(SimComm, ExceptionInRankPropagates) {
  EXPECT_THROW(run_world(2,
                         [](SimComm& c) {
                           if (c.rank() == 1) throw Error("rank failure");
                           // rank 0 exits normally
                         }),
               Error);
}

}  // namespace
}  // namespace turbda::parallel
