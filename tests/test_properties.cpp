// Cross-module property sweeps (TEST_P): invariants that must hold across
// grid sizes, ensemble sizes and filter configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "da/ensf.hpp"
#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "models/lorenz96.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"

namespace turbda {
namespace {

using turbda::rng::Rng;

// --- SQG invariants across grid sizes ---------------------------------------

class SqgGridP : public ::testing::TestWithParam<int> {};

TEST_P(SqgGridP, SpectralRoundTripAndRealness) {
  sqg::SqgConfig cfg;
  cfg.n = static_cast<std::size_t>(GetParam());
  sqg::SqgModel model(cfg);
  Rng rng(31 + cfg.n);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, static_cast<int>(cfg.n) / 4);
  std::vector<sqg::Cplx> spec(model.spec_dim());
  model.to_spectral(theta, spec);
  std::vector<double> back(model.dim());
  model.to_grid(spec, back);
  for (std::size_t i = 0; i < theta.size(); ++i) ASSERT_NEAR(back[i], theta[i], 1e-8);
}

TEST_P(SqgGridP, EadyGrowthRateIsGridIndependent) {
  // The linear growth rate depends on physical parameters only, never on
  // resolution.
  sqg::SqgConfig a, b;
  a.n = static_cast<std::size_t>(GetParam());
  b.n = 2 * a.n;
  sqg::SqgModel ma(a), mb(b);
  for (int m = 1; m <= 6; ++m)
    ASSERT_DOUBLE_EQ(ma.eady_growth_rate(m), mb.eady_growth_rate(m));
}

TEST_P(SqgGridP, EnergyDecaysWithoutShear) {
  sqg::SqgConfig cfg;
  cfg.n = static_cast<std::size_t>(GetParam());
  cfg.U = 0.0;
  cfg.t_diab = 86400.0;
  cfg.r_ekman = 100.0;
  cfg.diff_efold = 3600.0;
  sqg::SqgModel model(cfg);
  Rng rng(37 + cfg.n);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  const double e0 = model.total_ke(theta);
  model.advance(theta, 86400.0);
  ASSERT_LT(model.total_ke(theta), e0);
}

INSTANTIATE_TEST_SUITE_P(Grids, SqgGridP, ::testing::Values(16, 32, 64));

// --- Filter invariants across ensemble sizes --------------------------------

struct FilterCase {
  int members;
  double obs_var;
};

class FilterSweepP : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FilterSweepP, EtkfNeverIncreasesErrorOnLinearGaussian) {
  const auto [members, obs_var] = GetParam();
  Rng rng(41 + static_cast<std::uint64_t>(members));
  const std::size_t d = 12;
  da::Ensemble ens(static_cast<std::size_t>(members), d);
  std::vector<double> truth(d, 0.7);
  for (std::size_t m = 0; m < ens.size(); ++m)
    for (std::size_t i = 0; i < d; ++i) ens.member(m)[i] = truth[i] + rng.gaussian();
  da::IdentityObs h(d);
  da::DiagonalR r(d, obs_var);
  std::vector<double> y = truth;  // unperturbed obs
  const double before = da::rmse_vs_truth(ens, truth);
  da::ETKF filter(da::EtkfConfig{});
  filter.analyze(ens, y, h, r);
  ASSERT_LT(da::rmse_vs_truth(ens, truth), before * 1.05);
}

TEST_P(FilterSweepP, EnsfAnalysisKeepsEnsembleFinite) {
  const auto [members, obs_var] = GetParam();
  Rng rng(43 + static_cast<std::uint64_t>(members));
  const std::size_t d = 30;
  da::Ensemble ens(static_cast<std::size_t>(members), d);
  for (std::size_t m = 0; m < ens.size(); ++m) rng.fill_gaussian(ens.member(m));
  da::IdentityObs h(d);
  da::DiagonalR r(d, obs_var);
  std::vector<double> y(d, 1.0);
  da::EnSF filter(da::EnsfConfig::stabilized());
  filter.analyze(ens, y, h, r);
  for (std::size_t m = 0; m < ens.size(); ++m)
    for (double v : ens.member(m)) ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Cases, FilterSweepP,
                         ::testing::Combine(::testing::Values(5, 20, 50),
                                            ::testing::Values(0.25, 1.0, 4.0)));

// --- LETKF localization sweep ------------------------------------------------

class LetkfCutoffP : public ::testing::TestWithParam<double> {};

TEST_P(LetkfCutoffP, AnalysisStaysFiniteAndReducesGlobalError) {
  const double cutoff = GetParam();
  Rng rng(47);
  const std::size_t nx = 8, ny = 8, d = nx * ny;
  da::Ensemble ens(15, d);
  std::vector<double> truth(d, 0.0);
  for (std::size_t m = 0; m < 15; ++m)
    for (std::size_t i = 0; i < d; ++i) ens.member(m)[i] = 1.0 + rng.gaussian();
  da::IdentityObs h(d, nx, ny, 1);
  da::DiagonalR r(d, 1.0);
  da::LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = 1;
  cfg.domain_m = 8.0;
  cfg.cutoff_m = cutoff;
  cfg.rtps = 0.3;
  da::LETKF filter(cfg);
  const double before = da::rmse_vs_truth(ens, truth);
  filter.analyze(ens, truth, h, r);
  ASSERT_LT(da::rmse_vs_truth(ens, truth), before);
  for (std::size_t m = 0; m < 15; ++m)
    for (double v : ens.member(m)) ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LetkfCutoffP, ::testing::Values(1.5, 3.0, 6.0, 100.0));

// --- Lorenz-96 dimension sweep (the Fig. 10 state-size axis) -----------------

class L96DimP : public ::testing::TestWithParam<int> {};

TEST_P(L96DimP, EnergyBoundAndReproducible) {
  models::Lorenz96Config cfg;
  cfg.dim = static_cast<std::size_t>(GetParam());
  models::Lorenz96 a(cfg), b(cfg);
  Rng rng(53);
  std::vector<double> x(cfg.dim);
  for (auto& v : x) v = cfg.forcing + 0.1 * rng.gaussian();
  auto y = x;
  for (int s = 0; s < 200; ++s) {
    a.step(x);
    b.step(y);
  }
  for (std::size_t i = 0; i < cfg.dim; ++i) {
    ASSERT_DOUBLE_EQ(x[i], y[i]);  // determinism
    ASSERT_LT(std::abs(x[i]), 50.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, L96DimP, ::testing::Values(8, 40, 256, 1024));

}  // namespace
}  // namespace turbda
