// Checkpoint/restart tests: the snapshot format (CRC, version, refusal of
// corrupt files), Rng state round-trips, and the hard invariant that a
// resumed cycling run continues *bitwise identically* to the uninterrupted
// one — for both schedules, across thread counts, and under fault injection
// with QC active.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "da/ensf.hpp"
#include "da/etkf.hpp"
#include "models/lorenz96.hpp"
#include "models/model_error.hpp"
#include "rng/rng.hpp"
#include "stream/checkpoint.hpp"
#include "stream/faulty_stream.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

namespace turbda {
namespace {

using models::Lorenz96;
using models::Lorenz96Config;

constexpr std::size_t kDim = 40;

std::vector<double> spun_up_truth() {
  Lorenz96Config mc;
  mc.dim = kDim;
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);
  return truth0;
}

enum class FilterKind { Etkf, Ensf };

std::unique_ptr<da::Filter> make_filter(FilterKind kind) {
  if (kind == FilterKind::Ensf) return std::make_unique<da::EnSF>(da::EnsfConfig::stabilized());
  return std::make_unique<da::ETKF>(da::EtkfConfig{.rtps = 0.4});
}

struct CkptRun {
  std::vector<stream::StreamCycleMetrics> metrics;
  da::Ensemble ens{2, kDim};
  Status ckpt_status = Status::Ok();
  Status resume_status = Status::Ok();
};

/// One full stack (models + stream [+ faults] + filter + runner). `resume`
/// empty runs from scratch; otherwise the run continues from that snapshot.
CkptRun run_stack(stream::SyntheticStreamConfig sc, stream::RealtimeConfig rc,
                  const stream::FaultConfig* fc, FilterKind kind, bool model_error = false,
                  const std::string& resume = {}) {
  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(kDim);
  da::DiagonalR r(kDim, 1.0);
  models::ModelErrorProcess me(models::ModelErrorConfig{.reference_scale = 1.0});
  const auto truth0 = spun_up_truth();
  stream::SyntheticStream inner(sc, truth_model, h, r, truth0);
  std::optional<stream::FaultyStream> faulty;
  stream::ObservationStream* s = &inner;
  if (fc != nullptr) {
    faulty.emplace(*fc, inner);
    s = &*faulty;
  }
  auto filter = make_filter(kind);
  rc.inject_model_error = model_error;
  stream::RealtimeRunner runner(rc, *s, fcst_model, filter.get(), model_error ? &me : nullptr);
  CkptRun out;
  if (resume.empty()) {
    out.metrics = runner.run(truth0);
  } else {
    out.resume_status = runner.resume(resume, out.metrics);
    if (!out.resume_status.ok()) return out;
  }
  out.ens = runner.ensemble();
  out.ckpt_status = runner.last_checkpoint_status();
  return out;
}

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs";
  }
}

/// Every deterministic (non-wall-clock) field must match bitwise.
void expect_deterministic_metrics_equal(const std::vector<stream::StreamCycleMetrics>& a,
                                        const std::vector<stream::StreamCycleMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].cycle, b[k].cycle);
    EXPECT_EQ(a[k].rmse_prior, b[k].rmse_prior) << "cycle " << k;
    EXPECT_EQ(a[k].rmse_post, b[k].rmse_post) << "cycle " << k;
    EXPECT_EQ(a[k].spread_prior, b[k].spread_prior) << "cycle " << k;
    EXPECT_EQ(a[k].spread_post, b[k].spread_post) << "cycle " << k;
    EXPECT_EQ(a[k].batches_assimilated, b[k].batches_assimilated) << "cycle " << k;
    EXPECT_EQ(a[k].batches_discarded, b[k].batches_discarded) << "cycle " << k;
    EXPECT_EQ(a[k].max_batch_age, b[k].max_batch_age) << "cycle " << k;
    EXPECT_EQ(a[k].deadline_miss, b[k].deadline_miss) << "cycle " << k;
    EXPECT_EQ(a[k].obs_rejected, b[k].obs_rejected) << "cycle " << k;
    EXPECT_EQ(a[k].batches_rejected, b[k].batches_rejected) << "cycle " << k;
    EXPECT_EQ(a[k].max_r_scale, b[k].max_r_scale) << "cycle " << k;
    EXPECT_EQ(a[k].analysis_failures, b[k].analysis_failures) << "cycle " << k;
    EXPECT_EQ(a[k].solver_fallbacks, b[k].solver_fallbacks) << "cycle " << k;
    EXPECT_EQ(a[k].spread_recoveries, b[k].spread_recoveries) << "cycle " << k;
    EXPECT_EQ(a[k].degraded, b[k].degraded) << "cycle " << k;
  }
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

// ----------------------------------------------------------- primitives ----

TEST(Checkpoint, Crc32MatchesKnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(stream::crc32({reinterpret_cast<const std::uint8_t*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(stream::crc32({}), 0x00000000u);
}

TEST(Checkpoint, RngStateRoundTripsMidSequence) {
  rng::Rng a(12345);
  std::vector<double> warm(7);
  for (auto& v : warm) v = a.gaussian();  // odd count: a cached pair is live

  std::vector<std::uint8_t> state;
  a.save_state(state);
  EXPECT_EQ(state.size(), rng::Rng::kStateBytes);

  std::vector<double> expect(32);
  for (auto& v : expect) v = a.gaussian();

  rng::Rng b(999);  // deliberately different seed; state must fully override
  ASSERT_TRUE(b.load_state(state));
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(b.gaussian(), expect[i]) << i;

  // Malformed state is refused.
  rng::Rng c(1);
  std::vector<std::uint8_t> junk(rng::Rng::kStateBytes - 1, 0);
  EXPECT_FALSE(c.load_state(junk));
}

// -------------------------------------------------------- bitwise resume ---

TEST(Checkpoint, SerialResumeIsBitwiseIdentical) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 18;
  rc.n_members = 10;

  const auto uninterrupted = run_stack(sc, rc, nullptr, FilterKind::Etkf, true);

  const std::string path = temp_path("ckpt_serial.bin");
  auto rc_ck = rc;
  rc_ck.checkpoint_path = path;
  rc_ck.checkpoint_every = 7;  // snapshots at cycles 7 and 14
  const auto with_ckpt = run_stack(sc, rc_ck, nullptr, FilterKind::Etkf, true);

  // Checkpointing itself must not perturb the run.
  ASSERT_TRUE(with_ckpt.ckpt_status.ok()) << with_ckpt.ckpt_status.to_string();
  expect_bitwise_equal(uninterrupted.ens, with_ckpt.ens);
  expect_deterministic_metrics_equal(uninterrupted.metrics, with_ckpt.metrics);

  // A fresh stack resumed from the last snapshot (cycle 14) must land on the
  // identical final state and reconstruct the full metrics history.
  const auto resumed = run_stack(sc, rc_ck, nullptr, FilterKind::Etkf, true, path);
  ASSERT_TRUE(resumed.resume_status.ok()) << resumed.resume_status.to_string();
  expect_bitwise_equal(uninterrupted.ens, resumed.ens);
  expect_deterministic_metrics_equal(uninterrupted.metrics, resumed.metrics);
  std::remove(path.c_str());
}

TEST(Checkpoint, EnsfFilterStateSurvivesResume) {
  // EnSF keeps a cross-cycle analysis counter (its noise substream key); a
  // resume that failed to restore it would diverge immediately.
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 10;
  rc.n_members = 16;

  const auto uninterrupted = run_stack(sc, rc, nullptr, FilterKind::Ensf);

  const std::string path = temp_path("ckpt_ensf.bin");
  auto rc_ck = rc;
  rc_ck.checkpoint_path = path;
  rc_ck.checkpoint_every = 4;  // snapshots at cycles 4 and 8
  const auto with_ckpt = run_stack(sc, rc_ck, nullptr, FilterKind::Ensf);
  ASSERT_TRUE(with_ckpt.ckpt_status.ok()) << with_ckpt.ckpt_status.to_string();

  const auto resumed = run_stack(sc, rc_ck, nullptr, FilterKind::Ensf, false, path);
  ASSERT_TRUE(resumed.resume_status.ok()) << resumed.resume_status.to_string();
  expect_bitwise_equal(uninterrupted.ens, resumed.ens);
  expect_deterministic_metrics_equal(uninterrupted.metrics, resumed.metrics);
  std::remove(path.c_str());
}

TEST(Checkpoint, OverlappedFaultyResumeAcrossThreadCounts) {
  // The hard case: overlapped pipeline mid-flight (staged analysis buffers
  // live), delivery jitter, fault injection and QC all active — and the
  // resuming process uses a different forecast thread count than the
  // process that wrote the snapshot.
  stream::SyntheticStreamConfig sc;
  sc.latency_cycles = 0.4;
  sc.jitter_cycles = 0.5;
  stream::RealtimeConfig rc;
  rc.cycles = 16;
  rc.n_members = 12;
  rc.schedule = stream::Schedule::Overlapped;
  rc.qc.enabled = true;
  rc.qc.bg_sigma = 5.0;
  rc.qc.stale_r_inflation = 0.5;
  rc.n_forecast_threads = 1;

  stream::FaultConfig fc;
  fc.nan_prob = 0.05;
  fc.stuck_prob = 0.3;
  fc.duplicate_prob = 0.3;
  fc.truncate_prob = 0.15;

  const auto uninterrupted = run_stack(sc, rc, &fc, FilterKind::Etkf);

  const std::string path = temp_path("ckpt_overlap.bin");
  auto rc_ck = rc;
  rc_ck.checkpoint_path = path;
  rc_ck.checkpoint_every = 5;  // last snapshot at cycle 15 (mid-pipeline)
  const auto with_ckpt = run_stack(sc, rc_ck, &fc, FilterKind::Etkf);
  ASSERT_TRUE(with_ckpt.ckpt_status.ok()) << with_ckpt.ckpt_status.to_string();
  expect_bitwise_equal(uninterrupted.ens, with_ckpt.ens);

  auto rc_resume = rc_ck;
  rc_resume.n_forecast_threads = 0;  // all pool workers this time
  const auto resumed = run_stack(sc, rc_resume, &fc, FilterKind::Etkf, false, path);
  ASSERT_TRUE(resumed.resume_status.ok()) << resumed.resume_status.to_string();
  expect_bitwise_equal(uninterrupted.ens, resumed.ens);
  expect_deterministic_metrics_equal(uninterrupted.metrics, resumed.metrics);
  std::remove(path.c_str());
}

// ------------------------------------------------------ refusal paths ------

/// Writes one real snapshot and returns its bytes.
std::vector<char> make_snapshot(const std::string& path) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 10;
  rc.n_members = 8;
  rc.checkpoint_path = path;
  rc.checkpoint_every = 5;
  const auto r = run_stack(sc, rc, nullptr, FilterKind::Etkf);
  EXPECT_TRUE(r.ckpt_status.ok());
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, CorruptSnapshotsAreRefusedWithPreciseStatus) {
  const std::string path = temp_path("ckpt_corrupt.bin");
  const auto good = make_snapshot(path);
  ASSERT_GT(good.size(), 40u);
  stream::CheckpointData data;

  // Pristine file loads.
  ASSERT_TRUE(stream::load_checkpoint(path, data).ok());

  // Bit flip inside the payload: CRC mismatch.
  auto flipped = good;
  flipped[24] = static_cast<char>(flipped[24] ^ 0x40);
  write_bytes(path, flipped);
  Status s = stream::load_checkpoint(path, data);
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.to_string();

  // Truncated file.
  auto truncated = good;
  truncated.resize(good.size() - 11);
  write_bytes(path, truncated);
  EXPECT_EQ(stream::load_checkpoint(path, data).code(), StatusCode::kCorruptData);

  // Trailing garbage.
  auto padded = good;
  padded.push_back('x');
  write_bytes(path, padded);
  EXPECT_EQ(stream::load_checkpoint(path, data).code(), StatusCode::kCorruptData);

  // Wrong magic.
  auto bad_magic = good;
  bad_magic[0] = 'X';
  write_bytes(path, bad_magic);
  s = stream::load_checkpoint(path, data);
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.to_string();

  // Future format version.
  auto future = good;
  future[4] = static_cast<char>(future[4] + 1);
  write_bytes(path, future);
  s = stream::load_checkpoint(path, data);
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.to_string();

  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsIoError) {
  stream::CheckpointData data;
  const Status s = stream::load_checkpoint(temp_path("does_not_exist.bin"), data);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(Checkpoint, MismatchedConfigurationIsRefusedOnResume) {
  const std::string path = temp_path("ckpt_mismatch.bin");
  (void)make_snapshot(path);

  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 10;
  rc.n_members = 8;
  rc.seed = 777;  // different seed than the snapshot's config echo
  const auto r = run_stack(sc, rc, nullptr, FilterKind::Etkf, false, path);
  EXPECT_EQ(r.resume_status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace turbda
