#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"

namespace turbda::rng {
namespace {

TEST(Rng, ReproducibleAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamsAreIndependentAndReproducible) {
  Rng parent(77);
  Rng s1 = parent.substream(0);
  Rng s2 = parent.substream(1);
  Rng s1b = Rng(77).substream(0);
  int same12 = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = s1.next_u32();
    const auto b = s2.next_u32();
    EXPECT_EQ(a, s1b.next_u32());
    same12 += (a == b);
  }
  EXPECT_LT(same12, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng r(9);
  const int n = 50000;
  double m1 = 0.0, m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    m1 += g;
    m2 += g * g;
    m3 += g * g * g;
    m4 += g * g * g * g;
  }
  m1 /= n;
  m2 /= n;
  m3 /= n;
  m4 /= n;
  EXPECT_NEAR(m1, 0.0, 0.02);
  EXPECT_NEAR(m2, 1.0, 0.03);
  EXPECT_NEAR(m3, 0.0, 0.06);
  EXPECT_NEAR(m4, 3.0, 0.15);  // kurtosis of the standard normal
}

TEST(Rng, GaussianWithMeanAndStddev) {
  Rng r(11);
  const int n = 20000;
  double m1 = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian(5.0, 2.0);
    m1 += g;
    m2 += g * g;
  }
  m1 /= n;
  EXPECT_NEAR(m1, 5.0, 0.1);
  EXPECT_NEAR(m2 / n - m1 * m1, 4.0, 0.2);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng r(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto v = r.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  r.shuffle(std::span<int>(w));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, FillGaussianFillsAll) {
  Rng r(23);
  std::vector<double> v(100, -1e300);
  r.fill_gaussian(v);
  for (double x : v) EXPECT_LT(std::abs(x), 10.0);
}

}  // namespace
}  // namespace turbda::rng
