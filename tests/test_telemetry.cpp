// Telemetry subsystem tests: tracing spans (nesting, thread attribution,
// ring overflow, Chrome export), the metrics registry (counters, gauges,
// histograms, exposition formats), and the two hard product invariants —
// instrumentation must not change numerical results bitwise, and a disabled
// span must cost a negligible fraction of a cycle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "da/ensemble.hpp"
#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "da/observation.hpp"
#include "models/lorenz96.hpp"
#include "rng/rng.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace turbda {
namespace {

using telemetry::TraceCollector;

/// Ring capacity the collector boots with (trace.cpp kDefaultCapacity);
/// restored after the overflow test so later tests see full-size rings.
constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 15;

void reset_tracing(std::size_t capacity = kDefaultRingCapacity) {
  auto& tc = TraceCollector::instance();
  tc.disable();
  tc.set_capacity(capacity);
  tc.clear();
}

// ------------------------------------------------------------- trace layer ---

// Must run first (gtest executes in declaration order): verifies the
// process-wide default before any test flips the enable flag.
TEST(Trace, DisabledByDefaultAndRecordsNothing) {
  EXPECT_FALSE(telemetry::tracing_enabled());
  EXPECT_FALSE(TraceCollector::instance().enabled());
  {
    TURBDA_SPAN("should.not.record");
    TURBDA_TRACE_INSTANT("also.not");
  }
  // Disabled spans never even register the thread's buffer.
  EXPECT_TRUE(TraceCollector::instance().snapshot().empty());
}

TEST(Trace, SpansNestAndRecordDepthInCompletionOrder) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  tc.enable();
  {
    TURBDA_SPAN("outer");
    {
      TURBDA_SPAN("inner");
      { TURBDA_SPAN("leaf"); }
    }
    { TURBDA_SPAN("sibling"); }
  }
  tc.disable();

  const auto snap = tc.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const auto& spans = snap[0].spans;
  ASSERT_EQ(spans.size(), 4u);
  // RAII records on close, innermost first.
  EXPECT_STREQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0u);
  // Children lie inside the parent interval.
  const auto& outer = spans[3];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(spans[i].t0_ns, outer.t0_ns) << spans[i].name;
    EXPECT_LE(spans[i].t0_ns + spans[i].dur_ns, outer.t0_ns + outer.dur_ns) << spans[i].name;
  }
  EXPECT_EQ(snap[0].dropped, 0u);
}

TEST(Trace, ThreadsGetDistinctIdsAndLabels) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  telemetry::set_thread_label("main-test");
  tc.enable();
  { TURBDA_SPAN("on.main"); }
  std::thread worker([] {
    telemetry::set_thread_label("worker-test");
    TURBDA_SPAN("on.worker");
  });
  worker.join();
  tc.disable();

  const auto snap = tc.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_NE(snap[0].tid, snap[1].tid);
  std::string labels, names;
  for (const auto& t : snap) {
    ASSERT_EQ(t.spans.size(), 1u);
    labels += t.label + ";";
    names += std::string(t.spans[0].name) + ";";
  }
  EXPECT_NE(labels.find("main-test"), std::string::npos);
  EXPECT_NE(labels.find("worker-test"), std::string::npos);
  EXPECT_NE(names.find("on.main"), std::string::npos);
  EXPECT_NE(names.find("on.worker"), std::string::npos);
}

TEST(Trace, InstantsAndExplicitCompletes) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  tc.enable();
  TURBDA_TRACE_INSTANT("status.event");
  const std::uint64_t t0 = tc.now_ns();
  tc.complete("synthetic.span", t0, 1234);
  tc.disable();

  const auto snap = tc.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].spans.size(), 2u);
  EXPECT_STREQ(snap[0].spans[0].name, "status.event");
  EXPECT_TRUE(snap[0].spans[0].instant);
  EXPECT_EQ(snap[0].spans[0].dur_ns, 0u);
  EXPECT_STREQ(snap[0].spans[1].name, "synthetic.span");
  EXPECT_FALSE(snap[0].spans[1].instant);
  EXPECT_EQ(snap[0].spans[1].t0_ns, t0);
  EXPECT_EQ(snap[0].spans[1].dur_ns, 1234u);
}

TEST(Trace, RingWrapKeepsNewestAndCountsDropped) {
  reset_tracing(/*capacity=*/4);
  auto& tc = TraceCollector::instance();
  tc.enable();
  for (int i = 0; i < 10; ++i) {
    TURBDA_SPAN("wrap.span");
  }
  tc.disable();

  const auto snap = tc.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].spans.size(), 4u);
  EXPECT_EQ(snap[0].dropped, 6u);
  // Surviving records are the newest four, in completion order.
  for (std::size_t i = 1; i < snap[0].spans.size(); ++i)
    EXPECT_GE(snap[0].spans[i].t0_ns, snap[0].spans[i - 1].t0_ns);
  reset_tracing();  // restore the default ring size for later tests
}

TEST(Trace, ChromeJsonCarriesEventsAndThreadMetadata) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  telemetry::set_thread_label("json-thread");
  tc.enable();
  { TURBDA_SPAN("json.span"); }
  TURBDA_TRACE_INSTANT("json.instant");
  tc.disable();

  const std::string j = tc.chrome_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(j.find("json.span"), std::string::npos);
  EXPECT_NE(j.find("json.instant"), std::string::npos);
  EXPECT_NE(j.find("thread_name"), std::string::npos);
  EXPECT_NE(j.find("json-thread"), std::string::npos);
  // Instants need explicit thread scope for the viewers.
  EXPECT_NE(j.find("\"s\":\"t\""), std::string::npos);
}

// ---------------------------------------------------------- metrics layer ---

TEST(Metrics, CounterAndGaugeBasics) {
  telemetry::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  telemetry::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  const double bounds[] = {1.0, 2.0};
  telemetry::Histogram h(bounds);
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (le semantics: edge belongs to its bucket)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(3.0);  // +Inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (const auto n : h.bucket_counts()) EXPECT_EQ(n, 0u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  const double bad[] = {2.0, 1.0};
  EXPECT_THROW(telemetry::Histogram h(bad), Error);
}

TEST(Metrics, RegistryReturnsStableRefsAndFirstBoundsWin) {
  telemetry::MetricsRegistry reg;
  auto& c1 = reg.counter("hits");
  auto& c2 = reg.counter("hits");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);

  const double bounds[] = {1.0, 2.0};
  auto& h1 = reg.histogram("lat", bounds);
  const double other[] = {99.0};
  auto& h2 = reg.histogram("lat", other);  // later bounds ignored
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h2.bounds()[0], 1.0);

  // Empty bounds fall back to the default latency buckets.
  auto& hd = reg.histogram("lat_default");
  EXPECT_EQ(hd.bounds().size(), telemetry::default_ms_buckets().size());
}

TEST(Metrics, SnapshotIsSortedByName) {
  telemetry::MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc(2);
  reg.gauge("mid").set(1.0);
  reg.histogram("hist_b").observe(1.0);
  reg.histogram("hist_a").observe(2.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "mid");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "hist_a");
  EXPECT_EQ(snap.histograms[1].name, "hist_b");

  reg.reset();
  const auto zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counters[0].value, 0u);
  EXPECT_EQ(zeroed.histograms[0].count, 0u);
}

TEST(Metrics, PrometheusExpositionIsCumulativeAndSanitized) {
  telemetry::MetricsRegistry reg;
  reg.counter("bad.name-1").inc(7);
  reg.gauge("g").set(0.5);
  const double bounds[] = {1.0, 2.0};
  auto& h = reg.histogram("lat_ms", bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = telemetry::to_prometheus(reg.snapshot());
  // Invalid characters are replaced, not emitted.
  EXPECT_NE(text.find("bad_name_1 7"), std::string::npos);
  EXPECT_EQ(text.find("bad.name-1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bad_name_1 counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  // Buckets are cumulative: 1, 2, 3 — and +Inf equals _count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 11"), std::string::npos);
}

TEST(Metrics, JsonExpositionHoldsAllThreeKinds) {
  telemetry::MetricsRegistry reg;
  reg.counter("c").inc(4);
  reg.gauge("g").set(1.25);
  const double bounds[] = {10.0};
  reg.histogram("h", bounds).observe(3.0);

  const std::string j = telemetry::to_json(reg.snapshot());
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"c\": 4"), std::string::npos);
  EXPECT_NE(j.find("\"g\": 1.25"), std::string::npos);
  EXPECT_NE(j.find("\"bounds\""), std::string::npos);
  EXPECT_NE(j.find("\"counts\""), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  telemetry::MetricsRegistry reg;
  auto& c = reg.counter("n");
  auto& h = reg.histogram("v");
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kIters);
}

// ------------------------------------------- numerics must not move at all ---

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs";
  }
}

/// One localized LETKF analysis on a sparse strided network — the filter
/// whose hot path carries the densest instrumentation (phase clocks + chunk
/// spans), so it is where a telemetry branch would most plausibly leak into
/// the numbers.
da::Ensemble letkf_case(std::size_t n_threads) {
  const std::size_t nx = 8, ny = 8, nlev = 2;
  const std::size_t dim = nx * ny * nlev;
  const auto h = da::SubsampleObs::strided_grid(nx, ny, nlev, 2);
  da::DiagonalR r(h.obs_dim(), 0.01);

  std::vector<double> truth(dim);
  rng::Rng rng(55);
  rng.fill_gaussian(truth, 0.0, 2.0);
  da::Ensemble ens(10, dim);
  ens.init_perturbed(truth, 1.5, rng);

  std::vector<double> y(h.obs_dim());
  h.apply(truth, y);
  rng::Rng r_obs(56);
  r.perturb(y, r_obs);

  da::LetkfConfig lc;
  lc.nx = nx;
  lc.ny = ny;
  lc.n_levels = nlev;
  lc.domain_m = 8.0e6;
  lc.cutoff_m = 3.0e6;
  lc.n_threads = n_threads;
  da::LETKF letkf(lc);
  letkf.analyze(ens, y, h, r);
  return ens;
}

TEST(TelemetryNumerics, LetkfBitwiseIdenticalWithTracingOnOrOffAcrossThreads) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  const auto ref = letkf_case(1);
  for (std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    tc.disable();
    tc.clear();
    expect_bitwise_equal(ref, letkf_case(nt));
    tc.clear();
    tc.enable();
    expect_bitwise_equal(ref, letkf_case(nt));
    tc.disable();
  }
  tc.clear();
}

/// Full streaming run (runner + pool + ETKF instrumentation) on Lorenz-96.
da::Ensemble realtime_case(std::size_t n_threads, stream::Schedule schedule, int cycles = 8,
                           std::size_t dim = 40) {
  models::Lorenz96Config mc;
  mc.dim = dim;
  mc.steps_per_window = 10;
  models::Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});

  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  models::Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);

  stream::SyntheticStreamConfig sc;
  sc.seed = 2024;
  sc.latency_cycles = 0.3;
  sc.dropout_prob = 0.1;
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);

  stream::RealtimeConfig rc;
  rc.n_members = 8;
  rc.cycles = cycles;
  rc.window_hours = 1.0;
  rc.init_spread = 1.0;
  rc.seed = 777;
  rc.deadline_slack_cycles = 0.5;
  rc.schedule = schedule;
  rc.n_forecast_threads = n_threads;
  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  runner.run(truth0);
  return runner.ensemble();
}

TEST(TelemetryNumerics, RealtimeRunnerBitwiseIdenticalWithTracingOnOrOff) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  for (auto schedule : {stream::Schedule::Serial, stream::Schedule::Overlapped}) {
    tc.disable();
    tc.clear();
    const auto ref = realtime_case(1, schedule);
    for (std::size_t nt : {std::size_t{2}, std::size_t{4}}) {
      tc.disable();
      tc.clear();
      expect_bitwise_equal(ref, realtime_case(nt, schedule));
      tc.clear();
      tc.enable();
      expect_bitwise_equal(ref, realtime_case(nt, schedule));
      tc.disable();
    }
  }
  tc.clear();
}

// ------------------------------------------------------- overhead envelope ---

/// Disabled-tracing overhead guard. Two noisy end-to-end timings of the same
/// run would flake on a loaded CI box, so bound the product instead: measure
/// the per-span disabled cost in a tight loop, count how many spans one cycle
/// actually emits (from an enabled run of the identical configuration), and
/// require spans_per_cycle * cost_per_span <= 1% of the measured cycle time.
TEST(TelemetryOverhead, DisabledSpansCostUnderOnePercentOfACycle) {
  reset_tracing();
  auto& tc = TraceCollector::instance();
  constexpr int kCycles = 20;
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kThreads = 2;

  // (1) Wall time per cycle with tracing disabled — the production baseline.
  ASSERT_FALSE(telemetry::tracing_enabled());
  WallTimer t_run;
  realtime_case(kThreads, stream::Schedule::Serial, kCycles, kDim);
  const double cycle_ns = t_run.seconds() * 1e9 / kCycles;

  // (2) Spans one cycle emits, from an enabled run of the same config.
  tc.clear();
  tc.enable();
  realtime_case(kThreads, stream::Schedule::Serial, kCycles, kDim);
  tc.disable();
  std::uint64_t total_spans = 0;
  for (const auto& th : tc.snapshot()) total_spans += th.spans.size() + th.dropped;
  tc.clear();
  ASSERT_GT(total_spans, 0u);
  const double spans_per_cycle =
      static_cast<double>(total_spans) / static_cast<double>(kCycles);

  // (3) Per-span cost with tracing disabled: one relaxed load + branch.
  constexpr int kIters = 1 << 22;
  WallTimer t_span;
  for (int i = 0; i < kIters; ++i) {
    TURBDA_SPAN("overhead.probe");
    // Compiler barrier so the dead span is not hoisted out of the loop.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  const double span_ns = t_span.seconds() * 1e9 / kIters;

  const double overhead_frac = spans_per_cycle * span_ns / cycle_ns;
  EXPECT_LE(overhead_frac, 0.01)
      << "disabled tracing costs " << 100.0 * overhead_frac << "% of a cycle ("
      << spans_per_cycle << " spans/cycle x " << span_ns << " ns/span vs " << cycle_ns
      << " ns/cycle)";
}

}  // namespace
}  // namespace turbda
