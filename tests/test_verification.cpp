#include <gtest/gtest.h>

#include <cmath>

#include "da/verification.hpp"
#include "rng/rng.hpp"

namespace turbda::da {
namespace {

using turbda::rng::Rng;

TEST(Crps, DeterministicEnsembleReducesToAbsoluteError) {
  const std::vector<double> members{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(crps_scalar(members, 3.5), 1.5, 1e-12);
  EXPECT_NEAR(crps_scalar(members, 2.0), 0.0, 1e-12);
}

TEST(Crps, TwoMemberHandComputation) {
  // members {0, 2}, truth 1: term1 = 1, term2 = (1/8)*sum|xi-xj| = 4/8.
  const std::vector<double> members{0.0, 2.0};
  EXPECT_NEAR(crps_scalar(members, 1.0), 1.0 - 0.5, 1e-12);
}

TEST(Crps, SharpAccurateBeatsSharpBiased) {
  Rng rng(1);
  const std::size_t m = 50;
  std::vector<double> good(m), biased(m);
  for (std::size_t k = 0; k < m; ++k) {
    good[k] = rng.gaussian(0.0, 1.0);
    biased[k] = rng.gaussian(3.0, 1.0);
  }
  EXPECT_LT(crps_scalar(good, 0.0), crps_scalar(biased, 0.0));
}

TEST(Crps, RewardsCalibratedSpread) {
  // Truth drawn from N(0,1): an ensemble with matching spread should score
  // better (on average) than one that is far too wide.
  Rng rng(2);
  const std::size_t m = 40;
  double sharp = 0.0, wide = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const double truth = rng.gaussian();
    std::vector<double> a(m), b(m);
    for (std::size_t k = 0; k < m; ++k) {
      a[k] = rng.gaussian(0.0, 1.0);
      b[k] = rng.gaussian(0.0, 5.0);
    }
    sharp += crps_scalar(a, truth);
    wide += crps_scalar(b, truth);
  }
  EXPECT_LT(sharp, wide);
}

TEST(Crps, EnsembleVersionAveragesVariables) {
  Ensemble ens(3, 2);
  // var 0: members {0,1,2}; var 1: all 5.0.
  for (std::size_t k = 0; k < 3; ++k) {
    ens.member(k)[0] = static_cast<double>(k);
    ens.member(k)[1] = 5.0;
  }
  const std::vector<double> truth{1.0, 5.0};
  const double v0 = crps_scalar(std::vector<double>{0.0, 1.0, 2.0}, 1.0);
  EXPECT_NEAR(crps(ens, truth), 0.5 * (v0 + 0.0), 1e-12);
}

TEST(RankHistogram, CalibratedEnsembleIsFlat) {
  Rng rng(3);
  const std::size_t m = 10, d = 20000;
  Ensemble ens(m, d);
  std::vector<double> truth(d);
  // Truth and members iid from the same distribution -> flat histogram.
  for (std::size_t i = 0; i < d; ++i) truth[i] = rng.gaussian();
  for (std::size_t k = 0; k < m; ++k) rng.fill_gaussian(ens.member(k));
  const auto hist = rank_histogram(ens, truth);
  ASSERT_EQ(hist.size(), m + 1);
  const double expected = 1.0 / static_cast<double>(m + 1);
  for (double h : hist) EXPECT_NEAR(h, expected, 0.25 * expected);
  EXPECT_LT(rank_histogram_flatness(hist), 0.01);
}

TEST(RankHistogram, UnderdispersedEnsembleIsUShaped) {
  Rng rng(4);
  const std::size_t m = 10, d = 20000;
  Ensemble ens(m, d);
  std::vector<double> truth(d);
  for (std::size_t i = 0; i < d; ++i) truth[i] = rng.gaussian();  // sd 1
  for (std::size_t k = 0; k < m; ++k) rng.fill_gaussian(ens.member(k), 0.0, 0.3);
  const auto hist = rank_histogram(ens, truth);
  // Extreme ranks dominate.
  EXPECT_GT(hist.front(), 2.0 / static_cast<double>(m + 1));
  EXPECT_GT(hist.back(), 2.0 / static_cast<double>(m + 1));
  EXPECT_GT(rank_histogram_flatness(hist), 0.5);
}

TEST(RankHistogram, SumsToOne) {
  Rng rng(5);
  Ensemble ens(7, 500);
  std::vector<double> truth(500);
  rng.fill_gaussian(truth);
  for (std::size_t k = 0; k < 7; ++k) rng.fill_gaussian(ens.member(k));
  const auto hist = rank_histogram(ens, truth);
  double s = 0.0;
  for (double h : hist) s += h;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(SpreadSkill, CalibratedNearOne) {
  Rng rng(6);
  const std::size_t m = 40, d = 5000;
  Ensemble ens(m, d);
  std::vector<double> truth(d);
  for (std::size_t i = 0; i < d; ++i) truth[i] = rng.gaussian();
  for (std::size_t k = 0; k < m; ++k) rng.fill_gaussian(ens.member(k));
  EXPECT_NEAR(spread_skill_ratio(ens, truth), 1.0, 0.1);
}

TEST(SpreadSkill, FlagsOverconfidence) {
  Rng rng(7);
  const std::size_t m = 20, d = 2000;
  Ensemble ens(m, d);
  std::vector<double> truth(d, 0.0);
  // Biased AND tight: the pre-divergence signature.
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t i = 0; i < d; ++i) ens.member(k)[i] = 2.0 + rng.gaussian(0.0, 0.1);
  EXPECT_LT(spread_skill_ratio(ens, truth), 0.2);
}

}  // namespace
}  // namespace turbda::da
