#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "da/ensf.hpp"
#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "da/localization.hpp"
#include "da/osse.hpp"
#include "models/lorenz96.hpp"
#include "rng/rng.hpp"
#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "tensor/linalg.hpp"

namespace turbda::da {
namespace {

using models::Lorenz96;
using models::Lorenz96Config;
using turbda::rng::Rng;

// ------------------------------------------------------------- utilities ---

TEST(Ensemble, MeanAndSpread) {
  Ensemble e(2, 3);
  e.member(0)[0] = 1.0;
  e.member(1)[0] = 3.0;
  const auto mu = e.mean();
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  const auto sd = e.stddev();
  EXPECT_NEAR(sd[0], std::sqrt(2.0), 1e-12);  // unbiased: var = 2
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(Ensemble, InitPerturbed) {
  Ensemble e(50, 10);
  std::vector<double> base(10, 7.0);
  Rng rng(1);
  e.init_perturbed(base, 0.5, rng);
  const auto mu = e.mean();
  for (double v : mu) EXPECT_NEAR(v, 7.0, 0.5);
  EXPECT_NEAR(e.mean_spread(), 0.5, 0.12);
}

TEST(Metrics, RmseDefinitions) {
  std::vector<double> a{1.0, 2.0}, b{0.0, 0.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(2.5), 1e-12);
}

// ------------------------------------------------------------ observation ---

TEST(Observation, IdentityApplyAdjoint) {
  IdentityObs h(4);
  std::vector<double> x{1, 2, 3, 4}, y(4), out(4);
  h.apply(x, y);
  EXPECT_EQ(y, x);
  h.adjoint(x, y, out);
  EXPECT_EQ(out, x);
  EXPECT_TRUE(h.is_linear());
}

TEST(Observation, IdentityGridLocations) {
  IdentityObs h(2 * 3 * 2, 2, 3, 2);
  const auto locs = h.locations();
  ASSERT_TRUE(locs.has_value());
  ASSERT_EQ(locs->size(), 12u);
  EXPECT_EQ((*locs)[0].ix, 0);
  EXPECT_EQ((*locs)[11].ix, 1);
  EXPECT_EQ((*locs)[11].iy, 2);
  EXPECT_EQ((*locs)[11].level, 1);
}

TEST(Observation, SubsampleStrided) {
  auto h = SubsampleObs::strided(10, 3);
  EXPECT_EQ(h.obs_dim(), 4u);  // 0, 3, 6, 9
  std::vector<double> x{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, y(4);
  h.apply(x, y);
  EXPECT_EQ(y, (std::vector<double>{0, 3, 6, 9}));
  std::vector<double> r{1, 1, 1, 1}, out(10);
  h.adjoint(x, r, out);
  EXPECT_DOUBLE_EQ(out[3], 1.0);
  EXPECT_DOUBLE_EQ(out[4], 0.0);
}

TEST(Observation, ArctanAdjointMatchesFiniteDifference) {
  ArctanObs h(3);
  std::vector<double> x{0.5, -1.2, 2.0};
  std::vector<double> r{1.0, -0.5, 2.0}, out(3);
  h.adjoint(x, r, out);
  // <J u, r> == <u, J^T r> for u = e_i.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    std::vector<double> yp(3), ym(3);
    h.apply(xp, yp);
    h.apply(xm, ym);
    double jr = 0.0;
    for (std::size_t o = 0; o < 3; ++o) jr += (yp[o] - ym[o]) / (2 * eps) * r[o];
    EXPECT_NEAR(out[i], jr, 1e-8);
  }
  EXPECT_FALSE(h.is_linear());
}

TEST(Observation, DiagonalRPerturbAndInverse) {
  DiagonalR r(std::vector<double>{4.0, 9.0});
  std::vector<double> v{1.0, 1.0}, out(2);
  r.apply_inverse(v, out);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 1.0 / 9.0);

  Rng rng(2);
  double s2_0 = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    std::vector<double> y{0.0, 0.0};
    r.perturb(y, rng);
    s2_0 += y[0] * y[0];
  }
  EXPECT_NEAR(s2_0 / n, 4.0, 0.3);
  EXPECT_THROW(DiagonalR bad(2, -1.0), Error);
}

TEST(Localization, GaspariCohnShape) {
  EXPECT_DOUBLE_EQ(gaspari_cohn(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gaspari_cohn(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(gaspari_cohn(5.0, 1.0), 0.0);
  // Monotone decreasing on [0, 2c].
  double prev = 1.0;
  for (double d = 0.1; d < 2.0; d += 0.1) {
    const double g = gaspari_cohn(d, 1.0);
    EXPECT_LT(g, prev);
    EXPECT_GE(g, 0.0);
    prev = g;
  }
  // Continuity at the piece boundary x = 1.
  EXPECT_NEAR(gaspari_cohn(1.0 - 1e-9, 1.0), gaspari_cohn(1.0 + 1e-9, 1.0), 1e-6);
}

TEST(Localization, PeriodicDistance) {
  EXPECT_DOUBLE_EQ(periodic_distance(0.0, 9.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(periodic_distance(2.0, 5.0, 10.0), 3.0);
}

// ---------------------------------------------------------------- filters ---

/// Builds a reference Kalman analysis mean from the *sample* covariance so
/// square-root filters can be verified through independent algebra:
///   mean_a = xbar + Pb H^T (H Pb H^T + R)^{-1} (y - H xbar),   here H = I.
std::vector<double> kalman_mean_identity_obs(const Ensemble& ens, std::span<const double> y,
                                             double r_var) {
  const std::size_t m = ens.size(), d = ens.dim();
  const auto xbar = ens.mean();
  tensor::Tensor xb({m, d});
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t i = 0; i < d; ++i) xb(k, i) = ens.member(k)[i] - xbar[i];
  tensor::Tensor pb = tensor::matmul_tn(xb, xb);
  pb *= 1.0 / static_cast<double>(m - 1);
  tensor::Tensor s = pb;  // S = Pb + R
  for (std::size_t i = 0; i < d; ++i) s(i, i) += r_var;
  std::vector<double> innov(d);
  for (std::size_t i = 0; i < d; ++i) innov[i] = y[i] - xbar[i];
  const auto z = tensor::spd_solve(s, innov);
  // mean_a = xbar + Pb z
  std::vector<double> out(d);
  for (std::size_t i = 0; i < d; ++i) {
    double acc = xbar[i];
    for (std::size_t j = 0; j < d; ++j) acc += pb(i, j) * z[j];
    out[i] = acc;
  }
  return out;
}

Ensemble make_gaussian_ensemble(std::size_t m, std::size_t d, Rng& rng, double mean = 0.0,
                                double sd = 1.0) {
  Ensemble ens(m, d);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t i = 0; i < d; ++i) ens.member(k)[i] = rng.gaussian(mean, sd);
  return ens;
}

TEST(Etkf, MatchesKalmanMeanForLinearGaussian) {
  Rng rng(3);
  const std::size_t m = 40, d = 6;
  Ensemble ens = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y(d, 1.5);
  IdentityObs h(d);
  DiagonalR r(d, 1.0);
  const auto want = kalman_mean_identity_obs(ens, y, 1.0);
  ETKF filter(EtkfConfig{});
  filter.analyze(ens, y, h, r);
  const auto got = ens.mean();
  for (std::size_t i = 0; i < d; ++i) EXPECT_NEAR(got[i], want[i], 1e-8);
}

TEST(Etkf, PosteriorSpreadShrinks) {
  Rng rng(4);
  Ensemble ens = make_gaussian_ensemble(30, 5, rng);
  const double spread0 = ens.mean_spread();
  std::vector<double> y(5, 0.0);
  IdentityObs h(5);
  DiagonalR r(5, 1.0);
  ETKF filter(EtkfConfig{});
  filter.analyze(ens, y, h, r);
  EXPECT_LT(ens.mean_spread(), spread0);
  // With R = I and Pb ~ I, posterior variance ~ 1/2 prior.
  EXPECT_NEAR(ens.mean_spread(), spread0 / std::sqrt(2.0), 0.2 * spread0);
}

TEST(Letkf, MatchesEtkfWithHugeLocalizationRadius) {
  Rng rng(5);
  const std::size_t nx = 4, ny = 4, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 30;
  Ensemble a = make_gaussian_ensemble(m, d, rng);
  Ensemble b(m, d);
  b.data() = a.data();

  std::vector<double> y(d);
  Rng yrng(6);
  yrng.fill_gaussian(y, 0.5, 1.0);
  IdentityObs h(d, nx, ny, nlev);
  DiagonalR r(d, 1.0);

  EtkfConfig ecfg;
  ETKF etkf(ecfg);
  etkf.analyze(a, y, h, r);

  LetkfConfig lcfg;
  lcfg.nx = nx;
  lcfg.ny = ny;
  lcfg.n_levels = nlev;
  lcfg.domain_m = 1.0;        // tiny domain
  lcfg.cutoff_m = 1e9;        // localization effectively off
  lcfg.rossby_radius_m = 0.0; // no vertical decay
  lcfg.rtps = 0.0;
  LETKF letkf(lcfg);
  letkf.analyze(b, y, h, r);

  const auto ma = a.mean();
  const auto mb = b.mean();
  for (std::size_t i = 0; i < d; ++i) EXPECT_NEAR(mb[i], ma[i], 1e-6);
}

TEST(Letkf, DistantObservationsDoNotUpdate) {
  // One observation in a corner; analysis beyond the cutoff must equal the
  // forecast exactly.
  Rng rng(7);
  const std::size_t nx = 16, ny = 16;
  const std::size_t d = nx * ny;
  Ensemble ens = make_gaussian_ensemble(12, d, rng);
  const auto prior = ens.data();

  std::vector<std::size_t> idx{0};  // observe cell (0,0) of level 0
  std::vector<ObsLocation> locs{{0, 0, 0}};
  SubsampleObs h(d, idx, locs);
  DiagonalR r(1, 1.0);
  std::vector<double> y{5.0};

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = 1;
  cfg.domain_m = 16.0;  // dx = 1
  cfg.cutoff_m = 3.0;   // support = 3 cells
  cfg.rtps = 0.0;
  LETKF letkf(cfg);
  letkf.analyze(ens, y, h, r);

  // Observed cell moved toward the observation...
  EXPECT_GT(ens.mean()[0], prior(0, 0) - 1e-12);
  // ...but the far corner (8, 8) is untouched for every member (up to the
  // mean/perturbation recombination round-off of the no-obs fast path).
  const std::size_t far = 8 * nx + 8;
  for (std::size_t k = 0; k < ens.size(); ++k)
    EXPECT_NEAR(ens.member(k)[far], prior(k, far), 1e-12);
}

TEST(Letkf, RtpsRestoresSpread) {
  Rng rng(8);
  const std::size_t nx = 8, ny = 8;
  const std::size_t d = nx * ny;
  Ensemble e1 = make_gaussian_ensemble(15, d, rng);
  Ensemble e2(15, d);
  e2.data() = e1.data();
  std::vector<double> y(d, 0.0);
  IdentityObs h(d, nx, ny, 1);
  DiagonalR r(d, 1.0);

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = 1;
  cfg.domain_m = 8.0;
  cfg.cutoff_m = 4.0;
  cfg.rtps = 0.0;
  LETKF noRtps(cfg);
  noRtps.analyze(e1, y, h, r);

  cfg.rtps = 0.9;
  LETKF withRtps(cfg);
  withRtps.analyze(e2, y, h, r);

  EXPECT_GT(e2.mean_spread(), e1.mean_spread());
}

TEST(Letkf, CachedPlanMatchesFreshFilterAcrossCycles) {
  // A static observation network: one filter reusing its prepared plan over
  // several cycles must produce bitwise the same analyses as a fresh filter
  // (fresh plan) built every cycle.
  Rng rng(11);
  const std::size_t nx = 12, ny = 10, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 8;

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = nlev;
  cfg.domain_m = 4.0e6;
  cfg.cutoff_m = 1.5e6;
  cfg.rtps = 0.3;
  IdentityObs h(d, nx, ny, nlev);
  DiagonalR r(d, 0.8);

  Ensemble cached = make_gaussian_ensemble(m, d, rng);
  Ensemble fresh(m, d);
  fresh.data() = cached.data();

  LETKF keeper(cfg);
  EXPECT_FALSE(keeper.has_plan());
  keeper.prepare(h, r);
  EXPECT_TRUE(keeper.has_plan());

  Rng yrng(12);
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<double> y(d);
    yrng.fill_gaussian(y, 0.0, 1.0);
    keeper.analyze(cached, y, h, r);
    LETKF once(cfg);
    once.analyze(fresh, y, h, r);
    EXPECT_EQ(0, std::memcmp(cached.data().flat().data(), fresh.data().flat().data(),
                             m * d * sizeof(double)))
        << "cycle " << cycle;
  }
}

TEST(Letkf, PlanInvalidatedOnNetworkChange) {
  // A filter whose plan was warmed on a different network (or different R)
  // must rebuild and match a fresh filter that only ever saw the final one.
  Rng rng(13);
  const std::size_t nx = 12, ny = 12, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 8;

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = nlev;
  cfg.domain_m = 4.0e6;
  cfg.cutoff_m = 1.5e6;

  IdentityObs h_dense(d, nx, ny, nlev);
  DiagonalR r_dense(d, 1.0);
  SubsampleObs h_sparse = SubsampleObs::strided_grid(nx, ny, nlev, 3);
  const std::size_t p = h_sparse.obs_dim();
  DiagonalR r_sparse(p, 0.5);

  Ensemble prior = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y_dense(d), y_sparse(p);
  Rng yrng(14);
  yrng.fill_gaussian(y_dense, 0.0, 1.0);
  yrng.fill_gaussian(y_sparse, 0.0, 1.0);

  // Warm on the dense network, then analyze the sparse one.
  Ensemble a(m, d), b(m, d);
  a.data() = prior.data();
  LETKF reused(cfg);
  reused.analyze(a, y_dense, h_dense, r_dense);
  a.data() = prior.data();
  reused.analyze(a, y_sparse, h_sparse, r_sparse);

  b.data() = prior.data();
  LETKF only_sparse(cfg);
  only_sparse.analyze(b, y_sparse, h_sparse, r_sparse);
  EXPECT_EQ(0, std::memcmp(a.data().flat().data(), b.data().flat().data(),
                           m * d * sizeof(double)));

  // Same network, different R variances: also a different plan.
  DiagonalR r_scaled(p, 2.0);
  a.data() = prior.data();
  reused.analyze(a, y_sparse, h_sparse, r_scaled);
  b.data() = prior.data();
  LETKF only_scaled(cfg);
  only_scaled.analyze(b, y_sparse, h_sparse, r_scaled);
  EXPECT_EQ(0, std::memcmp(a.data().flat().data(), b.data().flat().data(),
                           m * d * sizeof(double)));
}

TEST(Letkf, GroupedSolvesMatchUngroupedAcrossThreads) {
  // With no vertical localization decay (rossby_radius_m = 0), an identity
  // network, and uniform R, both levels of every grid column resolve to the
  // same local problem: grouping must halve the eigensolves and change
  // nothing in the result, at any thread count.
  Rng rng(15);
  const std::size_t nx = 10, ny = 10, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 10;

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = nlev;
  cfg.domain_m = 4.0e6;
  cfg.cutoff_m = 1.5e6;
  cfg.rossby_radius_m = 0.0;
  cfg.collect_timings = true;

  IdentityObs h(d, nx, ny, nlev);
  DiagonalR r(d, 1.0);
  Ensemble prior = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y(d);
  Rng yrng(16);
  yrng.fill_gaussian(y, 0.0, 1.0);

  Ensemble ref(m, d);
  ref.data() = prior.data();
  {
    cfg.group_columns = false;
    cfg.n_threads = 1;
    LETKF letkf(cfg);
    letkf.analyze(ref, y, h, r);
    EXPECT_EQ(letkf.timings().groups, letkf.timings().columns);
  }
  for (const bool grouped : {false, true}) {
    for (const std::size_t nt : {std::size_t{1}, std::size_t{3}}) {
      cfg.group_columns = grouped;
      cfg.n_threads = nt;
      LETKF letkf(cfg);
      Ensemble work(m, d);
      work.data() = prior.data();
      letkf.analyze(work, y, h, r);
      EXPECT_EQ(0, std::memcmp(ref.data().flat().data(), work.data().flat().data(),
                               m * d * sizeof(double)))
          << "grouped=" << grouped << " threads=" << nt;
      if (grouped) {
        EXPECT_EQ(letkf.timings().groups, letkf.timings().columns / 2);
      }
    }
  }
}

std::vector<simd::SimdLevel> available_simd_levels() {
  std::vector<simd::SimdLevel> out;
  for (simd::SimdLevel lv :
       {simd::SimdLevel::Scalar, simd::SimdLevel::Avx2, simd::SimdLevel::Avx2Fma})
    if (simd::simd_level_available(lv)) out.push_back(lv);
  return out;
}

TEST(Letkf, LaneBatchedMatchesSequentialBitwiseAcrossLevelsAndThreads) {
  // A strided sparse network on an odd-size grid: local problem sizes vary
  // across columns and worker chunks hold group counts that are not lane
  // multiples, so the batched run exercises full batches, size-run tails,
  // and the sequential remainder path together. The result must be bitwise
  // identical to the pure sequential path at every dispatch level and any
  // thread count.
  Rng rng(21);
  const std::size_t nx = 11, ny = 11, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 8;

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = nlev;
  cfg.domain_m = 4.0e6;
  cfg.cutoff_m = 1.5e6;
  cfg.collect_timings = true;

  SubsampleObs h = SubsampleObs::strided_grid(nx, ny, nlev, 3);
  const std::size_t p = h.obs_dim();
  DiagonalR r(p, 0.5);
  Ensemble prior = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y(p);
  Rng yrng(22);
  yrng.fill_gaussian(y, 0.0, 1.0);

  const simd::SimdLevel orig = simd::active_simd_level();
  for (const simd::SimdLevel lv : available_simd_levels()) {
    ASSERT_TRUE(simd::force_simd_level(lv));
    Ensemble ref(m, d);
    ref.data() = prior.data();
    {
      cfg.lane_batch = false;
      cfg.n_threads = 1;
      LETKF letkf(cfg);
      letkf.analyze(ref, y, h, r);
      EXPECT_EQ(letkf.timings().batched_columns, 0u);
    }
    for (const std::size_t nt : {std::size_t{1}, std::size_t{3}}) {
      cfg.lane_batch = true;
      cfg.n_threads = nt;
      LETKF letkf(cfg);
      Ensemble work(m, d);
      work.data() = prior.data();
      letkf.analyze(work, y, h, r);
      EXPECT_EQ(0, std::memcmp(ref.data().flat().data(), work.data().flat().data(),
                               m * d * sizeof(double)))
          << simd::simd_level_name(lv) << " threads=" << nt;
      // Occupancy accounting: every column is either batched or sequential,
      // and this network produces work for both paths.
      EXPECT_EQ(letkf.timings().batched_columns + letkf.timings().scalar_columns,
                letkf.timings().columns);
      EXPECT_GT(letkf.timings().batched_columns, 0u);
    }
  }
  simd::force_simd_level(orig);
}

TEST(Letkf, LaneBatchedFallbackMatchesSequentialUnderSweepStarvation) {
  // A sweep budget too small for some local problems makes convergence vary
  // per column, so lane batches mix converged and exhausted lanes. With
  // fallback enabled both paths must keep the forecast for exactly the same
  // columns (bitwise) and report identical failure stats; with fallback
  // disabled both must fail without touching the ensemble.
  Rng rng(23);
  const std::size_t nx = 10, ny = 10, nlev = 2;
  const std::size_t d = nx * ny * nlev;
  const std::size_t m = 8;

  LetkfConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.n_levels = nlev;
  cfg.domain_m = 4.0e6;
  cfg.cutoff_m = 1.5e6;

  IdentityObs h(d, nx, ny, nlev);
  DiagonalR r(d, 1.0);
  Ensemble prior = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y(d);
  Rng yrng(24);
  yrng.fill_gaussian(y, 0.0, 1.0);

  for (const int sweeps : {1, 4}) {
    cfg.eigh_max_sweeps = sweeps;
    cfg.eigh_fallback = true;
    AnalysisStats stats_seq, stats_bat;
    Ensemble a(m, d), b(m, d);
    a.data() = prior.data();
    cfg.lane_batch = false;
    {
      LETKF letkf(cfg);
      ASSERT_TRUE(letkf.try_analyze(a, y, h, r, {}, &stats_seq).ok());
    }
    b.data() = prior.data();
    cfg.lane_batch = true;
    {
      LETKF letkf(cfg);
      ASSERT_TRUE(letkf.try_analyze(b, y, h, r, {}, &stats_bat).ok());
    }
    EXPECT_EQ(0,
              std::memcmp(a.data().flat().data(), b.data().flat().data(), m * d * sizeof(double)))
        << "max_sweeps=" << sweeps;
    EXPECT_EQ(stats_seq.solver_failures, stats_bat.solver_failures);
    EXPECT_EQ(stats_seq.fallback_columns, stats_bat.fallback_columns);
    if (sweeps == 1) EXPECT_GT(stats_bat.solver_failures, 0u);
  }

  // Fallback disabled: both paths fail whole-analysis, ensemble untouched.
  cfg.eigh_max_sweeps = 1;
  cfg.eigh_fallback = false;
  for (const bool batched : {false, true}) {
    cfg.lane_batch = batched;
    LETKF letkf(cfg);
    Ensemble w(m, d);
    w.data() = prior.data();
    const Status s = letkf.try_analyze(w, y, h, r);
    EXPECT_FALSE(s.ok()) << "lane_batch=" << batched;
    EXPECT_EQ(0, std::memcmp(prior.data().flat().data(), w.data().flat().data(),
                             m * d * sizeof(double)));
  }
}

TEST(Ensf, RecoversPosteriorForScalarGaussian) {
  // Prior N(0,1) (large ensemble), obs y = 2 with R = 1: posterior is
  // N(1, 1/2). EnSF is a sampling approximation — verify mean and variance
  // within Monte-Carlo tolerance.
  Rng rng(9);
  const std::size_t m = 300, d = 1;
  Ensemble ens = make_gaussian_ensemble(m, d, rng);
  std::vector<double> y{2.0};
  IdentityObs h(d);
  DiagonalR r(d, 1.0);
  EnsfConfig cfg;
  cfg.euler_steps = 200;
  cfg.relax_spread = 0.0;  // raw posterior, no spread regularization
  EnSF filter(cfg);
  filter.analyze(ens, y, h, r);
  const auto mu = ens.mean();
  const auto sd = ens.stddev();
  EXPECT_NEAR(mu[0], 1.0, 0.2);
  EXPECT_NEAR(sd[0] * sd[0], 0.5, 0.25);
}

TEST(Ensf, MovesTowardObservationsInHighDim) {
  Rng rng(10);
  const std::size_t m = 20, d = 200;
  Ensemble ens = make_gaussian_ensemble(m, d, rng, 0.0, 1.0);
  std::vector<double> truth(d, 2.0);
  IdentityObs h(d);
  DiagonalR r(d, 0.25);
  const double rmse0 = rmse_vs_truth(ens, truth);
  EnSF filter(EnsfConfig::stabilized());
  std::vector<double> y = truth;  // perfect obs (error folded into R)
  filter.analyze(ens, y, h, r);
  EXPECT_LT(rmse_vs_truth(ens, truth), 0.5 * rmse0);
}

TEST(Ensf, KernelSmoothingImprovesSmallEnsembleContraction) {
  // The raw Eq.-16 score with 20 isolated members in 200 dimensions barely
  // contracts (particle-degeneracy-like pinning); the kernel-smoothed score
  // restores the pull toward observations. This is the key ablation finding
  // documented in EXPERIMENTS.md.
  Rng rng(20);
  const std::size_t m = 20, d = 200;
  Ensemble raw = make_gaussian_ensemble(m, d, rng, 0.0, 1.0);
  Ensemble smooth(m, d);
  smooth.data() = raw.data();
  std::vector<double> truth(d, 2.0);
  IdentityObs h(d);
  DiagonalR r(d, 1.0);
  const double rmse0 = rmse_vs_truth(raw, truth);

  EnsfConfig raw_cfg;  // faithful defaults
  EnSF f_raw(raw_cfg);
  f_raw.analyze(raw, truth, h, r);

  EnSF f_smooth(EnsfConfig::stabilized());
  f_smooth.analyze(smooth, truth, h, r);

  const double e_raw = rmse_vs_truth(raw, truth);
  const double e_smooth = rmse_vs_truth(smooth, truth);
  EXPECT_LT(e_smooth, 0.6 * e_raw);
  EXPECT_LT(e_smooth, 0.5 * rmse0);
}

TEST(Ensf, ReproducibleGivenSeed) {
  Rng rng(11);
  Ensemble e1 = make_gaussian_ensemble(10, 5, rng);
  Ensemble e2(10, 5);
  e2.data() = e1.data();
  std::vector<double> y(5, 1.0);
  IdentityObs h(5);
  DiagonalR r(5, 1.0);
  EnsfConfig cfg;
  cfg.seed = 777;
  EnSF f1(cfg), f2(cfg);
  f1.analyze(e1, y, h, r);
  f2.analyze(e2, y, h, r);
  for (std::size_t k = 0; k < 10; ++k)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_DOUBLE_EQ(e1.member(k)[i], e2.member(k)[i]);
}

TEST(Ensf, RelaxSpreadMatchesPrior) {
  Rng rng(12);
  Ensemble ens = make_gaussian_ensemble(40, 8, rng);
  const auto prior_sd = ens.stddev();
  std::vector<double> y(8, 0.5);
  IdentityObs h(8);
  DiagonalR r(8, 1.0);
  EnsfConfig cfg;
  cfg.relax_spread = 1.0;  // full relaxation to prior spread
  EnSF filter(cfg);
  filter.analyze(ens, y, h, r);
  const auto post_sd = ens.stddev();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(post_sd[i], prior_sd[i], 1e-9);
}

TEST(Ensf, MinibatchScoreStillAssimilates) {
  Rng rng(13);
  Ensemble ens = make_gaussian_ensemble(40, 50, rng);
  std::vector<double> truth(50, 1.5);
  IdentityObs h(50);
  DiagonalR r(50, 0.25);
  const double rmse0 = rmse_vs_truth(ens, truth);
  EnsfConfig cfg = EnsfConfig::stabilized();
  cfg.minibatch = 10;  // J < M (Eq. 15)
  EnSF filter(cfg);
  filter.analyze(ens, truth, h, r);
  EXPECT_LT(rmse_vs_truth(ens, truth), 0.6 * rmse0);
}

TEST(Ensf, HandlesNonlinearArctanObs) {
  Rng rng(14);
  const std::size_t d = 40;
  Ensemble ens = make_gaussian_ensemble(40, d, rng, 0.0, 1.0);
  std::vector<double> truth(d);
  rng.fill_gaussian(truth, 0.0, 1.0);
  ArctanObs h(d);
  DiagonalR r(d, 0.01);
  std::vector<double> y(d);
  h.apply(truth, y);
  const double rmse0 = rmse_vs_truth(ens, truth);
  EnsfConfig cfg;
  cfg.euler_steps = 120;
  EnSF filter(cfg);
  filter.analyze(ens, y, h, r);
  EXPECT_LT(rmse_vs_truth(ens, truth), rmse0);
}

// ------------------------------------------------------------------ OSSE ---

TEST(Osse, FreeRunHasEqualPriorAndPost) {
  Lorenz96Config mc;
  mc.dim = 40;
  Lorenz96 truth_model(mc), fcst_model(mc);
  IdentityObs h(mc.dim);
  DiagonalR r(mc.dim, 1.0);
  OsseConfig cfg;
  cfg.cycles = 5;
  cfg.n_members = 5;
  OsseRunner runner(cfg, truth_model, fcst_model, h, r, /*filter=*/nullptr);
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.1;
  const auto metrics = runner.run(truth0);
  ASSERT_EQ(metrics.size(), 5u);
  for (const auto& m : metrics) {
    EXPECT_DOUBLE_EQ(m.rmse_prior, m.rmse_post);
    EXPECT_DOUBLE_EQ(m.spread_prior, m.spread_post);
  }
}

TEST(Osse, FreeRunIsPureEnsembleForecast) {
  // The paper's "SQG only" configuration: filter == nullptr must reduce the
  // runner to independent member integrations — no observation influence, no
  // hidden perturbations — while still driving hooks and retaining truth.
  Lorenz96Config mc;
  mc.dim = 20;
  mc.steps_per_window = 5;
  Lorenz96 truth_model(mc), fcst_model(mc);
  IdentityObs h(mc.dim);
  DiagonalR r(mc.dim, 1.0);

  OsseConfig cfg;
  cfg.cycles = 4;
  cfg.n_members = 4;
  cfg.seed = 17;

  std::vector<double> truth0(mc.dim, 8.0);
  truth0[3] += 0.05;
  Ensemble init(cfg.n_members, mc.dim);
  Rng rng(3);
  for (std::size_t m = 0; m < cfg.n_members; ++m) {
    auto row = init.member(m);
    for (std::size_t i = 0; i < row.size(); ++i) row[i] = truth0[i] + rng.gaussian(0.0, 0.5);
  }

  OsseRunner runner(cfg, truth_model, fcst_model, h, r, /*filter=*/nullptr);
  int hook_calls = 0;
  runner.set_post_analysis_hook([&](int cycle, std::span<const double> mean) {
    EXPECT_EQ(cycle, hook_calls);
    EXPECT_EQ(mean.size(), static_cast<std::size_t>(mc.dim));
    ++hook_calls;
  });
  const auto metrics = runner.run(truth0, &init);

  ASSERT_EQ(metrics.size(), static_cast<std::size_t>(cfg.cycles));
  EXPECT_EQ(hook_calls, cfg.cycles);

  // Each member must equal its own direct model integration, bitwise.
  Lorenz96 direct(mc);
  for (std::size_t m = 0; m < cfg.n_members; ++m) {
    std::vector<double> state(init.member(m).begin(), init.member(m).end());
    for (int k = 0; k < cfg.cycles; ++k) direct.forecast(state);
    const auto got = runner.ensemble().member(m);
    EXPECT_EQ(0, std::memcmp(got.data(), state.data(), state.size() * sizeof(double)))
        << "member " << m;
  }

  // And the retained truth is the direct truth integration, bitwise.
  std::vector<double> truth = truth0;
  for (int k = 0; k < cfg.cycles; ++k) direct.forecast(truth);
  ASSERT_EQ(runner.final_truth().size(), truth.size());
  EXPECT_EQ(0, std::memcmp(runner.final_truth().data(), truth.data(),
                           truth.size() * sizeof(double)));
}

TEST(Osse, EnsfBeatsFreeRunOnLorenz96) {
  Lorenz96Config mc;
  mc.dim = 40;
  mc.steps_per_window = 10;  // 0.1 time units between obs
  Lorenz96 truth_model(mc), fcst_a(mc), fcst_b(mc);
  IdentityObs h(mc.dim);
  DiagonalR r(mc.dim, 1.0);

  // Spin the truth onto the attractor.
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  Lorenz96 spin(mc);
  for (int i = 0; i < 500; ++i) spin.step(truth0);

  OsseConfig cfg;
  cfg.cycles = 30;
  cfg.n_members = 20;
  cfg.init_spread = 1.0;
  cfg.seed = 99;

  EnSF filter(EnsfConfig::stabilized());
  OsseRunner da_run(cfg, truth_model, fcst_a, h, r, &filter);
  const auto da_metrics = da_run.run(truth0);

  OsseRunner free_run(cfg, truth_model, fcst_b, h, r, nullptr);
  const auto free_metrics = free_run.run(truth0);

  // Average analysis RMSE over the last 10 cycles.
  double da_err = 0.0, free_err = 0.0;
  for (int k = 20; k < 30; ++k) {
    da_err += da_metrics[static_cast<std::size_t>(k)].rmse_post;
    free_err += free_metrics[static_cast<std::size_t>(k)].rmse_post;
  }
  EXPECT_LT(da_err, 0.4 * free_err);
  // And the filter tracks near the observation-noise floor.
  EXPECT_LT(da_err / 10.0, 1.4);
}

TEST(Osse, ModelErrorInjectionDegradesForecasts) {
  Lorenz96Config mc;
  mc.dim = 40;
  Lorenz96 truth_model(mc), fcst_a(mc), fcst_b(mc);
  IdentityObs h(mc.dim);
  DiagonalR r(mc.dim, 1.0);
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[5] += 0.02;
  Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);

  models::ModelErrorConfig mec;
  mec.reference_scale = 3.0;
  models::ModelErrorProcess me(mec);

  OsseConfig cfg;
  cfg.cycles = 10;
  cfg.n_members = 10;
  cfg.seed = 5;

  OsseRunner clean(cfg, truth_model, fcst_a, h, r, nullptr);
  const auto m_clean = clean.run(truth0);

  cfg.inject_model_error = true;
  OsseRunner noisy(cfg, truth_model, fcst_b, h, r, nullptr, &me);
  const auto m_noisy = noisy.run(truth0);

  double e_clean = 0.0, e_noisy = 0.0;
  for (int k = 0; k < 5; ++k) {
    e_clean += m_clean[static_cast<std::size_t>(k)].rmse_prior;
    e_noisy += m_noisy[static_cast<std::size_t>(k)].rmse_prior;
  }
  EXPECT_GT(e_noisy, e_clean);
}

}  // namespace
}  // namespace turbda::da
