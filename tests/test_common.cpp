#include <gtest/gtest.h>

#include <thread>

#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "common/timer.hpp"

namespace turbda {
namespace {

TEST(Check, RequirePassesOnTrue) { EXPECT_NO_THROW(TURBDA_REQUIRE(1 + 1 == 2, "fine")); }

TEST(Check, RequireThrowsWithMessage) {
  try {
    TURBDA_REQUIRE(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string w = e.what();
    EXPECT_NE(w.find("context 42"), std::string::npos);
    EXPECT_NE(w.find("test_common.cpp"), std::string::npos);
  }
}

TEST(MathUtils, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(64), 6);
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(MathUtils, VectorOps) {
  const std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(rms(a), 5.0 / std::sqrt(2.0));
  const std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  std::vector<double> y{1.0, 1.0};
  axpy(2.0, b, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(MathUtils, RmsOfEmptyThrows) {
  std::vector<double> empty;
  EXPECT_THROW((void)rms(empty), Error);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
}

TEST(Timer, AccumTimerSums) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_GT(t.seconds(), first);
}

TEST(Timer, WallTimerResetRestartsTheClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  // Right after reset the elapsed time must be far below the pre-reset wait.
  EXPECT_LT(t.milliseconds(), 15.0);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, AccumTimerStartWhileRunningKeepsTheOpenInterval) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // A redundant start() must NOT re-zero the running interval: the full
  // 20ms+ wait above still counts when we stop below.
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), 0.015);
}

TEST(Timer, AccumTimerStopWithoutStartIsANoOp) {
  AccumTimer t;
  t.stop();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  // stop() twice after one interval must not double-count it.
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  const double once = t.seconds();
  t.stop();
  EXPECT_DOUBLE_EQ(t.seconds(), once);
}

TEST(Timer, AccumTimerResetClearsTotalAndRunningState) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  // reset() also cleared running_: a stop() without a new start adds nothing.
  t.stop();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

}  // namespace
}  // namespace turbda
