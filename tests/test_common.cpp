#include <gtest/gtest.h>

#include <thread>

#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "common/timer.hpp"

namespace turbda {
namespace {

TEST(Check, RequirePassesOnTrue) { EXPECT_NO_THROW(TURBDA_REQUIRE(1 + 1 == 2, "fine")); }

TEST(Check, RequireThrowsWithMessage) {
  try {
    TURBDA_REQUIRE(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string w = e.what();
    EXPECT_NE(w.find("context 42"), std::string::npos);
    EXPECT_NE(w.find("test_common.cpp"), std::string::npos);
  }
}

TEST(MathUtils, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(64), 6);
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(MathUtils, VectorOps) {
  const std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(rms(a), 5.0 / std::sqrt(2.0));
  const std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  std::vector<double> y{1.0, 1.0};
  axpy(2.0, b, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(MathUtils, RmsOfEmptyThrows) {
  std::vector<double> empty;
  EXPECT_THROW((void)rms(empty), Error);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
}

TEST(Timer, AccumTimerSums) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_GT(t.seconds(), first);
}

}  // namespace
}  // namespace turbda
