#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/math_utils.hpp"
#include "fft/fft.hpp"
#include "rng/rng.hpp"
#include "sqg/sqg.hpp"

// --- global allocation counter ----------------------------------------------
// Backs the zero-per-step-allocation test: replacing the (replaceable) global
// operators is binary-wide, and the test only inspects deltas across a
// warmed-up step() call, so the rest of the suite is unaffected.
namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// The replacements route new/delete through malloc/free as a matched set;
// GCC's -Wmismatched-new-delete cannot see that pairing across the
// replaceable-operator boundary, so silence it for these definitions only.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t sz) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t sz) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// Over-aligned overloads count too, so allocations from a future SIMD-aligned
// buffer type (the ROADMAP's AVX2 step) cannot slip past the test.
namespace {
void* counted_aligned_alloc(std::size_t sz, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = std::max(static_cast<std::size_t>(al), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, a, sz ? sz : 1) == 0) return p;
  throw std::bad_alloc{};
}
}  // namespace
void* operator new(std::size_t sz, std::align_val_t al) { return counted_aligned_alloc(sz, al); }
void* operator new[](std::size_t sz, std::align_val_t al) { return counted_aligned_alloc(sz, al); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace turbda::sqg {
namespace {

using turbda::rng::Rng;

SqgConfig inviscid_config(std::size_t n = 64) {
  SqgConfig cfg;
  cfg.n = n;
  cfg.t_diab = 0.0;       // no thermal relaxation
  cfg.r_ekman = 0.0;      // no Ekman damping
  cfg.diff_efold = 1e30;  // hyperdiffusion effectively off
  return cfg;
}

TEST(Sqg, ZeroStateStaysZero) {
  SqgModel model(inviscid_config(16));
  std::vector<double> theta(model.dim(), 0.0);
  model.step(theta, 10);
  for (double v : theta) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Sqg, SpectralGridRoundTrip) {
  SqgModel model(inviscid_config(32));
  Rng rng(5);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 8);
  std::vector<Cplx> spec(model.spec_dim());
  model.to_spectral(theta, spec);
  std::vector<double> back(model.dim());
  model.to_grid(spec, back);
  for (std::size_t i = 0; i < theta.size(); ++i) EXPECT_NEAR(back[i], theta[i], 1e-9);
}

TEST(Sqg, RandomInitHitsRequestedRms) {
  SqgModel model(inviscid_config(64));
  Rng rng(6);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 2.5, 4);
  const auto lvl0 = std::span<const double>(theta).first(model.n() * model.n());
  const auto lvl1 = std::span<const double>(theta).last(model.n() * model.n());
  EXPECT_NEAR(rms(lvl0), 2.5, 1e-9);
  EXPECT_NEAR(rms(lvl1), 2.5, 1e-9);
}

TEST(Sqg, InversionSatisfiesBoundaryRelation) {
  // For a bottom-only theta (theta1 = 0), psi0 = -theta0 / (kappa tanh(mu))
  // and psi1 = -theta0 / (kappa sinh(mu)) — check on a single mode.
  SqgConfig cfg = inviscid_config(32);
  SqgModel model(cfg);
  const std::size_t n = cfg.n, nh = n / 2 + 1, ns = n * nh;
  std::vector<Cplx> theta(model.spec_dim(), Cplx(0, 0)), psi(model.spec_dim());
  const long mx = 3, my = 2;  // half layout: row = my (>= 0 here), column = mx
  const std::size_t p = static_cast<std::size_t>(my) * nh + static_cast<std::size_t>(mx);
  theta[p] = Cplx(1.0, -0.5);  // level 0 only
  model.invert(theta, psi);

  const double k = kTwoPi * std::sqrt(static_cast<double>(mx * mx + my * my)) / cfg.L;
  const double kappa = std::sqrt(cfg.nsq) * k / cfg.f;
  const double mu = kappa * cfg.H;
  const Cplx want0 = -theta[p] / (kappa * std::tanh(mu));
  const Cplx want1 = -theta[p] / (kappa * std::sinh(mu));
  EXPECT_NEAR(psi[p].real(), want0.real(), 1e-9 * std::abs(want0));
  EXPECT_NEAR(psi[p].imag(), want0.imag(), 1e-9 * std::abs(want0));
  EXPECT_NEAR(psi[ns + p].real(), want1.real(), 1e-9 * std::abs(want1));
  EXPECT_NEAR(psi[ns + p].imag(), want1.imag(), 1e-9 * std::abs(want1));
}

TEST(Sqg, EadyGrowthRateMatchesTextbookFormula) {
  // sigma = k (U/mu) sqrt[(coth(mu/2) - mu/2)(mu/2 - tanh(mu/2))] for the
  // symmetric-shear Eady problem (e.g. Vallis 2017, §9.
  // Our eady_growth_rate builds the 2x2 stability matrix directly; the two
  // must agree for every unstable wavenumber.
  SqgConfig cfg = inviscid_config(64);
  SqgModel model(cfg);
  for (int m = 1; m <= 12; ++m) {
    const double k = kTwoPi * m / cfg.L;
    const double mu = std::sqrt(cfg.nsq) * k * cfg.H / cfg.f;
    const double half = 0.5 * mu;
    const double term1 = 1.0 / std::tanh(half) - half;
    const double term2 = half - std::tanh(half);
    const double want = (term1 > 0.0) ? k * (cfg.U / mu) * std::sqrt(term1 * term2) : 0.0;
    EXPECT_NEAR(model.eady_growth_rate(m), want, 1e-12 + 1e-9 * want) << "mode " << m;
  }
}

TEST(Sqg, ShortEadyWavesAreNeutral) {
  SqgConfig cfg = inviscid_config(64);
  SqgModel model(cfg);
  // Eady cutoff mu_c ~= 2.399; with these parameters modes m >= 8 are neutral.
  EXPECT_GT(model.eady_growth_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(model.eady_growth_rate(10), 0.0);
}

TEST(Sqg, NonlinearSolverReproducesLinearEadyGrowth) {
  // Initialize a single zonal mode (ky = 0) at tiny amplitude; for such modes
  // the Jacobian vanishes identically, so the solver integrates the linear
  // Eady dynamics and its growth must match theory.
  SqgConfig cfg = inviscid_config(32);
  cfg.dt = 3600.0;
  SqgModel model(cfg);
  const int m = 2;
  const double sigma = model.eady_growth_rate(m);
  ASSERT_GT(sigma, 0.0);

  const std::size_t n = cfg.n, nn = n * n;
  std::vector<double> theta(model.dim());
  // Grid-space single mode on the bottom boundary.
  for (std::size_t jy = 0; jy < n; ++jy)
    for (std::size_t jx = 0; jx < n; ++jx)
      theta[jy * n + jx] = 1e-7 * std::cos(kTwoPi * m * static_cast<double>(jx) / n);

  // The IC projects onto growing and decaying normal modes equally; the
  // stability matrix is non-normal, so the apparent growth overshoots until
  // the decaying mode is gone. Spin up ~5 e-folds before measuring.
  const int spinup = 260, measure = 130;
  model.step(theta, spinup);
  const double r1 = rms(std::span<const double>(theta).first(nn));
  model.step(theta, measure);
  const double r2 = rms(std::span<const double>(theta).first(nn));
  const double got = std::log(r2 / r1) / (measure * cfg.dt);
  EXPECT_NEAR(got, sigma, 0.02 * sigma);
}

TEST(Sqg, ThermalRelaxationDampsWithoutShear) {
  SqgConfig cfg = inviscid_config(32);
  cfg.U = 0.0;               // no baroclinic energy source
  cfg.t_diab = 5.0 * 86400;  // 5-day relaxation
  SqgModel model(cfg);
  Rng rng(7);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  const double e0 = model.total_ke(theta);
  model.advance(theta, 5.0 * 86400);
  const double e1 = model.total_ke(theta);
  // After one relaxation time, KE should drop by roughly exp(-2) (psi ~ e^-t).
  EXPECT_LT(e1, 0.35 * e0);
  EXPECT_GT(e1, 0.01 * e0);
}

TEST(Sqg, HyperdiffusionKillsSmallScalesFirst) {
  SqgConfig cfg = inviscid_config(64);
  cfg.U = 0.0;
  cfg.diff_efold = 450.0;  // strong del^8 smoothing
  SqgModel model(cfg);
  Rng rng(8);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 21);  // broad-band IC up to the 2/3 cutoff
  auto spec_before = model.ke_spectrum(theta, 0);
  model.step(theta, 20);
  auto spec_after = model.ke_spectrum(theta, 0);
  // del^8 falloff: large scales barely touched, cutoff scales strongly damped.
  ASSERT_GT(spec_before[3], 0.0);
  ASSERT_GT(spec_before[21], 0.0);
  EXPECT_GT(spec_after[3] / spec_before[3], 0.8);
  EXPECT_LT(spec_after[21] / spec_before[21], 0.2);
}

TEST(Sqg, BaroclinicTurbulenceGrowsFromSmallPerturbations) {
  SqgConfig cfg = inviscid_config(64);
  cfg.diff_efold = 86400.0 / 3.0;  // keep hyperdiffusion for stability
  cfg.dt = 1800.0;
  SqgModel model(cfg);
  Rng rng(9);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1e-4, 4);
  const double e0 = model.total_ke(theta);
  model.advance(theta, 20.0 * 86400);
  const double e1 = model.total_ke(theta);
  EXPECT_GT(e1, 100.0 * e0);  // baroclinic instability extracts energy
  for (double v : theta) ASSERT_TRUE(std::isfinite(v));
}

TEST(Sqg, SpectrumBinsSumToTotalKe) {
  SqgModel model(inviscid_config(64));
  Rng rng(10);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 8);
  const auto s0 = model.ke_spectrum(theta, 0);
  const auto s1 = model.ke_spectrum(theta, 1);
  double sum = 0.0;
  for (double v : s0) sum += v;
  for (double v : s1) sum += v;
  EXPECT_NEAR(sum, model.total_ke(theta), 1e-9 * sum);
}

TEST(Sqg, CflScalesWithTimeStep) {
  SqgConfig cfg = inviscid_config(32);
  SqgModel model(cfg);
  Rng rng(11);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  const double c1 = model.cfl(theta);
  SqgConfig cfg2 = cfg;
  cfg2.dt = 2.0 * cfg.dt;
  SqgModel model2(cfg2);
  const double c2 = model2.cfl(theta);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-9);
  EXPECT_GT(c1, 0.0);
}

TEST(Sqg, StepPreservesRealness) {
  SqgConfig cfg = inviscid_config(32);
  cfg.diff_efold = 86400.0;
  SqgModel model(cfg);
  Rng rng(12);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  model.step(theta, 50);
  for (double v : theta) ASSERT_TRUE(std::isfinite(v));
}

TEST(Sqg, AdvanceRoundsStepCountUp) {
  SqgConfig cfg = inviscid_config(16);
  SqgModel model(cfg);
  Rng rng(13);
  std::vector<double> a(model.dim());
  model.random_init(a, rng, 1.0, 3);
  auto b = a;
  model.advance(a, 2.5 * cfg.dt);  // should take 3 steps
  model.step(b, 3);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Sqg, ExplicitWorkspaceMatchesPerThreadDefault) {
  // An explicit SqgWorkspace (one per worker in the parallel ensemble loop)
  // must reproduce the convenience overloads bitwise, and reusing it across
  // calls must not leak state between integrations.
  SqgConfig cfg = inviscid_config(32);
  cfg.diff_efold = 86400.0;
  SqgModel model(cfg);
  Rng rng(21);
  std::vector<double> a(model.dim());
  model.random_init(a, rng, 1.0, 4);
  auto b = a;

  SqgWorkspace ws(cfg.n);
  model.step(a, 7);
  model.step(b, 7, ws);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "index " << i;

  EXPECT_DOUBLE_EQ(model.total_ke(a), model.total_ke(b, ws));
  EXPECT_DOUBLE_EQ(model.cfl(a), model.cfl(b, ws));
  const auto s1 = model.ke_spectrum(a, 0);
  const auto s2 = model.ke_spectrum(b, 0, ws);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t k = 0; k < s1.size(); ++k) EXPECT_DOUBLE_EQ(s1[k], s2[k]);

  // A workspace sized for the wrong grid is resized transparently.
  SqgWorkspace small(8);
  auto c = b;
  model.step(c, 1, small);
  model.step(b, 1, ws);
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(b[i], c[i]);
}

// --- half-spectrum vs full-spectrum path equivalence -------------------------
// Reference implementation on the full Hermitian-redundant n x n spectrum,
// replicating the pre-half-spectrum solver path: dense complex transforms,
// five separate per-point passes and explicit dealias/Ekman branches. The
// production half-spectrum path computes the same dynamics through different
// arithmetic and must agree to ~machine precision.
struct FullSpectrumReference {
  explicit FullSpectrumReference(const SqgConfig& c)
      : cfg(c), n(c.n), nn(n * n), fft(n, n), kx(nn), ky(nn), ksq(nn), inv_kappa(nn),
        inv_sinh(nn), inv_tanh(nn), hyperdiff(nn), dealias(nn), psi(2 * nn), work(nn), jac(nn),
        gu(nn), gv(nn), gtx(nn), gty(nn), gj(nn), k1(2 * nn), k2(2 * nn), k3(2 * nn), k4(2 * nn),
        stage(2 * nn), spec(2 * nn) {
    const double bigN = std::sqrt(cfg.nsq);
    const auto ni = static_cast<long>(n);
    const long kcut = ni / 3;
    double kmax_retained = 0.0;
    for (long jy = 0; jy < ni; ++jy) {
      const long my = (jy <= ni / 2) ? jy : jy - ni;
      for (long jx = 0; jx < ni; ++jx) {
        const long mx = (jx <= ni / 2) ? jx : jx - ni;
        const std::size_t p = static_cast<std::size_t>(jy) * n + static_cast<std::size_t>(jx);
        kx[p] = kTwoPi * static_cast<double>(mx) / cfg.L;
        ky[p] = kTwoPi * static_cast<double>(my) / cfg.L;
        ksq[p] = kx[p] * kx[p] + ky[p] * ky[p];
        dealias[p] = (std::labs(mx) <= kcut && std::labs(my) <= kcut) ? 1 : 0;
        if (dealias[p]) kmax_retained = std::max(kmax_retained, std::sqrt(ksq[p]));
        if (ksq[p] > 0.0) {
          const double kappa = bigN * std::sqrt(ksq[p]) / cfg.f;
          const double mu = kappa * cfg.H;
          inv_kappa[p] = 1.0 / kappa;
          inv_sinh[p] = (mu > 300.0) ? 0.0 : 1.0 / std::sinh(mu);
          inv_tanh[p] = 1.0 / std::tanh(mu);
        } else {
          inv_kappa[p] = inv_sinh[p] = inv_tanh[p] = 0.0;
        }
      }
    }
    for (std::size_t p = 0; p < nn; ++p) {
      const double kn = (kmax_retained > 0.0) ? std::sqrt(ksq[p]) / kmax_retained : 0.0;
      hyperdiff[p] = std::exp(-cfg.dt * std::pow(kn, cfg.diff_order) / cfg.diff_efold);
    }
    lambda = cfg.U / cfg.H;
    ubar[0] = cfg.symmetric_shear ? -0.5 * cfg.U : 0.0;
    ubar[1] = cfg.symmetric_shear ? +0.5 * cfg.U : cfg.U;
  }

  void to_spectral(std::span<const double> grid, std::span<Cplx> out) {
    for (int l = 0; l < 2; ++l)
      fft.forward_real(grid.subspan(static_cast<std::size_t>(l) * nn, nn),
                       out.subspan(static_cast<std::size_t>(l) * nn, nn));
    for (std::size_t i = 0; i < 2 * nn; ++i)
      if (!dealias[i % nn]) out[i] = Cplx(0.0, 0.0);
  }

  void tendency(std::span<const Cplx> th_spec, std::span<Cplx> out) {
    const Cplx* t0 = th_spec.data();
    const Cplx* t1 = th_spec.data() + nn;
    for (std::size_t p = 0; p < nn; ++p) {
      psi[p] = inv_kappa[p] * (t1[p] * inv_sinh[p] - t0[p] * inv_tanh[p]);
      psi[nn + p] = inv_kappa[p] * (t1[p] * inv_tanh[p] - t0[p] * inv_sinh[p]);
    }
    const double inv_tdiab = (cfg.t_diab > 0.0) ? 1.0 / cfg.t_diab : 0.0;
    for (std::size_t l = 0; l < 2; ++l) {
      const Cplx* th = th_spec.data() + l * nn;
      const Cplx* ps = psi.data() + l * nn;
      Cplx* dth = out.data() + l * nn;
      const Cplx iu(0.0, 1.0);
      for (std::size_t p = 0; p < nn; ++p) work[p] = -ps[p] * Cplx(kx[p], ky[p]);
      fft.inverse(work);
      for (std::size_t p = 0; p < nn; ++p) {
        gu[p] = work[p].real();
        gv[p] = work[p].imag();
      }
      for (std::size_t p = 0; p < nn; ++p) work[p] = th[p] * Cplx(-ky[p], kx[p]);
      fft.inverse(work);
      for (std::size_t p = 0; p < nn; ++p) {
        gtx[p] = work[p].real();
        gty[p] = work[p].imag();
      }
      for (std::size_t p = 0; p < nn; ++p) gj[p] = gu[p] * gtx[p] + gv[p] * gty[p];
      fft.forward_real(gj, jac);
      const double ub = ubar[l];
      for (std::size_t p = 0; p < nn; ++p) {
        Cplx t = dealias[p] ? -jac[p] : Cplx(0.0, 0.0);
        t -= iu * kx[p] * ub * th[p];
        t += lambda * iu * kx[p] * ps[p];
        t -= inv_tdiab * th[p];
        if (l == 0 && cfg.r_ekman != 0.0) t += cfg.r_ekman * ksq[p] * ps[p];
        dth[p] = t;
      }
    }
  }

  void step(std::span<double> grid, int nsteps) {
    to_spectral(grid, spec);
    const double dt = cfg.dt;
    for (int s = 0; s < nsteps; ++s) {
      tendency(spec, k1);
      for (std::size_t i = 0; i < 2 * nn; ++i) stage[i] = spec[i] + 0.5 * dt * k1[i];
      tendency(stage, k2);
      for (std::size_t i = 0; i < 2 * nn; ++i) stage[i] = spec[i] + 0.5 * dt * k2[i];
      tendency(stage, k3);
      for (std::size_t i = 0; i < 2 * nn; ++i) stage[i] = spec[i] + dt * k3[i];
      tendency(stage, k4);
      for (std::size_t i = 0; i < 2 * nn; ++i)
        spec[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
      for (std::size_t i = 0; i < 2 * nn; ++i) spec[i] *= hyperdiff[i % nn];
    }
    for (int l = 0; l < 2; ++l)
      fft.inverse_real(std::span<const Cplx>(spec).subspan(static_cast<std::size_t>(l) * nn, nn),
                       grid.subspan(static_cast<std::size_t>(l) * nn, nn));
  }

  SqgConfig cfg;
  std::size_t n, nn;
  fft::Fft2D fft;
  std::vector<double> kx, ky, ksq, inv_kappa, inv_sinh, inv_tanh, hyperdiff;
  std::vector<std::uint8_t> dealias;
  std::vector<Cplx> psi, work, jac;
  std::vector<double> gu, gv, gtx, gty, gj;
  std::vector<Cplx> k1, k2, k3, k4, stage, spec;
  double ubar[2] = {0.0, 0.0};
  double lambda = 0.0;
};

TEST(Sqg, HalfSpectrumTendencyMatchesFullSpectrumReference) {
  SqgConfig cfg;  // default physics: shear + relaxation + hyperdiffusion
  cfg.n = 32;
  cfg.r_ekman = 10.0;  // exercise the level-0 Ekman term too
  SqgModel model(cfg);
  FullSpectrumReference ref(cfg);
  Rng rng(77);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 8);

  const std::size_t n = cfg.n, nn = n * n, nh = n / 2 + 1, ns = n * nh;
  std::vector<Cplx> hs(model.spec_dim()), hout(model.spec_dim());
  model.to_spectral(theta, hs);
  SqgWorkspace ws(n);
  model.tendency(hs, hout, ws);

  std::vector<Cplx> fs(2 * nn), fout(2 * nn);
  ref.to_spectral(theta, fs);
  ref.tendency(fs, fout);

  double scale = 0.0;
  for (const auto& v : fout) scale = std::max(scale, std::abs(v));
  ASSERT_GT(scale, 0.0);
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t jy = 0; jy < n; ++jy)
      for (std::size_t mx = 0; mx <= n / 2; ++mx) {
        const Cplx want = fout[l * nn + jy * n + mx];
        const Cplx got = hout[l * ns + jy * nh + mx];
        ASSERT_NEAR(got.real(), want.real(), 1e-12 * scale) << l << "," << jy << "," << mx;
        ASSERT_NEAR(got.imag(), want.imag(), 1e-12 * scale) << l << "," << jy << "," << mx;
      }
}

TEST(Sqg, HalfSpectrumStepMatchesFullSpectrumReference) {
  SqgConfig cfg;
  cfg.n = 32;
  SqgModel model(cfg);
  FullSpectrumReference ref(cfg);
  Rng rng(78);
  std::vector<double> a(model.dim());
  model.random_init(a, rng, 1.0, 6);
  auto b = a;

  SqgWorkspace ws(cfg.n);
  model.step(a, 5, ws);
  ref.step(b, 5);

  double scale = 0.0;
  for (double v : b) scale = std::max(scale, std::abs(v));
  ASSERT_GT(scale, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-12 * scale) << i;
}

TEST(Sqg, StepPerformsNoPerStepHeapAllocations) {
  SqgConfig cfg = inviscid_config(32);
  SqgModel model(cfg);
  Rng rng(91);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  SqgWorkspace ws(cfg.n);
  model.step(theta, 2, ws);  // warm-up: grows the per-thread FFT scratch once
  const std::uint64_t before = g_new_calls.load();
  model.step(theta, 5, ws);
  const std::uint64_t allocs = g_new_calls.load() - before;
  EXPECT_EQ(allocs, 0u) << "step() performed " << allocs << " heap allocations";
}

TEST(Sqg, StepBatchMatchesSequentialStepBitwise) {
  // The batched member step must be bitwise identical to M sequential
  // step() calls for every batch block size and FFT thread count — the
  // invariant the forecast drivers' block fan-out relies on.
  const std::size_t n = 32, M = 5;
  SqgConfig ref_cfg;
  ref_cfg.n = n;
  SqgModel ref_model(ref_cfg);
  Rng rng(97);
  std::vector<double> theta(ref_model.dim());
  ref_model.random_init(theta, rng, 1.0, 4);

  std::vector<double> block0(M * ref_model.dim());
  for (std::size_t m = 0; m < M; ++m)
    for (std::size_t i = 0; i < ref_model.dim(); ++i)
      block0[m * ref_model.dim() + i] = theta[i] * (1.0 + 1e-6 * static_cast<double>(m));

  std::vector<double> ref = block0;
  SqgWorkspace ws(n);
  for (std::size_t m = 0; m < M; ++m)
    ref_model.step(std::span<double>(ref.data() + m * ref_model.dim(), ref_model.dim()), 3, ws);

  for (const std::size_t blk : {std::size_t{1}, std::size_t{2}, std::size_t{4}, M}) {
    for (const std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
      SqgConfig cfg;
      cfg.n = n;
      cfg.batch_block = blk;
      cfg.n_fft_threads = nt;
      SqgModel model(cfg);
      std::vector<double> batch = block0;
      SqgBatchWorkspace bws(n, std::min(M, blk));
      model.step_batch(batch, M, 3, bws);
      EXPECT_EQ(0, std::memcmp(batch.data(), ref.data(), batch.size() * sizeof(double)))
          << "batch_block=" << blk << " fft_threads=" << nt;
    }
  }
}

TEST(Sqg, AdvanceBatchMatchesSequentialAdvance) {
  const std::size_t n = 16, M = 3;
  SqgConfig cfg;
  cfg.n = n;
  SqgModel model(cfg);
  Rng rng(98);
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 3);
  std::vector<double> block(M * model.dim()), ref(M * model.dim());
  for (std::size_t m = 0; m < M; ++m)
    for (std::size_t i = 0; i < model.dim(); ++i)
      ref[m * model.dim() + i] = block[m * model.dim() + i] =
          theta[i] * (1.0 + 1e-5 * static_cast<double>(m));
  const double seconds = 2.5 * cfg.dt;  // rounds up to 3 steps
  SqgWorkspace ws(n);
  for (std::size_t m = 0; m < M; ++m)
    model.advance(std::span<double>(ref.data() + m * model.dim(), model.dim()), seconds, ws);
  model.advance_batch(block, M, seconds);
  EXPECT_EQ(0, std::memcmp(block.data(), ref.data(), block.size() * sizeof(double)));
}

TEST(Sqg, StepBatchRejectsWrongBlockSize) {
  SqgConfig cfg;
  cfg.n = 16;
  SqgModel model(cfg);
  std::vector<double> block(3 * model.dim() - 1);
  SqgBatchWorkspace ws(cfg.n, 2);
  EXPECT_THROW(model.step_batch(block, 3, 1, ws), Error);
}

TEST(Sqg, StepBatchPerformsNoPerStepHeapAllocations) {
  // The zero-allocation contract extends to the batched path: after one
  // warm-up call has sized the batch workspace, its pointer tables and the
  // per-thread FFT scratch, stepping a member block allocates nothing.
  SqgConfig cfg = inviscid_config(32);
  cfg.batch_block = 2;  // M = 5 exercises full and partial sub-blocks
  SqgModel model(cfg);
  Rng rng(92);
  const std::size_t M = 5;
  std::vector<double> theta(model.dim());
  model.random_init(theta, rng, 1.0, 4);
  std::vector<double> block(M * model.dim());
  for (std::size_t m = 0; m < M; ++m)
    std::copy(theta.begin(), theta.end(), block.begin() + static_cast<long>(m * model.dim()));
  SqgBatchWorkspace ws(cfg.n, cfg.batch_block);
  model.step_batch(block, M, 2, ws);  // warm-up
  const std::uint64_t before = g_new_calls.load();
  model.step_batch(block, M, 5, ws);
  const std::uint64_t allocs = g_new_calls.load() - before;
  EXPECT_EQ(allocs, 0u) << "step_batch() performed " << allocs << " heap allocations";
}

TEST(Sqg, RejectsBadConfig) {
  SqgConfig cfg;
  cfg.n = 48;  // not a power of two
  EXPECT_THROW(SqgModel model(cfg), Error);
  SqgConfig cfg2;
  cfg2.diff_order = 7;  // odd order
  EXPECT_THROW(SqgModel model2(cfg2), Error);
}

}  // namespace
}  // namespace turbda::sqg
