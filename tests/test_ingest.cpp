// Live-ingestion tests: the CRC-framed wire protocol (round-trip, torn and
// corrupt frames, resynchronization, version/length refusal), deterministic
// reconnect backoff, bounded drop-oldest queueing, replay and live-socket
// transports feeding IngestStream (dedup ledger, reconnects, save/restore),
// and the deep-overlap (K > 1) RealtimeRunner schedule — late batches a K=1
// run drops are applied with age-dependent R inflation, bitwise reproducibly
// across thread counts and through a v3 checkpoint/resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "da/etkf.hpp"
#include "models/lorenz96.hpp"
#include "stream/checkpoint.hpp"
#include "stream/ingest/backoff.hpp"
#include "stream/ingest/ingest_queue.hpp"
#include "stream/ingest/ingest_stream.hpp"
#include "stream/ingest/socket_stream.hpp"
#include "stream/ingest/tail_stream.hpp"
#include "stream/ingest/wire.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

namespace turbda {
namespace {

using models::Lorenz96;
using models::Lorenz96Config;
namespace ingest = stream::ingest;

// --------------------------------------------------------------- fixture ---

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

/// A small deterministic batch for wire-level tests.
stream::ObsBatch make_batch(int cycle, std::size_t dim = 8) {
  stream::ObsBatch b;
  b.cycle = cycle;
  b.valid_cycles = static_cast<double>(cycle) + 1.0;
  b.arrival_cycles = static_cast<double>(cycle) + 1.0;
  b.y.resize(dim);
  for (std::size_t i = 0; i < dim; ++i)
    b.y[i] = static_cast<double>(cycle) * 100.0 + static_cast<double>(i);
  return b;
}

std::vector<double> make_truth(int cycle, std::size_t dim = 8) {
  std::vector<double> v(dim);
  for (std::size_t i = 0; i < dim; ++i)
    v[i] = static_cast<double>(cycle) * 1000.0 + static_cast<double>(i);
  return v;
}

void expect_batches_equal(const stream::ObsBatch& a, const stream::ObsBatch& b) {
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.valid_cycles, b.valid_cycles);
  EXPECT_EQ(a.arrival_cycles, b.arrival_cycles);
  ASSERT_EQ(a.y.size(), b.y.size());
  EXPECT_EQ(0, std::memcmp(a.y.data(), b.y.data(), a.y.size() * sizeof(double)));
}

// ------------------------------------------------------------ wire frames ---

TEST(Wire, RoundTripAllFrameKinds) {
  const auto b = make_batch(7);
  const auto t = make_truth(7);
  std::vector<std::uint8_t> bytes;
  ingest::encode_obs_frame(b, bytes);
  ingest::encode_truth_frame(7, t, bytes);
  ingest::encode_heartbeat_frame(7, 42, bytes);

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  ASSERT_TRUE(dec.next(f));
  ASSERT_EQ(f.kind, ingest::FrameKind::kObs);
  expect_batches_equal(b, f.obs);
  ASSERT_TRUE(dec.next(f));
  ASSERT_EQ(f.kind, ingest::FrameKind::kTruth);
  EXPECT_EQ(f.cycle, 7);
  ASSERT_EQ(f.state.size(), t.size());
  EXPECT_EQ(0, std::memcmp(f.state.data(), t.data(), t.size() * sizeof(double)));
  ASSERT_TRUE(dec.next(f));
  ASSERT_EQ(f.kind, ingest::FrameKind::kHeartbeat);
  EXPECT_EQ(f.cycle, 7);
  EXPECT_EQ(f.seq, 42u);
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.stats().frames_decoded, 3u);
  EXPECT_EQ(dec.stats().frames_corrupt, 0u);
  EXPECT_EQ(dec.stats().heartbeats, 1u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Wire, ByteAtATimeFeedingDecodesIdentically) {
  std::vector<std::uint8_t> bytes;
  for (int w = 0; w < 3; ++w) ingest::encode_obs_frame(make_batch(w), bytes);

  ingest::FrameDecoder dec;
  std::vector<stream::ObsBatch> got;
  ingest::DecodedFrame f;
  for (std::uint8_t byte : bytes) {
    dec.feed({&byte, 1});
    while (dec.next(f)) got.push_back(std::move(f.obs));
  }
  ASSERT_EQ(got.size(), 3u);
  for (int w = 0; w < 3; ++w) expect_batches_equal(make_batch(w), got[static_cast<std::size_t>(w)]);
  EXPECT_EQ(dec.stats().frames_corrupt, 0u);
  EXPECT_EQ(dec.stats().bytes_discarded, 0u);
}

TEST(Wire, CorruptFrameIsSkippedAndDecoderResyncs) {
  std::vector<std::uint8_t> bytes, middle;
  ingest::encode_obs_frame(make_batch(0), bytes);
  ingest::encode_obs_frame(make_batch(1), middle);
  middle[ingest::kWireHeaderBytes + 1] ^= 0xFFu;  // payload damage => CRC fails
  bytes.insert(bytes.end(), middle.begin(), middle.end());
  ingest::encode_obs_frame(make_batch(2), bytes);

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  std::vector<int> cycles;
  while (dec.next(f)) cycles.push_back(f.obs.cycle);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], 0);
  EXPECT_EQ(cycles[1], 2);
  EXPECT_GE(dec.stats().frames_corrupt, 1u);
  EXPECT_GE(dec.stats().frames_resynced, 1u);
  EXPECT_GT(dec.stats().bytes_discarded, 0u);
  EXPECT_EQ(dec.last_error().code(), StatusCode::kCorruptData);
}

TEST(Wire, GarbagePrefixNeverDecodesAndGoodFrameResyncs) {
  std::vector<std::uint8_t> bytes(512);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>((i * 7 + 1) % 251);

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.stats().frames_decoded, 0u);
  EXPECT_GT(dec.stats().bytes_discarded, 0u);

  std::vector<std::uint8_t> good;
  ingest::encode_obs_frame(make_batch(3), good);
  dec.feed(good);
  ASSERT_TRUE(dec.next(f));
  expect_batches_equal(make_batch(3), f.obs);
  EXPECT_GE(dec.stats().frames_resynced, 1u);
}

TEST(Wire, FutureFormatVersionIsRefusedNotParsed) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(ingest::FrameKind::kHeartbeat));
  bytes::put_i32(payload, 5);
  bytes::put_u64(payload, 1);
  std::vector<std::uint8_t> bytes;
  bytes::put_u32(bytes, ingest::kWireMagic);
  bytes::put_u32(bytes, ingest::kWireVersion + 1);
  bytes::put_u64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  bytes::put_u32(bytes, stream::crc32(payload));
  ingest::encode_heartbeat_frame(9, 1, bytes);  // good frame behind the bad one

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.kind, ingest::FrameKind::kHeartbeat);
  EXPECT_EQ(f.cycle, 9);
  EXPECT_GE(dec.stats().frames_corrupt, 1u);
  EXPECT_EQ(dec.last_error().code(), StatusCode::kUnsupported);
}

TEST(Wire, ImplausibleLengthIsTreatedAsCorruption) {
  std::vector<std::uint8_t> bytes;
  bytes::put_u32(bytes, ingest::kWireMagic);
  bytes::put_u32(bytes, ingest::kWireVersion);
  bytes::put_u64(bytes, ingest::kMaxFramePayloadBytes + 1);  // would wedge forever
  ingest::encode_heartbeat_frame(4, 2, bytes);

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.cycle, 4);
  EXPECT_GE(dec.stats().frames_corrupt, 1u);
  EXPECT_EQ(dec.last_error().code(), StatusCode::kCorruptData);
}

TEST(Wire, TornFrameRecoveredFromRetransmission) {
  // A connection died mid-frame; the reconnecting feeder retransmits the
  // whole frame. The torn prefix must be shed, the retransmission decoded.
  std::vector<std::uint8_t> whole;
  ingest::encode_obs_frame(make_batch(5), whole);
  std::vector<std::uint8_t> bytes(whole.begin(), whole.begin() + static_cast<long>(whole.size() / 2));
  bytes.insert(bytes.end(), whole.begin(), whole.end());

  ingest::FrameDecoder dec;
  dec.feed(bytes);
  ingest::DecodedFrame f;
  ASSERT_TRUE(dec.next(f));
  expect_batches_equal(make_batch(5), f.obs);
  EXPECT_FALSE(dec.next(f));
  EXPECT_GE(dec.stats().frames_corrupt, 1u);
  EXPECT_GE(dec.stats().frames_resynced, 1u);
}

// ---------------------------------------------------------------- backoff ---

TEST(Backoff, ScheduleIsDeterministicCappedAndJitterBounded) {
  ingest::BackoffConfig bc;
  bc.base_ms = 10.0;
  bc.cap_ms = 160.0;
  bc.multiplier = 2.0;
  bc.jitter_frac = 0.2;
  bc.seed = 1234;
  ingest::Backoff a(bc), b(bc);
  for (int i = 0; i < 12; ++i) {
    const double da = a.next_delay_ms();
    EXPECT_EQ(da, b.next_delay_ms()) << "attempt " << i;
    EXPECT_EQ(da, a.delay_for_attempt(static_cast<std::uint64_t>(i)));  // pure function
    const double nominal = std::min(10.0 * std::pow(2.0, i), 160.0);
    EXPECT_GE(da, nominal * 0.8);
    EXPECT_LE(da, nominal * 1.2);
  }
  EXPECT_EQ(a.attempts(), 12u);
  a.reset();
  EXPECT_EQ(a.attempts(), 0u);
  EXPECT_EQ(a.next_delay_ms(), b.delay_for_attempt(0));

  ingest::BackoffConfig plain = bc;
  plain.jitter_frac = 0.0;
  ingest::Backoff c(plain);
  EXPECT_EQ(c.next_delay_ms(), 10.0);
  EXPECT_EQ(c.next_delay_ms(), 20.0);
  EXPECT_EQ(c.delay_for_attempt(50), 160.0);  // saturates at the cap
}

// ------------------------------------------------------------ ingest queue ---

TEST(IngestQueue, DropOldestUnderBackpressure) {
  ingest::IngestQueue q(3);
  for (int w = 0; w < 5; ++w) {
    auto b = make_batch(w);
    b.arrival_cycles = 0.0;
    const bool clean = q.push(std::move(b));
    EXPECT_EQ(clean, w < 3) << "window " << w;
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.drops(), 2u);
  std::vector<stream::ObsBatch> out;
  q.collect(10.0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].cycle, 2);  // the two oldest were evicted
  EXPECT_EQ(out[1].cycle, 3);
  EXPECT_EQ(out[2].cycle, 4);
}

TEST(IngestQueue, CollectGatesOnArrivalAndSortsByCycle) {
  ingest::IngestQueue q(8);
  // Pushed out of order; gated by virtual arrival, delivered in cycle order.
  q.push(make_batch(2));  // arrival 3.0
  q.push(make_batch(0));  // arrival 1.0
  q.push(make_batch(1));  // arrival 2.0
  std::vector<stream::ObsBatch> out;
  q.collect(2.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].cycle, 0);
  EXPECT_EQ(out[1].cycle, 1);
  q.collect(10.0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].cycle, 2);
  EXPECT_EQ(q.size(), 0u);
}

// ----------------------------------------------- tail replay + IngestStream ---

constexpr std::size_t kObsDim = 8;

void append_window(int w, std::vector<std::uint8_t>& out, std::uint64_t& seq) {
  ingest::encode_obs_frame(make_batch(w, kObsDim), out);
  ingest::encode_truth_frame(w, make_truth(w, kObsDim), out);
  ingest::encode_heartbeat_frame(w, seq++, out);
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

ingest::IngestStreamConfig replay_config() {
  ingest::IngestStreamConfig ic;
  ic.read_timeout_ms = 5;
  ic.stale_after_ms = 1000;
  ic.produce_timeout_ms = 10000;
  return ic;
}

std::unique_ptr<ingest::TailStream> make_tail(const std::string& path) {
  ingest::TailStreamConfig tc;
  tc.path = path;
  tc.stop_at_eof = true;
  return std::make_unique<ingest::TailStream>(tc);
}

TEST(IngestStream, TailReplayDeliversEveryWindowWithTruth) {
  const std::string path = temp_path("ingest_replay.bin");
  std::vector<std::uint8_t> bytes;
  std::uint64_t seq = 0;
  for (int w = 0; w <= 5; ++w) append_window(w, bytes, seq);
  write_file(path, bytes);

  da::IdentityObs h(kObsDim);
  da::DiagonalR r(kObsDim, 1.0);
  ingest::IngestStream s(replay_config(), make_tail(path), h, r);
  std::vector<stream::ObsBatch> got;
  for (int k = 0; k <= 5; ++k) {
    s.produce(k);
    const auto t = s.truth(k);
    ASSERT_EQ(t.size(), kObsDim) << "cycle " << k;
    const auto want = make_truth(k, kObsDim);
    EXPECT_EQ(0, std::memcmp(t.data(), want.data(), want.size() * sizeof(double)));
    s.collect(static_cast<double>(k) + 1.0, got);
  }
  ASSERT_EQ(got.size(), 6u);
  for (int w = 0; w <= 5; ++w)
    expect_batches_equal(make_batch(w, kObsDim), got[static_cast<std::size_t>(w)]);
  const auto st = s.stats();
  EXPECT_EQ(st.wire.frames_corrupt, 0u);
  EXPECT_EQ(st.duplicates_dropped, 0u);
  EXPECT_EQ(st.high_water_cycle, 5);
  std::remove(path.c_str());
}

TEST(IngestStream, ReplaySurvivesCorruptionAndDropsDuplicates) {
  const std::string path = temp_path("ingest_replay_corrupt.bin");
  std::vector<std::uint8_t> bytes;
  std::uint64_t seq = 0;
  append_window(0, bytes, seq);
  // A duplicate retransmission of window 0 that lands two cycles later.
  {
    auto dup = make_batch(0, kObsDim);
    dup.arrival_cycles = 2.5;
    ingest::encode_obs_frame(dup, bytes);
  }
  // Window 1's first copy is damaged in flight; a good retransmission follows.
  {
    std::vector<std::uint8_t> torn;
    ingest::encode_obs_frame(make_batch(1, kObsDim), torn);
    torn[ingest::kWireHeaderBytes + 3] ^= 0xFFu;
    bytes.insert(bytes.end(), torn.begin(), torn.end());
  }
  append_window(1, bytes, seq);
  for (std::size_t i = 0; i < 37; ++i)  // line noise between windows
    bytes.push_back(static_cast<std::uint8_t>((i * 11 + 5) % 249));
  append_window(2, bytes, seq);
  write_file(path, bytes);

  da::IdentityObs h(kObsDim);
  da::DiagonalR r(kObsDim, 1.0);
  ingest::IngestStream s(replay_config(), make_tail(path), h, r);
  std::vector<stream::ObsBatch> got;
  for (int k = 0; k <= 2; ++k) {
    s.produce(k);
    s.collect(static_cast<double>(k) + 1.0, got);
  }
  s.collect(10.0, got);  // drain the delayed duplicate past its arrival stamp
  ASSERT_EQ(got.size(), 3u);
  for (int w = 0; w <= 2; ++w)
    expect_batches_equal(make_batch(w, kObsDim), got[static_cast<std::size_t>(w)]);
  const auto st = s.stats();
  EXPECT_GE(st.wire.frames_corrupt, 1u);
  EXPECT_GE(st.wire.frames_resynced, 1u);
  EXPECT_GE(st.duplicates_dropped, 1u);
  const auto ic = s.ingest_counters();
  EXPECT_EQ(ic.frames_corrupt, st.wire.frames_corrupt);
  EXPECT_EQ(ic.frames_resynced, st.wire.frames_resynced);
  std::remove(path.c_str());
}

TEST(IngestStream, SaveRestoreKeepsLedgerAcrossTransportReplay) {
  // The transport does not checkpoint: a restored consumer re-reads the feed
  // from the top (here: a restarted feeder rewrote the file, replaying the
  // windows it already sent) and must rely on the delivered-batch ledger to
  // refuse them.
  const std::string path = temp_path("ingest_restore.bin");
  std::vector<std::uint8_t> bytes;
  std::uint64_t seq = 0;
  for (int w = 0; w <= 1; ++w) append_window(w, bytes, seq);
  write_file(path, bytes);

  da::IdentityObs h(kObsDim);
  da::DiagonalR r(kObsDim, 1.0);
  ingest::IngestStream s(replay_config(), make_tail(path), h, r);
  std::vector<stream::ObsBatch> got;
  for (int k = 0; k <= 1; ++k) {
    s.produce(k);
    s.collect(static_cast<double>(k) + 1.0, got);
  }
  ASSERT_EQ(got.size(), 2u);
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(s.save_state(blob));
  const auto saved = s.stats();
  EXPECT_EQ(saved.wire.frames_decoded, 6u);  // 2 windows x (obs, truth, heartbeat)

  // Feeder restart: the file now replays windows 0-1 and continues with 2-3.
  bytes.clear();
  seq = 0;
  for (int w = 0; w <= 3; ++w) append_window(w, bytes, seq);
  write_file(path, bytes);

  ingest::IngestStream resumed(replay_config(), make_tail(path), h, r);
  ASSERT_TRUE(resumed.restore_state(blob));
  std::vector<stream::ObsBatch> got2;
  for (int k = 2; k <= 3; ++k) {
    resumed.produce(k);
    resumed.collect(static_cast<double>(k) + 1.0, got2);
  }
  ASSERT_EQ(got2.size(), 2u);
  EXPECT_EQ(got2[0].cycle, 2);
  EXPECT_EQ(got2[1].cycle, 3);
  const auto st = resumed.stats();
  EXPECT_GE(st.duplicates_dropped, 2u);  // re-read windows 0 and 1 were refused
  // Wire totals continue from the snapshot instead of resetting.
  EXPECT_GE(st.wire.frames_decoded, saved.wire.frames_decoded + 12);
  std::remove(path.c_str());
}

// ------------------------------------------------------- loopback socket ---

TEST(SocketIngest, LoopbackSurvivesFeederKillAndCorruptFrames) {
  ingest::SocketStreamConfig scfg;
  scfg.port = 0;  // kernel-assigned
  scfg.connect_timeout_ms = 50;
  auto src = std::make_unique<ingest::SocketStream>(scfg);
  ingest::SocketStream* raw = src.get();
  // First accept attempt times out (no feeder yet) but resolves the port.
  EXPECT_EQ(raw->connect().code(), StatusCode::kUnavailable);
  const std::uint16_t port = raw->bound_port();
  ASSERT_NE(port, 0);

  std::thread feeder([port] {
    ingest::SocketWriter w;
    const auto dial = [&] {
      while (!w.connect("127.0.0.1", port, 50).ok())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    };
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> buf;
    dial();
    // Window 0 arrives once corrupted and once intact.
    {
      std::vector<std::uint8_t> bad;
      ingest::encode_obs_frame(make_batch(0, kObsDim), bad);
      bad[ingest::kWireHeaderBytes + 2] ^= 0xFFu;
      buf.insert(buf.end(), bad.begin(), bad.end());
    }
    append_window(0, buf, seq);
    append_window(1, buf, seq);
    (void)w.send_all(buf);
    w.close();  // the kill: feeder dies after window 1
    dial();
    buf.clear();
    // A restarted feeder cannot know what survived: replay then continue.
    append_window(0, buf, seq);
    append_window(1, buf, seq);
    append_window(2, buf, seq);
    (void)w.send_all(buf);
    w.close();
  });

  ingest::IngestStreamConfig ic;
  ic.read_timeout_ms = 10;
  ic.stale_after_ms = 500;
  ic.produce_timeout_ms = 20000;
  ic.backoff.base_ms = 5.0;
  ic.backoff.cap_ms = 50.0;
  da::IdentityObs h(kObsDim);
  da::DiagonalR r(kObsDim, 1.0);
  ingest::IngestStream s(ic, std::move(src), h, r);
  std::vector<stream::ObsBatch> got;
  for (int k = 0; k <= 2; ++k) {
    s.produce(k);
    s.collect(static_cast<double>(k) + 1.0, got);
  }
  feeder.join();
  ASSERT_EQ(got.size(), 3u);
  for (int w = 0; w <= 2; ++w)
    expect_batches_equal(make_batch(w, kObsDim), got[static_cast<std::size_t>(w)]);
  const auto st = s.stats();
  EXPECT_GE(st.reconnects, 1u);
  EXPECT_GE(st.wire.frames_corrupt, 1u);
  EXPECT_GE(st.duplicates_dropped, 1u);  // the replayed windows 0/1
}

// ------------------------------------------------- deep-overlap scheduling ---

constexpr std::size_t kDim = 40;

std::vector<double> spun_up_truth() {
  Lorenz96Config mc;
  mc.dim = kDim;
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);
  return truth0;
}

struct RunResult {
  std::vector<stream::StreamCycleMetrics> metrics;
  da::Ensemble ens{2, kDim};
};

RunResult run_deep(stream::SyntheticStreamConfig sc, stream::RealtimeConfig rc,
                   bool use_filter = true) {
  Lorenz96Config mc;
  mc.dim = kDim;
  // Shorter windows than the K=1 stream tests: a deep pipeline applies each
  // increment K windows after it was computed, so the window length bounds
  // how much chaotic decorrelation the increment suffers before landing.
  mc.steps_per_window = 5;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});
  const auto truth0 = spun_up_truth();
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  stream::RealtimeRunner runner(rc, s, fcst_model, use_filter ? &filter : nullptr);
  RunResult out;
  out.metrics = runner.run(truth0);
  out.ens = runner.ensemble();
  return out;
}

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs";
  }
}

void expect_accuracy_metrics_bitwise_equal(const std::vector<stream::StreamCycleMetrics>& a,
                                           const std::vector<stream::StreamCycleMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].rmse_prior, b[k].rmse_prior) << "cycle " << k;
    EXPECT_EQ(a[k].rmse_post, b[k].rmse_post) << "cycle " << k;
    EXPECT_EQ(a[k].spread_post, b[k].spread_post) << "cycle " << k;
    EXPECT_EQ(a[k].batches_assimilated, b[k].batches_assimilated) << "cycle " << k;
    EXPECT_EQ(a[k].late_applied, b[k].late_applied) << "cycle " << k;
    EXPECT_EQ(a[k].max_r_scale, b[k].max_r_scale) << "cycle " << k;
  }
}

double mean_tail_rmse(const std::vector<stream::StreamCycleMetrics>& m, std::size_t tail = 10) {
  double sum = 0.0;
  const std::size_t n = std::min(tail, m.size());
  for (std::size_t k = m.size() - n; k < m.size(); ++k) sum += m[k].rmse_post;
  return sum / static_cast<double>(n);
}

/// Delivery scenario whose every batch is exactly 3 cycles old at delivery —
/// one cycle past max_stale_cycles = 2, inside the K = 2 stretched window.
stream::SyntheticStreamConfig very_late_scenario() {
  stream::SyntheticStreamConfig sc;
  sc.latency_cycles = 2.6;
  sc.jitter_cycles = 0.3;
  return sc;
}

stream::RealtimeConfig deep_config(int depth) {
  stream::RealtimeConfig rc;
  rc.cycles = 20;
  rc.n_members = 10;
  rc.schedule = stream::Schedule::Overlapped;
  rc.overlap_depth = depth;
  rc.max_stale_cycles = 2;
  return rc;
}

TEST(DeepOverlap, AppliesLateBatchesAnEquallyConfiguredK1RunDrops) {
  const auto k1 = run_deep(very_late_scenario(), deep_config(1));
  const auto k2 = run_deep(very_late_scenario(), deep_config(2));

  int k1_late = 0, k1_dropped = 0, k2_late = 0, k2_dropped = 0, k2_applied = 0;
  double k2_max_r = 1.0;
  for (const auto& m : k1.metrics) {
    k1_late += m.late_applied;
    k1_dropped += m.batches_discarded;
  }
  for (const auto& m : k2.metrics) {
    k2_late += m.late_applied;
    k2_dropped += m.batches_discarded;
    k2_applied += m.batches_assimilated;
    k2_max_r = std::max(k2_max_r, m.max_r_scale);
  }
  EXPECT_EQ(k1_late, 0);      // K=1 cannot admit age-3 stragglers...
  EXPECT_GT(k1_dropped, 0);   // ...so it drops them
  EXPECT_GT(k2_late, 0);      // K=2 applies them as late increments
  EXPECT_EQ(k2_dropped, 0);
  EXPECT_GT(k2_applied, 0);
  // Age-dependent R inflation: age 3 with late_r_inflation 0.5 => r_scale 2.5.
  EXPECT_GE(k2_max_r, 2.5);
  // The down-weighted late increments may or may not beat a pure forecast
  // (that depends on the window length); what the schedule guarantees is
  // that they are admitted, discounted, and never destabilize the run.
  for (const auto& m : k2.metrics) ASSERT_TRUE(std::isfinite(m.rmse_post)) << m.cycle;
}

TEST(DeepOverlap, PromptDeliveryStillBeatsFreeRun) {
  stream::SyntheticStreamConfig sc;  // instant delivery
  const auto assimilated = run_deep(sc, deep_config(2), true);
  const auto free_run = run_deep(sc, deep_config(2), false);
  int late = 0, dropped = 0;
  for (const auto& m : assimilated.metrics) {
    late += m.late_applied;
    dropped += m.batches_discarded;
  }
  EXPECT_EQ(late, 0);
  EXPECT_EQ(dropped, 0);
  EXPECT_LT(mean_tail_rmse(assimilated.metrics), mean_tail_rmse(free_run.metrics));
}

TEST(DeepOverlap, BitwiseInvariantToThreadCount) {
  auto rc1 = deep_config(2);
  rc1.n_forecast_threads = 1;
  auto rc4 = deep_config(2);
  rc4.n_forecast_threads = 4;
  const auto a = run_deep(very_late_scenario(), rc1);
  const auto b = run_deep(very_late_scenario(), rc4);
  expect_bitwise_equal(a.ens, b.ens);
  expect_accuracy_metrics_bitwise_equal(a.metrics, b.metrics);
}

TEST(DeepOverlap, CheckpointResumeIsBitwiseAcrossThreadCounts) {
  const auto sc = very_late_scenario();
  auto rc = deep_config(2);
  rc.cycles = 12;
  const auto uninterrupted = run_deep(sc, rc);

  const std::string path = temp_path("ckpt_deep.bin");
  auto rc_ck = rc;
  rc_ck.checkpoint_path = path;
  rc_ck.checkpoint_every = 7;  // one snapshot, mid-run, with analyses in flight
  const auto with_ckpt = run_deep(sc, rc_ck);
  expect_bitwise_equal(uninterrupted.ens, with_ckpt.ens);

  // The snapshot must carry the staged-analysis ring (v3 format) — cycles 5
  // and 6 had analyses staged but not yet applied when it was written.
  stream::CheckpointData data;
  ASSERT_TRUE(stream::load_checkpoint(path, data).ok());
  EXPECT_EQ(data.overlap_depth, 2);
  EXPECT_EQ(data.next_cycle, 7);
  EXPECT_GE(data.ring.size(), 1u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Lorenz96Config mc;
    mc.dim = kDim;
    mc.steps_per_window = 5;  // must match run_deep's model exactly
    Lorenz96 truth_model(mc), fcst_model(mc);
    da::IdentityObs h(mc.dim);
    da::DiagonalR r(mc.dim, 1.0);
    da::ETKF filter(da::EtkfConfig{.rtps = 0.4});
    const auto truth0 = spun_up_truth();
    stream::SyntheticStream s(sc, truth_model, h, r, truth0);
    auto rc_res = rc_ck;
    rc_res.n_forecast_threads = threads;
    stream::RealtimeRunner runner(rc_res, s, fcst_model, &filter);
    std::vector<stream::StreamCycleMetrics> resumed;
    ASSERT_TRUE(runner.resume(path, resumed).ok()) << threads << " threads";
    expect_bitwise_equal(uninterrupted.ens, runner.ensemble());
    expect_accuracy_metrics_bitwise_equal(uninterrupted.metrics, resumed);
  }
  std::remove(path.c_str());
}

TEST(DeepOverlap, ResumeRefusesOverlapDepthMismatch) {
  const auto sc = very_late_scenario();
  auto rc = deep_config(2);
  rc.cycles = 12;
  const std::string path = temp_path("ckpt_deep_mismatch.bin");
  rc.checkpoint_path = path;
  rc.checkpoint_every = 7;
  (void)run_deep(sc, rc);

  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 5;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(mc.dim);
  da::DiagonalR r(mc.dim, 1.0);
  da::ETKF filter(da::EtkfConfig{.rtps = 0.4});
  const auto truth0 = spun_up_truth();
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  auto rc_bad = rc;
  rc_bad.overlap_depth = 3;
  stream::RealtimeRunner runner(rc_bad, s, fcst_model, &filter);
  std::vector<stream::StreamCycleMetrics> resumed;
  EXPECT_FALSE(runner.resume(path, resumed).ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------- metrics schema ---

TEST(StreamMetrics, IngestColumnsPresentAndRowAligned) {
  const auto cols = stream::stream_metrics_columns();
  stream::StreamCycleMetrics m;
  m.late_applied = 3;
  m.ingest_reconnects = 1;
  m.ingest_frames_corrupt = 2;
  m.ingest_frames_resynced = 2;
  m.ingest_queue_drops = 4;
  const auto row = stream::stream_metrics_row(m);
  ASSERT_EQ(cols.size(), row.size());
  const auto col = [&](const std::string& name) {
    for (std::size_t i = 0; i < cols.size(); ++i)
      if (cols[i] == name) return row[i];
    ADD_FAILURE() << "missing column " << name;
    return -1.0;
  };
  EXPECT_EQ(col("late_applied"), 3.0);
  EXPECT_EQ(col("ingest_reconnects"), 1.0);
  EXPECT_EQ(col("ingest_frames_corrupt"), 2.0);
  EXPECT_EQ(col("ingest_frames_resynced"), 2.0);
  EXPECT_EQ(col("ingest_queue_drops"), 4.0);
}

}  // namespace
}  // namespace turbda
