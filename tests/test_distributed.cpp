#include <gtest/gtest.h>

#include <memory>

#include "nn/distributed.hpp"
#include "nn/optim.hpp"
#include "nn/vit.hpp"
#include "parallel/sim_comm.hpp"
#include "rng/rng.hpp"

namespace turbda::nn {
namespace {

using turbda::rng::Rng;

VitConfig tiny_config() {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.channels = 2;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  cfg.seed = 5;
  return cfg;
}

/// Serial reference: train on the full batch with gradients averaged over
/// all samples, exactly what data parallelism must reproduce.
std::vector<double> serial_reference(const Tensor& xs, const Tensor& ys, int steps,
                                     const AdamWConfig& oc) {
  auto vit = std::make_shared<ViT>(tiny_config());
  AdamW opt(vit->parameters(), oc);
  for (int s = 0; s < steps; ++s) {
    opt.zero_grad();
    vit->set_training(true);
    const Tensor pred = vit->forward(xs);
    Tensor grad;
    mse_loss(pred, ys, grad);
    vit->backward(grad);
    opt.step();
  }
  return vit->state_vector();
}

/// Per-rank batches: contiguous shards of the global batch. The MSE loss
/// gradient normalizes by batch elements, so a rank's local gradient over
/// B/n samples equals n * (its share of the global-batch gradient); after
/// the all-reduce average the result matches serial full-batch training.
Tensor shard(const Tensor& t, int rank, int world) {
  const std::size_t rows = t.extent(0) / static_cast<std::size_t>(world);
  Tensor out({rows, t.extent(1)});
  for (std::size_t r = 0; r < rows; ++r) {
    const auto src = t.row(static_cast<std::size_t>(rank) * rows + r);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

class DistributedP : public ::testing::TestWithParam<int> {};

TEST_P(DistributedP, DdpMatchesSerialTraining) {
  const int world = GetParam();
  const VitConfig cfg = tiny_config();
  Rng rng(17);
  const std::size_t batch = 8;
  Tensor xs({batch, cfg.state_dim()}), ys({batch, cfg.state_dim()});
  rng.fill_gaussian(xs.flat());
  rng.fill_gaussian(ys.flat());

  AdamWConfig oc;
  oc.lr = 1e-3;
  const auto want = serial_reference(xs, ys, /*steps=*/4, oc);

  std::vector<double> got;
  parallel::run_world(world, [&](parallel::SimComm& c) {
    auto vit = std::make_shared<ViT>(tiny_config());
    DistTrainConfig dc;
    dc.strategy = DataParallelStrategy::DDP;
    dc.optimizer = oc;
    DistributedTrainer trainer(vit, c, dc);
    trainer.broadcast_parameters();
    const Tensor xloc = shard(xs, c.rank(), world);
    const Tensor yloc = shard(ys, c.rank(), world);
    for (int s = 0; s < 4; ++s) trainer.step(xloc, yloc);
    if (c.rank() == 0) got = vit->state_vector();
  });

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST_P(DistributedP, Zero2MatchesSerialTraining) {
  const int world = GetParam();
  const VitConfig cfg = tiny_config();
  Rng rng(19);
  const std::size_t batch = 8;
  Tensor xs({batch, cfg.state_dim()}), ys({batch, cfg.state_dim()});
  rng.fill_gaussian(xs.flat());
  rng.fill_gaussian(ys.flat());

  AdamWConfig oc;
  oc.lr = 1e-3;
  oc.weight_decay = 0.01;
  const auto want = serial_reference(xs, ys, /*steps=*/3, oc);

  std::vector<double> got;
  parallel::run_world(world, [&](parallel::SimComm& c) {
    auto vit = std::make_shared<ViT>(tiny_config());
    DistTrainConfig dc;
    dc.strategy = DataParallelStrategy::ZeRO2;
    dc.optimizer = oc;
    DistributedTrainer trainer(vit, c, dc);
    trainer.broadcast_parameters();
    const Tensor xloc = shard(xs, c.rank(), world);
    const Tensor yloc = shard(ys, c.rank(), world);
    for (int s = 0; s < 3; ++s) trainer.step(xloc, yloc);
    if (c.rank() == 0) got = vit->state_vector();
  });

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistributedP, ::testing::Values(1, 2, 4));

TEST(Distributed, Zero2ShardsOptimizerMemory) {
  // Table I, executed: ZeRO-2 holds ~1/n of the optimizer state per rank.
  std::vector<std::size_t> ddp_elems(4), z2_elems(4);
  parallel::run_world(4, [&](parallel::SimComm& c) {
    auto v1 = std::make_shared<ViT>(tiny_config());
    DistTrainConfig ddp;
    ddp.strategy = DataParallelStrategy::DDP;
    DistributedTrainer t1(v1, c, ddp);
    ddp_elems[static_cast<std::size_t>(c.rank())] = t1.local_optimizer_elems();

    auto v2 = std::make_shared<ViT>(tiny_config());
    DistTrainConfig z2;
    z2.strategy = DataParallelStrategy::ZeRO2;
    DistributedTrainer t2(v2, c, z2);
    z2_elems[static_cast<std::size_t>(c.rank())] = t2.local_optimizer_elems();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(static_cast<double>(z2_elems[static_cast<std::size_t>(r)]),
                static_cast<double>(ddp_elems[static_cast<std::size_t>(r)]) / 4.0,
                static_cast<double>(ddp_elems[static_cast<std::size_t>(r)]) * 0.01);
  }
}

TEST(Distributed, TracksWireBytes) {
  parallel::run_world(2, [&](parallel::SimComm& c) {
    auto vit = std::make_shared<ViT>(tiny_config());
    DistTrainConfig dc;
    DistributedTrainer trainer(vit, c, dc);
    trainer.broadcast_parameters();
    const std::uint64_t before = trainer.bytes_on_wire();
    Tensor x({2, tiny_config().state_dim()}), y({2, tiny_config().state_dim()});
    Rng rng(23);
    rng.fill_gaussian(x.flat());
    rng.fill_gaussian(y.flat());
    trainer.step(x, y);
    EXPECT_GT(trainer.bytes_on_wire(), before);
  });
}

}  // namespace
}  // namespace turbda::nn
