#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <tuple>

#include "rng/rng.hpp"
#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "tensor/linalg.hpp"
#include "tensor/tensor.hpp"

namespace turbda::tensor {
namespace {

using turbda::rng::Rng;

Tensor random_tensor(std::initializer_list<std::size_t> shape, Rng& rng) {
  Tensor t(shape);
  rng.fill_gaussian(t.flat());
  return t;
}

TEST(Tensor, ShapeAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(0), 2u);
  EXPECT_EQ(t.extent(1), 3u);
  t(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(t(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(t.flat()[5], 5.0);
}

TEST(Tensor, RowSpan) {
  Tensor t({3, 4});
  t(1, 0) = 9.0;
  auto r = t.row(1);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 9.0);
}

TEST(Tensor, Arithmetic) {
  Tensor a = Tensor::full({2, 2}, 1.0);
  Tensor b = Tensor::full({2, 2}, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t(1, 0) = 7.0;  // flat index 6
  t.reshape({3, 4});
  EXPECT_DOUBLE_EQ(t(1, 2), 7.0);
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2}), b({2, 3});
  EXPECT_THROW(a += b, Error);
}

// --- GEMM against a naive reference over shape and transpose sweeps --------

void naive_gemm(Trans ta, Trans tb, const Tensor& a, const Tensor& b, Tensor& c) {
  const std::size_t m = c.extent(0), n = c.extent(1);
  const std::size_t k = (ta == Trans::No) ? a.extent(1) : a.extent(0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double av = (ta == Trans::No) ? a(i, p) : a(p, i);
        const double bv = (tb == Trans::No) ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = s;
    }
}

using GemmShape = std::tuple<int, int, int>;

class GemmP : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmP, MatchesNaiveAllTransposeVariants) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi), n = static_cast<std::size_t>(ni),
             k = static_cast<std::size_t>(ki);
  Rng rng(42 + static_cast<std::uint64_t>(mi * 1000 + ni * 10 + ki));

  {
    Tensor a = random_tensor({m, k}, rng), b = random_tensor({k, n}, rng);
    Tensor want({m, n});
    naive_gemm(Trans::No, Trans::No, a, b, want);
    const Tensor got = matmul(a, b);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.flat()[i], want.flat()[i], 1e-10);
  }
  {
    Tensor a = random_tensor({k, m}, rng), b = random_tensor({k, n}, rng);
    Tensor want({m, n});
    naive_gemm(Trans::Yes, Trans::No, a, b, want);
    const Tensor got = matmul_tn(a, b);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.flat()[i], want.flat()[i], 1e-10);
  }
  {
    Tensor a = random_tensor({m, k}, rng), b = random_tensor({n, k}, rng);
    Tensor want({m, n});
    naive_gemm(Trans::No, Trans::Yes, a, b, want);
    const Tensor got = matmul_nt(a, b);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.flat()[i], want.flat()[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmP,
                         ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                                           GemmShape{16, 16, 16}, GemmShape{33, 65, 129},
                                           GemmShape{128, 64, 200}, GemmShape{70, 257, 31}));

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(1);
  Tensor a = random_tensor({4, 4}, rng), b = random_tensor({4, 4}, rng);
  Tensor c = Tensor::full({4, 4}, 2.0);
  Tensor ab({4, 4});
  naive_gemm(Trans::No, Trans::No, a, b, ab);
  gemm(Trans::No, Trans::Yes == Trans::Yes ? Trans::No : Trans::No, 4, 4, 4, 0.5, a.data(), 4,
       b.data(), 4, 3.0, c.data(), 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(c(i, j), 0.5 * ab(i, j) + 6.0, 1e-10);
}

TEST(Gemm, MatvecMatchesMatmul) {
  Rng rng(2);
  Tensor a = random_tensor({5, 7}, rng);
  Tensor x = random_tensor({7}, rng);
  const Tensor y = matvec(a, x);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) s += a(i, j) * x(j);
    EXPECT_NEAR(y(i), s, 1e-10);
  }
}

// --- Symmetric eigensolver ---------------------------------------------------

class EighP : public ::testing::TestWithParam<int> {};

TEST_P(EighP, ReconstructsRandomSymmetricMatrix) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(100 + static_cast<std::uint64_t>(n));
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  Tensor v;
  std::vector<double> w;
  jacobi_eigh(a, v, w);

  // Eigenvalues ascending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(w[i - 1], w[i]);

  // V orthonormal: V^T V = I.
  const Tensor vtv = matmul_tn(v, v);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);

  // A = V diag(w) V^T.
  Tensor vd({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) vd(i, j) = v(i, j) * w[j];
  const Tensor rec = matmul_nt(vd, v);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(rec.flat()[i], a.flat()[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighP, ::testing::Values(1, 2, 3, 5, 10, 20, 40));

TEST(Eigh, DiagonalMatrix) {
  Tensor a({3, 3});
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  Tensor v;
  std::vector<double> w;
  jacobi_eigh(a, v, w);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[2], 3.0, 1e-12);
}

TEST(Eigh, NearDegenerateSpectrumConvergesWithReport) {
  // Eigenvalues separated by ~1e-12 of their magnitude: rotations between the
  // near-degenerate pair are ill-conditioned, but thresholded Jacobi must
  // still converge and say so in the report.
  const std::size_t n = 6;
  std::vector<double> diag{1.0, 1.0 + 1e-12, 1.0 + 2e-12, 3.0, 3.0 + 1e-12, 7.0};
  // A = Q diag Q^T with a deterministic dense orthogonal Q (product of plane
  // rotations), so the degeneracy is not axis-aligned.
  Tensor q({n, n});
  for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t r = p + 1; r < n; ++r) {
      const double th = 0.4 + 0.13 * static_cast<double>(p * n + r);
      const double c = std::cos(th), s = std::sin(th);
      for (std::size_t i = 0; i < n; ++i) {
        const double qp = q(i, p), qr = q(i, r);
        q(i, p) = c * qp - s * qr;
        q(i, r) = s * qp + c * qr;
      }
    }
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += q(i, k) * diag[k] * q(j, k);
      a(i, j) = s;
    }

  Tensor v;
  std::vector<double> w;
  EighInfo info;
  jacobi_eigh(a, v, w, 50, &info);
  EXPECT_TRUE(info.converged);
  EXPECT_GT(info.sweeps, 0);
  EXPECT_LE(info.off_fro, 1e-14 * fro_norm(a));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(w[i], diag[i], 1e-9);

  // Residual check: A v_j = w_j v_j even inside the degenerate clusters.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t k = 0; k < n; ++k) av += a(i, k) * v(k, j);
      EXPECT_NEAR(av, w[j] * v(i, j), 1e-9);
    }
}

TEST(Eigh, ThrowsOnInsufficientSweepsAndFillsInfo) {
  Rng rng(31);
  const std::size_t n = 12;
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  Tensor v;
  std::vector<double> w;
  EighInfo info;
  EXPECT_THROW(jacobi_eigh(a, v, w, /*max_sweeps=*/0, &info), turbda::Error);
  // The report is filled before the throw so callers can inspect it.
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.sweeps, 0);
  EXPECT_GT(info.off_fro, 0.0);
}

// --- Lane-batched symmetric eigensolver --------------------------------------

using simd::SimdLevel;

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> out;
  for (SimdLevel lv : {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx2Fma})
    if (simd::simd_level_available(lv)) out.push_back(lv);
  return out;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Tensor random_symmetric(std::size_t n, Rng& rng) {
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(EighBatch, LanesBitwiseMatchSequentialAtEveryLevel) {
  const std::size_t W = eigh_lane_width();
  ASSERT_EQ(W, 4u);
  const SimdLevel orig = simd::active_simd_level();
  for (SimdLevel lv : available_levels()) {
    ASSERT_TRUE(simd::force_simd_level(lv));
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{12}, std::size_t{20}}) {
      Rng rng(500 + static_cast<std::uint64_t>(n));
      std::vector<Tensor> as;
      for (std::size_t l = 0; l < W; ++l) as.push_back(random_symmetric(n, rng));
      std::vector<double> al(n * n * W), vl(n * n * W), wl(n * W);
      for (std::size_t e = 0; e < n * n; ++e)
        for (std::size_t l = 0; l < W; ++l) al[e * W + l] = as[l].flat()[e];
      std::vector<EighInfo> infos(W);
      jacobi_eigh_batch(al.data(), n, W, vl.data(), wl.data(), 50, infos.data());
      for (std::size_t l = 0; l < W; ++l) {
        Tensor v;
        std::vector<double> w;
        EighInfo info;
        jacobi_eigh(as[l], v, w, 50, &info);
        ASSERT_TRUE(info.converged);
        EXPECT_TRUE(infos[l].converged);
        EXPECT_EQ(infos[l].sweeps, info.sweeps);
        EXPECT_TRUE(same_bits(infos[l].off_fro, info.off_fro));
        for (std::size_t j = 0; j < n; ++j)
          EXPECT_TRUE(same_bits(wl[j * W + l], w[j]))
              << simd::simd_level_name(lv) << " n=" << n << " lane " << l << " w[" << j << "]";
        for (std::size_t e = 0; e < n * n; ++e)
          EXPECT_TRUE(same_bits(vl[e * W + l], v.flat()[e]))
              << simd::simd_level_name(lv) << " n=" << n << " lane " << l << " v elem " << e;
      }
    }
  }
  simd::force_simd_level(orig);
}

TEST(EighBatch, PartialBatchLanesMatchAndPadLanesUntouched) {
  const std::size_t W = eigh_lane_width();
  const std::size_t n = 9;
  const SimdLevel orig = simd::active_simd_level();
  for (SimdLevel lv : available_levels()) {
    ASSERT_TRUE(simd::force_simd_level(lv));
    for (std::size_t nb = 1; nb < W; ++nb) {
      Rng rng(900 + static_cast<std::uint64_t>(nb));
      std::vector<Tensor> as;
      for (std::size_t l = 0; l < nb; ++l) as.push_back(random_symmetric(n, rng));
      std::vector<double> al(n * n * W, 0.0), vl(n * n * W, -777.0), wl(n * W, -777.0);
      for (std::size_t e = 0; e < n * n; ++e)
        for (std::size_t l = 0; l < nb; ++l) al[e * W + l] = as[l].flat()[e];
      std::vector<EighInfo> infos(W);
      jacobi_eigh_batch(al.data(), n, nb, vl.data(), wl.data(), 50, infos.data());
      for (std::size_t l = 0; l < nb; ++l) {
        Tensor v;
        std::vector<double> w;
        jacobi_eigh(as[l], v, w);
        for (std::size_t j = 0; j < n; ++j) EXPECT_TRUE(same_bits(wl[j * W + l], w[j]));
        for (std::size_t e = 0; e < n * n; ++e) EXPECT_TRUE(same_bits(vl[e * W + l], v.flat()[e]));
      }
      // Output lanes beyond nb are never written.
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t l = nb; l < W; ++l) EXPECT_EQ(wl[j * W + l], -777.0);
      for (std::size_t e = 0; e < n * n; ++e)
        for (std::size_t l = nb; l < W; ++l) EXPECT_EQ(vl[e * W + l], -777.0);
    }
  }
  simd::force_simd_level(orig);
}

TEST(EighBatch, MixedConvergenceReportsPerLaneWithoutThrowing) {
  const std::size_t W = eigh_lane_width();
  const std::size_t n = 12;
  const SimdLevel orig = simd::active_simd_level();
  for (SimdLevel lv : available_levels()) {
    ASSERT_TRUE(simd::force_simd_level(lv));
    // Lane 0 converges at the entry check (diagonal matrix, 0 sweeps); the
    // dense random lanes cannot finish within one sweep, so a single batch
    // mixes converged and exhausted lanes.
    Rng rng(77);
    std::vector<Tensor> as;
    Tensor diag({n, n});
    for (std::size_t i = 0; i < n; ++i) diag(i, i) = static_cast<double>(i) - 3.5;
    as.push_back(diag);
    for (std::size_t l = 1; l < W; ++l) as.push_back(random_symmetric(n, rng));
    std::vector<double> al(n * n * W), vl(n * n * W), wl(n * W);
    for (std::size_t e = 0; e < n * n; ++e)
      for (std::size_t l = 0; l < W; ++l) al[e * W + l] = as[l].flat()[e];
    std::vector<EighInfo> infos(W);
    jacobi_eigh_batch(al.data(), n, W, vl.data(), wl.data(), /*max_sweeps=*/1, infos.data());

    // Lane 0: bitwise-identical to the sequential solve of the diagonal case.
    {
      Tensor v;
      std::vector<double> w;
      EighInfo info;
      jacobi_eigh(as[0], v, w, 1, &info);
      EXPECT_TRUE(infos[0].converged);
      EXPECT_EQ(infos[0].sweeps, info.sweeps);
      EXPECT_EQ(infos[0].sweeps, 0);
      for (std::size_t j = 0; j < n; ++j) EXPECT_TRUE(same_bits(wl[j * W + 0], w[j]));
      for (std::size_t e = 0; e < n * n; ++e) EXPECT_TRUE(same_bits(vl[e * W + 0], v.flat()[e]));
    }
    // Dense lanes: exhausted, reported per lane with the sequential solver's
    // residual, and given the documented benign identity fallback output.
    for (std::size_t l = 1; l < W; ++l) {
      Tensor v;
      std::vector<double> w;
      EighInfo info;
      EXPECT_THROW(jacobi_eigh(as[l], v, w, 1, &info), turbda::Error);
      ASSERT_FALSE(info.converged);
      EXPECT_FALSE(infos[l].converged);
      EXPECT_EQ(infos[l].sweeps, info.sweeps);
      EXPECT_TRUE(same_bits(infos[l].off_fro, info.off_fro));
      for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(wl[j * W + l], 1.0);
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_EQ(vl[(i * n + j) * W + l], i == j ? 1.0 : 0.0);
    }
  }
  simd::force_simd_level(orig);
}

TEST(Cholesky, FactorizesAndSolves) {
  Rng rng(7);
  const std::size_t n = 8;
  // SPD matrix: A = B B^T + n*I.
  Tensor b = random_tensor({n, n}, rng);
  Tensor a = matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

  const Tensor l = cholesky(a);
  const Tensor llt = matmul_nt(l, l);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(llt.flat()[i], a.flat()[i], 1e-9);

  std::vector<double> rhs(n);
  rng.fill_gaussian(rhs);
  const auto x = spd_solve(a, rhs);
  // Check A x == rhs.
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += a(i, j) * x[j];
    EXPECT_NEAR(s, rhs[i], 1e-8);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Tensor a({2, 2});
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(cholesky(a), Error);
}

TEST(SymFunc, MatrixSquareRoot) {
  Rng rng(8);
  const std::size_t n = 6;
  Tensor b = random_tensor({n, n}, rng);
  Tensor a = matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const Tensor s = sym_func(a, [](double x) { return std::sqrt(x); });
  const Tensor ss = matmul(s, s);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(ss.flat()[i], a.flat()[i], 1e-8);
}

TEST(FroNorm, KnownValue) {
  Tensor a({2, 2});
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(fro_norm(a), 5.0);
}

}  // namespace
}  // namespace turbda::tensor
