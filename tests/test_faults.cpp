// Fault-tolerance tests: deterministic fault injection (FaultyStream),
// observation QC gates, graceful degradation of the cycling driver (failed
// analyses keep the forecast, LETKF eigensolve fallback, spread watchdog)
// and the headline acceptance scenario — a cycling run with 5% NaN-poisoned
// observations plus a forced analysis failure completes every cycle with
// analysis RMSE below the free run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "da/etkf.hpp"
#include "da/letkf.hpp"
#include "da/quality_control.hpp"
#include "models/lorenz96.hpp"
#include "rng/rng.hpp"
#include "stream/faulty_stream.hpp"
#include "stream/realtime_runner.hpp"
#include "stream/synthetic_stream.hpp"

namespace turbda {
namespace {

using models::Lorenz96;
using models::Lorenz96Config;

// --------------------------------------------------------------- fixture ---

// The Lorenz-96 ring read as an 8 x 5 single-level grid so LETKF's
// localization geometry applies to the same state the ETKF tests use.
constexpr std::size_t kNx = 8, kNy = 5, kLev = 1;
constexpr std::size_t kDim = kNx * kNy * kLev;

std::vector<double> spun_up_truth() {
  Lorenz96Config mc;
  mc.dim = kDim;
  std::vector<double> truth0(mc.dim, 8.0);
  truth0[0] += 0.01;
  Lorenz96 spin(mc);
  for (int i = 0; i < 300; ++i) spin.step(truth0);
  return truth0;
}

std::unique_ptr<da::Filter> make_etkf() {
  return std::make_unique<da::ETKF>(da::EtkfConfig{.rtps = 0.4});
}

da::LetkfConfig letkf_grid_config() {
  da::LetkfConfig lc;
  lc.nx = kNx;
  lc.ny = kNy;
  lc.n_levels = kLev;
  lc.domain_m = 8.0e6;
  lc.cutoff_m = 3.0e6;
  lc.rtps = 0.3;
  return lc;
}

/// A filter whose try_analyze fails on one chosen call — the deterministic
/// stand-in for "an eigensolve blew up mid-run" in cycling scenarios.
class FlakyFilter final : public da::Filter {
 public:
  explicit FlakyFilter(int fail_call) : inner_(da::EtkfConfig{.rtps = 0.4}), fail_call_(fail_call) {}

  void analyze(da::Ensemble& ens, std::span<const double> y, const da::ObservationOperator& h,
               const da::DiagonalR& r) override {
    inner_.analyze(ens, y, h, r);
  }

  Status try_analyze(da::Ensemble& ens, std::span<const double> y,
                     const da::ObservationOperator& h, const da::DiagonalR& r,
                     const da::AnalysisOptions& opts, da::AnalysisStats* stats) override {
    if (calls_++ == fail_call_)
      return Status(StatusCode::kNonConvergent, "injected eigensolve failure");
    return inner_.try_analyze(ens, y, h, r, opts, stats);
  }

  [[nodiscard]] std::string name() const override { return "FlakyETKF"; }

 private:
  da::ETKF inner_;
  int fail_call_;
  int calls_ = 0;
};

struct FaultRun {
  std::vector<stream::StreamCycleMetrics> metrics;
  da::Ensemble ens{2, kDim};
  stream::FaultCounters faults;
};

/// Cycles RealtimeRunner on a Lorenz-96 truth, optionally wrapping the
/// synthetic stream in a FaultyStream. `filter == nullptr` gives the free run.
FaultRun run_faulty(stream::SyntheticStreamConfig sc, stream::RealtimeConfig rc,
                    const stream::FaultConfig* fc, std::unique_ptr<da::Filter> filter) {
  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(kDim, kNx, kNy, kLev);
  da::DiagonalR r(kDim, 1.0);
  const auto truth0 = spun_up_truth();
  stream::SyntheticStream inner(sc, truth_model, h, r, truth0);
  std::optional<stream::FaultyStream> faulty;
  stream::ObservationStream* s = &inner;
  if (fc != nullptr) {
    faulty.emplace(*fc, inner);
    s = &*faulty;
  }
  stream::RealtimeRunner runner(rc, *s, fcst_model, filter.get());
  FaultRun out;
  out.metrics = runner.run(truth0);
  out.ens = runner.ensemble();
  if (faulty.has_value()) out.faults = faulty->counters();
  return out;
}

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs";
  }
}

void expect_fault_metrics_bitwise_equal(const std::vector<stream::StreamCycleMetrics>& a,
                                        const std::vector<stream::StreamCycleMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].rmse_post, b[k].rmse_post) << "cycle " << k;
    EXPECT_EQ(a[k].spread_post, b[k].spread_post) << "cycle " << k;
    EXPECT_EQ(a[k].batches_assimilated, b[k].batches_assimilated) << "cycle " << k;
    EXPECT_EQ(a[k].obs_rejected, b[k].obs_rejected) << "cycle " << k;
    EXPECT_EQ(a[k].batches_rejected, b[k].batches_rejected) << "cycle " << k;
    EXPECT_EQ(a[k].max_r_scale, b[k].max_r_scale) << "cycle " << k;
    EXPECT_EQ(a[k].analysis_failures, b[k].analysis_failures) << "cycle " << k;
    EXPECT_EQ(a[k].solver_fallbacks, b[k].solver_fallbacks) << "cycle " << k;
    EXPECT_EQ(a[k].spread_recoveries, b[k].spread_recoveries) << "cycle " << k;
    EXPECT_EQ(a[k].degraded, b[k].degraded) << "cycle " << k;
  }
}

int sum_metric(const std::vector<stream::StreamCycleMetrics>& ms,
               int stream::StreamCycleMetrics::* field) {
  int s = 0;
  for (const auto& m : ms) s += m.*field;
  return s;
}

// -------------------------------------------------------- FaultyStream -----

TEST(FaultyStream, DisabledInjectionIsBitwisePassthrough) {
  stream::SyntheticStreamConfig sc;
  sc.latency_cycles = 0.3;
  sc.jitter_cycles = 0.4;
  stream::RealtimeConfig rc;
  rc.cycles = 12;
  rc.n_members = 10;
  rc.deadline_slack_cycles = 0.0;

  const auto plain = run_faulty(sc, rc, nullptr, make_etkf());
  stream::FaultConfig fc;  // all probabilities zero
  const auto wrapped = run_faulty(sc, rc, &fc, make_etkf());

  expect_bitwise_equal(plain.ens, wrapped.ens);
  expect_fault_metrics_bitwise_equal(plain.metrics, wrapped.metrics);
  EXPECT_EQ(wrapped.faults.nan_values, 0u);
  EXPECT_EQ(wrapped.faults.batches_duplicated, 0u);
}

TEST(FaultyStream, DisabledDecoratorCheckpointIsBitwiseBareStream) {
  // A zero-probability decorator must forward save/restore untouched: the
  // checkpoint blob has to be bitwise identical to the bare stream's, and a
  // decorator restored from a *bare* blob must continue identically.
  stream::SyntheticStreamConfig sc;
  sc.latency_cycles = 0.5;
  sc.jitter_cycles = 0.3;

  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  da::IdentityObs h(kDim, kNx, kNy, kLev);
  da::DiagonalR r(kDim, 1.0);
  const auto truth0 = spun_up_truth();

  Lorenz96 tm_bare(mc);
  stream::SyntheticStream bare(sc, tm_bare, h, r, truth0);
  for (int k = 0; k <= 5; ++k) bare.produce(k);
  std::vector<std::uint8_t> blob_bare;
  ASSERT_TRUE(bare.save_state(blob_bare));

  Lorenz96 tm_wrapped(mc);
  stream::SyntheticStream inner(sc, tm_wrapped, h, r, truth0);
  stream::FaultyStream wrapped(stream::FaultConfig{}, inner);  // all probs zero
  for (int k = 0; k <= 5; ++k) wrapped.produce(k);
  std::vector<std::uint8_t> blob_wrapped;
  ASSERT_TRUE(wrapped.save_state(blob_wrapped));

  ASSERT_EQ(blob_bare.size(), blob_wrapped.size());
  EXPECT_EQ(0, std::memcmp(blob_bare.data(), blob_wrapped.data(), blob_bare.size()));

  // Restore a fresh disabled decorator from the BARE blob and continue.
  Lorenz96 tm_resume(mc);
  stream::SyntheticStream inner2(sc, tm_resume, h, r, truth0);
  stream::FaultyStream resumed(stream::FaultConfig{}, inner2);
  ASSERT_TRUE(resumed.restore_state(blob_bare));
  std::vector<stream::ObsBatch> got_bare, got_resumed;
  for (int k = 6; k <= 8; ++k) {
    bare.produce(k);
    resumed.produce(k);
  }
  bare.collect(1e18, got_bare);
  resumed.collect(1e18, got_resumed);
  ASSERT_EQ(got_bare.size(), got_resumed.size());
  for (std::size_t i = 0; i < got_bare.size(); ++i) {
    EXPECT_EQ(got_bare[i].cycle, got_resumed[i].cycle);
    EXPECT_EQ(got_bare[i].valid_cycles, got_resumed[i].valid_cycles);
    EXPECT_EQ(got_bare[i].arrival_cycles, got_resumed[i].arrival_cycles);
    ASSERT_EQ(got_bare[i].y.size(), got_resumed[i].y.size());
    EXPECT_EQ(0, std::memcmp(got_bare[i].y.data(), got_resumed[i].y.data(),
                             got_bare[i].y.size() * sizeof(double)));
  }
}

TEST(FaultyStream, InjectionIsDeterministic) {
  stream::FaultConfig fc;
  fc.nan_prob = 0.05;
  fc.inf_prob = 0.02;
  fc.outlier_prob = 0.03;
  fc.stuck_prob = 0.3;
  fc.duplicate_prob = 0.3;
  fc.truncate_prob = 0.2;

  auto produce_all = [&](std::vector<stream::ObsBatch>& out, stream::FaultCounters& ctr) {
    Lorenz96Config mc;
    mc.dim = kDim;
    mc.steps_per_window = 10;
    Lorenz96 truth_model(mc);
    da::IdentityObs h(kDim, kNx, kNy, kLev);
    da::DiagonalR r(kDim, 1.0);
    const auto truth0 = spun_up_truth();
    stream::SyntheticStream inner({}, truth_model, h, r, truth0);
    stream::FaultyStream s(fc, inner);
    for (int k = 0; k < 10; ++k) s.produce(k);
    s.collect(1e18, out);
    ctr = s.counters();
  };

  std::vector<stream::ObsBatch> a, b;
  stream::FaultCounters ca, cb;
  produce_all(a, ca);
  produce_all(b, cb);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].arrival_cycles, b[i].arrival_cycles);
    ASSERT_EQ(a[i].y.size(), b[i].y.size());
    EXPECT_EQ(0, std::memcmp(a[i].y.data(), b[i].y.data(), a[i].y.size() * sizeof(double)));
  }
  EXPECT_EQ(ca.nan_values, cb.nan_values);
  EXPECT_EQ(ca.stuck_values, cb.stuck_values);
  EXPECT_EQ(ca.batches_duplicated, cb.batches_duplicated);
  EXPECT_EQ(ca.batches_truncated, cb.batches_truncated);
  EXPECT_GT(ca.nan_values + ca.inf_values + ca.outlier_values, 0u);
  EXPECT_GT(ca.batches_duplicated, 0u);
}

// ------------------------------------------------------------------- QC ----

TEST(QualityControl, GatesRejectAndRewriteInOrder) {
  const std::size_t p = 4;
  da::Ensemble ens(10, p);
  const std::vector<double> base{1.0, 2.0, 3.0, 4.0};
  for (std::size_t m = 0; m < 10; ++m) {
    auto row = ens.member(m);
    for (std::size_t i = 0; i < p; ++i)
      row[i] = base[i] + (static_cast<double>(m) - 4.5) * 0.1;
  }
  da::IdentityObs h(p);
  da::DiagonalR r(p, 1.0);

  da::QcConfig qc;
  qc.enabled = true;
  qc.clim_min = -1.0e3;
  qc.clim_max = 1.0e3;
  qc.bg_sigma = 4.0;
  qc.stale_r_inflation = 0.5;

  std::vector<double> y{std::nan(""), 2000.0, 3.0 + 50.0, 4.2};
  std::vector<std::uint8_t> mask;
  const auto rep = da::apply_quality_control(qc, y, h, r, ens, /*age_cycles=*/2, mask);

  EXPECT_EQ(rep.checked, p);
  EXPECT_EQ(rep.rejected_nonfinite, 1u);
  EXPECT_EQ(rep.rejected_range, 1u);
  EXPECT_EQ(rep.rejected_departure, 1u);
  EXPECT_EQ(rep.rejected_total(), 3u);
  EXPECT_EQ(rep.r_scale, 2.0);  // 1 + age * inflation, exactly

  ASSERT_EQ(mask.size(), p);
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 0);
  EXPECT_EQ(mask[3], 1);
  // Rejected values are rewritten to the obs-space ensemble mean: finite, so
  // nothing non-finite can leak downstream even past a masking bug.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], base[i], 1e-12);
  EXPECT_EQ(y[3], 4.2);
}

TEST(QualityControl, StaleInflationIsClamped) {
  da::Ensemble ens(4, 2);
  da::IdentityObs h(2);
  da::DiagonalR r(2, 1.0);
  da::QcConfig qc;
  qc.enabled = true;
  qc.stale_r_inflation = 1.0;
  qc.max_r_scale = 4.0;
  std::vector<double> y{0.0, 0.0};
  std::vector<std::uint8_t> mask;
  const auto rep = da::apply_quality_control(qc, y, h, r, ens, /*age_cycles=*/10, mask);
  EXPECT_EQ(rep.r_scale, 4.0);
}

TEST(QualityControl, FullyMaskedAnalysisKeepsPrior) {
  rng::Rng rng(3);
  da::Ensemble ens(12, kDim);
  std::vector<double> base(kDim, 0.0);
  rng.fill_gaussian(base, 0.0, 2.0);
  ens.init_perturbed(base, 1.0, rng);
  const auto prior = ens.data();

  da::IdentityObs h(kDim);
  da::DiagonalR r(kDim, 1.0);
  std::vector<double> y(kDim, 100.0);  // wildly wrong, but fully masked
  std::vector<std::uint8_t> mask(kDim, 0);

  da::ETKF etkf(da::EtkfConfig{});
  da::AnalysisOptions opts;
  opts.obs_mask = mask;
  da::AnalysisStats st;
  const Status s = etkf.try_analyze(ens, y, h, r, opts, &st);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(st.obs_masked, kDim);

  // Zero observation weight everywhere => the transform is the identity up
  // to the mean/perturbation recombination round-off.
  for (std::size_t m = 0; m < ens.size(); ++m)
    for (std::size_t i = 0; i < kDim; ++i)
      EXPECT_NEAR(ens.member(m)[i], prior(m, i), 1e-10);
}

// ------------------------------------------------- degraded cycling runs ---

void expect_nan_burst_survival(stream::Schedule schedule) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 40;
  rc.n_members = 16;
  rc.schedule = schedule;
  rc.qc.enabled = true;  // finite gate is on by default

  stream::FaultConfig fc;
  fc.nan_prob = 0.05;

  const auto da_run = run_faulty(sc, rc, &fc, make_etkf());
  const auto free_run = run_faulty(sc, rc, nullptr, nullptr);

  ASSERT_EQ(da_run.metrics.size(), static_cast<std::size_t>(rc.cycles));
  EXPECT_GT(da_run.faults.nan_values, 0u);
  EXPECT_GT(sum_metric(da_run.metrics, &stream::StreamCycleMetrics::obs_rejected), 0);
  for (const auto& m : da_run.metrics) {
    EXPECT_TRUE(std::isfinite(m.rmse_post)) << "cycle " << m.cycle;
    EXPECT_TRUE(std::isfinite(m.spread_post)) << "cycle " << m.cycle;
  }
  EXPECT_LT(stream::mean_rmse_post(da_run.metrics, 20),
            stream::mean_rmse_post(free_run.metrics, 20));
}

TEST(FaultTolerantCycling, SurvivesNanBurstSerial) {
  expect_nan_burst_survival(stream::Schedule::Serial);
}

TEST(FaultTolerantCycling, SurvivesNanBurstOverlapped) {
  expect_nan_burst_survival(stream::Schedule::Overlapped);
}

TEST(FaultTolerantCycling, QcDecisionsAreThreadCountInvariant) {
  stream::SyntheticStreamConfig sc;
  sc.latency_cycles = 0.2;
  sc.jitter_cycles = 0.3;
  stream::RealtimeConfig rc;
  rc.cycles = 20;
  rc.n_members = 12;
  rc.schedule = stream::Schedule::Overlapped;
  rc.qc.enabled = true;
  rc.qc.bg_sigma = 5.0;
  rc.qc.stale_r_inflation = 0.5;

  stream::FaultConfig fc;
  fc.nan_prob = 0.04;
  fc.outlier_prob = 0.03;
  fc.stuck_prob = 0.4;
  fc.duplicate_prob = 0.3;
  fc.truncate_prob = 0.15;

  rc.n_forecast_threads = 1;
  const auto serial_threads = run_faulty(sc, rc, &fc, make_etkf());
  rc.n_forecast_threads = 0;  // all pool workers
  const auto pool_threads = run_faulty(sc, rc, &fc, make_etkf());

  expect_bitwise_equal(serial_threads.ens, pool_threads.ens);
  expect_fault_metrics_bitwise_equal(serial_threads.metrics, pool_threads.metrics);
}

TEST(FaultTolerantCycling, StuckSensorIsRejectedByDepartureGate) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 30;
  rc.n_members = 16;
  rc.qc.enabled = true;
  rc.qc.bg_sigma = 4.0;

  stream::FaultConfig fc;
  fc.stuck_prob = 0.8;
  fc.stuck_cycles = 4;

  const auto da_run = run_faulty(sc, rc, &fc, make_etkf());
  const auto free_run = run_faulty(sc, rc, nullptr, nullptr);

  EXPECT_GT(da_run.faults.stuck_values, 0u);
  // A channel frozen at a stale value departs from any plausible background
  // within a few windows — the departure gate must catch it.
  EXPECT_GT(sum_metric(da_run.metrics, &stream::StreamCycleMetrics::obs_rejected), 0);
  EXPECT_LT(stream::mean_rmse_post(da_run.metrics, 15),
            stream::mean_rmse_post(free_run.metrics, 15));
}

TEST(FaultTolerantCycling, DuplicatedBatchesAreAppliedExactlyOnce) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 12;
  rc.n_members = 10;
  rc.qc.enabled = true;

  stream::FaultConfig fc;
  fc.duplicate_prob = 1.0;
  fc.duplicate_delay_cycles = 0.5;

  const auto r = run_faulty(sc, rc, &fc, make_etkf());
  // Every window assimilated exactly once; every duplicate that arrived in
  // time (all but the final window's) refused by the duplicate guard.
  EXPECT_EQ(sum_metric(r.metrics, &stream::StreamCycleMetrics::batches_assimilated), rc.cycles);
  EXPECT_EQ(sum_metric(r.metrics, &stream::StreamCycleMetrics::batches_rejected),
            rc.cycles - 1);
}

TEST(FaultTolerantCycling, TruncatedBatchRecoveredByRetransmission) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 12;
  rc.n_members = 10;
  rc.qc.enabled = true;

  stream::FaultConfig fc;
  fc.truncate_prob = 1.0;   // every original arrives half-length...
  fc.duplicate_prob = 1.0;  // ...but a full copy follows half a window later
  fc.duplicate_delay_cycles = 0.5;

  const auto r = run_faulty(sc, rc, &fc, make_etkf());
  ASSERT_EQ(r.metrics.size(), static_cast<std::size_t>(rc.cycles));
  // Each truncated original is refused; the full retransmission of window k
  // lands at cycle k+1 (age 1). The final window's copy arrives too late.
  EXPECT_EQ(sum_metric(r.metrics, &stream::StreamCycleMetrics::batches_assimilated),
            rc.cycles - 1);
  EXPECT_EQ(sum_metric(r.metrics, &stream::StreamCycleMetrics::batches_rejected), rc.cycles);
  int max_age = 0;
  for (const auto& m : r.metrics) max_age = std::max(max_age, m.max_batch_age);
  EXPECT_EQ(max_age, 1);
}

TEST(FaultTolerantCycling, AnalysisFailureDegradesInsteadOfAborting) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 10;
  rc.n_members = 10;

  const auto r = run_faulty(sc, rc, nullptr, std::make_unique<FlakyFilter>(3));
  ASSERT_EQ(r.metrics.size(), static_cast<std::size_t>(rc.cycles));
  EXPECT_EQ(sum_metric(r.metrics, &stream::StreamCycleMetrics::analysis_failures), 1);
  EXPECT_TRUE(r.metrics[3].degraded);
  EXPECT_EQ(r.metrics[3].batches_assimilated, 0);
  EXPECT_EQ(r.metrics[4].batches_assimilated, 1);
  for (const auto& m : r.metrics) EXPECT_TRUE(std::isfinite(m.rmse_post));
}

TEST(FaultTolerantCycling, FailFastModeStillAborts) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 10;
  rc.n_members = 10;
  rc.degrade_on_failure = false;

  Lorenz96Config mc;
  mc.dim = kDim;
  mc.steps_per_window = 10;
  Lorenz96 truth_model(mc), fcst_model(mc);
  da::IdentityObs h(kDim, kNx, kNy, kLev);
  da::DiagonalR r(kDim, 1.0);
  const auto truth0 = spun_up_truth();
  stream::SyntheticStream s(sc, truth_model, h, r, truth0);
  FlakyFilter filter(3);
  stream::RealtimeRunner runner(rc, s, fcst_model, &filter);
  EXPECT_THROW((void)runner.run(truth0), Error);
}

TEST(FaultTolerantCycling, SpreadWatchdogRecoversCollapseAndDivergence) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 8;
  rc.n_members = 12;
  rc.init_spread = 0.0;  // fully collapsed ensemble: rescaling can't fix it
  rc.spread_floor = 0.5;
  rc.spread_ceiling = 50.0;

  const auto r = run_faulty(sc, rc, nullptr, make_etkf());
  ASSERT_EQ(r.metrics.size(), static_cast<std::size_t>(rc.cycles));
  EXPECT_GE(r.metrics[0].spread_recoveries, 1);
  EXPECT_TRUE(r.metrics[0].degraded);
  EXPECT_GT(r.metrics[0].spread_post, 0.05);
  for (const auto& m : r.metrics) {
    EXPECT_TRUE(std::isfinite(m.rmse_post)) << "cycle " << m.cycle;
    EXPECT_LE(m.spread_post, rc.spread_ceiling * 1.01) << "cycle " << m.cycle;
  }
}

// ------------------------------------------------- LETKF eigh fallback -----

TEST(LetkfFallback, ExhaustedSweepBudgetKeepsForecastColumns) {
  rng::Rng rng(11);
  da::Ensemble ens(16, kDim);
  std::vector<double> base(kDim, 0.0);
  rng.fill_gaussian(base, 0.0, 3.0);
  ens.init_perturbed(base, 1.5, rng);
  const auto prior = ens.data();

  da::IdentityObs h(kDim, kNx, kNy, kLev);
  da::DiagonalR r(kDim, 0.04);  // strong obs => well-mixed local transforms
  std::vector<double> y(kDim);
  h.apply(base, y);
  rng::Rng r_obs(12);
  r.perturb(y, r_obs);

  // A single Jacobi sweep cannot converge these 16x16 local problems.
  auto lc = letkf_grid_config();
  lc.eigh_max_sweeps = 1;
  lc.eigh_fallback = true;
  da::LETKF letkf(lc);

  da::AnalysisStats st;
  const Status s = letkf.try_analyze(ens, y, h, r, {}, &st);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_GT(st.solver_failures, 0u);
  EXPECT_GT(st.fallback_columns, 0u);

  // Every fallback column must hold its forecast (up to the
  // mean/perturbation recombination round-off, as in the no-obs fast path).
  if (st.fallback_columns == kDim) {
    for (std::size_t m = 0; m < ens.size(); ++m)
      for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_NEAR(ens.member(m)[i], prior(m, i), 1e-10);
  }
  for (std::size_t m = 0; m < ens.size(); ++m)
    for (std::size_t i = 0; i < kDim; ++i)
      EXPECT_TRUE(std::isfinite(ens.member(m)[i]));
}

TEST(LetkfFallback, DisabledFallbackFailsWithoutTouchingEnsemble) {
  rng::Rng rng(13);
  da::Ensemble ens(16, kDim);
  std::vector<double> base(kDim, 0.0);
  rng.fill_gaussian(base, 0.0, 3.0);
  ens.init_perturbed(base, 1.5, rng);
  const auto prior = ens.data();

  da::IdentityObs h(kDim, kNx, kNy, kLev);
  da::DiagonalR r(kDim, 0.04);
  std::vector<double> y(kDim);
  h.apply(base, y);
  rng::Rng r_obs(14);
  r.perturb(y, r_obs);

  auto lc = letkf_grid_config();
  lc.eigh_max_sweeps = 1;
  lc.eigh_fallback = false;
  da::LETKF letkf(lc);

  da::AnalysisStats st;
  const Status s = letkf.try_analyze(ens, y, h, r, {}, &st);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNonConvergent);
  for (std::size_t m = 0; m < ens.size(); ++m)
    for (std::size_t i = 0; i < kDim; ++i)
      EXPECT_EQ(ens.member(m)[i], prior(m, i));

  // The legacy throwing entry point surfaces the same failure as a
  // catchable Error on the calling thread (not an escaped worker exception).
  EXPECT_THROW(letkf.analyze(ens, y, h, r), Error);
}

// ------------------------------------------------- acceptance scenario -----

TEST(FaultTolerantCycling, AcceptanceNanPoisonPlusForcedSolverFailure) {
  stream::SyntheticStreamConfig sc;
  stream::RealtimeConfig rc;
  rc.cycles = 40;
  rc.n_members = 16;
  rc.qc.enabled = true;
  rc.qc.bg_sigma = 5.0;

  stream::FaultConfig fc;
  fc.nan_prob = 0.05;  // 5% of observation values poisoned

  const auto da_run = run_faulty(sc, rc, &fc, std::make_unique<FlakyFilter>(17));
  const auto free_run = run_faulty(sc, rc, nullptr, nullptr);

  // Every cycle completed, the forced failure degraded exactly one of them,
  // QC excised poisoned values, and the analysis still beats the free run.
  ASSERT_EQ(da_run.metrics.size(), static_cast<std::size_t>(rc.cycles));
  EXPECT_EQ(sum_metric(da_run.metrics, &stream::StreamCycleMetrics::analysis_failures), 1);
  EXPECT_TRUE(da_run.metrics[17].degraded);
  EXPECT_GT(sum_metric(da_run.metrics, &stream::StreamCycleMetrics::obs_rejected), 0);
  for (const auto& m : da_run.metrics) EXPECT_TRUE(std::isfinite(m.rmse_post));
  EXPECT_LT(stream::mean_rmse_post(da_run.metrics, 20),
            stream::mean_rmse_post(free_run.metrics, 20));

  // The per-cycle QC/degradation counters land in the metrics CSV.
  const std::string csv = testing::TempDir() + "fault_metrics.csv";
  stream::write_stream_metrics_csv(csv, da_run.metrics);
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  // Skip the '#'-prefixed schema-version comment line(s) above the header.
  while (std::getline(in, header) && !header.empty() && header[0] == '#') {
  }
  for (const char* col : {"obs_rejected", "batches_rejected", "max_r_scale",
                          "analysis_failures", "solver_fallbacks", "spread_recoveries",
                          "degraded"})
    EXPECT_NE(header.find(col), std::string::npos) << col;
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, da_run.metrics.size());
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace turbda
