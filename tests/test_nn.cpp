#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/surrogate.hpp"
#include "nn/vit.hpp"
#include "rng/rng.hpp"

namespace turbda::nn {
namespace {

using turbda::rng::Rng;

Tensor random_tensor(std::initializer_list<std::size_t> shape, Rng& rng, double sd = 1.0) {
  Tensor t(shape);
  rng.fill_gaussian(t.flat(), 0.0, sd);
  return t;
}

/// Scalar loss L = sum(c .* f(x)) used for finite-difference grad checks.
double probe_loss(Module& m, const Tensor& x, const Tensor& c) {
  Tensor y = m.forward(x);
  double s = 0.0;
  const auto yf = y.flat();
  const auto cf = c.flat();
  for (std::size_t i = 0; i < yf.size(); ++i) s += cf[i] * yf[i];
  return s;
}

/// Checks both input gradient and every parameter gradient of a module by
/// central finite differences.
void grad_check(Module& m, const Tensor& x, double tol = 1e-6, double eps = 1e-5) {
  m.set_training(false);  // deterministic forward
  Rng crng(999);
  Tensor y0 = m.forward(x);
  Tensor c(y0.shape());
  crng.fill_gaussian(c.flat());

  std::vector<Param*> params;
  m.collect_params(params);
  for (Param* p : params) p->zero_grad();
  m.forward(x);  // refresh caches
  const Tensor dx = m.backward(c);

  // Input gradient.
  Tensor xp = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = xp.flat()[i];
    xp.flat()[i] = orig + eps;
    const double lp = probe_loss(m, xp, c);
    xp.flat()[i] = orig - eps;
    const double lm = probe_loss(m, xp, c);
    xp.flat()[i] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    ASSERT_NEAR(dx.flat()[i], fd, tol * (1.0 + std::abs(fd))) << "input grad, index " << i;
  }

  // Parameter gradients (probe a subset for large params).
  for (Param* p : params) {
    auto w = p->value.flat();
    const std::size_t stride = std::max<std::size_t>(1, w.size() / 16);
    for (std::size_t i = 0; i < w.size(); i += stride) {
      const double orig = w[i];
      w[i] = orig + eps;
      const double lp = probe_loss(m, x, c);
      w[i] = orig - eps;
      const double lm = probe_loss(m, x, c);
      w[i] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      ASSERT_NEAR(p->grad.flat()[i], fd, tol * (1.0 + std::abs(fd)))
          << "param " << p->name << ", index " << i;
    }
  }
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  lin.weight.value.fill(0.0);
  lin.weight.value(0, 0) = 1.0;
  lin.weight.value(2, 1) = 2.0;
  lin.bias.value(0) = 0.5;
  Tensor x({1, 3});
  x(0, 0) = 3.0;
  x(0, 2) = 4.0;
  const Tensor y = lin.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 8.0);
}

TEST(Linear, GradCheck) {
  Rng rng(2);
  Linear lin(5, 4, rng);
  const Tensor x = random_tensor({3, 5}, rng);
  grad_check(lin, x);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(16);
  const Tensor x = random_tensor({4, 16}, rng, 3.0);
  const Tensor y = ln.forward(x);
  for (std::size_t r = 0; r < 4; ++r) {
    double mu = 0.0, var = 0.0;
    for (double v : y.row(r)) mu += v;
    mu /= 16.0;
    for (double v : y.row(r)) var += (v - mu) * (v - mu);
    var /= 16.0;
    EXPECT_NEAR(mu, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(4);
  LayerNorm ln(8);
  // Nontrivial gain/bias so their grads are exercised.
  rng.fill_gaussian(ln.gain.value.flat(), 1.0, 0.3);
  rng.fill_gaussian(ln.bias.value.flat(), 0.0, 0.3);
  const Tensor x = random_tensor({5, 8}, rng);
  grad_check(ln, x, 1e-5);
}

TEST(Gelu, KnownValues) {
  Gelu g;
  Tensor x({1, 3});
  x(0, 0) = 0.0;
  x(0, 1) = 10.0;
  x(0, 2) = -10.0;
  const Tensor y = g.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_NEAR(y(0, 1), 10.0, 1e-6);
  EXPECT_NEAR(y(0, 2), 0.0, 1e-6);
}

TEST(Gelu, GradCheck) {
  Rng rng(5);
  Gelu g;
  const Tensor x = random_tensor({4, 6}, rng);
  grad_check(g, x);
}

TEST(Dropout, IdentityInEval) {
  Rng rng(6);
  Dropout d(0.5, &rng);
  d.set_training(false);
  const Tensor x = random_tensor({3, 7}, rng);
  const Tensor y = d.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y.flat()[i], x.flat()[i]);
}

TEST(Dropout, DropsAboutPAndScales) {
  Rng rng(7);
  Dropout d(0.25, &rng);
  d.set_training(true);
  const Tensor x = Tensor::full({100, 100}, 1.0);
  const Tensor y = d.forward(x);
  int zeros = 0;
  for (double v : y.flat()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0 / 0.75, 1e-12);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1e4, 0.25, 0.02);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(8);
  Dropout d(0.5, &rng);
  d.set_training(true);
  const Tensor x = Tensor::full({10, 10}, 1.0);
  const Tensor y = d.forward(x);
  const Tensor dx = d.backward(Tensor::full({10, 10}, 1.0));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(dx.flat()[i], y.flat()[i]);
}

TEST(DropPath, ZeroesWholeSamples) {
  Rng rng(9);
  const std::size_t tokens = 4;
  DropPath dp(0.5, tokens, &rng);
  dp.set_training(true);
  const Tensor x = Tensor::full({8 * tokens, 3}, 1.0);  // 8 samples
  const Tensor y = dp.forward(x);
  for (std::size_t s = 0; s < 8; ++s) {
    const double v0 = y(s * tokens, 0);
    for (std::size_t t = 0; t < tokens; ++t)
      for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(y(s * tokens + t, j), v0);
    EXPECT_TRUE(v0 == 0.0 || std::abs(v0 - 2.0) < 1e-12);
  }
}

TEST(Attention, GradCheck) {
  Rng rng(10);
  MultiHeadSelfAttention attn(8, 2, 3, 0.0, &rng);
  const Tensor x = random_tensor({2 * 3, 8}, rng);  // B=2, T=3
  grad_check(attn, x, 1e-5);
}

TEST(Attention, TokenPermutationEquivariance) {
  // Self-attention without positional encoding commutes with token
  // permutations within a sample.
  Rng rng(11);
  const std::size_t t = 4, c = 8;
  MultiHeadSelfAttention attn(c, 2, t, 0.0, &rng);
  attn.set_training(false);
  const Tensor x = random_tensor({t, c}, rng);
  const Tensor y = attn.forward(x);
  // Swap tokens 1 and 2.
  Tensor xp = x;
  for (std::size_t j = 0; j < c; ++j) std::swap(xp(1, j), xp(2, j));
  const Tensor yp = attn.forward(xp);
  for (std::size_t j = 0; j < c; ++j) {
    EXPECT_NEAR(yp(1, j), y(2, j), 1e-10);
    EXPECT_NEAR(yp(2, j), y(1, j), 1e-10);
    EXPECT_NEAR(yp(0, j), y(0, j), 1e-10);
  }
}

TEST(Mlp, GradCheck) {
  Rng rng(12);
  Mlp mlp(6, 12, 0.0, &rng, "mlp");
  const Tensor x = random_tensor({4, 6}, rng);
  grad_check(mlp, x, 1e-5);
}

TEST(TransformerBlock, GradCheck) {
  Rng rng(13);
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  TransformerBlock blk(cfg, &rng, "blk");
  const Tensor x = random_tensor({2 * cfg.tokens(), cfg.embed_dim}, rng);
  grad_check(blk, x, 1e-5);
}

TEST(PatchEmbed, PatchifyRoundTrip) {
  Rng rng(14);
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 2;
  cfg.channels = 2;
  PatchEmbed pe(cfg, &rng);
  const Tensor x = random_tensor({3, cfg.state_dim()}, rng);
  const Tensor p = pe.patchify(x);
  EXPECT_EQ(p.extent(0), 3 * cfg.tokens());
  EXPECT_EQ(p.extent(1), cfg.patch_dim());
  const Tensor back = pe.unpatchify(p, 3);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(back.flat()[i], x.flat()[i]);
}

TEST(ViT, InitialModelIsIdentity) {
  // Zero-initialized head makes the untrained surrogate the identity map —
  // the right prior for one-step dynamics.
  VitConfig cfg;
  cfg.image = 16;
  cfg.patch = 4;
  cfg.embed_dim = 16;
  cfg.heads = 4;
  cfg.depth = 2;
  ViT vit(cfg);
  vit.set_training(false);
  Rng rng(15);
  const Tensor x = random_tensor({2, cfg.state_dim()}, rng);
  const Tensor y = vit.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y.flat()[i], x.flat()[i], 1e-12);
}

TEST(ViT, GradCheckTiny) {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  ViT vit(cfg);
  // Give the head nonzero weights so its grad path is exercised.
  Rng rng(16);
  init_trunc_normal(vit.parameters().back()->value, 0.1, rng);  // head bias? ensure nontrivial
  for (Param* p : vit.parameters())
    if (p->name == "head.weight") init_trunc_normal(p->value, 0.1, rng);
  const Tensor x = random_tensor({2, cfg.state_dim()}, rng);
  grad_check(vit, x, 2e-5);
}

TEST(ViT, ParamCountMatchesInstantiated) {
  VitConfig cfg;
  cfg.image = 16;
  cfg.patch = 4;
  cfg.embed_dim = 24;
  cfg.heads = 4;
  cfg.depth = 3;
  cfg.mlp_ratio = 4.0;
  ViT vit(cfg);
  EXPECT_EQ(vit.num_params(), cfg.param_count());
}

TEST(ViT, TableIIParameterCounts) {
  // Table II of the paper: 157M / 1.2B / 2.5B parameters.
  VitConfig small;
  small.image = 64;
  small.patch = 4;
  small.depth = 12;
  small.heads = 8;
  small.embed_dim = 1024;
  small.mlp_ratio = 4.0;
  EXPECT_NEAR(static_cast<double>(small.param_count()), 157e6, 10e6);

  VitConfig mid = small;
  mid.image = 128;
  mid.depth = 24;
  mid.embed_dim = 2048;
  EXPECT_NEAR(static_cast<double>(mid.param_count()), 1.2e9, 0.05e9);

  VitConfig large = mid;
  large.image = 256;
  large.depth = 48;
  EXPECT_NEAR(static_cast<double>(large.param_count()), 2.5e9, 0.1e9);
}

TEST(ViT, StateVectorRoundTrip) {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  cfg.seed = 7;
  ViT a(cfg);
  const auto sv = a.state_vector();
  VitConfig cfg2 = cfg;
  cfg2.seed = 8;  // different init
  ViT b(cfg2);
  b.load_state_vector(sv);
  Rng rng(17);
  const Tensor x = random_tensor({1, cfg.state_dim()}, rng);
  a.set_training(false);
  b.set_training(false);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya.flat()[i], yb.flat()[i]);
}

TEST(ViT, DeterministicGivenSeed) {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 2;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 2;
  cfg.seed = 123;
  ViT a(cfg), b(cfg);
  const auto sa = a.state_vector();
  const auto sb = b.state_vector();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(AdamW, MinimizesQuadratic) {
  // One Param treated as a free vector: minimize ||w - target||^2.
  Param w("w");
  w.reset_shape({8});
  Rng rng(18);
  rng.fill_gaussian(w.value.flat());
  std::vector<double> target(8);
  rng.fill_gaussian(target);
  AdamWConfig cfg;
  cfg.lr = 0.05;
  AdamW opt({&w}, cfg);
  for (int it = 0; it < 500; ++it) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 8; ++i) w.grad(i) = 2.0 * (w.value(i) - target[i]);
    opt.step();
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(w.value(i), target[i], 1e-3);
}

TEST(AdamW, WeightDecayShrinks) {
  Param w("w");
  w.reset_shape({4});
  w.value.fill(1.0);
  AdamWConfig cfg;
  cfg.lr = 0.01;
  cfg.weight_decay = 0.1;
  AdamW opt({&w}, cfg);
  for (int it = 0; it < 100; ++it) {
    opt.zero_grad();  // zero gradient: only decay acts
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(w.value(i), 1.0);
}

TEST(AdamW, StateSizeIsTwiceParams) {
  Param w("w");
  w.reset_shape({10});
  AdamW opt({&w}, AdamWConfig{});
  EXPECT_EQ(opt.state_size(), 20u);
}

TEST(Optim, ClipGradNorm) {
  Param w("w");
  w.reset_shape({3});
  w.grad(0) = 3.0;
  w.grad(1) = 4.0;
  std::vector<Param*> ps{&w};
  const double pre = clip_grad_norm(ps, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::hypot(w.grad(0), w.grad(1)), 1.0, 1e-12);
}

TEST(Optim, WarmupCosineShape) {
  const double base = 1.0;
  EXPECT_LT(warmup_cosine_lr(base, 0, 10, 100), 0.2);
  EXPECT_NEAR(warmup_cosine_lr(base, 9, 10, 100), 1.0, 1e-9);
  EXPECT_GT(warmup_cosine_lr(base, 20, 10, 100), warmup_cosine_lr(base, 80, 10, 100));
  EXPECT_NEAR(warmup_cosine_lr(base, 100, 10, 100), 0.0, 1e-9);
}

TEST(Loss, MseValueAndGrad) {
  Tensor pred({1, 2}), target({1, 2});
  pred(0, 0) = 1.0;
  pred(0, 1) = 3.0;
  target(0, 0) = 0.0;
  target(0, 1) = 1.0;
  Tensor grad;
  const double loss = mse_loss(pred, target, grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(grad(0, 1), 2.0);   // 2*(3-1)/2
}

TEST(FieldScaler, RoundTrip) {
  Rng rng(19);
  Tensor states({10, 50});
  rng.fill_gaussian(states.flat(), 5.0, 3.0);
  FieldScaler sc;
  sc.fit(states);
  EXPECT_NEAR(sc.mean(), 5.0, 0.3);
  EXPECT_NEAR(sc.std_dev(), 3.0, 0.3);
  std::vector<double> v{1.0, 2.0, 3.0};
  auto w = v;
  sc.normalize(w);
  sc.denormalize(w);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], v[i], 1e-12);
}

TEST(Surrogate, LearnsLinearShiftDynamics) {
  // Dynamics: next = roll(state) (circular shift by one pixel). A small ViT
  // should reduce its one-step MSE substantially after training.
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 2;
  cfg.channels = 2;
  cfg.embed_dim = 16;
  cfg.heads = 2;
  cfg.depth = 2;
  cfg.seed = 21;
  auto vit = std::make_shared<ViT>(cfg);
  const std::size_t d = cfg.state_dim(), n = cfg.image;

  Rng rng(22);
  const std::size_t samples = 64;
  Tensor xs({samples, d}), ys({samples, d});
  for (std::size_t s = 0; s < samples; ++s) {
    rng.fill_gaussian(xs.row(s));
    // roll each level by one column
    for (std::size_t ch = 0; ch < 2; ++ch)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c2 = 0; c2 < n; ++c2)
          ys.row(s)[ch * n * n + r * n + c2] = xs.row(s)[ch * n * n + r * n + (c2 + 1) % n];
  }
  FieldScaler sc;
  sc.fit(xs);
  SurrogateTrainer trainer(vit, sc, AdamWConfig{.lr = 3e-3});
  const auto losses = trainer.fit(xs, ys, /*epochs=*/30, /*batch=*/16, 3e-3, rng);
  EXPECT_LT(losses.back(), 0.35 * losses.front());
}

TEST(Surrogate, ForecastBatchMatchesSingle) {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  cfg.seed = 23;
  auto vit = std::make_shared<ViT>(cfg);
  Rng rng(24);
  for (Param* p : vit->parameters())
    if (p->name == "head.weight") init_trunc_normal(p->value, 0.05, rng);
  FieldScaler sc;  // identity-ish default
  SurrogateForecast f(vit, sc);

  Tensor batch({3, cfg.state_dim()});
  rng.fill_gaussian(batch.flat());
  std::vector<std::vector<double>> singles;
  for (std::size_t s = 0; s < 3; ++s) {
    std::vector<double> v(batch.row(s).begin(), batch.row(s).end());
    f.forecast(v);
    singles.push_back(std::move(v));
  }
  f.forecast_batch(batch);
  for (std::size_t s = 0; s < 3; ++s)
    for (std::size_t i = 0; i < cfg.state_dim(); ++i)
      EXPECT_NEAR(batch(s, i), singles[s][i], 1e-10);
}

TEST(OnlineTrainer, BufferAndStepsRun) {
  VitConfig cfg;
  cfg.image = 8;
  cfg.patch = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  cfg.seed = 25;
  auto vit = std::make_shared<ViT>(cfg);
  FieldScaler sc;
  OnlineTrainer ot(vit, sc, AdamWConfig{.lr = 1e-3}, /*capacity=*/4, /*steps=*/2);
  Rng rng(26);
  std::vector<double> a(cfg.state_dim()), b(cfg.state_dim());
  for (int k = 0; k < 6; ++k) {
    rng.fill_gaussian(a);
    rng.fill_gaussian(b);
    const auto st = ot.observe_transition(a, b, rng);
    EXPECT_TRUE(std::isfinite(st.loss));
  }
  EXPECT_EQ(ot.buffered(), 4u);  // capacity respected
}

}  // namespace
}  // namespace turbda::nn
