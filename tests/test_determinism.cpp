// Thread-count determinism: LETKF and EnSF analyses, SQG forecasts and the
// member-parallel OSSE ensemble loop must be bitwise identical for 1, 2 and
// hardware_concurrency() worker threads, and the row-parallel blocked GEMM
// must match a serial reference bitwise. This is the contract that makes the
// parallel hot path safe to enable by default.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "da/ensemble.hpp"
#include "da/ensf.hpp"
#include "da/letkf.hpp"
#include "da/observation.hpp"
#include "da/osse.hpp"
#include "models/model_error.hpp"
#include "rng/rng.hpp"
#include "simd/dispatch.hpp"
#include "sqg/sqg.hpp"
#include "tensor/gemm.hpp"

namespace turbda {
namespace {

constexpr std::size_t kNx = 8;
constexpr std::size_t kNy = 8;
constexpr std::size_t kLev = 2;
constexpr std::size_t kDim = kNx * kNy * kLev;
constexpr std::size_t kMembers = 10;

/// Small OSSE-style case: perturbed ensemble around a smooth truth, identity
/// observations of the full state with noise.
struct SmallCase {
  da::Ensemble ens{kMembers, kDim};
  std::vector<double> y;
  da::IdentityObs h{kDim, kNx, kNy, kLev};
  da::DiagonalR r{kDim, 1.0};

  SmallCase() {
    std::vector<double> truth(kDim);
    rng::Rng rng(1234);
    rng.fill_gaussian(truth, 0.0, 2.0);
    ens.init_perturbed(truth, 1.5, rng);
    y.resize(kDim);
    for (std::size_t i = 0; i < kDim; ++i) y[i] = truth[i] + rng.gaussian();
  }
};

std::vector<std::size_t> thread_counts() {
  return {1, 2, std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

void expect_bitwise_equal(const da::Ensemble& a, const da::Ensemble& b, std::size_t n_threads) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t m = 0; m < a.size(); ++m) {
    const auto ra = a.member(m);
    const auto rb = b.member(m);
    EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)))
        << "member " << m << " differs between 1 and " << n_threads << " threads";
  }
}

TEST(Determinism, LetkfIndependentOfThreadCount) {
  da::LetkfConfig lc;
  lc.nx = kNx;
  lc.ny = kNy;
  lc.n_levels = kLev;
  lc.domain_m = 4.0e6;
  lc.cutoff_m = 1.5e6;

  SmallCase ref_case;
  lc.n_threads = 1;
  da::LETKF ref_filter(lc);
  ref_filter.analyze(ref_case.ens, ref_case.y, ref_case.h, ref_case.r);

  for (std::size_t nt : thread_counts()) {
    SmallCase c;
    lc.n_threads = nt;
    da::LETKF filter(lc);
    filter.analyze(c.ens, c.y, c.h, c.r);
    expect_bitwise_equal(ref_case.ens, c.ens, nt);
  }
}

TEST(Determinism, LetkfIndependentOfSimdLevel) {
  // The dense-kernel Scalar table emulates 4-lane vectors with identical IEEE
  // operation order to the Avx2 table, so the whole analysis must be bitwise
  // reproducible across those dispatch levels (FMA legitimately differs).
  if (!simd::simd_level_available(simd::SimdLevel::Avx2)) GTEST_SKIP() << "no AVX2";
  da::LetkfConfig lc;
  lc.nx = kNx;
  lc.ny = kNy;
  lc.n_levels = kLev;
  lc.domain_m = 4.0e6;
  lc.cutoff_m = 1.5e6;

  const simd::SimdLevel before = simd::active_simd_level();
  SmallCase scalar_case;
  simd::force_simd_level(simd::SimdLevel::Scalar);
  {
    da::LETKF filter(lc);
    filter.analyze(scalar_case.ens, scalar_case.y, scalar_case.h, scalar_case.r);
  }
  SmallCase avx2_case;
  simd::force_simd_level(simd::SimdLevel::Avx2);
  {
    da::LETKF filter(lc);
    filter.analyze(avx2_case.ens, avx2_case.y, avx2_case.h, avx2_case.r);
  }
  simd::force_simd_level(before);
  expect_bitwise_equal(scalar_case.ens, avx2_case.ens, 1);
}

TEST(Determinism, EnsfIndependentOfThreadCount) {
  da::EnsfConfig ec;
  ec.euler_steps = 20;

  SmallCase ref_case;
  ec.n_threads = 1;
  da::EnSF ref_filter(ec);
  ref_filter.analyze(ref_case.ens, ref_case.y, ref_case.h, ref_case.r);

  for (std::size_t nt : thread_counts()) {
    SmallCase c;
    ec.n_threads = nt;
    da::EnSF filter(ec);  // fresh filter: same cycle counter as the reference
    filter.analyze(c.ens, c.y, c.h, c.r);
    expect_bitwise_equal(ref_case.ens, c.ens, nt);
  }
}

TEST(Determinism, EnsfMinibatchIndependentOfThreadCount) {
  da::EnsfConfig ec;
  ec.euler_steps = 12;
  ec.minibatch = 6;  // exercises the shared-stream shuffle path

  SmallCase ref_case;
  ec.n_threads = 1;
  da::EnSF ref_filter(ec);
  ref_filter.analyze(ref_case.ens, ref_case.y, ref_case.h, ref_case.r);

  for (std::size_t nt : thread_counts()) {
    SmallCase c;
    ec.n_threads = nt;
    da::EnSF filter(ec);
    filter.analyze(c.ens, c.y, c.h, c.r);
    expect_bitwise_equal(ref_case.ens, c.ens, nt);
  }
}

TEST(Determinism, SqgStepIndependentOfFftThreadCount) {
  // The 2-D transform fans row/column batches out over the pool; disjoint
  // rows with partition-invariant per-row work must make a full RK4 step —
  // and the FFT-based random_init — bitwise thread-count independent.
  auto run_steps = [](std::size_t n_fft_threads) {
    sqg::SqgConfig cfg;
    cfg.n = 32;
    cfg.n_fft_threads = n_fft_threads;
    sqg::SqgModel model(cfg);
    rng::Rng rng(4242);
    std::vector<double> theta(model.dim());
    model.random_init(theta, rng, 1.0, 4);
    model.step(theta, 3);
    return theta;
  };
  const auto ref = run_steps(1);
  for (std::size_t nt : thread_counts()) {
    const auto got = run_steps(nt);
    EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), ref.size() * sizeof(double)))
        << nt << " FFT threads";
  }
}

TEST(Determinism, EnsembleForecastIndependentOfThreadCount) {
  // Member-parallel OSSE forecasts (with per-member counter-based model
  // error) must reproduce the serial member loop bitwise.
  auto run_osse = [](std::size_t n_forecast_threads) {
    sqg::SqgConfig mc;
    mc.n = 16;
    mc.dt = 1800.0;
    auto model = std::make_shared<sqg::SqgModel>(mc);
    sqg::SqgForecast truth(model, 6 * 3600.0);
    sqg::SqgForecast fcst(model, 6 * 3600.0);
    da::IdentityObs h(model->dim(), mc.n, mc.n, 2);
    da::DiagonalR r(model->dim(), 1.0);
    models::ModelErrorProcess me(models::ModelErrorConfig{.reference_scale = 0.5});

    da::OsseConfig oc;
    oc.n_members = 6;
    oc.cycles = 2;
    oc.seed = 99;
    oc.inject_model_error = true;
    oc.model_error_shared = false;  // per-member substreams on the hot loop
    oc.n_forecast_threads = n_forecast_threads;

    rng::Rng rng(31337);
    std::vector<double> truth0(model->dim());
    model->random_init(truth0, rng, 1.0, 3);
    da::OsseRunner runner(oc, truth, fcst, h, r, /*filter=*/nullptr, &me);
    runner.run(truth0);
    da::Ensemble out = runner.ensemble();
    return out;
  };
  const auto ref = run_osse(1);
  for (std::size_t nt : thread_counts()) {
    const auto got = run_osse(nt);
    expect_bitwise_equal(ref, got, nt);
  }
}

TEST(Determinism, ParallelGemmMatchesSerialReferenceBitwise) {
  // Big enough to cross the row-parallelization threshold in gemm().
  const std::size_t m = 128, n = 64, k = 64;
  const double alpha = 1.5, beta = 0.25;
  std::vector<double> a(m * k), b(k * n), c(m * n), c_ref;
  rng::Rng rng(77);
  rng.fill_gaussian(a);
  rng.fill_gaussian(b);
  rng.fill_gaussian(c);
  c_ref = c;

  tensor::gemm(tensor::Trans::No, tensor::Trans::No, m, n, k, alpha, a.data(), k, b.data(), n,
               beta, c.data(), n);

  // Serial reference with the same per-element accumulation order (ascending
  // k, av = alpha * a first) — must match bitwise.
  for (auto& v : c_ref) v *= beta;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double av = alpha * a[i * k + kk];
      for (std::size_t j = 0; j < n; ++j) c_ref[i * n + j] += av * b[kk * n + j];
    }
  EXPECT_EQ(0, std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(double)));
}

}  // namespace
}  // namespace turbda
