#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/math_utils.hpp"
#include "fft/fft.hpp"
#include "rng/rng.hpp"

namespace turbda::fft {
namespace {

using turbda::rng::Rng;

std::vector<Cplx> naive_dft(const std::vector<Cplx>& x) {
  const std::size_t n = x.size();
  std::vector<Cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx s(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -kTwoPi * static_cast<double>(k * j) / static_cast<double>(n);
      s += x[j] * Cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

class Fft1dP : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dP, MatchesNaiveDft) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(3 + n);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = Cplx(rng.gaussian(), rng.gaussian());
  const auto want = naive_dft(x);
  Fft1D plan(n);
  auto got = x;
  plan.forward(got);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(Fft1dP, RoundTripIdentity) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(17 + n);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = Cplx(rng.gaussian(), rng.gaussian());
  const auto orig = x;
  Fft1D plan(n);
  plan.forward(x);
  plan.inverse(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST_P(Fft1dP, ParsevalHolds) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(23 + n);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = Cplx(rng.gaussian(), rng.gaussian());
  double grid = 0.0;
  for (const auto& v : x) grid += std::norm(v);
  Fft1D plan(n);
  plan.forward(x);
  double spec = 0.0;
  for (const auto& v : x) spec += std::norm(v);
  EXPECT_NEAR(spec, grid * static_cast<double>(n), 1e-8 * grid * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft1dP, ::testing::Values(1, 2, 4, 8, 16, 64, 256));

TEST(Fft1d, RejectsNonPowerOfTwo) { EXPECT_THROW(Fft1D(12), Error); }

TEST(Fft1d, DeltaFunctionIsFlat) {
  Fft1D plan(8);
  std::vector<Cplx> x(8, Cplx(0, 0));
  x[0] = Cplx(1, 0);
  plan.forward(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, SingleModeLandsInRightBin) {
  const std::size_t n = 32;
  Fft1D plan(n);
  std::vector<Cplx> x(n);
  const int m = 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = kTwoPi * m * static_cast<double>(j) / static_cast<double>(n);
    x[j] = Cplx(std::cos(ang), 0.0);
  }
  plan.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect = (k == 5 || k == n - 5) ? static_cast<double>(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expect, 1e-9);
  }
}

// --- real transform (half-spectrum Hermitian packing) -----------------------

class Rfft1dP : public ::testing::TestWithParam<int> {};

TEST_P(Rfft1dP, MatchesNaiveDftOnHalfSpectrum) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(101 + n);
  std::vector<double> x(n);
  rng.fill_gaussian(x);
  std::vector<Cplx> full(n);
  for (std::size_t i = 0; i < n; ++i) full[i] = Cplx(x[i], 0.0);
  const auto want = naive_dft(full);
  Rfft1D plan(n);
  std::vector<Cplx> got(plan.spec_size());
  plan.forward(x, got);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-9 * static_cast<double>(n)) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-9 * static_cast<double>(n)) << "bin " << k;
  }
}

TEST_P(Rfft1dP, RoundTripToMachinePrecision) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(211 + n);
  std::vector<double> x(n);
  rng.fill_gaussian(x);
  const auto orig = x;
  Rfft1D plan(n);
  std::vector<Cplx> spec(plan.spec_size());
  plan.forward(x, spec);
  plan.inverse(spec, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], orig[i], 1e-12);
}

TEST_P(Rfft1dP, ParsevalHoldsWithHermitianWeights) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(307 + n);
  std::vector<double> x(n);
  rng.fill_gaussian(x);
  double grid = 0.0;
  for (double v : x) grid += v * v;
  Rfft1D plan(n);
  std::vector<Cplx> spec(plan.spec_size());
  plan.forward(x, spec);
  // Interior bins stand in for themselves and their conjugate mirror.
  double s = std::norm(spec[0]) + std::norm(spec[n / 2]);
  for (std::size_t k = 1; k < n / 2; ++k) s += 2.0 * std::norm(spec[k]);
  EXPECT_NEAR(s, grid * static_cast<double>(n), 1e-8 * grid * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Rfft1dP, ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(Rfft1d, RejectsOddAndNonPowerOfTwoSizes) {
  EXPECT_THROW(Rfft1D(0), Error);
  EXPECT_THROW(Rfft1D(1), Error);
  EXPECT_THROW(Rfft1D(7), Error);   // odd
  EXPECT_THROW(Rfft1D(12), Error);  // even, not a power of two
}

TEST(Rfft1d, SingleModeLandsInRightBin) {
  const std::size_t n = 32;
  Rfft1D plan(n);
  std::vector<double> x(n);
  const int m = 5;
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::cos(kTwoPi * m * static_cast<double>(j) / static_cast<double>(n));
  std::vector<Cplx> spec(plan.spec_size());
  plan.forward(x, spec);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double expect = (k == 5) ? static_cast<double>(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(spec[k]), expect, 1e-9);
  }
}

TEST(Fft2d, RoundTripComplex) {
  const std::size_t n0 = 16, n1 = 8;
  Rng rng(31);
  std::vector<Cplx> x(n0 * n1);
  for (auto& v : x) v = Cplx(rng.gaussian(), rng.gaussian());
  const auto orig = x;
  Fft2D plan(n0, n1);
  plan.forward(x);
  plan.inverse(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft2d, RealRoundTrip) {
  const std::size_t n = 32;
  Rng rng(37);
  std::vector<double> g(n * n);
  rng.fill_gaussian(g);
  std::vector<Cplx> spec(n * n);
  Fft2D plan(n, n);
  plan.forward_real(g, spec);
  std::vector<double> back(n * n);
  plan.inverse_real(spec, back);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(back[i], g[i], 1e-10);
}

TEST(Fft2d, RealSpectrumIsHermitian) {
  const std::size_t n = 16;
  Rng rng(41);
  std::vector<double> g(n * n);
  rng.fill_gaussian(g);
  std::vector<Cplx> spec(n * n);
  Fft2D plan(n, n);
  plan.forward_real(g, spec);
  // spec(-ky, -kx) == conj(spec(ky, kx))
  for (std::size_t jy = 0; jy < n; ++jy) {
    for (std::size_t jx = 0; jx < n; ++jx) {
      const std::size_t cy = (n - jy) % n;
      const std::size_t cx = (n - jx) % n;
      const Cplx a = spec[jy * n + jx];
      const Cplx b = std::conj(spec[cy * n + cx]);
      EXPECT_NEAR(a.real(), b.real(), 1e-9);
      EXPECT_NEAR(a.imag(), b.imag(), 1e-9);
    }
  }
}

TEST(Fft2d, PlaneWaveSpectralDerivativeIsExact) {
  // d/dx of cos(2π m x / L) via spectral i*kx multiply, on the unit square.
  const std::size_t n = 64;
  Fft2D plan(n, n);
  const int m = 3;
  std::vector<double> g(n * n);
  for (std::size_t jy = 0; jy < n; ++jy)
    for (std::size_t jx = 0; jx < n; ++jx)
      g[jy * n + jx] = std::cos(kTwoPi * m * static_cast<double>(jx) / static_cast<double>(n));
  std::vector<Cplx> spec(n * n);
  plan.forward_real(g, spec);
  // multiply by i*k (domain length 1 => k = 2π m').
  for (std::size_t jy = 0; jy < n; ++jy) {
    for (std::size_t jx = 0; jx < n; ++jx) {
      const long mx = (jx <= n / 2) ? static_cast<long>(jx) : static_cast<long>(jx) - static_cast<long>(n);
      spec[jy * n + jx] *= Cplx(0.0, kTwoPi * static_cast<double>(mx));
    }
  }
  std::vector<double> deriv(n * n);
  plan.inverse_real(spec, deriv);
  for (std::size_t jy = 0; jy < n; ++jy)
    for (std::size_t jx = 0; jx < n; ++jx) {
      const double x = static_cast<double>(jx) / static_cast<double>(n);
      const double want = -kTwoPi * m * std::sin(kTwoPi * m * x);
      EXPECT_NEAR(deriv[jy * n + jx], want, 1e-8);
    }
}

TEST(Fft2d, ForwardRealMatchesComplexTransform) {
  // The half-spectrum pipeline must agree with the dense complex transform
  // of the real-embedded grid, including on non-square shapes.
  const std::size_t n0 = 16, n1 = 8;
  Rng rng(53);
  std::vector<double> g(n0 * n1);
  rng.fill_gaussian(g);
  Fft2D plan(n0, n1);
  std::vector<Cplx> spec(n0 * n1);
  plan.forward_real(g, spec);
  std::vector<Cplx> ref(n0 * n1);
  for (std::size_t i = 0; i < g.size(); ++i) ref[i] = Cplx(g[i], 0.0);
  plan.forward(ref);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_NEAR(spec[i].real(), ref[i].real(), 1e-10);
    EXPECT_NEAR(spec[i].imag(), ref[i].imag(), 1e-10);
  }
}

TEST(Fft2d, ResultsBitwiseIndependentOfThreadCount) {
  const std::size_t n = 32;
  Rng rng(59);
  std::vector<double> g(n * n);
  rng.fill_gaussian(g);

  Fft2D ref_plan(n, n);  // default: serial
  std::vector<Cplx> ref_spec(n * n);
  ref_plan.forward_real(g, ref_spec);
  std::vector<double> ref_back(n * n);
  ref_plan.inverse_real(ref_spec, ref_back);

  for (std::size_t nt : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    Fft2D plan(n, n);
    plan.set_max_threads(nt);
    std::vector<Cplx> spec(n * n);
    plan.forward_real(g, spec);
    EXPECT_EQ(0, std::memcmp(spec.data(), ref_spec.data(), spec.size() * sizeof(Cplx)))
        << nt << " threads";
    std::vector<double> back(n * n);
    plan.inverse_real(spec, back);
    EXPECT_EQ(0, std::memcmp(back.data(), ref_back.data(), back.size() * sizeof(double)))
        << nt << " threads";
  }
}

TEST(Fft2d, WrongSizeThrows) {
  Fft2D plan(8, 8);
  std::vector<Cplx> bad(63);
  EXPECT_THROW(plan.forward(bad), Error);
}

// --- packed half-spectrum 2-D API -------------------------------------------

TEST(Fft2d, HalfSpectrumMatchesFullLayout) {
  // The packed n0 x (n1/2+1) spectrum must hold exactly the non-redundant
  // columns of the full Hermitian-redundant layout, including on non-square
  // shapes.
  const std::size_t n0 = 16, n1 = 8, nh = n1 / 2 + 1;
  Rng rng(61);
  std::vector<double> g(n0 * n1);
  rng.fill_gaussian(g);
  Fft2D plan(n0, n1);
  ASSERT_EQ(plan.half_size(), n0 * nh);
  std::vector<Cplx> full(n0 * n1), half(plan.half_size());
  plan.forward_real(g, full);
  plan.forward_half(g, half);
  for (std::size_t i = 0; i < n0; ++i)
    for (std::size_t j = 0; j < nh; ++j) {
      const Cplx want = full[i * n1 + j];
      const Cplx got = half[i * nh + j];
      EXPECT_NEAR(got.real(), want.real(), 1e-12 * static_cast<double>(n0 * n1));
      EXPECT_NEAR(got.imag(), want.imag(), 1e-12 * static_cast<double>(n0 * n1));
    }
}

TEST(Fft2d, HalfRoundTripToMachinePrecision) {
  for (auto [n0, n1] : {std::pair<std::size_t, std::size_t>{32, 32}, {16, 8}, {4, 16}}) {
    Rng rng(67 + n0 + n1);
    std::vector<double> g(n0 * n1);
    rng.fill_gaussian(g);
    Fft2D plan(n0, n1);
    std::vector<Cplx> h(plan.half_size());
    plan.forward_half(g, h);
    std::vector<double> back(n0 * n1);
    plan.inverse_half(h, back);
    for (std::size_t i = 0; i < g.size(); ++i) ASSERT_NEAR(back[i], g[i], 1e-12) << n0 << "x" << n1;
  }
}

TEST(Fft2d, PrunedHalfMatchesMaskedUnpruned) {
  const std::size_t n = 32, nh = n / 2 + 1;
  Rng rng(71);
  std::vector<double> g(n * n);
  rng.fill_gaussian(g);
  Fft2D plan(n, n);
  for (const std::size_t kcut : {std::size_t{4}, n / 3, n / 2}) {
    // Forward: pruned output == unpruned output with the |mx|,|my| > kcut
    // bins zeroed.
    std::vector<Cplx> ref(plan.half_size());
    plan.forward_half(g, ref);
    for (std::size_t i = 0; i < n; ++i) {
      const long my = (i <= n / 2) ? static_cast<long>(i) : static_cast<long>(i) - static_cast<long>(n);
      for (std::size_t j = 0; j < nh; ++j)
        if (j > kcut || std::labs(my) > static_cast<long>(kcut)) ref[i * nh + j] = Cplx(0.0, 0.0);
    }
    std::vector<Cplx> pruned(plan.half_size());
    plan.forward_half_pruned(g, pruned, kcut);
    for (std::size_t p = 0; p < ref.size(); ++p) {
      ASSERT_NEAR(pruned[p].real(), ref[p].real(), 1e-12 * static_cast<double>(n * n)) << p;
      ASSERT_NEAR(pruned[p].imag(), ref[p].imag(), 1e-12 * static_cast<double>(n * n)) << p;
    }
    // Inverse: on a truncated spectrum, the pruned transform matches the
    // unpruned one.
    std::vector<double> a(n * n), b(n * n);
    plan.inverse_half(ref, a);
    plan.inverse_half_pruned(ref, b, kcut);
    for (std::size_t p = 0; p < a.size(); ++p) ASSERT_NEAR(a[p], b[p], 1e-13) << p;
  }
}

TEST(Fft2d, HalfResultsBitwiseIndependentOfThreadCount) {
  const std::size_t n = 32, kcut = n / 3;
  Rng rng(73);
  std::vector<double> g(n * n);
  rng.fill_gaussian(g);

  Fft2D ref_plan(n, n);  // default: serial
  std::vector<Cplx> ref_h(ref_plan.half_size()), ref_p(ref_plan.half_size());
  ref_plan.forward_half(g, ref_h);
  ref_plan.forward_half_pruned(g, ref_p, kcut);
  std::vector<double> ref_back(n * n), ref_pback(n * n);
  ref_plan.inverse_half(ref_h, ref_back);
  ref_plan.inverse_half_pruned(ref_p, ref_pback, kcut);

  for (std::size_t nt : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    Fft2D plan(n, n);
    plan.set_max_threads(nt);
    std::vector<Cplx> h(plan.half_size()), p(plan.half_size());
    plan.forward_half(g, h);
    plan.forward_half_pruned(g, p, kcut);
    EXPECT_EQ(0, std::memcmp(h.data(), ref_h.data(), h.size() * sizeof(Cplx))) << nt << " threads";
    EXPECT_EQ(0, std::memcmp(p.data(), ref_p.data(), p.size() * sizeof(Cplx))) << nt << " threads";
    std::vector<double> back(n * n), pback(n * n);
    plan.inverse_half(h, back);
    plan.inverse_half_pruned(p, pback, kcut);
    EXPECT_EQ(0, std::memcmp(back.data(), ref_back.data(), back.size() * sizeof(double)))
        << nt << " threads";
    EXPECT_EQ(0, std::memcmp(pback.data(), ref_pback.data(), pback.size() * sizeof(double)))
        << nt << " threads";
  }
}

// --- SIMD dispatch equivalence ----------------------------------------------

/// Restores the entry dispatch level even when an assertion fails mid-test.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(active_simd_level()) {}
  ~SimdLevelGuard() { force_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

TEST(SimdDispatch, ScalarLevelIsAlwaysAvailable) {
  SimdLevelGuard guard;
  EXPECT_TRUE(simd_level_available(SimdLevel::Scalar));
  EXPECT_TRUE(force_simd_level(SimdLevel::Scalar));
  EXPECT_EQ(active_simd_level(), SimdLevel::Scalar);
  EXPECT_STREQ(simd_level_name(SimdLevel::Scalar), "scalar");
}

// Every dispatched kernel (first pass, fused radix-2^2, odd radix-2, rfft
// pack/unpack) against the forced-scalar reference: the Avx2 level performs
// the identical IEEE operations lane-parallel and must match bitwise; the
// Avx2Fma level contracts the twiddle multiplies and must agree to ~1 ulp
// per butterfly (1e-12 here). The size sweep covers even and odd stage
// counts and the vector-remainder paths of the rfft kernels.
TEST(SimdDispatch, Fft1dMatchesScalarAcrossLevels) {
  SimdLevelGuard guard;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Rng rng(101 + n);
    std::vector<Cplx> x0(n);
    for (auto& v : x0) v = Cplx(rng.gaussian(), rng.gaussian());
    Fft1D plan(n);
    ASSERT_TRUE(force_simd_level(SimdLevel::Scalar));
    auto fwd_ref = x0;
    plan.forward(fwd_ref);
    auto inv_ref = x0;
    plan.inverse(inv_ref);
    double scale = 0.0;
    for (const auto& v : fwd_ref) scale = std::max(scale, std::abs(v));

    for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx2Fma}) {
      if (!simd_level_available(level)) continue;
      ASSERT_TRUE(force_simd_level(level));
      auto fwd = x0;
      plan.forward(fwd);
      auto inv = x0;
      plan.inverse(inv);
      if (level == SimdLevel::Avx2) {
        EXPECT_EQ(0, std::memcmp(fwd.data(), fwd_ref.data(), n * sizeof(Cplx)))
            << "n=" << n << " level=" << simd_level_name(level);
        EXPECT_EQ(0, std::memcmp(inv.data(), inv_ref.data(), n * sizeof(Cplx)))
            << "n=" << n << " level=" << simd_level_name(level);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(fwd[i].real(), fwd_ref[i].real(), 1e-12 * scale) << n << "," << i;
          ASSERT_NEAR(fwd[i].imag(), fwd_ref[i].imag(), 1e-12 * scale) << n << "," << i;
          ASSERT_NEAR(inv[i].real(), inv_ref[i].real(), 1e-12) << n << "," << i;
          ASSERT_NEAR(inv[i].imag(), inv_ref[i].imag(), 1e-12) << n << "," << i;
        }
      }
    }
  }
}

TEST(SimdDispatch, Rfft1dMatchesScalarAcrossLevels) {
  SimdLevelGuard guard;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Rng rng(211 + n);
    // Degenerate inputs matter as much as random ones: a delta or constant
    // row makes whole pack/unpack lanes exactly zero, which is where a
    // sign-of-zero slip in the vector kernels would hide from gaussians.
    std::vector<std::vector<double>> inputs(3, std::vector<double>(n, 0.0));
    rng.fill_gaussian(inputs[0]);
    inputs[1][0] = 1.0;                                    // delta
    for (std::size_t j = 0; j < n; ++j) inputs[2][j] = 0.25;  // constant
    for (const auto& x : inputs) {
      Rfft1D plan(n);
      std::vector<Cplx> spec_ref(plan.spec_size());
      std::vector<double> back_ref(n);
      ASSERT_TRUE(force_simd_level(SimdLevel::Scalar));
      plan.forward(x, spec_ref);
      plan.inverse(spec_ref, back_ref);
      double scale = 0.0;
      for (const auto& v : spec_ref) scale = std::max(scale, std::abs(v));

      for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx2Fma}) {
        if (!simd_level_available(level)) continue;
        ASSERT_TRUE(force_simd_level(level));
        std::vector<Cplx> spec(plan.spec_size());
        std::vector<double> back(n);
        plan.forward(x, spec);
        plan.inverse(spec, back);
        if (level == SimdLevel::Avx2) {
          EXPECT_EQ(0, std::memcmp(spec.data(), spec_ref.data(), spec.size() * sizeof(Cplx)))
              << "n=" << n;
          EXPECT_EQ(0, std::memcmp(back.data(), back_ref.data(), n * sizeof(double)))
              << "n=" << n;
        } else {
          for (std::size_t i = 0; i < spec.size(); ++i) {
            ASSERT_NEAR(spec[i].real(), spec_ref[i].real(), 1e-12 * scale) << n << "," << i;
            ASSERT_NEAR(spec[i].imag(), spec_ref[i].imag(), 1e-12 * scale) << n << "," << i;
          }
          for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(back[i], back_ref[i], 1e-12) << n;
        }
      }
    }
  }
}

// --- input-band-pruned transforms -------------------------------------------

TEST(Fft1d, BandedMatchesDenseOnBandLimitedInput) {
  // Bands straddling every case split: narrow (< n/4, dense fallback),
  // the dealias band (~n/3), above 3n/8 (dense-middle blocks), and >= n/2
  // (full fallback).
  for (const std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    Rng rng(307 + n);
    for (const std::size_t band :
         {n / 8, n / 4, n / 3, 3 * n / 8 + 1, n / 2 - 1, n / 2}) {
      std::vector<Cplx> x(n, Cplx(0.0, 0.0));
      for (std::size_t j = 0; j < n; ++j)
        if (j <= band || j + band >= n) x[j] = Cplx(rng.gaussian(), rng.gaussian());
      Fft1D plan(n);
      auto fwd_ref = x;
      plan.forward(fwd_ref);
      auto fwd = x;
      plan.forward_banded(fwd, band);
      auto inv_ref = x;
      plan.inverse(inv_ref);
      auto inv = x;
      plan.inverse_banded(inv, band);
      double scale = 0.0;
      for (const auto& v : fwd_ref) scale = std::max(scale, std::abs(v));
      ASSERT_GT(scale, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(fwd[i].real(), fwd_ref[i].real(), 1e-12 * scale)
            << "n=" << n << " band=" << band << " i=" << i;
        ASSERT_NEAR(fwd[i].imag(), fwd_ref[i].imag(), 1e-12 * scale)
            << "n=" << n << " band=" << band << " i=" << i;
        ASSERT_NEAR(inv[i].real(), inv_ref[i].real(), 1e-12 * scale / static_cast<double>(n))
            << "n=" << n << " band=" << band << " i=" << i;
        ASSERT_NEAR(inv[i].imag(), inv_ref[i].imag(), 1e-12 * scale / static_cast<double>(n))
            << "n=" << n << " band=" << band << " i=" << i;
      }
    }
  }
}

// --- batched pruned transforms ----------------------------------------------

TEST(Fft2d, PrunedBatchMatchesSingleFieldBitwise) {
  const std::size_t n = 32, kcut = n / 3, F = 5;
  Rng rng(401);
  std::vector<std::vector<double>> grids(F, std::vector<double>(n * n));
  for (auto& g : grids) rng.fill_gaussian(g);

  Fft2D ref_plan(n, n);
  std::vector<std::vector<Cplx>> spec_ref(F, std::vector<Cplx>(ref_plan.half_size()));
  std::vector<std::vector<double>> back_ref(F, std::vector<double>(n * n));
  for (std::size_t f = 0; f < F; ++f) {
    ref_plan.forward_half_pruned(grids[f], spec_ref[f], kcut);
    ref_plan.inverse_half_pruned(spec_ref[f], back_ref[f], kcut);
  }

  for (const std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    Fft2D plan(n, n);
    plan.set_max_threads(nt);
    std::vector<std::vector<Cplx>> spec(F, std::vector<Cplx>(plan.half_size()));
    std::vector<std::vector<double>> back(F, std::vector<double>(n * n));
    std::vector<const double*> gp;
    std::vector<Cplx*> sp;
    std::vector<const Cplx*> scp;
    std::vector<double*> bp;
    for (std::size_t f = 0; f < F; ++f) {
      gp.push_back(grids[f].data());
      sp.push_back(spec[f].data());
      scp.push_back(spec[f].data());
      bp.push_back(back[f].data());
    }
    plan.forward_half_pruned_batch(gp, sp, kcut);
    plan.inverse_half_pruned_batch(scp, bp, kcut);
    for (std::size_t f = 0; f < F; ++f) {
      EXPECT_EQ(0, std::memcmp(spec[f].data(), spec_ref[f].data(),
                               spec[f].size() * sizeof(Cplx)))
          << "field " << f << ", " << nt << " threads";
      EXPECT_EQ(0,
                std::memcmp(back[f].data(), back_ref[f].data(), back[f].size() * sizeof(double)))
          << "field " << f << ", " << nt << " threads";
    }
  }
}

TEST(Fft2d, PrunedBatchRejectsMismatchedCounts) {
  Fft2D plan(8, 8);
  std::vector<double> g(64);
  std::vector<Cplx> h(plan.half_size());
  std::vector<const double*> gp{g.data()};
  std::vector<Cplx*> sp{h.data(), h.data()};
  EXPECT_THROW(plan.forward_half_pruned_batch(gp, sp, 2), Error);
}

TEST(Fft2d, HalfApiRejectsUnsupportedShapes) {
  // n1 == 1 has no even row length for the r2c stage.
  Fft2D p1(8, 1);
  std::vector<double> g1(8);
  std::vector<Cplx> h1(p1.half_size());
  EXPECT_THROW(p1.forward_half(g1, h1), Error);
  EXPECT_THROW(p1.inverse_half(h1, g1), Error);
  // Odd / non-power-of-two extents are rejected at plan construction.
  EXPECT_THROW(Fft2D(8, 7), Error);
  EXPECT_THROW(Fft2D(6, 8), Error);
  // Wrong buffer sizes.
  Fft2D q(8, 8);
  std::vector<double> g2(64);
  std::vector<Cplx> bad(q.half_size() - 1);
  EXPECT_THROW(q.forward_half(g2, bad), Error);
  EXPECT_THROW(q.inverse_half(bad, g2), Error);
  EXPECT_THROW(q.forward_half_pruned(g2, bad, 2), Error);
  EXPECT_THROW(q.inverse_half_pruned(bad, g2, 2), Error);
}

}  // namespace
}  // namespace turbda::fft
