#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "io/args.hpp"
#include "io/csv.hpp"
#include "io/npy.hpp"
#include "io/table.hpp"
#include "models/lorenz96.hpp"
#include "models/scaled_forecast.hpp"

namespace turbda {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_io_tmp.csv";
  {
    io::CsvWriter w(path, {"a", "b"});
    w.row({1.0, 2.5});
    w.row({3.0, -4.0});
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("1,2.5"), std::string::npos);
  EXPECT_NE(s.find("3,-4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongWidth) {
  const std::string path = "test_io_tmp2.csv";
  io::CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), Error);
  std::remove(path.c_str());
}

TEST(Npy, HeaderAndPayload) {
  const std::string path = "test_io_tmp.npy";
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  io::write_npy(path, data, {2, 3});
  const std::string s = slurp(path);
  ASSERT_GT(s.size(), 10u);
  EXPECT_EQ(s.substr(1, 5), "NUMPY");
  EXPECT_NE(s.find("'descr': '<f8'"), std::string::npos);
  EXPECT_NE(s.find("(2, 3)"), std::string::npos);
  // Payload: little-endian doubles at the end.
  double got = 0.0;
  std::memcpy(&got, s.data() + s.size() - sizeof(double), sizeof(double));
  EXPECT_DOUBLE_EQ(got, 6.0);
  // Header block (magic..newline) is 64-byte aligned.
  EXPECT_EQ((s.size() - data.size() * sizeof(double)) % 64, 0u);
  std::remove(path.c_str());
}

TEST(Npy, ShapeMismatchThrows) {
  const std::vector<double> data{1.0, 2.0};
  EXPECT_THROW(io::write_npy("x.npy", data, {3}), Error);
}

TEST(Table, AlignsAndPrints) {
  io::Table t({"name", "value"});
  t.add_row({"alpha", io::Table::num(1.5, 2)});
  t.add_row({"longer-name", io::Table::sci(12345.0, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("1.2e+04"), std::string::npos);
  // All lines equally wide.
  std::istringstream is(s);
  std::string line, first;
  std::getline(is, first);
  while (std::getline(is, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(Args, FlagsAndValues) {
  const char* argv[] = {"prog", "--full", "--cycles=25", "--rate=0.5", "--name=abc"};
  io::Args a(5, const_cast<char**>(argv));
  EXPECT_TRUE(a.flag("full"));
  EXPECT_FALSE(a.flag("quick"));
  EXPECT_EQ(a.get_int("cycles", 1), 25);
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(a.get_str("name", ""), "abc");
}

TEST(ScaledForecast, RoundTripsUnits) {
  models::Lorenz96Config mc;
  mc.dim = 8;
  mc.steps_per_window = 2;
  models::Lorenz96 inner(mc), reference(mc);
  models::ScaledForecast scaled(inner, 10.0);
  EXPECT_EQ(scaled.dim(), 8u);

  std::vector<double> raw(8, 8.0);
  raw[0] += 0.5;
  std::vector<double> outer(8);
  for (std::size_t i = 0; i < 8; ++i) outer[i] = raw[i] * 10.0;

  reference.forecast(raw);
  scaled.forecast(outer);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(outer[i], raw[i] * 10.0, 1e-9);
}

TEST(ScaledForecast, KelvinScaleValue) {
  // theta0 * f / g with defaults: 300 * 1e-4 / 9.81.
  EXPECT_NEAR(models::sqg_kelvin_scale(), 300.0 * 1e-4 / 9.81, 1e-12);
}

}  // namespace
}  // namespace turbda
