#include <gtest/gtest.h>

#include "hpc/collective_model.hpp"
#include "hpc/gemm_model.hpp"
#include "hpc/memory_model.hpp"
#include "hpc/scaling_sim.hpp"
#include "hpc/vit_arch.hpp"

namespace turbda::hpc {
namespace {

TEST(MemoryModel, TableIPartitioning) {
  MemoryModel mm;
  const double p = 1e9;
  const int w = 64;

  const auto ddp = mm.per_gpu(p, ShardStrategy::DDP, w);
  EXPECT_DOUBLE_EQ(ddp.total(), 6.0 * p);  // 1 + 1 + 2 + 2

  const auto z1 = mm.per_gpu(p, ShardStrategy::ZeRO1, w);
  EXPECT_DOUBLE_EQ(z1.optimizer, 2.0 * p / w);
  EXPECT_DOUBLE_EQ(z1.weights, p);
  EXPECT_DOUBLE_EQ(z1.gradients, p);

  const auto z2 = mm.per_gpu(p, ShardStrategy::ZeRO2, w);
  EXPECT_DOUBLE_EQ(z2.gradients, p / w);
  EXPECT_DOUBLE_EQ(z2.weights, p);

  const auto z3 = mm.per_gpu(p, ShardStrategy::ZeRO3, w);
  EXPECT_DOUBLE_EQ(z3.weights, p / w);
  EXPECT_DOUBLE_EQ(z3.gradients, p / w);
  EXPECT_DOUBLE_EQ(z3.optimizer, 2.0 * p / w);

  // Strict memory ordering: DDP > ZeRO1 > ZeRO2 > ZeRO3.
  EXPECT_GT(ddp.total(), z1.total());
  EXPECT_GT(z1.total(), z2.total());
  EXPECT_GT(z2.total(), z3.total());

  // Hybrid shards within the node only.
  const auto hy = mm.per_gpu(p, ShardStrategy::HybridShard, w, /*node_size=*/8);
  EXPECT_DOUBLE_EQ(hy.weights, p / 8.0);
  EXPECT_GT(hy.total(), z3.total());
}

TEST(MemoryModel, FsdpCommVolumeIsFiftyPercentMore) {
  // Paper: "FSDP incurs approximately 50% more communication volume
  // compared to data parallelism".
  MemoryModel mm;
  const double p = 1e9;
  const double ddp = mm.comm_volume_per_gpu(p, ShardStrategy::DDP, 128);
  const double fsdp = mm.comm_volume_per_gpu(p, ShardStrategy::ZeRO3, 128);
  EXPECT_NEAR(fsdp / ddp, 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(mm.comm_volume_per_gpu(p, ShardStrategy::DDP, 1), 0.0);
}

TEST(CollectiveModel, BandwidthBoundedByHardware) {
  CollectiveModel cm;
  for (int n : {2, 8, 64, 1024}) {
    for (double mb : {1.0, 64.0, 1024.0}) {
      const double bw = cm.bus_bandwidth(Collective::AllReduce, mb * 1048576.0, n);
      EXPECT_GT(bw, 0.0);
      EXPECT_LT(bw, 2.0 * cm.spec().intra_mcm_bw);
    }
  }
}

TEST(CollectiveModel, AllReduceDipAround256MB) {
  // Paper Fig. 8: "there is a sudden performance drop around message size
  // 256MB for AllReduce".
  CollectiveModel cm;
  const int n = 512;
  const double bw128 = cm.bus_bandwidth(Collective::AllReduce, 100.0 * 1048576.0, n);
  const double bw256 = cm.bus_bandwidth(Collective::AllReduce, 256.0 * 1048576.0, n);
  const double bw1g = cm.bus_bandwidth(Collective::AllReduce, 1024.0 * 1048576.0, n);
  EXPECT_LT(bw256, 0.8 * bw128);
  EXPECT_GT(bw1g, bw256);
}

TEST(CollectiveModel, AllReduceBeatsOthersForMediumMessagesAtScale) {
  // Paper Fig. 8: for 64 MB messages AllReduce significantly outperforms
  // AllGather/ReduceScatter at scale, while all three converge at ~1 GB.
  CollectiveModel cm;
  const double m64 = 64.0 * 1048576.0, g1 = 1024.0 * 1048576.0;
  const int n = 1024;
  const double ar = cm.bus_bandwidth(Collective::AllReduce, m64, n);
  const double ag = cm.bus_bandwidth(Collective::AllGather, m64, n);
  const double rs = cm.bus_bandwidth(Collective::ReduceScatter, m64, n);
  EXPECT_GT(ar, 1.2 * ag);
  EXPECT_NEAR(ag, rs, 0.05 * ag);

  const double ar1 = cm.bus_bandwidth(Collective::AllReduce, g1, n);
  const double ag1 = cm.bus_bandwidth(Collective::AllGather, g1, n);
  EXPECT_NEAR(ar1 / ag1, 1.0, 0.35);
}

TEST(CollectiveModel, MoreGpusTakeLonger) {
  CollectiveModel cm;
  const double bytes = 256.0 * 1048576.0;
  double prev = 0.0;
  for (int n : {8, 64, 512}) {
    const double t = cm.seconds(Collective::AllGather, bytes, n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GemmModel, ShapeHeuristicsMatchFig6) {
  GemmModel g;
  nn::VitConfig v = table2_architectures()[2];  // 256^2 input
  // Embedding 2048 beats 1024 (best observed performance at 2048).
  nn::VitConfig v1024 = v, v2048 = v;
  v1024.embed_dim = 1024;
  v2048.embed_dim = 2048;
  EXPECT_GT(g.vit_training_tflops(v2048, 8), g.vit_training_tflops(v1024, 8));
  // More attention heads reduce performance.
  nn::VitConfig h8 = v, h32 = v;
  h8.heads = 8;
  h32.heads = 32;
  EXPECT_GT(g.vit_training_tflops(h8, 8), g.vit_training_tflops(h32, 8));
  // Heavier MLP improves performance.
  nn::VitConfig m2 = v, m8 = v;
  m2.mlp_ratio = 2.0;
  m8.mlp_ratio = 8.0;
  EXPECT_GT(g.vit_training_tflops(m8, 8), g.vit_training_tflops(m2, 8));
  // The sweep spans roughly the paper's 20-52 TFLOPS band.
  const double best = g.vit_training_tflops(v2048, 8);
  EXPECT_GT(best, 30.0);
  EXPECT_LT(best, 60.0);
}

TEST(VitArch, TableIIParams) {
  const auto archs = table2_architectures();
  ASSERT_EQ(archs.size(), 3u);
  EXPECT_NEAR(static_cast<double>(archs[0].param_count()), 157e6, 10e6);
  EXPECT_NEAR(static_cast<double>(archs[1].param_count()), 1.2e9, 0.05e9);
  EXPECT_NEAR(static_cast<double>(archs[2].param_count()), 2.5e9, 0.1e9);
}

TEST(VitArch, Eq18FlopsBudget) {
  // T = 6 * tokens * epochs * images * params; hand check for the small ViT.
  const auto cfg = table2_architectures()[0];
  const double tokens = 16.0 * 16.0;  // 64/4 squared
  const double want = 6.0 * tokens * 100.0 * 1e6 * static_cast<double>(cfg.param_count());
  EXPECT_DOUBLE_EQ(training_flops(cfg, 100, 1e6), want);
  // Budget grows with model size.
  const auto a = table2_architectures();
  EXPECT_LT(training_flops(a[0], 100, 1e6), training_flops(a[1], 100, 1e6));
  EXPECT_LT(training_flops(a[1], 100, 1e6), training_flops(a[2], 100, 1e6));
}

TEST(VitArch, NodeHoursPositiveAndScale) {
  const auto a = table2_architectures();
  const double h0 = frontier_node_hours(training_flops(a[0], 100, 1e6));
  const double h2 = frontier_node_hours(training_flops(a[2], 100, 1e6));
  EXPECT_GT(h0, 0.0);
  EXPECT_GT(h2, 10.0 * h0);
}

TEST(ScalingSim, EfficiencyDecreasesWithScaleAndStaysInRange) {
  ScalingSim sim;
  TrainSetup s;
  s.arch = table2_architectures()[1];
  s.global_batch = 5120;
  s.strategy = ShardStrategy::ZeRO1;
  double prev = 1.01;
  for (int n : {8, 64, 512, 1024}) {
    const double e = sim.scaling_efficiency(s, n);
    EXPECT_LE(e, prev + 1e-9);
    EXPECT_GT(e, 0.3);
    prev = e;
  }
}

TEST(ScalingSim, MidSizeModelScalesBest) {
  // Paper Fig. 9: "128^2 performs the best with a scaling efficiency of 86%,
  // while 64^2 and 256^2 perform comparably [worse]".
  ScalingSim sim;
  const auto archs = table2_architectures();
  const auto batches = table2_global_batches();
  double eff[3];
  for (int a = 0; a < 3; ++a) {
    TrainSetup s;
    s.arch = archs[static_cast<std::size_t>(a)];
    s.global_batch = batches[static_cast<std::size_t>(a)];
    s.strategy = ShardStrategy::ZeRO1;
    s.bucket_mb = 200.0;
    eff[a] = sim.scaling_efficiency(s, 1024);
  }
  EXPECT_GT(eff[1], eff[0]);
  EXPECT_GT(eff[1], eff[2]);
  EXPECT_NEAR(eff[1], 0.86, 0.06);  // paper: 86%
}

TEST(ScalingSim, BucketTuningMatchesPaperStory) {
  // DeepSpeed default (200 MB) sits on the AllReduce dip; ~500 MB is best;
  // a huge bucket loses overlap (paper §IV-B-c).
  ScalingSim sim;
  TrainSetup s;
  s.arch = table2_architectures()[2];
  s.global_batch = 1024;
  s.strategy = ShardStrategy::ZeRO1;

  s.bucket_mb = 200.0;
  const double e200 = sim.scaling_efficiency(s, 1024);
  s.bucket_mb = 500.0;
  const double e500 = sim.scaling_efficiency(s, 1024);
  s.bucket_mb = 8000.0;
  const double e8000 = sim.scaling_efficiency(s, 1024);

  EXPECT_GT(e500, e200);
  EXPECT_GT(e500, e8000);
  EXPECT_NEAR(e500, 0.85, 0.06);  // paper: "scaling efficiency improves to 85%"
}

TEST(ScalingSim, FullShardSlowerThanDdpAtScale) {
  ScalingSim sim;
  TrainSetup s;
  s.arch = table2_architectures()[2];
  s.global_batch = 1024;
  s.bucket_mb = 500.0;
  s.strategy = ShardStrategy::DDP;
  const double ddp = sim.scaling_efficiency(s, 1024);
  s.strategy = ShardStrategy::ZeRO3;
  const double z3 = sim.scaling_efficiency(s, 1024);
  EXPECT_LT(z3, ddp);
}

TEST(ScalingSim, CommFractionOrderingMatchesFig7) {
  // At 1024 GPUs: communication share is larger for 64^2 and 256^2 than for
  // 128^2 (paper Fig. 7 discussion).
  ScalingSim sim;
  const auto archs = table2_architectures();
  const auto batches = table2_global_batches();
  double comm[3];
  for (int a = 0; a < 3; ++a) {
    TrainSetup s;
    s.arch = archs[static_cast<std::size_t>(a)];
    s.global_batch = batches[static_cast<std::size_t>(a)];
    s.strategy = ShardStrategy::ZeRO1;
    s.bucket_mb = 200.0;
    comm[a] = sim.step(s, 1024).comm_fraction();
  }
  EXPECT_GT(comm[0], comm[1]);
  EXPECT_GT(comm[2], comm[1]);
}

TEST(EnsfScalingModel, MatchesPaperAnchors) {
  // Paper §IV-B-d: "The time per step is about 0.4s for 1M dimension, and
  // 28s for 100M."
  EnsfScalingModel m;
  EXPECT_NEAR(m.step_seconds(1e6, 8), 0.4, 0.05);
  EXPECT_NEAR(m.step_seconds(1e8, 8), 28.0, 1.0);
  // Weak scaling is flat: going 8 -> 1024 GPUs changes step time by < 5%.
  for (double dim : {1e6, 1e7, 1e8}) {
    const double t8 = m.step_seconds(dim, 8);
    const double t1024 = m.step_seconds(dim, 1024);
    EXPECT_NEAR(t1024 / t8, 1.0, 0.05);
  }
}

}  // namespace
}  // namespace turbda::hpc
