#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_utils.hpp"
#include "models/lorenz96.hpp"
#include "models/model_error.hpp"
#include "rng/rng.hpp"

namespace turbda::models {
namespace {

using turbda::rng::Rng;

TEST(Lorenz96, EquilibriumIsFixedPoint) {
  Lorenz96Config cfg;
  cfg.dim = 40;
  Lorenz96 model(cfg);
  std::vector<double> x(cfg.dim, cfg.forcing);  // x_i = F is a fixed point
  model.step(x);
  for (double v : x) EXPECT_NEAR(v, cfg.forcing, 1e-12);
}

TEST(Lorenz96, ChaoticDivergenceOfNearbyStates) {
  Lorenz96Config cfg;
  cfg.dim = 40;
  Lorenz96 model(cfg);
  Rng rng(1);
  std::vector<double> a(cfg.dim);
  for (auto& v : a) v = cfg.forcing + rng.gaussian();
  // Spin up onto the attractor.
  for (int i = 0; i < 1000; ++i) model.step(a);
  auto b = a;
  b[0] += 1e-8;
  double d0 = 1e-8;
  for (int i = 0; i < 500; ++i) {
    model.step(a);
    model.step(b);
  }
  double d1 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d1 += sqr(a[i] - b[i]);
  d1 = std::sqrt(d1);
  EXPECT_GT(d1 / d0, 100.0);  // positive Lyapunov exponent
}

TEST(Lorenz96, StateStaysBounded) {
  Lorenz96Config cfg;
  cfg.dim = 100;
  Lorenz96 model(cfg);
  Rng rng(2);
  std::vector<double> x(cfg.dim);
  for (auto& v : x) v = cfg.forcing + rng.gaussian();
  for (int i = 0; i < 2000; ++i) model.step(x);
  for (double v : x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 50.0);
  }
}

TEST(Lorenz96, ForecastRunsConfiguredSteps) {
  Lorenz96Config cfg;
  cfg.dim = 12;
  cfg.steps_per_window = 3;
  Lorenz96 model(cfg);
  Rng rng(3);
  std::vector<double> a(cfg.dim), b;
  for (auto& v : a) v = cfg.forcing + 0.1 * rng.gaussian();
  b = a;
  model.forecast(a);
  for (int i = 0; i < 3; ++i) model.step(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Lorenz96, RejectsTinyDimension) {
  Lorenz96Config cfg;
  cfg.dim = 3;
  EXPECT_THROW(Lorenz96 model(cfg), Error);
}

TEST(ModelError, ExpectedVarianceFormula) {
  ModelErrorConfig cfg;
  cfg.reference_scale = 2.0;
  ModelErrorProcess proc(cfg);
  double want = 0.0;
  want += 0.20 * sqr(0.20 * 2.0);
  want += 0.15 * sqr(0.30 * 2.0);
  want += 0.10 * sqr(0.40 * 2.0);
  want += 0.05 * sqr(0.50 * 2.0);
  EXPECT_NEAR(proc.expected_variance(), want, 1e-12);
}

TEST(ModelError, EmpiricalVarianceMatchesExpectation) {
  ModelErrorConfig cfg;
  cfg.reference_scale = 1.0;
  ModelErrorProcess proc(cfg);
  Rng rng(11);
  const std::size_t dim = 500;
  const int trials = 400;
  double sum_var = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x(dim, 0.0);
    proc.apply(x, rng);
    double v = 0.0;
    for (double xi : x) v += xi * xi;
    sum_var += v / static_cast<double>(dim);
  }
  const double got = sum_var / trials;
  EXPECT_NEAR(got, proc.expected_variance(), 0.15 * proc.expected_variance() + 0.002);
}

TEST(ModelError, ZeroProbabilityNeverFires) {
  ModelErrorConfig cfg;
  cfg.probabilities = {0.0, 0.0, 0.0, 0.0};
  ModelErrorProcess proc(cfg);
  Rng rng(12);
  std::vector<double> x(100, 0.0);
  for (int t = 0; t < 50; ++t) proc.apply(x, rng);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ModelError, ErrorsAreWhiteInTime) {
  // Successive applications must be uncorrelated: corr of increments ~ 0.
  ModelErrorConfig cfg;
  cfg.probabilities = {1.0, 0.0, 0.0, 0.0};  // always fire first component
  ModelErrorProcess proc(cfg);
  Rng rng(13);
  const std::size_t dim = 2000;
  std::vector<double> inc1(dim, 0.0), inc2(dim, 0.0);
  proc.apply(inc1, rng);
  proc.apply(inc2, rng);
  double c01 = 0.0, v1 = 0.0, v2 = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    c01 += inc1[i] * inc2[i];
    v1 += inc1[i] * inc1[i];
    v2 += inc2[i] * inc2[i];
  }
  EXPECT_LT(std::abs(c01) / std::sqrt(v1 * v2), 0.1);
}

}  // namespace
}  // namespace turbda::models
