// Philox4x32-10 counter-based pseudo-random number generator.
//
// Counter-based RNGs give every (seed, stream, counter) triple an independent
// reproducible value, which makes ensemble members, ranks and pseudo-time
// steps bit-reproducible regardless of execution order — the property the
// paper's ensemble-parallel EnSF relies on (§III-A3).
//
// Reference: Salmon et al., "Parallel random numbers: as easy as 1, 2, 3",
// SC'11.
#pragma once

#include <array>
#include <cstdint>

namespace turbda::rng {

/// Raw Philox4x32-10 block function: maps a 128-bit counter and 64-bit key
/// to 128 bits of output.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3)-1

  [[nodiscard]] static constexpr Counter round(Counter c, Key k) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c[2];
    const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const auto lo0 = static_cast<std::uint32_t>(p0);
    const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const auto lo1 = static_cast<std::uint32_t>(p1);
    return Counter{hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
  }

  [[nodiscard]] static constexpr Counter apply(Counter c, Key k) {
    for (int r = 0; r < 10; ++r) {
      c = round(c, k);
      k[0] += kWeyl0;
      k[1] += kWeyl1;
    }
    return c;
  }
};

}  // namespace turbda::rng
