// User-facing RNG built on Philox4x32-10: uniform, Gaussian, integer and
// Bernoulli draws plus derived independent sub-streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/math_utils.hpp"
#include "rng/philox.hpp"

namespace turbda::rng {

/// Counter-based random stream. Copyable; each copy continues independently
/// from its current counter. `substream(i)` derives a statistically
/// independent stream (distinct key), used to give every ensemble member /
/// rank / filter cycle its own reproducible randomness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0)
      : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)},
        ctr_{0, 0, static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)} {}

  /// Derive an independent stream; (seed, stream) pairs never collide across
  /// distinct `i` for a fixed parent.
  [[nodiscard]] Rng substream(std::uint64_t i) const {
    // Mix the substream index into the key with splitmix64-style avalanche.
    std::uint64_t z = (static_cast<std::uint64_t>(key_[1]) << 32 | key_[0]) + 0x9E3779B97F4A7C15ull * (i + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    Rng r(z, (static_cast<std::uint64_t>(ctr_[3]) << 32) | ctr_[2]);
    return r;
  }

  /// Next raw 32-bit value.
  std::uint32_t next_u32() {
    if (buf_pos_ == 4) refill();
    return buf_[buf_pos_++];
  }

  std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    const std::uint64_t hi = next_u32();
    return (hi << 32) | lo;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (cached pair).
  double gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    // Avoid log(0): map to (0,1].
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_ = r * std::sin(kTwoPi * u2);
    have_cached_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Fill a span with iid standard normals.
  void fill_gaussian(std::span<double> out, double mean = 0.0, double stddev = 1.0) {
    for (double& x : out) x = gaussian(mean, stddev);
  }

  void fill_uniform(std::span<double> out, double lo = 0.0, double hi = 1.0) {
    for (double& x : out) x = uniform(lo, hi);
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough method with rejection
    // to remove modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle of index span.
  template <typename T>
  void shuffle(std::span<T> v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Exact serialized size of the generator state (checkpoint/restart).
  static constexpr std::size_t kStateBytes =
      2 * sizeof(std::uint32_t) +  // key
      4 * sizeof(std::uint32_t) +  // counter
      4 * sizeof(std::uint32_t) +  // output buffer
      sizeof(std::int32_t) +       // buffer position
      sizeof(double) +             // cached Box–Muller value
      1;                           // have_cached flag

  /// Appends the complete generator state (key, counter, buffered outputs,
  /// cached Gaussian) to `out`; restoring it with load_state() continues the
  /// stream bitwise from this exact point.
  void save_state(std::vector<std::uint8_t>& out) const {
    const auto put_u32 = [&](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    for (std::uint32_t v : key_) put_u32(v);
    for (std::uint32_t v : ctr_) put_u32(v);
    for (std::uint32_t v : buf_) put_u32(v);
    put_u32(static_cast<std::uint32_t>(buf_pos_));
    std::uint64_t bits;
    std::memcpy(&bits, &cached_, sizeof(bits));
    put_u32(static_cast<std::uint32_t>(bits));
    put_u32(static_cast<std::uint32_t>(bits >> 32));
    out.push_back(have_cached_ ? 1 : 0);
  }

  /// Restores state written by save_state(). Returns false (leaving the
  /// generator untouched) when `in` is not exactly kStateBytes long or the
  /// decoded buffer position is out of range.
  bool load_state(std::span<const std::uint8_t> in) {
    if (in.size() != kStateBytes) return false;
    std::size_t at = 0;
    const auto get_u32 = [&] {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at++]) << (8 * i);
      return v;
    };
    Philox4x32::Key key;
    Philox4x32::Counter ctr, buf;
    for (auto& v : key) v = get_u32();
    for (auto& v : ctr) v = get_u32();
    for (auto& v : buf) v = get_u32();
    const auto pos = static_cast<std::int32_t>(get_u32());
    if (pos < 0 || pos > 4) return false;
    std::uint64_t bits = get_u32();
    bits |= static_cast<std::uint64_t>(get_u32()) << 32;
    key_ = key;
    ctr_ = ctr;
    buf_ = buf;
    buf_pos_ = pos;
    std::memcpy(&cached_, &bits, sizeof(cached_));
    have_cached_ = in[at] != 0;
    return true;
  }

 private:
  void refill() {
    buf_ = Philox4x32::apply(ctr_, key_);
    buf_pos_ = 0;
    // 64-bit increment over ctr_[0..1]; ctr_[2..3] is the stream id.
    if (++ctr_[0] == 0) ++ctr_[1];
  }

  Philox4x32::Key key_;
  Philox4x32::Counter ctr_;
  Philox4x32::Counter buf_{};
  int buf_pos_ = 4;
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace turbda::rng
