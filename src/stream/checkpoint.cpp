#include "stream/checkpoint.hpp"

#include <array>
#include <fstream>

#include "common/bytes.hpp"

namespace turbda::stream {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_metrics(std::vector<std::uint8_t>& out, const StreamCycleMetrics& m) {
  bytes::put_i32(out, m.cycle);
  bytes::put_f64(out, m.time_hours);
  bytes::put_f64(out, m.rmse_prior);
  bytes::put_f64(out, m.rmse_post);
  bytes::put_f64(out, m.spread_prior);
  bytes::put_f64(out, m.spread_post);
  bytes::put_i32(out, m.batches_assimilated);
  bytes::put_i32(out, m.batches_discarded);
  bytes::put_i32(out, m.max_batch_age);
  out.push_back(m.deadline_miss ? 1 : 0);
  bytes::put_f64(out, m.obs_arrival_cycles);
  bytes::put_i32(out, m.obs_rejected);
  bytes::put_i32(out, m.batches_rejected);
  bytes::put_f64(out, m.max_r_scale);
  bytes::put_i32(out, m.analysis_failures);
  bytes::put_i32(out, m.solver_fallbacks);
  bytes::put_i32(out, m.spread_recoveries);
  out.push_back(m.degraded ? 1 : 0);
  bytes::put_f64(out, m.forecast_ms);
  bytes::put_f64(out, m.analysis_ms);
  bytes::put_f64(out, m.qc_ms);
  bytes::put_f64(out, m.checkpoint_ms);
  bytes::put_f64(out, m.cycle_ms);
  bytes::put_f64(out, m.pool_idle_frac);
  bytes::put_i32(out, m.late_applied);
  bytes::put_i32(out, m.ingest_reconnects);
  bytes::put_i32(out, m.ingest_frames_corrupt);
  bytes::put_i32(out, m.ingest_frames_resynced);
  bytes::put_i32(out, m.ingest_queue_drops);
}

void read_metrics(bytes::Reader& rd, StreamCycleMetrics& m) {
  m.cycle = rd.i32();
  m.time_hours = rd.f64();
  m.rmse_prior = rd.f64();
  m.rmse_post = rd.f64();
  m.spread_prior = rd.f64();
  m.spread_post = rd.f64();
  m.batches_assimilated = rd.i32();
  m.batches_discarded = rd.i32();
  m.max_batch_age = rd.i32();
  m.deadline_miss = rd.u8() != 0;
  m.obs_arrival_cycles = rd.f64();
  m.obs_rejected = rd.i32();
  m.batches_rejected = rd.i32();
  m.max_r_scale = rd.f64();
  m.analysis_failures = rd.i32();
  m.solver_fallbacks = rd.i32();
  m.spread_recoveries = rd.i32();
  m.degraded = rd.u8() != 0;
  m.forecast_ms = rd.f64();
  m.analysis_ms = rd.f64();
  m.qc_ms = rd.f64();
  m.checkpoint_ms = rd.f64();
  m.cycle_ms = rd.f64();
  m.pool_idle_frac = rd.f64();
  m.late_applied = rd.i32();
  m.ingest_reconnects = rd.i32();
  m.ingest_frames_corrupt = rd.i32();
  m.ingest_frames_resynced = rd.i32();
  m.ingest_queue_drops = rd.i32();
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Status save_checkpoint(const std::string& path, const CheckpointData& data) {
  std::vector<std::uint8_t> payload;
  bytes::put_u64(payload, data.seed);
  bytes::put_u64(payload, data.n_members);
  bytes::put_u64(payload, data.dim);
  bytes::put_i32(payload, data.cycles);
  payload.push_back(data.schedule);
  bytes::put_i32(payload, data.overlap_depth);
  bytes::put_i32(payload, data.next_cycle);
  bytes::put_blob(payload, data.rng_modelerr);
  bytes::put_f64_span(payload, data.ensemble);
  payload.push_back(data.have_increment);
  bytes::put_f64_span(payload, data.buf_prior);
  bytes::put_f64_span(payload, data.buf_post);
  bytes::put_u64(payload, data.ring.size());
  for (const auto& s : data.ring) {
    bytes::put_i32(payload, s.cycle);
    bytes::put_f64_span(payload, s.prior);
    bytes::put_f64_span(payload, s.post);
  }
  bytes::put_blob(payload, data.applied);
  bytes::put_blob(payload, data.stream_state);
  bytes::put_blob(payload, data.filter_state);
  bytes::put_u64(payload, data.metrics.size());
  for (const auto& m : data.metrics) put_metrics(payload, m);

  std::vector<std::uint8_t> file;
  file.reserve(payload.size() + 20);
  bytes::put_u32(file, kCheckpointMagic);
  bytes::put_u32(file, kCheckpointVersion);
  bytes::put_u64(file, payload.size());
  file.insert(file.end(), payload.begin(), payload.end());
  bytes::put_u32(file, crc32(payload));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status(StatusCode::kIoError, "cannot open checkpoint file for write: " + path);
  out.write(reinterpret_cast<const char*>(file.data()), static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out) return Status(StatusCode::kIoError, "checkpoint write failed: " + path);
  return Status::Ok();
}

Status load_checkpoint(const std::string& path, CheckpointData& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kIoError, "cannot open checkpoint file: " + path);
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());

  bytes::Reader rd(file);
  const std::uint32_t magic = rd.u32();
  if (!rd.ok()) return Status(StatusCode::kCorruptData, "checkpoint truncated: no header");
  if (magic != kCheckpointMagic)
    return Status(StatusCode::kCorruptData, "not a checkpoint file (bad magic)");
  const std::uint32_t version = rd.u32();
  if (version != kCheckpointVersion)
    return Status(StatusCode::kUnsupported,
                  "unsupported checkpoint format version " + std::to_string(version) +
                      " (expected " + std::to_string(kCheckpointVersion) + ")");
  const std::uint64_t len = rd.u64();
  const auto payload = rd.raw(len);
  const std::uint32_t stored_crc = rd.u32();
  if (!rd.done())
    return Status(StatusCode::kCorruptData, "checkpoint truncated or has trailing bytes");
  if (crc32(payload) != stored_crc)
    return Status(StatusCode::kCorruptData, "checkpoint CRC mismatch — file is corrupt");

  bytes::Reader pr(payload);
  data.seed = pr.u64();
  data.n_members = pr.u64();
  data.dim = pr.u64();
  data.cycles = pr.i32();
  data.schedule = pr.u8();
  data.overlap_depth = pr.i32();
  data.next_cycle = pr.i32();
  if (!pr.blob(data.rng_modelerr) || !pr.f64_vec(data.ensemble))
    return Status(StatusCode::kCorruptData, "checkpoint payload malformed");
  data.have_increment = pr.u8();
  if (!pr.f64_vec(data.buf_prior) || !pr.f64_vec(data.buf_post))
    return Status(StatusCode::kCorruptData, "checkpoint payload malformed");
  const std::uint64_t n_ring = pr.u64();
  data.ring.clear();
  for (std::uint64_t i = 0; i < n_ring && pr.ok(); ++i) {
    CheckpointData::StagedSlotData s;
    s.cycle = pr.i32();
    if (!pr.f64_vec(s.prior) || !pr.f64_vec(s.post))
      return Status(StatusCode::kCorruptData, "checkpoint payload malformed");
    data.ring.push_back(std::move(s));
  }
  if (!pr.blob(data.applied) || !pr.blob(data.stream_state) || !pr.blob(data.filter_state))
    return Status(StatusCode::kCorruptData, "checkpoint payload malformed");
  const std::uint64_t n_metrics = pr.u64();
  data.metrics.clear();
  for (std::uint64_t i = 0; i < n_metrics && pr.ok(); ++i) {
    StreamCycleMetrics m;
    read_metrics(pr, m);
    data.metrics.push_back(m);
  }
  if (!pr.done()) return Status(StatusCode::kCorruptData, "checkpoint payload malformed");
  if (data.ensemble.size() != data.n_members * data.dim)
    return Status(StatusCode::kCorruptData, "checkpoint ensemble size inconsistent");
  if (data.have_increment != 0 &&
      (data.buf_prior.size() != data.ensemble.size() ||
       data.buf_post.size() != data.ensemble.size()))
    return Status(StatusCode::kCorruptData, "checkpoint analysis buffers inconsistent");
  for (const auto& s : data.ring)
    if (s.prior.size() != data.ensemble.size() || s.post.size() != data.ensemble.size())
      return Status(StatusCode::kCorruptData, "checkpoint staged slot inconsistent");
  return Status::Ok();
}

}  // namespace turbda::stream
