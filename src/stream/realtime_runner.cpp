#include "stream/realtime_runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <thread>

#include "common/check.hpp"
#include "io/csv.hpp"
#include "parallel/thread_pool.hpp"

namespace turbda::stream {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

/// Outcome of one cycle's batch collection: what to assimilate now, plus the
/// deadline verdict for this window's own batch.
struct RealtimeRunner::CollectResult {
  std::vector<ObsBatch> apply;  ///< window order (stragglers first)
  bool own_on_time = false;
  double own_arrival = -1.0;
  int discarded = 0;
};

RealtimeRunner::RealtimeRunner(RealtimeConfig cfg, ObservationStream& stream,
                               models::ForecastModel& forecast_model, da::Filter* filter,
                               const models::ModelErrorProcess* model_error)
    : cfg_(cfg),
      stream_(stream),
      forecast_model_(forecast_model),
      filter_(filter),
      model_error_(model_error) {
  TURBDA_REQUIRE(stream_.h().state_dim() == forecast_model_.dim(),
                 "stream observation operator dim mismatch");
  TURBDA_REQUIRE(cfg_.cycles >= 1 && cfg_.n_members >= 2, "bad realtime configuration");
  TURBDA_REQUIRE(cfg_.deadline_slack_cycles >= 0.0 && cfg_.max_stale_cycles >= 0,
                 "bad deadline configuration");
  if (cfg_.inject_model_error)
    TURBDA_REQUIRE(model_error_ != nullptr,
                   "inject_model_error requires a ModelErrorProcess instance");
}

const da::Ensemble& RealtimeRunner::ensemble() const {
  TURBDA_REQUIRE(ens_.has_value(), "ensemble available only after run()");
  return *ens_;
}

std::vector<double> RealtimeRunner::draw_shared_error(int cycle) const {
  if (!(cfg_.inject_model_error && cfg_.model_error_shared)) return {};
  rng::Rng r_me = rng_modelerr_->substream(static_cast<std::uint64_t>(cycle));
  return model_error_->sample(forecast_model_.dim(), r_me);
}

/// Identical to the offline OSSE member loop: disjoint state rows +
/// counter-based model-error substreams make it bitwise invariant to the
/// thread count, the schedule, and the block partition (forecast_batch is
/// bitwise identical to the member-sequential loop by contract).
void RealtimeRunner::forecast_block(int cycle, std::size_t b, std::size_t e,
                                    const std::vector<double>& shared_err) {
  const std::size_t d = forecast_model_.dim();
  // Ensemble members are contiguous rows, so the block is one dense span.
  std::span<double> block(ens_->member(b).data(), (e - b) * d);
  forecast_model_.forecast_batch(block, e - b);
  if (cfg_.inject_model_error) {
    for (std::size_t m = b; m < e; ++m) {
      if (cfg_.model_error_shared) {
        auto row = ens_->member(m);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += shared_err[i];
      } else {
        rng::Rng r_me = rng_modelerr_->substream(
            static_cast<std::uint64_t>(cycle) * cfg_.n_members + m + 1000000);
        model_error_->apply(ens_->member(m), r_me);
      }
    }
  }
}

void RealtimeRunner::forecast_members(int cycle) {
  const std::vector<double> shared_err = draw_shared_error(cycle);
  if (forecast_model_.concurrent_safe() && cfg_.n_forecast_threads != 1) {
    parallel::parallel_for(
        cfg_.n_members,
        [&](std::size_t b, std::size_t e) { forecast_block(cycle, b, e, shared_err); },
        /*min_grain=*/1, cfg_.n_forecast_threads);
  } else {
    forecast_block(cycle, 0, cfg_.n_members, shared_err);
  }
}

void RealtimeRunner::discard_unconsumed(int cycle) {
  std::vector<ObsBatch> drained;
  stream_.collect(static_cast<double>(cycle + 1) + cfg_.deadline_slack_cycles, drained);
}

RealtimeRunner::CollectResult RealtimeRunner::collect_batches(int cycle) {
  CollectResult res;
  std::vector<ObsBatch> arrived;
  stream_.collect(static_cast<double>(cycle + 1) + cfg_.deadline_slack_cycles, arrived);
  for (auto& b : arrived) {
    const int age = cycle - b.cycle;
    if (age == 0) {
      res.own_on_time = true;
      res.own_arrival = b.arrival_cycles;
      res.apply.push_back(std::move(b));
    } else if (cfg_.catch_up && age <= cfg_.max_stale_cycles) {
      res.apply.push_back(std::move(b));
    } else {
      ++res.discarded;
    }
  }
  return res;
}

void RealtimeRunner::emulate_delivery_delay(const std::vector<ObsBatch>& batches,
                                            int cycle) const {
  if (cfg_.wall_ms_per_cycle <= 0.0 || batches.empty()) return;
  double delay_cycles = 0.0;
  for (const auto& b : batches)
    delay_cycles = std::max(delay_cycles, b.arrival_cycles - static_cast<double>(cycle + 1));
  if (delay_cycles <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_cycles * cfg_.wall_ms_per_cycle));
}

std::vector<StreamCycleMetrics> RealtimeRunner::run(std::span<const double> base,
                                                    const da::Ensemble* initial_ensemble) {
  const std::size_t d = forecast_model_.dim();
  TURBDA_REQUIRE(base.size() == d, "initial state size mismatch");

  rng::Rng root(cfg_.seed);
  rng::Rng rng_init = root.substream(0);
  rng_modelerr_ = root.substream(2);

  ens_.emplace(cfg_.n_members, d);
  if (initial_ensemble != nullptr) {
    TURBDA_REQUIRE(initial_ensemble->size() == cfg_.n_members && initial_ensemble->dim() == d,
                   "initial ensemble shape mismatch");
    ens_->data() = initial_ensemble->data();
  } else {
    ens_->init_perturbed(base, cfg_.init_spread, rng_init);
  }

  // Let the filter pre-build network-dependent caches (e.g. LETKF's
  // local-observation plan) before the deadline clock starts ticking; the
  // stream's network is known up front and stays fixed across cycles.
  if (filter_ != nullptr) filter_->prepare(stream_.h(), stream_.r());

  return cfg_.schedule == Schedule::Serial ? run_serial() : run_overlapped();
}

std::vector<StreamCycleMetrics> RealtimeRunner::run_serial() {
  std::vector<StreamCycleMetrics> metrics;
  metrics.reserve(static_cast<std::size_t>(cfg_.cycles));

  for (int k = 0; k < cfg_.cycles; ++k) {
    const auto t_cycle = Clock::now();
    StreamCycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg_.window_hours;

    stream_.produce(k);

    const auto t_fcst = Clock::now();
    forecast_members(k);
    cm.forecast_ms = ms_since(t_fcst);

    const auto truth = stream_.truth(k);
    TURBDA_REQUIRE(!truth.empty(), "stream did not retain the truth state for this cycle");
    cm.rmse_prior = rmse_vs_truth(*ens_, truth);
    cm.spread_prior = ens_->mean_spread();

    if (filter_ != nullptr) {
      CollectResult col = collect_batches(k);
      cm.deadline_miss = !col.own_on_time;
      cm.obs_arrival_cycles = col.own_arrival;
      cm.batches_discarded = col.discarded;
      if (!col.apply.empty()) {
        emulate_delivery_delay(col.apply, k);
        const auto t_an = Clock::now();
        for (const auto& b : col.apply) {
          filter_->analyze(*ens_, b.y, stream_.h(), stream_.r());
          ++cm.batches_assimilated;
          cm.max_batch_age = std::max(cm.max_batch_age, k - b.cycle);
        }
        cm.analysis_ms = ms_since(t_an);
      }
    } else {
      discard_unconsumed(k);
    }
    cm.rmse_post = rmse_vs_truth(*ens_, truth);
    cm.spread_post = ens_->mean_spread();
    cm.cycle_ms = ms_since(t_cycle);
    metrics.push_back(cm);

    if (hook_) {
      const auto mean = ens_->mean();
      hook_(k, mean);
    }
  }
  return metrics;
}

std::vector<StreamCycleMetrics> RealtimeRunner::run_overlapped() {
  auto& pool = parallel::global_pool();
  std::vector<StreamCycleMetrics> metrics;
  metrics.reserve(static_cast<std::size_t>(cfg_.cycles));

  // Prologue: nothing to overlap with yet — produce and forecast window 0.
  stream_.produce(0);
  forecast_members(0);

  // Double buffer: the analysis for cycle k runs on a copy while the
  // ensemble itself forecasts ahead; the increment lands one cycle later.
  // Allocated once on first use, reused (assignment keeps capacity) so the
  // hot loop stays allocation-free after warm-up.
  std::optional<da::Ensemble> buf_prior, buf_post;
  bool have_increment = false;

  for (int k = 0; k < cfg_.cycles; ++k) {
    const auto t_cycle = Clock::now();
    StreamCycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg_.window_hours;

    const auto truth = stream_.truth(k);
    TURBDA_REQUIRE(!truth.empty(), "stream did not retain the truth state for this cycle");
    cm.rmse_prior = rmse_vs_truth(*ens_, truth);
    cm.spread_prior = ens_->mean_spread();

    // Apply the lagged increment from cycle k-1's analysis.
    if (have_increment) {
      for (std::size_t m = 0; m < cfg_.n_members; ++m) {
        auto row = ens_->member(m);
        const auto post = buf_post->member(m);
        const auto prior = buf_prior->member(m);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += post[i] - prior[i];
      }
      have_increment = false;
    }

    CollectResult col;
    if (filter_ != nullptr) {
      col = collect_batches(k);
      cm.deadline_miss = !col.own_on_time;
      cm.obs_arrival_cycles = col.own_arrival;
      cm.batches_discarded = col.discarded;
    } else {
      discard_unconsumed(k);
    }

    const bool last = (k + 1 == cfg_.cycles);
    if (last) {
      // Drain synchronously so the final ensemble reflects every batch.
      if (!col.apply.empty()) {
        emulate_delivery_delay(col.apply, k);
        const auto t_an = Clock::now();
        for (const auto& b : col.apply) {
          filter_->analyze(*ens_, b.y, stream_.h(), stream_.r());
          ++cm.batches_assimilated;
          cm.max_batch_age = std::max(cm.max_batch_age, k - b.cycle);
        }
        cm.analysis_ms = ms_since(t_an);
      }
      cm.rmse_post = rmse_vs_truth(*ens_, truth);
      cm.spread_post = ens_->mean_spread();
      cm.cycle_ms = ms_since(t_cycle);
      metrics.push_back(cm);
      if (hook_) {
        const auto mean = ens_->mean();
        hook_(k, mean);
      }
      break;
    }

    // Post metrics reflect the state after this cycle's update step (the
    // lagged increment); this cycle's own analysis lands at k+1.
    cm.rmse_post = rmse_vs_truth(*ens_, truth);
    cm.spread_post = ens_->mean_spread();
    if (hook_) {
      const auto mean = ens_->mean();
      hook_(k, mean);
    }

    // Stage this cycle's analysis on the side buffer...
    const bool staged = !col.apply.empty();
    if (staged) {
      if (buf_prior.has_value()) {
        buf_prior->data() = ens_->data();
        buf_post->data() = ens_->data();
      } else {
        buf_prior.emplace(*ens_);
        buf_post.emplace(*ens_);
      }
    }

    // ...then fan the next window out over the pool: the stream's producer
    // and the member forecasts for k+1 run concurrently with the analysis
    // below. Per-member work is partition-independent, so this stays
    // bitwise identical for any pool size.
    const int k1 = k + 1;
    const std::vector<double> shared_err = draw_shared_error(k1);

    const auto t_fcst = Clock::now();
    std::vector<std::future<void>> tasks;
    tasks.push_back(pool.submit([this, k1] { stream_.produce(k1); }));
    std::size_t par = std::max<std::size_t>(pool.size(), 1);
    if (cfg_.n_forecast_threads != 0) par = std::min(par, cfg_.n_forecast_threads);
    if (!forecast_model_.concurrent_safe()) par = 1;
    par = std::min(par, cfg_.n_members);
    const std::size_t chunk = (cfg_.n_members + par - 1) / par;
    for (std::size_t b = 0; b < cfg_.n_members; b += chunk) {
      const std::size_t e = std::min(b + chunk, cfg_.n_members);
      tasks.push_back(pool.submit(
          [this, k1, b, e, &shared_err] { forecast_block(k1, b, e, shared_err); }));
    }

    // Inline analysis on the caller thread: its internal parallel_for
    // interleaves with the forecast tasks on the shared pool.
    std::exception_ptr err;
    if (staged) {
      try {
        emulate_delivery_delay(col.apply, k);
        const auto t_an = Clock::now();
        for (const auto& b : col.apply) {
          filter_->analyze(*buf_post, b.y, stream_.h(), stream_.r());
          ++cm.batches_assimilated;
          cm.max_batch_age = std::max(cm.max_batch_age, k - b.cycle);
        }
        cm.analysis_ms = ms_since(t_an);
      } catch (...) {
        err = std::current_exception();
      }
    }
    for (auto& t : tasks) {
      try {
        t.get();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    have_increment = staged;

    cm.forecast_ms = ms_since(t_fcst);
    cm.cycle_ms = ms_since(t_cycle);
    metrics.push_back(cm);
  }
  return metrics;
}

void write_stream_metrics_csv(const std::string& path,
                              std::span<const StreamCycleMetrics> metrics) {
  io::CsvWriter csv(path, {"cycle", "time_hours", "rmse_prior", "rmse_post", "spread_prior",
                           "spread_post", "batches_assimilated", "batches_discarded",
                           "max_batch_age", "deadline_miss", "obs_arrival_cycles",
                           "forecast_ms", "analysis_ms", "cycle_ms"});
  for (const auto& m : metrics) {
    csv.row({static_cast<double>(m.cycle), m.time_hours, m.rmse_prior, m.rmse_post,
             m.spread_prior, m.spread_post, static_cast<double>(m.batches_assimilated),
             static_cast<double>(m.batches_discarded), static_cast<double>(m.max_batch_age),
             m.deadline_miss ? 1.0 : 0.0, m.obs_arrival_cycles, m.forecast_ms, m.analysis_ms,
             m.cycle_ms});
  }
}

double mean_rmse_post(std::span<const StreamCycleMetrics> metrics, int from_cycle) {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& m : metrics)
    if (m.cycle >= from_cycle) {
      s += m.rmse_post;
      ++n;
    }
  return n ? s / static_cast<double>(n) : 0.0;
}

int count_deadline_misses(std::span<const StreamCycleMetrics> metrics) {
  int n = 0;
  for (const auto& m : metrics) n += m.deadline_miss ? 1 : 0;
  return n;
}

}  // namespace turbda::stream
