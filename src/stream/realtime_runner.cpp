#include "stream/realtime_runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <thread>

#include "common/check.hpp"
#include "io/csv.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/checkpoint.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace turbda::stream {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Tracks pool-worker utilization across one cycle: diff of the pool's
/// cumulative busy time over the cycle's wall time.
struct PoolIdleProbe {
  Clock::time_point t0 = Clock::now();
  std::uint64_t busy0 = parallel::global_pool().stats().busy_ns;

  [[nodiscard]] double idle_frac() const {
    const auto& pool = parallel::global_pool();
    if (pool.size() == 0) return -1.0;
    const double wall_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    if (wall_ns <= 0.0) return -1.0;
    const double busy_ns =
        static_cast<double>(pool.stats().busy_ns - busy0);
    const double frac = 1.0 - busy_ns / (wall_ns * static_cast<double>(pool.size()));
    return std::clamp(frac, 0.0, 1.0);
  }
};

/// Folds one finished cycle's record into the global metrics registry.
/// Instrument refs are resolved once (stable for the registry's lifetime);
/// updates are lock-free relaxed atomics.
void record_cycle_telemetry(const StreamCycleMetrics& cm) {
  auto& reg = telemetry::MetricsRegistry::global();
  static telemetry::Counter& c_cycles = reg.counter("turbda_cycles_total");
  static telemetry::Counter& c_misses = reg.counter("turbda_deadline_miss_total");
  static telemetry::Counter& c_qc_rej = reg.counter("turbda_qc_rejected_total");
  static telemetry::Counter& c_assim = reg.counter("turbda_batches_assimilated_total");
  static telemetry::Counter& c_disc = reg.counter("turbda_batches_discarded_total");
  static telemetry::Counter& c_fail = reg.counter("turbda_analysis_failures_total");
  static telemetry::Counter& c_spread = reg.counter("turbda_spread_recoveries_total");
  static telemetry::Counter& c_degraded = reg.counter("turbda_degraded_cycles_total");
  static telemetry::Counter& c_late = reg.counter("turbda_ingest_late_applied_total");
  static telemetry::Counter& c_reconn = reg.counter("turbda_ingest_reconnects_total");
  static telemetry::Counter& c_corrupt = reg.counter("turbda_ingest_frames_corrupt_total");
  static telemetry::Counter& c_resync = reg.counter("turbda_ingest_frames_resynced_total");
  static telemetry::Counter& c_qdrops = reg.counter("turbda_ingest_queue_drops_total");
  static telemetry::Histogram& h_cycle = reg.histogram("turbda_cycle_ms");
  static telemetry::Histogram& h_fcst = reg.histogram("turbda_forecast_ms");
  static telemetry::Histogram& h_an = reg.histogram("turbda_analysis_ms");
  static telemetry::Histogram& h_qc = reg.histogram("turbda_qc_ms");
  static telemetry::Histogram& h_ckpt = reg.histogram("turbda_checkpoint_ms");
  static telemetry::Gauge& g_idle = reg.gauge("turbda_pool_idle_frac");
  static telemetry::Gauge& g_slack = reg.gauge("turbda_deadline_slack_cycles");

  c_cycles.inc();
  if (cm.deadline_miss) c_misses.inc();
  c_qc_rej.inc(static_cast<std::uint64_t>(cm.obs_rejected));
  c_assim.inc(static_cast<std::uint64_t>(cm.batches_assimilated));
  c_disc.inc(static_cast<std::uint64_t>(cm.batches_discarded));
  c_fail.inc(static_cast<std::uint64_t>(cm.analysis_failures));
  c_spread.inc(static_cast<std::uint64_t>(cm.spread_recoveries));
  if (cm.degraded) c_degraded.inc();
  c_late.inc(static_cast<std::uint64_t>(cm.late_applied));
  c_reconn.inc(static_cast<std::uint64_t>(cm.ingest_reconnects));
  c_corrupt.inc(static_cast<std::uint64_t>(cm.ingest_frames_corrupt));
  c_resync.inc(static_cast<std::uint64_t>(cm.ingest_frames_resynced));
  c_qdrops.inc(static_cast<std::uint64_t>(cm.ingest_queue_drops));
  h_cycle.observe(cm.cycle_ms);
  h_fcst.observe(cm.forecast_ms);
  if (cm.batches_assimilated > 0 || cm.analysis_failures > 0) h_an.observe(cm.analysis_ms);
  if (cm.qc_ms > 0.0) h_qc.observe(cm.qc_ms);
  if (cm.checkpoint_ms > 0.0) h_ckpt.observe(cm.checkpoint_ms);
  if (cm.pool_idle_frac >= 0.0) g_idle.set(cm.pool_idle_frac);
  // Slack of this window's own batch vs. its analysis point (negative =
  // late); only meaningful when the batch arrived at all.
  if (cm.obs_arrival_cycles >= 0.0)
    g_slack.set(static_cast<double>(cm.cycle + 1) - cm.obs_arrival_cycles);
  if (cm.degraded) TURBDA_TRACE_INSTANT("status.degraded_cycle");
}

/// Per-cycle delta of the stream's cumulative transport counters (all zero
/// for in-process streams).
void fill_ingest_delta(StreamCycleMetrics& cm, const ObservationStream::IngestCounters& base,
                       const ObservationStream::IngestCounters& now) {
  cm.ingest_reconnects = static_cast<int>(now.reconnects - base.reconnects);
  cm.ingest_frames_corrupt = static_cast<int>(now.frames_corrupt - base.frames_corrupt);
  cm.ingest_frames_resynced = static_cast<int>(now.frames_resynced - base.frames_resynced);
  cm.ingest_queue_drops = static_cast<int>(now.queue_drops - base.queue_drops);
}

}  // namespace

/// Outcome of one cycle's batch collection: what to assimilate now, plus the
/// deadline verdict for this window's own batch.
struct RealtimeRunner::CollectResult {
  std::vector<ObsBatch> apply;  ///< window order (stragglers first)
  bool own_on_time = false;
  double own_arrival = -1.0;
  int discarded = 0;
};

RealtimeRunner::RealtimeRunner(RealtimeConfig cfg, ObservationStream& stream,
                               models::ForecastModel& forecast_model, da::Filter* filter,
                               const models::ModelErrorProcess* model_error)
    : cfg_(cfg),
      stream_(stream),
      forecast_model_(forecast_model),
      filter_(filter),
      model_error_(model_error) {
  TURBDA_REQUIRE(stream_.h().state_dim() == forecast_model_.dim(),
                 "stream observation operator dim mismatch");
  TURBDA_REQUIRE(cfg_.cycles >= 1 && cfg_.n_members >= 2, "bad realtime configuration");
  TURBDA_REQUIRE(cfg_.deadline_slack_cycles >= 0.0 && cfg_.max_stale_cycles >= 0,
                 "bad deadline configuration");
  TURBDA_REQUIRE(cfg_.overlap_depth >= 1 && cfg_.late_r_inflation >= 0.0,
                 "bad overlap-depth configuration");
  TURBDA_REQUIRE(cfg_.spread_floor >= 0.0 && cfg_.spread_ceiling >= 0.0 &&
                     (cfg_.spread_ceiling == 0.0 || cfg_.spread_floor < cfg_.spread_ceiling),
                 "bad spread-watchdog configuration");
  TURBDA_REQUIRE(cfg_.checkpoint_every >= 0, "bad checkpoint configuration");
  if (cfg_.inject_model_error)
    TURBDA_REQUIRE(model_error_ != nullptr,
                   "inject_model_error requires a ModelErrorProcess instance");
}

const da::Ensemble& RealtimeRunner::ensemble() const {
  TURBDA_REQUIRE(ens_.has_value(), "ensemble available only after run()");
  return *ens_;
}

std::vector<double> RealtimeRunner::draw_shared_error(int cycle) const {
  if (!(cfg_.inject_model_error && cfg_.model_error_shared)) return {};
  rng::Rng r_me = rng_modelerr_->substream(static_cast<std::uint64_t>(cycle));
  return model_error_->sample(forecast_model_.dim(), r_me);
}

/// Identical to the offline OSSE member loop: disjoint state rows +
/// counter-based model-error substreams make it bitwise invariant to the
/// thread count, the schedule, and the block partition (forecast_batch is
/// bitwise identical to the member-sequential loop by contract).
void RealtimeRunner::forecast_block(int cycle, std::size_t b, std::size_t e,
                                    const std::vector<double>& shared_err) {
  TURBDA_SPAN("runner.forecast_block");
  const std::size_t d = forecast_model_.dim();
  // Ensemble members are contiguous rows, so the block is one dense span.
  std::span<double> block(ens_->member(b).data(), (e - b) * d);
  forecast_model_.forecast_batch(block, e - b);
  if (cfg_.inject_model_error) {
    for (std::size_t m = b; m < e; ++m) {
      if (cfg_.model_error_shared) {
        auto row = ens_->member(m);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += shared_err[i];
      } else {
        rng::Rng r_me = rng_modelerr_->substream(
            static_cast<std::uint64_t>(cycle) * cfg_.n_members + m + 1000000);
        model_error_->apply(ens_->member(m), r_me);
      }
    }
  }
}

void RealtimeRunner::forecast_members(int cycle) {
  const std::vector<double> shared_err = draw_shared_error(cycle);
  if (forecast_model_.concurrent_safe() && cfg_.n_forecast_threads != 1) {
    parallel::parallel_for(
        cfg_.n_members,
        [&](std::size_t b, std::size_t e) { forecast_block(cycle, b, e, shared_err); },
        /*min_grain=*/1, cfg_.n_forecast_threads);
  } else {
    forecast_block(cycle, 0, cfg_.n_members, shared_err);
  }
}

void RealtimeRunner::discard_unconsumed(int cycle) {
  std::vector<ObsBatch> drained;
  stream_.collect(static_cast<double>(cycle + 1) + cfg_.deadline_slack_cycles, drained);
}

RealtimeRunner::CollectResult RealtimeRunner::collect_batches(int cycle) {
  // With age-dependent R inflation active, staleness no longer discards: a
  // late batch is assimilated with R inflated by its age instead (QC fills
  // in the factor), so information is down-weighted rather than thrown away.
  const bool stale_inflation = cfg_.qc.enabled && cfg_.qc.stale_r_inflation > 0.0;
  CollectResult res;
  std::vector<ObsBatch> arrived;
  stream_.collect(static_cast<double>(cycle + 1) + cfg_.deadline_slack_cycles, arrived);
  for (auto& b : arrived) {
    const int age = cycle - b.cycle;
    if (age == 0) {
      res.own_on_time = true;
      res.own_arrival = b.arrival_cycles;
      res.apply.push_back(std::move(b));
    } else if (cfg_.catch_up && (age <= cfg_.max_stale_cycles || stale_inflation)) {
      res.apply.push_back(std::move(b));
    } else if (cfg_.catch_up && cfg_.schedule == Schedule::Overlapped &&
               cfg_.overlap_depth > 1 &&
               age <= cfg_.max_stale_cycles + (cfg_.overlap_depth - 1)) {
      // Deep overlap: a batch up to K-1 cycles past the staleness cutoff is
      // still in flight as a K-window-late increment rather than dropped —
      // assimilate_batches forces age-dependent R inflation on it.
      res.apply.push_back(std::move(b));
    } else {
      ++res.discarded;
    }
  }
  return res;
}

void RealtimeRunner::emulate_delivery_delay(const std::vector<ObsBatch>& batches,
                                            int cycle) const {
  if (cfg_.wall_ms_per_cycle <= 0.0 || batches.empty()) return;
  double delay_cycles = 0.0;
  for (const auto& b : batches)
    delay_cycles = std::max(delay_cycles, b.arrival_cycles - static_cast<double>(cycle + 1));
  if (delay_cycles <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_cycles * cfg_.wall_ms_per_cycle));
}

void RealtimeRunner::assimilate_batches(da::Ensemble& target, std::vector<ObsBatch>& batches,
                                        int cycle, StreamCycleMetrics& cm) {
  if (batches.empty()) return;
  emulate_delivery_delay(batches, cycle);
  TURBDA_SPAN("runner.analysis");
  const auto t_an = Clock::now();
  std::vector<std::uint8_t> mask;
  for (auto& b : batches) {
    // Duplicate-transmission guard: each observing window is applied once.
    if (b.cycle >= 0 && b.cycle < cfg_.cycles && applied_[static_cast<std::size_t>(b.cycle)]) {
      ++cm.batches_rejected;
      continue;
    }
    // A batch with the wrong shape (e.g. truncated in transmission) is
    // refused outright — a later duplicate transmission can still recover it.
    if (b.y.size() != stream_.obs_dim()) {
      ++cm.batches_rejected;
      cm.degraded = true;
      continue;
    }
    const int age = std::max(cycle - b.cycle, 0);
    da::AnalysisOptions opts;
    if (cfg_.qc.enabled) {
      TURBDA_SPAN("runner.qc");
      const auto t_qc = Clock::now();
      const da::QcReport rep =
          da::apply_quality_control(cfg_.qc, b.y, stream_.h(), stream_.r(), target,
                                    static_cast<std::size_t>(age), mask);
      cm.qc_ms += ms_since(t_qc);
      cm.obs_rejected += static_cast<int>(rep.rejected_total());
      cm.max_r_scale = std::max(cm.max_r_scale, rep.r_scale);
      opts.r_scale = rep.r_scale;
      if (rep.rejected_total() > 0) opts.obs_mask = mask;
    }
    if (age > cfg_.max_stale_cycles && cfg_.late_r_inflation > 0.0) {
      // Deep-late information is never taken at face value: even with QC off
      // (or configured without stale inflation), a batch past the staleness
      // cutoff gets its R inflated by age before it may touch the ensemble.
      opts.r_scale = std::max(
          opts.r_scale,
          std::min(1.0 + static_cast<double>(age) * cfg_.late_r_inflation,
                   cfg_.qc.max_r_scale));
      cm.max_r_scale = std::max(cm.max_r_scale, opts.r_scale);
    }
    da::AnalysisStats st;
    const Status s = filter_->try_analyze(target, b.y, stream_.h(), stream_.r(), opts, &st);
    if (!s.ok()) {
      // Graceful degradation: the filters leave the ensemble untouched on a
      // recoverable failure, so this cycle simply keeps its forecast.
      TURBDA_REQUIRE(cfg_.degrade_on_failure, "analysis failed — " << s.to_string());
      TURBDA_TRACE_INSTANT("status.analysis_failure");
      ++cm.analysis_failures;
      cm.degraded = true;
      continue;
    }
    if (st.fallback_columns > 0) TURBDA_TRACE_INSTANT("status.solver_fallback");
    cm.solver_fallbacks += static_cast<int>(st.fallback_columns);
    if (st.solver_failures > 0) cm.degraded = true;
    if (b.cycle >= 0 && b.cycle < cfg_.cycles) applied_[static_cast<std::size_t>(b.cycle)] = 1;
    ++cm.batches_assimilated;
    if (age > cfg_.max_stale_cycles) ++cm.late_applied;
    cm.max_batch_age = std::max(cm.max_batch_age, cycle - b.cycle);
  }
  cm.analysis_ms = ms_since(t_an);
  apply_spread_guard(target, cycle, cm);
}

void RealtimeRunner::apply_spread_guard(da::Ensemble& target, int cycle, StreamCycleMetrics& cm) {
  if (cfg_.spread_floor <= 0.0 && cfg_.spread_ceiling <= 0.0) return;
  const double sp = target.mean_spread();
  const auto rescale = [&](double scale) {
    const auto mu = target.mean();
    for (std::size_t m = 0; m < target.size(); ++m) {
      auto row = target.member(m);
      for (std::size_t i = 0; i < row.size(); ++i) row[i] = mu[i] + (row[i] - mu[i]) * scale;
    }
  };
  if (cfg_.spread_floor > 0.0 && sp < cfg_.spread_floor) {
    TURBDA_TRACE_INSTANT("status.spread_recovery");
    ++cm.spread_recoveries;
    cm.degraded = true;
    if (sp <= 1e-12 * cfg_.spread_floor) {
      // Fully collapsed: rescaling cannot recover a zero perturbation, so
      // re-seed the members around the mean from a cycle-keyed substream
      // (serial draw — bitwise invariant to thread count).
      rng::Rng rg = rng_spread_->substream(static_cast<std::uint64_t>(cycle));
      const auto mu = target.mean();
      for (std::size_t m = 0; m < target.size(); ++m) {
        auto row = target.member(m);
        for (std::size_t i = 0; i < row.size(); ++i)
          row[i] = mu[i] + cfg_.spread_floor * rg.gaussian();
      }
    } else {
      rescale(cfg_.spread_floor / sp);
    }
  } else if (cfg_.spread_ceiling > 0.0 && sp > cfg_.spread_ceiling) {
    TURBDA_TRACE_INSTANT("status.spread_recovery");
    ++cm.spread_recoveries;
    cm.degraded = true;
    rescale(cfg_.spread_ceiling / sp);
  }
}

void RealtimeRunner::maybe_checkpoint(int completed_cycle,
                                      std::vector<StreamCycleMetrics>& metrics) {
  if (cfg_.checkpoint_path.empty() || cfg_.checkpoint_every <= 0) return;
  const int next = completed_cycle + 1;
  if (next >= cfg_.cycles) return;  // nothing left to resume
  if (next % cfg_.checkpoint_every != 0) return;

  TURBDA_SPAN("runner.checkpoint");
  const auto t_ckpt = Clock::now();
  const auto record_elapsed = [&] {
    if (!metrics.empty() && metrics.back().cycle == completed_cycle)
      metrics.back().checkpoint_ms = ms_since(t_ckpt);
    if (!checkpoint_status_.ok()) TURBDA_TRACE_INSTANT("status.checkpoint_failed");
  };

  const std::size_t d = forecast_model_.dim();
  CheckpointData data;
  data.seed = cfg_.seed;
  data.n_members = cfg_.n_members;
  data.dim = d;
  data.cycles = cfg_.cycles;
  data.schedule = static_cast<std::uint8_t>(cfg_.schedule);
  data.overlap_depth = cfg_.overlap_depth;
  data.next_cycle = next;
  rng_modelerr_->save_state(data.rng_modelerr);
  const double* ep = ens_->data().data();
  data.ensemble.assign(ep, ep + cfg_.n_members * d);
  if (have_increment_) {
    data.have_increment = 1;
    const double* pp = buf_prior_->data().data();
    const double* qp = buf_post_->data().data();
    data.buf_prior.assign(pp, pp + cfg_.n_members * d);
    data.buf_post.assign(qp, qp + cfg_.n_members * d);
  }
  if (cfg_.schedule == Schedule::Overlapped && cfg_.overlap_depth > 1) {
    // Completing (joining + merging — NOT applying) every in-flight slot is
    // numerics-neutral: the uninterrupted run produces the exact same staged
    // buffers, just later. It makes the serialized ring deterministic.
    std::vector<StagedSlot*> pend;
    for (auto& s : ring_)
      if (s.pending) pend.push_back(&s);
    std::sort(pend.begin(), pend.end(),
              [](const StagedSlot* a, const StagedSlot* b) { return a->cycle < b->cycle; });
    for (StagedSlot* s : pend) {
      complete_slot(*s, metrics);
      CheckpointData::StagedSlotData sd;
      sd.cycle = s->cycle;
      const double* pp = s->prior->data().data();
      const double* qp = s->post->data().data();
      sd.prior.assign(pp, pp + cfg_.n_members * d);
      sd.post.assign(qp, qp + cfg_.n_members * d);
      data.ring.push_back(std::move(sd));
    }
  }
  data.applied = applied_;
  if (!stream_.save_state(data.stream_state)) {
    checkpoint_status_ =
        Status(StatusCode::kUnsupported, "stream does not support checkpointing");
    record_elapsed();
    return;
  }
  if (filter_ != nullptr && !filter_->save_state(data.filter_state)) {
    checkpoint_status_ =
        Status(StatusCode::kUnsupported, "filter does not support checkpointing");
    record_elapsed();
    return;
  }
  data.metrics = metrics;
  // A failed snapshot write must never take down the service it protects:
  // record the Status and keep cycling.
  checkpoint_status_ = save_checkpoint(cfg_.checkpoint_path, data);
  record_elapsed();
}

std::vector<StreamCycleMetrics> RealtimeRunner::run(std::span<const double> base,
                                                    const da::Ensemble* initial_ensemble) {
  const std::size_t d = forecast_model_.dim();
  TURBDA_REQUIRE(base.size() == d, "initial state size mismatch");

  rng::Rng root(cfg_.seed);
  rng::Rng rng_init = root.substream(0);
  rng_modelerr_ = root.substream(2);
  rng_spread_ = root.substream(4);
  applied_.assign(static_cast<std::size_t>(cfg_.cycles), 0);
  buf_prior_.reset();
  buf_post_.reset();
  have_increment_ = false;
  ring_.clear();
  checkpoint_status_ = Status::Ok();

  ens_.emplace(cfg_.n_members, d);
  if (initial_ensemble != nullptr) {
    TURBDA_REQUIRE(initial_ensemble->size() == cfg_.n_members && initial_ensemble->dim() == d,
                   "initial ensemble shape mismatch");
    ens_->data() = initial_ensemble->data();
  } else {
    ens_->init_perturbed(base, cfg_.init_spread, rng_init);
  }

  // Let the filter pre-build network-dependent caches (e.g. LETKF's
  // local-observation plan) before the deadline clock starts ticking; the
  // stream's network is known up front and stays fixed across cycles.
  if (filter_ != nullptr) filter_->prepare(stream_.h(), stream_.r());

  std::vector<StreamCycleMetrics> metrics;
  if (cfg_.schedule == Schedule::Serial)
    run_serial(0, metrics);
  else if (cfg_.overlap_depth == 1)
    run_overlapped(0, metrics);
  else
    run_overlapped_deep(0, metrics);
  return metrics;
}

Status RealtimeRunner::resume(const std::string& path,
                              std::vector<StreamCycleMetrics>& metrics_out) {
  CheckpointData data;
  const Status s = load_checkpoint(path, data);
  if (!s.ok()) return s;

  const std::size_t d = forecast_model_.dim();
  if (data.seed != cfg_.seed || data.n_members != cfg_.n_members || data.dim != d ||
      data.cycles != cfg_.cycles || data.schedule != static_cast<std::uint8_t>(cfg_.schedule) ||
      data.overlap_depth != cfg_.overlap_depth)
    return Status(StatusCode::kInvalidArgument,
                  "checkpoint was written under a different configuration");
  if (data.next_cycle <= 0 || data.next_cycle >= cfg_.cycles)
    return Status(StatusCode::kCorruptData, "checkpoint cycle index out of range");
  if (data.applied.size() != static_cast<std::size_t>(cfg_.cycles))
    return Status(StatusCode::kCorruptData, "checkpoint duplicate-guard size mismatch");
  const bool deep = cfg_.schedule == Schedule::Overlapped && cfg_.overlap_depth > 1;
  if (!deep && !data.ring.empty())
    return Status(StatusCode::kCorruptData,
                  "checkpoint staged slots present but schedule is not deep-overlapped");
  for (const auto& sd : data.ring) {
    if (sd.cycle < 0 || sd.cycle >= data.next_cycle ||
        data.next_cycle - sd.cycle > cfg_.overlap_depth)
      return Status(StatusCode::kCorruptData, "checkpoint staged slot cycle out of range");
  }
  if (!stream_.restore_state(data.stream_state))
    return Status(StatusCode::kCorruptData, "stream state in checkpoint is malformed");
  if (filter_ != nullptr && !filter_->restore_state(data.filter_state))
    return Status(StatusCode::kCorruptData, "filter state in checkpoint is malformed");

  rng::Rng root(cfg_.seed);
  rng_modelerr_ = root.substream(2);
  rng_spread_ = root.substream(4);
  if (!data.rng_modelerr.empty() && !rng_modelerr_->load_state(data.rng_modelerr))
    return Status(StatusCode::kCorruptData, "RNG state in checkpoint is malformed");
  checkpoint_status_ = Status::Ok();

  ens_.emplace(cfg_.n_members, d);
  std::copy(data.ensemble.begin(), data.ensemble.end(), ens_->data().data());
  applied_ = std::move(data.applied);
  have_increment_ = data.have_increment != 0;
  buf_prior_.reset();
  buf_post_.reset();
  if (have_increment_) {
    buf_prior_.emplace(cfg_.n_members, d);
    buf_post_.emplace(cfg_.n_members, d);
    std::copy(data.buf_prior.begin(), data.buf_prior.end(), buf_prior_->data().data());
    std::copy(data.buf_post.begin(), data.buf_post.end(), buf_post_->data().data());
  }
  ring_.clear();
  if (deep) {
    // Restored slots were completed (joined + metrics merged) before the
    // save; they only await their application cycle.
    ring_.resize(static_cast<std::size_t>(cfg_.overlap_depth));
    for (const auto& sd : data.ring) {
      StagedSlot& s = ring_[static_cast<std::size_t>(sd.cycle % cfg_.overlap_depth)];
      if (s.pending)
        return Status(StatusCode::kCorruptData, "checkpoint staged slots collide");
      s.cycle = sd.cycle;
      s.pending = true;
      s.completed = true;
      s.prior.emplace(cfg_.n_members, d);
      s.post.emplace(cfg_.n_members, d);
      std::copy(sd.prior.begin(), sd.prior.end(), s.prior->data().data());
      std::copy(sd.post.begin(), sd.post.end(), s.post->data().data());
    }
  }

  if (filter_ != nullptr) filter_->prepare(stream_.h(), stream_.r());

  metrics_out = std::move(data.metrics);
  if (cfg_.schedule == Schedule::Serial)
    run_serial(data.next_cycle, metrics_out);
  else if (cfg_.overlap_depth == 1)
    run_overlapped(data.next_cycle, metrics_out);
  else
    run_overlapped_deep(data.next_cycle, metrics_out);
  return Status::Ok();
}

void RealtimeRunner::run_serial(int start_cycle, std::vector<StreamCycleMetrics>& metrics) {
  metrics.reserve(static_cast<std::size_t>(cfg_.cycles));

  for (int k = start_cycle; k < cfg_.cycles; ++k) {
    TURBDA_SPAN("runner.cycle");
    const PoolIdleProbe idle_probe;
    const auto t_cycle = Clock::now();
    const auto ing0 = stream_.ingest_counters();
    StreamCycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg_.window_hours;

    {
      TURBDA_SPAN("stream.produce");
      stream_.produce(k);
    }

    const auto t_fcst = Clock::now();
    {
      TURBDA_SPAN("runner.forecast");
      forecast_members(k);
    }
    cm.forecast_ms = ms_since(t_fcst);

    const auto truth = stream_.truth(k);
    TURBDA_REQUIRE(!truth.empty(), "stream did not retain the truth state for this cycle");
    cm.rmse_prior = rmse_vs_truth(*ens_, truth);
    cm.spread_prior = ens_->mean_spread();

    if (filter_ != nullptr) {
      CollectResult col = collect_batches(k);
      cm.deadline_miss = !col.own_on_time;
      cm.obs_arrival_cycles = col.own_arrival;
      cm.batches_discarded = col.discarded;
      if (cm.deadline_miss) TURBDA_TRACE_INSTANT("status.deadline_miss");
      assimilate_batches(*ens_, col.apply, k, cm);
    } else {
      discard_unconsumed(k);
    }
    cm.rmse_post = rmse_vs_truth(*ens_, truth);
    cm.spread_post = ens_->mean_spread();
    cm.cycle_ms = ms_since(t_cycle);
    cm.pool_idle_frac = idle_probe.idle_frac();
    fill_ingest_delta(cm, ing0, stream_.ingest_counters());
    metrics.push_back(cm);

    if (hook_) {
      const auto mean = ens_->mean();
      hook_(k, mean);
    }
    maybe_checkpoint(k, metrics);
    record_cycle_telemetry(metrics.back());
  }
}

void RealtimeRunner::run_overlapped(int start_cycle, std::vector<StreamCycleMetrics>& metrics) {
  auto& pool = parallel::global_pool();
  metrics.reserve(static_cast<std::size_t>(cfg_.cycles));

  // Prologue: nothing to overlap with yet — produce and forecast window 0.
  // A resumed run restored the pipeline mid-flight (ensemble already
  // forecast through start_cycle, stream produced through start_cycle) and
  // skips it.
  if (start_cycle == 0) {
    stream_.produce(0);
    forecast_members(0);
    have_increment_ = false;
  }

  // Double buffer: the analysis for cycle k runs on a copy while the
  // ensemble itself forecasts ahead; the increment lands one cycle later.
  // Allocated once on first use, reused (assignment keeps capacity) so the
  // hot loop stays allocation-free after warm-up.
  for (int k = start_cycle; k < cfg_.cycles; ++k) {
    TURBDA_SPAN("runner.cycle");
    const PoolIdleProbe idle_probe;
    const auto t_cycle = Clock::now();
    const auto ing0 = stream_.ingest_counters();
    StreamCycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg_.window_hours;

    const auto truth = stream_.truth(k);
    TURBDA_REQUIRE(!truth.empty(), "stream did not retain the truth state for this cycle");
    cm.rmse_prior = rmse_vs_truth(*ens_, truth);
    cm.spread_prior = ens_->mean_spread();

    // Apply the lagged increment from cycle k-1's analysis.
    if (have_increment_) {
      for (std::size_t m = 0; m < cfg_.n_members; ++m) {
        auto row = ens_->member(m);
        const auto post = buf_post_->member(m);
        const auto prior = buf_prior_->member(m);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += post[i] - prior[i];
      }
      have_increment_ = false;
    }

    CollectResult col;
    if (filter_ != nullptr) {
      col = collect_batches(k);
      cm.deadline_miss = !col.own_on_time;
      cm.obs_arrival_cycles = col.own_arrival;
      cm.batches_discarded = col.discarded;
      if (cm.deadline_miss) TURBDA_TRACE_INSTANT("status.deadline_miss");
    } else {
      discard_unconsumed(k);
    }

    const bool last = (k + 1 == cfg_.cycles);
    if (last) {
      // Drain synchronously so the final ensemble reflects every batch.
      assimilate_batches(*ens_, col.apply, k, cm);
      cm.rmse_post = rmse_vs_truth(*ens_, truth);
      cm.spread_post = ens_->mean_spread();
      cm.cycle_ms = ms_since(t_cycle);
      cm.pool_idle_frac = idle_probe.idle_frac();
      fill_ingest_delta(cm, ing0, stream_.ingest_counters());
      metrics.push_back(cm);
      record_cycle_telemetry(metrics.back());
      if (hook_) {
        const auto mean = ens_->mean();
        hook_(k, mean);
      }
      break;
    }

    // Post metrics reflect the state after this cycle's update step (the
    // lagged increment); this cycle's own analysis lands at k+1.
    cm.rmse_post = rmse_vs_truth(*ens_, truth);
    cm.spread_post = ens_->mean_spread();
    if (hook_) {
      const auto mean = ens_->mean();
      hook_(k, mean);
    }

    // Stage this cycle's analysis on the side buffer...
    const bool staged = !col.apply.empty();
    if (staged) {
      if (buf_prior_.has_value()) {
        buf_prior_->data() = ens_->data();
        buf_post_->data() = ens_->data();
      } else {
        buf_prior_.emplace(*ens_);
        buf_post_.emplace(*ens_);
      }
    }

    // ...then fan the next window out over the pool: the stream's producer
    // and the member forecasts for k+1 run concurrently with the analysis
    // below. Per-member work is partition-independent, so this stays
    // bitwise identical for any pool size.
    const int k1 = k + 1;
    const std::vector<double> shared_err = draw_shared_error(k1);

    const auto t_fcst = Clock::now();
    std::vector<std::future<void>> tasks;
    tasks.push_back(pool.submit([this, k1] {
      TURBDA_SPAN("stream.produce");
      stream_.produce(k1);
    }));
    std::size_t par = std::max<std::size_t>(pool.size(), 1);
    if (cfg_.n_forecast_threads != 0) par = std::min(par, cfg_.n_forecast_threads);
    if (!forecast_model_.concurrent_safe()) par = 1;
    par = std::min(par, cfg_.n_members);
    const std::size_t chunk = (cfg_.n_members + par - 1) / par;
    for (std::size_t b = 0; b < cfg_.n_members; b += chunk) {
      const std::size_t e = std::min(b + chunk, cfg_.n_members);
      tasks.push_back(pool.submit(
          [this, k1, b, e, &shared_err] { forecast_block(k1, b, e, shared_err); }));
    }

    // Inline analysis on the caller thread: its internal parallel_for
    // interleaves with the forecast tasks on the shared pool.
    std::exception_ptr err;
    if (staged) {
      try {
        assimilate_batches(*buf_post_, col.apply, k, cm);
      } catch (...) {
        err = std::current_exception();
      }
    }
    for (auto& t : tasks) {
      try {
        t.get();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    have_increment_ = staged;

    cm.forecast_ms = ms_since(t_fcst);
    cm.cycle_ms = ms_since(t_cycle);
    cm.pool_idle_frac = idle_probe.idle_frac();
    fill_ingest_delta(cm, ing0, stream_.ingest_counters());
    metrics.push_back(cm);
    maybe_checkpoint(k, metrics);
    record_cycle_telemetry(metrics.back());
  }
}

void RealtimeRunner::complete_slot(StagedSlot& slot, std::vector<StreamCycleMetrics>& metrics) {
  if (!slot.pending || slot.completed) return;
  if (slot.task.valid()) slot.task.get();
  slot.completed = true;
  if (slot.error) {
    std::exception_ptr e = slot.error;
    slot.error = nullptr;
    std::rethrow_exception(e);
  }
  slot.batches.clear();
  if (slot.row >= metrics.size()) return;  // restored slot: row merged pre-save
  StreamCycleMetrics& row = metrics[slot.row];
  const StreamCycleMetrics& an = slot.an;
  row.batches_assimilated += an.batches_assimilated;
  row.batches_rejected += an.batches_rejected;
  row.obs_rejected += an.obs_rejected;
  row.late_applied += an.late_applied;
  row.analysis_failures += an.analysis_failures;
  row.solver_fallbacks += an.solver_fallbacks;
  row.spread_recoveries += an.spread_recoveries;
  row.max_batch_age = std::max(row.max_batch_age, an.max_batch_age);
  row.max_r_scale = std::max(row.max_r_scale, an.max_r_scale);
  row.degraded = row.degraded || an.degraded;
  row.analysis_ms += an.analysis_ms;
  row.qc_ms += an.qc_ms;
  record_cycle_telemetry(row);
}

void RealtimeRunner::run_overlapped_deep(int start_cycle,
                                         std::vector<StreamCycleMetrics>& metrics) {
  auto& pool = parallel::global_pool();
  const int K = cfg_.overlap_depth;
  if (ring_.size() != static_cast<std::size_t>(K))
    ring_.resize(static_cast<std::size_t>(K));
  metrics.reserve(static_cast<std::size_t>(cfg_.cycles));

  // The increment staged at cycle c lands at cycle c+K (members so
  // checkpoint/resume can replay a half-applied pipeline exactly).
  const auto apply_slot = [this](StagedSlot& slot) {
    for (std::size_t m = 0; m < cfg_.n_members; ++m) {
      auto row = ens_->member(m);
      const auto post = slot.post->member(m);
      const auto prior = slot.prior->member(m);
      for (std::size_t i = 0; i < row.size(); ++i) row[i] += post[i] - prior[i];
    }
    slot.pending = false;
  };

  // Prologue: nothing to overlap with yet (resume restored the pipeline
  // mid-flight and skips it).
  if (start_cycle == 0) {
    stream_.produce(0);
    forecast_members(0);
  }

  for (int k = start_cycle; k < cfg_.cycles; ++k) {
    TURBDA_SPAN("runner.cycle");
    const PoolIdleProbe idle_probe;
    const auto t_cycle = Clock::now();
    const auto ing0 = stream_.ingest_counters();
    StreamCycleMetrics cm;
    cm.cycle = k;
    cm.time_hours = (k + 1) * cfg_.window_hours;

    const auto truth = stream_.truth(k);
    TURBDA_REQUIRE(!truth.empty(), "stream did not retain the truth state for this cycle");
    cm.rmse_prior = rmse_vs_truth(*ens_, truth);
    cm.spread_prior = ens_->mean_spread();

    // Apply the increment staged K cycles ago — its ring slot is the one
    // this cycle is about to reuse.
    {
      StagedSlot& due = ring_[static_cast<std::size_t>(k % K)];
      if (due.pending && due.cycle == k - K) {
        complete_slot(due, metrics);
        apply_slot(due);
      }
    }

    CollectResult col;
    if (filter_ != nullptr) {
      col = collect_batches(k);
      cm.deadline_miss = !col.own_on_time;
      cm.obs_arrival_cycles = col.own_arrival;
      cm.batches_discarded = col.discarded;
      if (cm.deadline_miss) TURBDA_TRACE_INSTANT("status.deadline_miss");
    } else {
      discard_unconsumed(k);
    }

    const bool last = (k + 1 == cfg_.cycles);
    if (last) {
      // Drain the ring in staged order, then this cycle's own batches, so
      // the final ensemble reflects every admitted batch.
      for (int c = std::max(k - K + 1, 0); c < k; ++c) {
        StagedSlot& s = ring_[static_cast<std::size_t>(c % K)];
        if (s.pending && s.cycle == c) {
          complete_slot(s, metrics);
          apply_slot(s);
        }
      }
      assimilate_batches(*ens_, col.apply, k, cm);
      cm.rmse_post = rmse_vs_truth(*ens_, truth);
      cm.spread_post = ens_->mean_spread();
      cm.cycle_ms = ms_since(t_cycle);
      cm.pool_idle_frac = idle_probe.idle_frac();
      fill_ingest_delta(cm, ing0, stream_.ingest_counters());
      metrics.push_back(cm);
      record_cycle_telemetry(metrics.back());
      if (hook_) {
        const auto mean = ens_->mean();
        hook_(k, mean);
      }
      break;
    }

    // Post metrics reflect the state after this cycle's update step (the
    // lag-K increment); this cycle's own analysis lands at k+K.
    cm.rmse_post = rmse_vs_truth(*ens_, truth);
    cm.spread_post = ens_->mean_spread();
    if (hook_) {
      const auto mean = ens_->mean();
      hook_(k, mean);
    }

    // Analysis barrier: the shared filter and the duplicate ledger are not
    // reentrant, so the previous cycle's staged task must retire before a
    // new one is submitted. The ring still pays off — the *application* of
    // each increment (and therefore straggler admission) is deferred K
    // cycles, not one.
    if (k > 0) {
      StagedSlot& prev = ring_[static_cast<std::size_t>((k - 1) % K)];
      if (prev.pending && prev.cycle == k - 1) complete_slot(prev, metrics);
    }

    StagedSlot& slot = ring_[static_cast<std::size_t>(k % K)];
    const bool staged = !col.apply.empty();
    if (staged) {
      TURBDA_REQUIRE(!slot.pending, "deep-overlap ring slot still occupied");
      slot.cycle = k;
      slot.pending = true;
      slot.completed = false;
      slot.error = nullptr;
      slot.row = static_cast<std::size_t>(-1);  // bound at push below
      slot.an = StreamCycleMetrics{};
      slot.an.cycle = k;
      if (slot.prior.has_value()) {
        slot.prior->data() = ens_->data();
        slot.post->data() = ens_->data();
      } else {
        slot.prior.emplace(*ens_);
        slot.post.emplace(*ens_);
      }
      slot.batches = std::move(col.apply);
    }

    // Fan the next window out over the pool: producer + member forecasts for
    // k+1 run concurrently with the staged analysis below. Per-member work
    // is partition-independent, so this stays bitwise identical for any
    // pool size.
    const int k1 = k + 1;
    const std::vector<double> shared_err = draw_shared_error(k1);

    const auto t_fcst = Clock::now();
    std::vector<std::future<void>> tasks;
    tasks.push_back(pool.submit([this, k1] {
      TURBDA_SPAN("stream.produce");
      stream_.produce(k1);
    }));
    std::size_t par = std::max<std::size_t>(pool.size(), 1);
    if (cfg_.n_forecast_threads != 0) par = std::min(par, cfg_.n_forecast_threads);
    if (!forecast_model_.concurrent_safe()) par = 1;
    par = std::min(par, cfg_.n_members);
    const std::size_t chunk = (cfg_.n_members + par - 1) / par;
    for (std::size_t b = 0; b < cfg_.n_members; b += chunk) {
      const std::size_t e = std::min(b + chunk, cfg_.n_members);
      tasks.push_back(pool.submit(
          [this, k1, b, e, &shared_err] { forecast_block(k1, b, e, shared_err); }));
    }
    if (staged) {
      // The analysis failure mode is captured, not thrown: the task outlives
      // this cycle body, so complete_slot() rethrows at the join.
      slot.task = pool.submit([this, &slot, k] {
        TURBDA_SPAN("runner.staged_analysis");
        try {
          assimilate_batches(*slot.post, slot.batches, k, slot.an);
        } catch (...) {
          slot.error = std::current_exception();
        }
      });
    }

    // Join only the forecast fan-out; the staged analysis keeps running
    // into the next window (that deferral is the point of the ring).
    std::exception_ptr err;
    for (auto& t : tasks) {
      try {
        t.get();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);

    cm.forecast_ms = ms_since(t_fcst);
    cm.cycle_ms = ms_since(t_cycle);
    cm.pool_idle_frac = idle_probe.idle_frac();
    fill_ingest_delta(cm, ing0, stream_.ingest_counters());
    metrics.push_back(cm);
    if (staged) slot.row = metrics.size() - 1;
    maybe_checkpoint(k, metrics);
    // A staged cycle's telemetry is recorded at complete_slot(), once the
    // analysis-side record has been merged into its row.
    if (!staged) record_cycle_telemetry(metrics.back());
  }
}

std::vector<std::string> stream_metrics_columns() {
  return {"cycle", "time_hours", "rmse_prior", "rmse_post", "spread_prior",
          "spread_post", "batches_assimilated", "batches_discarded",
          "max_batch_age", "deadline_miss", "obs_arrival_cycles",
          "obs_rejected", "batches_rejected", "max_r_scale",
          "analysis_failures", "solver_fallbacks", "spread_recoveries",
          "degraded", "forecast_ms", "analysis_ms", "qc_ms", "checkpoint_ms",
          "cycle_ms", "pool_idle_frac", "late_applied", "ingest_reconnects",
          "ingest_frames_corrupt", "ingest_frames_resynced",
          "ingest_queue_drops"};
}

std::vector<double> stream_metrics_row(const StreamCycleMetrics& m) {
  return {static_cast<double>(m.cycle), m.time_hours, m.rmse_prior, m.rmse_post,
          m.spread_prior, m.spread_post, static_cast<double>(m.batches_assimilated),
          static_cast<double>(m.batches_discarded), static_cast<double>(m.max_batch_age),
          m.deadline_miss ? 1.0 : 0.0, m.obs_arrival_cycles,
          static_cast<double>(m.obs_rejected), static_cast<double>(m.batches_rejected),
          m.max_r_scale, static_cast<double>(m.analysis_failures),
          static_cast<double>(m.solver_fallbacks), static_cast<double>(m.spread_recoveries),
          m.degraded ? 1.0 : 0.0, m.forecast_ms, m.analysis_ms, m.qc_ms, m.checkpoint_ms,
          m.cycle_ms, m.pool_idle_frac, static_cast<double>(m.late_applied),
          static_cast<double>(m.ingest_reconnects),
          static_cast<double>(m.ingest_frames_corrupt),
          static_cast<double>(m.ingest_frames_resynced),
          static_cast<double>(m.ingest_queue_drops)};
}

void write_stream_metrics_csv(const std::string& path,
                              std::span<const StreamCycleMetrics> metrics) {
  const std::vector<std::string> cols = stream_metrics_columns();
  io::CsvWriter csv(path, cols,
                    "stream_metrics_schema=" + std::to_string(kStreamMetricsSchemaVersion));
  for (const auto& m : metrics) csv.row(stream_metrics_row(m));
}

double mean_rmse_post(std::span<const StreamCycleMetrics> metrics, int from_cycle) {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& m : metrics)
    if (m.cycle >= from_cycle) {
      s += m.rmse_post;
      ++n;
    }
  return n ? s / static_cast<double>(n) : 0.0;
}

int count_deadline_misses(std::span<const StreamCycleMetrics> metrics) {
  int n = 0;
  for (const auto& m : metrics) n += m.deadline_miss ? 1 : 0;
  return n;
}

}  // namespace turbda::stream
