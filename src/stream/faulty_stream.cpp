#include "stream/faulty_stream.hpp"

#include <algorithm>
#include <limits>

#include "common/bytes.hpp"
#include "common/check.hpp"

namespace turbda::stream {

FaultyStream::FaultyStream(FaultConfig cfg, ObservationStream& inner)
    : cfg_(cfg), inner_(inner), rng_fault_(rng::Rng(cfg.seed).substream(7)) {
  const auto is_prob = [](double v) { return v >= 0.0 && v <= 1.0; };
  TURBDA_REQUIRE(is_prob(cfg_.nan_prob) && is_prob(cfg_.inf_prob) && is_prob(cfg_.outlier_prob) &&
                     is_prob(cfg_.stuck_prob) && is_prob(cfg_.duplicate_prob) &&
                     is_prob(cfg_.truncate_prob),
                 "FaultyStream: probabilities must be in [0,1]");
  TURBDA_REQUIRE(cfg_.nan_prob + cfg_.inf_prob + cfg_.outlier_prob <= 1.0,
                 "FaultyStream: per-element probabilities must sum to <= 1");
  TURBDA_REQUIRE(cfg_.stuck_cycles >= 1, "FaultyStream: stuck_cycles must be >= 1");
  TURBDA_REQUIRE(cfg_.duplicate_delay_cycles >= 0.0,
                 "FaultyStream: duplicate delay must be >= 0");
}

void FaultyStream::produce(int cycle) {
  inner_.produce(cycle);
  // Disabled decorator: leave the batches where they are so collect() and
  // checkpointing stay bitwise identical to the undecorated stream.
  if (disabled()) return;
  // Take over every batch the inner stream has queued (arrival stamps
  // intact, however far in the future) so corruption happens exactly once,
  // in produce order, regardless of when the driver polls collect().
  std::vector<ObsBatch> fresh;
  inner_.collect(std::numeric_limits<double>::infinity(), fresh);
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ObsBatch> extra;
  for (ObsBatch& b : fresh) {
    corrupt(b, extra);
    pending_.push_back(std::move(b));
  }
  for (ObsBatch& b : extra) pending_.push_back(std::move(b));
}

void FaultyStream::corrupt(ObsBatch& b, std::vector<ObsBatch>& extra) {
  // One substream per window: the fault pattern of batch k is a pure
  // function of (seed, config, k).
  rng::Rng rg = rng_fault_.substream(static_cast<std::uint64_t>(b.cycle));
  const std::size_t p = b.y.size();

  // Frozen channels emit their held value; each produce ticks them down.
  for (auto it = stuck_.begin(); it != stuck_.end();) {
    const auto ch = static_cast<std::size_t>(it->first);
    if (ch < p) {
      b.y[ch] = it->second.second;
      ++counters_.stuck_values;
    }
    if (--it->second.first <= 0)
      it = stuck_.erase(it);
    else
      ++it;
  }
  if (cfg_.stuck_prob > 0.0 && p > 0 && rg.bernoulli(cfg_.stuck_prob)) {
    const auto ch = static_cast<std::int32_t>(rg.uniform_int(p));
    stuck_[ch] = {cfg_.stuck_cycles, b.y[static_cast<std::size_t>(ch)]};
  }

  if (cfg_.nan_prob + cfg_.inf_prob + cfg_.outlier_prob > 0.0) {
    for (std::size_t i = 0; i < p; ++i) {
      const double u = rg.uniform();
      if (u < cfg_.nan_prob) {
        b.y[i] = std::numeric_limits<double>::quiet_NaN();
        ++counters_.nan_values;
      } else if (u < cfg_.nan_prob + cfg_.inf_prob) {
        b.y[i] = (i % 2 == 0) ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
        ++counters_.inf_values;
      } else if (u < cfg_.nan_prob + cfg_.inf_prob + cfg_.outlier_prob) {
        b.y[i] = (b.y[i] + 1.0) * cfg_.outlier_scale;
        ++counters_.outlier_values;
      }
    }
  }

  // The duplicate is a second transmission of the (corrupted) batch; it is
  // taken before truncation, so a truncated original can still be recovered
  // from its delayed copy — and the driver's duplicate guard must reject the
  // copy when the original was applied.
  if (cfg_.duplicate_prob > 0.0 && rg.bernoulli(cfg_.duplicate_prob)) {
    ObsBatch copy = b;
    copy.arrival_cycles += cfg_.duplicate_delay_cycles;
    extra.push_back(std::move(copy));
    ++counters_.batches_duplicated;
  }
  if (cfg_.truncate_prob > 0.0 && p > 1 && rg.bernoulli(cfg_.truncate_prob)) {
    b.y.resize(p / 2);
    ++counters_.batches_truncated;
  }
}

void FaultyStream::collect(double now_cycles, std::vector<ObsBatch>& out) {
  if (disabled()) {
    inner_.collect(now_cycles, out);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t first = out.size();
  auto it = std::stable_partition(pending_.begin(), pending_.end(),
                                  [&](const ObsBatch& b) { return b.arrival_cycles > now_cycles; });
  for (auto p = it; p != pending_.end(); ++p) out.push_back(std::move(*p));
  pending_.erase(it, pending_.end());
  std::sort(out.begin() + static_cast<long>(first), out.end(),
            [](const ObsBatch& a, const ObsBatch& b) { return a.cycle < b.cycle; });
}

FaultCounters FaultyStream::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

bool FaultyStream::save_state(std::vector<std::uint8_t>& out) const {
  if (disabled()) return inner_.save_state(out);
  std::vector<std::uint8_t> inner_blob;
  if (!inner_.save_state(inner_blob)) return false;
  std::lock_guard<std::mutex> lk(mu_);
  bytes::put_u64(out, pending_.size());
  for (const ObsBatch& b : pending_) {
    bytes::put_i32(out, b.cycle);
    bytes::put_f64(out, b.valid_cycles);
    bytes::put_f64(out, b.arrival_cycles);
    bytes::put_f64_span(out, b.y);
  }
  bytes::put_u64(out, stuck_.size());
  for (const auto& [ch, st] : stuck_) {
    bytes::put_i32(out, ch);
    bytes::put_i32(out, st.first);
    bytes::put_f64(out, st.second);
  }
  bytes::put_u64(out, counters_.nan_values);
  bytes::put_u64(out, counters_.inf_values);
  bytes::put_u64(out, counters_.outlier_values);
  bytes::put_u64(out, counters_.stuck_values);
  bytes::put_u64(out, counters_.batches_duplicated);
  bytes::put_u64(out, counters_.batches_truncated);
  bytes::put_blob(out, inner_blob);
  return true;
}

bool FaultyStream::restore_state(std::span<const std::uint8_t> in) {
  if (disabled()) return inner_.restore_state(in);
  bytes::Reader rd(in);
  const std::uint64_t n_pending = rd.u64();
  std::vector<ObsBatch> pending;
  for (std::uint64_t i = 0; i < n_pending && rd.ok(); ++i) {
    ObsBatch b;
    b.cycle = rd.i32();
    b.valid_cycles = rd.f64();
    b.arrival_cycles = rd.f64();
    // Truncated batches legitimately carry fewer than obs_dim values.
    if (!rd.f64_vec(b.y) || b.y.size() > inner_.obs_dim()) return false;
    pending.push_back(std::move(b));
  }
  const std::uint64_t n_stuck = rd.u64();
  std::map<std::int32_t, std::pair<std::int32_t, double>> stuck;
  for (std::uint64_t i = 0; i < n_stuck && rd.ok(); ++i) {
    const std::int32_t ch = rd.i32();
    const std::int32_t rem = rd.i32();
    const double val = rd.f64();
    if (rem < 1) return false;
    stuck[ch] = {rem, val};
  }
  FaultCounters ctr;
  ctr.nan_values = rd.u64();
  ctr.inf_values = rd.u64();
  ctr.outlier_values = rd.u64();
  ctr.stuck_values = rd.u64();
  ctr.batches_duplicated = rd.u64();
  ctr.batches_truncated = rd.u64();
  std::vector<std::uint8_t> inner_blob;
  if (!rd.blob(inner_blob) || !rd.done()) return false;
  if (!inner_.restore_state(inner_blob)) return false;
  std::lock_guard<std::mutex> lk(mu_);
  pending_ = std::move(pending);
  stuck_ = std::move(stuck);
  counters_ = ctr;
  return true;
}

}  // namespace turbda::stream
