// Deterministic synthetic observation stream: a nature run observed through
// an ObservationOperator, replayed with a configurable delivery schedule
// (constant latency + uniform jitter, Bernoulli dropouts, hence possibly
// out-of-order arrivals).
//
// Two independent Philox substream families keep the scenario space
// reproducible:
//   - observation *values* come from substream(1) of the seed, exactly the
//     stream the offline OSSE used — so latency/jitter/dropout knobs change
//     only the delivery schedule, never the observed numbers;
//   - the delivery schedule (jitter draw + dropout coin) comes from
//     substream(3), keyed per cycle, so it is identical for any thread
//     count and any collection order.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "models/forecast_model.hpp"
#include "rng/rng.hpp"
#include "stream/observation_stream.hpp"

namespace turbda::stream {

struct SyntheticStreamConfig {
  /// Must match the cycling driver's seed to reproduce the offline OSSE
  /// bitwise (the stream consumes substreams 1 and 3 of it; the driver
  /// consumes 0 and 2).
  std::uint64_t seed = 42;
  /// Mean delivery latency after the window closes, in window units.
  double latency_cycles = 0.0;
  /// Uniform jitter added to the latency: U[0, jitter_cycles). Large jitter
  /// relative to the window makes batches arrive out of order.
  double jitter_cycles = 0.0;
  /// Probability that a window's batch is lost entirely.
  double dropout_prob = 0.0;
  /// How many recent truth states to retain for truth()/verification.
  int truth_buffer = 8;
};

class SyntheticStream final : public ObservationStream {
 public:
  /// `truth_model` is advanced one window per produce() call starting from
  /// `truth0`. With the Overlapped schedule, produce() runs concurrently
  /// with ensemble forecasts: the truth model must then be a separate
  /// instance from the forecast model (the usual OSSE setup).
  SyntheticStream(SyntheticStreamConfig cfg, models::ForecastModel& truth_model,
                  const da::ObservationOperator& h, const da::DiagonalR& r,
                  std::span<const double> truth0);

  [[nodiscard]] std::size_t obs_dim() const override { return h_.obs_dim(); }
  [[nodiscard]] const da::ObservationOperator& h() const override { return h_; }
  [[nodiscard]] const da::DiagonalR& r() const override { return r_; }

  void produce(int cycle) override;
  void collect(double now_cycles, std::vector<ObsBatch>& out) override;
  [[nodiscard]] std::span<const double> truth(int cycle) const override;

  /// Truth state after the most recent produce() (the OSSE's final_truth).
  [[nodiscard]] const std::vector<double>& latest_truth() const { return truth_; }

  [[nodiscard]] int batches_produced() const { return produced_; }
  [[nodiscard]] int batches_dropped() const { return dropped_; }

  /// Checkpointing: the RNG substream families are consumed statelessly (one
  /// derived stream per cycle), so the mutable state is just the truth
  /// state, the undelivered queue, the truth ring and the counters. The
  /// caller must reconstruct the stream with the same config / model /
  /// operator before restoring.
  bool save_state(std::vector<std::uint8_t>& out) const override;
  bool restore_state(std::span<const std::uint8_t> in) override;

 private:
  SyntheticStreamConfig cfg_;
  models::ForecastModel& truth_model_;
  const da::ObservationOperator& h_;
  const da::DiagonalR& r_;
  rng::Rng rng_obs_;       ///< substream(1): observation noise, keyed per cycle
  rng::Rng rng_delivery_;  ///< substream(3): delivery schedule, keyed per cycle
  std::vector<double> truth_;

  mutable std::mutex mu_;  ///< guards pending_, ring_ and the counters
  std::vector<ObsBatch> pending_;
  std::deque<std::pair<int, std::vector<double>>> ring_;  ///< (cycle, truth copy)
  int produced_ = 0;
  int dropped_ = 0;
};

}  // namespace turbda::stream
