// Deadline-aware cycling driver: turns the fast analysis (PR 1) and forecast
// (PR 2) halves into a real-time assimilation service driven by an
// ObservationStream.
//
// Two schedules:
//
//  - Serial: forecast -> (wait for obs) -> analyze, one cycle at a time.
//    With a zero-latency in-order stream this reproduces the offline OSSE
//    loop bitwise (OsseRunner is exactly this configuration).
//
//  - Overlapped: a double-buffered pipeline. After the member forecasts for
//    cycle k finish, the ensemble is copied into a side buffer, the analysis
//    for cycle k runs on that buffer while the next window's member
//    forecasts (and the stream's producer) run on the ThreadPool, and the
//    resulting analysis increment is applied to the ensemble when the cycle
//    k+1 forecast lands (a one-window incremental-update lag, the price of
//    hiding analysis + delivery latency behind forecast compute). The last
//    cycle drains synchronously so the final ensemble reflects every batch.
//
//    With overlap_depth K > 1 the double buffer generalizes to a ring of K
//    staged-analysis slots: the analysis staged at cycle k is applied at
//    cycle k+K, so the admission window for stragglers stretches by K-1
//    cycles — a batch that would be dropped under K=1 is instead applied as
//    a K-window-late increment with forced age-dependent R inflation
//    (counted as late_applied). Analyses themselves stay serialized (the
//    shared filter is not reentrant); deeper overlap trades increment
//    freshness for tolerance of extreme delivery latency. All admission
//    decisions stay in virtual time, so any K is bitwise reproducible
//    across thread counts.
//
// Deadline semantics: the batch observing window k is "on time" if its
// virtual arrival stamp is <= (k + 1) + deadline_slack_cycles; an on-time
// batch is assimilated at its own cycle. A late batch falls back to
// forecast-only for that cycle and, when catch_up is enabled, is assimilated
// at the first later cycle whose analysis point its arrival precedes —
// unless it is staler than max_stale_cycles, in which case it is discarded.
// All of these decisions compare virtual stamps, so degraded-delivery runs
// are bitwise repeatable across thread counts; wall-clock is only measured
// (per-cycle latency metrics) or, when wall_ms_per_cycle > 0, used to
// *emulate* delivery delay by sleeping — which never changes the numbers.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "da/ensemble.hpp"
#include "da/filter.hpp"
#include "da/quality_control.hpp"
#include "models/forecast_model.hpp"
#include "models/model_error.hpp"
#include "stream/observation_stream.hpp"

namespace turbda::stream {

enum class Schedule {
  Serial,     ///< forecast and analysis strictly in sequence (OSSE-equivalent)
  Overlapped  ///< analysis overlapped with the next forecast (1-cycle lag)
};

struct RealtimeConfig {
  std::size_t n_members = 20;
  int cycles = 60;
  double window_hours = 12.0;  ///< time axis for the metrics
  double init_spread = 1.0;    ///< initial member perturbation stddev
  std::uint64_t seed = 42;     ///< must match the stream's seed for OSSE replay
  bool inject_model_error = false;
  bool model_error_shared = true;
  /// Worker threads for the member forecast loop (0 = all pool workers,
  /// 1 = serial); bitwise identical for any value.
  std::size_t n_forecast_threads = 0;

  Schedule schedule = Schedule::Serial;
  /// Overlapped pipeline depth K (ignored by Serial). 1 = the classic double
  /// buffer (analysis applied one cycle later). K >= 2 stages analyses in a
  /// ring of K slots applied K cycles later, stretching straggler admission
  /// by K-1 cycles (see the schedule notes above).
  int overlap_depth = 1;
  /// R-inflation slope for deep-late batches (age beyond max_stale_cycles)
  /// admitted through the overlap ring: r_scale >= 1 + age * late_r_inflation,
  /// clamped by qc.max_r_scale. Applied even when QC is off — deep-late
  /// information is never taken at face value.
  double late_r_inflation = 0.5;
  /// Grace period beyond the window end (in window units) before a batch
  /// counts as late. 0 admits exactly the zero-latency batches.
  double deadline_slack_cycles = 0.0;
  /// Assimilate stragglers that arrive after their deadline at a later cycle.
  bool catch_up = true;
  /// Discard batches older than this many cycles at their analysis point.
  int max_stale_cycles = 2;
  /// When > 0, emulate delivery delay in wall-clock: before analyzing, the
  /// driver sleeps (arrival - valid) * wall_ms_per_cycle milliseconds past
  /// the forecast, as a real sensor link would impose. Purely a timing
  /// emulation — results are bitwise identical with it on or off.
  double wall_ms_per_cycle = 0.0;

  // ---- Fault tolerance ----------------------------------------------------

  /// Pre-analysis observation QC (finite / climatological-range /
  /// background-departure gates + age-dependent R inflation). When
  /// qc.stale_r_inflation > 0, the hard staleness discard above is replaced
  /// by inflation: every catch-up batch is assimilated with its R scaled by
  /// age, however old.
  da::QcConfig qc;

  /// When an analysis fails recoverably (e.g. non-convergent transform), keep
  /// the forecast for that cycle and record the degradation instead of
  /// aborting the run. false restores the old throw-on-failure behavior.
  bool degrade_on_failure = true;

  /// Ensemble-spread watchdog, checked after each cycle's update (0 = off).
  /// Below the floor the perturbations are re-inflated (collapse recovery,
  /// with a deterministic re-seeding when the ensemble is fully degenerate);
  /// above the ceiling they are contracted (divergence recovery).
  double spread_floor = 0.0;
  double spread_ceiling = 0.0;

  /// Snapshot the run to this file every checkpoint_every cycles (both must
  /// be set). A failed write never aborts the run — see
  /// RealtimeRunner::last_checkpoint_status().
  std::string checkpoint_path;
  int checkpoint_every = 0;
};

/// Per-cycle record: the OSSE accuracy metrics plus delivery/deadline and
/// wall-clock pipeline telemetry.
struct StreamCycleMetrics {
  int cycle = 0;
  double time_hours = 0.0;
  double rmse_prior = 0.0;
  double rmse_post = 0.0;
  double spread_prior = 0.0;
  double spread_post = 0.0;
  // Delivery telemetry (virtual time, deterministic).
  int batches_assimilated = 0;  ///< analyze() calls issued at this cycle
  int batches_discarded = 0;    ///< stragglers dropped by the staleness policy
  int max_batch_age = 0;        ///< oldest applied batch, in cycles
  bool deadline_miss = false;   ///< this window's own batch was late or lost
  double obs_arrival_cycles = -1.0;  ///< arrival stamp of this window's batch
  // Fault-tolerance telemetry (virtual time, deterministic).
  int obs_rejected = 0;        ///< observations excised by QC this cycle
  int batches_rejected = 0;    ///< whole batches refused (duplicate/truncated)
  double max_r_scale = 1.0;    ///< largest age-dependent R inflation applied
  int analysis_failures = 0;   ///< try_analyze calls that returned non-ok
  int solver_fallbacks = 0;    ///< state columns that kept the forecast
  int spread_recoveries = 0;   ///< spread-watchdog interventions
  bool degraded = false;       ///< any degradation happened this cycle
  // Live-ingestion telemetry (schema v3). late_applied is deterministic
  // (virtual-time admission); the ingest_* columns are per-cycle deltas of
  // the stream's transport counters — zero for in-process streams,
  // wall-clock-dependent for live transports.
  int late_applied = 0;           ///< batches applied with age > max_stale_cycles
  int ingest_reconnects = 0;      ///< transport reconnects during this cycle
  int ingest_frames_corrupt = 0;  ///< wire frames refused during this cycle
  int ingest_frames_resynced = 0; ///< frames recovered after garbage skips
  int ingest_queue_drops = 0;     ///< ingest-queue backpressure evictions
  // Wall-clock telemetry (measured, machine-dependent).
  double forecast_ms = 0.0;
  double analysis_ms = 0.0;
  double qc_ms = 0.0;          ///< quality-control time inside the analysis
  double checkpoint_ms = 0.0;  ///< periodic snapshot write after this cycle
  double cycle_ms = 0.0;
  /// Fraction of pool-worker capacity left idle over this cycle's wall time
  /// (1 - Δbusy / (wall * workers)); -1 when no pool workers exist.
  double pool_idle_frac = -1.0;
};

/// Version of the StreamCycleMetrics CSV schema; bumped whenever columns are
/// added, removed or reordered. Written as a `# stream_metrics_schema=N`
/// comment line ahead of the CSV header.
// v3: live-ingestion columns (late_applied, ingest_*).
inline constexpr int kStreamMetricsSchemaVersion = 3;

/// Column names for write_stream_metrics_csv, in the exact emitted order —
/// the single source of truth the writer and the round-trip tests share.
[[nodiscard]] std::vector<std::string> stream_metrics_columns();
/// One CSV row (same order as stream_metrics_columns()).
[[nodiscard]] std::vector<double> stream_metrics_row(const StreamCycleMetrics& m);

/// Hook invoked after each cycle's update with (cycle, posterior mean).
using CycleHook = std::function<void(int, std::span<const double>)>;

class RealtimeRunner {
 public:
  /// `filter == nullptr` runs forecast-only (free run). `model_error` is
  /// required when cfg.inject_model_error is set.
  RealtimeRunner(RealtimeConfig cfg, ObservationStream& stream,
                 models::ForecastModel& forecast_model, da::Filter* filter,
                 const models::ModelErrorProcess* model_error = nullptr);

  /// Runs cfg.cycles windows. The ensemble starts as `base` + N(0,
  /// init_spread^2) member perturbations unless `initial_ensemble` is given.
  std::vector<StreamCycleMetrics> run(std::span<const double> base,
                                      const da::Ensemble* initial_ensemble = nullptr);

  /// Resumes a run from a snapshot written by this configuration (validated
  /// against the checkpoint's config echo; a mismatched or corrupt snapshot
  /// returns a non-ok Status without touching any state). On success,
  /// `metrics_out` holds the full per-cycle record — restored rows followed
  /// by the freshly-run remainder — and the continuation is bitwise
  /// identical to the uninterrupted run for any thread count. The stream
  /// must be freshly constructed (same config as the original run); its
  /// state is restored from the snapshot.
  Status resume(const std::string& path, std::vector<StreamCycleMetrics>& metrics_out);

  void set_post_analysis_hook(CycleHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] const da::Ensemble& ensemble() const;

  /// Outcome of the most recent periodic snapshot write (ok before any).
  [[nodiscard]] const Status& last_checkpoint_status() const { return checkpoint_status_; }

 private:
  struct CollectResult;

  /// Window-`cycle` shared model-error realization (empty unless configured).
  [[nodiscard]] std::vector<double> draw_shared_error(int cycle) const;
  /// Forecast + model error for the contiguous member block [b, e) — the
  /// single definition both schedules use, so the bitwise
  /// serial==overlapped invariant cannot drift apart. Each worker thread
  /// owns one block: the forecast goes through the model's batched entry
  /// point (ForecastModel::forecast_batch, bitwise identical to the
  /// member-sequential loop), so batching-capable models amortize
  /// transforms across the block.
  void forecast_block(int cycle, std::size_t b, std::size_t e,
                      const std::vector<double>& shared_err);
  void forecast_members(int cycle);
  CollectResult collect_batches(int cycle);
  /// Free-run path: batches are produced but never analyzed — drain them so
  /// the stream's pending queue stays bounded.
  void discard_unconsumed(int cycle);
  void emulate_delivery_delay(const std::vector<ObsBatch>& batches, int cycle) const;

  /// QC + duplicate/truncation guards + try_analyze + degradation + spread
  /// watchdog for one cycle's batches, applied to `target` (the live
  /// ensemble in Serial, the staged analysis buffer in Overlapped). The one
  /// definition both schedules share, so fault handling cannot drift apart.
  void assimilate_batches(da::Ensemble& target, std::vector<ObsBatch>& batches, int cycle,
                          StreamCycleMetrics& cm);
  void apply_spread_guard(da::Ensemble& target, int cycle, StreamCycleMetrics& cm);
  /// Periodic snapshot at the end of cycle body `completed_cycle`; records
  /// its wall time on metrics.back().checkpoint_ms when a write happens.
  void maybe_checkpoint(int completed_cycle, std::vector<StreamCycleMetrics>& metrics);

  void run_serial(int start_cycle, std::vector<StreamCycleMetrics>& metrics);
  void run_overlapped(int start_cycle, std::vector<StreamCycleMetrics>& metrics);

  /// One deep-overlap ring entry: the analysis for `cycle`, staged on its
  /// own prior/post buffer pair and applied overlap_depth cycles later.
  struct StagedSlot {
    int cycle = -1;
    bool pending = false;    ///< staged; increment not yet applied
    bool completed = false;  ///< analysis task joined, metrics merged
    /// Metrics row the analysis-side record merges into (SIZE_MAX for slots
    /// restored from a checkpoint — their rows were merged before the save).
    std::size_t row = static_cast<std::size_t>(-1);
    std::optional<da::Ensemble> prior, post;
    std::vector<ObsBatch> batches;
    StreamCycleMetrics an;  ///< metrics the analysis task accumulates
    std::future<void> task;
    std::exception_ptr error;
  };
  /// Joins the slot's analysis task, rethrows its failure, merges the
  /// analysis-side metrics into the owning row and records that row's
  /// telemetry. Idempotent once completed.
  void complete_slot(StagedSlot& slot, std::vector<StreamCycleMetrics>& metrics);
  void run_overlapped_deep(int start_cycle, std::vector<StreamCycleMetrics>& metrics);

  RealtimeConfig cfg_;
  ObservationStream& stream_;
  models::ForecastModel& forecast_model_;
  da::Filter* filter_;
  const models::ModelErrorProcess* model_error_;
  CycleHook hook_;
  std::optional<da::Ensemble> ens_;
  std::optional<rng::Rng> rng_modelerr_;  ///< valid during run()
  std::optional<rng::Rng> rng_spread_;    ///< spread-guard re-seeding noise
  /// Duplicate guard: applied_[k] set once window k's batch is assimilated.
  std::vector<std::uint8_t> applied_;
  /// Overlapped double buffer (members so checkpoint/resume can reach them).
  std::optional<da::Ensemble> buf_prior_, buf_post_;
  bool have_increment_ = false;
  /// Deep-overlap staged-analysis ring, overlap_depth slots (K > 1 only);
  /// slot index for the analysis staged at cycle c is c % overlap_depth.
  std::vector<StagedSlot> ring_;
  Status checkpoint_status_;
};

/// Writes the per-cycle records as CSV (one row per cycle).
void write_stream_metrics_csv(const std::string& path,
                              std::span<const StreamCycleMetrics> metrics);

/// Scenario summary helpers for benches/examples.
[[nodiscard]] double mean_rmse_post(std::span<const StreamCycleMetrics> metrics,
                                    int from_cycle = 0);
[[nodiscard]] int count_deadline_misses(std::span<const StreamCycleMetrics> metrics);

}  // namespace turbda::stream
