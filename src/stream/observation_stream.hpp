// Real-time observation delivery — the subsystem behind the paper's
// "real-time data assimilation" claim.
//
// The offline OSSE assumed observations are available instantly and for
// free at every window. Operational streams are nothing like that: batches
// arrive with transmission/processing latency, jitter makes them land out of
// order, and entire windows drop out. This interface separates *what* is
// observed (the ObservationOperator + error model) from *when* it is
// delivered, so the cycling driver can schedule analyses around delivery
// instead of assuming it.
//
// Timing is expressed in virtual "cycle units" (1.0 = one assimilation
// window): every delivery decision the driver makes compares virtual arrival
// stamps against virtual deadlines, which keeps degraded-delivery scenarios
// bitwise reproducible across machines and thread counts. Wall-clock enters
// only as *measured* latency metrics (and optional delay emulation in the
// driver), never as an input to control flow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "da/observation.hpp"

namespace turbda::stream {

/// One delivery unit: the observation vector for a single assimilation
/// window, stamped with when it becomes available to the consumer.
struct ObsBatch {
  int cycle = 0;               ///< window index this batch observes
  double valid_cycles = 0.0;   ///< validity time in window units (cycle + 1)
  double arrival_cycles = 0.0; ///< virtual delivery time in window units
  std::vector<double> y;       ///< observed values (h(truth) + noise)
};

/// A source of observation batches, one per assimilation window.
///
/// Contract: the driver calls `produce(k)` exactly once per cycle, in
/// ascending order, to advance the producer (e.g. the synthetic truth run)
/// through window k; it then polls `collect(now)` at analysis points to
/// receive every batch whose arrival stamp has passed. `produce` may be
/// invoked from a worker thread concurrently with `collect`/`truth` calls
/// from the driver thread; implementations must synchronize their batch
/// queue accordingly.
class ObservationStream {
 public:
  virtual ~ObservationStream() = default;

  [[nodiscard]] virtual std::size_t obs_dim() const = 0;

  /// Forward operator that generated the batches (what the filter inverts).
  [[nodiscard]] virtual const da::ObservationOperator& h() const = 0;

  /// Observation-error model the batches were perturbed with.
  [[nodiscard]] virtual const da::DiagonalR& r() const = 0;

  /// Generate the batch observing window `cycle`, advancing any internal
  /// producer state. Called once per cycle, in order.
  virtual void produce(int cycle) = 0;

  /// Move every not-yet-collected batch with arrival_cycles <= now_cycles
  /// into `out`, ordered by batch cycle (stragglers first). Dropped batches
  /// never appear.
  virtual void collect(double now_cycles, std::vector<ObsBatch>& out) = 0;

  /// Replay/synthetic streams expose the truth state valid at the end of
  /// window `cycle` for verification metrics; live streams return an empty
  /// span. Only a bounded number of recent cycles is retained, and the
  /// returned view is valid only while the stream still retains that cycle:
  /// callers must consume it before issuing the produce() calls that could
  /// retire it (SyntheticStream keeps the last `truth_buffer` cycles, so a
  /// driver that stays within truth_buffer - 1 cycles of the producer is
  /// safe; do not hold the span across an unbounded producer run-ahead).
  [[nodiscard]] virtual std::span<const double> truth(int /*cycle*/) const { return {}; }

  /// Checkpoint support: append the stream's mutable state (producer
  /// counters, undelivered batches, truth buffer) to `out` so a restored
  /// stream replays the exact same deliveries. Returns false when the stream
  /// cannot be checkpointed — the checkpoint writer then refuses rather than
  /// silently snapshotting half a pipeline.
  ///
  /// The base-class default is that refusal: it returns false and MUST NOT
  /// append anything to `out` (it is not a "save nothing successfully"
  /// no-op). Implementations that do checkpoint append their bytes and
  /// return true; decorators forward to the wrapped stream so the blob is
  /// bitwise identical to the bare stream's whenever the decorator itself
  /// holds no state.
  virtual bool save_state(std::vector<std::uint8_t>& out) const {
    (void)out;
    return false;
  }

  /// Restores state written by save_state(); `in` holds exactly the bytes
  /// this stream appended. Returns false on malformed input, leaving the
  /// stream unspecified (callers abandon it on failure). The base-class
  /// default refuses every input (matching the save_state default) — it
  /// does not treat an empty blob as success.
  virtual bool restore_state(std::span<const std::uint8_t> in) {
    (void)in;
    return false;
  }

  /// Live-transport health counters, all zero for in-process streams.
  /// Decorators forward; the cycling driver diffs successive snapshots into
  /// per-cycle metrics and the `turbda_ingest_*` registry counters.
  struct IngestCounters {
    std::uint64_t reconnects = 0;       ///< transport re-establishments after a drop
    std::uint64_t frames_corrupt = 0;   ///< wire frames refused (CRC/header damage)
    std::uint64_t frames_resynced = 0;  ///< frames recovered after skipping garbage
    std::uint64_t queue_drops = 0;      ///< batches evicted by queue backpressure
  };
  [[nodiscard]] virtual IngestCounters ingest_counters() const { return {}; }
};

}  // namespace turbda::stream
