// Versioned, integrity-checked snapshots of a cycling run.
//
// A real-time assimilation service must survive being killed: the snapshot
// captures everything the RealtimeRunner needs to continue *bitwise
// identically* — the ensemble, the cycle index, the overlapped schedule's
// staged analysis buffers, the duplicate-batch guard, the stream's
// undelivered queue and truth ring, the filter's cross-cycle state and the
// metrics rows already produced. The file format is little-endian with a
// magic tag, a format version and a CRC-32 trailer over the payload, so a
// truncated, corrupted or future-format file is *refused* with a precise
// Status instead of silently resuming from garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "stream/realtime_runner.hpp"

namespace turbda::stream {

inline constexpr std::uint32_t kCheckpointMagic = 0x4B434454u;  // "TDCK" LE
// v2: StreamCycleMetrics grew qc_ms / checkpoint_ms / pool_idle_frac.
// v3: overlap_depth config echo + deep-overlap staged-analysis ring;
//     StreamCycleMetrics grew late_applied / ingest_* columns.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Everything a snapshot holds. The config echo fields let resume() refuse a
/// checkpoint taken under a different setup instead of diverging silently.
struct CheckpointData {
  // Config echo.
  std::uint64_t seed = 0;
  std::uint64_t n_members = 0;
  std::uint64_t dim = 0;
  std::int32_t cycles = 0;
  std::uint8_t schedule = 0;      ///< static_cast<uint8_t>(Schedule)
  std::int32_t overlap_depth = 1; ///< Overlapped pipeline depth K

  std::int32_t next_cycle = 0;  ///< first cycle the resumed run executes

  std::vector<std::uint8_t> rng_modelerr;  ///< Rng::kStateBytes
  std::vector<double> ensemble;            ///< n_members * dim, member-major

  // Overlapped schedule: staged analysis buffers (empty unless
  // have_increment).
  std::uint8_t have_increment = 0;
  std::vector<double> buf_prior, buf_post;

  /// Deep-overlap (K > 1) ring: analyses staged but not yet applied at the
  /// snapshot point, completed (joined) before serialization so the bytes
  /// are deterministic. Empty for Serial and K == 1 runs.
  struct StagedSlotData {
    std::int32_t cycle = -1;
    std::vector<double> prior, post;
  };
  std::vector<StagedSlotData> ring;

  std::vector<std::uint8_t> applied;  ///< per-window duplicate guard, size cycles
  std::vector<std::uint8_t> stream_state;
  std::vector<std::uint8_t> filter_state;
  std::vector<StreamCycleMetrics> metrics;  ///< rows already produced
};

/// CRC-32 (IEEE, reflected 0xEDB88320) over `data` — exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Atomically-ordered write: serialize, then emit header + payload + CRC in
/// one stream. Returns kIoError when the file cannot be written.
[[nodiscard]] Status save_checkpoint(const std::string& path, const CheckpointData& data);

/// Validates magic, version, length and CRC before decoding; on any failure
/// returns a non-ok Status and leaves `data` unspecified.
[[nodiscard]] Status load_checkpoint(const std::string& path, CheckpointData& data);

}  // namespace turbda::stream
