// Localhost TCP transport for live observation ingestion.
//
// SocketStream is the consumer side and comes in two modes:
//   - listen: bind/listen on 127.0.0.1:port and treat each accepted feeder
//     connection as the link; when the feeder dies, re-accepting the next
//     connection IS the reconnect (the consumer owns the well-known port, so
//     a restarted feeder finds it again — the usual operational topology);
//   - connect: dial a remote listener (useful when the feeder is the
//     long-lived side).
//
// SocketWriter is the feeder side: a dialing client with send_all(). Both
// ends are plain blocking POSIX sockets driven through poll() timeouts so
// every wait is bounded and the caller's backoff policy stays in charge.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "stream/ingest/ingest_source.hpp"

namespace turbda::stream::ingest {

struct SocketStreamConfig {
  std::uint16_t port = 0;
  bool listen = true;                ///< listen-and-accept vs dial-out
  std::string host = "127.0.0.1";    ///< dial target (connect mode)
  int connect_timeout_ms = 250;      ///< one accept/dial wait slice
};

class SocketStream final : public IngestSource {
 public:
  explicit SocketStream(SocketStreamConfig cfg);
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  Status connect() override;
  Status read_some(std::span<std::uint8_t> buf, int timeout_ms, std::size_t& got) override;
  void close() override;
  [[nodiscard]] const char* kind() const override { return "socket"; }

  /// Bound port (listen mode; resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

 private:
  Status ensure_listener();
  void close_conn();

  SocketStreamConfig cfg_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::uint16_t bound_port_ = 0;
};

/// Feeder-side client: dial the consumer, push framed bytes.
class SocketWriter {
 public:
  SocketWriter() = default;
  ~SocketWriter();

  SocketWriter(const SocketWriter&) = delete;
  SocketWriter& operator=(const SocketWriter&) = delete;

  /// Dials host:port; kUnavailable while the listener is absent.
  Status connect(const std::string& host, std::uint16_t port, int timeout_ms = 250);
  /// Writes the whole span; kUnavailable when the peer went away mid-send.
  Status send_all(std::span<const std::uint8_t> data);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace turbda::stream::ingest
