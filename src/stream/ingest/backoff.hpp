// Capped exponential reconnect backoff with deterministic jitter.
//
// Every transport retry loop (socket reconnect, listener re-accept, tail
// reopen) shares this policy: delay_n = min(base * multiplier^n, cap),
// stretched by a jitter factor drawn from a Philox substream keyed on the
// attempt index. Keying on the attempt makes the whole schedule a pure
// function of (seed, config, attempt) — two instances with the same seed
// produce bit-identical delay sequences, which is what lets tests assert the
// exact schedule instead of sleeping and hoping. Jitter spreads simultaneous
// reconnect storms without sacrificing that reproducibility.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "rng/rng.hpp"

namespace turbda::stream::ingest {

struct BackoffConfig {
  double base_ms = 50.0;    ///< first-retry delay
  double cap_ms = 2000.0;   ///< exponential growth saturates here
  double multiplier = 2.0;  ///< per-attempt growth factor
  /// Jitter spread: each delay is scaled by U[1 - jitter_frac, 1 + jitter_frac).
  double jitter_frac = 0.2;
  std::uint64_t seed = 42;  ///< jitter substream seed
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig cfg) : cfg_(cfg), rng_(rng::Rng(cfg.seed).substream(11)) {
    TURBDA_REQUIRE(cfg_.base_ms > 0.0 && cfg_.cap_ms >= cfg_.base_ms && cfg_.multiplier >= 1.0,
                   "Backoff: need base_ms > 0, cap_ms >= base_ms, multiplier >= 1");
    TURBDA_REQUIRE(cfg_.jitter_frac >= 0.0 && cfg_.jitter_frac < 1.0,
                   "Backoff: jitter_frac must be in [0, 1)");
  }

  /// Delay before the next retry, advancing the attempt counter.
  double next_delay_ms() { return delay_for_attempt(attempt_++); }

  /// The delay attempt `i` would use — the schedule as a pure function, for
  /// tests and for logging without consuming the counter.
  [[nodiscard]] double delay_for_attempt(std::uint64_t i) const {
    double d = cfg_.base_ms;
    for (std::uint64_t k = 0; k < i && d < cfg_.cap_ms; ++k) d *= cfg_.multiplier;
    d = std::min(d, cfg_.cap_ms);
    if (cfg_.jitter_frac > 0.0) {
      rng::Rng rg = rng_.substream(i);
      d *= 1.0 + cfg_.jitter_frac * (2.0 * rg.uniform() - 1.0);
    }
    return d;
  }

  /// Call on success: the next failure starts the schedule over.
  void reset() { attempt_ = 0; }

  [[nodiscard]] std::uint64_t attempts() const { return attempt_; }

 private:
  BackoffConfig cfg_;
  rng::Rng rng_;  ///< substream parent; jitter keyed per attempt
  std::uint64_t attempt_ = 0;
};

}  // namespace turbda::stream::ingest
