// Live ObservationStream: frames from an IngestSource transport, decoded,
// deduplicated and staged for the cycling driver.
//
// This is the piece that makes the RealtimeRunner's wall-clock path
// load-bearing: produce(k) *pumps the transport* — bounded reads, staleness
// detection, reconnection with capped exponential backoff — until the feeder
// has published window k (or the produce timeout proves the feed dead), and
// collect() then gates the queued batches on their *virtual* arrival stamps
// exactly like the in-process streams do. Physical delivery decides what is
// in the queue; virtual stamps decide what each analysis admits. Over a
// finalized replay file the two coincide and a run is bitwise
// reproducible; over a live socket the transport's timing genuinely gates
// delivery, which is the point.
//
// Duplicate policy: a reconnecting feeder replays windows it already sent
// (it cannot know what survived the crash). A full-shape batch for a window
// already handed to the driver is dropped here (the delivered-batch
// ledger); short/truncated batches always pass through so a later complete
// retransmission can still recover the window — the driver's own
// applied-batch guard stays the final arbiter.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "stream/ingest/backoff.hpp"
#include "stream/ingest/ingest_queue.hpp"
#include "stream/ingest/ingest_source.hpp"
#include "stream/ingest/wire.hpp"
#include "stream/observation_stream.hpp"

namespace turbda::stream::ingest {

struct IngestStreamConfig {
  std::size_t queue_capacity = 256;
  int read_timeout_ms = 20;        ///< one transport poll slice
  int produce_timeout_ms = 30000;  ///< bound on produce()'s wait for a window
  /// No bytes (data or heartbeat) for this long while waiting => the link is
  /// presumed dead and torn down for a backoff reconnect.
  int stale_after_ms = 2000;
  /// OSSE feeds interleave truth frames; produce(k) then also waits for the
  /// window-k truth so verification metrics stay available. Operational
  /// feeds set false and truth() returns an empty span.
  bool expect_truth = true;
  int truth_buffer = 16;  ///< truth ring depth (cycles)
  BackoffConfig backoff;
};

/// Cumulative transport/decoder health (wire stats + stream-level events).
struct IngestStats {
  WireStats wire;
  std::uint64_t reconnects = 0;          ///< successful re-establishments
  std::uint64_t heartbeat_timeouts = 0;  ///< staleness teardowns
  std::uint64_t duplicates_dropped = 0;  ///< ledger-refused retransmissions
  std::uint64_t queue_drops = 0;         ///< backpressure evictions
  std::int32_t high_water_cycle = -1;    ///< latest window the feeder published
};

class IngestStream final : public ObservationStream {
 public:
  IngestStream(IngestStreamConfig cfg, std::unique_ptr<IngestSource> source,
               const da::ObservationOperator& h, const da::DiagonalR& r);

  [[nodiscard]] std::size_t obs_dim() const override { return h_.obs_dim(); }
  [[nodiscard]] const da::ObservationOperator& h() const override { return h_; }
  [[nodiscard]] const da::DiagonalR& r() const override { return r_; }

  void produce(int cycle) override;
  void collect(double now_cycles, std::vector<ObsBatch>& out) override;
  [[nodiscard]] std::span<const double> truth(int cycle) const override;

  /// Checkpointable: the ledger, queue, truth ring and counters round-trip.
  /// The transport itself does not (a restored run reconnects/re-reads and
  /// relies on the ledger to dedup the replay), so resumed-run counter
  /// totals can exceed the uninterrupted run's — deterministically so for a
  /// given replay file.
  bool save_state(std::vector<std::uint8_t>& out) const override;
  bool restore_state(std::span<const std::uint8_t> in) override;

  [[nodiscard]] IngestCounters ingest_counters() const override;
  [[nodiscard]] IngestStats stats() const;

 private:
  /// True once window `cycle` is fully published on our side of the wire.
  [[nodiscard]] bool window_complete(int cycle) const;
  /// Decode everything buffered, routing frames to queue/ring/high-water.
  void drain_decoder();
  /// Reestablish the transport with capped exponential backoff; gives up
  /// (throwing) only when the produce timeout budget runs out.
  void reconnect(double budget_ms);

  IngestStreamConfig cfg_;
  std::unique_ptr<IngestSource> source_;
  const da::ObservationOperator& h_;
  const da::DiagonalR& r_;
  FrameDecoder decoder_;
  IngestQueue queue_;
  Backoff backoff_;
  bool connected_once_ = false;

  mutable std::mutex mu_;  ///< guards ring_, delivered_, stats below
  std::deque<std::pair<std::int32_t, std::vector<double>>> ring_;  ///< (cycle, truth)
  std::vector<std::uint8_t> delivered_;  ///< per-window delivered-batch ledger
  std::int32_t high_water_ = -1;
  std::uint64_t reconnects_ = 0;
  std::uint64_t heartbeat_timeouts_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  WireStats wire_base_;  ///< persisted totals from before a restore
};

}  // namespace turbda::stream::ingest
