#include "stream/ingest/wire.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "stream/checkpoint.hpp"  // crc32

namespace turbda::stream::ingest {

namespace {

void frame(std::vector<std::uint8_t>& payload, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + payload.size() + kWireHeaderBytes + 4);
  bytes::put_u32(out, kWireMagic);
  bytes::put_u32(out, kWireVersion);
  bytes::put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  bytes::put_u32(out, crc32(payload));
}

}  // namespace

void encode_obs_frame(const ObsBatch& b, std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(FrameKind::kObs));
  bytes::put_i32(payload, b.cycle);
  bytes::put_f64(payload, b.valid_cycles);
  bytes::put_f64(payload, b.arrival_cycles);
  bytes::put_f64_span(payload, b.y);
  frame(payload, out);
}

void encode_truth_frame(std::int32_t cycle, std::span<const double> state,
                        std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(FrameKind::kTruth));
  bytes::put_i32(payload, cycle);
  bytes::put_f64_span(payload, state);
  frame(payload, out);
}

void encode_heartbeat_frame(std::int32_t high_water_cycle, std::uint64_t seq,
                            std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(FrameKind::kHeartbeat));
  bytes::put_i32(payload, high_water_cycle);
  bytes::put_u64(payload, seq);
  frame(payload, out);
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact lazily: only when the dead prefix dominates the buffer, so
  // steady-state decoding does not memmove per frame.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameDecoder::discard(std::size_t n) {
  pos_ += n;
  stats_.bytes_discarded += n;
  resyncing_ = true;
}

bool FrameDecoder::next(DecodedFrame& out) {
  for (;;) {
    // Hunt for the magic boundary, shedding garbage byte-by-byte.
    while (buf_.size() - pos_ >= 4) {
      const std::uint32_t m = static_cast<std::uint32_t>(buf_[pos_]) |
                              static_cast<std::uint32_t>(buf_[pos_ + 1]) << 8 |
                              static_cast<std::uint32_t>(buf_[pos_ + 2]) << 16 |
                              static_cast<std::uint32_t>(buf_[pos_ + 3]) << 24;
      if (m == kWireMagic) break;
      discard(1);
    }
    if (buf_.size() - pos_ < kWireHeaderBytes) return false;

    bytes::Reader hdr(std::span<const std::uint8_t>(buf_).subspan(pos_, kWireHeaderBytes));
    (void)hdr.u32();  // magic, verified above
    const std::uint32_t version = hdr.u32();
    const std::uint64_t len = hdr.u64();
    if (version != kWireVersion) {
      last_error_ = Status(StatusCode::kUnsupported,
                           "wire frame has format version " + std::to_string(version));
      ++stats_.frames_corrupt;
      discard(1);  // step past this magic byte and rescan
      continue;
    }
    if (len > kMaxFramePayloadBytes) {
      // An implausible length is almost certainly a corrupted header; waiting
      // for 2^60 bytes would wedge the stream, so treat it as damage.
      last_error_ = Status(StatusCode::kCorruptData, "wire frame length implausible");
      ++stats_.frames_corrupt;
      discard(1);
      continue;
    }
    const std::size_t total = kWireHeaderBytes + static_cast<std::size_t>(len) + 4;
    if (buf_.size() - pos_ < total) return false;  // torn frame: wait for more bytes

    const auto payload = std::span<const std::uint8_t>(buf_).subspan(
        pos_ + kWireHeaderBytes, static_cast<std::size_t>(len));
    bytes::Reader tr(std::span<const std::uint8_t>(buf_).subspan(
        pos_ + kWireHeaderBytes + static_cast<std::size_t>(len), 4));
    if (crc32(payload) != tr.u32()) {
      last_error_ = Status(StatusCode::kCorruptData, "wire frame CRC mismatch");
      ++stats_.frames_corrupt;
      discard(1);  // the real next frame may start inside this span — rescan
      continue;
    }

    bytes::Reader pr(payload);
    const auto kind = static_cast<FrameKind>(pr.u8());
    out = DecodedFrame{};
    out.kind = kind;
    bool parsed = false;
    switch (kind) {
      case FrameKind::kObs:
        out.obs.cycle = pr.i32();
        out.obs.valid_cycles = pr.f64();
        out.obs.arrival_cycles = pr.f64();
        parsed = pr.f64_vec(out.obs.y) && pr.done();
        break;
      case FrameKind::kTruth:
        out.cycle = pr.i32();
        parsed = pr.f64_vec(out.state) && pr.done();
        break;
      case FrameKind::kHeartbeat:
        out.cycle = pr.i32();
        out.seq = pr.u64();
        parsed = pr.done();
        break;
      default:
        break;
    }
    if (!parsed) {
      // CRC-valid but structurally malformed (unknown kind / bad layout):
      // an incompatible producer, not line noise — still skipped safely.
      last_error_ = Status(StatusCode::kCorruptData, "wire frame payload malformed");
      ++stats_.frames_corrupt;
      discard(1);
      continue;
    }

    pos_ += total;
    ++stats_.frames_decoded;
    if (kind == FrameKind::kHeartbeat) ++stats_.heartbeats;
    if (resyncing_) {
      ++stats_.frames_resynced;
      resyncing_ = false;
    }
    return true;
  }
}

}  // namespace turbda::stream::ingest
