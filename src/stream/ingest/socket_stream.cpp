#include "stream/ingest/socket_stream.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace turbda::stream::ingest {

namespace {

Status errno_status(StatusCode code, const char* what) {
  return Status(code, std::string(what) + ": " + std::strerror(errno));
}

/// Bounded wait for readability/writability; 1 ready, 0 timeout, -1 error.
int poll_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace

SocketStream::SocketStream(SocketStreamConfig cfg) : cfg_(cfg) {}

SocketStream::~SocketStream() { close(); }

Status SocketStream::ensure_listener() {
  if (listen_fd_ >= 0) return Status::Ok();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kFailed, "socket()");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = errno_status(StatusCode::kFailed, "bind()");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 1) != 0) {
    const Status s = errno_status(StatusCode::kFailed, "listen()");
    ::close(fd);
    return s;
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0)
    bound_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return Status::Ok();
}

Status SocketStream::connect() {
  if (conn_fd_ >= 0) return Status::Ok();
  if (cfg_.listen) {
    const Status s = ensure_listener();
    if (!s.ok()) return s;
    const int r = poll_fd(listen_fd_, POLLIN, cfg_.connect_timeout_ms);
    if (r < 0) return errno_status(StatusCode::kFailed, "poll(listen)");
    if (r == 0) return Status(StatusCode::kUnavailable, "no feeder connection pending");
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return errno_status(StatusCode::kUnavailable, "accept()");
    conn_fd_ = fd;
    return Status::Ok();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kFailed, "socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "bad host address: " + cfg_.host);
  }
  // Non-blocking dial bounded by poll: a dead listener must cost one
  // timeout slice, not a kernel-default multi-second connect stall.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "listener not reachable");
  }
  const int r = poll_fd(fd, POLLOUT, cfg_.connect_timeout_ms);
  int soerr = 0;
  socklen_t slen = sizeof soerr;
  if (r <= 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 || soerr != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "connect() did not complete");
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  conn_fd_ = fd;
  return Status::Ok();
}

Status SocketStream::read_some(std::span<std::uint8_t> buf, int timeout_ms, std::size_t& got) {
  got = 0;
  if (conn_fd_ < 0) return Status(StatusCode::kUnavailable, "not connected");
  const int r = poll_fd(conn_fd_, POLLIN, timeout_ms);
  if (r < 0) {
    close_conn();
    return errno_status(StatusCode::kUnavailable, "poll(conn)");
  }
  if (r == 0) return Status(StatusCode::kTimeout, "no bytes within timeout");
  const ssize_t n = ::recv(conn_fd_, buf.data(), buf.size(), 0);
  if (n > 0) {
    got = static_cast<std::size_t>(n);
    return Status::Ok();
  }
  close_conn();
  if (n == 0) return Status(StatusCode::kUnavailable, "peer closed the connection");
  return errno_status(StatusCode::kUnavailable, "recv()");
}

void SocketStream::close_conn() {
  if (conn_fd_ >= 0) {
    ::close(conn_fd_);
    conn_fd_ = -1;
  }
}

void SocketStream::close() {
  close_conn();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

SocketWriter::~SocketWriter() { close(); }

Status SocketWriter::connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kFailed, "socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "bad host address: " + host);
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "listener not reachable");
  }
  const int r = poll_fd(fd, POLLOUT, timeout_ms);
  int soerr = 0;
  socklen_t slen = sizeof soerr;
  if (r <= 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 || soerr != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "connect() did not complete");
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  // The feeder pushes many small frames under pacing; without NODELAY the
  // kernel would batch them behind ACKs and skew delivery timing.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return Status::Ok();
}

Status SocketWriter::send_all(std::span<const std::uint8_t> data) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "not connected");
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return errno_status(StatusCode::kUnavailable, "send()");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void SocketWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace turbda::stream::ingest
