#include "stream/ingest/tail_stream.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace turbda::stream::ingest {

TailStream::TailStream(TailStreamConfig cfg) : cfg_(cfg) {}

TailStream::~TailStream() { close(); }

Status TailStream::connect() {
  if (f_ != nullptr) return Status::Ok();
  std::FILE* f = std::fopen(cfg_.path.c_str(), "rb");
  if (f == nullptr)
    return Status(StatusCode::kUnavailable, "tail file not present: " + cfg_.path);
  if (std::fseek(f, offset_, SEEK_SET) != 0) {
    // Shorter than what we already consumed: the feeder replaced the file.
    // Restart from the top — replayed frames dedup downstream.
    std::rewind(f);
    offset_ = 0;
  }
  f_ = f;
  return Status::Ok();
}

Status TailStream::read_some(std::span<std::uint8_t> buf, int timeout_ms, std::size_t& got) {
  got = 0;
  if (f_ == nullptr) return Status(StatusCode::kUnavailable, "tail file not open");
  int waited_ms = 0;
  for (;;) {
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), f_);
    if (n > 0) {
      got = n;
      offset_ += static_cast<long>(n);
      return Status::Ok();
    }
    if (std::ferror(f_) != 0) {
      close();
      return Status(StatusCode::kUnavailable, "tail read error: " + cfg_.path);
    }
    if (cfg_.stop_at_eof) {
      exhausted_ = true;
      return Status(StatusCode::kTimeout, "replay file fully consumed");
    }
    if (waited_ms >= timeout_ms)
      return Status(StatusCode::kTimeout, "no appended bytes within timeout");
    // EOF in follow mode: clear the latched EOF flag and wait for appends.
    std::clearerr(f_);
    const int slice = std::min(cfg_.poll_interval_ms, std::max(timeout_ms - waited_ms, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    waited_ms += slice;
    std::fseek(f_, offset_, SEEK_SET);
  }
}

void TailStream::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

}  // namespace turbda::stream::ingest
