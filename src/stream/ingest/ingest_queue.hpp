// Bounded staging queue between the wire decoder and the cycling driver.
//
// Backpressure policy is drop-oldest: when a slow consumer lets the queue
// fill, the batch that has waited longest is evicted to admit the new one —
// in a real-time assimilation loop the freshest window is always the most
// valuable, and an old batch that has not been collected yet is exactly the
// one the staleness policy would discount hardest anyway. Every eviction is
// counted and traced so a saturated queue is visible, never silent.
//
// One mutex guards the deque; pushes come from the produce() pump and pops
// from the driver's collect(), so contention is two threads at worst and
// the critical sections are a few pointer moves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "stream/observation_stream.hpp"
#include "telemetry/trace.hpp"

namespace turbda::stream::ingest {

class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

  /// Enqueues `b`; returns false when an older batch was evicted for room.
  bool push(ObsBatch&& b) {
    std::lock_guard<std::mutex> lk(mu_);
    bool evicted = false;
    if (q_.size() >= capacity_) {
      q_.pop_front();
      ++drops_;
      evicted = true;
      TURBDA_TRACE_INSTANT("ingest.queue_drop");
    }
    q_.push_back(std::move(b));
    return !evicted;
  }

  /// Moves every batch with arrival_cycles <= now into `out`, appended in
  /// window order (stragglers first) — the ObservationStream::collect
  /// contract.
  void collect(double now_cycles, std::vector<ObsBatch>& out) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t first = out.size();
    for (auto it = q_.begin(); it != q_.end();) {
      if (it->arrival_cycles <= now_cycles) {
        out.push_back(std::move(*it));
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const ObsBatch& a, const ObsBatch& b) { return a.cycle < b.cycle; });
  }

  /// Snapshot of the still-queued batches (checkpointing).
  [[nodiscard]] std::vector<ObsBatch> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {q_.begin(), q_.end()};
  }

  void restore(std::vector<ObsBatch>&& batches) {
    std::lock_guard<std::mutex> lk(mu_);
    q_.assign(std::make_move_iterator(batches.begin()), std::make_move_iterator(batches.end()));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }
  [[nodiscard]] std::uint64_t drops() const {
    std::lock_guard<std::mutex> lk(mu_);
    return drops_;
  }
  void set_drops(std::uint64_t d) {
    std::lock_guard<std::mutex> lk(mu_);
    drops_ = d;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<ObsBatch> q_;
  std::uint64_t drops_ = 0;
};

}  // namespace turbda::stream::ingest
