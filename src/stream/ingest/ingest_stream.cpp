#include "stream/ingest/ingest_stream.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "telemetry/trace.hpp"

namespace turbda::stream::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

IngestStream::IngestStream(IngestStreamConfig cfg, std::unique_ptr<IngestSource> source,
                           const da::ObservationOperator& h, const da::DiagonalR& r)
    : cfg_(cfg),
      source_(std::move(source)),
      h_(h),
      r_(r),
      queue_(cfg.queue_capacity),
      backoff_(cfg.backoff) {
  TURBDA_REQUIRE(source_ != nullptr, "IngestStream needs a transport");
  TURBDA_REQUIRE(cfg_.read_timeout_ms > 0 && cfg_.produce_timeout_ms > 0 &&
                     cfg_.stale_after_ms >= cfg_.read_timeout_ms && cfg_.truth_buffer >= 1,
                 "bad IngestStream configuration");
}

bool IngestStream::window_complete(int cycle) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (high_water_ < cycle) return false;
  if (!cfg_.expect_truth) return true;
  for (const auto& [c, v] : ring_)
    if (c == cycle) return true;
  return false;
}

void IngestStream::drain_decoder() {
  const std::uint64_t corrupt_before = decoder_.stats().frames_corrupt;
  DecodedFrame f;
  while (decoder_.next(f)) {
    switch (f.kind) {
      case FrameKind::kObs:
        high_water_ = std::max(high_water_, f.obs.cycle);
        queue_.push(std::move(f.obs));
        break;
      case FrameKind::kTruth: {
        high_water_ = std::max(high_water_, f.cycle);
        bool present = false;
        for (const auto& [c, v] : ring_)
          if (c == f.cycle) {
            present = true;
            break;
          }
        if (!present) {
          ring_.emplace_back(f.cycle, std::move(f.state));
          while (ring_.size() > static_cast<std::size_t>(cfg_.truth_buffer)) ring_.pop_front();
        }
        break;
      }
      case FrameKind::kHeartbeat:
        high_water_ = std::max(high_water_, f.cycle);
        break;
    }
  }
  if (decoder_.stats().frames_corrupt > corrupt_before)
    TURBDA_TRACE_INSTANT("ingest.frame_corrupt");
}

void IngestStream::reconnect(double budget_ms) {
  const auto t0 = Clock::now();
  for (;;) {
    const Status s = source_->connect();
    if (s.ok()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (connected_once_) ++reconnects_;
      }
      if (connected_once_) TURBDA_TRACE_INSTANT("ingest.reconnect");
      connected_once_ = true;
      backoff_.reset();
      return;
    }
    if (source_->exhausted()) return;  // produce() turns this into a verdict
    TURBDA_REQUIRE(s.code() == StatusCode::kUnavailable,
                   "ingest transport failure — " << s.to_string());
    const double delay = backoff_.next_delay_ms();
    TURBDA_REQUIRE(ms_since(t0) + delay <= budget_ms,
                   "ingest: transport did not come back within the produce timeout ("
                       << backoff_.attempts() << " attempts)");
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
  }
}

void IngestStream::produce(int cycle) {
  TURBDA_SPAN("ingest.produce");
  const auto t0 = Clock::now();
  const auto budget_left = [&] { return static_cast<double>(cfg_.produce_timeout_ms) - ms_since(t0); };

  if (!connected_once_) reconnect(budget_left());

  std::vector<std::uint8_t> rbuf(64 * 1024);
  double quiet_ms = 0.0;
  while (!window_complete(cycle)) {
    TURBDA_REQUIRE(!source_->exhausted(),
                   "ingest: feed ended before window " << cycle << " was published");
    TURBDA_REQUIRE(budget_left() > 0.0,
                   "ingest: window " << cycle << " not published within produce timeout");
    std::size_t got = 0;
    const Status s = source_->read_some(rbuf, cfg_.read_timeout_ms, got);
    if (s.ok() && got > 0) {
      quiet_ms = 0.0;
      std::lock_guard<std::mutex> lk(mu_);
      decoder_.feed(std::span<const std::uint8_t>(rbuf.data(), got));
      drain_decoder();
    } else if (s.code() == StatusCode::kTimeout) {
      quiet_ms += static_cast<double>(cfg_.read_timeout_ms);
      if (quiet_ms >= static_cast<double>(cfg_.stale_after_ms) && !source_->exhausted()) {
        // Heartbeats flow even through idle windows, so a silent link is a
        // dead link: tear it down and let backoff bring it (or its
        // replacement) back.
        TURBDA_TRACE_INSTANT("ingest.stale");
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++heartbeat_timeouts_;
        }
        source_->close();
        reconnect(budget_left());
        quiet_ms = 0.0;
      }
    } else if (s.code() == StatusCode::kUnavailable) {
      reconnect(budget_left());
      quiet_ms = 0.0;
    } else {
      TURBDA_REQUIRE(false, "ingest transport failure — " << s.to_string());
    }
  }
}

void IngestStream::collect(double now_cycles, std::vector<ObsBatch>& out) {
  TURBDA_SPAN("ingest.collect");
  std::vector<ObsBatch> got;
  queue_.collect(now_cycles, got);
  std::lock_guard<std::mutex> lk(mu_);
  for (ObsBatch& b : got) {
    // Ledger dedup applies only to full-shape batches: a truncated frame
    // must not block the complete retransmission that could recover it.
    if (b.cycle >= 0 && b.y.size() == h_.obs_dim()) {
      const auto c = static_cast<std::size_t>(b.cycle);
      if (c < delivered_.size() && delivered_[c] != 0) {
        ++duplicates_dropped_;
        continue;
      }
      if (c >= delivered_.size()) delivered_.resize(c + 1, 0);
      delivered_[c] = 1;
    }
    out.push_back(std::move(b));
  }
}

std::span<const double> IngestStream::truth(int cycle) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [c, v] : ring_)
    if (c == cycle) return {v.data(), v.size()};
  return {};
}

bool IngestStream::save_state(std::vector<std::uint8_t>& out) const {
  const std::vector<ObsBatch> pending = queue_.snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  bytes::put_i32(out, high_water_);
  bytes::put_blob(out, delivered_);
  bytes::put_u64(out, pending.size());
  for (const ObsBatch& b : pending) {
    bytes::put_i32(out, b.cycle);
    bytes::put_f64(out, b.valid_cycles);
    bytes::put_f64(out, b.arrival_cycles);
    bytes::put_f64_span(out, b.y);
  }
  bytes::put_u64(out, ring_.size());
  for (const auto& [c, v] : ring_) {
    bytes::put_i32(out, c);
    bytes::put_f64_span(out, v);
  }
  bytes::put_u64(out, reconnects_);
  bytes::put_u64(out, heartbeat_timeouts_);
  bytes::put_u64(out, duplicates_dropped_);
  bytes::put_u64(out, queue_.drops());
  const WireStats& w = decoder_.stats();
  bytes::put_u64(out, wire_base_.frames_decoded + w.frames_decoded);
  bytes::put_u64(out, wire_base_.frames_corrupt + w.frames_corrupt);
  bytes::put_u64(out, wire_base_.frames_resynced + w.frames_resynced);
  bytes::put_u64(out, wire_base_.bytes_discarded + w.bytes_discarded);
  bytes::put_u64(out, wire_base_.heartbeats + w.heartbeats);
  return true;
}

bool IngestStream::restore_state(std::span<const std::uint8_t> in) {
  bytes::Reader rd(in);
  const std::int32_t high_water = rd.i32();
  std::vector<std::uint8_t> delivered;
  if (!rd.blob(delivered)) return false;
  const std::uint64_t n_pending = rd.u64();
  std::vector<ObsBatch> pending;
  for (std::uint64_t i = 0; i < n_pending && rd.ok(); ++i) {
    ObsBatch b;
    b.cycle = rd.i32();
    b.valid_cycles = rd.f64();
    b.arrival_cycles = rd.f64();
    if (!rd.f64_vec(b.y) || b.y.size() > h_.obs_dim()) return false;
    pending.push_back(std::move(b));
  }
  const std::uint64_t n_ring = rd.u64();
  std::deque<std::pair<std::int32_t, std::vector<double>>> ring;
  for (std::uint64_t i = 0; i < n_ring && rd.ok(); ++i) {
    const std::int32_t c = rd.i32();
    std::vector<double> v;
    if (!rd.f64_vec(v)) return false;
    ring.emplace_back(c, std::move(v));
  }
  const std::uint64_t reconnects = rd.u64();
  const std::uint64_t hb_timeouts = rd.u64();
  const std::uint64_t dups = rd.u64();
  const std::uint64_t qdrops = rd.u64();
  WireStats base;
  base.frames_decoded = rd.u64();
  base.frames_corrupt = rd.u64();
  base.frames_resynced = rd.u64();
  base.bytes_discarded = rd.u64();
  base.heartbeats = rd.u64();
  if (!rd.done()) return false;

  queue_.restore(std::move(pending));
  queue_.set_drops(qdrops);
  std::lock_guard<std::mutex> lk(mu_);
  high_water_ = high_water;
  delivered_ = std::move(delivered);
  ring_ = std::move(ring);
  reconnects_ = reconnects;
  heartbeat_timeouts_ = hb_timeouts;
  duplicates_dropped_ = dups;
  // The decoder itself restarts from zero (fresh transport bytes); reported
  // totals continue from the snapshot.
  wire_base_ = base;
  return true;
}

ObservationStream::IngestCounters IngestStream::ingest_counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  const WireStats& w = decoder_.stats();
  IngestCounters c;
  c.reconnects = reconnects_;
  c.frames_corrupt = wire_base_.frames_corrupt + w.frames_corrupt;
  c.frames_resynced = wire_base_.frames_resynced + w.frames_resynced;
  c.queue_drops = queue_.drops();
  return c;
}

IngestStats IngestStream::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  const WireStats& w = decoder_.stats();
  IngestStats s;
  s.wire.frames_decoded = wire_base_.frames_decoded + w.frames_decoded;
  s.wire.frames_corrupt = wire_base_.frames_corrupt + w.frames_corrupt;
  s.wire.frames_resynced = wire_base_.frames_resynced + w.frames_resynced;
  s.wire.bytes_discarded = wire_base_.bytes_discarded + w.bytes_discarded;
  s.wire.heartbeats = wire_base_.heartbeats + w.heartbeats;
  s.reconnects = reconnects_;
  s.heartbeat_timeouts = heartbeat_timeouts_;
  s.duplicates_dropped = duplicates_dropped_;
  s.queue_drops = queue_.drops();
  s.high_water_cycle = high_water_;
  return s;
}

}  // namespace turbda::stream::ingest
