// Transport abstraction under the live-ingestion decoder.
//
// An IngestSource is a reconnectable byte pipe: the IngestStream pumps it
// with bounded-timeout reads, feeds whatever arrives to the FrameDecoder,
// and drives (re)connection itself through the Backoff policy. Keeping the
// interface at the byte level — not the frame level — means every fault the
// wire layer must survive (torn frames at a disconnect, partial reads,
// replayed bytes after a reconnect) flows through the same decoder path no
// matter the transport.
//
// Status vocabulary (precise on purpose, the caller branches on it):
//   Ok           — `got` bytes were read (> 0);
//   kTimeout     — nothing arrived within the wait; the link may be idle or
//                  dead — staleness detection above decides which;
//   kUnavailable — the link is down (peer closed, reset, not yet open);
//                  reconnect with backoff;
//   anything else — a non-retryable transport failure.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"

namespace turbda::stream::ingest {

class IngestSource {
 public:
  virtual ~IngestSource() = default;

  /// (Re)establish the transport. kUnavailable when the peer is absent —
  /// retry after a backoff delay. Idempotent when already connected.
  virtual Status connect() = 0;

  /// Reads up to buf.size() bytes, waiting at most timeout_ms.
  virtual Status read_some(std::span<std::uint8_t> buf, int timeout_ms, std::size_t& got) = 0;

  /// Tears the transport down; connect() may bring it back.
  virtual void close() = 0;

  /// True once the source can never yield more bytes (e.g. a finalized
  /// replay file fully consumed). Live transports stay false forever.
  [[nodiscard]] virtual bool exhausted() const { return false; }

  /// Short transport label for logs/telemetry ("socket", "tail").
  [[nodiscard]] virtual const char* kind() const = 0;
};

}  // namespace turbda::stream::ingest
