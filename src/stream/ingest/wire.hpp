// CRC-framed little-endian wire protocol for live observation delivery.
//
// A live feed is a byte stream over an unreliable transport: connections die
// mid-frame, bytes flip in flight, and a reconnecting feeder retransmits
// windows it already sent. The framing mirrors the checkpoint file idiom
// (magic + format version + payload length + payload + CRC-32 trailer,
// common/bytes little-endian codec) so a consumer can *prove* a frame is
// intact before acting on it, and — unlike the checkpoint loader, which
// refuses and stops — the decoder here *resynchronizes*: a torn or corrupt
// frame is skipped byte-by-byte until the next magic boundary, the loss is
// counted, and decoding continues. Garbage can never turn into observations,
// only into `frames_corrupt` ticks.
//
// Three frame kinds share the framing:
//   kObs       — one ObsBatch (window index, validity/arrival stamps, values);
//   kTruth     — the nature-run state for a window (OSSE feeds only, so the
//                consumer can verify RMSE; operational feeds omit them);
//   kHeartbeat — feeder liveness + high-water window mark, so a consumer can
//                distinguish "link idle" from "link dead" and knows when a
//                window's delivery set is complete.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "stream/observation_stream.hpp"

namespace turbda::stream::ingest {

inline constexpr std::uint32_t kWireMagic = 0x424F4454u;  // "TDOB" LE
inline constexpr std::uint32_t kWireVersion = 1;
/// Header bytes ahead of the payload: magic + version + payload length.
inline constexpr std::size_t kWireHeaderBytes = 4 + 4 + 8;
/// Sanity bound used during resynchronization: a header whose length field
/// exceeds this is treated as corrupt rather than waited on forever.
inline constexpr std::uint64_t kMaxFramePayloadBytes = 1ull << 24;  // 16 MiB

enum class FrameKind : std::uint8_t {
  kObs = 1,
  kTruth = 2,
  kHeartbeat = 3,
};

/// One successfully decoded (CRC-verified) frame.
struct DecodedFrame {
  FrameKind kind = FrameKind::kHeartbeat;
  ObsBatch obs;               ///< kObs
  std::int32_t cycle = 0;     ///< kTruth: observed window; kHeartbeat: high-water mark
  std::vector<double> state;  ///< kTruth: nature-run state at end of `cycle`
  std::uint64_t seq = 0;      ///< kHeartbeat: feeder send sequence number
};

/// Cumulative decoder health counters (the soak harness reports these and
/// the runner mirrors them into StreamCycleMetrics / the metrics registry).
struct WireStats {
  std::uint64_t frames_decoded = 0;   ///< CRC-verified frames handed out
  std::uint64_t frames_corrupt = 0;   ///< header/CRC/payload check failures
  std::uint64_t frames_resynced = 0;  ///< good frames found after discarding bytes
  std::uint64_t bytes_discarded = 0;  ///< bytes skipped hunting for a magic boundary
  std::uint64_t heartbeats = 0;       ///< kHeartbeat frames among frames_decoded
};

/// Appends one framed message (header + payload + CRC trailer) to `out`.
void encode_obs_frame(const ObsBatch& b, std::vector<std::uint8_t>& out);
void encode_truth_frame(std::int32_t cycle, std::span<const double> state,
                        std::vector<std::uint8_t>& out);
void encode_heartbeat_frame(std::int32_t high_water_cycle, std::uint64_t seq,
                            std::vector<std::uint8_t>& out);

/// Incremental resynchronizing decoder. Feed it transport bytes in whatever
/// chunks arrive; pull verified frames with next(). A frame split across
/// feed() calls is buffered until complete (a torn frame at a connection
/// drop is flushed as corrupt once fresher bytes rule it out).
class FrameDecoder {
 public:
  /// Appends raw transport bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> data);

  /// Decodes the next verified frame into `out`. Returns false when the
  /// buffer holds no complete frame (call feed() with more bytes). Corrupt
  /// regions are skipped internally: next() never returns garbage.
  bool next(DecodedFrame& out);

  [[nodiscard]] const WireStats& stats() const { return stats_; }
  /// Most recent decode failure (kCorruptData for CRC/payload damage,
  /// kUnsupported for a future format version); ok before any.
  [[nodiscard]] const Status& last_error() const { return last_error_; }
  /// Bytes currently buffered (torn-frame tail awaiting more input).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  /// Drops `n` bytes from the scan position, recording the loss.
  void discard(std::size_t n);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< scan offset into buf_ (compacted periodically)
  bool resyncing_ = false;  ///< bytes were discarded since the last good frame
  WireStats stats_;
  Status last_error_;
};

}  // namespace turbda::stream::ingest
