// File-tailing transport: consume framed observation bytes appended to a
// file by a feeder process (the classic "drop files, tail them" ingestion
// topology), or replay a finalized recording deterministically.
//
// Two behaviors from one knob:
//   - follow mode (stop_at_eof = false): EOF means "no new bytes yet" — the
//     read reports kTimeout and the caller keeps polling; a missing or
//     replaced file reports kUnavailable and connect() reopens it (with the
//     caller's backoff), picking up where the byte offset left off.
//   - replay mode (stop_at_eof = true): the file is complete before the run
//     starts; EOF flips exhausted() and the consumer drains out. Replay is
//     fully deterministic — it is how the soak harness turns one recorded
//     (and deliberately corrupted) wire capture into bitwise-reproducible
//     K=1 vs K=2 and checkpoint/resume comparisons.
#pragma once

#include <cstdio>
#include <string>

#include "stream/ingest/ingest_source.hpp"

namespace turbda::stream::ingest {

struct TailStreamConfig {
  std::string path;
  bool stop_at_eof = false;
  /// Follow mode: one EOF-wait slice (bounded sleep before re-checking).
  int poll_interval_ms = 10;
};

class TailStream final : public IngestSource {
 public:
  explicit TailStream(TailStreamConfig cfg);
  ~TailStream() override;

  TailStream(const TailStream&) = delete;
  TailStream& operator=(const TailStream&) = delete;

  Status connect() override;
  Status read_some(std::span<std::uint8_t> buf, int timeout_ms, std::size_t& got) override;
  void close() override;
  [[nodiscard]] bool exhausted() const override { return exhausted_; }
  [[nodiscard]] const char* kind() const override { return "tail"; }

 private:
  TailStreamConfig cfg_;
  std::FILE* f_ = nullptr;
  long offset_ = 0;  ///< consumed bytes survive a reopen
  bool exhausted_ = false;
};

}  // namespace turbda::stream::ingest
