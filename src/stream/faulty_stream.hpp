// Deterministic fault injection for observation streams.
//
// FaultyStream decorates any ObservationStream and corrupts its batches the
// way real observing networks do: individual values turn into NaN/Inf or
// physically absurd magnitudes, a sensor channel freezes at its last value
// for several windows, a batch is transmitted twice, or arrives truncated.
// Every corruption decision comes from a Philox substream keyed by the
// batch's window index, so a fault scenario is a pure function of
// (seed, config) — bitwise reproducible across thread counts and runs,
// which is what lets the fault-tolerance tests assert exact QC decisions.
//
// The decorator intercepts batches at produce() time (delivery stamps pass
// through untouched — faults corrupt *content*, the delivery schedule stays
// the inner stream's) and replays the inner stream's arrival gating in its
// own collect().
//
// With every fault probability zero the decorator is fully transparent:
// produce/collect/save_state/restore_state forward straight to the inner
// stream, so runs — and checkpoint blobs — are bitwise identical to the
// undecorated stream's. Scenario harnesses can therefore keep the wrapper
// in place unconditionally and toggle faults by config alone.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "rng/rng.hpp"
#include "stream/observation_stream.hpp"

namespace turbda::stream {

struct FaultConfig {
  std::uint64_t seed = 9001;

  // Per-element corruption probabilities (checked in this order; at most one
  // fires per element).
  double nan_prob = 0.0;      ///< value becomes NaN
  double inf_prob = 0.0;      ///< value becomes +/-Inf
  double outlier_prob = 0.0;  ///< value becomes physically absurd
  double outlier_scale = 1e6; ///< outlier magnitude: y -> (y + 1) * scale

  // Per-batch faults.
  double stuck_prob = 0.0;   ///< a random channel freezes at its current value
  int stuck_cycles = 3;      ///< how many windows the channel stays frozen
  double duplicate_prob = 0.0;         ///< batch transmitted a second time
  double duplicate_delay_cycles = 0.5; ///< extra delivery delay of the copy
  double truncate_prob = 0.0;          ///< batch arrives with half its values
};

/// Cumulative injection counters (what the soak harness reports).
struct FaultCounters {
  std::uint64_t nan_values = 0;
  std::uint64_t inf_values = 0;
  std::uint64_t outlier_values = 0;
  std::uint64_t stuck_values = 0;       ///< elements overwritten by a frozen channel
  std::uint64_t batches_duplicated = 0;
  std::uint64_t batches_truncated = 0;
};

class FaultyStream final : public ObservationStream {
 public:
  FaultyStream(FaultConfig cfg, ObservationStream& inner);

  [[nodiscard]] std::size_t obs_dim() const override { return inner_.obs_dim(); }
  [[nodiscard]] const da::ObservationOperator& h() const override { return inner_.h(); }
  [[nodiscard]] const da::DiagonalR& r() const override { return inner_.r(); }
  [[nodiscard]] std::span<const double> truth(int cycle) const override {
    return inner_.truth(cycle);
  }

  void produce(int cycle) override;
  void collect(double now_cycles, std::vector<ObsBatch>& out) override;

  [[nodiscard]] FaultCounters counters() const;

  bool save_state(std::vector<std::uint8_t>& out) const override;
  bool restore_state(std::span<const std::uint8_t> in) override;

  [[nodiscard]] IngestCounters ingest_counters() const override {
    return inner_.ingest_counters();
  }

 private:
  /// All fault probabilities zero => pure passthrough decorator.
  [[nodiscard]] bool disabled() const {
    return cfg_.nan_prob == 0.0 && cfg_.inf_prob == 0.0 && cfg_.outlier_prob == 0.0 &&
           cfg_.stuck_prob == 0.0 && cfg_.duplicate_prob == 0.0 && cfg_.truncate_prob == 0.0;
  }
  /// Corrupts one batch in place; may append a duplicate to pending_.
  /// Called with mu_ held.
  void corrupt(ObsBatch& b, std::vector<ObsBatch>& extra);

  FaultConfig cfg_;
  ObservationStream& inner_;
  rng::Rng rng_fault_;  ///< substream parent; keyed per batch cycle

  mutable std::mutex mu_;  ///< guards pending_, stuck_ and counters_
  std::vector<ObsBatch> pending_;
  /// channel -> (windows remaining, frozen value); std::map for
  /// deterministic iteration and serialization order.
  std::map<std::int32_t, std::pair<std::int32_t, double>> stuck_;
  FaultCounters counters_;
};

}  // namespace turbda::stream
