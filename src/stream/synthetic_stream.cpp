#include "stream/synthetic_stream.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/check.hpp"

namespace turbda::stream {

SyntheticStream::SyntheticStream(SyntheticStreamConfig cfg, models::ForecastModel& truth_model,
                                 const da::ObservationOperator& h, const da::DiagonalR& r,
                                 std::span<const double> truth0)
    : cfg_(cfg),
      truth_model_(truth_model),
      h_(h),
      r_(r),
      rng_obs_(rng::Rng(cfg.seed).substream(1)),
      rng_delivery_(rng::Rng(cfg.seed).substream(3)) {
  TURBDA_REQUIRE(truth0.size() == truth_model_.dim(), "SyntheticStream: truth0 size mismatch");
  TURBDA_REQUIRE(h_.state_dim() == truth_model_.dim(),
                 "SyntheticStream: observation operator dim mismatch");
  TURBDA_REQUIRE(r_.dim() == h_.obs_dim(), "SyntheticStream: R dim mismatch");
  TURBDA_REQUIRE(cfg_.latency_cycles >= 0.0 && cfg_.jitter_cycles >= 0.0 &&
                     cfg_.dropout_prob >= 0.0 && cfg_.dropout_prob <= 1.0 &&
                     cfg_.truth_buffer >= 2,
                 "SyntheticStream: bad delivery configuration");
  truth_.assign(truth0.begin(), truth0.end());
}

void SyntheticStream::produce(int cycle) {
  TURBDA_REQUIRE(cycle == produced_, "SyntheticStream: produce() must be called in cycle order");

  // Nature run: same call sequence as the offline OSSE's truth forecast.
  truth_model_.forecast(truth_);

  // Observation values — substream keyed by cycle, so the numbers are
  // independent of the delivery schedule and of collection order.
  ObsBatch b;
  b.cycle = cycle;
  b.valid_cycles = static_cast<double>(cycle + 1);
  b.y.resize(h_.obs_dim());
  h_.apply(truth_, b.y);
  rng::Rng r_obs = rng_obs_.substream(static_cast<std::uint64_t>(cycle));
  r_.perturb(b.y, r_obs);

  // Delivery schedule — its own substream family, so turning latency/jitter
  // on or off never shifts the observation noise above.
  rng::Rng r_del = rng_delivery_.substream(static_cast<std::uint64_t>(cycle));
  const bool dropped = r_del.bernoulli(cfg_.dropout_prob);
  const double jitter = cfg_.jitter_cycles > 0.0 ? cfg_.jitter_cycles * r_del.uniform() : 0.0;
  b.arrival_cycles = b.valid_cycles + cfg_.latency_cycles + jitter;

  std::lock_guard<std::mutex> lk(mu_);
  ring_.emplace_back(cycle, truth_);
  while (ring_.size() > static_cast<std::size_t>(cfg_.truth_buffer)) ring_.pop_front();
  ++produced_;
  if (dropped) {
    ++dropped_;
  } else {
    pending_.push_back(std::move(b));
  }
}

void SyntheticStream::collect(double now_cycles, std::vector<ObsBatch>& out) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t first = out.size();
  auto it = std::stable_partition(
      pending_.begin(), pending_.end(),
      [&](const ObsBatch& b) { return b.arrival_cycles > now_cycles; });
  for (auto p = it; p != pending_.end(); ++p) out.push_back(std::move(*p));
  pending_.erase(it, pending_.end());
  // Stragglers assimilate before fresher batches: deliver in window order.
  std::sort(out.begin() + static_cast<long>(first), out.end(),
            [](const ObsBatch& a, const ObsBatch& b) { return a.cycle < b.cycle; });
}

bool SyntheticStream::save_state(std::vector<std::uint8_t>& out) const {
  std::lock_guard<std::mutex> lk(mu_);
  bytes::put_f64_span(out, truth_);
  bytes::put_i32(out, produced_);
  bytes::put_i32(out, dropped_);
  bytes::put_u64(out, pending_.size());
  for (const ObsBatch& b : pending_) {
    bytes::put_i32(out, b.cycle);
    bytes::put_f64(out, b.valid_cycles);
    bytes::put_f64(out, b.arrival_cycles);
    bytes::put_f64_span(out, b.y);
  }
  bytes::put_u64(out, ring_.size());
  for (const auto& [c, state] : ring_) {
    bytes::put_i32(out, c);
    bytes::put_f64_span(out, state);
  }
  return true;
}

bool SyntheticStream::restore_state(std::span<const std::uint8_t> in) {
  bytes::Reader rd(in);
  std::vector<double> truth;
  if (!rd.f64_vec(truth) || truth.size() != truth_model_.dim()) return false;
  const int produced = rd.i32();
  const int dropped = rd.i32();
  const std::uint64_t n_pending = rd.u64();
  std::vector<ObsBatch> pending;
  for (std::uint64_t i = 0; i < n_pending && rd.ok(); ++i) {
    ObsBatch b;
    b.cycle = rd.i32();
    b.valid_cycles = rd.f64();
    b.arrival_cycles = rd.f64();
    if (!rd.f64_vec(b.y) || b.y.size() != h_.obs_dim()) return false;
    pending.push_back(std::move(b));
  }
  const std::uint64_t n_ring = rd.u64();
  std::deque<std::pair<int, std::vector<double>>> ring;
  for (std::uint64_t i = 0; i < n_ring && rd.ok(); ++i) {
    const int c = rd.i32();
    std::vector<double> state;
    if (!rd.f64_vec(state) || state.size() != truth_model_.dim()) return false;
    ring.emplace_back(c, std::move(state));
  }
  if (!rd.done() || produced < 0 || dropped < 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  truth_ = std::move(truth);
  produced_ = produced;
  dropped_ = dropped;
  pending_ = std::move(pending);
  ring_ = std::move(ring);
  return true;
}

std::span<const double> SyntheticStream::truth(int cycle) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [c, state] : ring_)
    if (c == cycle) return state;
  return {};
}

}  // namespace turbda::stream
