// Structured recoverable-error channel.
//
// TURBDA_REQUIRE (check.hpp) throws turbda::Error for *contract violations*
// — programmer mistakes that should abort the operation loudly. Operational
// faults are different: a non-convergent eigensolve, a corrupt observation
// batch or a bad checkpoint file are conditions a long-running assimilation
// service must survive, report, and degrade around. Status is the value-type
// channel for those: fallible entry points (Filter::try_analyze, checkpoint
// load/save) return one instead of throwing, so the cycling driver can
// decide the degradation policy (forecast-only cycle, column fallback,
// refuse a resume) without unwinding through worker threads.
#pragma once

#include <string>
#include <utility>

namespace turbda {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller handed inconsistent shapes/values
  kNonConvergent,    ///< an iterative solve ran out of iterations
  kCorruptData,      ///< data failed integrity checks (CRC, magic, bounds)
  kUnsupported,      ///< the implementation cannot honor the request
  kIoError,          ///< filesystem read/write failure
  kTimeout,          ///< a bounded wait elapsed without the awaited event
  kUnavailable,      ///< a peer/transport is (currently) gone; retry may help
  kFailed,           ///< other recoverable failure (message has details)
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNonConvergent: return "non-convergent";
    case StatusCode::kCorruptData: return "corrupt-data";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kFailed: return "failed";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;  ///< ok
  Status(StatusCode code, std::string message) : code_(code), msg_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  /// "non-convergent: Jacobi eigensolve exceeded 50 sweeps" — for logs.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "ok";
    std::string s = status_code_name(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace turbda
