// Lightweight wall-clock timing utilities used by benches and profilers.
#pragma once

#include <chrono>

namespace turbda {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals (e.g. per-phase
/// profiling of an assimilation cycle).
class AccumTimer {
 public:
  /// Begins an interval. Calling start() while already running is a no-op:
  /// the open interval keeps accumulating from its original start point
  /// rather than being silently re-zeroed (which would under-count).
  void start() {
    if (running_) return;
    t_.reset();
    running_ = true;
  }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  [[nodiscard]] double seconds() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace turbda
