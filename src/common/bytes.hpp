// Little-endian byte (de)serialization for checkpoint blobs.
//
// Every checkpointable component (Rng aside, which predates this helper and
// carries its own fixed-size codec) appends itself to a byte vector through
// these writers and parses itself back through Reader. Explicit per-byte
// shifts make the encoding identical on any host, and Reader is fail-soft:
// past-the-end reads latch a failure flag and return zeros instead of
// touching out-of-range memory, so callers validate once at the end with
// ok() — corrupt input can never turn into UB, only into a refused restore.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace turbda::bytes {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_f64_span(std::vector<std::uint8_t>& out, std::span<const double> v) {
  put_u64(out, v.size());
  for (double x : v) put_f64(out, x);
}

inline void put_blob(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> v) {
  put_u64(out, v.size());
  out.insert(out.end(), v.begin(), v.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in_[at_++];
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[at_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[at_++]) << (8 * i);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() { return std::bit_cast<double>(u64()); }

  /// Length-prefixed double vector; latches failure on absurd lengths.
  bool f64_vec(std::vector<double>& out) {
    const std::uint64_t n = u64();
    if (!need(8 * n)) return false;
    out.resize(n);
    for (auto& x : out) x = f64();
    return ok();
  }

  /// Length-prefixed byte vector.
  bool blob(std::vector<std::uint8_t>& out) {
    const std::uint64_t n = u64();
    if (!need(n)) return false;
    out.assign(in_.begin() + static_cast<std::ptrdiff_t>(at_),
               in_.begin() + static_cast<std::ptrdiff_t>(at_ + n));
    at_ += n;
    return ok();
  }

  /// Raw view of the next n bytes (valid while the source buffer lives).
  std::span<const std::uint8_t> raw(std::size_t n) {
    if (!need(n)) return {};
    auto s = in_.subspan(at_, n);
    at_ += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return !fail_; }
  [[nodiscard]] std::size_t remaining() const { return fail_ ? 0 : in_.size() - at_; }
  /// True when parsing succeeded and consumed the whole buffer.
  [[nodiscard]] bool done() const { return ok() && at_ == in_.size(); }

 private:
  bool need(std::uint64_t n) {
    if (fail_ || n > in_.size() - at_) {
      fail_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t at_ = 0;
  bool fail_ = false;
};

}  // namespace turbda::bytes
