// Error handling and contract checks.
//
// TURBDA_REQUIRE is an always-on precondition check that throws
// turbda::Error (public API contract violations must not be compiled out).
// TURBDA_ASSERT is a debug-only internal invariant check.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace turbda {

/// Exception type thrown on contract violations across the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: (" << cond << ")";
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace turbda

#define TURBDA_REQUIRE(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::turbda::detail::throw_error(#cond, __FILE__, __LINE__,                 \
                                    [&] {                                      \
                                      std::ostringstream os_;                  \
                                      os_ << msg;                              \
                                      return os_.str();                        \
                                    }());                                      \
    }                                                                          \
  } while (false)

#ifdef NDEBUG
#define TURBDA_ASSERT(cond) ((void)0)
#else
#define TURBDA_ASSERT(cond) TURBDA_REQUIRE(cond, "internal invariant")
#endif
