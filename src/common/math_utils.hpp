// Small math helpers shared across modules.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <span>

#include "common/check.hpp"

namespace turbda {

inline constexpr double kPi = std::numbers::pi_v<double>;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi_v<double>;

template <typename T>
[[nodiscard]] constexpr T sqr(T x) {
  return x * x;
}

/// True iff n is a power of two (n > 0).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// log2 of a power-of-two value.
[[nodiscard]] constexpr int ilog2(std::size_t n) {
  int l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

/// Ceiling division for non-negative integers.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Euclidean 2-norm of a span.
[[nodiscard]] inline double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

/// RMS of a span (norm2 / sqrt(n)).
[[nodiscard]] inline double rms(std::span<const double> v) {
  TURBDA_REQUIRE(!v.empty(), "rms of empty span");
  return norm2(v) / std::sqrt(static_cast<double>(v.size()));
}

/// Dot product.
[[nodiscard]] inline double dot(std::span<const double> a, std::span<const double> b) {
  TURBDA_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  TURBDA_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace turbda
