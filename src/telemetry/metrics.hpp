// Metrics registry — named counters, gauges and fixed-bucket histograms
// with a snapshot API and Prometheus-style / JSON exposition.
//
// This is the "how much / how often" half of the telemetry subsystem
// (trace.hpp is the "where did the time go" half) and the substrate the
// multi-tenant ScenarioServer's per-scenario metrics endpoint will serve
// from: a long-running assimilation service exposes cycle latencies,
// deadline slack, QC rejections and pool utilization without stopping.
//
// Concurrency model: registration (name lookup) takes a mutex and returns a
// stable reference — instruments are never invalidated once created, so hot
// paths look up once and then update lock-free (relaxed atomics). Updates
// never allocate. Like the tracing layer, metrics only *observe*: no
// instrumented code path branches on a metric value, so recording cannot
// perturb numerical results.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace turbda::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive bucket upper edges
/// (Prometheus `le`), plus an implicit +Inf bucket. Bucket layout is fixed
/// at registration; observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< per-bucket, bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Default latency buckets (milliseconds), spanning sub-ms FFT batches to
/// multi-second LETKF analyses.
[[nodiscard]] std::span<const double> default_ms_buckets();

class MetricsRegistry {
 public:
  /// Process-wide registry (what the built-in instrumentation reports to).
  static MetricsRegistry& global();
  MetricsRegistry() = default;

  /// Look up or create. References stay valid for the registry's lifetime;
  /// hot paths should cache them. Names should match Prometheus conventions
  /// ([a-zA-Z_][a-zA-Z0-9_]*); exposition replaces other characters with '_'.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds (empty = default_ms_buckets);
  /// later calls with any bounds return the existing instrument.
  Histogram& histogram(const std::string& name, std::span<const double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument, keeping registrations (per-run reset).
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prometheus text exposition format (# TYPE lines, cumulative _bucket{le=}
/// rows with +Inf, _sum and _count).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap);

/// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

}  // namespace turbda::telemetry
