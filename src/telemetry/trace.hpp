// Thread-local tracing spans — the "where does cycle time go" half of the
// telemetry subsystem (metrics.hpp is the "how much / how often" half).
//
// Design constraints, in priority order:
//
//  1. Zero effect on numerical results. Spans only read the clock and write
//     into pre-sized per-thread buffers; no instrumented code path branches
//     on telemetry state, so every bitwise-determinism test must pass with
//     tracing enabled or disabled.
//  2. Near-zero overhead when disabled. TURBDA_SPAN compiles to one relaxed
//     atomic load and a predictable branch (a few ns); no allocation, no
//     clock read, no function call. Hot kernels (FFT plan execution, pool
//     tasks) can therefore stay instrumented in production builds.
//  3. No cross-thread contention when enabled. Each thread owns a
//     single-producer span ring buffer; recording takes two steady_clock
//     reads and one ring slot write. The registry mutex is touched once per
//     thread (first span) and at snapshot/export time only. When a ring
//     wraps, the oldest spans are overwritten and counted as dropped — a
//     bounded-memory tail, never a stall.
//
// Spans nest lexically via RAII and record their depth, so exports preserve
// the call-tree shape. The export format is Chrome trace-event JSON
// ("X" complete events + "i" instants), viewable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Usage:
//   telemetry::TraceCollector::instance().enable();
//   { TURBDA_SPAN("letkf.eigh");  ...work...; }   // names must be literals
//   TURBDA_TRACE_INSTANT("status.deadline_miss");
//   telemetry::TraceCollector::instance().write_chrome_trace("trace.json");
//
// Snapshots and clear() are meant for quiescent points (between runs, after
// joining/idling worker threads): a snapshot taken while a wrapped ring is
// actively being overwritten may observe a torn oldest record.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace turbda::telemetry {

namespace detail {
/// Process-wide enable flag, constant-initialized so TURBDA_SPAN is safe
/// during static initialization. Read relaxed on every span entry.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when span recording is active (one relaxed load).
[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One recorded event. Span names must be string literals (or otherwise
/// outlive the collector): only the pointer is stored.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;   ///< start, ns since the collector epoch
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  std::uint32_t depth = 0;   ///< lexical nesting depth at open
  bool instant = false;
};

/// Snapshot of one thread's buffer: records in completion order.
struct ThreadTrace {
  std::uint32_t tid = 0;     ///< stable per-registration small id
  std::string label;         ///< "main", "pool-worker-3", ...
  std::uint64_t dropped = 0; ///< spans overwritten by ring wrap-around
  std::vector<SpanRecord> spans;
};

class TraceSpan;

class TraceCollector {
 public:
  /// Process-wide collector (what TURBDA_SPAN records into).
  static TraceCollector& instance();

  /// Start/stop recording. enable() also re-anchors the time epoch so
  /// exported timestamps start near zero for the traced run.
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const { return tracing_enabled(); }

  /// Drops all recorded spans and thread registrations. Must not race
  /// active span recording (call at quiescent points).
  void clear();

  /// Ring capacity (spans per thread) for buffers registered after the
  /// call; pair with clear() to apply to every thread. Rounded up to 1.
  void set_capacity(std::size_t spans_per_thread);

  /// Nanoseconds since the collector epoch (for explicit complete events).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Zero-duration marker event on the calling thread (degradation events,
  /// watchdog firings, ...). No-op when disabled.
  void instant(const char* name);

  /// Record an explicit [t0_ns, t0_ns + dur_ns) span on the calling thread
  /// — for synthesized aggregate spans (e.g. LETKF per-phase totals laid
  /// out inside their chunk span). No-op when disabled.
  void complete(const char* name, std::uint64_t t0_ns, std::uint64_t dur_ns);

  /// Copies every thread's surviving records (completion order per thread).
  [[nodiscard]] std::vector<ThreadTrace> snapshot() const;

  /// Chrome trace-event JSON (chrome://tracing, Perfetto).
  [[nodiscard]] std::string chrome_json() const;
  Status write_chrome_trace(const std::string& path) const;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  struct Buf;  ///< per-thread ring (implementation detail, public for TLS)

 private:
  friend class TraceSpan;

  TraceCollector();
  ~TraceCollector();

  /// The calling thread's buffer, registering it on first use (and after
  /// clear(), via an epoch check).
  Buf& local_buf();
  void push(const SpanRecord& rec);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buf>> bufs_;
  std::size_t capacity_;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> epoch_{1};
  std::chrono::steady_clock::time_point t0_;
};

/// Label the calling thread in traces ("main", "pool-worker-2", ...). Takes
/// effect at the thread's next (re-)registration; call before first span.
void set_thread_label(std::string label);

/// RAII span: records name/thread/start/duration into the calling thread's
/// ring on destruction. When tracing is disabled at construction this is one
/// atomic load — no clock read, nothing recorded.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!tracing_enabled()) [[likely]]
      return;
    begin(name);
  }
  ~TraceSpan() {
    if (armed_) end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name);  // out of line: the enabled path only
  void end();

  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

}  // namespace turbda::telemetry

#define TURBDA_SPAN_CONCAT2(a, b) a##b
#define TURBDA_SPAN_CONCAT(a, b) TURBDA_SPAN_CONCAT2(a, b)

/// Trace the enclosing scope as a span named `name` (a string literal).
#define TURBDA_SPAN(name) \
  ::turbda::telemetry::TraceSpan TURBDA_SPAN_CONCAT(turbda_span_, __COUNTER__)(name)

/// Record a zero-duration marker event named `name` (a string literal).
#define TURBDA_TRACE_INSTANT(name) ::turbda::telemetry::TraceCollector::instance().instant(name)
