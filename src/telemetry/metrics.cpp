#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace turbda::telemetry {

namespace {

constexpr std::array<double, 14> kDefaultMsBuckets = {
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0};

/// Prometheus-safe metric name: [a-zA-Z_][a-zA-Z0-9_]*, others become '_'.
std::string sanitize(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
                    (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

/// Shortest round-trip-ish double formatting for the expositions.
std::string fmt(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::span<const double> default_ms_buckets() { return kDefaultMsBuckets; }

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds.size() + 1)) {
  TURBDA_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket bounds must be sorted");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  // First bucket whose upper edge admits v; +Inf bucket otherwise.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr)
    slot = std::make_unique<Histogram>(bounds.empty() ? default_ms_buckets() : bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    row.counts = h->bucket_counts();
    row.count = h->count();
    row.sum = h->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string n = sanitize(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string n = sanitize(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string n = sanitize(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      out += n + "_bucket{le=\"" + fmt(h.bounds[i]) + "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + fmt(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + sanitize(snap.counters[i].name) + "\": " +
           std::to_string(snap.counters[i].value);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + sanitize(snap.gauges[i].name) + "\": " +
           fmt(snap.gauges[i].value);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out += (i ? ",\n    \"" : "\n    \"") + sanitize(h.name) + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b)
      out += (b ? ", " : "") + fmt(h.bounds[b]);
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      out += (b ? ", " : "") + std::to_string(h.counts[b]);
    out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": " + fmt(h.sum) + "}";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace turbda::telemetry
