#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace turbda::telemetry {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDefaultCapacity = 1u << 15;  ///< spans per thread (1 MiB)

/// JSON string escaping for span names and thread labels. Names are string
/// literals under our control, but a stray quote must not corrupt the file.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

/// Per-thread single-producer span ring. The owning thread writes records
/// and bumps `head` with release order; snapshot readers load `head` with
/// acquire and copy the surviving window. `depth` is touched only by the
/// owner.
struct TraceCollector::Buf {
  explicit Buf(std::size_t cap, std::uint32_t tid_, std::string label_)
      : ring(cap), tid(tid_), label(std::move(label_)) {}

  std::vector<SpanRecord> ring;
  std::atomic<std::uint64_t> head{0};  ///< records ever pushed
  std::uint32_t tid;
  std::string label;
  std::uint32_t depth = 0;
};

namespace {
// Cached registration: the pointer is only dereferenced when its epoch
// matches the collector's, so clear() (which frees buffers and bumps the
// epoch) safely invalidates it without touching other threads.
thread_local TraceCollector::Buf* t_buf = nullptr;
thread_local std::uint64_t t_buf_epoch = 0;
thread_local std::string t_label;
}  // namespace

void set_thread_label(std::string label) { t_label = std::move(label); }

TraceCollector::TraceCollector() : capacity_(kDefaultCapacity), t0_(Clock::now()) {}
TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::enable() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (bufs_.empty()) t0_ = Clock::now();  // fresh run: timestamps start near 0
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceCollector::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  bufs_.clear();
  next_tid_ = 0;
  t0_ = Clock::now();
  // Invalidate every thread's cached registration.
  epoch_.fetch_add(1, std::memory_order_release);
}

void TraceCollector::set_capacity(std::size_t spans_per_thread) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(1, spans_per_thread);
}

std::uint64_t TraceCollector::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0_).count());
}

TraceCollector::Buf& TraceCollector::local_buf() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_buf == nullptr || t_buf_epoch != epoch) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t tid = next_tid_++;
    std::string label = t_label.empty() ? "thread-" + std::to_string(tid) : t_label;
    bufs_.push_back(std::make_unique<Buf>(capacity_, tid, std::move(label)));
    t_buf = bufs_.back().get();
    t_buf_epoch = epoch_.load(std::memory_order_relaxed);
  }
  return *t_buf;
}

void TraceCollector::push(const SpanRecord& rec) {
  Buf& b = local_buf();
  const std::uint64_t h = b.head.load(std::memory_order_relaxed);
  b.ring[h % b.ring.size()] = rec;
  b.head.store(h + 1, std::memory_order_release);
}

void TraceCollector::instant(const char* name) {
  if (!tracing_enabled()) [[likely]]
    return;
  Buf& b = local_buf();
  push(SpanRecord{name, now_ns(), 0, b.depth, /*instant=*/true});
}

void TraceCollector::complete(const char* name, std::uint64_t t0_ns, std::uint64_t dur_ns) {
  if (!tracing_enabled()) [[likely]]
    return;
  Buf& b = local_buf();
  push(SpanRecord{name, t0_ns, dur_ns, b.depth, /*instant=*/false});
}

std::vector<ThreadTrace> TraceCollector::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadTrace> out;
  out.reserve(bufs_.size());
  for (const auto& b : bufs_) {
    ThreadTrace tt;
    tt.tid = b->tid;
    tt.label = b->label;
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    const std::uint64_t avail = std::min(head, cap);
    tt.dropped = head - avail;
    tt.spans.reserve(static_cast<std::size_t>(avail));
    for (std::uint64_t i = head - avail; i < head; ++i)
      tt.spans.push_back(b->ring[i % cap]);
    out.push_back(std::move(tt));
  }
  return out;
}

std::string TraceCollector::chrome_json() const {
  const std::vector<ThreadTrace> threads = snapshot();
  std::string out;
  out += "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"turbda\"}}";
  char buf[160];
  for (const auto& tt : threads) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tt.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, tt.label.c_str());
    out += "\"}}";
    for (const SpanRecord& s : tt.spans) {
      out += ",\n{\"ph\":\"";
      out += s.instant ? 'i' : 'X';
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(tt.tid);
      out += ",\"name\":\"";
      append_escaped(out, s.name);
      // Timestamps/durations in microseconds, the trace-event convention.
      if (s.instant) {
        std::snprintf(buf, sizeof(buf), "\",\"s\":\"t\",\"ts\":%.3f}",
                      static_cast<double>(s.t0_ns) / 1e3);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%u}}",
                      static_cast<double>(s.t0_ns) / 1e3,
                      static_cast<double>(s.dur_ns) / 1e3, s.depth);
      }
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return Status(StatusCode::kIoError, "cannot open trace file " + path);
  f << chrome_json();
  f.flush();
  if (!f.good()) return Status(StatusCode::kIoError, "short write to trace file " + path);
  return Status::Ok();
}

void TraceSpan::begin(const char* name) {
  TraceCollector& c = TraceCollector::instance();
  name_ = name;
  t0_ = c.now_ns();
  depth_ = c.local_buf().depth++;
  armed_ = true;
}

void TraceSpan::end() {
  TraceCollector& c = TraceCollector::instance();
  // Even if tracing was disabled mid-span, close the depth bracket and
  // record: a half-open span would skew nesting for later spans.
  TraceCollector::Buf& b = c.local_buf();
  if (b.depth > 0) --b.depth;
  c.push(SpanRecord{name_, t0_, c.now_ns() - t0_, depth_, /*instant=*/false});
}

}  // namespace turbda::telemetry
