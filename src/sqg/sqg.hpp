// Surface quasi-geostrophic (SQG) turbulence model — the paper's testbed.
//
// Two-surface nonlinear Eady model on an f-plane with uniform stratification
// N^2 and uniform vertical shear U/H (paper §II-B; follows Tulloch & Smith
// 2009 and the jswhit/sqgturb reference implementation):
//
//   state: theta = dpsi/dz (buoyancy / f) at the two boundaries z = 0, H,
//   advected by the boundary geostrophic flow; interior QG PV = 0.
//
// Spectral space: for total wavenumber K, kappa = N K / f, mu = kappa H:
//   psi0 = (1/kappa) (theta1 / sinh(mu) - theta0 / tanh(mu))
//   psi1 = (1/kappa) (theta1 / tanh(mu) - theta0 / sinh(mu))
//
// Boundary tendency (perturbations around the uniform-shear basic state
// Ubar(z), d(thetabar)/dy = -Lambda, Lambda = U/H):
//
//   d theta/dt = -J(psi, theta) - Ubar theta_x + Lambda v
//                [- r lap(psi) at z=0]  [- theta / t_diab]  [hyperdiffusion]
//
// Numerics: FFT spectral discretization, grid-space Jacobian with 2/3-rule
// dealiasing, RK4, and implicit (integrating-factor) del^8 hyperdiffusion
// applied once per step — exactly the scheme the paper describes.
//
// Spectral layout: the state between FFT calls is the packed non-redundant
// half spectrum of each real boundary field — n x (n/2 + 1) bins per level
// (Fft2D::forward_half layout), mirroring the remaining bins through
// X(-my, -mx) = conj(X(my, mx)). Every operator table, RK4 stage buffer and
// pointwise pass runs over that half set (half the memory and memory traffic
// of the Hermitian-redundant full spectrum), transforms are pruned to the
// 2/3-dealiased wavenumber square, and the tendency does exactly two
// branch-free spectral passes per level: one fused inversion + derivative
// pass and one combine pass whose dealias mask and Ekman/relaxation terms
// are folded into precomputed per-level operator tables.
//
// Concurrency: SqgModel is immutable after construction (an FFT plan plus
// wavenumber/hyperdiffusion tables). All per-step scratch lives in an
// explicit SqgWorkspace, so one model instance can step many states from
// many threads at once with zero per-step allocation — the property the
// parallel ensemble forecast in OsseRunner relies on. The workspace-less
// overloads borrow a lazily grown per-thread workspace and are therefore
// also safe to call concurrently.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "fft/fft.hpp"
#include "models/forecast_model.hpp"
#include "rng/rng.hpp"

namespace turbda::sqg {

using fft::Cplx;

struct SqgConfig {
  std::size_t n = 64;            ///< grid points per side (power of two)
  double L = 20.0e6;             ///< domain size [m] (20,000 km)
  double H = 10.0e3;             ///< layer depth [m]
  double f = 1.0e-4;             ///< Coriolis parameter [1/s]
  double nsq = 1.0e-4;           ///< buoyancy frequency squared [1/s^2]
  double U = 30.0;               ///< velocity difference across the layer [m/s]
  bool symmetric_shear = true;   ///< Ubar = -U/2 / +U/2 instead of 0 / U
  double r_ekman = 0.0;          ///< Ekman pumping coefficient [m/s], z=0 only
  double t_diab = 10.0 * 86400;  ///< thermal relaxation timescale [s]
  int diff_order = 8;            ///< hyperdiffusion order (del^8)
  double diff_efold = 86400.0 / 3.0;  ///< e-folding of the highest mode [s]
  double dt = 900.0;             ///< RK4 step [s]
  /// Worker threads for the 2-D transform row/column batches inside one
  /// step: 1 = serial (default), 0 = all pool workers. Results are bitwise
  /// identical for any value; when steps already run member-parallel the
  /// nested fan-out degrades gracefully to serial.
  std::size_t n_fft_threads = 1;
  /// Members per internal sub-block of step_batch: the batched transforms
  /// fan this many members' fields out per sweep, and the block bounds both
  /// the batch workspace footprint (~block x the single-member workspace)
  /// and the pass-to-transform reuse distance (large blocks stream the
  /// block's fields between tendency phases — measurably worse serially).
  /// Results are bitwise identical for any value >= 1.
  std::size_t batch_block = 2;
};

/// All mutable scratch one in-flight SQG integration needs: half-spectrum
/// stage buffers for RK4 plus grid-space fields for the Jacobian. Allocate
/// once per worker (or let the model borrow a per-thread one) and reuse —
/// stepping performs no heap allocation. Spectral buffers hold n*(n/2+1)
/// bins per level (the packed half spectrum), grid buffers n^2 points.
struct SqgWorkspace {
  SqgWorkspace() = default;
  explicit SqgWorkspace(std::size_t n) { resize(n); }

  /// Sizes the stepping buffers. The diagnostics buffers below are sized on
  /// demand by resize_diagnostics() so forecast-only workers (one workspace
  /// per pool thread) never pay for them.
  void resize(std::size_t n);
  void resize_diagnostics(std::size_t n);

  std::size_t n = 0;                         ///< grid points per side
  std::vector<Cplx> psi;                     // streamfunction, both levels
  std::vector<Cplx> duh, dvh, dtx, dty;      // derivative half-spectra
  std::vector<Cplx> jac;                     // Jacobian half-spectrum
  std::vector<double> gu, gv, gtx, gty, gj;  // grid-space Jacobian fields
  std::vector<Cplx> k1, k2, k3, k4, stage, spec;  // RK4 stages (2 n(n/2+1) each)
  std::vector<Cplx> spec2, psi2, wutil;      // diagnostics (ke/cfl/init)
  std::vector<double> gutil;
};

/// Per-thread workspace for grid size n, grown lazily and cached for the
/// thread's lifetime. Backs the workspace-less SqgModel overloads.
SqgWorkspace& tls_workspace(std::size_t n);

/// Scratch for one in-flight *batched* integration of up to `m` members:
/// the per-member RK4 half-spectrum state plus the batched tendency fields
/// every member of the block shares one fused transform sweep over.
/// Stepping performs no heap allocation once sized.
struct SqgBatchWorkspace {
  SqgBatchWorkspace() = default;
  SqgBatchWorkspace(std::size_t n, std::size_t m) { resize(n, m); }
  void resize(std::size_t n, std::size_t m);

  std::size_t n = 0;  ///< grid points per side
  std::size_t m = 0;  ///< member capacity of the block
  // Member-major RK4 state, m x 2 n(n/2+1) bins each.
  std::vector<Cplx> spec, stage, k1, k2, k3, k4;
  // Batched tendency scratch for one boundary level at a time:
  // m x n(n/2+1) spectral / m x n^2 grid-space fields.
  std::vector<Cplx> psi, duh, dvh, dtx, dty, jac;
  std::vector<double> gu, gv, gtx, gty, gj;
  // Pointer tables handed to the batched 2-D transforms.
  std::vector<const Cplx*> spec_ptrs;
  std::vector<Cplx*> out_ptrs;
  std::vector<const double*> grid_cptrs;
  std::vector<double*> grid_ptrs;
};

/// Per-thread batch workspace for grid size n and at least m members, grown
/// lazily and cached. Backs the workspace-less batched overloads.
SqgBatchWorkspace& tls_batch_workspace(std::size_t n, std::size_t m);

/// The SQG solver. State layout for the DA stack: grid-space theta, level 0
/// (z=0) then level 1 (z=H), row-major n x n each — i.e. the paper's
/// "64x64x2 mesh", dim = 2 n^2.
class SqgModel {
 public:
  explicit SqgModel(SqgConfig cfg);

  [[nodiscard]] const SqgConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t n() const { return cfg_.n; }
  [[nodiscard]] std::size_t dim() const { return 2 * cfg_.n * cfg_.n; }

  /// Size of the packed spectral state: two levels of n x (n/2+1) half
  /// spectra (Fft2D::forward_half layout, level 0 then level 1).
  [[nodiscard]] std::size_t spec_dim() const { return 2 * ns_; }
  /// Highest retained |wavenumber index| of the 2/3 dealias rule (n/3).
  [[nodiscard]] std::size_t kcut() const { return kcut_; }

  /// Advance grid-space state by `nsteps` RK4 steps of length cfg.dt.
  void step(std::span<double> theta_grid, int nsteps, SqgWorkspace& ws) const;
  void step(std::span<double> theta_grid, int nsteps = 1) const {
    step(theta_grid, nsteps, tls_workspace(cfg_.n));
  }

  /// Advance by (approximately) `seconds`, using ceil(seconds/dt) steps.
  void advance(std::span<double> theta_grid, double seconds, SqgWorkspace& ws) const;
  void advance(std::span<double> theta_grid, double seconds) const {
    advance(theta_grid, seconds, tls_workspace(cfg_.n));
  }

  /// Advance `count` member states (contiguous count x dim() block) by
  /// `nsteps` RK4 steps each. Members are processed in sub-blocks of
  /// cfg.batch_block; within a block every transform of the tendency runs
  /// batched across the members (one fused row/column sweep, shared
  /// twiddles and transposes — see Fft2D::*_half_pruned_batch) and the RK4
  /// combines run over the whole block's bins in one pass. Bitwise
  /// identical to `count` sequential step() calls for any block size,
  /// thread count or member partition.
  void step_batch(std::span<double> states, std::size_t count, int nsteps,
                  SqgBatchWorkspace& ws) const;
  void step_batch(std::span<double> states, std::size_t count, int nsteps = 1) const {
    step_batch(states, count, nsteps,
               tls_batch_workspace(cfg_.n, std::min(count, cfg_.batch_block)));
  }

  /// Batched advance(): ceil(seconds/dt) steps on each of `count` members.
  void advance_batch(std::span<double> states, std::size_t count, double seconds,
                     SqgBatchWorkspace& ws) const;
  void advance_batch(std::span<double> states, std::size_t count, double seconds) const {
    advance_batch(states, count, seconds,
                  tls_batch_workspace(cfg_.n, std::min(count, cfg_.batch_block)));
  }

  /// Random large-scale initial condition: iid spectral amplitudes confined
  /// to |k| <= k_peak with the given grid-space RMS amplitude.
  void random_init(std::span<double> theta_grid, rng::Rng& rng, double rms_amplitude, int k_peak,
                   SqgWorkspace& ws) const;
  void random_init(std::span<double> theta_grid, rng::Rng& rng, double rms_amplitude,
                   int k_peak = 4) const {
    random_init(theta_grid, rng, rms_amplitude, k_peak, tls_workspace(cfg_.n));
  }

  /// Isotropic kinetic-energy spectrum E(K) at a boundary level (0 or 1),
  /// binned by integer total wavenumber index; E = 0.5 K^2 |psi|^2.
  [[nodiscard]] std::vector<double> ke_spectrum(std::span<const double> theta_grid, int level,
                                                SqgWorkspace& ws) const;
  [[nodiscard]] std::vector<double> ke_spectrum(std::span<const double> theta_grid,
                                                int level) const {
    return ke_spectrum(theta_grid, level, tls_workspace(cfg_.n));
  }

  /// Total kinetic energy (both levels) per unit area.
  [[nodiscard]] double total_ke(std::span<const double> theta_grid, SqgWorkspace& ws) const;
  [[nodiscard]] double total_ke(std::span<const double> theta_grid) const {
    return total_ke(theta_grid, tls_workspace(cfg_.n));
  }

  /// Max |u| CFL number for the current state: max(|u|,|v|) * dt / dx.
  [[nodiscard]] double cfl(std::span<const double> theta_grid, SqgWorkspace& ws) const;
  [[nodiscard]] double cfl(std::span<const double> theta_grid) const {
    return cfl(theta_grid, tls_workspace(cfg_.n));
  }

  /// Analytic Eady growth rate [1/s] for zonal wavenumber index m (i.e.
  /// kx = 2*pi*m/L, ky = 0); zero when the wave is neutral. Used to verify
  /// the discrete dynamics against linear theory.
  [[nodiscard]] double eady_growth_rate(int m) const;

  /// Boundary tendency d(theta)/dt in half-spectral space (public for the
  /// step benches and tests; `out` must not alias `theta_spec`; both are
  /// spec_dim() long). `theta_spec` must live on the dealiased set, as
  /// produced by to_spectral — the output always does (the mask is baked
  /// into the combine tables).
  void tendency(std::span<const Cplx> theta_spec, std::span<Cplx> out, SqgWorkspace& ws) const;

  // --- spectral-space accessors used by tests -------------------------------
  // All spectral spans are spec_dim() long (two packed half spectra).
  // to_spectral truncates to the dealiased set; to_grid assumes its input is
  // so truncated (every spectrum the model produces is).
  void to_spectral(std::span<const double> theta_grid, std::span<Cplx> theta_spec) const;
  void to_grid(std::span<const Cplx> theta_spec, std::span<double> theta_grid) const;
  void invert(std::span<const Cplx> theta_spec, std::span<Cplx> psi_spec) const;

 private:
  void apply_hyperdiffusion(std::span<Cplx> theta_spec) const;
  /// Tendency for a block of `count` members (specs/outs: count x spec_dim()
  /// contiguous, member-major) with all transforms batched across the block.
  /// Per-member arithmetic is identical to tendency().
  void tendency_batch(std::span<const Cplx> specs, std::span<Cplx> outs, std::size_t count,
                      SqgBatchWorkspace& ws) const;

  SqgConfig cfg_;
  std::size_t nn_;               // n*n (one level, grid size)
  std::size_t nh_;               // n/2 + 1 (half-spectrum row length)
  std::size_t ns_;               // n*(n/2+1) (one level, spectral size)
  std::size_t kcut_;             // 2/3 dealias cutoff (n/3)
  fft::Fft2D fft_;
  // Operator tables, one entry per packed half-spectrum bin:
  std::vector<double> kx_, ky_, ksq_;        // wavenumbers (kx >= 0)
  std::vector<double> inv_kappa_;            // 1/kappa (0 at K=0)
  std::vector<double> inv_sinh_, inv_tanh_;  // 1/sinh(mu), 1/tanh(mu)
  std::vector<double> hyperdiff_;            // exp(-dt * rate(K)) per point
  // Pair-duplicated (table2[2p] == table2[2p+1]) copies of the real per-bin
  // tables above, matching the interleaved re/im layout the runtime-
  // dispatched pointwise kernels sweep over (simd/pointwise_kernels.hpp).
  std::vector<double> kx2_, ky2_, inv_kappa2_, inv_sinh2_, inv_tanh2_, hyperdiff2_;
  // Fused per-level combine tables (dealias mask folded in):
  // d(theta_l)/dt = op_theta_[l]*theta_l + op_psi_[l]*psi_l - J_l.
  std::vector<Cplx> op_theta_[2];            // -i kx Ubar_l - 1/t_diab
  std::vector<Cplx> op_psi_[2];              // i lambda kx (+ r K^2 at l=0)
  double ubar_[2];                           // basic-state zonal wind per level
  double lambda_;                            // shear U/H
};

/// ForecastModel adapter: advances the SQG state over one assimilation
/// window (`window_seconds`, e.g. 12 h in the paper's OSSE). Stateless apart
/// from the shared immutable model, so concurrent member forecasts are safe.
class SqgForecast final : public models::ForecastModel {
 public:
  SqgForecast(std::shared_ptr<const SqgModel> model, double window_seconds)
      : model_(std::move(model)), window_(window_seconds) {}

  [[nodiscard]] std::size_t dim() const override { return model_->dim(); }
  void forecast(std::span<double> state) override { model_->advance(state, window_); }
  void forecast_batch(std::span<double> states, std::size_t count) override {
    model_->advance_batch(states, count, window_);
  }
  [[nodiscard]] std::string name() const override { return "sqg"; }
  [[nodiscard]] bool concurrent_safe() const override { return true; }

  [[nodiscard]] const SqgModel& model() const { return *model_; }

 private:
  std::shared_ptr<const SqgModel> model_;
  double window_;
};

}  // namespace turbda::sqg
