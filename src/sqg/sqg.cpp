#include "sqg/sqg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "simd/pointwise_kernels.hpp"
#include "telemetry/trace.hpp"

namespace turbda::sqg {

namespace {

// Interleaved (re, im) double view of a complex buffer — the layout the
// runtime-dispatched pointwise kernels sweep over. Guaranteed well-defined
// for std::complex ([complex.numbers.general]).
inline double* dview(Cplx* p) { return reinterpret_cast<double*>(p); }
inline const double* dview(const Cplx* p) { return reinterpret_cast<const double*>(p); }

}  // namespace

void SqgWorkspace::resize(std::size_t grid_n) {
  n = grid_n;
  const std::size_t nn = grid_n * grid_n;
  const std::size_t ns = grid_n * (grid_n / 2 + 1);
  psi.resize(2 * ns);
  duh.resize(ns);
  dvh.resize(ns);
  dtx.resize(ns);
  dty.resize(ns);
  jac.resize(ns);
  gu.resize(nn);
  gv.resize(nn);
  gtx.resize(nn);
  gty.resize(nn);
  gj.resize(nn);
  k1.resize(2 * ns);
  k2.resize(2 * ns);
  k3.resize(2 * ns);
  k4.resize(2 * ns);
  stage.resize(2 * ns);
  spec.resize(2 * ns);
  // Diagnostics buffers (spec2/psi2/wutil/gutil) stay empty until a
  // diagnostics entry point asks for them.
}

void SqgWorkspace::resize_diagnostics(std::size_t grid_n) {
  if (n != grid_n) resize(grid_n);
  const std::size_t nn = grid_n * grid_n;
  const std::size_t ns = grid_n * (grid_n / 2 + 1);
  spec2.resize(2 * ns);
  psi2.resize(2 * ns);
  wutil.resize(ns);
  gutil.resize(nn);
}

SqgWorkspace& tls_workspace(std::size_t n) {
  thread_local std::vector<std::unique_ptr<SqgWorkspace>> cache;
  for (auto& w : cache)
    if (w->n == n) return *w;
  cache.push_back(std::make_unique<SqgWorkspace>(n));
  return *cache.back();
}

void SqgBatchWorkspace::resize(std::size_t grid_n, std::size_t members) {
  n = grid_n;
  m = members;
  const std::size_t nn = grid_n * grid_n;
  const std::size_t ns = grid_n * (grid_n / 2 + 1);
  for (auto* v : {&spec, &stage, &k1, &k2, &k3, &k4}) v->resize(m * 2 * ns);
  for (auto* v : {&psi, &duh, &dvh, &dtx, &dty, &jac}) v->resize(m * ns);
  for (auto* v : {&gu, &gv, &gtx, &gty, &gj}) v->resize(m * nn);
  spec_ptrs.reserve(4 * m);
  out_ptrs.reserve(4 * m);
  grid_cptrs.reserve(4 * m);
  grid_ptrs.reserve(4 * m);
}

SqgBatchWorkspace& tls_batch_workspace(std::size_t n, std::size_t m) {
  thread_local std::vector<std::unique_ptr<SqgBatchWorkspace>> cache;
  for (auto& w : cache)
    if (w->n == n) {
      if (w->m < m) w->resize(n, m);
      return *w;
    }
  cache.push_back(std::make_unique<SqgBatchWorkspace>(n, m));
  return *cache.back();
}

SqgModel::SqgModel(SqgConfig cfg)
    : cfg_(cfg),
      nn_(cfg.n * cfg.n),
      nh_(cfg.n / 2 + 1),
      ns_(cfg.n * (cfg.n / 2 + 1)),
      kcut_(cfg.n / 3),
      fft_(cfg.n, cfg.n) {
  TURBDA_REQUIRE(is_pow2(cfg_.n) && cfg_.n >= 2,
                 "SQG grid size must be a power of two (>= 2)");
  TURBDA_REQUIRE(cfg_.diff_order > 0 && cfg_.diff_order % 2 == 0, "diff_order must be even");
  TURBDA_REQUIRE(cfg_.dt > 0 && cfg_.L > 0 && cfg_.H > 0 && cfg_.f > 0 && cfg_.nsq > 0,
                 "bad SQG configuration");
  fft_.set_max_threads(cfg_.n_fft_threads);

  kx_.resize(ns_);
  ky_.resize(ns_);
  ksq_.resize(ns_);
  inv_kappa_.resize(ns_);
  inv_sinh_.resize(ns_);
  inv_tanh_.resize(ns_);
  hyperdiff_.resize(ns_);

  lambda_ = cfg_.U / cfg_.H;
  if (cfg_.symmetric_shear) {
    ubar_[0] = -0.5 * cfg_.U;
    ubar_[1] = +0.5 * cfg_.U;
  } else {
    ubar_[0] = 0.0;
    ubar_[1] = cfg_.U;
  }
  op_theta_[0].resize(ns_);
  op_theta_[1].resize(ns_);
  op_psi_[0].resize(ns_);
  op_psi_[1].resize(ns_);

  const double bigN = std::sqrt(cfg_.nsq);
  const double inv_tdiab = (cfg_.t_diab > 0.0) ? 1.0 / cfg_.t_diab : 0.0;
  const auto ni = static_cast<long>(cfg_.n);
  const auto kcut = static_cast<long>(kcut_);  // 2/3 dealiasing rule
  double kmax_retained = 0.0;

  for (long jy = 0; jy < ni; ++jy) {
    const long my = (jy <= ni / 2) ? jy : jy - ni;
    for (long mx = 0; mx <= ni / 2; ++mx) {
      const std::size_t p =
          static_cast<std::size_t>(jy) * nh_ + static_cast<std::size_t>(mx);
      kx_[p] = kTwoPi * static_cast<double>(mx) / cfg_.L;
      ky_[p] = kTwoPi * static_cast<double>(my) / cfg_.L;
      ksq_[p] = kx_[p] * kx_[p] + ky_[p] * ky_[p];
      const bool retained = mx <= kcut && std::labs(my) <= kcut;
      if (retained) kmax_retained = std::max(kmax_retained, std::sqrt(ksq_[p]));

      if (ksq_[p] > 0.0) {
        const double bigK = std::sqrt(ksq_[p]);
        const double kappa = bigN * bigK / cfg_.f;
        const double mu = kappa * cfg_.H;
        inv_kappa_[p] = 1.0 / kappa;
        // 1/sinh underflows gracefully for large mu; tanh -> 1.
        inv_sinh_[p] = (mu > 300.0) ? 0.0 : 1.0 / std::sinh(mu);
        inv_tanh_[p] = 1.0 / std::tanh(mu);
      } else {
        inv_kappa_[p] = 0.0;
        inv_sinh_[p] = 0.0;
        inv_tanh_[p] = 0.0;
      }

      // Fused combine tables: every linear term of the tendency (mean-flow
      // advection, meridional basic-state gradient, thermal relaxation,
      // Ekman pumping) collapses into one complex coefficient per bin and
      // level, with the dealias mask folded in — the combine loop carries
      // no branches.
      const double mask = retained ? 1.0 : 0.0;
      for (int l = 0; l < 2; ++l) {
        op_theta_[l][p] = mask * Cplx(-inv_tdiab, -kx_[p] * ubar_[l]);
        const double ekman = (l == 0) ? cfg_.r_ekman * ksq_[p] : 0.0;
        op_psi_[l][p] = mask * Cplx(ekman, lambda_ * kx_[p]);
      }
    }
  }

  // Implicit hyperdiffusion: decay(K) = exp(-dt/efold * (K/Kmax)^order),
  // where Kmax is the largest retained (dealiased) wavenumber.
  for (std::size_t p = 0; p < ns_; ++p) {
    const double kn = (kmax_retained > 0.0) ? std::sqrt(ksq_[p]) / kmax_retained : 0.0;
    const double rate = std::pow(kn, cfg_.diff_order) / cfg_.diff_efold;
    hyperdiff_[p] = std::exp(-cfg_.dt * rate);
  }

  // Pair-duplicate the real per-bin tables onto the interleaved re/im layout
  // the pointwise kernels sweep over (one coefficient per double lane).
  const auto dup2 = [this](const std::vector<double>& src, std::vector<double>& dst) {
    dst.resize(2 * ns_);
    for (std::size_t p = 0; p < ns_; ++p) dst[2 * p] = dst[2 * p + 1] = src[p];
  };
  dup2(kx_, kx2_);
  dup2(ky_, ky2_);
  dup2(inv_kappa_, inv_kappa2_);
  dup2(inv_sinh_, inv_sinh2_);
  dup2(inv_tanh_, inv_tanh2_);
  dup2(hyperdiff_, hyperdiff2_);
}

void SqgModel::to_spectral(std::span<const double> theta_grid, std::span<Cplx> theta_spec) const {
  TURBDA_REQUIRE(theta_grid.size() == dim() && theta_spec.size() == spec_dim(),
                 "to_spectral: wrong buffer sizes");
  // The pruned forward keeps the state on the dealiased set (truncated
  // dynamics) as a side effect of skipping the truncated column transforms.
  for (std::size_t l = 0; l < 2; ++l) {
    fft_.forward_half_pruned(theta_grid.subspan(l * nn_, nn_), theta_spec.subspan(l * ns_, ns_),
                             kcut_);
  }
}

void SqgModel::to_grid(std::span<const Cplx> theta_spec, std::span<double> theta_grid) const {
  TURBDA_REQUIRE(theta_grid.size() == dim() && theta_spec.size() == spec_dim(),
                 "to_grid: wrong buffer sizes");
  for (std::size_t l = 0; l < 2; ++l) {
    fft_.inverse_half_pruned(theta_spec.subspan(l * ns_, ns_), theta_grid.subspan(l * nn_, nn_),
                             kcut_);
  }
}

void SqgModel::invert(std::span<const Cplx> theta_spec, std::span<Cplx> psi_spec) const {
  TURBDA_REQUIRE(theta_spec.size() == spec_dim() && psi_spec.size() == spec_dim(),
                 "invert: wrong buffer sizes");
  const Cplx* t0 = theta_spec.data();
  const Cplx* t1 = theta_spec.data() + ns_;
  Cplx* p0 = psi_spec.data();
  Cplx* p1 = psi_spec.data() + ns_;
  for (std::size_t p = 0; p < ns_; ++p) {
    p0[p] = inv_kappa_[p] * (t1[p] * inv_sinh_[p] - t0[p] * inv_tanh_[p]);
    p1[p] = inv_kappa_[p] * (t1[p] * inv_tanh_[p] - t0[p] * inv_sinh_[p]);
  }
}

void SqgModel::tendency(std::span<const Cplx> theta_spec, std::span<Cplx> out,
                        SqgWorkspace& ws) const {
  TURBDA_REQUIRE(theta_spec.size() == spec_dim() && out.size() == spec_dim(),
                 "tendency: wrong buffer sizes");
  if (ws.n != cfg_.n) ws.resize(cfg_.n);
  const auto& pk = simd::active_pointwise_kernels();
  const Cplx* t0 = theta_spec.data();
  const Cplx* t1 = theta_spec.data() + ns_;

  for (std::size_t l = 0; l < 2; ++l) {
    const Cplx* th = theta_spec.data() + l * ns_;
    Cplx* ps = ws.psi.data() + l * ns_;

    // Pass 1 (fused, branch-free): boundary inversion plus the four
    // derivative half-spectra in a single traversal (u = -psi_y, v = psi_x),
    // as one runtime-dispatched Vec sweep over the interleaved pairs.
    const double* cA2 = (l == 0) ? inv_sinh2_.data() : inv_tanh2_.data();
    const double* cB2 = (l == 0) ? inv_tanh2_.data() : inv_sinh2_.data();
    pk.sqg_pass1(dview(ps), dview(ws.duh.data()), dview(ws.dvh.data()), dview(ws.dtx.data()),
                 dview(ws.dty.data()), dview(t0), dview(t1), dview(th), inv_kappa2_.data(), cA2,
                 cB2, kx2_.data(), ky2_.data(), 2 * ns_);

    // Pruned c2r transforms to grid space (the state is dealiased, so the
    // truncated columns are zero and their transforms are skipped).
    fft_.inverse_half_pruned(ws.duh, ws.gu, kcut_);
    fft_.inverse_half_pruned(ws.dvh, ws.gv, kcut_);
    fft_.inverse_half_pruned(ws.dtx, ws.gtx, kcut_);
    fft_.inverse_half_pruned(ws.dty, ws.gty, kcut_);

    // Nonlinear advection J(psi, theta) = u theta_x + v theta_y; the pruned
    // r2c both transforms and 2/3-truncates it in one go.
    pk.sqg_jacobian(ws.gj.data(), ws.gu.data(), ws.gtx.data(), ws.gv.data(), ws.gty.data(), nn_);
    fft_.forward_half_pruned(ws.gj, ws.jac, kcut_);

    // Pass 2 (fused, branch-free combine): all linear physics lives in the
    // precomputed per-level tables; the Jacobian arrives already dealiased.
    pk.sqg_combine(dview(out.data() + l * ns_), dview(th), dview(ps), dview(ws.jac.data()),
                   dview(op_theta_[l].data()), dview(op_psi_[l].data()), 2 * ns_);
  }
}

void SqgModel::apply_hyperdiffusion(std::span<Cplx> theta_spec) const {
  const auto& pk = simd::active_pointwise_kernels();
  for (std::size_t l = 0; l < 2; ++l)
    pk.mul_inplace(dview(theta_spec.data() + l * ns_), hyperdiff2_.data(), 2 * ns_);
}

void SqgModel::step(std::span<double> theta_grid, int nsteps, SqgWorkspace& ws) const {
  if (ws.n != cfg_.n) ws.resize(cfg_.n);
  to_spectral(theta_grid, ws.spec);
  const auto& pk = simd::active_pointwise_kernels();
  const double dt = cfg_.dt;
  const std::size_t nd = 2 * (2 * ns_);  // doubles in one spectral state
  double* spec = dview(ws.spec.data());
  double* stage = dview(ws.stage.data());
  for (int s = 0; s < nsteps; ++s) {
    tendency(ws.spec, ws.k1, ws);
    pk.add_scaled(stage, spec, dview(ws.k1.data()), nd, 0.5 * dt);
    tendency(ws.stage, ws.k2, ws);
    pk.add_scaled(stage, spec, dview(ws.k2.data()), nd, 0.5 * dt);
    tendency(ws.stage, ws.k3, ws);
    pk.add_scaled(stage, spec, dview(ws.k3.data()), nd, dt);
    tendency(ws.stage, ws.k4, ws);
    pk.rk4_update(spec, dview(ws.k1.data()), dview(ws.k2.data()), dview(ws.k3.data()),
                  dview(ws.k4.data()), nd, dt / 6.0);
    apply_hyperdiffusion(ws.spec);
  }
  to_grid(ws.spec, theta_grid);
}

void SqgModel::advance(std::span<double> theta_grid, double seconds, SqgWorkspace& ws) const {
  const int nsteps = static_cast<int>(std::ceil(seconds / cfg_.dt - 1e-9));
  if (nsteps > 0) step(theta_grid, nsteps, ws);
}

// ---------------------------------------------------------------------------
// Batched member stepping: a block of members advances together, with every
// spectral transform of the tendency fused across the block (shared
// transposes, one twiddle-table walk per sweep) and the RK4 combines running
// over the block's bins in one pass. Per-member arithmetic is identical to
// the scalar step()/tendency() path — the bitwise batch == sequential
// invariant the forecast drivers rely on (test-enforced).
// ---------------------------------------------------------------------------

void SqgModel::tendency_batch(std::span<const Cplx> specs, std::span<Cplx> outs,
                              std::size_t count, SqgBatchWorkspace& ws) const {
  const std::size_t ns = ns_;
  const auto& pk = simd::active_pointwise_kernels();
  for (std::size_t l = 0; l < 2; ++l) {
    const double* cA2 = (l == 0) ? inv_sinh2_.data() : inv_tanh2_.data();
    const double* cB2 = (l == 0) ? inv_tanh2_.data() : inv_sinh2_.data();
    // Pass 1 per member (fused inversion + derivatives; the same kernel call
    // as tendency()), writing the block's four derivative half-spectra.
    for (std::size_t b = 0; b < count; ++b) {
      const Cplx* t0 = specs.data() + b * 2 * ns;
      pk.sqg_pass1(dview(ws.psi.data() + b * ns), dview(ws.duh.data() + b * ns),
                   dview(ws.dvh.data() + b * ns), dview(ws.dtx.data() + b * ns),
                   dview(ws.dty.data() + b * ns), dview(t0), dview(t0 + ns),
                   dview(t0 + l * ns), inv_kappa2_.data(), cA2, cB2, kx2_.data(), ky2_.data(),
                   2 * ns);
    }

    // All 4 x count c2r transforms of the block as one fused batch.
    ws.spec_ptrs.clear();
    ws.grid_ptrs.clear();
    for (std::size_t b = 0; b < count; ++b) {
      ws.spec_ptrs.push_back(ws.duh.data() + b * ns);
      ws.grid_ptrs.push_back(ws.gu.data() + b * nn_);
      ws.spec_ptrs.push_back(ws.dvh.data() + b * ns);
      ws.grid_ptrs.push_back(ws.gv.data() + b * nn_);
      ws.spec_ptrs.push_back(ws.dtx.data() + b * ns);
      ws.grid_ptrs.push_back(ws.gtx.data() + b * nn_);
      ws.spec_ptrs.push_back(ws.dty.data() + b * ns);
      ws.grid_ptrs.push_back(ws.gty.data() + b * nn_);
    }
    fft_.inverse_half_pruned_batch(ws.spec_ptrs, ws.grid_ptrs, kcut_);

    // Nonlinear advection in grid space, then one batched dealiasing r2c.
    for (std::size_t b = 0; b < count; ++b) {
      pk.sqg_jacobian(ws.gj.data() + b * nn_, ws.gu.data() + b * nn_, ws.gtx.data() + b * nn_,
                      ws.gv.data() + b * nn_, ws.gty.data() + b * nn_, nn_);
    }
    ws.grid_cptrs.clear();
    ws.out_ptrs.clear();
    for (std::size_t b = 0; b < count; ++b) {
      ws.grid_cptrs.push_back(ws.gj.data() + b * nn_);
      ws.out_ptrs.push_back(ws.jac.data() + b * ns);
    }
    fft_.forward_half_pruned_batch(ws.grid_cptrs, ws.out_ptrs, kcut_);

    // Pass 2 per member (fused combine; the same kernel call as tendency()).
    for (std::size_t b = 0; b < count; ++b) {
      pk.sqg_combine(dview(outs.data() + b * 2 * ns + l * ns),
                     dview(specs.data() + b * 2 * ns + l * ns), dview(ws.psi.data() + b * ns),
                     dview(ws.jac.data() + b * ns), dview(op_theta_[l].data()),
                     dview(op_psi_[l].data()), 2 * ns);
    }
  }
}

void SqgModel::step_batch(std::span<double> states, std::size_t count, int nsteps,
                          SqgBatchWorkspace& ws) const {
  TURBDA_SPAN("sqg.step_batch");
  TURBDA_REQUIRE(states.size() == count * dim(),
                 "step_batch: state block size " << states.size() << " != " << count << " x "
                                                 << dim());
  if (count == 0) return;
  const std::size_t block = std::min(count, std::max<std::size_t>(cfg_.batch_block, 1));
  if (ws.n != cfg_.n || ws.m < block) ws.resize(cfg_.n, block);
  const double dt = cfg_.dt;

  for (std::size_t b0 = 0; b0 < count; b0 += block) {
    const std::size_t nb = std::min(block, count - b0);
    // Batched to_spectral: both levels of every member in one sweep.
    ws.grid_cptrs.clear();
    ws.out_ptrs.clear();
    for (std::size_t b = 0; b < nb; ++b)
      for (std::size_t l = 0; l < 2; ++l) {
        ws.grid_cptrs.push_back(states.data() + (b0 + b) * dim() + l * nn_);
        ws.out_ptrs.push_back(ws.spec.data() + b * 2 * ns_ + l * ns_);
      }
    fft_.forward_half_pruned_batch(ws.grid_cptrs, ws.out_ptrs, kcut_);

    const auto& pk = simd::active_pointwise_kernels();
    const std::size_t nd = 2 * (nb * 2 * ns_);  // doubles in the block's state
    double* spec = dview(ws.spec.data());
    double* stage = dview(ws.stage.data());
    for (int s = 0; s < nsteps; ++s) {
      tendency_batch(ws.spec, ws.k1, nb, ws);
      pk.add_scaled(stage, spec, dview(ws.k1.data()), nd, 0.5 * dt);
      tendency_batch(ws.stage, ws.k2, nb, ws);
      pk.add_scaled(stage, spec, dview(ws.k2.data()), nd, 0.5 * dt);
      tendency_batch(ws.stage, ws.k3, nb, ws);
      pk.add_scaled(stage, spec, dview(ws.k3.data()), nd, dt);
      tendency_batch(ws.stage, ws.k4, nb, ws);
      pk.rk4_update(spec, dview(ws.k1.data()), dview(ws.k2.data()), dview(ws.k3.data()),
                    dview(ws.k4.data()), nd, dt / 6.0);
      for (std::size_t b = 0; b < nb; ++b)
        apply_hyperdiffusion(std::span<Cplx>(ws.spec.data() + b * 2 * ns_, 2 * ns_));
    }

    // Batched to_grid.
    ws.spec_ptrs.clear();
    ws.grid_ptrs.clear();
    for (std::size_t b = 0; b < nb; ++b)
      for (std::size_t l = 0; l < 2; ++l) {
        ws.spec_ptrs.push_back(ws.spec.data() + b * 2 * ns_ + l * ns_);
        ws.grid_ptrs.push_back(states.data() + (b0 + b) * dim() + l * nn_);
      }
    fft_.inverse_half_pruned_batch(ws.spec_ptrs, ws.grid_ptrs, kcut_);
  }
}

void SqgModel::advance_batch(std::span<double> states, std::size_t count, double seconds,
                             SqgBatchWorkspace& ws) const {
  const int nsteps = static_cast<int>(std::ceil(seconds / cfg_.dt - 1e-9));
  if (nsteps > 0) step_batch(states, count, nsteps, ws);
}

void SqgModel::random_init(std::span<double> theta_grid, rng::Rng& rng, double rms_amplitude,
                           int k_peak, SqgWorkspace& ws) const {
  TURBDA_REQUIRE(theta_grid.size() == dim(), "random_init: wrong state size");
  if (ws.n != cfg_.n || ws.gutil.size() != nn_) ws.resize_diagnostics(cfg_.n);
  // White noise -> spectral ring filter |m| <= k_peak -> rescale. Doing the
  // filtering via a real grid round-trip keeps the field exactly real.
  std::span<double> noise(ws.gutil.data(), nn_);
  std::span<Cplx> spec(ws.wutil.data(), ns_);
  const auto ni = static_cast<long>(cfg_.n);
  for (std::size_t l = 0; l < 2; ++l) {
    rng.fill_gaussian(noise);
    fft_.forward_half(noise, spec);
    for (long jy = 0; jy < ni; ++jy) {
      const long my = (jy <= ni / 2) ? jy : jy - ni;
      for (long mx = 0; mx <= ni / 2; ++mx) {
        const std::size_t p =
            static_cast<std::size_t>(jy) * nh_ + static_cast<std::size_t>(mx);
        const double mm = std::sqrt(static_cast<double>(mx * mx + my * my));
        if (mm > k_peak || mm == 0.0) spec[p] = Cplx(0.0, 0.0);
      }
    }
    auto level = theta_grid.subspan(l * nn_, nn_);
    fft_.inverse_half(spec, level);
    const double r = rms(level);
    if (r > 0.0) {
      const double scale = rms_amplitude / r;
      for (double& x : level) x *= scale;
    }
  }
}

std::vector<double> SqgModel::ke_spectrum(std::span<const double> theta_grid, int level,
                                          SqgWorkspace& ws) const {
  TURBDA_REQUIRE(level == 0 || level == 1, "level must be 0 or 1");
  if (ws.n != cfg_.n || ws.gutil.size() != nn_) ws.resize_diagnostics(cfg_.n);
  to_spectral(theta_grid, ws.spec2);
  invert(ws.spec2, ws.psi2);
  const Cplx* ps = ws.psi2.data() + static_cast<std::size_t>(level) * ns_;

  const auto ni = static_cast<long>(cfg_.n);
  const long h = ni / 2;
  std::vector<double> bins(cfg_.n / 2 + 1, 0.0);
  const double norm = 1.0 / (static_cast<double>(nn_) * static_cast<double>(nn_));
  for (long jy = 0; jy < ni; ++jy) {
    const long my = (jy <= h) ? jy : jy - ni;
    for (long mx = 0; mx <= h; ++mx) {
      const std::size_t p =
          static_cast<std::size_t>(jy) * nh_ + static_cast<std::size_t>(mx);
      const auto bin =
          static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(mx * mx + my * my))));
      if (bin >= bins.size()) continue;
      // Interior columns stand in for themselves and their conjugate mirror.
      const double w = (mx == 0 || mx == h) ? 1.0 : 2.0;
      bins[bin] += w * 0.5 * ksq_[p] * std::norm(ps[p]) * norm;
    }
  }
  return bins;
}

double SqgModel::total_ke(std::span<const double> theta_grid, SqgWorkspace& ws) const {
  if (ws.n != cfg_.n || ws.gutil.size() != nn_) ws.resize_diagnostics(cfg_.n);
  to_spectral(theta_grid, ws.spec2);
  invert(ws.spec2, ws.psi2);
  double e = 0.0;
  const std::size_t h = cfg_.n / 2;
  const double norm = 1.0 / (static_cast<double>(nn_) * static_cast<double>(nn_));
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t p = 0; p < ns_; ++p) {
      const std::size_t mx = p % nh_;
      const double w = (mx == 0 || mx == h) ? 1.0 : 2.0;
      e += w * 0.5 * ksq_[p] * std::norm(ws.psi2[l * ns_ + p]) * norm;
    }
  return e;
}

double SqgModel::cfl(std::span<const double> theta_grid, SqgWorkspace& ws) const {
  if (ws.n != cfg_.n || ws.gutil.size() != nn_) ws.resize_diagnostics(cfg_.n);
  to_spectral(theta_grid, ws.spec2);
  invert(ws.spec2, ws.psi2);
  std::span<Cplx> w(ws.wutil.data(), ns_);
  std::span<double> g(ws.gutil.data(), nn_);
  double umax = 0.0;
  for (std::size_t l = 0; l < 2; ++l) {
    const Cplx* ps = ws.psi2.data() + l * ns_;
    for (std::size_t p = 0; p < ns_; ++p)
      w[p] = Cplx(ky_[p] * ps[p].imag(), -ky_[p] * ps[p].real());  // -i ky psi
    fft_.inverse_half_pruned(w, g, kcut_);
    for (double x : g) umax = std::max(umax, std::abs(x + ubar_[l]));
    for (std::size_t p = 0; p < ns_; ++p)
      w[p] = Cplx(-kx_[p] * ps[p].imag(), kx_[p] * ps[p].real());  // +i kx psi
    fft_.inverse_half_pruned(w, g, kcut_);
    for (double x : g) umax = std::max(umax, std::abs(x));
  }
  const double dx = cfg_.L / static_cast<double>(cfg_.n);
  return umax * cfg_.dt / dx;
}

double SqgModel::eady_growth_rate(int m) const {
  TURBDA_REQUIRE(m >= 1, "wavenumber index must be >= 1");
  const double k = kTwoPi * static_cast<double>(m) / cfg_.L;
  const double kappa = std::sqrt(cfg_.nsq) * k / cfg_.f;
  const double mu = kappa * cfg_.H;
  const double lam_over_kappa = lambda_ / kappa;  // = U/mu
  const double a00 = -ubar_[0] - lam_over_kappa / std::tanh(mu);
  const double a01 = +lam_over_kappa / std::sinh(mu);
  const double a10 = -lam_over_kappa / std::sinh(mu);
  const double a11 = -ubar_[1] + lam_over_kappa / std::tanh(mu);
  // theta' ~ exp(i k a t) with a an eigenvalue of A; growth = -k Im(a).
  const double half_tr = 0.5 * (a00 + a11);
  const double det = a00 * a11 - a01 * a10;
  const double disc = half_tr * half_tr - det;
  return (disc < 0.0) ? k * std::sqrt(-disc) : 0.0;
}

}  // namespace turbda::sqg
