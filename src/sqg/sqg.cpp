#include "sqg/sqg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace turbda::sqg {

SqgModel::SqgModel(SqgConfig cfg) : cfg_(cfg), nn_(cfg.n * cfg.n), fft_(cfg.n, cfg.n) {
  TURBDA_REQUIRE(is_pow2(cfg_.n), "SQG grid size must be a power of two");
  TURBDA_REQUIRE(cfg_.diff_order > 0 && cfg_.diff_order % 2 == 0, "diff_order must be even");
  TURBDA_REQUIRE(cfg_.dt > 0 && cfg_.L > 0 && cfg_.H > 0 && cfg_.f > 0 && cfg_.nsq > 0,
                 "bad SQG configuration");

  const std::size_t n = cfg_.n;
  kx_.resize(nn_);
  ky_.resize(nn_);
  ksq_.resize(nn_);
  inv_kappa_.resize(nn_);
  inv_sinh_.resize(nn_);
  inv_tanh_.resize(nn_);
  hyperdiff_.resize(nn_);
  dealias_.resize(nn_);

  const double bigN = std::sqrt(cfg_.nsq);
  const auto ni = static_cast<long>(n);
  const long kcut = ni / 3;  // 2/3 dealiasing rule
  double kmax_retained = 0.0;

  for (long jy = 0; jy < ni; ++jy) {
    const long my = (jy <= ni / 2) ? jy : jy - ni;
    for (long jx = 0; jx < ni; ++jx) {
      const long mx = (jx <= ni / 2) ? jx : jx - ni;
      const std::size_t p = static_cast<std::size_t>(jy) * n + static_cast<std::size_t>(jx);
      kx_[p] = kTwoPi * static_cast<double>(mx) / cfg_.L;
      ky_[p] = kTwoPi * static_cast<double>(my) / cfg_.L;
      ksq_[p] = kx_[p] * kx_[p] + ky_[p] * ky_[p];
      dealias_[p] = (std::labs(mx) <= kcut && std::labs(my) <= kcut) ? 1 : 0;
      if (dealias_[p]) kmax_retained = std::max(kmax_retained, std::sqrt(ksq_[p]));

      if (ksq_[p] > 0.0) {
        const double bigK = std::sqrt(ksq_[p]);
        const double kappa = bigN * bigK / cfg_.f;
        const double mu = kappa * cfg_.H;
        inv_kappa_[p] = 1.0 / kappa;
        // 1/sinh underflows gracefully for large mu; tanh -> 1.
        inv_sinh_[p] = (mu > 300.0) ? 0.0 : 1.0 / std::sinh(mu);
        inv_tanh_[p] = 1.0 / std::tanh(mu);
      } else {
        inv_kappa_[p] = 0.0;
        inv_sinh_[p] = 0.0;
        inv_tanh_[p] = 0.0;
      }
    }
  }

  // Implicit hyperdiffusion: decay(K) = exp(-dt/efold * (K/Kmax)^order),
  // where Kmax is the largest retained (dealiased) wavenumber.
  for (std::size_t p = 0; p < nn_; ++p) {
    const double kn = (kmax_retained > 0.0) ? std::sqrt(ksq_[p]) / kmax_retained : 0.0;
    const double rate = std::pow(kn, cfg_.diff_order) / cfg_.diff_efold;
    hyperdiff_[p] = std::exp(-cfg_.dt * rate);
  }

  lambda_ = cfg_.U / cfg_.H;
  if (cfg_.symmetric_shear) {
    ubar_[0] = -0.5 * cfg_.U;
    ubar_[1] = +0.5 * cfg_.U;
  } else {
    ubar_[0] = 0.0;
    ubar_[1] = cfg_.U;
  }

  psi_.resize(2 * nn_);
  work_.resize(nn_);
  jac_.resize(nn_);
  gu_.resize(nn_);
  gv_.resize(nn_);
  gtx_.resize(nn_);
  gty_.resize(nn_);
  gj_.resize(nn_);
  k1_.resize(2 * nn_);
  k2_.resize(2 * nn_);
  k3_.resize(2 * nn_);
  k4_.resize(2 * nn_);
  stage_.resize(2 * nn_);
  spec_.resize(2 * nn_);
}

void SqgModel::to_spectral(std::span<const double> theta_grid, std::span<Cplx> theta_spec) const {
  TURBDA_REQUIRE(theta_grid.size() == dim() && theta_spec.size() == dim(),
                 "to_spectral: wrong buffer sizes");
  for (int l = 0; l < 2; ++l) {
    fft_.forward_real(theta_grid.subspan(static_cast<std::size_t>(l) * nn_, nn_),
                      theta_spec.subspan(static_cast<std::size_t>(l) * nn_, nn_));
  }
  // Keep state on the dealiased set (truncated dynamics).
  for (int l = 0; l < 2; ++l) {
    Cplx* s = theta_spec.data() + static_cast<std::size_t>(l) * nn_;
    for (std::size_t p = 0; p < nn_; ++p)
      if (!dealias_[p]) s[p] = Cplx(0.0, 0.0);
  }
}

void SqgModel::to_grid(std::span<const Cplx> theta_spec, std::span<double> theta_grid) const {
  TURBDA_REQUIRE(theta_grid.size() == dim() && theta_spec.size() == dim(),
                 "to_grid: wrong buffer sizes");
  for (int l = 0; l < 2; ++l) {
    fft_.inverse_real(theta_spec.subspan(static_cast<std::size_t>(l) * nn_, nn_),
                      theta_grid.subspan(static_cast<std::size_t>(l) * nn_, nn_));
  }
}

void SqgModel::invert(std::span<const Cplx> theta_spec, std::span<Cplx> psi_spec) const {
  TURBDA_REQUIRE(theta_spec.size() == 2 * nn_ && psi_spec.size() == 2 * nn_,
                 "invert: wrong buffer sizes");
  const Cplx* t0 = theta_spec.data();
  const Cplx* t1 = theta_spec.data() + nn_;
  Cplx* p0 = psi_spec.data();
  Cplx* p1 = psi_spec.data() + nn_;
  for (std::size_t p = 0; p < nn_; ++p) {
    p0[p] = inv_kappa_[p] * (t1[p] * inv_sinh_[p] - t0[p] * inv_tanh_[p]);
    p1[p] = inv_kappa_[p] * (t1[p] * inv_tanh_[p] - t0[p] * inv_sinh_[p]);
  }
}

void SqgModel::tendency(std::span<const Cplx> theta_spec, std::span<Cplx> out) const {
  invert(theta_spec, psi_);
  const double inv_tdiab = (cfg_.t_diab > 0.0) ? 1.0 / cfg_.t_diab : 0.0;

  for (std::size_t l = 0; l < 2; ++l) {
    const Cplx* th = theta_spec.data() + l * nn_;
    const Cplx* ps = psi_.data() + l * nn_;
    Cplx* dth = out.data() + l * nn_;
    const Cplx iu(0.0, 1.0);

    // Grid-space velocities and theta gradients: u = -psi_y, v = psi_x.
    // Two Hermitian spectra share one inverse transform: ifft(U + iV) has
    // the real inverse of U in its real part and of V in its imaginary part.
    //   u + i v: uhat + i*vhat = -psi_hat * (kx + i ky)
    //   tx + i ty: txhat + i*tyhat = theta_hat * (-ky + i kx)
    for (std::size_t p = 0; p < nn_; ++p) work_[p] = -ps[p] * Cplx(kx_[p], ky_[p]);
    fft_.inverse(work_);
    for (std::size_t p = 0; p < nn_; ++p) {
      gu_[p] = work_[p].real();
      gv_[p] = work_[p].imag();
    }
    for (std::size_t p = 0; p < nn_; ++p) work_[p] = th[p] * Cplx(-ky_[p], kx_[p]);
    fft_.inverse(work_);
    for (std::size_t p = 0; p < nn_; ++p) {
      gtx_[p] = work_[p].real();
      gty_[p] = work_[p].imag();
    }

    // Nonlinear advection J(psi, theta) = u theta_x + v theta_y.
    for (std::size_t p = 0; p < nn_; ++p) gj_[p] = gu_[p] * gtx_[p] + gv_[p] * gty_[p];
    fft_.forward_real(gj_, jac_);

    const double ub = ubar_[l];
    for (std::size_t p = 0; p < nn_; ++p) {
      Cplx t = dealias_[p] ? -jac_[p] : Cplx(0.0, 0.0);  // -J, dealiased
      t -= iu * kx_[p] * ub * th[p];                     // mean-flow advection
      t += lambda_ * iu * kx_[p] * ps[p];                // -v * d(thetabar)/dy
      t -= inv_tdiab * th[p];                            // thermal relaxation
      if (l == 0 && cfg_.r_ekman != 0.0) t += cfg_.r_ekman * ksq_[p] * ps[p];  // Ekman pumping
      dth[p] = t;
    }
  }
}

void SqgModel::apply_hyperdiffusion(std::span<Cplx> theta_spec) const {
  for (std::size_t l = 0; l < 2; ++l) {
    Cplx* s = theta_spec.data() + l * nn_;
    for (std::size_t p = 0; p < nn_; ++p) s[p] *= hyperdiff_[p];
  }
}

void SqgModel::step(std::span<double> theta_grid, int nsteps) const {
  to_spectral(theta_grid, spec_);
  const double dt = cfg_.dt;
  const std::size_t m = 2 * nn_;
  for (int s = 0; s < nsteps; ++s) {
    tendency(spec_, k1_);
    for (std::size_t i = 0; i < m; ++i) stage_[i] = spec_[i] + 0.5 * dt * k1_[i];
    tendency(stage_, k2_);
    for (std::size_t i = 0; i < m; ++i) stage_[i] = spec_[i] + 0.5 * dt * k2_[i];
    tendency(stage_, k3_);
    for (std::size_t i = 0; i < m; ++i) stage_[i] = spec_[i] + dt * k3_[i];
    tendency(stage_, k4_);
    for (std::size_t i = 0; i < m; ++i)
      spec_[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    apply_hyperdiffusion(spec_);
  }
  to_grid(spec_, theta_grid);
}

void SqgModel::advance(std::span<double> theta_grid, double seconds) const {
  const int nsteps = static_cast<int>(std::ceil(seconds / cfg_.dt - 1e-9));
  if (nsteps > 0) step(theta_grid, nsteps);
}

void SqgModel::random_init(std::span<double> theta_grid, rng::Rng& rng, double rms_amplitude,
                           int k_peak) const {
  TURBDA_REQUIRE(theta_grid.size() == dim(), "random_init: wrong state size");
  // White noise -> spectral ring filter |m| <= k_peak -> rescale. Doing the
  // filtering via a real grid round-trip keeps the field exactly real.
  std::vector<double> noise(nn_);
  std::vector<Cplx> spec(nn_);
  const auto ni = static_cast<long>(cfg_.n);
  for (int l = 0; l < 2; ++l) {
    rng.fill_gaussian(noise);
    fft_.forward_real(noise, spec);
    for (long jy = 0; jy < ni; ++jy) {
      const long my = (jy <= ni / 2) ? jy : jy - ni;
      for (long jx = 0; jx < ni; ++jx) {
        const long mx = (jx <= ni / 2) ? jx : jx - ni;
        const std::size_t p = static_cast<std::size_t>(jy * ni + jx);
        const double mm = std::sqrt(static_cast<double>(mx * mx + my * my));
        if (mm > k_peak || mm == 0.0) spec[p] = Cplx(0.0, 0.0);
      }
    }
    auto level = theta_grid.subspan(static_cast<std::size_t>(l) * nn_, nn_);
    fft_.inverse_real(spec, level);
    const double r = rms(level);
    if (r > 0.0) {
      const double scale = rms_amplitude / r;
      for (double& x : level) x *= scale;
    }
  }
}

std::vector<double> SqgModel::ke_spectrum(std::span<const double> theta_grid, int level) const {
  TURBDA_REQUIRE(level == 0 || level == 1, "level must be 0 or 1");
  std::vector<Cplx> spec(2 * nn_), psi(2 * nn_);
  to_spectral(theta_grid, spec);
  invert(spec, psi);
  const Cplx* ps = psi.data() + static_cast<std::size_t>(level) * nn_;

  const auto ni = static_cast<long>(cfg_.n);
  std::vector<double> bins(cfg_.n / 2 + 1, 0.0);
  const double norm = 1.0 / (static_cast<double>(nn_) * static_cast<double>(nn_));
  for (long jy = 0; jy < ni; ++jy) {
    const long my = (jy <= ni / 2) ? jy : jy - ni;
    for (long jx = 0; jx < ni; ++jx) {
      const long mx = (jx <= ni / 2) ? jx : jx - ni;
      const std::size_t p = static_cast<std::size_t>(jy * ni + jx);
      const auto bin =
          static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(mx * mx + my * my))));
      if (bin >= bins.size()) continue;
      bins[bin] += 0.5 * ksq_[p] * std::norm(ps[p]) * norm;
    }
  }
  return bins;
}

double SqgModel::total_ke(std::span<const double> theta_grid) const {
  std::vector<Cplx> spec(2 * nn_), psi(2 * nn_);
  to_spectral(theta_grid, spec);
  invert(spec, psi);
  double e = 0.0;
  const double norm = 1.0 / (static_cast<double>(nn_) * static_cast<double>(nn_));
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t p = 0; p < nn_; ++p) e += 0.5 * ksq_[p] * std::norm(psi[l * nn_ + p]) * norm;
  return e;
}

double SqgModel::cfl(std::span<const double> theta_grid) const {
  std::vector<Cplx> spec(2 * nn_), psi(2 * nn_), w(nn_);
  std::vector<double> g(nn_);
  to_spectral(theta_grid, spec);
  invert(spec, psi);
  double umax = 0.0;
  const Cplx iu(0.0, 1.0);
  for (std::size_t l = 0; l < 2; ++l) {
    const Cplx* ps = psi.data() + l * nn_;
    for (std::size_t p = 0; p < nn_; ++p) w[p] = -iu * ky_[p] * ps[p];
    fft_.inverse_real(w, g);
    for (double x : g) umax = std::max(umax, std::abs(x + ubar_[l]));
    for (std::size_t p = 0; p < nn_; ++p) w[p] = iu * kx_[p] * ps[p];
    fft_.inverse_real(w, g);
    for (double x : g) umax = std::max(umax, std::abs(x));
  }
  const double dx = cfg_.L / static_cast<double>(cfg_.n);
  return umax * cfg_.dt / dx;
}

double SqgModel::eady_growth_rate(int m) const {
  TURBDA_REQUIRE(m >= 1, "wavenumber index must be >= 1");
  const double k = kTwoPi * static_cast<double>(m) / cfg_.L;
  const double kappa = std::sqrt(cfg_.nsq) * k / cfg_.f;
  const double mu = kappa * cfg_.H;
  const double lam_over_kappa = lambda_ / kappa;  // = U/mu
  const double a00 = -ubar_[0] - lam_over_kappa / std::tanh(mu);
  const double a01 = +lam_over_kappa / std::sinh(mu);
  const double a10 = -lam_over_kappa / std::sinh(mu);
  const double a11 = -ubar_[1] + lam_over_kappa / std::tanh(mu);
  // theta' ~ exp(i k a t) with a an eigenvalue of A; growth = -k Im(a).
  const double half_tr = 0.5 * (a00 + a11);
  const double det = a00 * a11 - a01 * a10;
  const double disc = half_tr * half_tr - det;
  return (disc < 0.0) ? k * std::sqrt(-disc) : 0.0;
}

}  // namespace turbda::sqg
