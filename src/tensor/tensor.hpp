// Dense row-major tensor of doubles, rank 1..4.
//
// Value-semantic owning container with cheap spans at API boundaries.
// All heavy math lives in free functions (gemm.hpp, linalg.hpp) so the type
// stays small and regular.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace turbda::tensor {

class Tensor {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Tensor() = default;

  explicit Tensor(std::initializer_list<std::size_t> shape) { reset(shape); }

  explicit Tensor(std::span<const std::size_t> shape) { reset(shape); }

  static Tensor zeros(std::initializer_list<std::size_t> shape) { return Tensor(shape); }

  static Tensor full(std::initializer_list<std::size_t> shape, double value) {
    Tensor t(shape);
    t.fill(value);
    return t;
  }

  void reset(std::initializer_list<std::size_t> shape) {
    reset(std::span<const std::size_t>(shape.begin(), shape.size()));
  }

  void reset(std::span<const std::size_t> shape) {
    TURBDA_REQUIRE(shape.size() >= 1 && shape.size() <= kMaxRank,
                   "tensor rank must be in [1," << kMaxRank << "]");
    rank_ = shape.size();
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) {
      TURBDA_REQUIRE(shape[i] > 0, "zero extent in tensor shape");
      shape_[i] = shape[i];
      n *= shape[i];
    }
    data_.assign(n, 0.0);
  }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t extent(std::size_t d) const {
    TURBDA_REQUIRE(d < rank_, "extent: dim out of range");
    return shape_[d];
  }
  [[nodiscard]] std::span<const std::size_t> shape() const {
    return {shape_.data(), rank_};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::span<double> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  // Element access (row-major).
  double& operator()(std::size_t i) { return data_[idx1(i)]; }
  double operator()(std::size_t i) const { return data_[idx1(i)]; }
  double& operator()(std::size_t i, std::size_t j) { return data_[idx2(i, j)]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[idx2(i, j)]; }
  double& operator()(std::size_t i, std::size_t j, std::size_t k) { return data_[idx3(i, j, k)]; }
  double operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[idx3(i, j, k)];
  }
  double& operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    return data_[idx4(i, j, k, l)];
  }
  double operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    return data_[idx4(i, j, k, l)];
  }

  /// Row i of a rank-2 tensor as a span.
  [[nodiscard]] std::span<double> row(std::size_t i) {
    TURBDA_REQUIRE(rank_ == 2 && i < shape_[0], "row: needs rank-2 and valid index");
    return {data_.data() + i * shape_[1], shape_[1]};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    TURBDA_REQUIRE(rank_ == 2 && i < shape_[0], "row: needs rank-2 and valid index");
    return {data_.data() + i * shape_[1], shape_[1]};
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// In-place reshape; total size must be preserved.
  void reshape(std::initializer_list<std::size_t> shape) {
    std::size_t n = 1;
    for (auto s : shape) n *= s;
    TURBDA_REQUIRE(n == data_.size(), "reshape must preserve size");
    rank_ = shape.size();
    std::size_t d = 0;
    for (auto s : shape) shape_[d++] = s;
  }

  Tensor& operator+=(const Tensor& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Tensor& operator-=(const Tensor& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Tensor& operator*=(double a) {
    for (auto& x : data_) x *= a;
    return *this;
  }

 private:
  void require_same_shape(const Tensor& o) const {
    TURBDA_REQUIRE(rank_ == o.rank_, "shape mismatch (rank)");
    for (std::size_t i = 0; i < rank_; ++i)
      TURBDA_REQUIRE(shape_[i] == o.shape_[i], "shape mismatch (extent " << i << ")");
  }
  [[nodiscard]] std::size_t idx1(std::size_t i) const {
    TURBDA_ASSERT(rank_ == 1 && i < shape_[0]);
    return i;
  }
  [[nodiscard]] std::size_t idx2(std::size_t i, std::size_t j) const {
    TURBDA_ASSERT(rank_ == 2 && i < shape_[0] && j < shape_[1]);
    return i * shape_[1] + j;
  }
  [[nodiscard]] std::size_t idx3(std::size_t i, std::size_t j, std::size_t k) const {
    TURBDA_ASSERT(rank_ == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return (i * shape_[1] + j) * shape_[2] + k;
  }
  [[nodiscard]] std::size_t idx4(std::size_t i, std::size_t j, std::size_t k,
                                 std::size_t l) const {
    TURBDA_ASSERT(rank_ == 4 && i < shape_[0] && j < shape_[1] && k < shape_[2] && l < shape_[3]);
    return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
  }

  std::array<std::size_t, kMaxRank> shape_{};
  std::size_t rank_ = 0;
  std::vector<double> data_;
};

}  // namespace turbda::tensor
