// Dense linear algebra kernels for small symmetric systems.
//
// LETKF's analysis solves an m x m symmetric eigenproblem in ensemble space
// (m = ensemble size, 20 in the paper), for which cyclic Jacobi is simple,
// branch-predictable and accurate.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace turbda::tensor {

/// Convergence report from jacobi_eigh.
struct EighInfo {
  int sweeps = 0;        ///< cyclic sweeps actually performed
  double off_fro = 0.0;  ///< final off-diagonal Frobenius norm
  bool converged = false;
};

/// Symmetric eigendecomposition A = V diag(w) V^T by cyclic Jacobi rotations
/// with threshold skipping. `a` must be rank-2 square symmetric; returns
/// eigenvalues ascending in `w` and orthonormal eigenvectors as *columns* of
/// `v`. Converged when the off-diagonal Frobenius norm falls below 1e-14
/// times the matrix Frobenius norm; throws turbda::Error if that does not
/// happen within max_sweeps (fill `info` first, so callers that pass it can
/// inspect the residual). Rotations run through the runtime-dispatched
/// simd::DenseKernels row kernels, whose Scalar and Avx2 tables are bitwise
/// identical.
void jacobi_eigh(const Tensor& a, Tensor& v, std::vector<double>& w, int max_sweeps = 50,
                 EighInfo* info = nullptr);

/// Lane width of the batched eigensolver: problems advanced in lockstep by
/// one jacobi_eigh_batch call (== simd::kLaneBatch).
[[nodiscard]] std::size_t eigh_lane_width();

/// Reusable scratch for jacobi_eigh_batch (eigenvector rows + sort buffers);
/// pass the same instance across calls to avoid per-batch allocation.
struct EighBatchScratch {
  std::vector<double> vt;
  std::vector<double> diag;
  std::vector<std::size_t> order;
};

/// Lane-batched symmetric eigendecomposition: nb (1 <= nb <=
/// eigh_lane_width()) independent n x n problems advance through the cyclic
/// Jacobi schedule in lockstep, one per SIMD lane. Buffers are
/// lane-interleaved structure-of-arrays with W = eigh_lane_width(): element
/// (i, j) of problem l sits at a_lanes[(i*n + j)*W + l] (destroyed on
/// return), eigenvector column entry (i, j) at v_lanes[(i*n + j)*W + l],
/// eigenvalue a at w_lanes[a*W + l] (ascending). Per lane the arithmetic is
/// the exact IEEE operation sequence of the sequential jacobi_eigh at the
/// same dispatch level, so each lane's output is bitwise identical to a
/// sequential solve of that problem. Unlike jacobi_eigh this never throws on
/// non-convergence: a lane that exhausts max_sweeps reports converged=false
/// in infos[l] and receives identity eigenvectors / unit eigenvalues —
/// fallback policy is the caller's.
void jacobi_eigh_batch(double* a_lanes, std::size_t n, std::size_t nb, double* v_lanes,
                       double* w_lanes, int max_sweeps = 50, EighInfo* infos = nullptr,
                       EighBatchScratch* scratch = nullptr);

/// Cholesky factorization A = L L^T (lower). Throws turbda::Error if A is not
/// positive definite.
[[nodiscard]] Tensor cholesky(const Tensor& a);

/// Solves A x = b with A symmetric positive definite via Cholesky.
[[nodiscard]] std::vector<double> spd_solve(const Tensor& a, std::span<const double> b);

/// Symmetric matrix function: f applied to eigenvalues, B = V f(diag) V^T.
[[nodiscard]] Tensor sym_func(const Tensor& a, const std::function<double(double)>& f);

/// Frobenius norm of a tensor.
[[nodiscard]] double fro_norm(const Tensor& a);

}  // namespace turbda::tensor
