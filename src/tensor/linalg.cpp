#include "tensor/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "tensor/gemm.hpp"

namespace turbda::tensor {

void jacobi_eigh(const Tensor& a, Tensor& v, std::vector<double>& w, int max_sweeps) {
  TURBDA_REQUIRE(a.rank() == 2 && a.extent(0) == a.extent(1), "jacobi_eigh: square matrix");
  const std::size_t n = a.extent(0);
  Tensor m = a;  // working copy
  v.reset({n, n});
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (off < 1e-26) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p), aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                      : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Rotate rows/cols p and q of m.
        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        // Accumulate eigenvectors.
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Extract and sort eigenvalues ascending, permuting eigenvector columns.
  w.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 0; i < n; ++i) w[i] = m(i, i);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) { return w[i] < w[j]; });
  std::vector<double> ws(n);
  Tensor vs({n, n});
  for (std::size_t j = 0; j < n; ++j) {
    ws[j] = w[order[j]];
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = v(i, order[j]);
  }
  w = std::move(ws);
  v = std::move(vs);
}

Tensor cholesky(const Tensor& a) {
  TURBDA_REQUIRE(a.rank() == 2 && a.extent(0) == a.extent(1), "cholesky: square matrix");
  const std::size_t n = a.extent(0);
  Tensor l({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        TURBDA_REQUIRE(s > 0.0, "cholesky: matrix not positive definite (pivot " << s << ")");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> spd_solve(const Tensor& a, std::span<const double> b) {
  const Tensor l = cholesky(a);
  const std::size_t n = l.extent(0);
  TURBDA_REQUIRE(b.size() == n, "spd_solve: rhs size mismatch");
  std::vector<double> y(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Tensor sym_func(const Tensor& a, const std::function<double(double)>& f) {
  Tensor v;
  std::vector<double> w;
  jacobi_eigh(a, v, w);
  const std::size_t n = a.extent(0);
  // B = V f(D) V^T
  Tensor vf({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) vf(i, j) = v(i, j) * f(w[j]);
  return matmul_nt(vf, v);
}

double fro_norm(const Tensor& a) {
  double s = 0.0;
  for (double x : a.flat()) s += x * x;
  return std::sqrt(s);
}

}  // namespace turbda::tensor
