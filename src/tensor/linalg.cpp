#include "tensor/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "simd/dense_kernels.hpp"
#include "tensor/gemm.hpp"

namespace turbda::tensor {

namespace {

/// Sum of squared strictly-upper-triangle elements.
double off_diag_sq(const Tensor& m, std::size_t n) {
  double off = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
  return off;
}

}  // namespace

void jacobi_eigh(const Tensor& a, Tensor& v, std::vector<double>& w, int max_sweeps,
                 EighInfo* info) {
  TURBDA_REQUIRE(a.rank() == 2 && a.extent(0) == a.extent(1), "jacobi_eigh: square matrix");
  const std::size_t n = a.extent(0);
  Tensor m = a;  // working copy
  // Eigenvectors are accumulated transposed (rows instead of columns) so
  // every rotation is two contiguous-row updates through the SIMD row
  // kernels; the extraction below transposes back to the column convention.
  Tensor vt({n, n});
  for (std::size_t i = 0; i < n; ++i) vt(i, i) = 1.0;
  const auto& dk = simd::active_dense_kernels();

  // Relative convergence: off-diagonal Frobenius norm below 1e-14 of the
  // matrix norm. The per-rotation skip threshold is sized so that a sweep
  // skipping every pair has provably converged (n(n-1)/2 pairs each below
  // tol_sq / (n(n-1)) sum to at most tol_sq / 2).
  double fro_sq = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) fro_sq += m(p, q) * m(p, q);
  const double tol_sq = 1e-28 * fro_sq;
  const double skip_sq = n > 1 ? tol_sq / static_cast<double>(n * (n - 1)) : 0.0;

  int sweeps_used = 0;
  double off_sq = off_diag_sq(m, n);
  bool converged = off_sq <= tol_sq;
  while (!converged && sweeps_used < max_sweeps) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (apq * apq <= skip_sq) continue;
        const double app = m(p, p), aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                      : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Two-sided rotation: rotate rows p and q contiguously, then mirror
        // them into columns p and q — valid because the pre-rotation matrix
        // is symmetric, so (G^T M G)(i, p) for i outside {p, q} equals the
        // row-rotated M(p, i). The 2x2 pivot block has the closed form
        // app' = app - t*apq, aqq' = aqq + t*apq, apq' = 0.
        double* rp = &m(p, 0);
        double* rq = &m(q, 0);
        dk.rot_rows(rp, rq, n, c, s);
        for (std::size_t i = 0; i < n; ++i) {
          if (i == p || i == q) continue;
          m(i, p) = rp[i];
          m(i, q) = rq[i];
        }
        m(p, p) = app - t * apq;
        m(q, q) = aqq + t * apq;
        m(p, q) = 0.0;
        m(q, p) = 0.0;
        // Accumulate eigenvectors (rows of vt).
        dk.rot_rows(&vt(p, 0), &vt(q, 0), n, c, s);
      }
    }
    ++sweeps_used;
    off_sq = off_diag_sq(m, n);
    converged = off_sq <= tol_sq;
  }
  if (info != nullptr) {
    info->sweeps = sweeps_used;
    info->off_fro = std::sqrt(off_sq);
    info->converged = converged;
  }
  TURBDA_REQUIRE(converged, "jacobi_eigh: not converged after "
                                << sweeps_used << " sweeps (off-diagonal Frobenius "
                                << std::sqrt(off_sq) << ", matrix Frobenius "
                                << std::sqrt(fro_sq) << ")");

  // Extract and sort eigenvalues ascending, permuting eigenvector columns
  // (vt rows transpose back into v columns).
  w.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 0; i < n; ++i) w[i] = m(i, i);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) { return w[i] < w[j]; });
  std::vector<double> ws(n);
  Tensor vs({n, n});
  for (std::size_t j = 0; j < n; ++j) {
    ws[j] = w[order[j]];
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = vt(order[j], i);
  }
  w = std::move(ws);
  v = std::move(vs);
}

std::size_t eigh_lane_width() { return simd::kLaneBatch; }

void jacobi_eigh_batch(double* a_lanes, std::size_t n, std::size_t nb, double* v_lanes,
                       double* w_lanes, int max_sweeps, EighInfo* infos,
                       EighBatchScratch* scratch) {
  constexpr std::size_t W = simd::kLaneBatch;
  TURBDA_REQUIRE(nb >= 1 && nb <= W, "jacobi_eigh_batch: lane count " << nb << " out of range");
  const auto& dk = simd::active_dense_kernels();

  // Unused lanes: finite content plus an infinite tolerance makes them
  // converge at the entry check, so the sweep kernel never rotates them.
  for (std::size_t e = 0; e < n * n; ++e)
    for (std::size_t l = nb; l < W; ++l) a_lanes[e * W + l] = 0.0;

  EighBatchScratch local;
  EighBatchScratch& sc = scratch != nullptr ? *scratch : local;
  sc.vt.assign(n * n * W, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l < W; ++l) sc.vt[(i * n + i) * W + l] = 1.0;

  // Per-lane thresholds, accumulated in the same plain-scalar order as the
  // sequential solver's fro_sq loop.
  double tol_sq[W], skip_sq[W], off_sq[W];
  int sweeps[W];
  std::uint8_t conv[W];
  for (std::size_t l = 0; l < W; ++l) {
    if (l >= nb) {
      tol_sq[l] = std::numeric_limits<double>::infinity();
      skip_sq[l] = 0.0;
      continue;
    }
    double fro_sq = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = 0; q < n; ++q) {
        const double e = a_lanes[(p * n + q) * W + l];
        fro_sq += e * e;
      }
    tol_sq[l] = 1e-28 * fro_sq;
    skip_sq[l] = n > 1 ? tol_sq[l] / static_cast<double>(n * (n - 1)) : 0.0;
  }

  dk.bjacobi_sweeps(a_lanes, sc.vt.data(), n, max_sweeps, tol_sq, skip_sq, sweeps, off_sq, conv);

  if (infos != nullptr)
    for (std::size_t l = 0; l < nb; ++l)
      infos[l] = EighInfo{sweeps[l], std::sqrt(off_sq[l]), conv[l] != 0};

  // Per-lane extraction — the exact sort-and-transpose epilogue of the
  // sequential solver. Non-converged lanes get a well-defined benign result
  // (unit eigenvalues, identity vectors) instead of half-rotated garbage.
  sc.diag.resize(n);
  sc.order.resize(n);
  for (std::size_t l = 0; l < nb; ++l) {
    if (conv[l] == 0) {
      for (std::size_t j = 0; j < n; ++j) {
        w_lanes[j * W + l] = 1.0;
        for (std::size_t i = 0; i < n; ++i) v_lanes[(i * n + j) * W + l] = i == j ? 1.0 : 0.0;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) sc.diag[i] = a_lanes[(i * n + i) * W + l];
    std::iota(sc.order.begin(), sc.order.end(), std::size_t{0});
    std::sort(sc.order.begin(), sc.order.end(),
              [&](std::size_t i, std::size_t j) { return sc.diag[i] < sc.diag[j]; });
    for (std::size_t j = 0; j < n; ++j) {
      w_lanes[j * W + l] = sc.diag[sc.order[j]];
      for (std::size_t i = 0; i < n; ++i)
        v_lanes[(i * n + j) * W + l] = sc.vt[(sc.order[j] * n + i) * W + l];
    }
  }
}

Tensor cholesky(const Tensor& a) {
  TURBDA_REQUIRE(a.rank() == 2 && a.extent(0) == a.extent(1), "cholesky: square matrix");
  const std::size_t n = a.extent(0);
  Tensor l({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        TURBDA_REQUIRE(s > 0.0, "cholesky: matrix not positive definite (pivot " << s << ")");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> spd_solve(const Tensor& a, std::span<const double> b) {
  const Tensor l = cholesky(a);
  const std::size_t n = l.extent(0);
  TURBDA_REQUIRE(b.size() == n, "spd_solve: rhs size mismatch");
  std::vector<double> y(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Tensor sym_func(const Tensor& a, const std::function<double(double)>& f) {
  Tensor v;
  std::vector<double> w;
  jacobi_eigh(a, v, w);
  const std::size_t n = a.extent(0);
  // B = V f(D) V^T
  Tensor vf({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) vf(i, j) = v(i, j) * f(w[j]);
  return matmul_nt(vf, v);
}

double fro_norm(const Tensor& a) {
  double s = 0.0;
  for (double x : a.flat()) s += x * x;
  return std::sqrt(s);
}

}  // namespace turbda::tensor
