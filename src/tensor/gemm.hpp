// Blocked general matrix multiply (double precision).
//
// The ViT surrogate's cost is GEMM-dominated ("making matrix-matrix
// multiplication (GEMM) the most computationally intensive operation",
// paper §III-B-a), so this kernel carries both training and the measured
// half of the Fig. 6 kernel-sizing study.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace turbda::tensor {

enum class Trans { No, Yes };

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// op(A) is M x K, op(B) is K x N, C is M x N.
/// lda/ldb/ldc are the leading (row) strides of the *stored* matrices.
/// Large products split output rows across the process-wide thread pool with
/// a bitwise partition-invariant accumulation order; `max_threads` caps the
/// workers (0 = all, 1 = serial).
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, double alpha,
          const double* a, std::size_t lda, const double* b, std::size_t ldb, double beta,
          double* c, std::size_t ldc, std::size_t max_threads = 0);

/// y = alpha * op(A) * x + beta * y, row-major; op(A) is M x K. A dedicated
/// dot-product kernel — n = 1 products skip the GEMM tile packing entirely
/// (gemm() routes them here too) while keeping the same per-element
/// accumulation order, so results are bitwise identical to the blocked path
/// and independent of the thread count.
void gemv(Trans ta, std::size_t m, std::size_t k, double alpha, const double* a, std::size_t lda,
          const double* x, double beta, double* y, std::size_t max_threads = 0);

/// C = A * B for rank-2 tensors (convenience wrapper).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b, std::size_t max_threads = 0);

/// C = A^T * B.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b, std::size_t max_threads = 0);

/// C = A * B^T.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b, std::size_t max_threads = 0);

/// y = A * x (rank-2 times rank-1).
[[nodiscard]] Tensor matvec(const Tensor& a, const Tensor& x);

}  // namespace turbda::tensor
