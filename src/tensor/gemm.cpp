#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "parallel/thread_pool.hpp"

namespace turbda::tensor {

namespace {

// Cache-blocking tile sizes (doubles): fits comfortably in L1/L2 on
// contemporary x86 cores while letting the inner loop auto-vectorize.
constexpr std::size_t kMc = 64;
constexpr std::size_t kNc = 256;
constexpr std::size_t kKc = 128;

// Row-parallelization thresholds: below kParFlops the kernel runs serially
// (fork/join overhead dominates); each worker gets at least kParMinRows rows
// so the duplicated B-tile packing amortizes.
constexpr std::size_t kParFlops = std::size_t{1} << 20;
constexpr std::size_t kParMinRows = 16;

/// Packs op(A) tile [i0,i1) x [k0,k1) into row-major contiguous storage.
void pack_a(Trans ta, const double* a, std::size_t lda, std::size_t i0, std::size_t i1,
            std::size_t k0, std::size_t k1, double* out) {
  const std::size_t kw = k1 - k0;
  if (ta == Trans::No) {
    for (std::size_t i = i0; i < i1; ++i) {
      const double* src = a + i * lda + k0;
      std::copy(src, src + kw, out + (i - i0) * kw);
    }
  } else {
    // op(A)(i,k) = A(k,i)
    for (std::size_t i = i0; i < i1; ++i) {
      double* dst = out + (i - i0) * kw;
      for (std::size_t k = k0; k < k1; ++k) dst[k - k0] = a[k * lda + i];
    }
  }
}

/// Packs op(B) tile [k0,k1) x [j0,j1) row-major.
void pack_b(Trans tb, const double* b, std::size_t ldb, std::size_t k0, std::size_t k1,
            std::size_t j0, std::size_t j1, double* out) {
  const std::size_t jw = j1 - j0;
  if (tb == Trans::No) {
    for (std::size_t k = k0; k < k1; ++k) {
      const double* src = b + k * ldb + j0;
      std::copy(src, src + jw, out + (k - k0) * jw);
    }
  } else {
    // op(B)(k,j) = B(j,k)
    for (std::size_t k = k0; k < k1; ++k) {
      double* dst = out + (k - k0) * jw;
      for (std::size_t j = j0; j < j1; ++j) dst[j - j0] = b[j * ldb + k];
    }
  }
}

/// Serial blocked kernel restricted to output rows [r0, r1). Per element
/// C(i, j) the accumulation order over k is fixed (ascending k-blocks, then
/// ascending kk), so any row partition produces bitwise-identical results.
void gemm_rows(Trans ta, Trans tb, std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
               double alpha, const double* a, std::size_t lda, const double* b, std::size_t ldb,
               double beta, double* c, std::size_t ldc) {
  // Scale C by beta first.
  if (beta == 0.0) {
    for (std::size_t i = r0; i < r1; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0);
  } else if (beta != 1.0) {
    for (std::size_t i = r0; i < r1; ++i)
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
  }
  if (alpha == 0.0 || r0 >= r1 || n == 0 || k == 0) return;

  std::vector<double> pa(kMc * kKc), pb(kKc * kNc);
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t k1 = std::min(k, k0 + kKc);
    for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
      const std::size_t j1 = std::min(n, j0 + kNc);
      pack_b(tb, b, ldb, k0, k1, j0, j1, pb.data());
      const std::size_t jw = j1 - j0;
      for (std::size_t i0 = r0; i0 < r1; i0 += kMc) {
        const std::size_t i1 = std::min(r1, i0 + kMc);
        pack_a(ta, a, lda, i0, i1, k0, k1, pa.data());
        const std::size_t kw = k1 - k0;
        // Micro-kernel: rank-kw update of the C tile; innermost loop over j
        // is contiguous in both pb and c so it auto-vectorizes.
        for (std::size_t i = i0; i < i1; ++i) {
          const double* arow = pa.data() + (i - i0) * kw;
          double* crow = c + i * ldc + j0;
          for (std::size_t kk = 0; kk < kw; ++kk) {
            const double av = alpha * arow[kk];
            const double* brow = pb.data() + kk * jw;
            for (std::size_t j = 0; j < jw; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

/// Dedicated matrix-vector rows kernel: an n = 1 "GEMM" is a dot-product
/// loop, and the tile-packing machinery of gemm_rows is pure overhead for
/// it. Accumulation per output element is beta-scale first, then ascending
/// k with alpha applied to the A element — exactly gemm_rows' per-element
/// order, so routing n = 1 products here is bitwise transparent.
void gemv_rows(Trans ta, std::size_t r0, std::size_t r1, std::size_t k, double alpha,
               const double* a, std::size_t lda, const double* x, std::size_t incx, double beta,
               double* y, std::size_t incy) {
  for (std::size_t i = r0; i < r1; ++i) {
    double acc = (beta == 0.0) ? 0.0 : beta * y[i * incy];
    if (alpha != 0.0) {
      if (ta == Trans::No && incx == 1) {
        const double* row = a + i * lda;
        for (std::size_t kk = 0; kk < k; ++kk) acc += alpha * row[kk] * x[kk];
      } else if (ta == Trans::No) {
        const double* row = a + i * lda;
        for (std::size_t kk = 0; kk < k; ++kk) acc += alpha * row[kk] * x[kk * incx];
      } else {
        for (std::size_t kk = 0; kk < k; ++kk) acc += alpha * a[kk * lda + i] * x[kk * incx];
      }
    }
    y[i * incy] = acc;
  }
}

/// Shared row-partition gating for the matvec kernel (same flop threshold
/// as the blocked GEMM path).
void gemv_dispatch(Trans ta, std::size_t m, std::size_t k, double alpha, const double* a,
                   std::size_t lda, const double* x, std::size_t incx, double beta, double* y,
                   std::size_t incy, std::size_t max_threads) {
  if (m == 0) return;
  if (max_threads != 1 && 2 * m * k >= kParFlops && m >= 2 * kParMinRows) {
    parallel::parallel_for(
        m,
        [&](std::size_t r0, std::size_t r1) {
          gemv_rows(ta, r0, r1, k, alpha, a, lda, x, incx, beta, y, incy);
        },
        kParMinRows, max_threads);
    return;
  }
  gemv_rows(ta, 0, m, k, alpha, a, lda, x, incx, beta, y, incy);
}

}  // namespace

void gemv(Trans ta, std::size_t m, std::size_t k, double alpha, const double* a, std::size_t lda,
          const double* x, double beta, double* y, std::size_t max_threads) {
  gemv_dispatch(ta, m, k, alpha, a, lda, x, 1, beta, y, 1, max_threads);
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, double alpha,
          const double* a, std::size_t lda, const double* b, std::size_t ldb, double beta,
          double* c, std::size_t ldc, std::size_t max_threads) {
  if (m == 0) return;
  if (n == 1) {
    // op(B) is k x 1: column stride ldb when stored k x 1, contiguous when
    // stored 1 x k (transposed).
    const std::size_t incx = (tb == Trans::No) ? ldb : 1;
    gemv_dispatch(ta, m, k, alpha, a, lda, b, incx, beta, c, ldc, max_threads);
    return;
  }
  // Disjoint row ranges: workers share nothing but read-only A/B, and the
  // per-element FP order is partition-invariant (see gemm_rows), so the
  // result is bitwise independent of the thread count.
  if (max_threads != 1 && 2 * m * n * k >= kParFlops && m >= 2 * kParMinRows) {
    parallel::parallel_for(
        m,
        [&](std::size_t r0, std::size_t r1) {
          gemm_rows(ta, tb, r0, r1, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        },
        kParMinRows, max_threads);
    return;
  }
  gemm_rows(ta, tb, 0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

namespace {
Tensor matmul_impl(Trans ta, Trans tb, const Tensor& a, const Tensor& b,
                   std::size_t max_threads) {
  TURBDA_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 tensors");
  const std::size_t m = (ta == Trans::No) ? a.extent(0) : a.extent(1);
  const std::size_t ka = (ta == Trans::No) ? a.extent(1) : a.extent(0);
  const std::size_t kb = (tb == Trans::No) ? b.extent(0) : b.extent(1);
  const std::size_t n = (tb == Trans::No) ? b.extent(1) : b.extent(0);
  TURBDA_REQUIRE(ka == kb, "matmul: inner dimensions differ (" << ka << " vs " << kb << ")");
  Tensor out({m, n});
  gemm(ta, tb, m, n, ka, 1.0, a.data(), a.extent(1), b.data(), b.extent(1), 0.0, out.data(), n,
       max_threads);
  return out;
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, std::size_t max_threads) {
  return matmul_impl(Trans::No, Trans::No, a, b, max_threads);
}
Tensor matmul_tn(const Tensor& a, const Tensor& b, std::size_t max_threads) {
  return matmul_impl(Trans::Yes, Trans::No, a, b, max_threads);
}
Tensor matmul_nt(const Tensor& a, const Tensor& b, std::size_t max_threads) {
  return matmul_impl(Trans::No, Trans::Yes, a, b, max_threads);
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  TURBDA_REQUIRE(a.rank() == 2 && x.rank() == 1, "matvec needs (rank-2, rank-1)");
  TURBDA_REQUIRE(a.extent(1) == x.extent(0), "matvec: dimension mismatch");
  Tensor y({a.extent(0)});
  gemv(Trans::No, a.extent(0), a.extent(1), 1.0, a.data(), a.extent(1), x.data(), 0.0, y.data());
  return y;
}

}  // namespace turbda::tensor
