// ViT surrogate as a ForecastModel, plus offline pretraining and the
// paper's *online* adaptation loop (§III-B: "online training of the ViT
// surrogate using observational data", realized here by fine-tuning on the
// analysis states the filter produces each cycle).
#pragma once

#include <deque>
#include <memory>

#include "models/forecast_model.hpp"
#include "nn/optim.hpp"
#include "nn/vit.hpp"

namespace turbda::nn {

/// Per-variable affine normalization fitted on climatology; ViTs train on
/// standardized fields.
class FieldScaler {
 public:
  FieldScaler() = default;

  /// Fit a single global mean/std over a sample of states.
  void fit(const Tensor& states);

  void normalize(std::span<double> state) const;
  void denormalize(std::span<double> state) const;

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double std_dev() const { return std_; }

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

/// Wraps a ViT as the forecast model f_k of Eq. (1): one forward pass per
/// assimilation window, in normalized space.
class SurrogateForecast final : public models::ForecastModel {
 public:
  SurrogateForecast(std::shared_ptr<ViT> vit, FieldScaler scaler);

  [[nodiscard]] std::size_t dim() const override { return vit_->config().state_dim(); }
  void forecast(std::span<double> state) override;
  [[nodiscard]] std::string name() const override { return "vit-surrogate"; }

  /// Batched forecast of a whole ensemble (one ViT forward). This Tensor
  /// overload is deliberately NOT the implementation of the inherited
  /// span-based forecast_batch() virtual: the fused ViT forward matches
  /// per-member forwards only to ~1e-10 (test_nn), while the virtual's
  /// contract — which the cycling runners' bitwise replay invariants rest
  /// on — requires exact equality with sequential forecast() calls. The
  /// using-declaration keeps the base (member-sequential) overload visible
  /// alongside this one.
  using models::ForecastModel::forecast_batch;
  void forecast_batch(Tensor& states);

  [[nodiscard]] ViT& vit() { return *vit_; }
  [[nodiscard]] const FieldScaler& scaler() const { return scaler_; }

 private:
  std::shared_ptr<ViT> vit_;
  FieldScaler scaler_;
};

struct TrainStats {
  double loss = 0.0;
  double grad_norm = 0.0;
};

/// Offline supervised training on (state_k, state_{k+1}) pairs generated
/// from the reference dynamics.
class SurrogateTrainer {
 public:
  SurrogateTrainer(std::shared_ptr<ViT> vit, const FieldScaler& scaler, AdamWConfig opt_cfg,
                   double clip_norm = 1.0);

  /// One optimization step on a batch of (x, y) state pairs (raw units; the
  /// trainer normalizes internally). Returns loss in normalized units.
  TrainStats train_batch(const Tensor& x, const Tensor& y);

  /// Full training loop over a dataset of pairs with warmup-cosine schedule.
  std::vector<double> fit(const Tensor& xs, const Tensor& ys, int epochs, std::size_t batch_size,
                          double base_lr, rng::Rng& rng);

  [[nodiscard]] AdamW& optimizer() { return opt_; }

 private:
  std::shared_ptr<ViT> vit_;
  FieldScaler scaler_;
  AdamW opt_;
  double clip_norm_;
};

/// The real-time adaptation loop: keeps a rolling replay buffer of analysis
/// transitions (x_{k-1}^a -> x_k^a) and fine-tunes the surrogate a few steps
/// every assimilation cycle, which is the workload the paper scales on
/// Frontier.
class OnlineTrainer {
 public:
  OnlineTrainer(std::shared_ptr<ViT> vit, const FieldScaler& scaler, AdamWConfig opt_cfg,
                std::size_t buffer_capacity = 64, int steps_per_cycle = 2);

  /// Feed one transition observed by the DA system; runs the configured
  /// number of fine-tuning steps once at least one pair is buffered.
  TrainStats observe_transition(std::span<const double> prev_analysis,
                                std::span<const double> next_analysis, rng::Rng& rng);

  [[nodiscard]] std::size_t buffered() const { return pairs_.size(); }

 private:
  std::shared_ptr<ViT> vit_;
  FieldScaler scaler_;
  AdamW opt_;
  std::size_t capacity_;
  int steps_;
  std::deque<std::pair<std::vector<double>, std::vector<double>>> pairs_;
};

}  // namespace turbda::nn
