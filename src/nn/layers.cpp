#include "nn/layers.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/gemm.hpp"

namespace turbda::nn {

// ---------------------------------------------------------------- Linear ---

Linear::Linear(std::size_t in, std::size_t out, rng::Rng& rng, std::string name)
    : weight(name + ".weight"), bias(name + ".bias"), in_(in), out_(out) {
  weight.reset_shape({in, out});
  bias.reset_shape({out});
  init_trunc_normal(weight.value, 1.0 / std::sqrt(static_cast<double>(in)), rng);
}

Tensor Linear::forward(const Tensor& x) {
  TURBDA_REQUIRE(x.rank() == 2 && x.extent(1) == in_,
                 "Linear: input features " << x.extent(1) << " != " << in_);
  x_ = x;
  Tensor y = tensor::matmul(x, weight.value);
  for (std::size_t r = 0; r < y.extent(0); ++r) {
    auto row = y.row(r);
    for (std::size_t j = 0; j < out_; ++j) row[j] += bias.value(j);
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  TURBDA_REQUIRE(grad_out.rank() == 2 && grad_out.extent(1) == out_, "Linear: bad grad shape");
  // dW += X^T dY; db += colsum dY; dX = dY W^T.
  const Tensor dw = tensor::matmul_tn(x_, grad_out);
  weight.grad += dw;
  for (std::size_t r = 0; r < grad_out.extent(0); ++r) {
    const auto row = grad_out.row(r);
    for (std::size_t j = 0; j < out_; ++j) bias.grad(j) += row[j];
  }
  return tensor::matmul_nt(grad_out, weight.value);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight);
  out.push_back(&bias);
}

// ------------------------------------------------------------- LayerNorm ---

LayerNorm::LayerNorm(std::size_t features, std::string name, double eps)
    : gain(name + ".gain"), bias(name + ".bias"), c_(features), eps_(eps) {
  gain.reset_shape({features});
  bias.reset_shape({features});
  gain.value.fill(1.0);
}

Tensor LayerNorm::forward(const Tensor& x) {
  TURBDA_REQUIRE(x.rank() == 2 && x.extent(1) == c_, "LayerNorm: bad input shape");
  const std::size_t rows = x.extent(0);
  xhat_.reset({rows, c_});
  inv_sd_.resize(rows);
  Tensor y({rows, c_});
  const double invc = 1.0 / static_cast<double>(c_);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto xr = x.row(r);
    double mu = 0.0;
    for (double v : xr) mu += v;
    mu *= invc;
    double var = 0.0;
    for (double v : xr) var += (v - mu) * (v - mu);
    var *= invc;
    const double inv_sd = 1.0 / std::sqrt(var + eps_);
    inv_sd_[r] = inv_sd;
    auto xh = xhat_.row(r);
    auto yr = y.row(r);
    for (std::size_t j = 0; j < c_; ++j) {
      xh[j] = (xr[j] - mu) * inv_sd;
      yr[j] = gain.value(j) * xh[j] + bias.value(j);
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  TURBDA_REQUIRE(grad_out.rank() == 2 && grad_out.extent(1) == c_, "LayerNorm: bad grad shape");
  const std::size_t rows = grad_out.extent(0);
  Tensor dx({rows, c_});
  const double invc = 1.0 / static_cast<double>(c_);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto dy = grad_out.row(r);
    const auto xh = xhat_.row(r);
    auto dxr = dx.row(r);
    // dxhat = dy * gain; then the standard layernorm backward:
    // dx = inv_sd * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
    double m1 = 0.0, m2 = 0.0;
    for (std::size_t j = 0; j < c_; ++j) {
      const double dxh = dy[j] * gain.value(j);
      m1 += dxh;
      m2 += dxh * xh[j];
      gain.grad(j) += dy[j] * xh[j];
      bias.grad(j) += dy[j];
    }
    m1 *= invc;
    m2 *= invc;
    for (std::size_t j = 0; j < c_; ++j) {
      const double dxh = dy[j] * gain.value(j);
      dxr[j] = inv_sd_[r] * (dxh - m1 - xh[j] * m2);
    }
  }
  return dx;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gain);
  out.push_back(&bias);
}

// ------------------------------------------------------------------ GELU ---

namespace {
constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)
constexpr double kGeluA = 0.044715;
}  // namespace

Tensor Gelu::forward(const Tensor& x) {
  x_ = x;
  Tensor y = x;
  for (double& v : y.flat()) {
    const double t = std::tanh(kGeluC * (v + kGeluA * v * v * v));
    v = 0.5 * v * (1.0 + t);
  }
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  auto dxf = dx.flat();
  const auto xf = x_.flat();
  for (std::size_t i = 0; i < xf.size(); ++i) {
    const double v = xf[i];
    const double u = kGeluC * (v + kGeluA * v * v * v);
    const double t = std::tanh(u);
    const double du = kGeluC * (1.0 + 3.0 * kGeluA * v * v);
    const double dydx = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
    dxf[i] *= dydx;
  }
  return dx;
}

// --------------------------------------------------------------- Dropout ---

Dropout::Dropout(double p, rng::Rng* rng) : p_(p), rng_(rng) {
  TURBDA_REQUIRE(p >= 0.0 && p < 1.0, "dropout probability must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0) {
    mask_ = Tensor();  // identity in backward
    return x;
  }
  mask_.reset(x.shape());
  const double keep_scale = 1.0 / (1.0 - p_);
  auto mf = mask_.flat();
  for (double& m : mf) m = rng_->bernoulli(p_) ? 0.0 : keep_scale;
  Tensor y = x;
  auto yf = y.flat();
  for (std::size_t i = 0; i < yf.size(); ++i) yf[i] *= mf[i];
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor dx = grad_out;
  auto df = dx.flat();
  const auto mf = mask_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= mf[i];
  return dx;
}

// -------------------------------------------------------------- DropPath ---

DropPath::DropPath(double p, std::size_t tokens, rng::Rng* rng)
    : p_(p), tokens_(tokens), rng_(rng) {
  TURBDA_REQUIRE(p >= 0.0 && p < 1.0, "droppath probability must be in [0,1)");
  TURBDA_REQUIRE(tokens >= 1, "droppath needs tokens per sample");
}

Tensor DropPath::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0) {
    keep_.clear();
    return x;
  }
  const std::size_t rows = x.extent(0);
  TURBDA_REQUIRE(rows % tokens_ == 0, "DropPath: rows not divisible by tokens per sample");
  const std::size_t b = rows / tokens_;
  keep_.resize(b);
  const double keep_scale = 1.0 / (1.0 - p_);
  for (auto& k : keep_) k = rng_->bernoulli(p_) ? 0.0 : keep_scale;
  Tensor y = x;
  for (std::size_t s = 0; s < b; ++s) {
    if (keep_[s] == 1.0) continue;
    for (std::size_t t = 0; t < tokens_; ++t) {
      auto row = y.row(s * tokens_ + t);
      for (double& v : row) v *= keep_[s];
    }
  }
  return y;
}

Tensor DropPath::backward(const Tensor& grad_out) {
  if (keep_.empty()) return grad_out;
  Tensor dx = grad_out;
  for (std::size_t s = 0; s < keep_.size(); ++s) {
    if (keep_[s] == 1.0) continue;
    for (std::size_t t = 0; t < tokens_; ++t) {
      auto row = dx.row(s * tokens_ + t);
      for (double& v : row) v *= keep_[s];
    }
  }
  return dx;
}

}  // namespace turbda::nn
