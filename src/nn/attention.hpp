// Multi-head self-attention (paper Fig. 2): the compute-intensive GEMM core
// of the ViT surrogate whose kernel shapes drive the Fig. 6 sizing study.
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace turbda::nn {

class MultiHeadSelfAttention final : public Module {
 public:
  /// `tokens` is the fixed sequence length T; forward infers the batch from
  /// rows / T. embed must be divisible by heads.
  MultiHeadSelfAttention(std::size_t embed, std::size_t heads, std::size_t tokens,
                         double attn_dropout, rng::Rng* rng, const std::string& name = "attn");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

 private:
  std::size_t c_, h_, t_, dh_;
  double scale_;
  Linear wq_, wk_, wv_, wo_;
  Dropout attn_drop_;

  // Cached activations for backward.
  Tensor q_, k_, v_;   // (B*T, C)
  Tensor attn_;        // (B*heads, T, T) softmax probabilities (pre-dropout)
  Tensor attn_used_;   // (B*heads, T, T) post-dropout (== attn_ in eval)
  Tensor concat_;      // (B*T, C) pre-projection
};

}  // namespace turbda::nn
