// SQG-ViT: the vision-transformer surrogate of the forecast model
// (paper §III-B, Fig. 2). A standard pre-norm ViT backbone:
//
//   field -> PatchEmbed -> +pos -> [LN -> MHSA -> +res, LN -> MLP -> +res]*L
//         -> LN -> head -> field increment;  prediction = input + increment.
//
// Dropout and DropPath regularize exactly as in the paper. The architecture
// knobs (embed dim, heads, MLP ratio, depth, patch) are those swept in the
// Fig. 6 kernel-sizing study and fixed in Table II.
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"

namespace turbda::nn {

struct VitConfig {
  std::size_t image = 64;    ///< input side length (64/128/256 in Table II)
  std::size_t patch = 8;     ///< patch side (Table II uses 4)
  std::size_t channels = 2;  ///< SQG has two boundary levels
  std::size_t embed_dim = 64;
  std::size_t depth = 2;
  std::size_t heads = 4;
  double mlp_ratio = 4.0;
  double dropout = 0.0;
  double droppath = 0.0;
  double attn_dropout = 0.0;
  std::uint64_t seed = 1;

  [[nodiscard]] std::size_t tokens() const { return (image / patch) * (image / patch); }
  [[nodiscard]] std::size_t patch_dim() const { return patch * patch * channels; }
  [[nodiscard]] std::size_t state_dim() const { return image * image * channels; }
  [[nodiscard]] std::size_t mlp_hidden() const {
    return static_cast<std::size_t>(mlp_ratio * static_cast<double>(embed_dim));
  }

  /// Exact learnable-parameter count (used to verify Table II: 157M / 1.2B /
  /// 2.5B) without instantiating the network.
  [[nodiscard]] std::size_t param_count() const;
};

/// MLP: Linear -> GELU -> Dropout -> Linear (paper Fig. 2; its width ratio
/// dominates the parameter count).
class Mlp final : public Module {
 public:
  Mlp(std::size_t embed, std::size_t hidden, double dropout, rng::Rng* rng,
      const std::string& name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

 private:
  Linear fc1_, fc2_;
  Gelu act_;
  Dropout drop_;
};

/// Pre-norm transformer block with DropPath on both residual branches.
class TransformerBlock final : public Module {
 public:
  TransformerBlock(const VitConfig& cfg, rng::Rng* rng, const std::string& name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadSelfAttention attn_;
  Mlp mlp_;
  DropPath dp1_, dp2_;
};

/// Patchify: (B, state_dim) -> (B*T, patch_dim) and its inverse. The state
/// layout matches SqgModel: level-major, row-major n x n per level.
class PatchEmbed final : public Module {
 public:
  PatchEmbed(const VitConfig& cfg, rng::Rng* rng);

  Tensor forward(const Tensor& x) override;  // (B, D_state) -> (B*T, E)
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;

  /// Gathers patches without projecting: (B, D_state) -> (B*T, patch_dim).
  [[nodiscard]] Tensor patchify(const Tensor& x) const;

  /// Inverse gather: (B*T, patch_dim) -> (B, D_state).
  [[nodiscard]] Tensor unpatchify(const Tensor& p, std::size_t batch) const;

 private:
  VitConfig cfg_;
  Linear proj_;
  std::vector<std::size_t> gather_;  // token-major index map into the state
  Tensor patches_;                   // cached for backward
};

class ViT final : public Module {
 public:
  explicit ViT(const VitConfig& cfg);

  /// x: (B, state_dim) batch of flattened fields; returns the predicted
  /// next states (input + learned increment).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

  [[nodiscard]] const VitConfig& config() const { return cfg_; }

  /// All parameters in registration order.
  [[nodiscard]] std::vector<Param*> parameters();

  [[nodiscard]] std::size_t num_params();

  /// Flat (de)serialization for checkpoints and parameter broadcast.
  [[nodiscard]] std::vector<double> state_vector();
  void load_state_vector(std::span<const double> state);

 private:
  VitConfig cfg_;
  rng::Rng rng_;
  PatchEmbed embed_;
  Param pos_;  ///< learned positional embedding (T, E)
  Dropout embed_drop_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
  Linear head_;
  std::size_t batch_ = 0;  // batch of the last forward (for backward)
};

}  // namespace turbda::nn
