#include "nn/attention.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/gemm.hpp"

namespace turbda::nn {

using tensor::gemm;
using tensor::Trans;

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t embed, std::size_t heads,
                                               std::size_t tokens, double attn_dropout,
                                               rng::Rng* rng, const std::string& name)
    : c_(embed),
      h_(heads),
      t_(tokens),
      dh_(embed / heads),
      scale_(1.0 / std::sqrt(static_cast<double>(embed / heads))),
      wq_(embed, embed, *rng, name + ".q"),
      wk_(embed, embed, *rng, name + ".k"),
      wv_(embed, embed, *rng, name + ".v"),
      wo_(embed, embed, *rng, name + ".o"),
      attn_drop_(attn_dropout, rng) {
  TURBDA_REQUIRE(embed % heads == 0, "embed dim must be divisible by heads");
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  TURBDA_REQUIRE(x.rank() == 2 && x.extent(1) == c_ && x.extent(0) % t_ == 0,
                 "MHSA: input must be (B*T, C)");
  const std::size_t b = x.extent(0) / t_;

  q_ = wq_.forward(x);
  k_ = wk_.forward(x);
  v_ = wv_.forward(x);

  attn_.reset({b * h_, t_, t_});
  concat_.reset({b * t_, c_});

  std::vector<double> srow(t_);
  for (std::size_t s = 0; s < b; ++s) {
    for (std::size_t hd = 0; hd < h_; ++hd) {
      const double* qp = q_.data() + s * t_ * c_ + hd * dh_;
      const double* kp = k_.data() + s * t_ * c_ + hd * dh_;
      double* ap = attn_.data() + (s * h_ + hd) * t_ * t_;
      // scores = scale * Q K^T  (T x T)
      gemm(Trans::No, Trans::Yes, t_, t_, dh_, scale_, qp, c_, kp, c_, 0.0, ap, t_);
      // row-wise softmax
      for (std::size_t i = 0; i < t_; ++i) {
        double* row = ap + i * t_;
        double mx = row[0];
        for (std::size_t j = 1; j < t_; ++j) mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (std::size_t j = 0; j < t_; ++j) {
          row[j] = std::exp(row[j] - mx);
          denom += row[j];
        }
        const double inv = 1.0 / denom;
        for (std::size_t j = 0; j < t_; ++j) row[j] *= inv;
      }
    }
  }

  // Attention dropout acts on the whole (B*h*T, T) probability tensor; keep
  // the pre-dropout probabilities for the softmax backward.
  {
    Tensor a2 = attn_;
    a2.reshape({b * h_ * t_, t_});
    a2 = attn_drop_.forward(a2);
    a2.reshape({b * h_, t_, t_});
    attn_used_ = std::move(a2);
  }

  for (std::size_t s = 0; s < b; ++s) {
    for (std::size_t hd = 0; hd < h_; ++hd) {
      const double* ap = attn_used_.data() + (s * h_ + hd) * t_ * t_;
      const double* vp = v_.data() + s * t_ * c_ + hd * dh_;
      double* op = concat_.data() + s * t_ * c_ + hd * dh_;
      // out = A V  (T x dh), written into the head's column block.
      gemm(Trans::No, Trans::No, t_, dh_, t_, 1.0, ap, t_, vp, c_, 0.0, op, c_);
    }
  }

  return wo_.forward(concat_);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  const std::size_t b = grad_out.extent(0) / t_;
  const Tensor d_concat = wo_.backward(grad_out);

  // dA on the post-dropout path for the whole tensor, then route through the
  // dropout mask before the softmax backward.
  const std::size_t bh = b * h_;
  Tensor da_used({bh * t_, t_});
  for (std::size_t s = 0; s < b; ++s) {
    for (std::size_t hd = 0; hd < h_; ++hd) {
      const double* vp = v_.data() + s * t_ * c_ + hd * dh_;
      const double* dop = d_concat.data() + s * t_ * c_ + hd * dh_;
      double* dap = da_used.data() + (s * h_ + hd) * t_ * t_;
      gemm(Trans::No, Trans::Yes, t_, t_, dh_, 1.0, dop, c_, vp, c_, 0.0, dap, t_);
    }
  }
  const Tensor da_all = attn_drop_.backward(da_used);

  Tensor dq({b * t_, c_}), dk({b * t_, c_}), dv({b * t_, c_});
  std::vector<double> ds(t_ * t_);

  for (std::size_t s = 0; s < b; ++s) {
    for (std::size_t hd = 0; hd < h_; ++hd) {
      const double* ap = attn_.data() + (s * h_ + hd) * t_ * t_;
      const double* aup = attn_used_.data() + (s * h_ + hd) * t_ * t_;
      const double* qp = q_.data() + s * t_ * c_ + hd * dh_;
      const double* kp = k_.data() + s * t_ * c_ + hd * dh_;
      const double* dop = d_concat.data() + s * t_ * c_ + hd * dh_;
      const double* dap = da_all.data() + (s * h_ + hd) * t_ * t_;
      double* dqp = dq.data() + s * t_ * c_ + hd * dh_;
      double* dkp = dk.data() + s * t_ * c_ + hd * dh_;
      double* dvp = dv.data() + s * t_ * c_ + hd * dh_;

      // dV = A_used^T dO.
      gemm(Trans::Yes, Trans::No, t_, dh_, t_, 1.0, aup, t_, dop, c_, 0.0, dvp, c_);

      // Softmax backward per row: dS_ij = A_ij (dA_ij - sum_j dA_ij A_ij).
      for (std::size_t i = 0; i < t_; ++i) {
        const double* arow = ap + i * t_;
        const double* darow = dap + i * t_;
        double dotv = 0.0;
        for (std::size_t j = 0; j < t_; ++j) dotv += darow[j] * arow[j];
        double* dsrow = ds.data() + i * t_;
        for (std::size_t j = 0; j < t_; ++j) dsrow[j] = arow[j] * (darow[j] - dotv);
      }

      // dQ = scale * dS K; dK = scale * dS^T Q.
      gemm(Trans::No, Trans::No, t_, dh_, t_, scale_, ds.data(), t_, kp, c_, 0.0, dqp, c_);
      gemm(Trans::Yes, Trans::No, t_, dh_, t_, scale_, ds.data(), t_, qp, c_, 0.0, dkp, c_);
    }
  }

  Tensor dx = wq_.backward(dq);
  dx += wk_.backward(dk);
  dx += wv_.backward(dv);
  return dx;
}

void MultiHeadSelfAttention::collect_params(std::vector<Param*>& out) {
  wq_.collect_params(out);
  wk_.collect_params(out);
  wv_.collect_params(out);
  wo_.collect_params(out);
}

void MultiHeadSelfAttention::set_training(bool training) {
  Module::set_training(training);
  attn_drop_.set_training(training);
}

}  // namespace turbda::nn
