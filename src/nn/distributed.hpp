// Distributed data-parallel ViT training over SimComm ranks — the executable
// counterpart of the paper's §III-B strategies (Table I). Where turbda::hpc
// *models* these strategies at Frontier scale, this module *runs* them:
// every rank owns a replica (DDP) or a shard (ZeRO-style) and the gradient /
// parameter traffic goes through real ring collectives, so communication
// volumes and numerical equivalence are testable.
//
// Supported strategies:
//   - DDP:   gradients all-reduced after backward; every rank steps the full
//            optimizer. One all-reduce of P elements per step.
//   - ZeRO2: gradients reduce-scattered (each rank owns P/n of them), the
//            rank steps only its optimizer shard, updated parameters are
//            all-gathered. Same wire volume as DDP, but optimizer and
//            gradient memory drop by ~n (Table I "shard_grad_op"/"stage 2").
//
// Both produce bit-identical parameters to single-process training with the
// same seeds and the summed-gradient convention (verified in tests).
#pragma once

#include <memory>

#include "nn/optim.hpp"
#include "nn/vit.hpp"
#include "parallel/sim_comm.hpp"

namespace turbda::nn {

enum class DataParallelStrategy { DDP, ZeRO2 };

struct DistTrainConfig {
  DataParallelStrategy strategy = DataParallelStrategy::DDP;
  AdamWConfig optimizer{};
  double clip_norm = 0.0;  ///< 0 disables clipping (clipping requires an
                           ///< extra all-reduce of the norm; DDP only)
};

/// One rank's view of data-parallel training. Construct inside a
/// parallel::run_world body with that rank's communicator.
class DistributedTrainer {
 public:
  DistributedTrainer(std::shared_ptr<ViT> vit, parallel::SimComm& comm, DistTrainConfig cfg);

  /// Synchronizes parameters from rank 0 so all replicas start identical.
  void broadcast_parameters();

  /// One training step on this rank's micro-batch (x, y are this rank's
  /// shard of the global batch). Gradients are averaged over the *global*
  /// batch. Returns this rank's local loss.
  double step(const Tensor& x, const Tensor& y);

  /// Total learnable parameters.
  [[nodiscard]] std::size_t param_elems() const { return flat_size_; }

  /// Optimizer-state elements held by THIS rank (2x its owned parameters) —
  /// demonstrates the Table I memory effect of sharding.
  [[nodiscard]] std::size_t local_optimizer_elems() const;

  /// Bytes this rank has contributed to gradient/parameter traffic so far.
  [[nodiscard]] std::uint64_t bytes_on_wire() const { return comm_.stats().bytes_sent; }

 private:
  // Flat views over all parameter/gradient storage, in registration order.
  void gather_flat_grads(std::vector<double>& out) const;
  void scatter_flat_grads(std::span<const double> in);
  void gather_flat_params(std::vector<double>& out) const;
  void scatter_flat_params(std::span<const double> in);

  std::pair<std::size_t, std::size_t> my_shard() const;

  std::shared_ptr<ViT> vit_;
  parallel::SimComm& comm_;
  DistTrainConfig cfg_;
  std::vector<Param*> params_;
  std::size_t flat_size_ = 0;

  // DDP: full-size optimizer; ZeRO2: shard-only moments.
  std::unique_ptr<AdamW> full_opt_;
  std::vector<double> m_, v_;  // ZeRO2 shard moments
  long t_ = 0;
};

}  // namespace turbda::nn
