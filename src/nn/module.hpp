// Module base for the from-scratch neural-network stack behind the ViT
// surrogate (paper §III-B). Modules cache forward activations and implement
// hand-derived backward passes; parameters are exposed through a flat list
// so optimizers and distributed-sharding logic never inspect module types.
#pragma once

#include <string>
#include <vector>

#include "rng/rng.hpp"
#include "tensor/tensor.hpp"

namespace turbda::nn {

using tensor::Tensor;

/// A learnable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n) : name(std::move(n)) {}

  void reset_shape(std::initializer_list<std::size_t> shape) {
    value.reset(shape);
    grad.reset(shape);
  }

  void zero_grad() { grad.fill(0.0); }

  [[nodiscard]] std::size_t size() const { return value.size(); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// x: (rows, features) row-major; returns activations of the same rows.
  virtual Tensor forward(const Tensor& x) = 0;

  /// grad w.r.t. output -> grad w.r.t. input; accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append pointers to all learnable parameters (stable order).
  virtual void collect_params(std::vector<Param*>& /*out*/) {}

  /// Train/eval switch (dropout & droppath act only in training).
  virtual void set_training(bool training) { training_ = training; }

  [[nodiscard]] bool training() const { return training_; }

 protected:
  bool training_ = true;
};

/// Truncated-normal-ish init used for all weight matrices (std scaled by
/// fan-in, values clipped at 2 std) — the standard ViT initialization.
inline void init_trunc_normal(Tensor& w, double std_dev, rng::Rng& rng) {
  for (double& v : w.flat()) {
    double g = rng.gaussian();
    while (std::abs(g) > 2.0) g = rng.gaussian();
    v = g * std_dev;
  }
}

}  // namespace turbda::nn
