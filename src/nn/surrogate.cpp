#include "nn/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace turbda::nn {

// ------------------------------------------------------------ FieldScaler ---

void FieldScaler::fit(const Tensor& states) {
  TURBDA_REQUIRE(states.rank() == 2 && states.size() > 0, "FieldScaler: need (N, D) samples");
  double s = 0.0, s2 = 0.0;
  for (double v : states.flat()) {
    s += v;
    s2 += v * v;
  }
  const double n = static_cast<double>(states.size());
  mean_ = s / n;
  const double var = std::max(1e-30, s2 / n - mean_ * mean_);
  std_ = std::sqrt(var);
}

void FieldScaler::normalize(std::span<double> state) const {
  for (double& v : state) v = (v - mean_) / std_;
}

void FieldScaler::denormalize(std::span<double> state) const {
  for (double& v : state) v = v * std_ + mean_;
}

// ------------------------------------------------------ SurrogateForecast ---

SurrogateForecast::SurrogateForecast(std::shared_ptr<ViT> vit, FieldScaler scaler)
    : vit_(std::move(vit)), scaler_(scaler) {
  vit_->set_training(false);
}

void SurrogateForecast::forecast(std::span<double> state) {
  TURBDA_REQUIRE(state.size() == dim(), "SurrogateForecast: state size mismatch");
  Tensor x({1, dim()});
  std::copy(state.begin(), state.end(), x.flat().begin());
  scaler_.normalize(x.flat());
  vit_->set_training(false);
  const Tensor y = vit_->forward(x);
  std::copy(y.flat().begin(), y.flat().end(), state.begin());
  scaler_.denormalize(state);
}

void SurrogateForecast::forecast_batch(Tensor& states) {
  TURBDA_REQUIRE(states.rank() == 2 && states.extent(1) == dim(),
                 "forecast_batch: states must be (M, D)");
  scaler_.normalize(states.flat());
  vit_->set_training(false);
  states = vit_->forward(states);
  scaler_.denormalize(states.flat());
}

// ------------------------------------------------------- SurrogateTrainer ---

SurrogateTrainer::SurrogateTrainer(std::shared_ptr<ViT> vit, const FieldScaler& scaler,
                                   AdamWConfig opt_cfg, double clip_norm)
    : vit_(std::move(vit)), scaler_(scaler), opt_(vit_->parameters(), opt_cfg),
      clip_norm_(clip_norm) {}

TrainStats SurrogateTrainer::train_batch(const Tensor& x, const Tensor& y) {
  Tensor xn = x, yn = y;
  scaler_.normalize(xn.flat());
  scaler_.normalize(yn.flat());
  vit_->set_training(true);
  opt_.zero_grad();
  const Tensor pred = vit_->forward(xn);
  Tensor grad;
  TrainStats st;
  st.loss = mse_loss(pred, yn, grad);
  vit_->backward(grad);
  st.grad_norm = clip_grad_norm(vit_->parameters(), clip_norm_);
  opt_.step();
  return st;
}

std::vector<double> SurrogateTrainer::fit(const Tensor& xs, const Tensor& ys, int epochs,
                                          std::size_t batch_size, double base_lr, rng::Rng& rng) {
  TURBDA_REQUIRE(xs.rank() == 2 && ys.rank() == 2 && xs.extent(0) == ys.extent(0),
                 "fit: paired (N, D) datasets required");
  const std::size_t n = xs.extent(0), d = xs.extent(1);
  const std::size_t nb = (n + batch_size - 1) / batch_size;
  const long total_steps = static_cast<long>(nb) * epochs;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> epoch_losses;
  long step = 0;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(std::span<std::size_t>(order));
    double sum_loss = 0.0;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t lo = b * batch_size;
      const std::size_t hi = std::min(n, lo + batch_size);
      Tensor xb({hi - lo, d}), yb({hi - lo, d});
      for (std::size_t i = lo; i < hi; ++i) {
        std::copy(xs.row(order[i]).begin(), xs.row(order[i]).end(), xb.row(i - lo).begin());
        std::copy(ys.row(order[i]).begin(), ys.row(order[i]).end(), yb.row(i - lo).begin());
      }
      opt_.set_lr(warmup_cosine_lr(base_lr, step, total_steps / 20, total_steps));
      sum_loss += train_batch(xb, yb).loss * static_cast<double>(hi - lo);
      ++step;
    }
    epoch_losses.push_back(sum_loss / static_cast<double>(n));
  }
  vit_->set_training(false);
  return epoch_losses;
}

// ---------------------------------------------------------- OnlineTrainer ---

OnlineTrainer::OnlineTrainer(std::shared_ptr<ViT> vit, const FieldScaler& scaler,
                             AdamWConfig opt_cfg, std::size_t buffer_capacity,
                             int steps_per_cycle)
    : vit_(std::move(vit)), scaler_(scaler), opt_(vit_->parameters(), opt_cfg),
      capacity_(buffer_capacity), steps_(steps_per_cycle) {
  TURBDA_REQUIRE(capacity_ >= 1 && steps_ >= 0, "bad online-trainer configuration");
}

TrainStats OnlineTrainer::observe_transition(std::span<const double> prev_analysis,
                                             std::span<const double> next_analysis,
                                             rng::Rng& rng) {
  pairs_.emplace_back(std::vector<double>(prev_analysis.begin(), prev_analysis.end()),
                      std::vector<double>(next_analysis.begin(), next_analysis.end()));
  if (pairs_.size() > capacity_) pairs_.pop_front();

  TrainStats last{};
  const std::size_t d = prev_analysis.size();
  const std::size_t batch = std::min<std::size_t>(8, pairs_.size());
  for (int s = 0; s < steps_; ++s) {
    Tensor xb({batch, d}), yb({batch, d});
    for (std::size_t i = 0; i < batch; ++i) {
      const auto& pr = pairs_[rng.uniform_int(pairs_.size())];
      std::copy(pr.first.begin(), pr.first.end(), xb.row(i).begin());
      std::copy(pr.second.begin(), pr.second.end(), yb.row(i).begin());
    }
    Tensor xn = xb, yn = yb;
    scaler_.normalize(xn.flat());
    scaler_.normalize(yn.flat());
    vit_->set_training(true);
    opt_.zero_grad();
    const Tensor pred = vit_->forward(xn);
    Tensor grad;
    last.loss = mse_loss(pred, yn, grad);
    vit_->backward(grad);
    last.grad_norm = clip_grad_norm(vit_->parameters(), 1.0);
    opt_.step();
  }
  vit_->set_training(false);
  return last;
}

}  // namespace turbda::nn
