#include "nn/vit.hpp"

#include <cmath>

#include "common/check.hpp"

namespace turbda::nn {

std::size_t VitConfig::param_count() const {
  const std::size_t e = embed_dim;
  const std::size_t hdn = mlp_hidden();
  const std::size_t pd = patch_dim();
  const std::size_t t = tokens();
  std::size_t n = 0;
  n += pd * e + e;           // patch projection
  n += t * e;                // positional embedding
  const std::size_t attn = 4 * (e * e + e);       // Wq, Wk, Wv, Wo
  const std::size_t mlp = e * hdn + hdn + hdn * e + e;
  const std::size_t lns = 2 * (2 * e);            // two layernorms per block
  n += depth * (attn + mlp + lns);
  n += 2 * e;                // final layernorm
  n += e * pd + pd;          // head
  return n;
}

// ------------------------------------------------------------------- MLP ---

Mlp::Mlp(std::size_t embed, std::size_t hidden, double dropout, rng::Rng* rng,
         const std::string& name)
    : fc1_(embed, hidden, *rng, name + ".fc1"),
      fc2_(hidden, embed, *rng, name + ".fc2"),
      drop_(dropout, rng) {}

Tensor Mlp::forward(const Tensor& x) {
  return fc2_.forward(drop_.forward(act_.forward(fc1_.forward(x))));
}

Tensor Mlp::backward(const Tensor& grad_out) {
  return fc1_.backward(act_.backward(drop_.backward(fc2_.backward(grad_out))));
}

void Mlp::collect_params(std::vector<Param*>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

void Mlp::set_training(bool training) {
  Module::set_training(training);
  drop_.set_training(training);
}

// --------------------------------------------------------- TransformerBlock

TransformerBlock::TransformerBlock(const VitConfig& cfg, rng::Rng* rng, const std::string& name)
    : ln1_(cfg.embed_dim, name + ".ln1"),
      ln2_(cfg.embed_dim, name + ".ln2"),
      attn_(cfg.embed_dim, cfg.heads, cfg.tokens(), cfg.attn_dropout, rng, name + ".attn"),
      mlp_(cfg.embed_dim, cfg.mlp_hidden(), cfg.dropout, rng, name + ".mlp"),
      dp1_(cfg.droppath, cfg.tokens(), rng),
      dp2_(cfg.droppath, cfg.tokens(), rng) {}

Tensor TransformerBlock::forward(const Tensor& x) {
  Tensor y = x;
  y += dp1_.forward(attn_.forward(ln1_.forward(x)));
  Tensor z = y;
  z += dp2_.forward(mlp_.forward(ln2_.forward(y)));
  return z;
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  // z = y + dp2(mlp(ln2(y)));  dy = dz + ln2^T mlp^T dp2^T dz
  Tensor dy = grad_out;
  dy += ln2_.backward(mlp_.backward(dp2_.backward(grad_out)));
  Tensor dx = dy;
  dx += ln1_.backward(attn_.backward(dp1_.backward(dy)));
  return dx;
}

void TransformerBlock::collect_params(std::vector<Param*>& out) {
  ln1_.collect_params(out);
  attn_.collect_params(out);
  ln2_.collect_params(out);
  mlp_.collect_params(out);
}

void TransformerBlock::set_training(bool training) {
  Module::set_training(training);
  ln1_.set_training(training);
  ln2_.set_training(training);
  attn_.set_training(training);
  mlp_.set_training(training);
  dp1_.set_training(training);
  dp2_.set_training(training);
}

// ------------------------------------------------------------- PatchEmbed ---

PatchEmbed::PatchEmbed(const VitConfig& cfg, rng::Rng* rng)
    : cfg_(cfg), proj_(cfg.patch_dim(), cfg.embed_dim, *rng, "patch_embed") {
  TURBDA_REQUIRE(cfg.image % cfg.patch == 0, "image size must be divisible by patch size");
  const std::size_t n = cfg.image, p = cfg.patch, g = n / p, c = cfg.channels;
  gather_.reserve(cfg.tokens() * cfg.patch_dim());
  // Token order: row-major over the (g x g) patch grid. Feature order within
  // a token: channel-major then row-major pixels (matches unpatchify below).
  for (std::size_t ty = 0; ty < g; ++ty)
    for (std::size_t tx = 0; tx < g; ++tx)
      for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t py = 0; py < p; ++py)
          for (std::size_t px = 0; px < p; ++px)
            gather_.push_back(ch * n * n + (ty * p + py) * n + (tx * p + px));
}

Tensor PatchEmbed::patchify(const Tensor& x) const {
  const std::size_t b = x.extent(0), t = cfg_.tokens(), pd = cfg_.patch_dim();
  Tensor out({b * t, pd});
  for (std::size_t s = 0; s < b; ++s) {
    const auto row = x.row(s);
    for (std::size_t tok = 0; tok < t; ++tok) {
      auto orow = out.row(s * t + tok);
      const std::size_t* idx = gather_.data() + tok * pd;
      for (std::size_t f = 0; f < pd; ++f) orow[f] = row[idx[f]];
    }
  }
  return out;
}

Tensor PatchEmbed::unpatchify(const Tensor& pt, std::size_t batch) const {
  const std::size_t t = cfg_.tokens(), pd = cfg_.patch_dim();
  TURBDA_REQUIRE(pt.extent(0) == batch * t && pt.extent(1) == pd, "unpatchify: bad shape");
  Tensor out({batch, cfg_.state_dim()});
  for (std::size_t s = 0; s < batch; ++s) {
    auto orow = out.row(s);
    for (std::size_t tok = 0; tok < t; ++tok) {
      const auto prow = pt.row(s * t + tok);
      const std::size_t* idx = gather_.data() + tok * pd;
      for (std::size_t f = 0; f < pd; ++f) orow[idx[f]] = prow[f];
    }
  }
  return out;
}

Tensor PatchEmbed::forward(const Tensor& x) {
  TURBDA_REQUIRE(x.rank() == 2 && x.extent(1) == cfg_.state_dim(),
                 "PatchEmbed: input must be (B, state_dim)");
  patches_ = patchify(x);
  return proj_.forward(patches_);
}

Tensor PatchEmbed::backward(const Tensor& grad_out) {
  const Tensor dpatches = proj_.backward(grad_out);
  const std::size_t b = dpatches.extent(0) / cfg_.tokens();
  return unpatchify(dpatches, b);
}

void PatchEmbed::collect_params(std::vector<Param*>& out) { proj_.collect_params(out); }

// ------------------------------------------------------------------- ViT ---

ViT::ViT(const VitConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      embed_(cfg, &rng_),
      pos_("pos_embed"),
      embed_drop_(cfg.dropout, &rng_),
      final_ln_(cfg.embed_dim, "final_ln"),
      head_(cfg.embed_dim, cfg.patch_dim(), rng_, "head") {
  TURBDA_REQUIRE(cfg.embed_dim % cfg.heads == 0, "embed_dim must be divisible by heads");
  pos_.reset_shape({cfg.tokens(), cfg.embed_dim});
  init_trunc_normal(pos_.value, 0.02, rng_);
  blocks_.reserve(cfg.depth);
  for (std::size_t d = 0; d < cfg.depth; ++d)
    blocks_.push_back(
        std::make_unique<TransformerBlock>(cfg, &rng_, "block" + std::to_string(d)));
  // Zero-init the head so the initial surrogate is the identity map — the
  // right prior for a one-step dynamics emulator.
  head_.weight.value.fill(0.0);
}

Tensor ViT::forward(const Tensor& x) {
  TURBDA_REQUIRE(x.rank() == 2 && x.extent(1) == cfg_.state_dim(),
                 "ViT: input must be (B, state_dim)");
  batch_ = x.extent(0);
  Tensor h = embed_.forward(x);  // (B*T, E)
  const std::size_t t = cfg_.tokens();
  for (std::size_t s = 0; s < batch_; ++s)
    for (std::size_t tok = 0; tok < t; ++tok) {
      auto row = h.row(s * t + tok);
      for (std::size_t j = 0; j < cfg_.embed_dim; ++j) row[j] += pos_.value(tok, j);
    }
  h = embed_drop_.forward(h);
  for (auto& b : blocks_) h = b->forward(h);
  h = final_ln_.forward(h);
  const Tensor inc_patches = head_.forward(h);
  Tensor out = embed_.unpatchify(inc_patches, batch_);
  out += x;  // residual prediction: next = current + increment
  return out;
}

Tensor ViT::backward(const Tensor& grad_out) {
  TURBDA_REQUIRE(grad_out.extent(0) == batch_, "ViT: backward batch mismatch");
  // out = x + unpatchify(head(...)); the increment path gradient:
  Tensor dpatches = embed_.patchify(grad_out);
  Tensor dh = head_.backward(dpatches);
  dh = final_ln_.backward(dh);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) dh = (*it)->backward(dh);
  dh = embed_drop_.backward(dh);
  const std::size_t t = cfg_.tokens();
  for (std::size_t s = 0; s < batch_; ++s)
    for (std::size_t tok = 0; tok < t; ++tok) {
      const auto row = dh.row(s * t + tok);
      for (std::size_t j = 0; j < cfg_.embed_dim; ++j) pos_.grad(tok, j) += row[j];
    }
  Tensor dx = embed_.backward(dh);
  dx += grad_out;  // residual path
  return dx;
}

void ViT::collect_params(std::vector<Param*>& out) {
  embed_.collect_params(out);
  out.push_back(&pos_);
  for (auto& b : blocks_) b->collect_params(out);
  final_ln_.collect_params(out);
  head_.collect_params(out);
}

void ViT::set_training(bool training) {
  Module::set_training(training);
  embed_drop_.set_training(training);
  for (auto& b : blocks_) b->set_training(training);
  final_ln_.set_training(training);
}

std::vector<Param*> ViT::parameters() {
  std::vector<Param*> out;
  collect_params(out);
  return out;
}

std::size_t ViT::num_params() {
  std::size_t n = 0;
  for (const Param* p : parameters()) n += p->size();
  return n;
}

std::vector<double> ViT::state_vector() {
  std::vector<double> out;
  for (const Param* p : parameters()) {
    const auto f = p->value.flat();
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

void ViT::load_state_vector(std::span<const double> state) {
  std::size_t off = 0;
  for (Param* p : parameters()) {
    auto f = p->value.flat();
    TURBDA_REQUIRE(off + f.size() <= state.size(), "load_state_vector: state too short");
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(off),
              state.begin() + static_cast<std::ptrdiff_t>(off + f.size()), f.begin());
    off += f.size();
  }
  TURBDA_REQUIRE(off == state.size(), "load_state_vector: state size mismatch");
}

}  // namespace turbda::nn
