// Optimization: AdamW, gradient clipping and a warmup-cosine LR schedule —
// the standard recipe for ViT training (paper §III-B notes Adam's 2x
// parameter-sized optimizer state, which is what ZeRO/FSDP shard).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace turbda::nn {

struct AdamWConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class AdamW {
 public:
  AdamW(std::vector<Param*> params, AdamWConfig cfg);

  /// One update from the accumulated gradients; does not zero them.
  void step();

  void zero_grad();

  void set_lr(double lr) { cfg_.lr = lr; }
  [[nodiscard]] double lr() const { return cfg_.lr; }
  [[nodiscard]] long steps_done() const { return t_; }

  /// First/second moment state sizes in doubles — 2x parameters, the "2X for
  /// Adam optimizer" of the paper's memory budget.
  [[nodiscard]] std::size_t state_size() const;

 private:
  std::vector<Param*> params_;
  AdamWConfig cfg_;
  std::vector<std::vector<double>> m_, v_;
  long t_ = 0;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

/// Linear warmup followed by cosine decay to zero.
[[nodiscard]] double warmup_cosine_lr(double base_lr, long step, long warmup_steps,
                                      long total_steps);

/// Mean-squared-error loss over all elements; writes d(loss)/d(pred) into
/// `grad` (same shape as pred).
double mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

}  // namespace turbda::nn
