// Basic layers: Linear, LayerNorm, GELU, Dropout, DropPath.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace turbda::nn {

/// y = x W + b with x (N, in), W (in, out).
class Linear final : public Module {
 public:
  Linear(std::size_t in, std::size_t out, rng::Rng& rng, std::string name = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

  Param weight;  ///< (in, out)
  Param bias;    ///< (out)

 private:
  std::size_t in_, out_;
  Tensor x_;  // cached input
};

/// Per-row layer normalization over the feature dimension with learnable
/// gain/bias ("normalization layers before and after the attention
/// mechanism", paper Fig. 2).
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(std::size_t features, std::string name = "ln", double eps = 1e-5);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;

  Param gain;  ///< (features)
  Param bias;  ///< (features)

 private:
  std::size_t c_;
  double eps_;
  Tensor xhat_;                // cached normalized input
  std::vector<double> inv_sd_; // cached 1/sigma per row
};

/// GELU activation (tanh approximation, as in standard ViT MLPs).
class Gelu final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor x_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training.
class Dropout final : public Module {
 public:
  Dropout(double p, rng::Rng* rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  double p_;
  rng::Rng* rng_;
  Tensor mask_;
};

/// DropPath / stochastic depth: zeroes a residual *branch* for entire
/// samples. The branch output rows are grouped in blocks of `tokens` rows
/// per sample; a dropped sample has all its rows zeroed (scaled 1/(1-p)
/// otherwise).
class DropPath final : public Module {
 public:
  DropPath(double p, std::size_t tokens, rng::Rng* rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  double p_;
  std::size_t tokens_;
  rng::Rng* rng_;
  std::vector<double> keep_;  // per-sample multiplier
};

}  // namespace turbda::nn
