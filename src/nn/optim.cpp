#include "nn/optim.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace turbda::nn {

AdamW::AdamW(std::vector<Param*> params, AdamWConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  TURBDA_REQUIRE(!params_.empty(), "AdamW needs parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->size(), 0.0);
    v_.emplace_back(p->size(), 0.0);
  }
}

void AdamW::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto w = p.value.flat();
    const auto g = p.grad.flat();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = cfg_.beta1 * m[j] + (1.0 - cfg_.beta1) * g[j];
      v[j] = cfg_.beta2 * v[j] + (1.0 - cfg_.beta2) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      // Decoupled weight decay (AdamW).
      w[j] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) + cfg_.weight_decay * w[j]);
    }
  }
}

void AdamW::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

std::size_t AdamW::state_size() const {
  std::size_t n = 0;
  for (const auto& m : m_) n += m.size();
  return 2 * n;
}

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  double sq = 0.0;
  for (const Param* p : params)
    for (double g : p->grad.flat()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Param* p : params)
      for (double& g : p->grad.flat()) g *= scale;
  }
  return norm;
}

double warmup_cosine_lr(double base_lr, long step, long warmup_steps, long total_steps) {
  TURBDA_REQUIRE(total_steps > 0, "total_steps must be positive");
  if (warmup_steps > 0 && step < warmup_steps)
    return base_lr * static_cast<double>(step + 1) / static_cast<double>(warmup_steps);
  const double progress = static_cast<double>(step - warmup_steps) /
                          static_cast<double>(std::max<long>(1, total_steps - warmup_steps));
  return 0.5 * base_lr * (1.0 + std::cos(kPi * std::min(1.0, progress)));
}

double mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  TURBDA_REQUIRE(pred.size() == target.size(), "mse_loss: shape mismatch");
  grad.reset(pred.shape());
  const auto pf = pred.flat();
  const auto tf = target.flat();
  auto gf = grad.flat();
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(pf.size());
  for (std::size_t i = 0; i < pf.size(); ++i) {
    const double d = pf[i] - tf[i];
    loss += d * d;
    gf[i] = 2.0 * d * inv;
  }
  return loss * inv;
}

}  // namespace turbda::nn
