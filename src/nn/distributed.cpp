#include "nn/distributed.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace turbda::nn {

DistributedTrainer::DistributedTrainer(std::shared_ptr<ViT> vit, parallel::SimComm& comm,
                                       DistTrainConfig cfg)
    : vit_(std::move(vit)), comm_(comm), cfg_(cfg) {
  params_ = vit_->parameters();
  for (const Param* p : params_) flat_size_ += p->size();
  if (cfg_.strategy == DataParallelStrategy::DDP) {
    full_opt_ = std::make_unique<AdamW>(params_, cfg_.optimizer);
  } else {
    // ZeRO2: pad the flat space so every rank owns an equal block.
    const auto n = static_cast<std::size_t>(comm_.size());
    const std::size_t padded = (flat_size_ + n - 1) / n * n;
    m_.assign(padded / n, 0.0);
    v_.assign(padded / n, 0.0);
  }
}

std::pair<std::size_t, std::size_t> DistributedTrainer::my_shard() const {
  const auto n = static_cast<std::size_t>(comm_.size());
  const std::size_t padded = (flat_size_ + n - 1) / n * n;
  const std::size_t blk = padded / n;
  const std::size_t begin = blk * static_cast<std::size_t>(comm_.rank());
  return {begin, blk};
}

void DistributedTrainer::broadcast_parameters() {
  std::vector<double> flat;
  gather_flat_params(flat);
  comm_.broadcast(flat, 0);
  scatter_flat_params(flat);
}

void DistributedTrainer::gather_flat_grads(std::vector<double>& out) const {
  out.clear();
  out.reserve(flat_size_);
  for (const Param* p : params_) {
    const auto g = p->grad.flat();
    out.insert(out.end(), g.begin(), g.end());
  }
}

void DistributedTrainer::scatter_flat_grads(std::span<const double> in) {
  std::size_t off = 0;
  for (Param* p : params_) {
    auto g = p->grad.flat();
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(off),
              in.begin() + static_cast<std::ptrdiff_t>(off + g.size()), g.begin());
    off += g.size();
  }
}

void DistributedTrainer::gather_flat_params(std::vector<double>& out) const {
  out.clear();
  out.reserve(flat_size_);
  for (const Param* p : params_) {
    const auto w = p->value.flat();
    out.insert(out.end(), w.begin(), w.end());
  }
}

void DistributedTrainer::scatter_flat_params(std::span<const double> in) {
  std::size_t off = 0;
  for (Param* p : params_) {
    auto w = p->value.flat();
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(off),
              in.begin() + static_cast<std::ptrdiff_t>(off + w.size()), w.begin());
    off += w.size();
  }
}

std::size_t DistributedTrainer::local_optimizer_elems() const {
  if (cfg_.strategy == DataParallelStrategy::DDP) return 2 * flat_size_;
  return m_.size() + v_.size();
}

double DistributedTrainer::step(const Tensor& x, const Tensor& y) {
  TURBDA_REQUIRE(x.rank() == 2 && y.rank() == 2 && x.extent(0) == y.extent(0),
                 "DistributedTrainer::step: paired (B, D) micro-batches required");
  const auto n = static_cast<double>(comm_.size());

  // Local forward/backward.
  for (Param* p : params_) p->zero_grad();
  vit_->set_training(true);
  const Tensor pred = vit_->forward(x);
  Tensor grad;
  const double loss = mse_loss(pred, y, grad);
  vit_->backward(grad);

  if (cfg_.strategy == DataParallelStrategy::DDP) {
    // Average gradients across replicas: one all-reduce of P elements.
    std::vector<double> flat;
    gather_flat_grads(flat);
    comm_.allreduce_sum(flat);
    for (double& g : flat) g /= n;
    scatter_flat_grads(flat);
    if (cfg_.clip_norm > 0.0) clip_grad_norm(params_, cfg_.clip_norm);
    full_opt_->step();
    ++t_;
    return loss;
  }

  // ZeRO2: reduce-scatter gradients; each rank updates its parameter shard
  // with its optimizer shard; all-gather the updated parameters.
  const auto world = static_cast<std::size_t>(comm_.size());
  const std::size_t padded = (flat_size_ + world - 1) / world * world;
  std::vector<double> flat(padded, 0.0);
  {
    std::vector<double> g;
    gather_flat_grads(g);
    std::copy(g.begin(), g.end(), flat.begin());
  }
  const auto [begin, blk] = my_shard();
  std::vector<double> my_grad(blk);
  comm_.reduce_scatter_sum(flat, my_grad);
  for (double& g : my_grad) g /= n;

  // AdamW on the owned shard only.
  std::vector<double> params_flat;
  gather_flat_params(params_flat);
  params_flat.resize(padded, 0.0);
  ++t_;
  const auto& oc = cfg_.optimizer;
  const double bc1 = 1.0 - std::pow(oc.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(oc.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < blk; ++i) {
    const std::size_t gi = begin + i;
    if (gi >= flat_size_) break;  // padding tail
    m_[i] = oc.beta1 * m_[i] + (1.0 - oc.beta1) * my_grad[i];
    v_[i] = oc.beta2 * v_[i] + (1.0 - oc.beta2) * my_grad[i] * my_grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params_flat[gi] -=
        oc.lr * (mhat / (std::sqrt(vhat) + oc.eps) + oc.weight_decay * params_flat[gi]);
  }

  // All-gather the updated shards into the full parameter vector.
  std::vector<double> gathered(padded);
  comm_.allgather(std::span<const double>(params_flat).subspan(begin, blk), gathered);
  gathered.resize(flat_size_);
  scatter_flat_params(gathered);
  return loss;
}

}  // namespace turbda::nn
