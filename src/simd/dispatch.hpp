// Process-global runtime SIMD dispatch level.
//
// Kernel families (FFT butterflies in src/fft, LETKF dense kernels in
// src/simd/dense_kernels) each expose a table of function pointers per level;
// this header owns the level itself. The active level is chosen once at
// startup from CPUID — the portable build benefits on AVX2 hardware without
// TURBDA_NATIVE — can be forced down with the TURBDA_SIMD environment
// variable (scalar | avx2 | avx2fma), and can be overridden programmatically
// for tests. Dispatch is process-global, so all thread-count bitwise
// invariance guarantees are unaffected by it.
//
// Level semantics, shared by every kernel family:
//  - Scalar:  portable C++, always available, compiled with -ffp-contract=off
//             so it stays bitwise reproducible even under -march=native.
//  - Avx2:    AVX2 intrinsics, one mul/add per IEEE operation in the same
//             per-element order as the scalar code — bitwise identical to it.
//  - Avx2Fma: AVX2 + FMA; multiplies contract into fused multiply-adds (one
//             rounding instead of two), so results agree with the scalar path
//             to ~1 ulp per operation, not bitwise.
#pragma once

namespace turbda::simd {

enum class SimdLevel : int { Scalar = 0, Avx2 = 1, Avx2Fma = 2 };

/// The active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] SimdLevel active_simd_level();

[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// True when the level's kernels are compiled in and the CPU supports them.
[[nodiscard]] bool simd_level_available(SimdLevel level);

/// Force the dispatch level (tests and benches; no-op returning false when
/// the level is unavailable). Affects the whole process — do not call
/// concurrently with in-flight transforms or analyses.
bool force_simd_level(SimdLevel level);

}  // namespace turbda::simd
