// Runtime-dispatched pointwise kernels for the SQG spectral passes.
//
// The SQG tendency spends its non-FFT time in four branch-free elementwise
// sweeps over packed half spectra (interleaved re/im doubles) and grid
// fields: the fused inversion + derivative pass, the grid-space Jacobian
// product, the linear-physics combine, and the RK4 stage/update combines
// (plus the integrating-factor hyperdiffusion multiply). Like the FFT and
// dense-kernel tables, each primitive is written once against the portable
// simd::Vec API (pointwise_kernels_impl.hpp) and instantiated per backend
// behind a table of function pointers keyed by the process-global
// simd::SimdLevel.
//
// Layout conventions:
//  - Spectral buffers are std::complex<double> arrays viewed as interleaved
//    (re, im) doubles; all lengths `nd` below are in DOUBLES (2x the bin
//    count). One Vec covers two complex bins.
//  - Real per-bin coefficient tables (wavenumbers, inversion coefficients,
//    hyperdiffusion decay) are pre-duplicated per complex pair by the caller
//    (table2[2p] == table2[2p+1]), so every kernel is a straight-line
//    elementwise sweep with no in-register broadcasts from memory.
//  - Complex per-bin tables (the fused combine operators) are used in their
//    natural interleaved form.
//
// Determinism contract (same as the dense kernels): every kernel is purely
// elementwise — no reduction trees — so the Scalar and Avx2 tables are
// bitwise identical and results never depend on thread count or batch
// composition. The Avx2Fma table contracts multiplies into FMAs. Because
// tendency() and tendency_batch() call the SAME table entries per member,
// batched stepping stays bitwise identical to sequential stepping at every
// level (test-enforced).
#pragma once

#include <cstddef>

#include "simd/dispatch.hpp"

namespace turbda::simd {

struct PointwiseKernels {
  /// Fused SQG boundary inversion + derivative pass over one level's half
  /// spectrum. Per complex bin p (all arrays interleaved, coefficients
  /// pair-duplicated):
  ///   ps  = ik * (t1 * ca - t0 * cb)        (streamfunction at this level)
  ///   duh = -i ky ps,  dvh = +i kx ps       (u = -psi_y, v = psi_x)
  ///   dtx = +i kx th,  dty = +i ky th       (theta gradients)
  /// An i*k multiply is a pair swap plus sign flips — exact bit operations,
  /// so the pass matches the scalar complex spelling bitwise (unfused).
  void (*sqg_pass1)(double* ps, double* duh, double* dvh, double* dtx, double* dty,
                    const double* t0, const double* t1, const double* th, const double* ik2,
                    const double* ca2, const double* cb2, const double* kx2, const double* ky2,
                    std::size_t nd);
  /// Grid-space advection product: gj[i] = gu[i]*gtx[i] + gv[i]*gty[i].
  void (*sqg_jacobian)(double* gj, const double* gu, const double* gtx, const double* gv,
                       const double* gty, std::size_t nd);
  /// Linear-physics combine, complex per bin (operator tables interleaved):
  /// dth = op_t * th + op_p * ps - jc.
  void (*sqg_combine)(double* dth, const double* th, const double* ps, const double* jc,
                      const double* op_t, const double* op_p, std::size_t nd);
  /// s[i] *= d2[i] (pair-duplicated real decay; the hyperdiffusion multiply).
  void (*mul_inplace)(double* s, const double* d2, std::size_t nd);
  /// out[i] = x[i] + alpha * y[i] (the RK4 stage combine; out may alias x).
  void (*add_scaled)(double* out, const double* x, const double* y, std::size_t nd, double alpha);
  /// x[i] += c * (k1[i] + 2 k2[i] + 2 k3[i] + k4[i]) (the RK4 update).
  void (*rk4_update)(double* x, const double* k1, const double* k2, const double* k3,
                     const double* k4, std::size_t nd, double c);
};

/// Kernel table for the given level; level must be available.
[[nodiscard]] const PointwiseKernels& pointwise_kernels_for(SimdLevel level);

/// Table for the active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] const PointwiseKernels& active_pointwise_kernels();

}  // namespace turbda::simd
