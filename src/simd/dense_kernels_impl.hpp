// Generic small-dense kernels over the portable simd::Vec API — one kernel
// text instantiated per backend (VecScalar in dense_kernels.cpp, VecAvx2 in
// dense_kernels_avx2.cpp) and per multiply-add mode (kFma).
//
// Each kernel vectorizes over independent output lanes and keeps any
// reduction sequential over the i index, so with kFma == false every
// element's value is the same fixed sequence of IEEE operations in every
// backend — the bitwise-determinism backbone of the LETKF analysis. Scalar
// tails use the same (fused or unfused) arithmetic as the vector body so an
// element's value never depends on which loop computed it across runs.
//
// TUs including this header are compiled with -ffp-contract=off and
// auto-vectorization off (see CMakeLists.txt).
#pragma once

#include <cmath>
#include <cstddef>

#include "simd/vec.hpp"

namespace turbda::simd::detail {

template <class V, bool kFma>
void accum_rows_impl(double* acc, const double* x, std::size_t ldx, const double* y,
                     std::size_t ldy, std::size_t k, std::size_t m) {
  std::size_t j = 0;
  for (; j + 2 * V::kWidth <= m; j += 2 * V::kWidth) {
    V a0 = V::loadu(acc + j);
    V a1 = V::loadu(acc + j + V::kWidth);
    const double* yj = y + j;
    for (std::size_t i = 0; i < k; ++i) {
      const V xi = V::broadcast(x[i * ldx]);
      a0 = V::template mul_add<kFma>(xi, V::loadu(yj + i * ldy), a0);
      a1 = V::template mul_add<kFma>(xi, V::loadu(yj + i * ldy + V::kWidth), a1);
    }
    a0.storeu(acc + j);
    a1.storeu(acc + j + V::kWidth);
  }
  for (; j + V::kWidth <= m; j += V::kWidth) {
    V a = V::loadu(acc + j);
    const double* yj = y + j;
    for (std::size_t i = 0; i < k; ++i)
      a = V::template mul_add<kFma>(V::broadcast(x[i * ldx]), V::loadu(yj + i * ldy), a);
    a.storeu(acc + j);
  }
  for (; j < m; ++j) {
    double a = acc[j];
    for (std::size_t i = 0; i < k; ++i) {
      if constexpr (kFma) {
        a = std::fma(x[i * ldx], y[i * ldy + j], a);
      } else {
        a += x[i * ldx] * y[i * ldy + j];
      }
    }
    acc[j] = a;
  }
}

template <class V, bool kFma>
void rot_rows_impl(double* p, double* q, std::size_t n, double c, double s) {
  const V vc = V::broadcast(c);
  const V vs = V::broadcast(s);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V a = V::loadu(p + i);
    const V b = V::loadu(q + i);
    const V np = V::template mul_sub<kFma>(vc, a, vs * b);
    const V nq = V::template mul_add<kFma>(vs, a, vc * b);
    np.storeu(p + i);
    nq.storeu(q + i);
  }
  for (; i < n; ++i) {
    const double a = p[i], b = q[i];
    if constexpr (kFma) {
      p[i] = std::fma(c, a, -(s * b));
      q[i] = std::fma(s, a, c * b);
    } else {
      p[i] = c * a - s * b;
      q[i] = s * a + c * b;
    }
  }
}

template <class V>
void scale_impl(double* out, const double* in, std::size_t n, double alpha) {
  const V va = V::broadcast(alpha);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) (va * V::loadu(in + i)).storeu(out + i);
  for (; i < n; ++i) out[i] = alpha * in[i];
}

template <class V, bool kFma>
void scale_shift_impl(double* out, const double* in, std::size_t n, double alpha, double shift) {
  const V va = V::broadcast(alpha);
  const V vsh = V::broadcast(shift);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth)
    V::template mul_add<kFma>(va, V::loadu(in + i), vsh).storeu(out + i);
  for (; i < n; ++i) {
    if constexpr (kFma) {
      out[i] = std::fma(alpha, in[i], shift);
    } else {
      out[i] = shift + alpha * in[i];
    }
  }
}

}  // namespace turbda::simd::detail
