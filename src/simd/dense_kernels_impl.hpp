// Generic small-dense kernels over the portable simd::Vec API — one kernel
// text instantiated per backend (VecScalar in dense_kernels.cpp, VecAvx2 in
// dense_kernels_avx2.cpp) and per multiply-add mode (kFma).
//
// Each kernel vectorizes over independent output lanes and keeps any
// reduction sequential over the i index, so with kFma == false every
// element's value is the same fixed sequence of IEEE operations in every
// backend — the bitwise-determinism backbone of the LETKF analysis. Scalar
// tails use the same (fused or unfused) arithmetic as the vector body so an
// element's value never depends on which loop computed it across runs.
//
// TUs including this header are compiled with -ffp-contract=off and
// auto-vectorization off (see CMakeLists.txt).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/vec.hpp"

namespace turbda::simd::detail {

template <class V, bool kFma>
void accum_rows_impl(double* acc, const double* x, std::size_t ldx, const double* y,
                     std::size_t ldy, std::size_t k, std::size_t m) {
  std::size_t j = 0;
  for (; j + 2 * V::kWidth <= m; j += 2 * V::kWidth) {
    V a0 = V::loadu(acc + j);
    V a1 = V::loadu(acc + j + V::kWidth);
    const double* yj = y + j;
    for (std::size_t i = 0; i < k; ++i) {
      const V xi = V::broadcast(x[i * ldx]);
      a0 = V::template mul_add<kFma>(xi, V::loadu(yj + i * ldy), a0);
      a1 = V::template mul_add<kFma>(xi, V::loadu(yj + i * ldy + V::kWidth), a1);
    }
    a0.storeu(acc + j);
    a1.storeu(acc + j + V::kWidth);
  }
  for (; j + V::kWidth <= m; j += V::kWidth) {
    V a = V::loadu(acc + j);
    const double* yj = y + j;
    for (std::size_t i = 0; i < k; ++i)
      a = V::template mul_add<kFma>(V::broadcast(x[i * ldx]), V::loadu(yj + i * ldy), a);
    a.storeu(acc + j);
  }
  for (; j < m; ++j) {
    double a = acc[j];
    for (std::size_t i = 0; i < k; ++i) {
      if constexpr (kFma) {
        a = std::fma(x[i * ldx], y[i * ldy + j], a);
      } else {
        a += x[i * ldx] * y[i * ldy + j];
      }
    }
    acc[j] = a;
  }
}

template <class V, bool kFma>
void rot_rows_impl(double* p, double* q, std::size_t n, double c, double s) {
  const V vc = V::broadcast(c);
  const V vs = V::broadcast(s);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V a = V::loadu(p + i);
    const V b = V::loadu(q + i);
    const V np = V::template mul_sub<kFma>(vc, a, vs * b);
    const V nq = V::template mul_add<kFma>(vs, a, vc * b);
    np.storeu(p + i);
    nq.storeu(q + i);
  }
  for (; i < n; ++i) {
    const double a = p[i], b = q[i];
    if constexpr (kFma) {
      p[i] = std::fma(c, a, -(s * b));
      q[i] = std::fma(s, a, c * b);
    } else {
      p[i] = c * a - s * b;
      q[i] = s * a + c * b;
    }
  }
}

template <class V>
void scale_impl(double* out, const double* in, std::size_t n, double alpha) {
  const V va = V::broadcast(alpha);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) (va * V::loadu(in + i)).storeu(out + i);
  for (; i < n; ++i) out[i] = alpha * in[i];
}

template <class V, bool kFma>
void scale_shift_impl(double* out, const double* in, std::size_t n, double alpha, double shift) {
  const V va = V::broadcast(alpha);
  const V vsh = V::broadcast(shift);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth)
    V::template mul_add<kFma>(va, V::loadu(in + i), vsh).storeu(out + i);
  for (; i < n; ++i) {
    if constexpr (kFma) {
      out[i] = std::fma(alpha, in[i], shift);
    } else {
      out[i] = shift + alpha * in[i];
    }
  }
}

// ---- Lane-batched kernels ----
//
// These flip the vectorization axis: each Vec lane carries one of kWidth
// independent problems over lane-interleaved SoA buffers (element e of
// problem l at ptr[e * kWidth + l]). Per lane, each kernel is the exact IEEE
// operation sequence of its sequential counterpart above at the same kFma
// mode, so batched == sequential bitwise at every dispatch level. Masks are
// built from IEEE comparisons and applied with bit-copying blends (select),
// never arithmetic, so a masked lane's bits are untouched.

template <class V, bool kFma>
void baccum_rows_impl(double* acc, const double* x, std::size_t ldx, const double* y,
                      std::size_t ldy, std::size_t k, std::size_t m) {
  constexpr std::size_t W = V::kWidth;
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    V a0 = V::loadu(acc + (j + 0) * W);
    V a1 = V::loadu(acc + (j + 1) * W);
    V a2 = V::loadu(acc + (j + 2) * W);
    V a3 = V::loadu(acc + (j + 3) * W);
    for (std::size_t i = 0; i < k; ++i) {
      const V xi = V::loadu(x + i * ldx * W);
      const double* yi = y + (i * ldy + j) * W;
      a0 = V::template mul_add<kFma>(xi, V::loadu(yi + 0 * W), a0);
      a1 = V::template mul_add<kFma>(xi, V::loadu(yi + 1 * W), a1);
      a2 = V::template mul_add<kFma>(xi, V::loadu(yi + 2 * W), a2);
      a3 = V::template mul_add<kFma>(xi, V::loadu(yi + 3 * W), a3);
    }
    a0.storeu(acc + (j + 0) * W);
    a1.storeu(acc + (j + 1) * W);
    a2.storeu(acc + (j + 2) * W);
    a3.storeu(acc + (j + 3) * W);
  }
  for (; j < m; ++j) {
    V a = V::loadu(acc + j * W);
    for (std::size_t i = 0; i < k; ++i)
      a = V::template mul_add<kFma>(V::loadu(x + i * ldx * W), V::loadu(y + (i * ldy + j) * W), a);
    a.storeu(acc + j * W);
  }
}

template <class V>
void bscale_impl(double* out, const double* in, std::size_t n, const double* alpha) {
  const V va = V::loadu(alpha);
  for (std::size_t j = 0; j < n; ++j) (va * V::loadu(in + j * V::kWidth)).storeu(out + j * V::kWidth);
}

template <class V, bool kFma>
void bscale_shift_impl(double* out, const double* in, std::size_t n, double alpha,
                       const double* shift) {
  const V va = V::broadcast(alpha);
  const V vsh = V::loadu(shift);
  for (std::size_t j = 0; j < n; ++j)
    V::template mul_add<kFma>(va, V::loadu(in + j * V::kWidth), vsh).storeu(out + j * V::kWidth);
}

template <class V, bool kFma>
void bjacobi_sweeps_impl(double* m, double* vt, std::size_t n, int max_sweeps,
                         const double* tol_sq, const double* skip_sq, int* sweeps, double* off_sq,
                         std::uint8_t* converged) {
  constexpr std::size_t W = V::kWidth;
  const V vtol = V::loadu(tol_sq);
  const V vskip = V::loadu(skip_sq);
  const V zero = V::broadcast(0.0);
  const V one = V::broadcast(1.0);
  const V two = V::broadcast(2.0);

  // Off-diagonal Frobenius norm squared per lane, accumulated in the same
  // p-major element order as the sequential solver's scalar loop.
  const auto off_diag_sq = [&]() {
    V off = zero;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        const V e = V::loadu(m + (p * n + q) * W);
        off = off + e * e;
      }
    return off;
  };

  for (std::size_t l = 0; l < W; ++l) sweeps[l] = 0;
  V off = off_diag_sq();
  V active = V::cmp_gt(off, vtol);  // all-ones where a lane still iterates
  int done_sweeps = 0;
  while (active.movemask() != 0 && done_sweeps < max_sweeps) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double* mpq = m + (p * n + q) * W;
        const V apq = V::loadu(mpq);
        // Rotate only lanes that are still active AND above the per-lane
        // skip threshold — the sequential "if (apq^2 <= skip_sq) continue".
        const V rot = V::and_(active, V::cmp_gt(apq * apq, vskip));
        if (rot.movemask() == 0) continue;
        const V app = V::loadu(m + (p * n + p) * W);
        const V aqq = V::loadu(m + (q * n + q) * W);
        // Masked lanes divide by a harmless 1 instead of a possibly-zero apq.
        const V apq_div = V::select(rot, apq, one);
        const V tau = (aqq - app) / (two * apq_div);
        const V root = V::sqrt(one + tau * tau);
        // Both tau-sign branches of the sequential solver, then a blend.
        const V t =
            V::select(V::cmp_ge(tau, zero), one / (tau + root), one / (tau - root));
        const V c = one / V::sqrt(one + t * t);
        const V s = t * c;
        // Rows p and q: the rot_rows arithmetic, blended per lane.
        double* rp = m + p * n * W;
        double* rq = m + q * n * W;
        for (std::size_t i = 0; i < n; ++i) {
          const V a = V::loadu(rp + i * W);
          const V b = V::loadu(rq + i * W);
          const V np = V::template mul_sub<kFma>(c, a, s * b);
          const V nq = V::template mul_add<kFma>(s, a, c * b);
          V::select(rot, np, a).storeu(rp + i * W);
          V::select(rot, nq, b).storeu(rq + i * W);
        }
        // Mirror rows into columns. The matrix is bit-exactly symmetric at
        // all times, so unconditional copies are no-ops for masked lanes.
        for (std::size_t i = 0; i < n; ++i) {
          if (i == p || i == q) continue;
          V::loadu(rp + i * W).storeu(m + (i * n + p) * W);
          V::loadu(rq + i * W).storeu(m + (i * n + q) * W);
        }
        // 2x2 pivot block closed form — plain unfused ops in the sequential
        // solver, so unfused here at every level.
        V::select(rot, app - t * apq, app).storeu(m + (p * n + p) * W);
        V::select(rot, aqq + t * apq, aqq).storeu(m + (q * n + q) * W);
        V::select(rot, zero, apq).storeu(mpq);
        V::loadu(mpq).storeu(m + (q * n + p) * W);
        // Accumulate the eigenvector rows with the same blended rotation.
        double* vp = vt + p * n * W;
        double* vq = vt + q * n * W;
        for (std::size_t i = 0; i < n; ++i) {
          const V a = V::loadu(vp + i * W);
          const V b = V::loadu(vq + i * W);
          const V np = V::template mul_sub<kFma>(c, a, s * b);
          const V nq = V::template mul_add<kFma>(s, a, c * b);
          V::select(rot, np, a).storeu(vp + i * W);
          V::select(rot, nq, b).storeu(vq + i * W);
        }
      }
    }
    ++done_sweeps;
    const int am = active.movemask();
    for (std::size_t l = 0; l < W; ++l) sweeps[l] += (am >> l) & 1;
    // Frozen lanes' matrices are unchanged, so recomputing everywhere
    // reproduces their previous residual bit-for-bit.
    off = off_diag_sq();
    active = V::and_(active, V::cmp_gt(off, vtol));
  }
  off.storeu(off_sq);
  const int am = active.movemask();
  for (std::size_t l = 0; l < W; ++l) converged[l] = ((am >> l) & 1) != 0 ? 0 : 1;
}

// ---- Contiguous elementwise helpers ----

template <class V, bool kFma>
void axpy_impl(double* out, const double* in, std::size_t n, double alpha) {
  const V va = V::broadcast(alpha);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth)
    V::template mul_add<kFma>(va, V::loadu(in + i), V::loadu(out + i)).storeu(out + i);
  for (; i < n; ++i) {
    if constexpr (kFma) {
      out[i] = std::fma(alpha, in[i], out[i]);
    } else {
      out[i] = alpha * in[i] + out[i];
    }
  }
}

template <class V>
void clamped_axpy_impl(double* out, const double* in, std::size_t n, double alpha, double lim) {
  const V va = V::broadcast(alpha);
  const V vlo = V::broadcast(-lim);
  const V vhi = V::broadcast(lim);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V t = V::min(V::max(va * V::loadu(in + i), vlo), vhi);
    (V::loadu(out + i) + t).storeu(out + i);
  }
  for (; i < n; ++i) {
    double t = alpha * in[i];
    t = t > -lim ? t : -lim;  // vmaxpd semantics
    t = t < lim ? t : lim;    // vminpd semantics
    out[i] = out[i] + t;
  }
}

}  // namespace turbda::simd::detail
