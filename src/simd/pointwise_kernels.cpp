// Scalar pointwise-kernel table: the generic Vec kernels instantiated with
// the emulated VecScalar backend. Compiled with -ffp-contract=off and
// auto-vectorization off unconditionally (see CMakeLists.txt): this is the
// bitwise reference for the Avx2 table.
#include "simd/pointwise_kernels.hpp"

#include "common/check.hpp"
#include "simd/pointwise_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::simd {

namespace {

constexpr PointwiseKernels kScalarPointwise = {
    detail::sqg_pass1_impl<VecScalar, false>,
    detail::sqg_jacobian_impl<VecScalar, false>,
    detail::sqg_combine_impl<VecScalar, false>,
    detail::mul_inplace_impl<VecScalar>,
    detail::add_scaled_impl<VecScalar, false>,
    detail::rk4_update_impl<VecScalar, false>};

}  // namespace

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
// Defined in pointwise_kernels_avx2.cpp (compiled with -mavx2 -mfma).
extern const PointwiseKernels kAvx2Pointwise;
extern const PointwiseKernels kAvx2FmaPointwise;
#endif

const PointwiseKernels& pointwise_kernels_for(SimdLevel level) {
  TURBDA_REQUIRE(simd_level_available(level),
                 "SIMD level " << simd_level_name(level) << " is not available on this build/CPU");
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Avx2:
      return kAvx2Pointwise;
    case SimdLevel::Avx2Fma:
      return kAvx2FmaPointwise;
    case SimdLevel::Scalar:
      break;
  }
#endif
  return kScalarPointwise;
}

const PointwiseKernels& active_pointwise_kernels() {
  return pointwise_kernels_for(active_simd_level());
}

}  // namespace turbda::simd
