// Runtime SIMD level detection: CPUID + TURBDA_SIMD override. No floating
// point here — this TU needs no special flags.
#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace turbda::simd {

namespace {

bool cpu_supports(SimdLevel level) {
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Scalar:
      return true;
    case SimdLevel::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdLevel::Avx2Fma:
      return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("fma") != 0;
  }
  return false;
#else
  return level == SimdLevel::Scalar;
#endif
}

SimdLevel parse_level_env(SimdLevel fallback) {
  const char* env = std::getenv("TURBDA_SIMD");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::Scalar;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::Avx2;
  if (std::strcmp(env, "avx2fma") == 0 || std::strcmp(env, "fma") == 0) return SimdLevel::Avx2Fma;
  return fallback;  // unrecognized values keep the detected level
}

SimdLevel detect_level() {
  SimdLevel best = SimdLevel::Scalar;
  if (cpu_supports(SimdLevel::Avx2)) best = SimdLevel::Avx2;
  if (cpu_supports(SimdLevel::Avx2Fma)) best = SimdLevel::Avx2Fma;
  SimdLevel want = parse_level_env(best);
  return cpu_supports(want) ? want : best;
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{detect_level()};
  return level;
}

}  // namespace

SimdLevel active_simd_level() { return level_slot().load(std::memory_order_relaxed); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar:
      return "scalar";
    case SimdLevel::Avx2:
      return "avx2";
    case SimdLevel::Avx2Fma:
      return "avx2fma";
  }
  return "unknown";
}

bool simd_level_available(SimdLevel level) { return cpu_supports(level); }

bool force_simd_level(SimdLevel level) {
  if (!simd_level_available(level)) return false;
  level_slot().store(level, std::memory_order_relaxed);
  return true;
}

}  // namespace turbda::simd
