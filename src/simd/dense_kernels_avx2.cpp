// AVX2 / AVX2+FMA dense-kernel tables: the generic Vec kernels from
// dense_kernels_impl.hpp instantiated with the VecAvx2 backend. Compiled
// with -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt); used only after
// runtime CPUID confirms support. The Avx2 table is bitwise identical to the
// scalar table; Avx2Fma contracts multiplies into FMAs.
#include "simd/dense_kernels.hpp"

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__) && defined(__AVX2__)

#include "simd/dense_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::simd {

// Declared extern in dense_kernels.cpp (namespace-scope const defaults to
// internal linkage, so the declarations must precede the definitions).
extern const DenseKernels kAvx2Dense;
extern const DenseKernels kAvx2FmaDense;

static_assert(VecAvx2::kWidth == kLaneBatch, "lane-batched kernels assume kWidth lanes");

const DenseKernels kAvx2Dense = {
    detail::accum_rows_impl<VecAvx2, false>,
    detail::rot_rows_impl<VecAvx2, false>,
    detail::scale_impl<VecAvx2>,
    detail::scale_shift_impl<VecAvx2, false>,
    detail::baccum_rows_impl<VecAvx2, false>,
    detail::bscale_impl<VecAvx2>,
    detail::bscale_shift_impl<VecAvx2, false>,
    detail::bjacobi_sweeps_impl<VecAvx2, false>,
    detail::axpy_impl<VecAvx2, false>,
    detail::clamped_axpy_impl<VecAvx2>};
const DenseKernels kAvx2FmaDense = {
    detail::accum_rows_impl<VecAvx2, true>,
    detail::rot_rows_impl<VecAvx2, true>,
    detail::scale_impl<VecAvx2>,
    detail::scale_shift_impl<VecAvx2, true>,
    detail::baccum_rows_impl<VecAvx2, true>,
    detail::bscale_impl<VecAvx2>,
    detail::bscale_shift_impl<VecAvx2, true>,
    detail::bjacobi_sweeps_impl<VecAvx2, true>,
    detail::axpy_impl<VecAvx2, true>,
    detail::clamped_axpy_impl<VecAvx2>};

}  // namespace turbda::simd

#endif  // TURBDA_HAVE_AVX2 && __x86_64__ && __AVX2__
