// Generic SQG pointwise kernels against the simd::Vec API. Included only by
// the per-backend translation units (pointwise_kernels.cpp compiled
// portably, pointwise_kernels_avx2.cpp compiled with -mavx2 -mfma); both are
// built with -ffp-contract=off and auto-vectorization disabled so the only
// FMA contractions are the explicit kFma instantiations.
//
// All main loops advance four doubles (two interleaved complex bins) per
// iteration; the scalar tails spell out the identical IEEE operation
// sequence, so a kernel's result does not depend on where the vector loop
// ends. `kFma` selects fused multiply-adds (the Avx2Fma table) — the scalar
// tails fuse through std::fma in that case, which is bitwise identical to
// the hardware instruction.
#pragma once

#include <cmath>
#include <cstddef>

namespace turbda::simd::detail {

/// a*b + c, fused to one rounding when kFma (matches Vec::mul_add lane-wise).
template <bool kFma>
[[nodiscard]] inline double fmadd1(double a, double b, double c) {
  if constexpr (kFma) return std::fma(a, b, c);
  return a * b + c;
}

template <class V, bool kFma>
void sqg_pass1_impl(double* ps, double* duh, double* dvh, double* dtx, double* dty,
                    const double* t0, const double* t1, const double* th, const double* ik2,
                    const double* ca2, const double* cb2, const double* kx2, const double* ky2,
                    std::size_t nd) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= nd; i += W) {
    const V psv = V::loadu(ik2 + i) * V::template mul_sub<kFma>(V::loadu(t1 + i),
                                                               V::loadu(ca2 + i),
                                                               V::loadu(t0 + i) * V::loadu(cb2 + i));
    psv.storeu(ps + i);
    const V kxv = V::loadu(kx2 + i);
    const V kyv = V::loadu(ky2 + i);
    // i*z on an interleaved pair is swap + negate-even; -i*z is swap +
    // negate-odd (conj of the product). Sign flips are exact bit operations.
    const V sps = psv.swap_pairs();
    (kyv * sps).conj().storeu(duh + i);      // -i ky psi
    (kxv * sps).neg_even().storeu(dvh + i);  // +i kx psi
    const V sth = V::loadu(th + i).swap_pairs();
    (kxv * sth).neg_even().storeu(dtx + i);  // +i kx theta
    (kyv * sth).neg_even().storeu(dty + i);  // +i ky theta
  }
  for (; i + 1 < nd; i += 2) {
    const double pr = ik2[i] * fmadd1<kFma>(t1[i], ca2[i], -(t0[i] * cb2[i]));
    const double pi = ik2[i + 1] * fmadd1<kFma>(t1[i + 1], ca2[i + 1], -(t0[i + 1] * cb2[i + 1]));
    ps[i] = pr;
    ps[i + 1] = pi;
    duh[i] = ky2[i] * pi;
    duh[i + 1] = -(ky2[i + 1] * pr);
    dvh[i] = -(kx2[i] * pi);
    dvh[i + 1] = kx2[i + 1] * pr;
    const double tr = th[i];
    const double ti = th[i + 1];
    dtx[i] = -(kx2[i] * ti);
    dtx[i + 1] = kx2[i + 1] * tr;
    dty[i] = -(ky2[i] * ti);
    dty[i + 1] = ky2[i + 1] * tr;
  }
}

template <class V, bool kFma>
void sqg_jacobian_impl(double* gj, const double* gu, const double* gtx, const double* gv,
                       const double* gty, std::size_t nd) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= nd; i += W) {
    V::template mul_add<kFma>(V::loadu(gu + i), V::loadu(gtx + i),
                              V::loadu(gv + i) * V::loadu(gty + i))
        .storeu(gj + i);
  }
  for (; i < nd; ++i) gj[i] = fmadd1<kFma>(gu[i], gtx[i], gv[i] * gty[i]);
}

template <class V, bool kFma>
void sqg_combine_impl(double* dth, const double* th, const double* ps, const double* jc,
                      const double* op_t, const double* op_p, std::size_t nd) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= nd; i += W) {
    const V a = cmul<kFma>(V::loadu(op_t + i), V::loadu(th + i));
    const V b = cmul<kFma>(V::loadu(op_p + i), V::loadu(ps + i));
    ((a + b) - V::loadu(jc + i)).storeu(dth + i);
  }
  for (; i + 1 < nd; i += 2) {
    const double ar = fmadd1<kFma>(op_t[i], th[i], -(op_t[i + 1] * th[i + 1]));
    const double ai = fmadd1<kFma>(op_t[i], th[i + 1], op_t[i + 1] * th[i]);
    const double br = fmadd1<kFma>(op_p[i], ps[i], -(op_p[i + 1] * ps[i + 1]));
    const double bi = fmadd1<kFma>(op_p[i], ps[i + 1], op_p[i + 1] * ps[i]);
    dth[i] = (ar + br) - jc[i];
    dth[i + 1] = (ai + bi) - jc[i + 1];
  }
}

template <class V>
void mul_inplace_impl(double* s, const double* d2, std::size_t nd) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= nd; i += W) (V::loadu(s + i) * V::loadu(d2 + i)).storeu(s + i);
  for (; i < nd; ++i) s[i] *= d2[i];
}

template <class V, bool kFma>
void add_scaled_impl(double* out, const double* x, const double* y, std::size_t nd, double alpha) {
  constexpr std::size_t W = V::kWidth;
  const V va = V::broadcast(alpha);
  std::size_t i = 0;
  for (; i + W <= nd; i += W)
    V::template mul_add<kFma>(va, V::loadu(y + i), V::loadu(x + i)).storeu(out + i);
  for (; i < nd; ++i) out[i] = fmadd1<kFma>(alpha, y[i], x[i]);
}

template <class V, bool kFma>
void rk4_update_impl(double* x, const double* k1, const double* k2, const double* k3,
                     const double* k4, std::size_t nd, double c) {
  constexpr std::size_t W = V::kWidth;
  const V two = V::broadcast(2.0);
  const V vc = V::broadcast(c);
  std::size_t i = 0;
  for (; i + W <= nd; i += W) {
    V s = V::template mul_add<kFma>(two, V::loadu(k2 + i), V::loadu(k1 + i));
    s = V::template mul_add<kFma>(two, V::loadu(k3 + i), s);
    s = s + V::loadu(k4 + i);
    V::template mul_add<kFma>(vc, s, V::loadu(x + i)).storeu(x + i);
  }
  for (; i < nd; ++i) {
    double s = fmadd1<kFma>(2.0, k2[i], k1[i]);
    s = fmadd1<kFma>(2.0, k3[i], s);
    s = s + k4[i];
    x[i] = fmadd1<kFma>(c, s, x[i]);
  }
}

}  // namespace turbda::simd::detail
