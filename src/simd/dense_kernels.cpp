// Scalar dense-kernel table: the generic Vec kernels instantiated with the
// emulated VecScalar backend. Compiled with -ffp-contract=off and
// auto-vectorization off unconditionally (see CMakeLists.txt): this is the
// bitwise reference for the Avx2 table.
#include "simd/dense_kernels.hpp"

#include "common/check.hpp"
#include "simd/dense_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::simd {

namespace {

static_assert(VecScalar::kWidth == kLaneBatch, "lane-batched kernels assume kWidth lanes");

constexpr DenseKernels kScalarDense = {
    detail::accum_rows_impl<VecScalar, false>,
    detail::rot_rows_impl<VecScalar, false>,
    detail::scale_impl<VecScalar>,
    detail::scale_shift_impl<VecScalar, false>,
    detail::baccum_rows_impl<VecScalar, false>,
    detail::bscale_impl<VecScalar>,
    detail::bscale_shift_impl<VecScalar, false>,
    detail::bjacobi_sweeps_impl<VecScalar, false>,
    detail::axpy_impl<VecScalar, false>,
    detail::clamped_axpy_impl<VecScalar>};

}  // namespace

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
// Defined in dense_kernels_avx2.cpp (compiled with -mavx2 -mfma).
extern const DenseKernels kAvx2Dense;
extern const DenseKernels kAvx2FmaDense;
#endif

const DenseKernels& dense_kernels_for(SimdLevel level) {
  TURBDA_REQUIRE(simd_level_available(level),
                 "SIMD level " << simd_level_name(level) << " is not available on this build/CPU");
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Avx2:
      return kAvx2Dense;
    case SimdLevel::Avx2Fma:
      return kAvx2FmaDense;
    case SimdLevel::Scalar:
      break;
  }
#endif
  return kScalarDense;
}

const DenseKernels& active_dense_kernels() { return dense_kernels_for(active_simd_level()); }

}  // namespace turbda::simd
