// Portable SIMD value type: the one vector abstraction in the tree.
//
// `Vec` models a 256-bit register of four doubles with the small fixed set of
// lane operations the FFT butterflies and the LETKF dense kernels need:
// load/store, broadcast, +/-/*, fused and unfused multiply-add, the
// addsub/fmaddsub family for interleaved complex pairs, in-register shuffles
// (pair swap, even/odd duplicate, 128-bit half swap, blend), and — for the
// lane-batched solvers — correctly-rounded / and sqrt (IEEE-exact in both
// backends, so lane arithmetic matches the scalar spelling bitwise),
// min/max, ordered compares producing all-ones lane masks, sign-bit select
// and movemask.
//
// Two interchangeable backends implement that interface:
//
//  - VecScalar: portable C++ emulation, four doubles in an array. One IEEE
//    operation per lane operation, so a kernel instantiated with VecScalar is
//    the bitwise reference for the same kernel instantiated with VecAvx2.
//    Translation units that instantiate it are compiled with
//    -ffp-contract=off and auto-vectorization disabled (see CMakeLists.txt)
//    so the emulation never silently grows FMA contractions.
//  - VecAvx2: AVX2 intrinsics, only defined when the TU is compiled with
//    -mavx2 (each backend lives in its own TU; runtime CPUID dispatch in
//    simd/dispatch.cpp picks the table, never inline ISA checks).
//
// The `kFma` template flag on the multiply-add entry points selects between
// fused (one rounding, AVX2+FMA or std::fma) and unfused (mul then add, the
// bitwise-reproducible level) arithmetic at compile time, so one kernel text
// instantiates all three dispatch levels.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace turbda::simd {

/// Four-double vector emulated in scalar code. Bitwise reference backend.
struct VecScalar {
  static constexpr std::size_t kWidth = 4;
  double v[kWidth];

  [[nodiscard]] static VecScalar loadu(const double* p) {
    return VecScalar{{p[0], p[1], p[2], p[3]}};
  }
  void storeu(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }
  [[nodiscard]] static VecScalar broadcast(double x) { return VecScalar{{x, x, x, x}}; }
  [[nodiscard]] static VecScalar lanes(double l0, double l1, double l2, double l3) {
    return VecScalar{{l0, l1, l2, l3}};
  }

  friend VecScalar operator+(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
  }
  friend VecScalar operator-(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2], a.v[3] - b.v[3]}};
  }
  friend VecScalar operator*(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
  }
  /// Lane division; IEEE division is correctly rounded, so this is bitwise
  /// identical to the scalar `/` and to vdivpd.
  friend VecScalar operator/(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] / b.v[0], a.v[1] / b.v[1], a.v[2] / b.v[2], a.v[3] / b.v[3]}};
  }
  /// Lane square root (correctly rounded — bitwise match with vsqrtpd).
  [[nodiscard]] static VecScalar sqrt(VecScalar a) {
    return VecScalar{{std::sqrt(a.v[0]), std::sqrt(a.v[1]), std::sqrt(a.v[2]), std::sqrt(a.v[3])}};
  }
  /// Lane minimum with vminpd semantics: a < b ? a : b (returns b on ties).
  [[nodiscard]] static VecScalar min(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] < b.v[0] ? a.v[0] : b.v[0], a.v[1] < b.v[1] ? a.v[1] : b.v[1],
                      a.v[2] < b.v[2] ? a.v[2] : b.v[2], a.v[3] < b.v[3] ? a.v[3] : b.v[3]}};
  }
  /// Lane maximum with vmaxpd semantics: a > b ? a : b (returns b on ties).
  [[nodiscard]] static VecScalar max(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] > b.v[0] ? a.v[0] : b.v[0], a.v[1] > b.v[1] ? a.v[1] : b.v[1],
                      a.v[2] > b.v[2] ? a.v[2] : b.v[2], a.v[3] > b.v[3] ? a.v[3] : b.v[3]}};
  }

 private:
  static double mask_lane(bool cond) {
    return cond ? std::bit_cast<double>(~std::uint64_t{0}) : 0.0;
  }

 public:
  /// All-ones lane mask where a >= b (ordered), else all-zeros.
  [[nodiscard]] static VecScalar cmp_ge(VecScalar a, VecScalar b) {
    return VecScalar{{mask_lane(a.v[0] >= b.v[0]), mask_lane(a.v[1] >= b.v[1]),
                      mask_lane(a.v[2] >= b.v[2]), mask_lane(a.v[3] >= b.v[3])}};
  }
  /// All-ones lane mask where a > b (ordered), else all-zeros.
  [[nodiscard]] static VecScalar cmp_gt(VecScalar a, VecScalar b) {
    return VecScalar{{mask_lane(a.v[0] > b.v[0]), mask_lane(a.v[1] > b.v[1]),
                      mask_lane(a.v[2] > b.v[2]), mask_lane(a.v[3] > b.v[3])}};
  }
  /// Bitwise AND (mask combination).
  [[nodiscard]] static VecScalar and_(VecScalar a, VecScalar b) {
    VecScalar r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[i]) &
                                     std::bit_cast<std::uint64_t>(b.v[i]));
    return r;
  }
  /// Per-lane select on the mask's *sign bit* (vblendvpd semantics): lane
  /// from a where set, else from b. A bit copy, never an arithmetic op.
  [[nodiscard]] static VecScalar select(VecScalar mask, VecScalar a, VecScalar b) {
    VecScalar r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = (std::bit_cast<std::uint64_t>(mask.v[i]) >> 63) ? a.v[i] : b.v[i];
    return r;
  }
  /// Sign bits of the four lanes packed into bits 0..3 (vmovmskpd).
  [[nodiscard]] int movemask() const {
    int r = 0;
    for (std::size_t i = 0; i < kWidth; ++i)
      r |= static_cast<int>(std::bit_cast<std::uint64_t>(v[i]) >> 63) << i;
    return r;
  }

  /// a * b + c; fused to one rounding when kFma (std::fma is correctly
  /// rounded, so the value matches a hardware vfmadd exactly).
  template <bool kFma>
  [[nodiscard]] static VecScalar mul_add(VecScalar a, VecScalar b, VecScalar c) {
    if constexpr (kFma) {
      return VecScalar{{std::fma(a.v[0], b.v[0], c.v[0]), std::fma(a.v[1], b.v[1], c.v[1]),
                        std::fma(a.v[2], b.v[2], c.v[2]), std::fma(a.v[3], b.v[3], c.v[3])}};
    } else {
      return a * b + c;
    }
  }
  /// a * b - c (fused when kFma).
  template <bool kFma>
  [[nodiscard]] static VecScalar mul_sub(VecScalar a, VecScalar b, VecScalar c) {
    if constexpr (kFma) {
      return VecScalar{{std::fma(a.v[0], b.v[0], -c.v[0]), std::fma(a.v[1], b.v[1], -c.v[1]),
                        std::fma(a.v[2], b.v[2], -c.v[2]), std::fma(a.v[3], b.v[3], -c.v[3])}};
    } else {
      return a * b - c;
    }
  }

  /// [a0-b0, a1+b1, a2-b2, a3+b3] — the complex-pair even-sub/odd-add shape.
  [[nodiscard]] static VecScalar addsub(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] - b.v[0], a.v[1] + b.v[1], a.v[2] - b.v[2], a.v[3] + b.v[3]}};
  }
  /// a*b -/+ c per even/odd lane (fused when kFma).
  template <bool kFma>
  [[nodiscard]] static VecScalar fmaddsub(VecScalar a, VecScalar b, VecScalar c) {
    if constexpr (kFma) {
      return VecScalar{{std::fma(a.v[0], b.v[0], -c.v[0]), std::fma(a.v[1], b.v[1], c.v[1]),
                        std::fma(a.v[2], b.v[2], -c.v[2]), std::fma(a.v[3], b.v[3], c.v[3])}};
    } else {
      return addsub(a * b, c);
    }
  }
  /// a*b +/- c per even/odd lane (fused when kFma). The unfused form negates
  /// c and reuses addsub: x - (-y) is the same IEEE operation as x + y.
  template <bool kFma>
  [[nodiscard]] static VecScalar fmsubadd(VecScalar a, VecScalar b, VecScalar c) {
    if constexpr (kFma) {
      return VecScalar{{std::fma(a.v[0], b.v[0], c.v[0]), std::fma(a.v[1], b.v[1], -c.v[1]),
                        std::fma(a.v[2], b.v[2], c.v[2]), std::fma(a.v[3], b.v[3], -c.v[3])}};
    } else {
      return addsub(a * b, c.neg());
    }
  }

  [[nodiscard]] VecScalar swap_pairs() const { return VecScalar{{v[1], v[0], v[3], v[2]}}; }
  [[nodiscard]] VecScalar dup_even() const { return VecScalar{{v[0], v[0], v[2], v[2]}}; }
  [[nodiscard]] VecScalar dup_odd() const { return VecScalar{{v[1], v[1], v[3], v[3]}}; }
  [[nodiscard]] VecScalar swap_halves() const { return VecScalar{{v[2], v[3], v[0], v[1]}}; }
  /// [a0, a1, b0, b1] — low 128-bit halves of a and b.
  [[nodiscard]] static VecScalar concat_lo(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0], a.v[1], b.v[0], b.v[1]}};
  }
  /// Per-lane select: bit i of kMask set -> lane i from b, else from a.
  template <int kMask>
  [[nodiscard]] static VecScalar blend(VecScalar a, VecScalar b) {
    return VecScalar{{(kMask & 1) ? b.v[0] : a.v[0], (kMask & 2) ? b.v[1] : a.v[1],
                      (kMask & 4) ? b.v[2] : a.v[2], (kMask & 8) ? b.v[3] : a.v[3]}};
  }
  /// All lanes negated (sign-bit flip, exact for ±0 and NaN payloads).
  [[nodiscard]] VecScalar neg() const { return VecScalar{{-v[0], -v[1], -v[2], -v[3]}}; }
  /// Odd (imaginary) lanes negated: complex conjugate of interleaved pairs.
  [[nodiscard]] VecScalar conj() const { return VecScalar{{v[0], -v[1], v[2], -v[3]}}; }
  /// Even (real) lanes negated.
  [[nodiscard]] VecScalar neg_even() const { return VecScalar{{-v[0], v[1], -v[2], v[3]}}; }
};

#if defined(__AVX2__)

/// Four-double vector on AVX2 registers. Same interface as VecScalar; only
/// available in translation units compiled with -mavx2.
struct VecAvx2 {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  [[nodiscard]] static VecAvx2 loadu(const double* p) { return VecAvx2{_mm256_loadu_pd(p)}; }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }
  [[nodiscard]] static VecAvx2 broadcast(double x) { return VecAvx2{_mm256_set1_pd(x)}; }
  [[nodiscard]] static VecAvx2 lanes(double l0, double l1, double l2, double l3) {
    return VecAvx2{_mm256_set_pd(l3, l2, l1, l0)};
  }

  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) { return VecAvx2{_mm256_add_pd(a.v, b.v)}; }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) { return VecAvx2{_mm256_sub_pd(a.v, b.v)}; }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) { return VecAvx2{_mm256_mul_pd(a.v, b.v)}; }
  friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b) { return VecAvx2{_mm256_div_pd(a.v, b.v)}; }
  [[nodiscard]] static VecAvx2 sqrt(VecAvx2 a) { return VecAvx2{_mm256_sqrt_pd(a.v)}; }
  [[nodiscard]] static VecAvx2 min(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_min_pd(a.v, b.v)};
  }
  [[nodiscard]] static VecAvx2 max(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_max_pd(a.v, b.v)};
  }
  [[nodiscard]] static VecAvx2 cmp_ge(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  [[nodiscard]] static VecAvx2 cmp_gt(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  [[nodiscard]] static VecAvx2 and_(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_and_pd(a.v, b.v)};
  }
  [[nodiscard]] static VecAvx2 select(VecAvx2 mask, VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_blendv_pd(b.v, a.v, mask.v)};
  }
  [[nodiscard]] int movemask() const { return _mm256_movemask_pd(v); }

  template <bool kFma>
  [[nodiscard]] static VecAvx2 mul_add(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
    if constexpr (kFma) {
      return VecAvx2{_mm256_fmadd_pd(a.v, b.v, c.v)};
    } else {
      return a * b + c;
    }
  }
  template <bool kFma>
  [[nodiscard]] static VecAvx2 mul_sub(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
    if constexpr (kFma) {
      return VecAvx2{_mm256_fmsub_pd(a.v, b.v, c.v)};
    } else {
      return a * b - c;
    }
  }

  [[nodiscard]] static VecAvx2 addsub(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_addsub_pd(a.v, b.v)};
  }
  template <bool kFma>
  [[nodiscard]] static VecAvx2 fmaddsub(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
    if constexpr (kFma) {
      return VecAvx2{_mm256_fmaddsub_pd(a.v, b.v, c.v)};
    } else {
      return addsub(a * b, c);
    }
  }
  template <bool kFma>
  [[nodiscard]] static VecAvx2 fmsubadd(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
    if constexpr (kFma) {
      return VecAvx2{_mm256_fmsubadd_pd(a.v, b.v, c.v)};
    } else {
      return addsub(a * b, c.neg());
    }
  }

  [[nodiscard]] VecAvx2 swap_pairs() const { return VecAvx2{_mm256_permute_pd(v, 0x5)}; }
  [[nodiscard]] VecAvx2 dup_even() const { return VecAvx2{_mm256_movedup_pd(v)}; }
  [[nodiscard]] VecAvx2 dup_odd() const { return VecAvx2{_mm256_permute_pd(v, 0xF)}; }
  [[nodiscard]] VecAvx2 swap_halves() const { return VecAvx2{_mm256_permute2f128_pd(v, v, 0x01)}; }
  [[nodiscard]] static VecAvx2 concat_lo(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_permute2f128_pd(a.v, b.v, 0x20)};
  }
  template <int kMask>
  [[nodiscard]] static VecAvx2 blend(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_blend_pd(a.v, b.v, kMask)};
  }
  [[nodiscard]] VecAvx2 neg() const {
    return VecAvx2{_mm256_xor_pd(v, _mm256_set1_pd(-0.0))};
  }
  [[nodiscard]] VecAvx2 conj() const {
    return VecAvx2{_mm256_xor_pd(v, _mm256_set_pd(-0.0, 0.0, -0.0, 0.0))};
  }
  [[nodiscard]] VecAvx2 neg_even() const {
    return VecAvx2{_mm256_xor_pd(v, _mm256_set_pd(0.0, -0.0, 0.0, -0.0))};
  }
};

#endif  // __AVX2__

/// w * b on two interleaved (re, im) complex pairs.
template <bool kFma, class V>
[[nodiscard]] inline V cmul(V w, V b) {
  return V::template fmaddsub<kFma>(w.dup_even(), b, w.dup_odd() * b.swap_pairs());
}

/// conj(w) * b on two interleaved (re, im) complex pairs.
template <bool kFma, class V>
[[nodiscard]] inline V cmul_conj(V w, V b) {
  return V::template fmsubadd<kFma>(w.dup_even(), b, w.dup_odd() * b.swap_pairs());
}

}  // namespace turbda::simd
