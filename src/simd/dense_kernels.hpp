// Runtime-dispatched small-dense kernels for the ensemble-space hot loops.
//
// The LETKF analysis and the Jacobi eigensolver reduce to four primitive
// loops over contiguous rows: a rank-k row accumulation (every Gram build,
// GEMV and small GEMM in the weight algebra), a Givens rotation of two rows,
// and two scale/shift forms for the posterior combine. Like the FFT tables,
// each primitive is written once against the portable simd::Vec API
// (dense_kernels_impl.hpp) and instantiated per backend behind a table of
// function pointers keyed by the process-global simd::SimdLevel.
//
// Determinism contract: every kernel vectorizes over independent output
// lanes and accumulates sequentially over the reduction index — no lane
// reduction trees — so the Scalar and Avx2 tables are bitwise identical,
// and results never depend on thread count. The Avx2Fma table contracts
// multiplies into FMAs (~1 ulp per accumulation step).
#pragma once

#include <cstddef>

#include "simd/dispatch.hpp"

namespace turbda::simd {

struct DenseKernels {
  /// acc[j] += sum_i x[i * ldx] * y[i * ldy + j] for j in [0, m): a rank-k
  /// update of one contiguous accumulator row from k strided coefficients
  /// and k contiguous rows of y. Sequential over i, vector over j.
  void (*accum_rows)(double* acc, const double* x, std::size_t ldx, const double* y,
                     std::size_t ldy, std::size_t k, std::size_t m);
  /// Givens rotation of two contiguous rows:
  /// (p[i], q[i]) <- (c*p[i] - s*q[i], s*p[i] + c*q[i]).
  void (*rot_rows)(double* p, double* q, std::size_t n, double c, double s);
  /// out[i] = alpha * in[i].
  void (*scale)(double* out, const double* in, std::size_t n, double alpha);
  /// out[i] = shift + alpha * in[i].
  void (*scale_shift)(double* out, const double* in, std::size_t n, double alpha, double shift);
};

/// Kernel table for the given level; level must be available.
[[nodiscard]] const DenseKernels& dense_kernels_for(SimdLevel level);

/// Table for the active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] const DenseKernels& active_dense_kernels();

}  // namespace turbda::simd
