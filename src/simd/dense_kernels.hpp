// Runtime-dispatched small-dense kernels for the ensemble-space hot loops.
//
// The LETKF analysis and the Jacobi eigensolver reduce to four primitive
// loops over contiguous rows: a rank-k row accumulation (every Gram build,
// GEMV and small GEMM in the weight algebra), a Givens rotation of two rows,
// and two scale/shift forms for the posterior combine. Like the FFT tables,
// each primitive is written once against the portable simd::Vec API
// (dense_kernels_impl.hpp) and instantiated per backend behind a table of
// function pointers keyed by the process-global simd::SimdLevel.
//
// Determinism contract: every kernel vectorizes over independent output
// lanes and accumulates sequentially over the reduction index — no lane
// reduction trees — so the Scalar and Avx2 tables are bitwise identical,
// and results never depend on thread count. The Avx2Fma table contracts
// multiplies into FMAs (~1 ulp per accumulation step).
//
// The lane-batched b* entries flip the vectorization axis: instead of
// vectorizing one problem's output row, they advance kLaneBatch independent
// problems in lockstep, one problem per Vec lane, over lane-interleaved
// structure-of-arrays buffers (logical element e of problem l lives at
// ptr[e * kLaneBatch + l]). Per lane they perform the exact IEEE operation
// sequence of their sequential counterpart at the same dispatch level —
// including the fused steps of the Avx2Fma table — so a lane-batched solve
// is bitwise identical to kLaneBatch sequential solves at EVERY level, and
// every Vec op is fully occupied regardless of the problem size.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.hpp"

namespace turbda::simd {

/// Problems per lane-batched kernel call (== Vec::kWidth of both backends).
inline constexpr std::size_t kLaneBatch = 4;

struct DenseKernels {
  /// acc[j] += sum_i x[i * ldx] * y[i * ldy + j] for j in [0, m): a rank-k
  /// update of one contiguous accumulator row from k strided coefficients
  /// and k contiguous rows of y. Sequential over i, vector over j.
  void (*accum_rows)(double* acc, const double* x, std::size_t ldx, const double* y,
                     std::size_t ldy, std::size_t k, std::size_t m);
  /// Givens rotation of two contiguous rows:
  /// (p[i], q[i]) <- (c*p[i] - s*q[i], s*p[i] + c*q[i]).
  void (*rot_rows)(double* p, double* q, std::size_t n, double c, double s);
  /// out[i] = alpha * in[i].
  void (*scale)(double* out, const double* in, std::size_t n, double alpha);
  /// out[i] = shift + alpha * in[i].
  void (*scale_shift)(double* out, const double* in, std::size_t n, double alpha, double shift);

  // ---- Lane-batched entries: kLaneBatch problems, lane-interleaved SoA ----

  /// Lane-batched accum_rows. Same contract per lane, with ldx/ldy/k/m in
  /// logical elements (byte strides are kLaneBatch times larger): for each
  /// problem l, acc[j] += sum_i x[i*ldx]*y[i*ldy+j]. One Vec op per logical
  /// element, fully occupied for any row length m.
  void (*baccum_rows)(double* acc, const double* x, std::size_t ldx, const double* y,
                      std::size_t ldy, std::size_t k, std::size_t m);
  /// Lane-batched scale with a per-lane factor: out[j] = alpha[lane]*in[j].
  void (*bscale)(double* out, const double* in, std::size_t n, const double* alpha);
  /// Lane-batched scale_shift with a shared factor and a per-lane shift:
  /// out[j] = shift[lane] + alpha*in[j].
  void (*bscale_shift)(double* out, const double* in, std::size_t n, double alpha,
                       const double* shift);
  /// Masked lane-batched cyclic-by-rows Jacobi sweep loop: kLaneBatch
  /// symmetric n x n problems (lane-interleaved in `m`, eigenvector rows
  /// accumulated into `vt`, pre-seeded to per-lane identity) advance through
  /// the data-independent rotation schedule in lockstep. Per-lane skip and
  /// convergence masks (thresholds tol_sq/skip_sq per lane) blend each
  /// lane's values bit-unchanged once it is done, so every lane reproduces
  /// the sequential jacobi_eigh arithmetic exactly. Outputs per lane: sweep
  /// count, final off-diagonal Frobenius norm squared, and a convergence
  /// flag (a lane that exhausts max_sweeps simply reports 0; policy is the
  /// caller's). Unused lanes: give them finite content (e.g. zeros) and an
  /// infinite tol_sq so they converge at entry and are never touched.
  void (*bjacobi_sweeps)(double* m, double* vt, std::size_t n, int max_sweeps,
                         const double* tol_sq, const double* skip_sq, int* sweeps,
                         double* off_sq, std::uint8_t* converged);

  // ---- Contiguous elementwise helpers (EnSF per-sample updates) ----

  /// out[i] += alpha * in[i].
  void (*axpy)(double* out, const double* in, std::size_t n, double alpha);
  /// out[i] += clamp(alpha * in[i], -lim, +lim), with vmaxpd/vminpd tie
  /// semantics in the clamp.
  void (*clamped_axpy)(double* out, const double* in, std::size_t n, double alpha, double lim);
};

/// Kernel table for the given level; level must be available.
[[nodiscard]] const DenseKernels& dense_kernels_for(SimdLevel level);

/// Table for the active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] const DenseKernels& active_dense_kernels();

}  // namespace turbda::simd
