// AVX2 / AVX2+FMA pointwise-kernel tables: the generic Vec kernels from
// pointwise_kernels_impl.hpp instantiated with the VecAvx2 backend. Compiled
// with -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt); used only after
// runtime CPUID confirms support. The Avx2 table is bitwise identical to the
// scalar table; Avx2Fma contracts multiplies into FMAs.
#include "simd/pointwise_kernels.hpp"

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__) && defined(__AVX2__)

#include "simd/pointwise_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::simd {

// Declared extern in pointwise_kernels.cpp (namespace-scope const defaults
// to internal linkage, so the declarations must precede the definitions).
extern const PointwiseKernels kAvx2Pointwise;
extern const PointwiseKernels kAvx2FmaPointwise;

const PointwiseKernels kAvx2Pointwise = {
    detail::sqg_pass1_impl<VecAvx2, false>,
    detail::sqg_jacobian_impl<VecAvx2, false>,
    detail::sqg_combine_impl<VecAvx2, false>,
    detail::mul_inplace_impl<VecAvx2>,
    detail::add_scaled_impl<VecAvx2, false>,
    detail::rk4_update_impl<VecAvx2, false>};
const PointwiseKernels kAvx2FmaPointwise = {
    detail::sqg_pass1_impl<VecAvx2, true>,
    detail::sqg_jacobian_impl<VecAvx2, true>,
    detail::sqg_combine_impl<VecAvx2, true>,
    detail::mul_inplace_impl<VecAvx2>,
    detail::add_scaled_impl<VecAvx2, true>,
    detail::rk4_update_impl<VecAvx2, true>};

}  // namespace turbda::simd

#endif  // TURBDA_HAVE_AVX2 && __x86_64__ && __AVX2__
