// Unit-scaling adapter: runs an inner model whose state lives in different
// physical units.
//
// The SQG solver evolves theta = d(psi)/dz [m/s]; observational practice
// (and the paper's "R = I") works in Kelvin. The conversion is
// theta_K = theta * (theta0 * f / g), so the DA stack assimilates
// Kelvin-equivalent states while the dynamics run in solver units.
#pragma once

#include "models/forecast_model.hpp"

namespace turbda::models {

class ScaledForecast final : public ForecastModel {
 public:
  /// `outer_per_inner`: outer-state units per inner-model unit. For the SQG
  /// Kelvin conversion pass theta0 * f / g (e.g. 300 * 1e-4 / 9.81).
  ScaledForecast(ForecastModel& inner, double outer_per_inner)
      : inner_(inner), scale_(outer_per_inner) {}

  [[nodiscard]] std::size_t dim() const override { return inner_.dim(); }

  void forecast(std::span<double> state) override {
    for (double& v : state) v /= scale_;
    inner_.forecast(state);
    for (double& v : state) v *= scale_;
  }

  /// Forward the batched entry point so batching-capable inner models (SQG)
  /// amortize transforms across the block. Scaling is elementwise, and the
  /// inner batch contract is bitwise-identical to the member loop, so this
  /// changes no results.
  void forecast_batch(std::span<double> states, std::size_t count) override {
    for (double& v : states) v /= scale_;
    inner_.forecast_batch(states, count);
    for (double& v : states) v *= scale_;
  }

  [[nodiscard]] std::string name() const override { return inner_.name() + "-scaled"; }

  /// The wrapper itself touches only the caller's state slice.
  [[nodiscard]] bool concurrent_safe() const override { return inner_.concurrent_safe(); }

  [[nodiscard]] double scale() const { return scale_; }

 private:
  ForecastModel& inner_;
  double scale_;
};

/// Kelvin-per-(m/s) conversion for the SQG state: theta_K = theta * theta0*f/g.
[[nodiscard]] inline double sqg_kelvin_scale(double theta0 = 300.0, double f = 1.0e-4,
                                             double g = 9.81) {
  return theta0 * f / g;
}

}  // namespace turbda::models
