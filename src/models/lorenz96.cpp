#include "models/lorenz96.hpp"

#include "common/check.hpp"

namespace turbda::models {

namespace {

/// Per-thread RK4 scratch so one Lorenz96 instance can step many ensemble
/// members concurrently (see ForecastModel::concurrent_safe).
struct L96Scratch {
  std::vector<double> k1, k2, k3, k4, tmp;

  void ensure(std::size_t n) {
    if (k1.size() == n) return;
    k1.resize(n);
    k2.resize(n);
    k3.resize(n);
    k4.resize(n);
    tmp.resize(n);
  }
};

L96Scratch& tls_scratch(std::size_t n) {
  thread_local L96Scratch s;
  s.ensure(n);
  return s;
}

}  // namespace

Lorenz96::Lorenz96(Lorenz96Config cfg) : cfg_(cfg) {
  TURBDA_REQUIRE(cfg_.dim >= 4, "Lorenz-96 needs dim >= 4");
  TURBDA_REQUIRE(cfg_.dt > 0 && cfg_.steps_per_window > 0, "bad Lorenz-96 time stepping");
}

void Lorenz96::tendency(std::span<const double> x, std::span<double> dx) const {
  const std::size_t n = cfg_.dim;
  for (std::size_t i = 0; i < n; ++i) {
    const double xp1 = x[(i + 1) % n];
    const double xm1 = x[(i + n - 1) % n];
    const double xm2 = x[(i + n - 2) % n];
    dx[i] = (xp1 - xm2) * xm1 - x[i] + cfg_.forcing;
  }
}

void Lorenz96::step(std::span<double> x) const {
  const std::size_t n = cfg_.dim;
  TURBDA_REQUIRE(x.size() == n, "Lorenz-96 state size mismatch");
  auto& s = tls_scratch(n);
  const double dt = cfg_.dt;
  tendency(x, s.k1);
  for (std::size_t i = 0; i < n; ++i) s.tmp[i] = x[i] + 0.5 * dt * s.k1[i];
  tendency(s.tmp, s.k2);
  for (std::size_t i = 0; i < n; ++i) s.tmp[i] = x[i] + 0.5 * dt * s.k2[i];
  tendency(s.tmp, s.k3);
  for (std::size_t i = 0; i < n; ++i) s.tmp[i] = x[i] + dt * s.k3[i];
  tendency(s.tmp, s.k4);
  for (std::size_t i = 0; i < n; ++i)
    x[i] += dt / 6.0 * (s.k1[i] + 2.0 * s.k2[i] + 2.0 * s.k3[i] + s.k4[i]);
}

void Lorenz96::forecast(std::span<double> state) {
  for (int s = 0; s < cfg_.steps_per_window; ++s) step(state);
}

}  // namespace turbda::models
