#include "models/lorenz96.hpp"

#include "common/check.hpp"

namespace turbda::models {

Lorenz96::Lorenz96(Lorenz96Config cfg) : cfg_(cfg) {
  TURBDA_REQUIRE(cfg_.dim >= 4, "Lorenz-96 needs dim >= 4");
  TURBDA_REQUIRE(cfg_.dt > 0 && cfg_.steps_per_window > 0, "bad Lorenz-96 time stepping");
  k1_.resize(cfg_.dim);
  k2_.resize(cfg_.dim);
  k3_.resize(cfg_.dim);
  k4_.resize(cfg_.dim);
  tmp_.resize(cfg_.dim);
}

void Lorenz96::tendency(std::span<const double> x, std::span<double> dx) const {
  const std::size_t n = cfg_.dim;
  for (std::size_t i = 0; i < n; ++i) {
    const double xp1 = x[(i + 1) % n];
    const double xm1 = x[(i + n - 1) % n];
    const double xm2 = x[(i + n - 2) % n];
    dx[i] = (xp1 - xm2) * xm1 - x[i] + cfg_.forcing;
  }
}

void Lorenz96::step(std::span<double> x) const {
  const std::size_t n = cfg_.dim;
  TURBDA_REQUIRE(x.size() == n, "Lorenz-96 state size mismatch");
  const double dt = cfg_.dt;
  tendency(x, k1_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + 0.5 * dt * k1_[i];
  tendency(tmp_, k2_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + 0.5 * dt * k2_[i];
  tendency(tmp_, k3_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + dt * k3_[i];
  tendency(tmp_, k4_);
  for (std::size_t i = 0; i < n; ++i)
    x[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
}

void Lorenz96::forecast(std::span<double> state) {
  for (int s = 0; s < cfg_.steps_per_window; ++s) step(state);
}

}  // namespace turbda::models
