// Lorenz-96 model.
//
// The EnSF papers the framework builds on (refs [24],[25]) validate on a
// Lorenz-96 system with up to O(10^6) variables; we use it for filter unit
// tests and for the dimension sweeps in the EnSF weak-scaling bench
// (Fig. 10), where the state is a long chaotic vector.
//
//   dx_i/dt = (x_{i+1} - x_{i-2}) x_{i-1} - x_i + F       (cyclic indices)
#pragma once

#include <span>
#include <vector>

#include "models/forecast_model.hpp"

namespace turbda::models {

struct Lorenz96Config {
  std::size_t dim = 40;
  double forcing = 8.0;        ///< F; chaotic for F >= 8 at dim 40
  double dt = 0.01;            ///< RK4 step
  int steps_per_window = 5;    ///< model steps per assimilation window
};

class Lorenz96 final : public ForecastModel {
 public:
  explicit Lorenz96(Lorenz96Config cfg);

  [[nodiscard]] std::size_t dim() const override { return cfg_.dim; }
  void forecast(std::span<double> state) override;
  [[nodiscard]] std::string name() const override { return "lorenz96"; }
  [[nodiscard]] bool concurrent_safe() const override { return true; }

  /// Single RK4 step of length cfg.dt.
  void step(std::span<double> x) const;

  [[nodiscard]] const Lorenz96Config& config() const { return cfg_; }

 private:
  void tendency(std::span<const double> x, std::span<double> dx) const;

  Lorenz96Config cfg_;
  // RK4 scratch is per-thread (see lorenz96.cpp): forecast() is called per
  // member in a hot loop — possibly from many pool workers at once — so the
  // model itself stays immutable and allocation-free per step.
};

}  // namespace turbda::models
