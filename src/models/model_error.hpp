// The paper's imperfect-model scenario (§IV-A-b):
//
//   "random model errors drawn from an uncorrelated Gaussian distribution
//    ... white in time, but comprised of four stochastic processes
//    characterized by a different probability of occurrence and amplitude —
//    20%, 15%, 10% and 5% chance of realization with amplitudes equal to
//    20%, 30%, 40% and 50% of the average SQG model values."
//
// Each time the process fires for component c, iid Gaussian noise with
// standard deviation amplitude[c] * reference_scale is added to the state,
// where reference_scale is the time-average RMS magnitude of the model state
// ("average SQG model values").
#pragma once

#include <array>
#include <span>
#include <vector>

#include "rng/rng.hpp"

namespace turbda::models {

struct ModelErrorConfig {
  std::array<double, 4> probabilities{0.20, 0.15, 0.10, 0.05};
  std::array<double, 4> amplitudes{0.20, 0.30, 0.40, 0.50};
  /// "average SQG model values" — RMS state magnitude the amplitudes are
  /// relative to. Must be set from a long model integration.
  double reference_scale = 1.0;
};

class ModelErrorProcess {
 public:
  explicit ModelErrorProcess(ModelErrorConfig cfg) : cfg_(cfg) {}

  /// Applies one window's worth of model error to `state`.
  void apply(std::span<double> state, rng::Rng& rng) const {
    for (std::size_t c = 0; c < cfg_.probabilities.size(); ++c) {
      if (!rng.bernoulli(cfg_.probabilities[c])) continue;
      const double sd = cfg_.amplitudes[c] * cfg_.reference_scale;
      for (double& x : state) x += rng.gaussian(0.0, sd);
    }
  }

  /// Draws one window's error realization without applying it. Used when the
  /// same imperfection afflicts every ensemble member (a systematic model
  /// bias per window): the ensemble spread cannot see such errors, which is
  /// what breaks covariance-based filters in the paper's Fig. 4.
  [[nodiscard]] std::vector<double> sample(std::size_t dim, rng::Rng& rng) const {
    std::vector<double> err(dim, 0.0);
    for (std::size_t c = 0; c < cfg_.probabilities.size(); ++c) {
      if (!rng.bernoulli(cfg_.probabilities[c])) continue;
      const double sd = cfg_.amplitudes[c] * cfg_.reference_scale;
      for (double& x : err) x += rng.gaussian(0.0, sd);
    }
    return err;
  }

  /// Expected per-window error variance (sum of p_c * sd_c^2) — useful for
  /// verifying the injector statistically and for sizing filter inflation.
  [[nodiscard]] double expected_variance() const {
    double v = 0.0;
    for (std::size_t c = 0; c < cfg_.probabilities.size(); ++c) {
      const double sd = cfg_.amplitudes[c] * cfg_.reference_scale;
      v += cfg_.probabilities[c] * sd * sd;
    }
    return v;
  }

  [[nodiscard]] const ModelErrorConfig& config() const { return cfg_; }

 private:
  ModelErrorConfig cfg_;
};

}  // namespace turbda::models
