// Forecast-model interface (Eq. 1 of the paper): X_k = f_{k-1}(X_{k-1}).
//
// The DA framework is model-agnostic ("this forecast model could be either
// physics-based like the SQG, or an AI-based foundation model"); every
// dynamical core and the ViT surrogate implement this interface so filters
// and the cycling driver never know which one they are driving.
#pragma once

#include <span>
#include <string>

namespace turbda::models {

class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  /// Number of state variables.
  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Advance `state` in place over one assimilation window.
  virtual void forecast(std::span<double> state) = 0;

  /// Advance `count` states stored contiguously (count x dim(), row-major —
  /// the Ensemble member layout) in place over one assimilation window.
  /// Must be bitwise identical to calling forecast() on each row in order
  /// (the cycling drivers hand each worker thread a member *block* through
  /// this entry point); models override it to batch cross-member work — the
  /// SQG core fuses the block's spectral transforms into shared sweeps.
  virtual void forecast_batch(std::span<double> states, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) forecast(states.subspan(i * dim(), dim()));
  }

  /// True when forecast()/forecast_batch() may be called concurrently from
  /// several threads on disjoint states (no shared mutable scratch). The
  /// OSSE driver fans the ensemble member loop out over the thread pool only
  /// for models that opt in; the default is the conservative serial
  /// contract.
  [[nodiscard]] virtual bool concurrent_safe() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace turbda::models
