// NPY (NumPy binary) writer so field snapshots (Fig. 5) can be inspected
// with standard tooling. Format spec v1.0, little-endian float64, C order.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace turbda::io {

inline void write_npy(const std::string& path, std::span<const double> data,
                      std::span<const std::size_t> shape) {
  std::size_t n = 1;
  for (auto s : shape) n *= s;
  TURBDA_REQUIRE(n == data.size(), "write_npy: shape does not match data size");

  std::ostringstream dict;
  dict << "{'descr': '<f8', 'fortran_order': False, 'shape': (";
  for (std::size_t i = 0; i < shape.size(); ++i) dict << shape[i] << (shape.size() == 1 ? "," : (i + 1 < shape.size() ? ", " : ""));
  dict << "), }";
  std::string header = dict.str();
  // Pad with spaces so that magic(6)+version(2)+len(2)+header is a multiple
  // of 64, terminated by '\n'.
  const std::size_t base = 6 + 2 + 2;
  std::size_t total = base + header.size() + 1;
  const std::size_t pad = (64 - total % 64) % 64;
  header.append(pad, ' ');
  header.push_back('\n');

  std::ofstream out(path, std::ios::binary);
  TURBDA_REQUIRE(out.good(), "cannot open NPY file " << path);
  out.write("\x93NUMPY", 6);
  const char version[2] = {1, 0};
  out.write(version, 2);
  const auto hlen = static_cast<std::uint16_t>(header.size());
  const char lenb[2] = {static_cast<char>(hlen & 0xFF), static_cast<char>(hlen >> 8)};
  out.write(lenb, 2);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
}

inline void write_npy(const std::string& path, std::span<const double> data,
                      std::initializer_list<std::size_t> shape) {
  write_npy(path, data, std::span<const std::size_t>(shape.begin(), shape.size()));
}

}  // namespace turbda::io
