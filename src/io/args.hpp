// Tiny command-line parsing for bench/example binaries:
// --flag, --key=value. Unknown arguments are ignored (so google-benchmark
// flags pass through untouched).
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

namespace turbda::io {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] bool flag(std::string_view name) const {
    const std::string full = "--" + std::string(name);
    for (int i = 1; i < argc_; ++i)
      if (full == argv_[i]) return true;
    return false;
  }

  [[nodiscard]] long get_int(std::string_view name, long fallback) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      std::string_view a(argv_[i]);
      if (a.starts_with(prefix)) return std::atol(a.substr(prefix.size()).data());
    }
    return fallback;
  }

  [[nodiscard]] double get_double(std::string_view name, double fallback) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      std::string_view a(argv_[i]);
      if (a.starts_with(prefix)) return std::atof(a.substr(prefix.size()).data());
    }
    return fallback;
  }

  [[nodiscard]] std::string get_str(std::string_view name, std::string fallback) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      std::string_view a(argv_[i]);
      if (a.starts_with(prefix)) return std::string(a.substr(prefix.size()));
    }
    return fallback;
  }

 private:
  int argc_;
  char** argv_;
};

}  // namespace turbda::io
