// Aligned console tables: every bench prints the paper's rows/series through
// this, so outputs read like the original tables/figures.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace turbda::io {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Formats a double with given precision for a cell.
  static std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  static std::string sci(double v, int prec = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t j = 0; j < header_.size(); ++j) w[j] = header_[j].size();
    for (const auto& r : rows_)
      for (std::size_t j = 0; j < r.size() && j < w.size(); ++j)
        w[j] = std::max(w[j], r[j].size());

    auto line = [&] {
      os << '+';
      for (auto wj : w) os << std::string(wj + 2, '-') << '+';
      os << '\n';
    };
    auto prow = [&](const std::vector<std::string>& r) {
      os << '|';
      for (std::size_t j = 0; j < w.size(); ++j) {
        const std::string& c = j < r.size() ? r[j] : std::string{};
        os << ' ' << std::left << std::setw(static_cast<int>(w[j])) << c << " |";
      }
      os << '\n';
    };
    line();
    prow(header_);
    line();
    for (const auto& r : rows_) prow(r);
    line();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turbda::io
