// Minimal CSV writer for experiment outputs (RMSE series, scaling tables).
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace turbda::io {

class CsvWriter {
 public:
  /// `comment`, when non-empty, is written as a `# `-prefixed line before the
  /// header (schema versions, provenance). Parsers should skip '#' lines.
  CsvWriter(const std::string& path, std::span<const std::string> header,
            const std::string& comment = {})
      : out_(path) {
    TURBDA_REQUIRE(out_.good(), "cannot open CSV file " << path);
    if (!comment.empty()) out_ << "# " << comment << '\n';
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i) out_ << ',';
      out_ << header[i];
    }
    out_ << '\n';
    cols_ = header.size();
  }

  CsvWriter(const std::string& path, std::initializer_list<std::string> header,
            const std::string& comment = {})
      : CsvWriter(path, std::vector<std::string>(header), comment) {}

  void row(std::span<const double> values) {
    TURBDA_REQUIRE(values.size() == cols_, "CSV row width mismatch");
    out_.precision(12);
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out_ << ',';
      out_ << values[i];
    }
    out_ << '\n';
  }

  void row(std::initializer_list<double> values) {
    row(std::span<const double>(values.begin(), values.size()));
  }

 private:
  std::ofstream out_;
  std::size_t cols_ = 0;
};

}  // namespace turbda::io
