// AVX2 / AVX2+FMA FFT kernels. Compiled with -mavx2 -mfma -ffp-contract=off
// (see CMakeLists.txt); used only after runtime CPUID confirms support.
//
// The Avx2 table performs exactly one IEEE operation per scalar operation in
// the same per-element order as the scalar kernels (complex multiplies via
// mul + addsub), so its results are bitwise identical to the scalar path.
// The Avx2Fma table contracts each complex multiply's two roundings into one
// fused multiply-add (fmaddsub / fmsubadd) — ~1 ulp per butterfly from the
// scalar reference, verified to 1e-12 end to end by the tests. The scalar
// remainder loops in the rfft kernels repeat the scalar arithmetic verbatim;
// -ffp-contract=off keeps the compiler from contracting them here.
#include "fft/simd_kernels.hpp"

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace turbda::fft {

namespace {

// Lane masks for interleaved (re, im) pairs.
inline __m256d conj_mask() { return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0); }  // flip imag
inline __m256d neg_mask() { return _mm256_set1_pd(-0.0); }                  // flip both

/// w * b on two interleaved complex pairs.
template <bool kFma>
inline __m256d cmul(__m256d w, __m256d b) {
  const __m256d wr = _mm256_movedup_pd(w);       // [wr wr wr' wr']
  const __m256d wi = _mm256_permute_pd(w, 0xF);  // [wi wi wi' wi']
  const __m256d bs = _mm256_permute_pd(b, 0x5);  // [bi br bi' br']
  if constexpr (kFma) {
    return _mm256_fmaddsub_pd(wr, b, _mm256_mul_pd(wi, bs));
  } else {
    return _mm256_addsub_pd(_mm256_mul_pd(wr, b), _mm256_mul_pd(wi, bs));
  }
}

/// conj(w) * b on two interleaved complex pairs.
template <bool kFma>
inline __m256d cmul_conj(__m256d w, __m256d b) {
  const __m256d wr = _mm256_movedup_pd(w);
  const __m256d wi = _mm256_permute_pd(w, 0xF);
  const __m256d bs = _mm256_permute_pd(b, 0x5);
  if constexpr (kFma) {
    return _mm256_fmsubadd_pd(wr, b, _mm256_mul_pd(wi, bs));
  } else {
    return _mm256_addsub_pd(_mm256_mul_pd(wr, b),
                            _mm256_xor_pd(_mm256_mul_pd(wi, bs), neg_mask()));
  }
}

// ---------------------------------------------------------------------------
// Butterfly passes
// ---------------------------------------------------------------------------

void pass_first_avx2(double* d, std::size_t n2, double isign) {
  // Per 4-complex block: A = [z0+z1 | z0-z1], D = [z2+z3 | -+i (z2-z3)],
  // outputs A±D — the same adds/multiplies as the scalar code, lane-parallel.
  const __m256d rot = _mm256_set_pd(isign, -isign, 1.0, 1.0);
  for (std::size_t base = 0; base < n2; base += 8) {
    double* p = d + base;
    const __m256d r0 = _mm256_loadu_pd(p);
    const __m256d r1 = _mm256_loadu_pd(p + 4);
    const __m256d sw0 = _mm256_permute2f128_pd(r0, r0, 0x01);
    const __m256d sw1 = _mm256_permute2f128_pd(r1, r1, 0x01);
    const __m256d s0 = _mm256_add_pd(r0, sw0), d0 = _mm256_sub_pd(r0, sw0);
    const __m256d s1 = _mm256_add_pd(r1, sw1), d1 = _mm256_sub_pd(r1, sw1);
    const __m256d a = _mm256_permute2f128_pd(s0, d0, 0x20);  // [a0 | a1]
    const __m256d c = _mm256_permute2f128_pd(s1, d1, 0x20);  // [a2 | a3]
    const __m256d cs = _mm256_permute_pd(c, 0x5);            // [a2 im/re | a3 im/re]
    const __m256d dd = _mm256_blend_pd(c, _mm256_mul_pd(cs, rot), 0b1100);  // [a2 | b3]
    _mm256_storeu_pd(p, _mm256_add_pd(a, dd));
    _mm256_storeu_pd(p + 4, _mm256_sub_pd(a, dd));
  }
}

template <bool kFma>
void pass_radix4_avx2(double* d, std::size_t n, std::size_t half, const double* tw,
                      const double* tw1) {
  const std::size_t len4 = 4 * half;
  for (std::size_t base = 0; base < n; base += len4) {
    double* p0 = d + 2 * base;
    double* p1 = p0 + 2 * half;
    double* p2 = p1 + 2 * half;
    double* p3 = p2 + 2 * half;
    for (std::size_t k = 0; k < half; k += 2) {  // half >= 4 and even: no tail
      const __m256d w = _mm256_loadu_pd(tw + 2 * k);
      const __m256d a = _mm256_loadu_pd(p0 + 2 * k);
      const __m256d b = _mm256_loadu_pd(p1 + 2 * k);
      const __m256d c = _mm256_loadu_pd(p2 + 2 * k);
      const __m256d e = _mm256_loadu_pd(p3 + 2 * k);
      const __m256d tb = cmul<kFma>(w, b);
      const __m256d td = cmul<kFma>(w, e);
      const __m256d ua = _mm256_add_pd(a, tb), ub = _mm256_sub_pd(a, tb);
      const __m256d uc = _mm256_add_pd(c, td), ud = _mm256_sub_pd(c, td);
      const __m256d v0 = _mm256_loadu_pd(tw1 + 2 * k);
      const __m256d v1 = _mm256_loadu_pd(tw1 + 2 * (k + half));
      const __m256d tc = cmul<kFma>(v0, uc);
      const __m256d te = cmul<kFma>(v1, ud);
      _mm256_storeu_pd(p0 + 2 * k, _mm256_add_pd(ua, tc));
      _mm256_storeu_pd(p2 + 2 * k, _mm256_sub_pd(ua, tc));
      _mm256_storeu_pd(p1 + 2 * k, _mm256_add_pd(ub, te));
      _mm256_storeu_pd(p3 + 2 * k, _mm256_sub_pd(ub, te));
    }
  }
}

template <bool kFma>
void pass_radix2_avx2(double* d, std::size_t n, std::size_t half, const double* tw) {
  for (std::size_t base = 0; base < n; base += 2 * half) {
    double* lo = d + 2 * base;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; k += 2) {  // half >= 4 and even: no tail
      const __m256d w = _mm256_loadu_pd(tw + 2 * k);
      const __m256d h = _mm256_loadu_pd(hi + 2 * k);
      const __m256d u = _mm256_loadu_pd(lo + 2 * k);
      const __m256d t = cmul<kFma>(w, h);
      _mm256_storeu_pd(lo + 2 * k, _mm256_add_pd(u, t));
      _mm256_storeu_pd(hi + 2 * k, _mm256_sub_pd(u, t));
    }
  }
}

// ---------------------------------------------------------------------------
// Rfft1D Hermitian pack/unpack. Bins k and h-k are updated together; the
// vector loop walks two bins from each end per iteration (the mirrored pair
// is loaded/stored through one 128-bit-lane swap), and hands the last one or
// two middle bins to a scalar remainder with the identical arithmetic.
// ---------------------------------------------------------------------------

template <bool kFma>
void rfft_pack_avx2(double* s, const double* w, std::size_t h) {
  const __m256d half_v = _mm256_set1_pd(0.5);
  std::size_t k = 1;
  for (; 2 * k + 2 < h; k += 2) {
    const std::size_t mbase = 2 * (h - k - 1);
    const __m256d fwd = _mm256_loadu_pd(s + 2 * k);
    const __m256d mir0 = _mm256_loadu_pd(s + mbase);
    const __m256d mir = _mm256_permute2f128_pd(mir0, mir0, 0x01);  // [z(h-k) | z(h-k-1)]
    const __m256d e =
        _mm256_mul_pd(half_v, _mm256_add_pd(fwd, _mm256_xor_pd(mir, conj_mask())));
    const __m256d fwds = _mm256_permute_pd(fwd, 0x5);
    const __m256d mirs = _mm256_permute_pd(mir, 0x5);
    const __m256d o = _mm256_mul_pd(
        half_v, _mm256_addsub_pd(mirs, _mm256_xor_pd(fwds, neg_mask())));
    const __m256d t = cmul<kFma>(_mm256_loadu_pd(w + 2 * k), o);
    const __m256d outk = _mm256_add_pd(e, t);
    // Mirror bin (er - tr, ti - ei): negating the (e - t) subtraction would
    // flip the sign of an exactly-zero imaginary lane (-(x - x) is -0.0,
    // ti - ei is +0.0), so build it as an addsub of negated operands — x +
    // (-y) is the same IEEE operation as x - y, keeping the scalar
    // reference bitwise.
    const __m256d x = _mm256_blend_pd(e, t, 0b1010);  // [er ti | ...]
    const __m256d y = _mm256_blend_pd(t, _mm256_xor_pd(e, neg_mask()), 0b1010);  // [tr -ei | ...]
    const __m256d outkc = _mm256_addsub_pd(x, y);
    _mm256_storeu_pd(s + 2 * k, outk);
    _mm256_storeu_pd(s + mbase, _mm256_permute2f128_pd(outkc, outkc, 0x01));
  }
  for (; k < h - k; ++k) {  // scalar remainder, same arithmetic
    const std::size_t kc = h - k;
    const double zkr = s[2 * k], zki = s[2 * k + 1];
    const double zcr = s[2 * kc], zci = s[2 * kc + 1];
    const double er = 0.5 * (zkr + zcr), ei = 0.5 * (zki - zci);
    const double or_ = 0.5 * (zki + zci), oi = 0.5 * (zcr - zkr);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double tr = wr * or_ - wi * oi, ti = wr * oi + wi * or_;
    s[2 * k] = er + tr;
    s[2 * k + 1] = ei + ti;
    s[2 * kc] = er - tr;
    s[2 * kc + 1] = ti - ei;
  }
}

template <bool kFma>
void rfft_unpack_avx2(double* s, const double* w, std::size_t h) {
  const __m256d half_v = _mm256_set1_pd(0.5);
  std::size_t k = 1;
  for (; 2 * k + 2 < h; k += 2) {
    const std::size_t mbase = 2 * (h - k - 1);
    const __m256d fwd = _mm256_loadu_pd(s + 2 * k);
    const __m256d mir0 = _mm256_loadu_pd(s + mbase);
    const __m256d mir = _mm256_permute2f128_pd(mir0, mir0, 0x01);
    const __m256d e = _mm256_mul_pd(
        half_v, _mm256_addsub_pd(fwd, _mm256_xor_pd(mir, neg_mask())));
    const __m256d ot = _mm256_mul_pd(half_v, _mm256_addsub_pd(fwd, mir));
    const __m256d o = cmul_conj<kFma>(_mm256_loadu_pd(w + 2 * k), ot);
    const __m256d os = _mm256_permute_pd(o, 0x5);  // [oi or_ | ...]
    const __m256d outk = _mm256_addsub_pd(e, os);
    const __m256d x = _mm256_blend_pd(e, os, 0b1010);  // [er or_ | ...]
    const __m256d y = _mm256_blend_pd(os, e, 0b1010);  // [oi ei | ...]
    const __m256d outkc = _mm256_addsub_pd(x, _mm256_xor_pd(y, neg_mask()));
    _mm256_storeu_pd(s + 2 * k, outk);
    _mm256_storeu_pd(s + mbase, _mm256_permute2f128_pd(outkc, outkc, 0x01));
  }
  for (; k < h - k; ++k) {  // scalar remainder, same arithmetic
    const std::size_t kc = h - k;
    const double ar = s[2 * k], ai = s[2 * k + 1];
    const double br = s[2 * kc], bi = s[2 * kc + 1];
    const double er = 0.5 * (ar + br), ei = 0.5 * (ai - bi);
    const double otr = 0.5 * (ar - br), oti = 0.5 * (ai + bi);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double or_ = wr * otr + wi * oti, oi = wr * oti - wi * otr;
    s[2 * k] = er - oi;
    s[2 * k + 1] = ei + or_;
    s[2 * kc] = er + oi;
    s[2 * kc + 1] = or_ - ei;
  }
}

}  // namespace

// Declared extern in simd_kernels.cpp (namespace-scope const defaults to
// internal linkage, so the declarations must precede the definitions).
extern const FftKernels kAvx2Kernels;
extern const FftKernels kAvx2FmaKernels;

const FftKernels kAvx2Kernels = {pass_first_avx2, pass_radix4_avx2<false>, pass_radix2_avx2<false>,
                                 rfft_pack_avx2<false>, rfft_unpack_avx2<false>};
const FftKernels kAvx2FmaKernels = {pass_first_avx2, pass_radix4_avx2<true>, pass_radix2_avx2<true>,
                                    rfft_pack_avx2<true>, rfft_unpack_avx2<true>};

}  // namespace turbda::fft

#endif  // TURBDA_HAVE_AVX2 && __x86_64__ && __AVX2__
