// AVX2 / AVX2+FMA FFT kernel tables: the generic Vec kernels from
// simd_kernels_impl.hpp instantiated with the VecAvx2 backend. Compiled with
// -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt); used only after
// runtime CPUID confirms support.
//
// The Avx2 table (kFma = false) performs exactly one IEEE operation per
// VecScalar operation in the same per-element order, so its results are
// bitwise identical to the scalar table. The Avx2Fma table contracts each
// complex multiply's two roundings into one fused multiply-add — ~1 ulp per
// butterfly from the scalar reference, verified to 1e-12 end to end by the
// tests.
#include "fft/simd_kernels.hpp"

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__) && defined(__AVX2__)

#include "fft/simd_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::fft {

using simd::VecAvx2;

// Declared extern in simd_kernels.cpp (namespace-scope const defaults to
// internal linkage, so the declarations must precede the definitions).
extern const FftKernels kAvx2Kernels;
extern const FftKernels kAvx2FmaKernels;

const FftKernels kAvx2Kernels = {
    detail::pass_first_impl<VecAvx2>, detail::pass_radix4_impl<VecAvx2, false>,
    detail::pass_radix2_impl<VecAvx2, false>, detail::rfft_pack_impl<VecAvx2, false>,
    detail::rfft_unpack_impl<VecAvx2, false>};
const FftKernels kAvx2FmaKernels = {
    detail::pass_first_impl<VecAvx2>, detail::pass_radix4_impl<VecAvx2, true>,
    detail::pass_radix2_impl<VecAvx2, true>, detail::rfft_pack_impl<VecAvx2, true>,
    detail::rfft_unpack_impl<VecAvx2, true>};

}  // namespace turbda::fft

#endif  // TURBDA_HAVE_AVX2 && __x86_64__ && __AVX2__
