// Fast Fourier transforms for the spectral SQG solver.
//
// Iterative radix-2 Cooley–Tukey with per-stage contiguous twiddle tables and
// specialized length-2/4 stages (power-of-two sizes; the paper's grids are
// 64, 128, 256). Real grids go through a half-spectrum real transform
// (Rfft1D): an n-point r2c/c2r costs one n/2-point complex FFT plus an O(n)
// Hermitian (un)packing pass — half the flops and memory traffic of the
// complex round trip. 2-D transforms run rows, a cache-blocked transpose,
// batched contiguous "column" transforms, and a transpose back; the row and
// column batches are disjoint, so they optionally fan out over the process
// thread pool with bitwise thread-count-invariant results. Convention
// matches numpy: forward unnormalized, inverse carries the 1/N factor — so
// does the sqgturb reference implementation the paper follows.
#pragma once

#include <complex>
#include <optional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "fft/simd_kernels.hpp"

namespace turbda::fft {

using Cplx = std::complex<double>;

/// 1-D complex FFT plan of fixed power-of-two length.
class Fft1D {
 public:
  explicit Fft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2πi jk / n).
  void forward(std::span<Cplx> x) const { transform(x, /*inverse=*/false); }

  /// In-place inverse DFT with 1/n normalization.
  void inverse(std::span<Cplx> x) const { transform(x, /*inverse=*/true); }

  /// As forward()/inverse(), but the caller guarantees the input is nonzero
  /// only on the wrapped index band j <= band or j >= n - band (the shape of
  /// a dealiased |my| <= kcut spectral column). The first fused butterfly
  /// pass skips the arithmetic the band proves trivial; later stages are
  /// dense. Results match the dense transform except that skipped
  /// zero-operand additions may flip the sign of a zero (value-identical,
  /// 1e-12-test-enforced). band >= n/2 degrades to the dense transform.
  void forward_banded(std::span<Cplx> x, std::size_t band) const {
    transform_banded(x, /*inverse=*/false, band);
  }
  void inverse_banded(std::span<Cplx> x, std::size_t band) const {
    transform_banded(x, /*inverse=*/true, band);
  }

 private:
  void transform(std::span<Cplx> x, bool inverse) const;
  void transform_banded(std::span<Cplx> x, bool inverse, std::size_t band) const;
  /// The butterfly stages shared by the dense and banded paths: fused
  /// radix-2² pairs plus the odd remaining radix-2 stage, starting at stage 3.
  void general_stages(double* d, bool inverse, const FftKernels& kr) const;

  std::size_t n_;
  int log2n_;
  std::vector<std::size_t> bitrev_;
  // Per-stage twiddles for stage lengths >= 8, contiguous per stage:
  // stage_fwd_[s][k] = exp(-2πi k / 2^s), k < 2^(s-1). Stages 1 and 2
  // (butterfly lengths 2 and 4) use exact ±1/±i factors and carry no tables.
  std::vector<std::vector<Cplx>> stage_fwd_, stage_inv_;
};

/// 1-D real-to-complex / complex-to-real FFT plan (half-spectrum, Hermitian
/// packing). Length must be an even power of two (>= 2); odd sizes are
/// rejected. The spectrum holds the n/2 + 1 non-redundant bins X[0..n/2];
/// the remaining bins of the full transform follow from X[n-k] = conj(X[k]).
class Rfft1D {
 public:
  explicit Rfft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t spec_size() const { return n_ / 2 + 1; }

  /// Forward r2c (unnormalized): x is n real samples, spec receives the
  /// n/2 + 1 half-spectrum bins.
  void forward(std::span<const double> x, std::span<Cplx> spec) const;

  /// Inverse c2r with the 1/n factor. `spec` must be the half spectrum of a
  /// real signal (imaginary parts of bins 0 and n/2 are ignored round-off).
  void inverse(std::span<const Cplx> spec, std::span<double> x) const;

  /// As inverse(), but reuses `spec` as scratch (contents are destroyed).
  void inverse_inplace(std::span<Cplx> spec, std::span<double> x) const;

 private:
  std::size_t n_, h_;  // h_ = n/2
  Fft1D half_;
  std::vector<Cplx> w_;  // exp(-2πi k / n), k <= n/4
};

/// 2-D FFT plan over row-major (n0 x n1) arrays. Real grids have two spectrum
/// layouts at the API:
///
///  - forward_real/inverse_real keep the full Hermitian-redundant (n0 x n1)
///    complex layout (legacy; half of it is derivable from the other half);
///  - forward_half/inverse_half use the packed non-redundant half spectrum:
///    row-major n0 x (n1/2 + 1), where bin (i, j) holds wavenumber
///    (my, mx) with my = i for i <= n0/2 else i - n0, and mx = j >= 0. The
///    mirrored bins follow from X(-my, -mx) = conj(X(my, mx)). This is the
///    layout the SQG solver stores its state in: half the memory and half
///    the pointwise work of the full layout.
///
/// The *_pruned variants additionally exploit a square spectral truncation
/// |mx| <= kcut, |my| <= kcut (the SQG 2/3 dealias rule): the forward computes
/// only the retained bins and writes exact zeros elsewhere (the truncation
/// comes for free), the inverse skips the column transforms of bins the
/// caller guarantees are zero. Both skip roughly a third of the butterfly
/// work at kcut = n/3.
class Fft2D {
 public:
  Fft2D(std::size_t n0, std::size_t n1);

  [[nodiscard]] std::size_t rows() const { return n0_; }
  [[nodiscard]] std::size_t cols() const { return n1_; }

  /// Packed half-spectrum shape: n0 x (n1/2 + 1).
  [[nodiscard]] std::size_t half_cols() const { return n1_ / 2 + 1; }
  [[nodiscard]] std::size_t half_size() const { return n0_ * half_cols(); }

  /// Worker-thread cap for the row/column transform batches: 1 = serial
  /// (default), 0 = all pool workers. Any value yields bitwise-identical
  /// results (disjoint rows; per-row work is partition-invariant).
  void set_max_threads(std::size_t max_threads) { threads_ = max_threads; }
  [[nodiscard]] std::size_t max_threads() const { return threads_; }

  void forward(std::span<Cplx> x) const;
  void inverse(std::span<Cplx> x) const;

  /// Real grid -> full complex spectrum (Hermitian-redundant layout).
  void forward_real(std::span<const double> grid, std::span<Cplx> spec) const;

  /// Complex spectrum -> real grid. `spec` must be (numerically) Hermitian —
  /// i.e. the transform of a real field, possibly scaled by real or
  /// conjugate-symmetric spectral factors; only the non-redundant half is
  /// read.
  void inverse_real(std::span<const Cplx> spec, std::span<double> grid) const;

  /// Real grid -> packed half spectrum (n0 x (n1/2+1), layout above).
  /// Requires n1 >= 2 (rows go through the r2c transform).
  void forward_half(std::span<const double> grid, std::span<Cplx> hspec) const;

  /// Packed half spectrum -> real grid. Like inverse_real, `hspec` must be
  /// the (possibly conjugate-symmetrically scaled) half spectrum of a real
  /// field; `hspec` is not modified.
  void inverse_half(std::span<const Cplx> hspec, std::span<double> grid) const;

  /// As forward_half, but computes only the bins with |mx| <= kcut and
  /// |my| <= kcut and writes exact zeros to the rest — the column transforms
  /// of the truncated bins are skipped entirely.
  void forward_half_pruned(std::span<const double> grid, std::span<Cplx> hspec,
                           std::size_t kcut) const;

  /// As inverse_half, but skips the column transforms for mx > kcut and
  /// runs the retained columns through the input-band-pruned 1-D transform.
  /// The caller must guarantee hspec is zero outside the |mx| <= kcut,
  /// |my| <= kcut square (e.g. a spectrum produced by forward_half_pruned,
  /// scaled pointwise) — the truncated columns are skipped entirely and the
  /// |my| > kcut rows feed the banded first butterfly pass as proven zeros.
  void inverse_half_pruned(std::span<const Cplx> hspec, std::span<double> grid,
                           std::size_t kcut) const;

  /// Batched pruned half-spectrum transforms: the transform above applied to
  /// `grids.size()` independent field pairs through a single pool fan-out,
  /// each worker running complete per-field transforms (field-granular
  /// dispatch keeps every field's stages hot in its worker's scratch — see
  /// the implementation note). This is the ensemble-block shape: the SQG
  /// batched member step funnels every member's derivative fields through
  /// one call. Each pointer addresses a full n0*n1 real grid / half_size()
  /// spectrum; per-field results are bitwise identical to the corresponding
  /// single-field call for any thread count.
  void forward_half_pruned_batch(std::span<const double* const> grids,
                                 std::span<Cplx* const> hspecs, std::size_t kcut) const;
  void inverse_half_pruned_batch(std::span<const Cplx* const> hspecs,
                                 std::span<double* const> grids, std::size_t kcut) const;

 private:
  void transform2d(std::span<Cplx> x, bool inverse) const;
  void half_forward_impl(std::span<const double> grid, std::span<Cplx> hspec,
                         std::size_t kcut) const;
  void half_inverse_impl(std::span<const Cplx> hspec, std::span<double> grid,
                         std::size_t kcut) const;

  std::size_t n0_, n1_;
  std::size_t threads_ = 1;
  Fft1D row_, col_;
  std::optional<Rfft1D> rrow_;  // present when n1 >= 2
};

}  // namespace turbda::fft
