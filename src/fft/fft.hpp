// Fast Fourier transforms for the spectral SQG solver.
//
// Iterative radix-2 Cooley–Tukey with precomputed twiddles (power-of-two
// sizes; the paper's grids are 64, 128, 256). 2-D transforms run rows then
// columns. Convention matches numpy: forward unnormalized, inverse carries
// the 1/N factor — so does the sqgturb reference implementation the paper
// follows.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace turbda::fft {

using Cplx = std::complex<double>;

/// 1-D FFT plan of fixed power-of-two length.
class Fft1D {
 public:
  explicit Fft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2πi jk / n).
  void forward(std::span<Cplx> x) const { transform(x, /*inverse=*/false); }

  /// In-place inverse DFT with 1/n normalization.
  void inverse(std::span<Cplx> x) const { transform(x, /*inverse=*/true); }

 private:
  void transform(std::span<Cplx> x, bool inverse) const;

  std::size_t n_;
  int log2n_;
  std::vector<std::size_t> bitrev_;
  std::vector<Cplx> twiddle_fwd_;  // exp(-2πi k / n), k < n/2
  std::vector<Cplx> twiddle_inv_;
};

/// 2-D FFT plan over row-major (n0 x n1) complex arrays.
class Fft2D {
 public:
  Fft2D(std::size_t n0, std::size_t n1);

  [[nodiscard]] std::size_t rows() const { return n0_; }
  [[nodiscard]] std::size_t cols() const { return n1_; }

  void forward(std::span<Cplx> x) const;
  void inverse(std::span<Cplx> x) const;

  /// Real grid -> full complex spectrum (Hermitian-redundant but simple).
  void forward_real(std::span<const double> grid, std::span<Cplx> spec) const;

  /// Complex spectrum -> real grid (imaginary residue must be round-off).
  void inverse_real(std::span<const Cplx> spec, std::span<double> grid) const;

 private:
  std::size_t n0_, n1_;
  Fft1D row_, col_;
};

}  // namespace turbda::fft
