// Runtime-dispatched SIMD micro-kernels for the FFT hot loops.
//
// The radix-2² fused butterfly passes, the final odd radix-2 pass, the fused
// length-2/4 first stage and the Rfft1D Hermitian pack/unpack sweeps all run
// on raw interleaved (re, im) doubles — exactly the loop shape an AVX2 lane
// pair wants. Each of those loops exists in three interchangeable versions
// behind one table of function pointers:
//
//  - Scalar:  portable C++, always available, compiled with -ffp-contract=off
//             so it stays bitwise reproducible even under -march=native.
//  - Avx2:    AVX2 intrinsics, one mul/add per IEEE operation in the same
//             per-element order as the scalar code — bitwise identical to it.
//  - Avx2Fma: AVX2 + FMA; the twiddle multiplies contract into fused
//             multiply-adds (one rounding instead of two), so results agree
//             with the scalar path to ~1 ulp per butterfly, not bitwise.
//
// The active level is chosen once at startup from CPUID (the portable build
// benefits on AVX2 hardware without TURBDA_NATIVE), can be forced down with
// the TURBDA_SIMD environment variable (scalar | avx2 | avx2fma), and can be
// overridden programmatically for tests. Dispatch is process-global, so all
// thread-count bitwise-invariance guarantees are unaffected.
#pragma once

#include <cstddef>
#include <string>

namespace turbda::fft {

enum class SimdLevel : int { Scalar = 0, Avx2 = 1, Avx2Fma = 2 };

/// All FFT inner loops, one function pointer per loop. Buffers are raw
/// interleaved (re, im) doubles (std::complex array-compatible layout).
struct FftKernels {
  /// Stages of butterfly length 2 and 4 fused (exact ±1/±i twiddles), over
  /// the whole bit-reversed array: n2 = 2 * n doubles, n >= 4 complex.
  /// isign = -1 forward, +1 inverse.
  void (*pass_first)(double* d, std::size_t n2, double isign);
  /// Fused radix-2² pass (stages s and s+1): blocks of 4 * half complex,
  /// stage-s twiddles tw, stage-(s+1) twiddles tw1; half >= 4 and even.
  void (*pass_radix4)(double* d, std::size_t n, std::size_t half, const double* tw,
                      const double* tw1);
  /// Single radix-2 pass (the odd remaining stage); half >= 4 and even.
  void (*pass_radix2)(double* d, std::size_t n, std::size_t half, const double* tw);
  /// Rfft1D forward Hermitian combine for bins k in [1, h-k): spec holds
  /// h + 1 interleaved complex bins, w the exp(-2πi k / n) twiddles.
  void (*rfft_pack)(double* spec, const double* w, std::size_t h);
  /// Rfft1D inverse Hermitian split for the same bin range.
  void (*rfft_unpack)(double* spec, const double* w, std::size_t h);
};

/// Kernel table for the given level; level must be available.
[[nodiscard]] const FftKernels& kernels_for(SimdLevel level);

/// Table for the active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] const FftKernels& active_kernels();

[[nodiscard]] SimdLevel active_simd_level();
[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// True when the level's kernels are compiled in and the CPU supports them.
[[nodiscard]] bool simd_level_available(SimdLevel level);

/// Force the dispatch level (tests and benches; no-op returning false when
/// the level is unavailable). Affects the whole process — do not call
/// concurrently with in-flight transforms.
bool force_simd_level(SimdLevel level);

}  // namespace turbda::fft
