// Runtime-dispatched SIMD micro-kernels for the FFT hot loops.
//
// The radix-2² fused butterfly passes, the final odd radix-2 pass, the fused
// length-2/4 first stage and the Rfft1D Hermitian pack/unpack sweeps all run
// on raw interleaved (re, im) doubles — exactly the loop shape an AVX2 lane
// pair wants. Each loop is written once against the portable simd::Vec API
// (simd_kernels_impl.hpp) and instantiated per backend behind one table of
// function pointers, keyed by the process-global simd::SimdLevel (see
// simd/dispatch.hpp for level semantics, TURBDA_SIMD and force_simd_level).
#pragma once

#include <cstddef>

#include "simd/dispatch.hpp"

namespace turbda::fft {

// The dispatch level lives in turbda::simd (shared with the LETKF dense
// kernels); these aliases keep the established fft:: spellings working.
using simd::SimdLevel;
using simd::active_simd_level;
using simd::force_simd_level;
using simd::simd_level_available;
using simd::simd_level_name;

/// All FFT inner loops, one function pointer per loop. Buffers are raw
/// interleaved (re, im) doubles (std::complex array-compatible layout).
struct FftKernels {
  /// Stages of butterfly length 2 and 4 fused (exact ±1/±i twiddles), over
  /// the whole bit-reversed array: n2 = 2 * n doubles, n >= 4 complex.
  /// isign = -1 forward, +1 inverse.
  void (*pass_first)(double* d, std::size_t n2, double isign);
  /// Fused radix-2² pass (stages s and s+1): blocks of 4 * half complex,
  /// stage-s twiddles tw, stage-(s+1) twiddles tw1; half >= 4 and even.
  void (*pass_radix4)(double* d, std::size_t n, std::size_t half, const double* tw,
                      const double* tw1);
  /// Single radix-2 pass (the odd remaining stage); half >= 4 and even.
  void (*pass_radix2)(double* d, std::size_t n, std::size_t half, const double* tw);
  /// Rfft1D forward Hermitian combine for bins k in [1, h-k): spec holds
  /// h + 1 interleaved complex bins, w the exp(-2πi k / n) twiddles.
  void (*rfft_pack)(double* spec, const double* w, std::size_t h);
  /// Rfft1D inverse Hermitian split for the same bin range.
  void (*rfft_unpack)(double* spec, const double* w, std::size_t h);
};

/// Kernel table for the given level; level must be available.
[[nodiscard]] const FftKernels& kernels_for(SimdLevel level);

/// Table for the active level (detection + TURBDA_SIMD applied on first use).
[[nodiscard]] const FftKernels& active_kernels();

}  // namespace turbda::fft
