// Generic FFT micro-kernels over the portable simd::Vec API — one kernel
// text instantiated per backend (VecScalar in simd_kernels.cpp, VecAvx2 in
// simd_kernels_avx2.cpp) and per multiply-add mode (kFma).
//
// The lane choreography is identical for every instantiation: four doubles
// per vector, complex numbers as interleaved (re, im) pairs, two complex
// elements per vector. With kFma == false each lane operation is exactly one
// IEEE operation, so the VecScalar and VecAvx2 instantiations are bitwise
// identical; with kFma == true the complex multiplies fuse into
// fmaddsub/fmsubadd (~1 ulp per butterfly from the unfused reference).
//
// The Rfft1D pack/unpack scalar remainder loops repeat the pre-SIMD scalar
// arithmetic verbatim; every TU including this header is compiled with
// -ffp-contract=off and auto-vectorization off (see CMakeLists.txt) so the
// compiler cannot contract or re-vectorize them.
#pragma once

#include <cstddef>

#include "simd/vec.hpp"

namespace turbda::fft::detail {

using simd::cmul;
using simd::cmul_conj;

/// Stages of butterfly length 2 and 4 fused (exact ±1/±i twiddles). Per
/// 4-complex block: A = [z0+z1 | z0-z1], D = [z2+z3 | -+i (z2-z3)],
/// outputs A±D.
template <class V>
void pass_first_impl(double* d, std::size_t n2, double isign) {
  const V rot = V::lanes(1.0, 1.0, -isign, isign);
  for (std::size_t base = 0; base < n2; base += 8) {
    double* p = d + base;
    const V r0 = V::loadu(p);
    const V r1 = V::loadu(p + 4);
    const V sw0 = r0.swap_halves();
    const V sw1 = r1.swap_halves();
    const V s0 = r0 + sw0, d0 = r0 - sw0;
    const V s1 = r1 + sw1, d1 = r1 - sw1;
    const V a = V::concat_lo(s0, d0);                        // [a0 | a1]
    const V c = V::concat_lo(s1, d1);                        // [a2 | a3]
    const V cs = c.swap_pairs();                             // [a2 im/re | a3 im/re]
    const V dd = V::template blend<0b1100>(c, cs * rot);     // [a2 | b3]
    (a + dd).storeu(p);
    (a - dd).storeu(p + 4);
  }
}

/// Fused radix-2² pass (stages s and s+1); half >= 4 and even, so the
/// two-complex-per-iteration loop has no tail.
template <class V, bool kFma>
void pass_radix4_impl(double* d, std::size_t n, std::size_t half, const double* tw,
                      const double* tw1) {
  const std::size_t len4 = 4 * half;
  for (std::size_t base = 0; base < n; base += len4) {
    double* p0 = d + 2 * base;
    double* p1 = p0 + 2 * half;
    double* p2 = p1 + 2 * half;
    double* p3 = p2 + 2 * half;
    for (std::size_t k = 0; k < half; k += 2) {
      const V w = V::loadu(tw + 2 * k);
      const V a = V::loadu(p0 + 2 * k);
      const V b = V::loadu(p1 + 2 * k);
      const V c = V::loadu(p2 + 2 * k);
      const V e = V::loadu(p3 + 2 * k);
      const V tb = cmul<kFma>(w, b);
      const V td = cmul<kFma>(w, e);
      const V ua = a + tb, ub = a - tb;
      const V uc = c + td, ud = c - td;
      const V v0 = V::loadu(tw1 + 2 * k);
      const V v1 = V::loadu(tw1 + 2 * (k + half));
      const V tc = cmul<kFma>(v0, uc);
      const V te = cmul<kFma>(v1, ud);
      (ua + tc).storeu(p0 + 2 * k);
      (ua - tc).storeu(p2 + 2 * k);
      (ub + te).storeu(p1 + 2 * k);
      (ub - te).storeu(p3 + 2 * k);
    }
  }
}

/// Single radix-2 pass (the odd remaining stage); half >= 4 and even.
template <class V, bool kFma>
void pass_radix2_impl(double* d, std::size_t n, std::size_t half, const double* tw) {
  for (std::size_t base = 0; base < n; base += 2 * half) {
    double* lo = d + 2 * base;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; k += 2) {
      const V w = V::loadu(tw + 2 * k);
      const V h = V::loadu(hi + 2 * k);
      const V u = V::loadu(lo + 2 * k);
      const V t = cmul<kFma>(w, h);
      (u + t).storeu(lo + 2 * k);
      (u - t).storeu(hi + 2 * k);
    }
  }
}

// Rfft1D Hermitian pack/unpack. Bins k and h-k are updated together; the
// vector loop walks two bins from each end per iteration (the mirrored pair
// is loaded/stored through one 128-bit-half swap), and hands the last one or
// two middle bins to a scalar remainder with the identical arithmetic.

/// Forward combine X[k] = E[k] + w^k O[k], X[h-k] = conj(E[k] - w^k O[k])
/// with E, O the even/odd-sample transforms recovered from the half-length
/// spectrum: E = (Z[k] + conj(Z[h-k]))/2, O = -i (Z[k] - conj(Z[h-k]))/2.
template <class V, bool kFma>
void rfft_pack_impl(double* s, const double* w, std::size_t h) {
  const V half_v = V::broadcast(0.5);
  std::size_t k = 1;
  for (; 2 * k + 2 < h; k += 2) {
    const std::size_t mbase = 2 * (h - k - 1);
    const V fwd = V::loadu(s + 2 * k);
    const V mir = V::loadu(s + mbase).swap_halves();  // [z(h-k) | z(h-k-1)]
    const V e = half_v * (fwd + mir.conj());
    const V fwds = fwd.swap_pairs();
    const V mirs = mir.swap_pairs();
    const V o = half_v * V::addsub(mirs, fwds.neg());
    const V t = cmul<kFma>(V::loadu(w + 2 * k), o);
    const V outk = e + t;
    // Mirror bin (er - tr, ti - ei): negating the (e - t) subtraction would
    // flip the sign of an exactly-zero imaginary lane (-(x - x) is -0.0,
    // ti - ei is +0.0), so build it as an addsub of negated operands — x +
    // (-y) is the same IEEE operation as x - y, keeping the unfused
    // reference bitwise.
    const V x = V::template blend<0b1010>(e, t);        // [er ti | ...]
    const V y = V::template blend<0b1010>(t, e.neg());  // [tr -ei | ...]
    const V outkc = V::addsub(x, y);
    outk.storeu(s + 2 * k);
    outkc.swap_halves().storeu(s + mbase);
  }
  for (; k < h - k; ++k) {  // scalar remainder, same arithmetic
    const std::size_t kc = h - k;
    const double zkr = s[2 * k], zki = s[2 * k + 1];
    const double zcr = s[2 * kc], zci = s[2 * kc + 1];
    const double er = 0.5 * (zkr + zcr), ei = 0.5 * (zki - zci);
    const double or_ = 0.5 * (zki + zci), oi = 0.5 * (zcr - zkr);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double tr = wr * or_ - wi * oi, ti = wr * oi + wi * or_;
    s[2 * k] = er + tr;
    s[2 * k + 1] = ei + ti;
    s[2 * kc] = er - tr;
    s[2 * kc + 1] = ti - ei;
  }
}

/// Inverse of the combine: recover E and w^k O from X[k], X[h-k], undo the
/// twiddle with conj(w), and store Z[k] = E + iO, Z[h-k] = conj(E) + i conj(O).
template <class V, bool kFma>
void rfft_unpack_impl(double* s, const double* w, std::size_t h) {
  const V half_v = V::broadcast(0.5);
  std::size_t k = 1;
  for (; 2 * k + 2 < h; k += 2) {
    const std::size_t mbase = 2 * (h - k - 1);
    const V fwd = V::loadu(s + 2 * k);
    const V mir = V::loadu(s + mbase).swap_halves();
    const V e = half_v * V::addsub(fwd, mir.neg());
    const V ot = half_v * V::addsub(fwd, mir);
    const V o = cmul_conj<kFma>(V::loadu(w + 2 * k), ot);
    const V os = o.swap_pairs();  // [oi or_ | ...]
    const V outk = V::addsub(e, os);
    const V x = V::template blend<0b1010>(e, os);  // [er or_ | ...]
    const V y = V::template blend<0b1010>(os, e);  // [oi ei | ...]
    const V outkc = V::addsub(x, y.neg());
    outk.storeu(s + 2 * k);
    outkc.swap_halves().storeu(s + mbase);
  }
  for (; k < h - k; ++k) {  // scalar remainder, same arithmetic
    const std::size_t kc = h - k;
    const double ar = s[2 * k], ai = s[2 * k + 1];
    const double br = s[2 * kc], bi = s[2 * kc + 1];
    const double er = 0.5 * (ar + br), ei = 0.5 * (ai - bi);
    const double otr = 0.5 * (ar - br), oti = 0.5 * (ai + bi);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double or_ = wr * otr + wi * oti, oi = wr * oti - wi * otr;
    s[2 * k] = er - oi;
    s[2 * k + 1] = ei + or_;
    s[2 * kc] = er + oi;
    s[2 * kc + 1] = or_ - ei;
  }
}

}  // namespace turbda::fft::detail
