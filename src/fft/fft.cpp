#include "fft/fft.hpp"

#include <cmath>

#include "common/math_utils.hpp"

namespace turbda::fft {

Fft1D::Fft1D(std::size_t n) : n_(n) {
  TURBDA_REQUIRE(is_pow2(n), "FFT length must be a power of two, got " << n);
  log2n_ = ilog2(n);
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n_; ++b) r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = Cplx(std::cos(ang), std::sin(ang));
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
}

void Fft1D::transform(std::span<Cplx> x, bool inverse) const {
  TURBDA_REQUIRE(x.size() == n_, "FFT input length " << x.size() << " != plan length " << n_);
  if (n_ == 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const auto& tw = inverse ? twiddle_inv_ : twiddle_fwd_;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n_ / len;  // twiddle stride
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Cplx w = tw[k * step];
        const Cplx u = x[base + k];
        const Cplx t = w * x[base + k + half];
        x[base + k] = u + t;
        x[base + k + half] = u - t;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& v : x) v *= scale;
  }
}

Fft2D::Fft2D(std::size_t n0, std::size_t n1) : n0_(n0), n1_(n1), row_(n1), col_(n0) {}

namespace {
void columns(std::span<Cplx> x, std::size_t n0, std::size_t n1, const Fft1D& plan, bool inverse) {
  std::vector<Cplx> tmp(n0);
  for (std::size_t j = 0; j < n1; ++j) {
    for (std::size_t i = 0; i < n0; ++i) tmp[i] = x[i * n1 + j];
    if (inverse) {
      plan.inverse(tmp);
    } else {
      plan.forward(tmp);
    }
    for (std::size_t i = 0; i < n0; ++i) x[i * n1 + j] = tmp[i];
  }
}
}  // namespace

void Fft2D::forward(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::forward: wrong buffer size");
  for (std::size_t i = 0; i < n0_; ++i) row_.forward(x.subspan(i * n1_, n1_));
  columns(x, n0_, n1_, col_, /*inverse=*/false);
}

void Fft2D::inverse(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::inverse: wrong buffer size");
  for (std::size_t i = 0; i < n0_; ++i) row_.inverse(x.subspan(i * n1_, n1_));
  columns(x, n0_, n1_, col_, /*inverse=*/true);
}

void Fft2D::forward_real(std::span<const double> grid, std::span<Cplx> spec) const {
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "forward_real: wrong buffer sizes");
  for (std::size_t i = 0; i < grid.size(); ++i) spec[i] = Cplx(grid[i], 0.0);
  forward(spec);
}

void Fft2D::inverse_real(std::span<const Cplx> spec, std::span<double> grid) const {
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "inverse_real: wrong buffer sizes");
  std::vector<Cplx> tmp(spec.begin(), spec.end());
  inverse(tmp);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = tmp[i].real();
}

}  // namespace turbda::fft
