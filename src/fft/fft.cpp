#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/trace.hpp"

namespace turbda::fft {

// ---------------------------------------------------------------------------
// Fft1D
// ---------------------------------------------------------------------------

Fft1D::Fft1D(std::size_t n) : n_(n) {
  TURBDA_REQUIRE(is_pow2(n), "FFT length must be a power of two, got " << n);
  log2n_ = ilog2(n);
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n_; ++b) r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    bitrev_[i] = r;
  }
  stage_fwd_.resize(static_cast<std::size_t>(log2n_) + 1);
  stage_inv_.resize(static_cast<std::size_t>(log2n_) + 1);
  for (int s = 3; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len / 2;
    auto& fwd = stage_fwd_[static_cast<std::size_t>(s)];
    auto& inv = stage_inv_[static_cast<std::size_t>(s)];
    fwd.resize(half);
    inv.resize(half);
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(len);
      fwd[k] = Cplx(std::cos(ang), std::sin(ang));
      inv[k] = std::conj(fwd[k]);
    }
  }
}

void Fft1D::general_stages(double* d, bool inverse, const FftKernels& kr) const {
  const auto& stages = inverse ? stage_inv_ : stage_fwd_;
  int s = 3;
  // Fused radix-2^2 pairs: one pass performs stages s and s+1 back to back
  // on each 2^(s+1)-point block, with the exact same per-element arithmetic
  // (and thus bitwise results) as two separate passes.
  for (; s + 1 <= log2n_; s += 2) {
    const std::size_t half = std::size_t{1} << (s - 1);  // half of stage s
    const double* tw = reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s)].data());
    const double* tw1 =
        reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s) + 1].data());
    kr.pass_radix4(d, n_, half, tw, tw1);
  }
  // Odd stage count: one remaining plain radix-2 pass.
  if (s <= log2n_) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const double* tw = reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s)].data());
    kr.pass_radix2(d, n_, half, tw);
  }
}

void Fft1D::transform(std::span<Cplx> x, bool inverse) const {
  TURBDA_REQUIRE(x.size() == n_, "FFT input length " << x.size() << " != plan length " << n_);
  if (n_ == 1) return;
  // The butterflies run on the raw (re, im) doubles — std::complex guarantees
  // array-compatible layout — through the runtime-dispatched SIMD kernels
  // (scalar / AVX2 / AVX2+FMA; see simd_kernels.hpp).
  double* d = reinterpret_cast<double*>(x.data());
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const FftKernels& kr = active_kernels();
  // Stages len = 2 and 4 fused: twiddles are exactly 1 and -i (forward) /
  // +i (inverse), so the 4-point butterfly carries no multiplies at all.
  if (n_ == 2) {
    const double ur = d[0], ui = d[1], tr = d[2], ti = d[3];
    d[0] = ur + tr;
    d[1] = ui + ti;
    d[2] = ur - tr;
    d[3] = ui - ti;
  } else {
    kr.pass_first(d, 2 * n_, inverse ? 1.0 : -1.0);
  }
  general_stages(d, inverse, kr);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& v : x) v *= scale;
  }
}

namespace {

/// Tail of the banded first-pass block butterfly, shared by all zero-pattern
/// cases: combines the stage-2 results (a0, a1) and (a2, a3) into the block.
inline void banded_block_combine(double* p, double isign, double a0r, double a0i, double a1r,
                                 double a1i, double a2r, double a2i, double a3r, double a3i) {
  const double b3r = -isign * a3i, b3i = isign * a3r;  // (-+i) * a3
  p[0] = a0r + a2r;
  p[1] = a0i + a2i;
  p[4] = a0r - a2r;
  p[5] = a0i - a2i;
  p[2] = a1r + b3r;
  p[3] = a1i + b3i;
  p[6] = a1r - b3r;
  p[7] = a1i - b3i;
}

}  // namespace

void Fft1D::transform_banded(std::span<Cplx> x, bool inverse, std::size_t band) const {
  // The band only thins the first fused pass; for tiny transforms, a band
  // that covers every index, or one too narrow for the case split below,
  // the dense path does the same work on the in-memory zeros.
  if (n_ < 16 || band >= n_ / 2 || band < n_ / 4) {
    transform(x, inverse);
    return;
  }
  TURBDA_REQUIRE(x.size() == n_, "FFT input length " << x.size() << " != plan length " << n_);
  double* d = reinterpret_cast<double*>(x.data());
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  // First fused pass (stages len 2 and 4), input-band-pruned. After the
  // bit-reversal, the block at positions [4q, 4q+4) holds the original
  // indices o0, o0 + n/2, o0 + n/4, o0 + 3n/4 with o0 = bitrev[4q] < n/4.
  // For a wrapped band with n/4 <= band < n/2, o0 and o0 + 3n/4 are always
  // inside it, while o0 + n/2 is zero iff o0 < n/2 - band and o0 + n/4 is
  // zero iff o0 > band - n/4 — three contiguous o0 ranges, so iterating o0
  // ascending (block address 2 * bitrev[o0]; the whole pass is n complex
  // and L1-resident) turns the case split into three branch-free loops
  // whose zero-operand stage-2 butterflies collapse to copies/negates.
  const double isign = inverse ? 1.0 : -1.0;
  const std::size_t quarter = n_ / 4;
  const std::size_t z2_from = band - quarter + 1;  // first o0 with z2 == 0
  const std::size_t z1_until = n_ / 2 - band;      // first o0 with z1 != 0
  // o0 in [0, min(z2_from, z1_until)): z1 zero, z2 live.
  for (std::size_t o0 = 0; o0 < std::min(z2_from, z1_until); ++o0) {
    double* p = d + 2 * bitrev_[o0];
    banded_block_combine(p, isign, p[0], p[1], p[0], p[1], p[4] + p[6], p[5] + p[7], p[4] - p[6],
                         p[5] - p[7]);
  }
  // o0 in [z2_from, z1_until): z1 and z2 both zero (band < 3n/8).
  for (std::size_t o0 = z2_from; o0 < z1_until; ++o0) {
    double* p = d + 2 * bitrev_[o0];
    banded_block_combine(p, isign, p[0], p[1], p[0], p[1], p[6], p[7], -p[6], -p[7]);
  }
  // o0 in [z1_until, z2_from): z1 and z2 both live (band > 3n/8): dense.
  for (std::size_t o0 = z1_until; o0 < z2_from; ++o0) {
    double* p = d + 2 * bitrev_[o0];
    banded_block_combine(p, isign, p[0] + p[2], p[1] + p[3], p[0] - p[2], p[1] - p[3],
                         p[4] + p[6], p[5] + p[7], p[4] - p[6], p[5] - p[7]);
  }
  // o0 in [max(z2_from, z1_until), n/4): z1 live, z2 zero.
  for (std::size_t o0 = std::max(z2_from, z1_until); o0 < quarter; ++o0) {
    double* p = d + 2 * bitrev_[o0];
    banded_block_combine(p, isign, p[0] + p[2], p[1] + p[3], p[0] - p[2], p[1] - p[3], p[6], p[7],
                         -p[6], -p[7]);
  }
  general_stages(d, inverse, active_kernels());
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& v : x) v *= scale;
  }
}

// ---------------------------------------------------------------------------
// Rfft1D — r2c/c2r via one half-length complex FFT plus Hermitian packing.
//
// Forward: pack z[j] = x[2j] + i x[2j+1], FFT to Z[k], then split Z into the
// transforms E, O of the even/odd samples (E[k] = (Z[k] + conj(Z[h-k]))/2,
// O[k] = -i (Z[k] - conj(Z[h-k]))/2) and combine X[k] = E[k] + w^k O[k],
// X[h-k] = conj(E[k] - w^k O[k]) with w = exp(-2πi/n). Inverse runs the same
// algebra backwards.
// ---------------------------------------------------------------------------

namespace {
/// Validates the real-transform length before the half plan is built, so a
/// bad size is reported as the length the caller passed (not n/2).
std::size_t rfft_half_length(std::size_t n) {
  TURBDA_REQUIRE(n >= 2 && is_pow2(n),
                 "real FFT length must be an even power of two (>= 2), got " << n);
  return n / 2;
}
}  // namespace

Rfft1D::Rfft1D(std::size_t n) : n_(n), h_(n / 2), half_(rfft_half_length(n)) {
  w_.resize(h_ / 2 + 1);
  for (std::size_t k = 0; k < w_.size(); ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    w_[k] = Cplx(std::cos(ang), std::sin(ang));
  }
}

void Rfft1D::forward(std::span<const double> x, std::span<Cplx> spec) const {
  TURBDA_REQUIRE(x.size() == n_ && spec.size() >= spec_size(),
                 "rfft forward: bad buffer sizes (" << x.size() << ", " << spec.size() << ")");
  const std::size_t h = h_;
  for (std::size_t j = 0; j < h; ++j) spec[j] = Cplx(x[2 * j], x[2 * j + 1]);
  half_.forward(spec.first(h));
  const Cplx z0 = spec[0];
  spec[0] = Cplx(z0.real() + z0.imag(), 0.0);
  const Cplx dc_mirror(z0.real() - z0.imag(), 0.0);
  active_kernels().rfft_pack(reinterpret_cast<double*>(spec.data()),
                             reinterpret_cast<const double*>(w_.data()), h);
  if (h >= 2) spec[h / 2] = std::conj(spec[h / 2]);  // w^(h/2) = -i, exactly
  spec[h] = dc_mirror;
}

void Rfft1D::inverse_inplace(std::span<Cplx> spec, std::span<double> x) const {
  TURBDA_REQUIRE(x.size() == n_ && spec.size() >= spec_size(),
                 "rfft inverse: bad buffer sizes (" << x.size() << ", " << spec.size() << ")");
  const std::size_t h = h_;
  const double e0 = spec[0].real();
  const double eh = spec[h].real();
  spec[0] = Cplx(0.5 * (e0 + eh), 0.5 * (e0 - eh));
  active_kernels().rfft_unpack(reinterpret_cast<double*>(spec.data()),
                               reinterpret_cast<const double*>(w_.data()), h);
  if (h >= 2) spec[h / 2] = std::conj(spec[h / 2]);
  half_.inverse(spec.first(h));
  for (std::size_t j = 0; j < h; ++j) {
    x[2 * j] = spec[j].real();
    x[2 * j + 1] = spec[j].imag();
  }
}

void Rfft1D::inverse(std::span<const Cplx> spec, std::span<double> x) const {
  thread_local std::vector<Cplx> scratch;
  if (scratch.size() < spec_size()) scratch.resize(spec_size());
  std::copy(spec.begin(), spec.begin() + static_cast<long>(spec_size()), scratch.begin());
  inverse_inplace(std::span<Cplx>(scratch.data(), spec_size()), x);
}

// ---------------------------------------------------------------------------
// Fft2D — rows, cache-blocked transpose, batched contiguous column
// transforms, transpose back. Scratch is per-thread and grown on demand, so
// plans stay immutable and shareable across threads.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kTransposeBlock = 32;  // 16 KiB src + 16 KiB dst tiles

/// Transposes `src` (r x c, row stride `ls`) into `dst` (c x r, row stride
/// `lds`).
void transpose_blocked(const Cplx* src, std::size_t ls, Cplx* dst, std::size_t lds, std::size_t r,
                       std::size_t c) {
  for (std::size_t i0 = 0; i0 < r; i0 += kTransposeBlock) {
    const std::size_t i1 = std::min(r, i0 + kTransposeBlock);
    for (std::size_t j0 = 0; j0 < c; j0 += kTransposeBlock) {
      const std::size_t j1 = std::min(c, j0 + kTransposeBlock);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j) dst[j * lds + i] = src[i * ls + j];
    }
  }
}

/// Dense (c x r) destination convenience overload.
void transpose_blocked(const Cplx* src, std::size_t ls, Cplx* dst, std::size_t r, std::size_t c) {
  transpose_blocked(src, ls, dst, r, r, c);
}

bool all_zero(const Cplx* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i].real() != 0.0 || p[i].imag() != 0.0) return false;
  return true;
}

/// Runs fn(begin, end) over [0, n): inline when serial — skipping the
/// std::function round trip of parallel_for on the default single-thread
/// path — and fanned out over the pool otherwise. Fan-out is bitwise
/// partition-invariant for all callers here: rows are disjoint and each
/// row's result depends only on its own data.
template <class F>
void run_partitioned(std::size_t n, std::size_t min_grain, std::size_t max_par, F&& fn) {
  if (max_par == 1) {
    fn(std::size_t{0}, n);
  } else {
    parallel::parallel_for(n, fn, min_grain, max_par);
  }
}

/// Transforms `count` contiguous rows of length `len`, skipping all-zero rows
/// (a transform of zeros is zeros; the SQG tendency inverts dealiased spectra
/// whose outer third of rows vanishes identically). When `band` < len/2 the
/// caller guarantees every row is nonzero only on the wrapped index band
/// (j <= band or j >= len - band) and the input-pruned banded transform is
/// used; pass band >= len/2 (e.g. len) for dense rows.
void batch_transform(Cplx* data, std::size_t count, std::size_t len, const Fft1D& plan,
                     bool inverse, std::size_t max_par, std::size_t band) {
  if (count * len < 2048) max_par = 1;  // fork/join would dominate
  run_partitioned(count, /*min_grain=*/4, max_par, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Cplx* row = data + i * len;
      if (all_zero(row, len)) continue;
      std::span<Cplx> s(row, len);
      if (inverse) {
        plan.inverse_banded(s, band);
      } else {
        plan.forward_banded(s, band);
      }
    }
  });
}

void batch_transform(Cplx* data, std::size_t count, std::size_t len, const Fft1D& plan,
                     bool inverse, std::size_t max_par) {
  batch_transform(data, count, len, plan, inverse, max_par, /*band=*/len);
}

/// Two per-thread scratch arenas (a 2-D transform needs at most two live
/// buffers). References stay valid across nested use because the slots are
/// distinct vectors.
std::vector<Cplx>& tls_buffer(int slot, std::size_t n) {
  thread_local std::vector<Cplx> bufs[2];
  auto& b = bufs[slot];
  if (b.size() < n) b.resize(n);
  return b;
}

}  // namespace

Fft2D::Fft2D(std::size_t n0, std::size_t n1) : n0_(n0), n1_(n1), row_(n1), col_(n0) {
  if (n1_ >= 2) rrow_.emplace(n1_);
}

void Fft2D::transform2d(std::span<Cplx> x, bool inverse) const {
  batch_transform(x.data(), n0_, n1_, row_, inverse, threads_);
  auto& t = tls_buffer(0, n0_ * n1_);
  transpose_blocked(x.data(), n1_, t.data(), n0_, n1_);
  batch_transform(t.data(), n1_, n0_, col_, inverse, threads_);
  transpose_blocked(t.data(), n0_, x.data(), n1_, n0_);
}

void Fft2D::forward(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::forward: wrong buffer size");
  transform2d(x, /*inverse=*/false);
}

void Fft2D::inverse(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::inverse: wrong buffer size");
  transform2d(x, /*inverse=*/true);
}

void Fft2D::forward_real(std::span<const double> grid, std::span<Cplx> spec) const {
  TURBDA_SPAN("fft.forward_real");
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "forward_real: wrong buffer sizes");
  if (!rrow_) {  // n1 == 1: nothing to halve along rows
    for (std::size_t i = 0; i < grid.size(); ++i) spec[i] = Cplx(grid[i], 0.0);
    transform2d(spec, /*inverse=*/false);
    return;
  }
  const std::size_t nh = n1_ / 2 + 1;
  auto& hbuf = tls_buffer(0, n0_ * nh);  // half-spectrum rows, n0 x nh
  auto& tbuf = tls_buffer(1, nh * n0_);  // transposed, nh x n0

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->forward(grid.subspan(i * n1_, n1_), std::span<Cplx>(hbuf.data() + i * nh, nh));
  });

  transpose_blocked(hbuf.data(), nh, tbuf.data(), n0_, nh);
  batch_transform(tbuf.data(), nh, n0_, col_, /*inverse=*/false, threads_);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, n0_);

  // Expand the half spectrum to the full Hermitian-redundant layout:
  // spec[i][j] = conj(spec[(n0-i) mod n0][n1-j]) for the mirrored columns.
  run_partitioned(n0_, /*min_grain=*/8, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Cplx* hrow = hbuf.data() + i * nh;
      Cplx* srow = spec.data() + i * n1_;
      std::copy(hrow, hrow + nh, srow);
      const Cplx* mrow = hbuf.data() + ((n0_ - i) % n0_) * nh;
      for (std::size_t j = nh; j < n1_; ++j) srow[j] = std::conj(mrow[n1_ - j]);
    }
  });
}

void Fft2D::inverse_real(std::span<const Cplx> spec, std::span<double> grid) const {
  TURBDA_SPAN("fft.inverse_real");
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "inverse_real: wrong buffer sizes");
  if (!rrow_) {
    auto& tmp = tls_buffer(1, n0_ * n1_);
    std::copy(spec.begin(), spec.end(), tmp.begin());
    transform2d(std::span<Cplx>(tmp.data(), n0_ * n1_), /*inverse=*/true);
    for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = tmp[i].real();
    return;
  }
  const std::size_t nh = n1_ / 2 + 1;
  auto& tbuf = tls_buffer(1, nh * n0_);
  // Gather the non-redundant columns 0..n1/2 directly into transposed layout.
  transpose_blocked(spec.data(), n1_, tbuf.data(), n0_, nh);
  batch_transform(tbuf.data(), nh, n0_, col_, /*inverse=*/true, threads_);
  auto& hbuf = tls_buffer(0, n0_ * nh);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, n0_);

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->inverse_inplace(std::span<Cplx>(hbuf.data() + i * nh, nh),
                             grid.subspan(i * n1_, n1_));
  });
}

// ---------------------------------------------------------------------------
// Packed half-spectrum transforms: rows r2c -> transpose -> column FFTs over
// the first min(kcut, n1/2) + 1 columns only -> transpose back. The pruned
// forward masks |my| > kcut rows for free while writing the packed output;
// the pruned inverse never touches the column transforms of truncated bins.
// ---------------------------------------------------------------------------

void Fft2D::half_forward_impl(std::span<const double> grid, std::span<Cplx> hspec,
                              std::size_t kcut) const {
  TURBDA_SPAN("fft.half_forward");
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && hspec.size() == half_size(),
                 "forward_half: wrong buffer sizes (" << grid.size() << ", " << hspec.size()
                                                      << ")");
  const std::size_t nh = half_cols();
  const std::size_t cols = std::min(kcut, n1_ / 2) + 1;
  const long rowcut = static_cast<long>(std::min(kcut, n0_ / 2));

  auto& hbuf = tls_buffer(0, n0_ * nh);
  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->forward(grid.subspan(i * n1_, n1_), std::span<Cplx>(hbuf.data() + i * nh, nh));
  });

  auto& tbuf = tls_buffer(1, cols * n0_);
  transpose_blocked(hbuf.data(), nh, tbuf.data(), n0_, cols);
  batch_transform(tbuf.data(), cols, n0_, col_, /*inverse=*/false, threads_);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), cols, n0_);  // hbuf: dense n0 x cols

  run_partitioned(n0_, /*min_grain=*/8, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Cplx* out = hspec.data() + i * nh;
      const long my = (i <= n0_ / 2) ? static_cast<long>(i)
                                     : static_cast<long>(i) - static_cast<long>(n0_);
      if (std::labs(my) > rowcut) {
        std::fill(out, out + nh, Cplx(0.0, 0.0));
        continue;
      }
      const Cplx* src = hbuf.data() + i * cols;
      std::copy(src, src + cols, out);
      std::fill(out + cols, out + nh, Cplx(0.0, 0.0));
    }
  });
}

void Fft2D::half_inverse_impl(std::span<const Cplx> hspec, std::span<double> grid,
                              std::size_t kcut) const {
  TURBDA_SPAN("fft.half_inverse");
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && hspec.size() == half_size(),
                 "inverse_half: wrong buffer sizes (" << grid.size() << ", " << hspec.size()
                                                      << ")");
  const std::size_t nh = half_cols();
  const std::size_t cols = std::min(kcut, n1_ / 2) + 1;

  auto& tbuf = tls_buffer(1, cols * n0_);
  transpose_blocked(hspec.data(), nh, tbuf.data(), n0_, cols);
  // Within each retained column only the 2*kcut+1 low-|my| rows are nonzero
  // (wrapped band); the banded transform prunes the first butterfly stages
  // on that band. Degrades to the dense transform when kcut covers n0/2.
  batch_transform(tbuf.data(), cols, n0_, col_, /*inverse=*/true, threads_,
                  /*band=*/std::min(kcut, n0_ / 2));

  auto& hbuf = tls_buffer(0, n0_ * nh);
  if (cols < nh) {  // truncated tail bins are identically zero
    for (std::size_t i = 0; i < n0_; ++i)
      std::fill(hbuf.data() + i * nh + cols, hbuf.data() + (i + 1) * nh, Cplx(0.0, 0.0));
  }
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, cols, n0_);

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->inverse_inplace(std::span<Cplx>(hbuf.data() + i * nh, nh),
                             grid.subspan(i * n1_, n1_));
  });
}

// ---------------------------------------------------------------------------
// Batched pruned half-spectrum transforms: one pool fan-out over the whole
// batch, each worker running complete per-field transforms. Field-granular
// dispatch deliberately preserves the single-field cache pipeline — a
// field's rows, transposes and columns stay hot in that worker's scratch
// across the stages (a fused per-stage sweep over all fields was measured
// ~8% slower serially at n=128: it streams the whole batch between stages).
// Serially this is exactly `count` single-field calls; threaded, the grain
// is whole fields instead of row ranges, and the nested per-field fan-out
// degrades gracefully to serial inside workers.
// ---------------------------------------------------------------------------

void Fft2D::forward_half_pruned_batch(std::span<const double* const> grids,
                                      std::span<Cplx* const> hspecs, std::size_t kcut) const {
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grids.size() == hspecs.size(),
                 "forward_half_pruned_batch: " << grids.size() << " grids vs " << hspecs.size()
                                               << " spectra");
  run_partitioned(grids.size(), /*min_grain=*/1, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t f = b; f < e; ++f)
      half_forward_impl(std::span<const double>(grids[f], n0_ * n1_),
                        std::span<Cplx>(hspecs[f], half_size()), kcut);
  });
}

void Fft2D::inverse_half_pruned_batch(std::span<const Cplx* const> hspecs,
                                      std::span<double* const> grids, std::size_t kcut) const {
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grids.size() == hspecs.size(),
                 "inverse_half_pruned_batch: " << hspecs.size() << " spectra vs " << grids.size()
                                               << " grids");
  run_partitioned(hspecs.size(), /*min_grain=*/1, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t f = b; f < e; ++f)
      half_inverse_impl(std::span<const Cplx>(hspecs[f], half_size()),
                        std::span<double>(grids[f], n0_ * n1_), kcut);
  });
}

void Fft2D::forward_half(std::span<const double> grid, std::span<Cplx> hspec) const {
  half_forward_impl(grid, hspec, std::max(n0_, n1_));
}

void Fft2D::inverse_half(std::span<const Cplx> hspec, std::span<double> grid) const {
  half_inverse_impl(hspec, grid, std::max(n0_, n1_));
}

void Fft2D::forward_half_pruned(std::span<const double> grid, std::span<Cplx> hspec,
                                std::size_t kcut) const {
  half_forward_impl(grid, hspec, kcut);
}

void Fft2D::inverse_half_pruned(std::span<const Cplx> hspec, std::span<double> grid,
                                std::size_t kcut) const {
  half_inverse_impl(hspec, grid, kcut);
}

}  // namespace turbda::fft
