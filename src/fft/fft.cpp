#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "parallel/thread_pool.hpp"

namespace turbda::fft {

// ---------------------------------------------------------------------------
// Fft1D
// ---------------------------------------------------------------------------

Fft1D::Fft1D(std::size_t n) : n_(n) {
  TURBDA_REQUIRE(is_pow2(n), "FFT length must be a power of two, got " << n);
  log2n_ = ilog2(n);
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n_; ++b) r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    bitrev_[i] = r;
  }
  stage_fwd_.resize(static_cast<std::size_t>(log2n_) + 1);
  stage_inv_.resize(static_cast<std::size_t>(log2n_) + 1);
  for (int s = 3; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len / 2;
    auto& fwd = stage_fwd_[static_cast<std::size_t>(s)];
    auto& inv = stage_inv_[static_cast<std::size_t>(s)];
    fwd.resize(half);
    inv.resize(half);
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(len);
      fwd[k] = Cplx(std::cos(ang), std::sin(ang));
      inv[k] = std::conj(fwd[k]);
    }
  }
}

void Fft1D::transform(std::span<Cplx> x, bool inverse) const {
  TURBDA_REQUIRE(x.size() == n_, "FFT input length " << x.size() << " != plan length " << n_);
  if (n_ == 1) return;
  // The butterflies run on the raw (re, im) doubles — std::complex guarantees
  // array-compatible layout, and spelling the arithmetic out keeps the
  // compiler from round-tripping values through memory between operations.
  double* d = reinterpret_cast<double*>(x.data());
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  // Stages len = 2 and 4 fused: twiddles are exactly 1 and -i (forward) /
  // +i (inverse), so the 4-point butterfly carries no multiplies at all.
  if (n_ == 2) {
    const double ur = d[0], ui = d[1], tr = d[2], ti = d[3];
    d[0] = ur + tr;
    d[1] = ui + ti;
    d[2] = ur - tr;
    d[3] = ui - ti;
  } else {
    const double isign = inverse ? 1.0 : -1.0;
    for (std::size_t base = 0; base < 2 * n_; base += 8) {
      double* p = d + base;
      const double a0r = p[0] + p[2], a0i = p[1] + p[3];  // stage len 2
      const double a1r = p[0] - p[2], a1i = p[1] - p[3];
      const double a2r = p[4] + p[6], a2i = p[5] + p[7];
      const double a3r = p[4] - p[6], a3i = p[5] - p[7];
      const double b3r = -isign * a3i, b3i = isign * a3r;  // (-+i) * a3
      p[0] = a0r + a2r;  // stage len 4
      p[1] = a0i + a2i;
      p[4] = a0r - a2r;
      p[5] = a0i - a2i;
      p[2] = a1r + b3r;
      p[3] = a1i + b3i;
      p[6] = a1r - b3r;
      p[7] = a1i - b3i;
    }
  }
  // General stages, fused in pairs (radix-2^2): one pass performs stages s
  // and s+1 back to back on each 2^(s+1)-point block, with the exact same
  // per-element arithmetic (and thus bitwise results) as two separate
  // passes, but half the sweeps over the data and twice the independent
  // work per loop iteration.
  const auto& stages = inverse ? stage_inv_ : stage_fwd_;
  int s = 3;
  for (; s + 1 <= log2n_; s += 2) {
    const std::size_t half = std::size_t{1} << (s - 1);  // half of stage s
    const std::size_t len4 = 4 * half;                   // fused block length
    const double* tw = reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s)].data());
    const double* tw1 =
        reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s) + 1].data());
    for (std::size_t base = 0; base < n_; base += len4) {
      double* p0 = d + 2 * base;
      double* p1 = p0 + 2 * half;
      double* p2 = p1 + 2 * half;
      double* p3 = p2 + 2 * half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[2 * k], wi = tw[2 * k + 1];
        const double ar = p0[2 * k], ai = p0[2 * k + 1];
        const double br = p1[2 * k], bi = p1[2 * k + 1];
        const double cr = p2[2 * k], ci = p2[2 * k + 1];
        const double dr = p3[2 * k], di = p3[2 * k + 1];
        // Stage s: (a, b) and (c, d), both with twiddle w.
        const double tbr = wr * br - wi * bi, tbi = wr * bi + wi * br;
        const double tdr = wr * dr - wi * di, tdi = wr * di + wi * dr;
        const double uar = ar + tbr, uai = ai + tbi;
        const double ubr = ar - tbr, ubi = ai - tbi;
        const double ucr = cr + tdr, uci = ci + tdi;
        const double udr = cr - tdr, udi = ci - tdi;
        // Stage s+1: (a, c) with tw1[k], (b, d) with tw1[k + half].
        const double v0r = tw1[2 * k], v0i = tw1[2 * k + 1];
        const double v1r = tw1[2 * (k + half)], v1i = tw1[2 * (k + half) + 1];
        const double tcr = v0r * ucr - v0i * uci, tci = v0r * uci + v0i * ucr;
        const double ter = v1r * udr - v1i * udi, tei = v1r * udi + v1i * udr;
        p0[2 * k] = uar + tcr;
        p0[2 * k + 1] = uai + tci;
        p2[2 * k] = uar - tcr;
        p2[2 * k + 1] = uai - tci;
        p1[2 * k] = ubr + ter;
        p1[2 * k + 1] = ubi + tei;
        p3[2 * k] = ubr - ter;
        p3[2 * k + 1] = ubi - tei;
      }
    }
  }
  // Odd stage count: one remaining plain radix-2 pass.
  if (s <= log2n_) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const double* tw = reinterpret_cast<const double*>(stages[static_cast<std::size_t>(s)].data());
    for (std::size_t base = 0; base < n_; base += 2 * half) {
      double* lo = d + 2 * base;
      double* hi = lo + 2 * half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[2 * k], wi = tw[2 * k + 1];
        const double hr = hi[2 * k], hiq = hi[2 * k + 1];
        const double tr = wr * hr - wi * hiq, ti = wr * hiq + wi * hr;
        const double ur = lo[2 * k], ui = lo[2 * k + 1];
        lo[2 * k] = ur + tr;
        lo[2 * k + 1] = ui + ti;
        hi[2 * k] = ur - tr;
        hi[2 * k + 1] = ui - ti;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& v : x) v *= scale;
  }
}

// ---------------------------------------------------------------------------
// Rfft1D — r2c/c2r via one half-length complex FFT plus Hermitian packing.
//
// Forward: pack z[j] = x[2j] + i x[2j+1], FFT to Z[k], then split Z into the
// transforms E, O of the even/odd samples (E[k] = (Z[k] + conj(Z[h-k]))/2,
// O[k] = -i (Z[k] - conj(Z[h-k]))/2) and combine X[k] = E[k] + w^k O[k],
// X[h-k] = conj(E[k] - w^k O[k]) with w = exp(-2πi/n). Inverse runs the same
// algebra backwards.
// ---------------------------------------------------------------------------

namespace {
/// Validates the real-transform length before the half plan is built, so a
/// bad size is reported as the length the caller passed (not n/2).
std::size_t rfft_half_length(std::size_t n) {
  TURBDA_REQUIRE(n >= 2 && is_pow2(n),
                 "real FFT length must be an even power of two (>= 2), got " << n);
  return n / 2;
}
}  // namespace

Rfft1D::Rfft1D(std::size_t n) : n_(n), h_(n / 2), half_(rfft_half_length(n)) {
  w_.resize(h_ / 2 + 1);
  for (std::size_t k = 0; k < w_.size(); ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    w_[k] = Cplx(std::cos(ang), std::sin(ang));
  }
}

void Rfft1D::forward(std::span<const double> x, std::span<Cplx> spec) const {
  TURBDA_REQUIRE(x.size() == n_ && spec.size() >= spec_size(),
                 "rfft forward: bad buffer sizes (" << x.size() << ", " << spec.size() << ")");
  const std::size_t h = h_;
  for (std::size_t j = 0; j < h; ++j) spec[j] = Cplx(x[2 * j], x[2 * j + 1]);
  half_.forward(spec.first(h));
  const Cplx z0 = spec[0];
  spec[0] = Cplx(z0.real() + z0.imag(), 0.0);
  const Cplx dc_mirror(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < h - k; ++k) {
    const std::size_t kc = h - k;
    const Cplx zk = spec[k];
    const Cplx zc = std::conj(spec[kc]);
    const Cplx e = 0.5 * (zk + zc);
    const Cplx o = Cplx(0.0, -0.5) * (zk - zc);
    const Cplx t = w_[k] * o;
    spec[k] = e + t;
    spec[kc] = std::conj(e - t);
  }
  if (h >= 2) spec[h / 2] = std::conj(spec[h / 2]);  // w^(h/2) = -i, exactly
  spec[h] = dc_mirror;
}

void Rfft1D::inverse_inplace(std::span<Cplx> spec, std::span<double> x) const {
  TURBDA_REQUIRE(x.size() == n_ && spec.size() >= spec_size(),
                 "rfft inverse: bad buffer sizes (" << x.size() << ", " << spec.size() << ")");
  const std::size_t h = h_;
  const double e0 = spec[0].real();
  const double eh = spec[h].real();
  spec[0] = Cplx(0.5 * (e0 + eh), 0.5 * (e0 - eh));
  for (std::size_t k = 1; k < h - k; ++k) {
    const std::size_t kc = h - k;
    const Cplx a = spec[k];
    const Cplx b = std::conj(spec[kc]);
    const Cplx e = 0.5 * (a + b);
    const Cplx ot = 0.5 * (a - b);  // = w^k O[k]
    const Cplx o = std::conj(w_[k]) * ot;
    const Cplx oc = w_[k] * std::conj(ot);  // O at the mirror bin
    spec[k] = e + Cplx(-o.imag(), o.real());
    spec[kc] = std::conj(e) + Cplx(-oc.imag(), oc.real());
  }
  if (h >= 2) spec[h / 2] = std::conj(spec[h / 2]);
  half_.inverse(spec.first(h));
  for (std::size_t j = 0; j < h; ++j) {
    x[2 * j] = spec[j].real();
    x[2 * j + 1] = spec[j].imag();
  }
}

void Rfft1D::inverse(std::span<const Cplx> spec, std::span<double> x) const {
  thread_local std::vector<Cplx> scratch;
  if (scratch.size() < spec_size()) scratch.resize(spec_size());
  std::copy(spec.begin(), spec.begin() + static_cast<long>(spec_size()), scratch.begin());
  inverse_inplace(std::span<Cplx>(scratch.data(), spec_size()), x);
}

// ---------------------------------------------------------------------------
// Fft2D — rows, cache-blocked transpose, batched contiguous column
// transforms, transpose back. Scratch is per-thread and grown on demand, so
// plans stay immutable and shareable across threads.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kTransposeBlock = 32;  // 16 KiB src + 16 KiB dst tiles

/// Transposes `src` (r x c, row stride `ls`) into `dst` (c x r, row stride
/// `lds`).
void transpose_blocked(const Cplx* src, std::size_t ls, Cplx* dst, std::size_t lds, std::size_t r,
                       std::size_t c) {
  for (std::size_t i0 = 0; i0 < r; i0 += kTransposeBlock) {
    const std::size_t i1 = std::min(r, i0 + kTransposeBlock);
    for (std::size_t j0 = 0; j0 < c; j0 += kTransposeBlock) {
      const std::size_t j1 = std::min(c, j0 + kTransposeBlock);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j) dst[j * lds + i] = src[i * ls + j];
    }
  }
}

/// Dense (c x r) destination convenience overload.
void transpose_blocked(const Cplx* src, std::size_t ls, Cplx* dst, std::size_t r, std::size_t c) {
  transpose_blocked(src, ls, dst, r, r, c);
}

bool all_zero(const Cplx* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i].real() != 0.0 || p[i].imag() != 0.0) return false;
  return true;
}

/// Runs fn(begin, end) over [0, n): inline when serial — skipping the
/// std::function round trip of parallel_for on the default single-thread
/// path — and fanned out over the pool otherwise. Fan-out is bitwise
/// partition-invariant for all callers here: rows are disjoint and each
/// row's result depends only on its own data.
template <class F>
void run_partitioned(std::size_t n, std::size_t min_grain, std::size_t max_par, F&& fn) {
  if (max_par == 1) {
    fn(std::size_t{0}, n);
  } else {
    parallel::parallel_for(n, fn, min_grain, max_par);
  }
}

/// Transforms `count` contiguous rows of length `len`, skipping all-zero rows
/// (a transform of zeros is zeros; the SQG tendency inverts dealiased spectra
/// whose outer third of rows vanishes identically).
void batch_transform(Cplx* data, std::size_t count, std::size_t len, const Fft1D& plan,
                     bool inverse, std::size_t max_par) {
  if (count * len < 2048) max_par = 1;  // fork/join would dominate
  run_partitioned(count, /*min_grain=*/4, max_par, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Cplx* row = data + i * len;
      if (all_zero(row, len)) continue;
      std::span<Cplx> s(row, len);
      if (inverse) {
        plan.inverse(s);
      } else {
        plan.forward(s);
      }
    }
  });
}

/// Two per-thread scratch arenas (a 2-D transform needs at most two live
/// buffers). References stay valid across nested use because the slots are
/// distinct vectors.
std::vector<Cplx>& tls_buffer(int slot, std::size_t n) {
  thread_local std::vector<Cplx> bufs[2];
  auto& b = bufs[slot];
  if (b.size() < n) b.resize(n);
  return b;
}

}  // namespace

Fft2D::Fft2D(std::size_t n0, std::size_t n1) : n0_(n0), n1_(n1), row_(n1), col_(n0) {
  if (n1_ >= 2) rrow_.emplace(n1_);
}

void Fft2D::transform2d(std::span<Cplx> x, bool inverse) const {
  batch_transform(x.data(), n0_, n1_, row_, inverse, threads_);
  auto& t = tls_buffer(0, n0_ * n1_);
  transpose_blocked(x.data(), n1_, t.data(), n0_, n1_);
  batch_transform(t.data(), n1_, n0_, col_, inverse, threads_);
  transpose_blocked(t.data(), n0_, x.data(), n1_, n0_);
}

void Fft2D::forward(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::forward: wrong buffer size");
  transform2d(x, /*inverse=*/false);
}

void Fft2D::inverse(std::span<Cplx> x) const {
  TURBDA_REQUIRE(x.size() == n0_ * n1_, "Fft2D::inverse: wrong buffer size");
  transform2d(x, /*inverse=*/true);
}

void Fft2D::forward_real(std::span<const double> grid, std::span<Cplx> spec) const {
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "forward_real: wrong buffer sizes");
  if (!rrow_) {  // n1 == 1: nothing to halve along rows
    for (std::size_t i = 0; i < grid.size(); ++i) spec[i] = Cplx(grid[i], 0.0);
    transform2d(spec, /*inverse=*/false);
    return;
  }
  const std::size_t nh = n1_ / 2 + 1;
  auto& hbuf = tls_buffer(0, n0_ * nh);  // half-spectrum rows, n0 x nh
  auto& tbuf = tls_buffer(1, nh * n0_);  // transposed, nh x n0

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->forward(grid.subspan(i * n1_, n1_), std::span<Cplx>(hbuf.data() + i * nh, nh));
  });

  transpose_blocked(hbuf.data(), nh, tbuf.data(), n0_, nh);
  batch_transform(tbuf.data(), nh, n0_, col_, /*inverse=*/false, threads_);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, n0_);

  // Expand the half spectrum to the full Hermitian-redundant layout:
  // spec[i][j] = conj(spec[(n0-i) mod n0][n1-j]) for the mirrored columns.
  run_partitioned(n0_, /*min_grain=*/8, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Cplx* hrow = hbuf.data() + i * nh;
      Cplx* srow = spec.data() + i * n1_;
      std::copy(hrow, hrow + nh, srow);
      const Cplx* mrow = hbuf.data() + ((n0_ - i) % n0_) * nh;
      for (std::size_t j = nh; j < n1_; ++j) srow[j] = std::conj(mrow[n1_ - j]);
    }
  });
}

void Fft2D::inverse_real(std::span<const Cplx> spec, std::span<double> grid) const {
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && spec.size() == n0_ * n1_,
                 "inverse_real: wrong buffer sizes");
  if (!rrow_) {
    auto& tmp = tls_buffer(1, n0_ * n1_);
    std::copy(spec.begin(), spec.end(), tmp.begin());
    transform2d(std::span<Cplx>(tmp.data(), n0_ * n1_), /*inverse=*/true);
    for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = tmp[i].real();
    return;
  }
  const std::size_t nh = n1_ / 2 + 1;
  auto& tbuf = tls_buffer(1, nh * n0_);
  // Gather the non-redundant columns 0..n1/2 directly into transposed layout.
  transpose_blocked(spec.data(), n1_, tbuf.data(), n0_, nh);
  batch_transform(tbuf.data(), nh, n0_, col_, /*inverse=*/true, threads_);
  auto& hbuf = tls_buffer(0, n0_ * nh);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, n0_);

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->inverse_inplace(std::span<Cplx>(hbuf.data() + i * nh, nh),
                             grid.subspan(i * n1_, n1_));
  });
}

// ---------------------------------------------------------------------------
// Packed half-spectrum transforms: rows r2c -> transpose -> column FFTs over
// the first min(kcut, n1/2) + 1 columns only -> transpose back. The pruned
// forward masks |my| > kcut rows for free while writing the packed output;
// the pruned inverse never touches the column transforms of truncated bins.
// ---------------------------------------------------------------------------

void Fft2D::half_forward_impl(std::span<const double> grid, std::span<Cplx> hspec,
                              std::size_t kcut) const {
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && hspec.size() == half_size(),
                 "forward_half: wrong buffer sizes (" << grid.size() << ", " << hspec.size()
                                                      << ")");
  const std::size_t nh = half_cols();
  const std::size_t cols = std::min(kcut, n1_ / 2) + 1;
  const long rowcut = static_cast<long>(std::min(kcut, n0_ / 2));

  auto& hbuf = tls_buffer(0, n0_ * nh);
  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->forward(grid.subspan(i * n1_, n1_), std::span<Cplx>(hbuf.data() + i * nh, nh));
  });

  auto& tbuf = tls_buffer(1, cols * n0_);
  transpose_blocked(hbuf.data(), nh, tbuf.data(), n0_, cols);
  batch_transform(tbuf.data(), cols, n0_, col_, /*inverse=*/false, threads_);
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), cols, n0_);  // hbuf: dense n0 x cols

  run_partitioned(n0_, /*min_grain=*/8, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Cplx* out = hspec.data() + i * nh;
      const long my = (i <= n0_ / 2) ? static_cast<long>(i)
                                     : static_cast<long>(i) - static_cast<long>(n0_);
      if (std::labs(my) > rowcut) {
        std::fill(out, out + nh, Cplx(0.0, 0.0));
        continue;
      }
      const Cplx* src = hbuf.data() + i * cols;
      std::copy(src, src + cols, out);
      std::fill(out + cols, out + nh, Cplx(0.0, 0.0));
    }
  });
}

void Fft2D::half_inverse_impl(std::span<const Cplx> hspec, std::span<double> grid,
                              std::size_t kcut) const {
  TURBDA_REQUIRE(rrow_, "half-spectrum API requires n1 >= 2, plan is " << n0_ << "x" << n1_);
  TURBDA_REQUIRE(grid.size() == n0_ * n1_ && hspec.size() == half_size(),
                 "inverse_half: wrong buffer sizes (" << grid.size() << ", " << hspec.size()
                                                      << ")");
  const std::size_t nh = half_cols();
  const std::size_t cols = std::min(kcut, n1_ / 2) + 1;

  auto& tbuf = tls_buffer(1, cols * n0_);
  transpose_blocked(hspec.data(), nh, tbuf.data(), n0_, cols);
  batch_transform(tbuf.data(), cols, n0_, col_, /*inverse=*/true, threads_);

  auto& hbuf = tls_buffer(0, n0_ * nh);
  if (cols < nh) {  // truncated tail bins are identically zero
    for (std::size_t i = 0; i < n0_; ++i)
      std::fill(hbuf.data() + i * nh + cols, hbuf.data() + (i + 1) * nh, Cplx(0.0, 0.0));
  }
  transpose_blocked(tbuf.data(), n0_, hbuf.data(), nh, cols, n0_);

  run_partitioned(n0_, /*min_grain=*/4, threads_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      rrow_->inverse_inplace(std::span<Cplx>(hbuf.data() + i * nh, nh),
                             grid.subspan(i * n1_, n1_));
  });
}

void Fft2D::forward_half(std::span<const double> grid, std::span<Cplx> hspec) const {
  half_forward_impl(grid, hspec, std::max(n0_, n1_));
}

void Fft2D::inverse_half(std::span<const Cplx> hspec, std::span<double> grid) const {
  half_inverse_impl(hspec, grid, std::max(n0_, n1_));
}

void Fft2D::forward_half_pruned(std::span<const double> grid, std::span<Cplx> hspec,
                                std::size_t kcut) const {
  half_forward_impl(grid, hspec, kcut);
}

void Fft2D::inverse_half_pruned(std::span<const Cplx> hspec, std::span<double> grid,
                                std::size_t kcut) const {
  half_inverse_impl(hspec, grid, kcut);
}

}  // namespace turbda::fft
