// Scalar FFT kernels + runtime dispatch. This translation unit is compiled
// with -ffp-contract=off unconditionally (see CMakeLists.txt): the scalar
// path is the bitwise reference for the Avx2 level, so it must not grow FMA
// contractions under TURBDA_NATIVE builds.
#include "fft/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace turbda::fft {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the exact arithmetic the pre-SIMD Fft1D/Rfft1D inlined.
// ---------------------------------------------------------------------------

void pass_first_scalar(double* d, std::size_t n2, double isign) {
  for (std::size_t base = 0; base < n2; base += 8) {
    double* p = d + base;
    const double a0r = p[0] + p[2], a0i = p[1] + p[3];  // stage len 2
    const double a1r = p[0] - p[2], a1i = p[1] - p[3];
    const double a2r = p[4] + p[6], a2i = p[5] + p[7];
    const double a3r = p[4] - p[6], a3i = p[5] - p[7];
    const double b3r = -isign * a3i, b3i = isign * a3r;  // (-+i) * a3
    p[0] = a0r + a2r;  // stage len 4
    p[1] = a0i + a2i;
    p[4] = a0r - a2r;
    p[5] = a0i - a2i;
    p[2] = a1r + b3r;
    p[3] = a1i + b3i;
    p[6] = a1r - b3r;
    p[7] = a1i - b3i;
  }
}

void pass_radix4_scalar(double* d, std::size_t n, std::size_t half, const double* tw,
                        const double* tw1) {
  const std::size_t len4 = 4 * half;
  for (std::size_t base = 0; base < n; base += len4) {
    double* p0 = d + 2 * base;
    double* p1 = p0 + 2 * half;
    double* p2 = p1 + 2 * half;
    double* p3 = p2 + 2 * half;
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = tw[2 * k], wi = tw[2 * k + 1];
      const double ar = p0[2 * k], ai = p0[2 * k + 1];
      const double br = p1[2 * k], bi = p1[2 * k + 1];
      const double cr = p2[2 * k], ci = p2[2 * k + 1];
      const double dr = p3[2 * k], di = p3[2 * k + 1];
      // Stage s: (a, b) and (c, d), both with twiddle w.
      const double tbr = wr * br - wi * bi, tbi = wr * bi + wi * br;
      const double tdr = wr * dr - wi * di, tdi = wr * di + wi * dr;
      const double uar = ar + tbr, uai = ai + tbi;
      const double ubr = ar - tbr, ubi = ai - tbi;
      const double ucr = cr + tdr, uci = ci + tdi;
      const double udr = cr - tdr, udi = ci - tdi;
      // Stage s+1: (a, c) with tw1[k], (b, d) with tw1[k + half].
      const double v0r = tw1[2 * k], v0i = tw1[2 * k + 1];
      const double v1r = tw1[2 * (k + half)], v1i = tw1[2 * (k + half) + 1];
      const double tcr = v0r * ucr - v0i * uci, tci = v0r * uci + v0i * ucr;
      const double ter = v1r * udr - v1i * udi, tei = v1r * udi + v1i * udr;
      p0[2 * k] = uar + tcr;
      p0[2 * k + 1] = uai + tci;
      p2[2 * k] = uar - tcr;
      p2[2 * k + 1] = uai - tci;
      p1[2 * k] = ubr + ter;
      p1[2 * k + 1] = ubi + tei;
      p3[2 * k] = ubr - ter;
      p3[2 * k + 1] = ubi - tei;
    }
  }
}

void pass_radix2_scalar(double* d, std::size_t n, std::size_t half, const double* tw) {
  for (std::size_t base = 0; base < n; base += 2 * half) {
    double* lo = d + 2 * base;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = tw[2 * k], wi = tw[2 * k + 1];
      const double hr = hi[2 * k], hq = hi[2 * k + 1];
      const double tr = wr * hr - wi * hq, ti = wr * hq + wi * hr;
      const double ur = lo[2 * k], ui = lo[2 * k + 1];
      lo[2 * k] = ur + tr;
      lo[2 * k + 1] = ui + ti;
      hi[2 * k] = ur - tr;
      hi[2 * k + 1] = ui - ti;
    }
  }
}

// Hermitian combine X[k] = E[k] + w^k O[k], X[h-k] = conj(E[k] - w^k O[k])
// with E, O the even/odd-sample transforms recovered from the half-length
// spectrum: E = (Z[k] + conj(Z[h-k]))/2, O = -i (Z[k] - conj(Z[h-k]))/2.
void rfft_pack_scalar(double* s, const double* w, std::size_t h) {
  for (std::size_t k = 1; k < h - k; ++k) {
    const std::size_t kc = h - k;
    const double zkr = s[2 * k], zki = s[2 * k + 1];
    const double zcr = s[2 * kc], zci = s[2 * kc + 1];
    const double er = 0.5 * (zkr + zcr), ei = 0.5 * (zki - zci);
    const double or_ = 0.5 * (zki + zci), oi = 0.5 * (zcr - zkr);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double tr = wr * or_ - wi * oi, ti = wr * oi + wi * or_;
    s[2 * k] = er + tr;
    s[2 * k + 1] = ei + ti;
    s[2 * kc] = er - tr;
    s[2 * kc + 1] = ti - ei;
  }
}

// Inverse of the combine: recover E and w^k O from X[k], X[h-k], undo the
// twiddle with conj(w), and store Z[k] = E + iO, Z[h-k] = conj(E) + i conj(O).
void rfft_unpack_scalar(double* s, const double* w, std::size_t h) {
  for (std::size_t k = 1; k < h - k; ++k) {
    const std::size_t kc = h - k;
    const double ar = s[2 * k], ai = s[2 * k + 1];
    const double br = s[2 * kc], bi = s[2 * kc + 1];
    const double er = 0.5 * (ar + br), ei = 0.5 * (ai - bi);
    const double otr = 0.5 * (ar - br), oti = 0.5 * (ai + bi);
    const double wr = w[2 * k], wi = w[2 * k + 1];
    const double or_ = wr * otr + wi * oti, oi = wr * oti - wi * otr;
    s[2 * k] = er - oi;
    s[2 * k + 1] = ei + or_;
    s[2 * kc] = er + oi;
    s[2 * kc + 1] = or_ - ei;
  }
}

constexpr FftKernels kScalarKernels = {pass_first_scalar, pass_radix4_scalar, pass_radix2_scalar,
                                       rfft_pack_scalar, rfft_unpack_scalar};

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool cpu_supports(SimdLevel level) {
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Scalar:
      return true;
    case SimdLevel::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdLevel::Avx2Fma:
      return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("fma") != 0;
  }
  return false;
#else
  return level == SimdLevel::Scalar;
#endif
}

SimdLevel parse_level_env(SimdLevel fallback) {
  const char* env = std::getenv("TURBDA_SIMD");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::Scalar;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::Avx2;
  if (std::strcmp(env, "avx2fma") == 0 || std::strcmp(env, "fma") == 0) return SimdLevel::Avx2Fma;
  return fallback;  // unrecognized values keep the detected level
}

SimdLevel detect_level() {
  SimdLevel best = SimdLevel::Scalar;
  if (cpu_supports(SimdLevel::Avx2)) best = SimdLevel::Avx2;
  if (cpu_supports(SimdLevel::Avx2Fma)) best = SimdLevel::Avx2Fma;
  SimdLevel want = parse_level_env(best);
  return cpu_supports(want) ? want : best;
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{detect_level()};
  return level;
}

}  // namespace

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
// Defined in simd_kernels_avx2.cpp (compiled with -mavx2 -mfma).
extern const FftKernels kAvx2Kernels;
extern const FftKernels kAvx2FmaKernels;
#endif

const FftKernels& kernels_for(SimdLevel level) {
  TURBDA_REQUIRE(simd_level_available(level),
                 "SIMD level " << simd_level_name(level) << " is not available on this build/CPU");
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Avx2:
      return kAvx2Kernels;
    case SimdLevel::Avx2Fma:
      return kAvx2FmaKernels;
    case SimdLevel::Scalar:
      break;
  }
#endif
  return kScalarKernels;
}

const FftKernels& active_kernels() { return kernels_for(active_simd_level()); }

SimdLevel active_simd_level() { return level_slot().load(std::memory_order_relaxed); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar:
      return "scalar";
    case SimdLevel::Avx2:
      return "avx2";
    case SimdLevel::Avx2Fma:
      return "avx2fma";
  }
  return "unknown";
}

bool simd_level_available(SimdLevel level) { return cpu_supports(level); }

bool force_simd_level(SimdLevel level) {
  if (!simd_level_available(level)) return false;
  level_slot().store(level, std::memory_order_relaxed);
  return true;
}

}  // namespace turbda::fft
