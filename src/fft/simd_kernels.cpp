// Scalar FFT kernel table: the generic Vec kernels instantiated with the
// emulated VecScalar backend. This translation unit is compiled with
// -ffp-contract=off and auto-vectorization off unconditionally (see
// CMakeLists.txt): the scalar path is the bitwise reference for the Avx2
// level, so it must not grow FMA contractions under TURBDA_NATIVE builds.
#include "fft/simd_kernels.hpp"

#include "common/check.hpp"
#include "fft/simd_kernels_impl.hpp"
#include "simd/vec.hpp"

namespace turbda::fft {

namespace {

using simd::VecScalar;

constexpr FftKernels kScalarKernels = {
    detail::pass_first_impl<VecScalar>, detail::pass_radix4_impl<VecScalar, false>,
    detail::pass_radix2_impl<VecScalar, false>, detail::rfft_pack_impl<VecScalar, false>,
    detail::rfft_unpack_impl<VecScalar, false>};

}  // namespace

#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
// Defined in simd_kernels_avx2.cpp (compiled with -mavx2 -mfma).
extern const FftKernels kAvx2Kernels;
extern const FftKernels kAvx2FmaKernels;
#endif

const FftKernels& kernels_for(SimdLevel level) {
  TURBDA_REQUIRE(simd_level_available(level),
                 "SIMD level " << simd_level_name(level) << " is not available on this build/CPU");
#if defined(TURBDA_HAVE_AVX2) && defined(__x86_64__)
  switch (level) {
    case SimdLevel::Avx2:
      return kAvx2Kernels;
    case SimdLevel::Avx2Fma:
      return kAvx2FmaKernels;
    case SimdLevel::Scalar:
      break;
  }
#endif
  return kScalarKernels;
}

const FftKernels& active_kernels() { return kernels_for(active_simd_level()); }

}  // namespace turbda::fft
