#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace turbda::parallel {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lk(mu_);
    TURBDA_REQUIRE(!stop_, "submit on stopped pool");
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t min_grain) {
  if (n == 0) return;
  const std::size_t nw = size();
  if (nw <= 1 || n <= min_grain) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(nw, (n + min_grain - 1) / min_grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t b = c * chunk;
    const std::size_t e = std::min(n, b + chunk);
    if (b >= e) break;
    futs.push_back(submit([&fn, b, e] { fn(b, e); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace turbda::parallel
