#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "telemetry/trace.hpp"

namespace turbda::parallel {

namespace {
thread_local bool t_in_pool_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return t_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lk(mu_);
    TURBDA_REQUIRE(!stop_, "submit on stopped pool");
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t min_grain, std::size_t max_par) {
  if (n == 0) return;
  std::size_t par = size() + 1;  // workers plus the calling thread
  if (max_par != 0) par = std::min(par, max_par);
  // Nested parallel_for from a worker runs inline: the outer loop already owns
  // the pool, and blocking a worker on sub-tasks could deadlock the queue.
  if (par <= 1 || n <= min_grain || in_worker()) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(par, (n + min_grain - 1) / min_grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t b = c * chunk;
    const std::size_t e = std::min(n, b + chunk);
    if (b >= e) break;
    futs.push_back(submit([&fn, b, e] { fn(b, e); }));
  }
  // The caller works on the first chunk. Always drain every future before
  // unwinding — queued tasks reference `fn` (and whatever its closure
  // borrows from the caller's frame), so leaving early on an exception would
  // let workers touch a destroyed stack frame. First exception wins.
  std::exception_ptr first_err;
  try {
    fn(0, std::min(n, chunk));
  } catch (...) {
    first_err = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_err) first_err = std::current_exception();
    }
  }
  if (first_err) std::rethrow_exception(first_err);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_in_pool_worker = true;
  telemetry::set_thread_label("pool-worker-" + std::to_string(worker_index));
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    {
      TURBDA_SPAN("pool.task");
      task();
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace turbda::parallel
