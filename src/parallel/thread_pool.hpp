// Fixed-size thread pool with task futures and a static-partition
// parallel_for, in the spirit of OpenMP worksharing loops (CP.4: think in
// terms of tasks, not threads).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace turbda::parallel {

class ThreadPool {
 public:
  /// Creates `n_threads` workers; n_threads==0 means "use all hardware
  /// threads".
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(begin, end) over [0, n) split into contiguous chunks and wait for
  /// completion. Executes inline when n is small, the pool has a single
  /// worker, or the caller is itself a pool worker (nested parallelism runs
  /// serially rather than deadlocking on a full queue). `max_par` caps the
  /// number of concurrent chunks (0 = one per worker plus the caller).
  /// Chunk boundaries never depend on scheduling, but they do depend on the
  /// effective parallelism (and thus on the pool size when max_par == 0):
  /// bitwise determinism across machines and thread counts therefore requires
  /// an fn whose per-index work is independent of the chunk partition.
  /// If any chunk throws, all chunks are still drained and the first
  /// exception is rethrown to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_grain = 1, std::size_t max_par = 0);

  /// True when called from one of this process's pool worker threads.
  [[nodiscard]] static bool in_worker();

  /// Cumulative utilization counters, maintained by workers with relaxed
  /// atomics (two clock reads per task — negligible against the coarse
  /// chunk tasks this pool runs). Callers diff busy_ns across an interval
  /// to derive idle fractions: idle = 1 - Δbusy / (Δwall * size()).
  struct Stats {
    std::uint64_t busy_ns = 0;        ///< total ns workers spent inside tasks
    std::uint64_t tasks_executed = 0; ///< tasks completed by workers
  };
  [[nodiscard]] Stats stats() const {
    return {busy_ns_.load(std::memory_order_relaxed),
            tasks_executed_.load(std::memory_order_relaxed)};
  }

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

/// Process-wide default pool (sized to hardware concurrency).
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t min_grain = 1, std::size_t max_par = 0) {
  global_pool().parallel_for(n, fn, min_grain, max_par);
}

}  // namespace turbda::parallel
